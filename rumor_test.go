package rumor_test

import (
	"testing"

	"rumor"
)

// These tests exercise the public facade exactly the way the README and the
// examples do, guaranteeing the documented API surface stays importable and
// coherent.

func TestQuickstartFlow(t *testing.T) {
	g := rumor.Star(64)
	rng := rumor.NewRNG(42)
	p, err := rumor.NewVisitExchange(g, 1, rng, rumor.AgentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := rumor.Run(g, p, 0)
	if !res.Completed {
		t.Fatalf("quickstart run incomplete: %+v", res)
	}
	if res.Rounds <= 0 || res.Rounds > 200 {
		t.Errorf("star visit-exchange rounds = %d, expected small", res.Rounds)
	}
}

func TestFacadeGraphHelpers(t *testing.T) {
	g := rumor.DoubleStar(16)
	if !rumor.IsConnected(g) || !rumor.IsBipartite(g) {
		t.Error("double star connectivity/bipartiteness wrong via facade")
	}
	if d := rumor.Diameter(g); d != 3 {
		t.Errorf("double star diameter = %d, want 3", d)
	}
	if _, ok := g.Landmark("centerA"); !ok {
		t.Error("landmark lost through facade")
	}
}

func TestFacadeAllProtocols(t *testing.T) {
	g := rumor.Complete(16)
	rng := rumor.NewRNG(7)
	build := []func() (rumor.Process, error){
		func() (rumor.Process, error) { return rumor.NewPush(g, 0, rng, rumor.PushOptions{}) },
		func() (rumor.Process, error) { return rumor.NewPushPull(g, 0, rng, rumor.PushPullOptions{}) },
		func() (rumor.Process, error) { return rumor.NewVisitExchange(g, 0, rng, rumor.AgentOptions{}) },
		func() (rumor.Process, error) {
			return rumor.NewMeetExchange(g, 0, rng, rumor.AgentOptions{Lazy: rumor.LazyAuto})
		},
		func() (rumor.Process, error) { return rumor.NewHybrid(g, 0, rng, rumor.AgentOptions{}) },
	}
	for i, b := range build {
		p, err := b()
		if err != nil {
			t.Fatalf("constructor %d: %v", i, err)
		}
		if res := rumor.Run(g, p, 0); !res.Completed {
			t.Errorf("%s incomplete", p.Name())
		}
	}
}

func TestFacadeRunMany(t *testing.T) {
	g := rumor.Hypercube(5)
	results, err := rumor.RunMany(g, func(rng *rumor.RNG) (rumor.Process, error) {
		return rumor.NewPush(g, 0, rng, rumor.PushOptions{})
	}, 4, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
}

func TestFacadeCoupling(t *testing.T) {
	g := rumor.Hypercube(5)
	res, err := rumor.RunCoupled(g, 0, rumor.NewRNG(5), rumor.CouplingConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyLemma13(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDistributed(t *testing.T) {
	g := rumor.Complete(16)
	res, err := rumor.RunDistributed(g, 0, rumor.DistConfig{Protocol: rumor.DistPushPull, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Error("distributed push-pull incomplete")
	}
}

func TestFacadeEdgeUsage(t *testing.T) {
	g := rumor.DoubleStar(8)
	usage := rumor.NewEdgeUsage(g)
	p, err := rumor.NewVisitExchange(g, 0, rumor.NewRNG(1), rumor.AgentOptions{Observer: usage.Observe})
	if err != nil {
		t.Fatal(err)
	}
	rumor.Run(g, p, 0)
	if usage.Total() == 0 {
		t.Error("no edge usage recorded through facade")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(rumor.Experiments()) < 10 {
		t.Errorf("expected at least 10 registered experiments, got %d", len(rumor.Experiments()))
	}
	spec, ok := rumor.ExperimentByID("fig1a-star")
	if !ok {
		t.Fatal("fig1a-star missing")
	}
	tab, err := spec.Run(rumor.ExperimentConfig{Seed: 3, Scale: rumor.ScaleSmall, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Error("empty experiment table via facade")
	}
}

func TestFacadeRandomGraphs(t *testing.T) {
	rng := rumor.NewRNG(11)
	g, err := rumor.RandomRegularConnected(64, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if reg, d := g.IsRegular(); !reg || d != 6 {
		t.Error("random regular graph wrong through facade")
	}
	if _, err := rumor.ChungLu(100, 2.5, 6, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := rumor.ErdosRenyi(50, 0.1, rng); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeOddEvenCoupling(t *testing.T) {
	g := rumor.Hypercube(5)
	res, err := rumor.RunCoupledOddEven(g, 0, rumor.NewRNG(5), rumor.CouplingConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.MaxSlowdown()
	if err != nil || s <= 0 {
		t.Fatalf("MaxSlowdown = %.2f, err %v", s, err)
	}
}

func TestFacadeMultiRumor(t *testing.T) {
	g := rumor.Hypercube(5)
	res, err := rumor.RunMultiRumor(g, []rumor.Rumor{{Source: 0}, {Source: 3, Round: 5}},
		rumor.NewRNG(2), rumor.AgentOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.BroadcastRounds) != 2 {
		t.Fatalf("multi-rumor result wrong: %+v", res)
	}
}

func TestFacadeAsync(t *testing.T) {
	g := rumor.Complete(32)
	res, err := rumor.RunAsync(g, 0, rumor.NewRNG(3), rumor.AsyncConfig{Protocol: rumor.AsyncPushPull})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Time <= 0 {
		t.Fatalf("async result wrong: %+v", res)
	}
}

func TestFacadeDistributedVisitExchange(t *testing.T) {
	g := rumor.Complete(24)
	res, err := rumor.RunDistributedVisitExchange(g, 0, rumor.DistAgentConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Error("distributed visit-exchange incomplete")
	}
}

func TestFacadeBarabasiAlbert(t *testing.T) {
	g, err := rumor.BarabasiAlbert(120, 3, rumor.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if !rumor.IsConnected(g) {
		t.Error("preferential attachment graph disconnected via facade")
	}
}
