package distnet

import (
	"math"
	"testing"

	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func TestRunValidation(t *testing.T) {
	g := graph.Complete(8)
	if _, err := Run(g, 99, Config{Protocol: Push}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := Run(g, 0, Config{Protocol: "bogus"}); err == nil {
		t.Error("bad protocol accepted")
	}
}

func TestPushCompletesOnFamilies(t *testing.T) {
	gs := []*graph.Graph{
		graph.Complete(16),
		graph.Cycle(12),
		graph.Star(15),
		graph.Hypercube(5),
		graph.Grid2D(4, 4),
	}
	for _, g := range gs {
		res, err := Run(g, 0, Config{Protocol: Push, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !res.Completed {
			t.Errorf("%s: push incomplete after %d rounds", g.Name(), res.Rounds)
		}
		if res.History[len(res.History)-1] != g.N() {
			t.Errorf("%s: final informed %d != n", g.Name(), res.History[len(res.History)-1])
		}
	}
}

func TestPushPullCompletesOnFamilies(t *testing.T) {
	gs := []*graph.Graph{
		graph.Complete(16),
		graph.DoubleStar(8),
		graph.Hypercube(5),
	}
	for _, g := range gs {
		res, err := Run(g, 0, Config{Protocol: PushPull, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !res.Completed {
			t.Errorf("%s: push-pull incomplete after %d rounds", g.Name(), res.Rounds)
		}
	}
}

// TestDeterministicDespiteScheduling: the outcome must not depend on
// goroutine interleaving — run the same seed several times and demand
// identical histories.
func TestDeterministicDespiteScheduling(t *testing.T) {
	g := graph.Hypercube(6)
	var first Result
	for i := 0; i < 5; i++ {
		res, err := Run(g, 0, Config{Protocol: PushPull, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
			continue
		}
		if res.Rounds != first.Rounds || res.Messages != first.Messages {
			t.Fatalf("run %d: rounds/messages (%d,%d) != first (%d,%d)",
				i, res.Rounds, res.Messages, first.Rounds, first.Messages)
		}
		for r := range first.History {
			if res.History[r] != first.History[r] {
				t.Fatalf("run %d: history diverges at round %d", i, r)
			}
		}
	}
}

func TestMaxRoundsCutoff(t *testing.T) {
	// Push on a long cycle cannot finish in 3 rounds.
	g := graph.Cycle(64)
	res, err := Run(g, 0, Config{Protocol: Push, Seed: 3, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Rounds != 3 {
		t.Errorf("cutoff failed: completed=%v rounds=%d", res.Completed, res.Rounds)
	}
}

// TestMessageComplexity: push-pull sends exactly one call per node per
// round plus one reply per received call, so messages per round must lie in
// [n, 2n].
func TestMessageComplexity(t *testing.T) {
	g := graph.Complete(24)
	res, err := Run(g, 0, Config{Protocol: PushPull, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.N())
	perRound := res.Messages / int64(res.Rounds)
	if perRound < n || perRound > 2*n {
		t.Errorf("push-pull messages/round = %d, want in [%d, %d]", perRound, n, 2*n)
	}
}

// TestHistoryMonotone: informed counts never decrease.
func TestHistoryMonotone(t *testing.T) {
	g := graph.Grid2D(6, 6)
	res, err := Run(g, 0, Config{Protocol: PushPull, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("history decreases at %d", i)
		}
	}
}

// TestAgreesWithSimulatorOnCompleteGraph: the distributed runtime and the
// array simulator implement the same protocol, so their mean broadcast
// times on K_n must agree within statistical tolerance.
func TestAgreesWithSimulatorOnCompleteGraph(t *testing.T) {
	g := graph.Complete(64)
	const trials = 20

	distMean := 0.0
	for i := 0; i < trials; i++ {
		res, err := Run(g, 0, Config{Protocol: PushPull, Seed: uint64(1000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("incomplete")
		}
		distMean += float64(res.Rounds)
	}
	distMean /= trials

	simResults, err := core.RunMany(g, func(rng *xrand.RNG) (core.Process, error) {
		return core.NewPushPull(g, 0, rng, core.PushPullOptions{})
	}, trials, 0, 77)
	if err != nil {
		t.Fatal(err)
	}
	simMean := 0.0
	for _, r := range simResults {
		simMean += float64(r.Rounds)
	}
	simMean /= trials

	if math.Abs(distMean-simMean) > 0.5*simMean+2 {
		t.Errorf("distributed mean %.2f vs simulator mean %.2f: implementations disagree", distMean, simMean)
	}
}

// TestPushSnapshotSemanticsDistributed: on the path 0-1-2, vertex 2 cannot
// be informed in round 1 (vertex 1 is informed only during round 1).
func TestPushSnapshotSemanticsDistributed(t *testing.T) {
	g := graph.Path(3)
	for seed := uint64(0); seed < 10; seed++ {
		res, err := Run(g, 0, Config{Protocol: Push, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.History[1] != 2 {
			t.Fatalf("seed %d: informed after round 1 = %d, want 2", seed, res.History[1])
		}
		if res.Rounds < 2 {
			t.Fatalf("seed %d: completed in %d rounds on P3", seed, res.Rounds)
		}
	}
}
