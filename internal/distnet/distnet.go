// Package distnet runs the rumor-spreading protocols as an actual
// message-passing distributed system: one goroutine per vertex, mailbox
// transport between neighbors, and a cyclic barrier that implements the
// paper's synchronous rounds. It exists to validate the array-based
// simulator in internal/core against a real concurrent execution, and to
// measure message complexity in a setting where messages are first-class.
//
// Outcomes are deterministic for a fixed seed even though goroutines
// interleave arbitrarily: every node draws randomness only from its own
// seeded stream, and message processing is commutative (an OR over
// informed flags), so the round-by-round informed sets do not depend on
// scheduling.
package distnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// Protocol selects which rumor-spreading protocol the nodes execute.
type Protocol string

// Supported protocols.
const (
	Push     Protocol = "push"
	PushPull Protocol = "push-pull"
)

// Config configures a distributed run.
type Config struct {
	// Protocol selects push or push-pull.
	Protocol Protocol
	// Seed drives every node's private randomness stream.
	Seed uint64
	// MaxRounds bounds the run; <= 0 means 4·n² (generous).
	MaxRounds int
}

// Result reports one distributed run.
type Result struct {
	Rounds    int
	Completed bool
	Messages  int64
	// History[t] is the number of informed nodes after round t.
	History []int
}

// message is what travels between nodes. Informed is the sender's state at
// the start of the round.
type message struct {
	from     graph.Vertex
	informed bool
	reply    bool
}

// barrier is a reusable cyclic barrier for n parties.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n parties have called wait for the current
// generation.
func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// mailbox is a mutex-guarded slice of messages.
type mailbox struct {
	mu   sync.Mutex
	msgs []message
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.msgs = append(m.msgs, msg)
	m.mu.Unlock()
}

// drain returns and clears the contents. Only the owner calls drain, and
// only in a phase where no one writes, but the lock keeps the memory model
// happy.
func (m *mailbox) drain() []message {
	m.mu.Lock()
	out := m.msgs
	m.msgs = nil
	m.mu.Unlock()
	return out
}

// Run executes the protocol on g from source src with one goroutine per
// vertex and returns when every node goroutine has exited.
func Run(g *graph.Graph, src graph.Vertex, cfg Config) (Result, error) {
	n := g.N()
	if src < 0 || int(src) >= n {
		return Result{}, fmt.Errorf("distnet: source %d out of range", src)
	}
	if g.M() == 0 {
		return Result{}, fmt.Errorf("distnet: graph has no edges")
	}
	switch cfg.Protocol {
	case Push, PushPull:
	default:
		return Result{}, fmt.Errorf("distnet: unknown protocol %q", cfg.Protocol)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4 * n * n
	}

	calls := make([]mailbox, n)
	replies := make([]mailbox, n)
	informed := make([]atomic.Bool, n)
	informed[src].Store(true)
	var informedCount atomic.Int64
	informedCount.Store(1)
	var messages atomic.Int64
	var stop atomic.Bool

	// Parties: n nodes + 1 coordinator. Each round has three phase
	// boundaries; all parties hit every barrier.
	bar := newBarrier(n + 1)
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v graph.Vertex) {
			defer wg.Done()
			rng := xrand.New(xrand.Derive(cfg.Seed, int(v)))
			nb := g.Neighbors(v)
			for {
				// Phase A: place a call to one random neighbor. Every node
				// calls under push-pull; only informed nodes call under push.
				wasInformed := informed[v].Load()
				if cfg.Protocol == PushPull || wasInformed {
					target := nb[rng.IntN(len(nb))]
					calls[target].put(message{from: v, informed: wasInformed})
					messages.Add(1)
				}
				bar.wait()

				// Phase B: process incoming calls; under push-pull reply
				// with own (pre-round) state so callers can pull.
				learned := false
				for _, msg := range calls[v].drain() {
					if msg.informed {
						learned = true
					}
					if cfg.Protocol == PushPull {
						replies[msg.from].put(message{from: v, informed: wasInformed, reply: true})
						messages.Add(1)
					}
				}
				bar.wait()

				// Phase C: process replies (pull direction), then commit.
				for _, msg := range replies[v].drain() {
					if msg.informed {
						learned = true
					}
				}
				if learned && !wasInformed {
					informed[v].Store(true)
					informedCount.Add(1)
				}
				bar.wait()

				// Phase D boundary: coordinator has decided by now.
				bar.wait()
				if stop.Load() {
					return
				}
			}
		}(graph.Vertex(v))
	}

	res := Result{History: []int{1}}
	for round := 1; ; round++ {
		bar.wait() // A: calls placed
		bar.wait() // B: calls processed, replies placed
		bar.wait() // C: states committed
		count := int(informedCount.Load())
		res.History = append(res.History, count)
		res.Rounds = round
		if count == n || round >= maxRounds {
			res.Completed = count == n
			stop.Store(true)
			bar.wait() // D: release nodes to observe stop
			break
		}
		bar.wait() // D: next round
	}
	wg.Wait()
	res.Messages = messages.Load()
	return res, nil
}
