package distnet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// AgentConfig configures a distributed visit-exchange run.
type AgentConfig struct {
	// Agents is |A|; defaults to n when zero.
	Agents int
	// Seed drives token placement and every token's private walk stream.
	Seed uint64
	// MaxRounds bounds the run; <= 0 means 4·n².
	MaxRounds int
}

// token is an agent traveling between node goroutines. The paper remarks
// that agents are just tokens passed along with messages; here they
// literally are. Each token carries its own SplitMix64 walk stream, so the
// simulation outcome is a pure function of the seed no matter how the node
// goroutines interleave.
type token struct {
	id       int32
	informed bool
	state    uint64
}

// next advances the token's private stream and returns a value for
// destination selection.
func (tk *token) next() uint64 {
	tk.state = xrand.SplitMix64(tk.state)
	return tk.state
}

// RunVisitExchange executes visit-exchange as a message-passing system: one
// goroutine per vertex, agents as token messages, barrier-synchronized
// rounds with the exact Section 3 semantics (tokens informed in previous
// rounds inform the vertex they arrive at; tokens standing on a vertex
// informed by this round become informed).
func RunVisitExchange(g *graph.Graph, src graph.Vertex, cfg AgentConfig) (Result, error) {
	n := g.N()
	if src < 0 || int(src) >= n {
		return Result{}, fmt.Errorf("distnet: source %d out of range", src)
	}
	if g.M() == 0 {
		return Result{}, fmt.Errorf("distnet: graph has no edges")
	}
	na := cfg.Agents
	if na <= 0 {
		na = n
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4 * n * n
	}

	// Stationary placement and per-token streams, all derived from the seed.
	placeRNG := xrand.New(xrand.Derive(cfg.Seed, -1))
	held := make([][]token, n)
	for i := 0; i < na; i++ {
		v := g.EndpointOwner(placeRNG.IntN(g.EndpointCount()))
		held[v] = append(held[v], token{
			id:       int32(i),
			informed: v == src,
			state:    xrand.Derive(cfg.Seed, i),
		})
	}

	informed := make([]atomic.Bool, n)
	informed[src].Store(true)
	var informedCount atomic.Int64
	informedCount.Store(1)
	var messages atomic.Int64
	var stop atomic.Bool

	inbox := make([]mailboxT, n)
	bar := newBarrier(n + 1)
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v graph.Vertex) {
			defer wg.Done()
			nb := g.Neighbors(v)
			deg := uint64(len(nb))
			for {
				// Phase A: send every held token one walk step along its
				// own stream. Tokens are kept sorted by id, so the walk of
				// token i is independent of arrival interleavings.
				for _, tk := range held[v] {
					dest := nb[tk.next()%deg]
					inbox[dest].put(tk)
					messages.Add(1)
				}
				held[v] = held[v][:0]
				bar.wait()

				// Phase B: receive. First previously-informed tokens inform
				// the vertex (pass 1), then every token standing on an
				// informed vertex becomes informed (pass 2).
				arrivals := inbox[v].drain()
				sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].id < arrivals[j].id })
				vertexInformed := informed[v].Load()
				if !vertexInformed {
					for _, tk := range arrivals {
						if tk.informed {
							vertexInformed = true
							informed[v].Store(true)
							informedCount.Add(1)
							break
						}
					}
				}
				if vertexInformed {
					for i := range arrivals {
						arrivals[i].informed = true
					}
				}
				held[v] = append(held[v], arrivals...)
				bar.wait()

				// Phase C: coordinator decision boundary.
				bar.wait()
				if stop.Load() {
					return
				}
			}
		}(graph.Vertex(v))
	}

	res := Result{History: []int{1}}
	for round := 1; ; round++ {
		bar.wait() // A: tokens sent
		bar.wait() // B: states committed
		count := int(informedCount.Load())
		res.History = append(res.History, count)
		res.Rounds = round
		if count == n || round >= maxRounds {
			res.Completed = count == n
			stop.Store(true)
			bar.wait()
			break
		}
		bar.wait()
	}
	wg.Wait()
	res.Messages = messages.Load()
	return res, nil
}

// mailboxT is a mutex-guarded token mailbox.
type mailboxT struct {
	mu   sync.Mutex
	msgs []token
}

func (m *mailboxT) put(tk token) {
	m.mu.Lock()
	m.msgs = append(m.msgs, tk)
	m.mu.Unlock()
}

func (m *mailboxT) drain() []token {
	m.mu.Lock()
	out := m.msgs
	m.msgs = nil
	m.mu.Unlock()
	return out
}
