package distnet

import (
	"testing"

	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func TestAgentNetValidation(t *testing.T) {
	g := graph.Complete(8)
	if _, err := RunVisitExchange(g, 99, AgentConfig{}); err == nil {
		t.Error("bad source accepted")
	}
}

func TestAgentNetCompletesOnFamilies(t *testing.T) {
	gs := []*graph.Graph{
		graph.Complete(16),
		graph.Star(15),
		graph.Hypercube(5),
		graph.Torus2D(4, 4),
		graph.DoubleStar(8),
	}
	for _, g := range gs {
		res, err := RunVisitExchange(g, 0, AgentConfig{Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !res.Completed {
			t.Errorf("%s: incomplete after %d rounds", g.Name(), res.Rounds)
		}
		if res.History[len(res.History)-1] != g.N() {
			t.Errorf("%s: final informed %d", g.Name(), res.History[len(res.History)-1])
		}
	}
}

// TestAgentNetTokenConservation: every round moves exactly |A| tokens, so
// the message count is rounds × agents.
func TestAgentNetTokenConservation(t *testing.T) {
	g := graph.Hypercube(5)
	const agents = 50
	res, err := RunVisitExchange(g, 0, AgentConfig{Agents: agents, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != int64(agents)*int64(res.Rounds) {
		t.Errorf("messages %d != agents %d × rounds %d", res.Messages, agents, res.Rounds)
	}
}

// TestAgentNetDeterministicDespiteScheduling: identical seeds produce
// identical histories across repeated concurrent executions — each token
// carries its own walk stream, and vertex updates are commutative.
func TestAgentNetDeterministicDespiteScheduling(t *testing.T) {
	g := graph.Hypercube(6)
	var first Result
	for i := 0; i < 5; i++ {
		res, err := RunVisitExchange(g, 0, AgentConfig{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
			continue
		}
		if res.Rounds != first.Rounds {
			t.Fatalf("run %d: rounds %d != %d", i, res.Rounds, first.Rounds)
		}
		for r := range first.History {
			if res.History[r] != first.History[r] {
				t.Fatalf("run %d: history diverges at round %d", i, r)
			}
		}
	}
}

// TestAgentNetAgreesWithSimulator: the distributed and array
// implementations of visit-exchange must agree statistically.
func TestAgentNetAgreesWithSimulator(t *testing.T) {
	g := graph.Complete(64)
	const trials = 15

	distMean := 0.0
	for i := 0; i < trials; i++ {
		res, err := RunVisitExchange(g, 0, AgentConfig{Seed: uint64(100 + i)})
		if err != nil || !res.Completed {
			t.Fatal("distributed incomplete")
		}
		distMean += float64(res.Rounds)
	}
	distMean /= trials

	simResults, err := core.RunMany(g, func(rng *xrand.RNG) (core.Process, error) {
		return core.NewVisitExchange(g, 0, rng, core.AgentOptions{})
	}, trials, 0, 55)
	if err != nil {
		t.Fatal(err)
	}
	simMean := 0.0
	for _, r := range simResults {
		simMean += float64(r.Rounds)
	}
	simMean /= trials

	if distMean > 1.6*simMean+3 || simMean > 1.6*distMean+3 {
		t.Errorf("distributed mean %.2f vs simulator mean %.2f disagree", distMean, simMean)
	}
}

// TestAgentNetStarSemantics: with the source at the star center and one
// agent on a leaf, the agent reaches the center in round 1 (informed), and
// a leaf is first informed in round 2 — matching the array engine's
// semantics test exactly.
func TestAgentNetStarSemantics(t *testing.T) {
	// Find a seed whose single agent starts on a leaf.
	g := graph.Star(6)
	for seed := uint64(0); seed < 64; seed++ {
		placeRNG := xrand.New(xrand.Derive(seed, -1))
		start := g.EndpointOwner(placeRNG.IntN(g.EndpointCount()))
		if start == 0 {
			continue // agent on the center; pick another seed
		}
		res, err := RunVisitExchange(g, 0, AgentConfig{Agents: 1, Seed: seed})
		if err != nil || !res.Completed {
			t.Fatal("incomplete")
		}
		// History[1] must still be 1 (the agent was informed only during
		// round 1); History[2] is 2 (first leaf deposit).
		if res.History[1] != 1 || res.History[2] != 2 {
			t.Fatalf("seed %d: history %v violates Section 3 semantics", seed, res.History[:3])
		}
		return
	}
	t.Skip("no seed placed the single agent on a leaf (improbable)")
}
