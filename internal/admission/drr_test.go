package admission

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"testing"
)

// drrScenario runs one randomized DRR scenario derived from two seeds
// and checks the scheduler's two contract properties on it:
//
//  1. weighted proportional share — over whole rounds with every flow
//     backlogged, each flow is served exactly rounds×weight items, and
//     any partial round deviates by at most one quantum×weight;
//  2. no starvation — a non-empty flow is served within one full round
//     (Σ quantum×weightᵢ pops) of becoming non-empty or of its previous
//     service, under an arbitrary interleaving of pushes and pops.
//
// Shared by the seeded property test and the fuzz target, so any
// failure replays from its seeds alone.
func drrScenario(t *testing.T, seedA, seedB uint64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seedA, seedB))
	nf := 2 + rng.IntN(6)
	weights := make([]int, nf)
	totalW := 0
	for i := range weights {
		weights[i] = 1 + rng.IntN(8)
		totalW += weights[i]
	}
	key := func(i int) string { return "client-" + strconv.Itoa(i) }

	// Phase 1: fully backlogged, whole rounds -> exact proportionality.
	// Backlog covers the partial round too: over pops+extra total pops a
	// flow can be served at most (rounds+1) x weight, so pushing that
	// much guarantees no flow runs dry (shares are undefined once one
	// does — a dry heavy flow legally donates its visit to the others).
	q := newDRR[int](1)
	rounds := 3 + rng.IntN(8)
	pops := rounds * totalW
	extra := 1 + rng.IntN(totalW-1)
	for i := 0; i < nf; i++ {
		for j := 0; j < (rounds+1)*weights[i]; j++ {
			q.Push(key(i), weights[i], i)
		}
	}
	served := make([]int, nf)
	lastServe := make([]int, nf)
	for i := range lastServe {
		lastServe[i] = -1
	}
	for k := 0; k < pops; k++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("queue empty after %d of %d pops", k, pops)
		}
		if gap := k - lastServe[v]; lastServe[v] >= 0 && gap > totalW {
			t.Fatalf("flow %d starved: %d pops between services (bound %d)", v, gap, totalW)
		}
		lastServe[v] = k
		served[v]++
	}
	for i, got := range served {
		want := rounds * weights[i]
		if got != want {
			t.Fatalf("whole rounds: flow %d (weight %d) served %d, want exactly %d (weights %v)",
				i, weights[i], got, want, weights)
		}
	}
	// Partial round on top: deviation bounded by one quantum x weight.
	for k := 0; k < extra; k++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("queue empty during partial round")
		}
		served[v]++
	}
	total := pops + extra
	for i, got := range served {
		ideal := float64(total) * float64(weights[i]) / float64(totalW)
		tol := float64(weights[i]) + 1 // one quantum x weight, plus rounding
		if diff := float64(got) - ideal; diff > tol || diff < -tol {
			t.Fatalf("partial round: flow %d served %d, ideal %.2f, tolerance %.0f (weights %v, total %d)",
				i, got, ideal, tol, weights, total)
		}
	}

	// Phase 2: random arrivals and departures -> starvation bound only
	// (shares are undefined when flows run dry).
	q = newDRR[int](1)
	pending := make([]int, nf)
	waitPops := make([]int, nf) // pops since last service, while non-empty
	for op := 0; op < 4000; op++ {
		if q.Len() == 0 || rng.IntN(5) < 2 {
			f := rng.IntN(nf)
			q.Push(key(f), weights[f], f)
			pending[f]++
			continue
		}
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop failed with Len=%d", q.Len())
		}
		pending[v]--
		for i := range waitPops {
			switch {
			case i == v, pending[i] == 0:
				waitPops[i] = 0
			default:
				waitPops[i]++
				if waitPops[i] > totalW {
					t.Fatalf("dynamic starvation: flow %d (weight %d) waited %d pops, bound %d (weights %v)",
						i, weights[i], waitPops[i], totalW, weights)
				}
			}
		}
	}
	// Drain: everything pushed must come back out, per flow.
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		pending[v]--
	}
	for i, p := range pending {
		if p != 0 {
			t.Fatalf("flow %d: %d items lost or invented by the scheduler", i, p)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("drained queue reports Len %d", q.Len())
	}
}

// TestDRRSeededProperties is the quick-check suite: many independently
// seeded random scenarios, each replayable from its printed seed pair.
func TestDRRSeededProperties(t *testing.T) {
	for seed := uint64(1); seed <= 48; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			drrScenario(t, seed, 0xd22)
		})
	}
}

// FuzzDRRSeededReplay lets the fuzzer explore the scenario space beyond
// the fixed seed sweep; any crash is replayable from the two seeds.
func FuzzDRRSeededReplay(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(97), uint64(0xd22))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		drrScenario(t, a, b)
	})
}

// TestDRRReweightAppliesNextRound pins the documented Push semantics: a
// changed weight takes effect at the flow's next quantum grant.
func TestDRRReweightAppliesNextRound(t *testing.T) {
	q := newDRR[string](1)
	for i := 0; i < 6; i++ {
		q.Push("a", 1, "a")
		q.Push("b", 1, "b")
	}
	// Flow b re-weighted to 3 before any pop: its first grant sees it.
	q.Push("b", 3, "b")
	var order []string
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, v)
	}
	want := "a" // round 1: a serves 1...
	if order[0] != want {
		t.Fatalf("order[0] = %q, want %q (full order %v)", order[0], want, order)
	}
	// ...then b serves 3 in its visit.
	for i := 1; i <= 3; i++ {
		if order[i] != "b" {
			t.Fatalf("order[%d] = %q, want b after reweight (full order %v)", i, order[i], order)
		}
	}
	if len(order) != 13 {
		t.Fatalf("popped %d items, pushed 13", len(order))
	}
}
