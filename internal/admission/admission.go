package admission

import (
	"context"
	"sync"
	"time"
)

// Outcome classifies what the controller did with one submission.
type Outcome uint8

const (
	// Admitted: a dispatch slot was granted (immediately or after a fair-
	// queue wait); the caller must call Decision.Release when done.
	Admitted Outcome = iota
	// Throttled: the client exceeded its own quota (rate, in-flight, or
	// backlog); 429 with Retry-After.
	Throttled
	// Shed: the gateway as a whole cannot take the work (no backend
	// headroom, or the shared hold queue is full); 503 with Retry-After.
	Shed
	// Canceled: the caller's context ended while the submission waited in
	// the fair queue.
	Canceled
)

// Decision is the controller's answer for one submission.
type Decision struct {
	Outcome Outcome
	// Client is the resolved identity, Class the bounded metric class
	// ("default" or a configured override key).
	Client string
	Class  string
	// Reason names the specific limit behind a Throttled/Shed outcome:
	// "rate", "inflight", "backlog", "headroom", "queue".
	Reason string
	// RetryAfter is the honest wait hint for non-admitted outcomes.
	RetryAfter time.Duration
	// Waited is how long an admitted submission sat in the fair queue.
	Waited time.Duration

	release func()
}

// Release returns an Admitted submission's slot; it must be called
// exactly once per admission (idempotent: extra calls are no-ops).
// Non-admitted decisions carry a nil release and Release is a no-op.
func (d Decision) Release() {
	if d.release != nil {
		d.release()
	}
}

// Options configures a Controller. The zero value is permissive:
// unlimited per-client quotas, 256 concurrent dispatches, 1024 held.
type Options struct {
	// Config holds the per-client quotas.
	Config Config
	// MaxInFlight caps concurrently dispatched submissions across all
	// clients — size it near the backends' aggregate worker count so held
	// work queues here, where fairness is enforced, instead of deep in
	// backend FIFOs. Default 256.
	MaxInFlight int
	// MaxQueue caps total held submissions across all clients; beyond it
	// submissions shed. Default 1024.
	MaxQueue int
	// Headroom, when set, reports the aggregate queue headroom of the
	// healthy backends and whether that figure is known. known && headroom
	// <= 0 sheds new submissions at intake.
	Headroom func() (headroom int, known bool)
	// QueueWait, when set, observes each admitted submission's fair-queue
	// wait in seconds, labeled by class (the metrics histogram hook).
	QueueWait func(class string, seconds float64)
	// RetryFallback is the Retry-After when no drain has been observed
	// yet. Default 1s.
	RetryFallback time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
	// MaxClients bounds the tracked-client map; beyond it, idle entries
	// are evicted oldest-first. Default 8192.
	MaxClients int
}

func (o Options) maxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return 256
}

func (o Options) maxQueue() int {
	if o.MaxQueue > 0 {
		return o.MaxQueue
	}
	return 1024
}

func (o Options) retryFallback() time.Duration {
	if o.RetryFallback > 0 {
		return o.RetryFallback
	}
	return time.Second
}

func (o Options) maxClients() int {
	if o.MaxClients > 0 {
		return o.MaxClients
	}
	return 8192
}

// ClassStats are one metric class's cumulative counters.
type ClassStats struct {
	Accepted  int64 `json:"accepted"`  // dispatched (immediately or from the queue)
	Throttled int64 `json:"throttled"` // bounced off the client's own quota
	Shed      int64 `json:"shed"`      // bounced off gateway-wide limits
	Queued    int64 `json:"queued"`    // held in the fair queue at least once
}

// Stats is a consistent snapshot of the controller. The conservation law
//
//	Submitted == Dispatched + Throttled + Shed + Canceled + QueueLen
//
// holds exactly on every snapshot (all fields move under one mutex).
type Stats struct {
	Submitted  int64 `json:"submitted"`
	Dispatched int64 `json:"dispatched"`
	Throttled  int64 `json:"throttled"`
	Shed       int64 `json:"shed"`
	Canceled   int64 `json:"canceled"`
	QueueLen   int   `json:"queueLen"`
	InFlight   int   `json:"inFlight"`
	Clients    int   `json:"clients"`

	ByClass map[string]ClassStats `json:"byClass"`
}

const (
	wStateQueued = iota
	wStateGranted
	wStateCanceled
)

// waiter is one submission held in the fair queue.
type waiter struct {
	cl    *clientState
	ready chan struct{}
	at    time.Time
	state int
}

// clientState tracks one identity's live quota usage.
type clientState struct {
	id       string
	class    string
	quota    Quota
	bucket   *Bucket // nil when RatePerSec is unlimited
	inFlight int
	queued   int
	lastSeen time.Time
}

// Controller is the admission layer: one per gateway. Create with
// NewController; it has no background goroutines.
type Controller struct {
	opts Options
	now  func() time.Time

	mu       sync.Mutex
	clients  map[string]*clientState
	queue    *drr[*waiter]
	inFlight int
	queued   int // live queued count (excludes canceled ghosts still in drr)

	submitted  int64
	dispatched int64
	throttled  int64
	shed       int64
	canceled   int64
	byClass    map[string]*ClassStats

	drain drainEstimator
}

// NewController builds a Controller over opts.
func NewController(opts Options) *Controller {
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	c := &Controller{
		opts:    opts,
		now:     now,
		clients: map[string]*clientState{},
		queue:   newDRR[*waiter](1),
		byClass: map[string]*ClassStats{},
	}
	// Pre-seed every configured class so the metric inventory is complete
	// from boot (scrapes see zeros, not absent series).
	for _, class := range opts.Config.Classes() {
		c.byClass[class] = &ClassStats{}
	}
	c.drain.init(10 * time.Second)
	return c
}

// Classes returns the bounded metric-class inventory.
func (c *Controller) Classes() []string { return c.opts.Config.Classes() }

// SetQueueWait installs the queue-wait observer after construction (the
// gateway builds its metrics registry around the controller). Call
// before serving traffic.
func (c *Controller) SetQueueWait(fn func(class string, seconds float64)) {
	c.opts.QueueWait = fn
}

// Acquire runs one submission through admission: identity, rate limit,
// concurrency quota, headroom shed, then either immediate dispatch or a
// fair-queue wait. It blocks while queued (bounded by the caller's ctx)
// and never blocks otherwise.
func (c *Controller) Acquire(ctx context.Context, apiKey, remoteAddr string) Decision {
	id, keyed := Identity(apiKey, remoteAddr)
	now := c.now()

	c.mu.Lock()
	c.submitted++
	cl := c.clientLocked(id, apiKey, keyed, now)
	cs := c.classLocked(cl.class)
	d := Decision{Client: id, Class: cl.class}

	// Per-client rate: bounce before any shared resource is touched.
	if cl.bucket != nil && !cl.bucket.Allow(now) {
		c.throttled++
		cs.Throttled++
		d.Outcome, d.Reason = Throttled, "rate"
		d.RetryAfter = maxDur(cl.bucket.NextToken(now), time.Second)
		c.mu.Unlock()
		return d
	}
	// Per-client concurrency: dispatched work it already holds.
	if mif := cl.quota.MaxInFlight; mif > 0 && cl.inFlight >= mif {
		c.throttled++
		cs.Throttled++
		d.Outcome, d.Reason = Throttled, "inflight"
		d.RetryAfter = c.retryAfterLocked(now, cl.inFlight)
		c.mu.Unlock()
		return d
	}
	// Aggregate backend headroom: when the whole tier is known-full, an
	// early 503 beats a queue the backends cannot drain.
	if hr := c.opts.Headroom; hr != nil {
		if headroom, known := hr(); known && headroom <= 0 {
			c.shed++
			cs.Shed++
			d.Outcome, d.Reason = Shed, "headroom"
			d.RetryAfter = c.retryAfterLocked(now, c.inFlight+c.queued)
			c.mu.Unlock()
			return d
		}
	}
	// Immediate dispatch — only past an empty queue, so a new arrival
	// cannot barge ahead of fairly-queued work.
	if c.inFlight < c.opts.maxInFlight() && c.queued == 0 {
		c.grantLocked(cl, cs)
		d.Outcome = Admitted
		d.release = c.releaser(cl)
		c.mu.Unlock()
		return d
	}
	// Saturated: hold in the fair queue, within bounds.
	if c.queued >= c.opts.maxQueue() {
		c.shed++
		cs.Shed++
		d.Outcome, d.Reason = Shed, "queue"
		d.RetryAfter = c.retryAfterLocked(now, c.inFlight+c.queued)
		c.mu.Unlock()
		return d
	}
	if mq := cl.quota.MaxQueue; mq > 0 && cl.queued >= mq {
		c.throttled++
		cs.Throttled++
		d.Outcome, d.Reason = Throttled, "backlog"
		d.RetryAfter = c.retryAfterLocked(now, cl.inFlight+cl.queued)
		c.mu.Unlock()
		return d
	}
	w := &waiter{cl: cl, ready: make(chan struct{}), at: now}
	c.queue.Push(cl.id, cl.quota.Weight, w)
	cl.queued++
	c.queued++
	cs.Queued++
	c.mu.Unlock()

	select {
	case <-w.ready:
		waited := c.now().Sub(w.at)
		if waited < 0 {
			waited = 0
		}
		if fn := c.opts.QueueWait; fn != nil {
			fn(cl.class, waited.Seconds())
		}
		d.Outcome = Admitted
		d.Waited = waited
		d.release = c.releaser(cl)
		return d
	case <-ctx.Done():
		c.mu.Lock()
		if w.state == wStateGranted {
			// Dispatch won the race: the slot is ours, so hand it straight
			// back (accounting already counted the dispatch).
			c.releaseLocked(cl)
			c.mu.Unlock()
			d.Outcome = Canceled
			return d
		}
		w.state = wStateCanceled // Pop will skip the ghost
		cl.queued--
		c.queued--
		c.canceled++
		c.mu.Unlock()
		d.Outcome = Canceled
		return d
	}
}

// releaser builds the idempotent release closure for one admission.
func (c *Controller) releaser(cl *clientState) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.releaseLocked(cl)
			c.mu.Unlock()
		})
	}
}

// grantLocked dispatches one submission for cl.
func (c *Controller) grantLocked(cl *clientState, cs *ClassStats) {
	c.inFlight++
	cl.inFlight++
	c.dispatched++
	cs.Accepted++
}

// releaseLocked returns a slot, notes the completion for the drain-rate
// estimator, and pumps the fair queue into the freed capacity.
func (c *Controller) releaseLocked(cl *clientState) {
	cl.inFlight--
	c.inFlight--
	cl.lastSeen = c.now()
	c.drain.note(cl.lastSeen)
	c.pumpLocked()
}

// pumpLocked dispatches queued waiters while slots are free, in DRR
// order, skipping canceled ghosts.
func (c *Controller) pumpLocked() {
	for c.inFlight < c.opts.maxInFlight() {
		w, ok := c.queue.Pop()
		if !ok {
			return
		}
		if w.state == wStateCanceled {
			continue // its live counters were already rolled back at cancel
		}
		w.state = wStateGranted
		w.cl.queued--
		c.queued--
		c.grantLocked(w.cl, c.classLocked(w.cl.class))
		close(w.ready)
	}
}

// clientLocked finds or creates the state for identity id.
func (c *Controller) clientLocked(id, apiKey string, keyed bool, now time.Time) *clientState {
	if cl := c.clients[id]; cl != nil {
		cl.lastSeen = now
		return cl
	}
	if len(c.clients) >= c.opts.maxClients() {
		c.evictIdleLocked()
	}
	class, q := c.opts.Config.resolve(apiKey, keyed)
	cl := &clientState{id: id, class: class, quota: q, lastSeen: now}
	if q.RatePerSec > 0 {
		cl.bucket = NewBucket(q.RatePerSec, q.Burst)
	}
	c.clients[id] = cl
	return cl
}

// evictIdleLocked drops clients with no live work, oldest-first, until
// the map is a quarter under its cap — enough headroom that a scan per
// new client is amortized away. Evicting an idle client only forgets
// rate-limit history, never live accounting.
func (c *Controller) evictIdleLocked() {
	target := c.opts.maxClients() * 3 / 4
	type idle struct {
		id   string
		seen time.Time
	}
	var idles []idle
	for id, cl := range c.clients {
		if cl.inFlight == 0 && cl.queued == 0 {
			idles = append(idles, idle{id, cl.lastSeen})
		}
	}
	for len(c.clients) > target && len(idles) > 0 {
		oldest := 0
		for i := 1; i < len(idles); i++ {
			if idles[i].seen.Before(idles[oldest].seen) {
				oldest = i
			}
		}
		delete(c.clients, idles[oldest].id)
		idles[oldest] = idles[len(idles)-1]
		idles = idles[:len(idles)-1]
	}
}

// classLocked finds or creates the counter block for class.
func (c *Controller) classLocked(class string) *ClassStats {
	cs := c.byClass[class]
	if cs == nil {
		cs = &ClassStats{}
		c.byClass[class] = cs
	}
	return cs
}

// Stats returns a consistent snapshot; the conservation law holds on
// every call.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Submitted:  c.submitted,
		Dispatched: c.dispatched,
		Throttled:  c.throttled,
		Shed:       c.shed,
		Canceled:   c.canceled,
		QueueLen:   c.queued,
		InFlight:   c.inFlight,
		Clients:    len(c.clients),
		ByClass:    make(map[string]ClassStats, len(c.byClass)),
	}
	for class, cs := range c.byClass {
		st.ByClass[class] = *cs
	}
	return st
}

// RetryAfter is the controller's current honest wait hint: the time the
// observed drain rate needs to clear the work ahead of a new arrival.
func (c *Controller) RetryAfter() time.Duration {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retryAfterLocked(now, c.inFlight+c.queued)
}

// retryAfterLocked derives a wait hint for a request behind `pending`
// other units of work, from the drain rate observed over the estimator
// window. No observed drain (cold boot, or a long stall) falls back to
// Options.RetryFallback; the result is clamped to [1s, 60s] — honest but
// never hammering, never parking a client for minutes on a blip.
func (c *Controller) retryAfterLocked(now time.Time, pending int) time.Duration {
	rate := c.drain.rate(now)
	var d time.Duration
	if rate <= 0 {
		d = c.opts.retryFallback()
	} else {
		d = time.Duration(float64(pending+1) / rate * float64(time.Second))
	}
	return clampDur(d, time.Second, 60*time.Second)
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// drainEstimator measures the recent completion rate from a ring of
// completion timestamps. Guarded by the Controller's mutex.
type drainEstimator struct {
	times  []time.Time
	idx    int
	filled bool
	window time.Duration
}

func (d *drainEstimator) init(window time.Duration) {
	d.times = make([]time.Time, 256)
	d.window = window
}

func (d *drainEstimator) note(t time.Time) {
	d.times[d.idx] = t
	d.idx++
	if d.idx == len(d.times) {
		d.idx = 0
		d.filled = true
	}
}

// rate returns completions per second over the window (0 when none).
// When the ring wrapped inside the window the rate is computed over the
// span actually covered, so a burst faster than the ring holds is not
// underestimated into an inflated Retry-After.
func (d *drainEstimator) rate(now time.Time) float64 {
	cutoff := now.Add(-d.window)
	n := d.idx
	if d.filled {
		n = len(d.times)
	}
	count := 0
	oldest := now
	for i := 0; i < n; i++ {
		t := d.times[i]
		if t.After(cutoff) {
			count++
			if t.Before(oldest) {
				oldest = t
			}
		}
	}
	if count == 0 {
		return 0
	}
	span := d.window
	if d.filled || count == len(d.times) {
		if s := now.Sub(oldest); s > 0 && s < span {
			span = s
		}
	}
	if span <= 0 {
		return 0
	}
	return float64(count) / span.Seconds()
}
