// Package admission is the gateway's per-client fairness layer: it
// decides, for every submission, whether to dispatch it now, hold it in
// a weighted fair queue, throttle it back to the client, or shed it —
// and it owes every non-dispatch an honest Retry-After.
//
// The layer composes four small pieces:
//
//   - client identity (identity.go): an API-key header when present and
//     well-formed, the canonicalized remote address otherwise, so one
//     client cannot split itself into many by varying spelling;
//   - per-client token buckets and concurrency quotas (bucket.go,
//     quotas.go): sustained rate, burst, in-flight, and backlog caps,
//     with per-key overrides loaded from a JSON file;
//   - a weighted deficit-round-robin queue (drr.go): when the gateway is
//     saturated, held submissions dispatch across clients in proportion
//     to their configured weights instead of FIFO, so a flooding client
//     cannot starve polite ones;
//   - a drain-rate estimator (admission.go): Retry-After values are
//     derived from the observed completion rate, not a constant.
//
// Every submission resolves to exactly one of four outcomes — admitted,
// throttled, shed, or canceled — so the controller's counters obey a
// conservation law on any consistent snapshot:
//
//	submitted == dispatched + throttled + shed + canceled + queued_now
//
// which the soak harness asserts on every /metrics scrape.
package admission

import (
	"net"
	"net/netip"
)

// KeyHeader is the HTTP header clients use to identify themselves.
const KeyHeader = "X-API-Key"

// maxKeyLen bounds accepted API keys; anything longer is treated as
// absent rather than minting an unbounded identity space.
const maxKeyLen = 64

// sharedIdentity buckets requests whose remote address cannot be parsed
// at all (no key, no host:port). They all share one identity — the safe
// failure mode is one over-grouped bucket, never a fresh bucket per
// malformed request.
const sharedIdentity = "addr:unknown"

// ValidKey reports whether s is an acceptable API key: 1..64 characters
// drawn from [A-Za-z0-9._-]. Anything else — empty, overlong, spaces,
// control bytes, unicode — is rejected, and identity falls back to the
// remote address.
func ValidKey(s string) bool {
	if len(s) == 0 || len(s) > maxKeyLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Identity resolves a request to a stable client identity.
//
// A well-formed API key wins: "key:<key>", keyed=true. Otherwise the
// remote address is canonicalized — host split from port, parsed as an
// IP, and re-rendered in canonical form — so "[::1]:5, [0:0::1]:6,
// ::1" are all one client, not three. Unparseable input maps to one
// shared identity, never a panic and never a per-request bucket.
func Identity(apiKey, remoteAddr string) (id string, keyed bool) {
	if ValidKey(apiKey) {
		return "key:" + apiKey, true
	}
	host := remoteAddr
	if h, _, err := net.SplitHostPort(remoteAddr); err == nil {
		host = h
	}
	// Tolerate a bracketed host with no port ("[::1]").
	if len(host) >= 2 && host[0] == '[' && host[len(host)-1] == ']' {
		host = host[1 : len(host)-1]
	}
	addr, err := netip.ParseAddr(host)
	if err != nil {
		return sharedIdentity, false
	}
	// Strip the IPv6 zone: one host, one client, whatever interface the
	// connection arrived on. Unmap 4-in-6 so ::ffff:10.0.0.1 == 10.0.0.1.
	addr = addr.WithZone("").Unmap()
	return "addr:" + addr.String(), false
}
