package admission

import (
	"net/netip"
	"strings"
	"testing"
)

func TestIdentityTable(t *testing.T) {
	cases := []struct {
		name    string
		key     string
		addr    string
		wantID  string
		wantKey bool
	}{
		{"valid key wins over addr", "team-a_1.prod", "10.0.0.1:443", "key:team-a_1.prod", true},
		{"empty key falls back to addr", "", "10.0.0.1:443", "addr:10.0.0.1", false},
		{"key with space rejected", "team a", "10.0.0.1:443", "addr:10.0.0.1", false},
		{"key with unicode rejected", "tëam", "10.0.0.1:443", "addr:10.0.0.1", false},
		{"overlong key rejected", strings.Repeat("k", 65), "10.0.0.1:443", "addr:10.0.0.1", false},
		{"max-length key accepted", strings.Repeat("k", 64), "", "key:" + strings.Repeat("k", 64), true},
		{"ipv6 bracketed with port", "", "[::1]:8080", "addr:::1", false},
		{"ipv6 long form canonicalized", "", "[0:0:0:0:0:0:0:1]:9", "addr:::1", false},
		{"ipv6 zone stripped", "", "[fe80::1%eth0]:5", "addr:fe80::1", false},
		{"ipv4-in-ipv6 unmapped", "", "[::ffff:10.0.0.1]:7", "addr:10.0.0.1", false},
		{"bare host no port", "", "10.0.0.1", "addr:10.0.0.1", false},
		{"bare bracketed ipv6", "", "[::1]", "addr:::1", false},
		{"hostname unparseable", "", "localhost:80", sharedIdentity, false},
		{"garbage unparseable", "", "not an address at all", sharedIdentity, false},
		{"empty everything", "", "", sharedIdentity, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			id, keyed := Identity(tc.key, tc.addr)
			if id != tc.wantID || keyed != tc.wantKey {
				t.Fatalf("Identity(%q, %q) = (%q, %v), want (%q, %v)",
					tc.key, tc.addr, id, keyed, tc.wantID, tc.wantKey)
			}
		})
	}
}

// TestIdentityOneClientOneBucket pins the anti-splitting property the
// fuzz target generalizes: every spelling of one IPv6 host maps to one
// identity.
func TestIdentityOneClientOneBucket(t *testing.T) {
	spellings := []string{
		"[2001:db8::1]:1", "[2001:db8::1]:2", "[2001:db8:0:0:0:0:0:1]:3",
		"[2001:DB8::1]:4", "2001:db8::1",
	}
	want, _ := Identity("", spellings[0])
	for _, s := range spellings[1:] {
		if got, _ := Identity("", s); got != want {
			t.Fatalf("spelling %q split the client: %q vs %q", s, got, want)
		}
	}
}

// FuzzIdentity throws hostile keys and addresses at the extractor. The
// invariants: never panic, always a non-empty identity, valid keys win
// verbatim, invalid keys never leak into a key: identity, and address
// identities are canonical fixpoints (re-parsing the rendered address
// yields the same identity — one client can never split into many by
// re-spelling itself).
func FuzzIdentity(f *testing.F) {
	f.Add("team-a", "10.0.0.1:443")
	f.Add("", "[::1]:8080")
	f.Add(strings.Repeat("x", 200), "[fe80::1%25eth0]:5")
	f.Add("k\x00y", "[::ffff:10.0.0.1]:7")
	f.Add("", "999.1.1.1:2")
	f.Fuzz(func(t *testing.T, key, addr string) {
		id, keyed := Identity(key, addr)
		if id == "" {
			t.Fatal("empty identity")
		}
		again, keyedAgain := Identity(key, addr)
		if id != again || keyed != keyedAgain {
			t.Fatalf("not deterministic: %q vs %q", id, again)
		}
		switch {
		case ValidKey(key):
			if !keyed || id != "key:"+key {
				t.Fatalf("valid key %q mapped to %q (keyed=%v)", key, id, keyed)
			}
		default:
			if keyed || strings.HasPrefix(id, "key:") {
				t.Fatalf("invalid key %q leaked into identity %q", key, id)
			}
			if !strings.HasPrefix(id, "addr:") {
				t.Fatalf("fallback identity %q lacks addr: prefix", id)
			}
			if id != sharedIdentity {
				// Canonical fixpoint: the rendered address re-identifies to
				// itself.
				rendered := strings.TrimPrefix(id, "addr:")
				a, err := netip.ParseAddr(rendered)
				if err != nil {
					t.Fatalf("identity %q does not round-trip: %v", id, err)
				}
				if a.String() != rendered {
					t.Fatalf("identity %q is not canonical (re-renders as %q)", rendered, a.String())
				}
				if re, _ := Identity("", rendered); re != id {
					t.Fatalf("identity %q re-identifies as %q — one client split into two", id, re)
				}
			}
		}
	})
}
