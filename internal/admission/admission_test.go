package admission

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"testing"
	"time"
)

// waitUntil polls cond for a test-scale deadline.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// checkConservation asserts the controller's conservation law on one
// snapshot.
func checkConservation(t *testing.T, st Stats) {
	t.Helper()
	if got := st.Dispatched + st.Throttled + st.Shed + st.Canceled + int64(st.QueueLen); got != st.Submitted {
		t.Fatalf("conservation broken: submitted=%d but dispatched=%d + throttled=%d + shed=%d + canceled=%d + queued=%d = %d",
			st.Submitted, st.Dispatched, st.Throttled, st.Shed, st.Canceled, st.QueueLen, got)
	}
}

func TestAcquireImmediateAndRelease(t *testing.T) {
	c := NewController(Options{})
	d := c.Acquire(context.Background(), "", "10.0.0.1:1")
	if d.Outcome != Admitted {
		t.Fatalf("outcome = %v, want Admitted", d.Outcome)
	}
	if d.Class != DefaultClass || d.Client != "addr:10.0.0.1" {
		t.Fatalf("class/client = %q/%q", d.Class, d.Client)
	}
	st := c.Stats()
	if st.InFlight != 1 || st.Dispatched != 1 {
		t.Fatalf("stats after admit: %+v", st)
	}
	d.Release()
	d.Release() // idempotent
	st = c.Stats()
	if st.InFlight != 0 {
		t.Fatalf("inflight after release = %d", st.InFlight)
	}
	checkConservation(t, st)
}

func TestRateThrottleWithHonestRetryAfter(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Options{
		Config: Config{Default: Quota{RatePerSec: 2, Burst: 2}},
		Now:    clk.now,
	})
	for i := 0; i < 2; i++ {
		if d := c.Acquire(context.Background(), "", "10.0.0.1:1"); d.Outcome != Admitted {
			t.Fatalf("burst acquire %d: %v", i, d.Outcome)
		} else {
			d.Release()
		}
	}
	d := c.Acquire(context.Background(), "", "10.0.0.1:1")
	if d.Outcome != Throttled || d.Reason != "rate" {
		t.Fatalf("outcome/reason = %v/%q, want Throttled/rate", d.Outcome, d.Reason)
	}
	// The real token wait is 500ms; the header floor keeps it >= 1s.
	if d.RetryAfter < 500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want >= the 500ms token wait", d.RetryAfter)
	}
	// A different client is not collateral damage.
	if d := c.Acquire(context.Background(), "", "10.0.0.2:1"); d.Outcome != Admitted {
		t.Fatalf("second client throttled by the first's bucket: %v", d.Outcome)
	} else {
		d.Release()
	}
	// After the refill interval the first client admits again.
	clk.advance(time.Second)
	if d := c.Acquire(context.Background(), "", "10.0.0.1:1"); d.Outcome != Admitted {
		t.Fatalf("post-refill acquire: %v", d.Outcome)
	} else {
		d.Release()
	}
	checkConservation(t, c.Stats())
}

func TestInFlightQuotaThrottle(t *testing.T) {
	c := NewController(Options{
		Config: Config{Clients: map[string]Quota{"small": {MaxInFlight: 1}}},
	})
	first := c.Acquire(context.Background(), "small", "")
	if first.Outcome != Admitted || first.Class != "small" {
		t.Fatalf("first acquire: %v class %q", first.Outcome, first.Class)
	}
	d := c.Acquire(context.Background(), "small", "")
	if d.Outcome != Throttled || d.Reason != "inflight" {
		t.Fatalf("outcome/reason = %v/%q, want Throttled/inflight", d.Outcome, d.Reason)
	}
	if d.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", d.RetryAfter)
	}
	first.Release()
	if d := c.Acquire(context.Background(), "small", ""); d.Outcome != Admitted {
		t.Fatalf("post-release acquire: %v", d.Outcome)
	} else {
		d.Release()
	}
	checkConservation(t, c.Stats())
}

func TestHeadroomShed(t *testing.T) {
	headroom, known := 0, true
	var mu sync.Mutex
	c := NewController(Options{Headroom: func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		return headroom, known
	}})
	d := c.Acquire(context.Background(), "", "10.0.0.1:1")
	if d.Outcome != Shed || d.Reason != "headroom" {
		t.Fatalf("outcome/reason = %v/%q, want Shed/headroom", d.Outcome, d.Reason)
	}
	if d.RetryAfter < time.Second {
		t.Fatalf("shed RetryAfter = %v, want >= 1s", d.RetryAfter)
	}
	mu.Lock()
	known = false // unknown headroom must not shed (boot, probes pending)
	mu.Unlock()
	if d := c.Acquire(context.Background(), "", "10.0.0.1:1"); d.Outcome != Admitted {
		t.Fatalf("unknown headroom shed the request: %v", d.Outcome)
	} else {
		d.Release()
	}
	mu.Lock()
	headroom, known = 7, true
	mu.Unlock()
	if d := c.Acquire(context.Background(), "", "10.0.0.1:1"); d.Outcome != Admitted {
		t.Fatalf("positive headroom shed the request: %v", d.Outcome)
	} else {
		d.Release()
	}
	checkConservation(t, c.Stats())
}

// TestFairQueueDRRDispatch saturates a 1-slot controller, queues a
// greedy burst and a weighted polite pair, and asserts dispatch follows
// DRR order — polite's weight buys it service ahead of the greedy
// backlog — with queue waits surfaced to the observer.
func TestFairQueueDRRDispatch(t *testing.T) {
	var waitMu sync.Mutex
	waits := map[string]int{}
	c := NewController(Options{
		MaxInFlight: 1,
		Config: Config{Clients: map[string]Quota{
			"greedy": {Weight: 1},
			"polite": {Weight: 2},
		}},
	})
	c.SetQueueWait(func(class string, _ float64) {
		waitMu.Lock()
		waits[class]++
		waitMu.Unlock()
	})
	blocker := c.Acquire(context.Background(), "greedy", "")
	if blocker.Outcome != Admitted {
		t.Fatalf("blocker: %v", blocker.Outcome)
	}

	type grant struct {
		class string
		d     Decision
	}
	grants := make(chan grant, 8)
	enqueue := func(key string) {
		before := c.Stats().QueueLen
		go func() {
			d := c.Acquire(context.Background(), key, "")
			grants <- grant{key, d}
		}()
		waitUntil(t, "queue growth for "+key, func() bool { return c.Stats().QueueLen > before })
	}
	// Arrival order: 4 greedy, then 2 polite.
	for i := 0; i < 4; i++ {
		enqueue("greedy")
	}
	enqueue("polite")
	enqueue("polite")

	// Drain one at a time; DRR with weights 1:2 and greedy first in the
	// rotation dispatches greedy, polite, polite, greedy, greedy, greedy.
	want := []string{"greedy", "polite", "polite", "greedy", "greedy", "greedy"}
	release := blocker.Release
	for i, wantClass := range want {
		release()
		g := <-grants
		if g.d.Outcome != Admitted {
			t.Fatalf("grant %d: outcome %v", i, g.d.Outcome)
		}
		if g.class != wantClass {
			t.Fatalf("dispatch %d went to %s, want %s (DRR order violated)", i, g.class, wantClass)
		}
		release = g.d.Release
	}
	release()
	st := c.Stats()
	if st.QueueLen != 0 || st.InFlight != 0 {
		t.Fatalf("drained controller: %+v", st)
	}
	checkConservation(t, st)
	waitMu.Lock()
	defer waitMu.Unlock()
	if waits["greedy"] != 4 || waits["polite"] != 2 {
		t.Fatalf("queue-wait observations %v, want greedy=4 polite=2", waits)
	}
	if st.ByClass["polite"].Accepted != 2 || st.ByClass["greedy"].Accepted != 5 {
		t.Fatalf("per-class accepted %+v", st.ByClass)
	}
}

func TestQueueCapShedAndBacklogThrottle(t *testing.T) {
	c := NewController(Options{
		MaxInFlight: 1,
		MaxQueue:    2,
		Config:      Config{Clients: map[string]Quota{"cap1": {MaxQueue: 1}}},
	})
	blocker := c.Acquire(context.Background(), "", "10.0.0.9:1")
	defer blocker.Release()

	var wg sync.WaitGroup
	queuedAcquire := func(key, addr string) {
		before := c.Stats().QueueLen
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := c.Acquire(context.Background(), key, addr)
			d.Release()
		}()
		waitUntil(t, "queue growth", func() bool { return c.Stats().QueueLen > before })
	}
	// cap1 queues one; its second held submission throttles (backlog).
	queuedAcquire("cap1", "")
	if d := c.Acquire(context.Background(), "cap1", ""); d.Outcome != Throttled || d.Reason != "backlog" {
		t.Fatalf("outcome/reason = %v/%q, want Throttled/backlog", d.Outcome, d.Reason)
	}
	// Fill the shared queue; the next client sheds (queue).
	queuedAcquire("", "10.0.0.8:1")
	if d := c.Acquire(context.Background(), "", "10.0.0.7:1"); d.Outcome != Shed || d.Reason != "queue" {
		t.Fatalf("outcome/reason = %v/%q, want Shed/queue", d.Outcome, d.Reason)
	}
	checkConservation(t, c.Stats())
	blocker.Release()
	wg.Wait()
	st := c.Stats()
	if st.QueueLen != 0 || st.InFlight != 0 {
		t.Fatalf("drained controller: %+v", st)
	}
	checkConservation(t, st)
}

func TestCancelWhileQueued(t *testing.T) {
	c := NewController(Options{MaxInFlight: 1})
	blocker := c.Acquire(context.Background(), "", "10.0.0.1:1")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Decision, 1)
	go func() { done <- c.Acquire(ctx, "", "10.0.0.2:1") }()
	waitUntil(t, "waiter to queue", func() bool { return c.Stats().QueueLen == 1 })
	cancel()
	d := <-done
	if d.Outcome != Canceled {
		t.Fatalf("outcome = %v, want Canceled", d.Outcome)
	}
	d.Release() // no-op on non-admitted decisions
	st := c.Stats()
	if st.Canceled != 1 || st.QueueLen != 0 {
		t.Fatalf("stats after cancel: %+v", st)
	}
	checkConservation(t, st)

	// The canceled ghost must not absorb the next dispatch.
	grantCh := make(chan Decision, 1)
	go func() { grantCh <- c.Acquire(context.Background(), "", "10.0.0.3:1") }()
	waitUntil(t, "second waiter to queue", func() bool { return c.Stats().QueueLen == 1 })
	blocker.Release()
	g := <-grantCh
	if g.Outcome != Admitted {
		t.Fatalf("post-cancel dispatch: %v", g.Outcome)
	}
	g.Release()
	checkConservation(t, c.Stats())
}

// TestRetryAfterTracksDrainRate drives a known completion rate through
// the estimator and asserts the hint scales with the backlog.
func TestRetryAfterTracksDrainRate(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Options{MaxInFlight: 64, Now: clk.now, RetryFallback: 3 * time.Second})

	// Cold: no drain observed -> the configured fallback.
	if got := c.RetryAfter(); got != 3*time.Second {
		t.Fatalf("cold RetryAfter = %v, want the 3s fallback", got)
	}
	// 10 completions/s across the estimator's whole 10s window.
	for i := 0; i < 100; i++ {
		d := c.Acquire(context.Background(), "", "10.0.0.1:1")
		if d.Outcome != Admitted {
			t.Fatalf("drive acquire %d: %v", i, d.Outcome)
		}
		clk.advance(100 * time.Millisecond)
		d.Release()
	}
	// 39 other units pending -> (39+1)/10 per sec = 4s.
	var held []Decision
	for i := 0; i < 39; i++ {
		d := c.Acquire(context.Background(), "", "10.0.0.1:1")
		if d.Outcome != Admitted {
			t.Fatalf("hold acquire %d: %v", i, d.Outcome)
		}
		held = append(held, d)
	}
	got := c.RetryAfter()
	if got < 3500*time.Millisecond || got > 4500*time.Millisecond {
		t.Fatalf("RetryAfter with 39 pending at 10/s = %v, want ~4s", got)
	}
	for _, d := range held {
		d.Release()
	}
	// Clamp ceiling: an absurd backlog still answers within a minute.
	if c.retryAfterLocked(clk.now(), 1<<20) != 60*time.Second {
		t.Fatal("RetryAfter ceiling clamp missing")
	}
	checkConservation(t, c.Stats())
}

// TestConservationUnderConcurrentStorm hammers the controller from many
// goroutines with mixed identities, cancels, and tight quotas while a
// scraper asserts the conservation law on every concurrent snapshot —
// the property the soak harness later asserts over /metrics. Run under
// -race in CI.
func TestConservationUnderConcurrentStorm(t *testing.T) {
	c := NewController(Options{
		MaxInFlight: 4,
		MaxQueue:    32,
		Config: Config{
			Default: Quota{MaxInFlight: 8, MaxQueue: 8},
			Clients: map[string]Quota{
				"greedy": {RatePerSec: 200, Burst: 20, MaxQueue: 4},
				"heavy":  {Weight: 4},
			},
		},
	})
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				checkConservation(t, c.Stats())
			}
		}
	}()

	keys := []string{"greedy", "heavy", "", "", ""}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 0xfa12))
			for i := 0; i < 150; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if rng.IntN(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.IntN(3))*time.Millisecond)
				}
				key := keys[rng.IntN(len(keys))]
				addr := fmt.Sprintf("10.0.%d.%d:99", g, rng.IntN(3))
				d := c.Acquire(ctx, key, addr)
				if d.Outcome == Admitted {
					if rng.IntN(3) == 0 {
						time.Sleep(time.Duration(rng.IntN(200)) * time.Microsecond)
					}
					d.Release()
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	st := c.Stats()
	if st.QueueLen != 0 || st.InFlight != 0 {
		t.Fatalf("storm left residue: %+v", st)
	}
	if st.Submitted != 12*150 {
		t.Fatalf("submitted = %d, want %d", st.Submitted, 12*150)
	}
	checkConservation(t, st)
	var byClass int64
	for _, cs := range st.ByClass {
		byClass += cs.Accepted + cs.Throttled + cs.Shed
	}
	if byClass != st.Dispatched+st.Throttled+st.Shed {
		t.Fatalf("per-class counters (%d) disagree with totals (%d)",
			byClass, st.Dispatched+st.Throttled+st.Shed)
	}
}

// TestClientEviction pins the tracked-client bound: idle identities are
// evicted, live ones never are.
func TestClientEviction(t *testing.T) {
	c := NewController(Options{MaxClients: 8})
	held := c.Acquire(context.Background(), "", "10.9.9.9:1")
	if held.Outcome != Admitted {
		t.Fatalf("held acquire: %v", held.Outcome)
	}
	for i := 0; i < 50; i++ {
		d := c.Acquire(context.Background(), "", fmt.Sprintf("10.1.%d.%d:1", i/200, i%200))
		if d.Outcome != Admitted {
			t.Fatalf("acquire %d: %v", i, d.Outcome)
		}
		d.Release()
	}
	st := c.Stats()
	if st.Clients > 8 {
		t.Fatalf("tracked clients = %d, want <= cap 8", st.Clients)
	}
	// The live client survived every eviction sweep.
	c.mu.Lock()
	_, ok := c.clients["addr:10.9.9.9"]
	c.mu.Unlock()
	if !ok {
		t.Fatal("client with live in-flight work was evicted")
	}
	held.Release()
	checkConservation(t, c.Stats())
}

func TestLoadConfigStrictAndMerge(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/quotas.json"
	write := func(s string) {
		t.Helper()
		if err := writeFile(path, s); err != nil {
			t.Fatal(err)
		}
	}
	write(`{
		"default": {"ratePerSec": 5, "maxInFlight": 4, "maxQueue": 8},
		"clients": {
			"greedy": {"ratePerSec": 50, "burst": 10, "weight": 2},
			"free":   {"ratePerSec": -1, "maxInFlight": -1}
		}
	}`)
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Classes(); len(got) != 3 || got[0] != DefaultClass || got[1] != "free" || got[2] != "greedy" {
		t.Fatalf("Classes() = %v", got)
	}
	class, q := cfg.resolve("greedy", true)
	if class != "greedy" || q.RatePerSec != 50 || q.Burst != 10 || q.MaxInFlight != 4 || q.MaxQueue != 8 || q.Weight != 2 {
		t.Fatalf("greedy resolved to %q %+v (zero fields must inherit the default)", class, q)
	}
	class, q = cfg.resolve("free", true)
	if class != "free" || q.RatePerSec != 0 || q.MaxInFlight != 0 {
		t.Fatalf("free resolved to %q %+v (-1 must mean unlimited)", class, q)
	}
	class, q = cfg.resolve("unknown-key", true)
	if class != DefaultClass || q.RatePerSec != 5 || q.Burst != 5 || q.Weight != 1 {
		t.Fatalf("unknown key resolved to %q %+v (want default class, burst = ceil(rate))", class, q)
	}

	write(`{"default": {}, "typo": true}`)
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
	write(`{"clients": {"bad key!": {}}}`)
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("invalid client key accepted")
	}
	write(`{"default": {"weight": -2}}`)
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("below -1 quota accepted")
	}
	if _, err := LoadConfig(dir + "/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func writeFile(path, s string) error {
	return os.WriteFile(path, []byte(s), 0o644)
}
