package admission

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Quota is one client class's limits. In a Config, a zero field on a
// client override inherits the default; -1 means explicitly unlimited
// (distinguishable from "inherit" because 0 already means that). After
// Config normalization, callers see resolved quotas where <= 0 means
// unlimited for every field except Weight, which is clamped to >= 1.
type Quota struct {
	// RatePerSec is the sustained submission rate (token-bucket refill).
	RatePerSec float64 `json:"ratePerSec,omitempty"`
	// Burst is the token-bucket depth; defaults to ceil(RatePerSec),
	// min 1, when a rate is set without one.
	Burst int `json:"burst,omitempty"`
	// MaxInFlight caps this client's concurrently dispatched submissions.
	MaxInFlight int `json:"maxInFlight,omitempty"`
	// MaxQueue caps this client's held (fair-queued) submissions.
	MaxQueue int `json:"maxQueue,omitempty"`
	// Weight is the client's DRR share when the gateway is saturated.
	Weight int `json:"weight,omitempty"`
}

// Config is the quota configuration: a default applied to every client
// plus per-API-key overrides. The zero value means "no limits beyond the
// controller's global caps" — every client unlimited, weight 1.
type Config struct {
	Default Quota            `json:"default"`
	Clients map[string]Quota `json:"clients,omitempty"`
}

// LoadConfig reads a quota file: strict JSON (unknown fields rejected),
// override keys must be valid API keys, and no field may be below -1.
func LoadConfig(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("quotas %s: %w", path, err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("quotas %s: unexpected content after the JSON object", path)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("quotas %s: %w", path, err)
	}
	return cfg, nil
}

// Validate rejects malformed quota values and override keys that no
// request could ever present (they would be dead configuration).
func (c Config) Validate() error {
	if err := validQuota("default", c.Default); err != nil {
		return err
	}
	for key, q := range c.Clients {
		if !ValidKey(key) {
			return fmt.Errorf("client key %q is not a valid API key (1..%d chars of [A-Za-z0-9._-])", key, maxKeyLen)
		}
		if err := validQuota("client "+key, q); err != nil {
			return err
		}
	}
	return nil
}

func validQuota(who string, q Quota) error {
	if q.RatePerSec < -1 || q.Burst < -1 || q.MaxInFlight < -1 || q.MaxQueue < -1 || q.Weight < -1 {
		return fmt.Errorf("%s: quota fields must be >= -1 (0 inherits, -1 means unlimited)", who)
	}
	return nil
}

// resolve returns the effective quota and metric class for an identity.
// Keyed clients with an override get their own class (the override key,
// a bounded set drawn from configuration); everyone else shares the
// default quota and the "default" class, keeping metric cardinality
// bounded no matter how many distinct clients connect.
func (c Config) resolve(apiKey string, keyed bool) (class string, q Quota) {
	if keyed {
		if over, ok := c.Clients[apiKey]; ok {
			return apiKey, mergeQuota(c.Default, over)
		}
	}
	return DefaultClass, normalizeQuota(c.Default)
}

// Classes returns every metric class the config can produce, sorted,
// "default" first — the pre-registered label inventory for the
// per-class admission series.
func (c Config) Classes() []string {
	keys := make([]string, 0, len(c.Clients))
	for k := range c.Clients {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return append([]string{DefaultClass}, keys...)
}

// DefaultClass is the metric class of every client without a configured
// override.
const DefaultClass = "default"

// MergeDefaults overlays one quota on a baseline with the config-file
// semantics: zero fields inherit the baseline, -1 pins unlimited,
// anything else replaces. Exposed so a quota file's default can refine
// CLI-flag defaults without erasing them.
func MergeDefaults(base, over Quota) Quota {
	pickF := func(o, d float64) float64 {
		if o != 0 {
			return o
		}
		return d
	}
	pickI := func(o, d int) int {
		if o != 0 {
			return o
		}
		return d
	}
	return Quota{
		RatePerSec:  pickF(over.RatePerSec, base.RatePerSec),
		Burst:       pickI(over.Burst, base.Burst),
		MaxInFlight: pickI(over.MaxInFlight, base.MaxInFlight),
		MaxQueue:    pickI(over.MaxQueue, base.MaxQueue),
		Weight:      pickI(over.Weight, base.Weight),
	}
}

// mergeQuota overlays an override on the default: zero fields inherit,
// -1 pins unlimited, anything else replaces.
func mergeQuota(def, over Quota) Quota {
	return normalizeQuota(MergeDefaults(def, over))
}

// normalizeQuota maps the config encoding to runtime semantics: -1 (and
// any negative) becomes 0 = unlimited, Weight is clamped to >= 1, and a
// rate without a burst earns a burst of ceil(rate) (min 1) so sustained
// conformance does not require sub-second client pacing.
func normalizeQuota(q Quota) Quota {
	if q.RatePerSec < 0 {
		q.RatePerSec = 0
	}
	if q.Burst < 0 {
		q.Burst = 0
	}
	if q.MaxInFlight < 0 {
		q.MaxInFlight = 0
	}
	if q.MaxQueue < 0 {
		q.MaxQueue = 0
	}
	if q.Weight < 1 {
		q.Weight = 1
	}
	if q.RatePerSec > 0 && q.Burst == 0 {
		q.Burst = int(q.RatePerSec)
		if float64(q.Burst) < q.RatePerSec {
			q.Burst++
		}
		if q.Burst < 1 {
			q.Burst = 1
		}
	}
	return q
}
