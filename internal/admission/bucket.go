package admission

import (
	"sync"
	"time"
)

// Bucket is a token bucket with integer nanosecond accounting: one token
// costs period nanoseconds, refills advance the bookmark only by whole
// token-periods, and the fractional remainder is never discarded — so
// over any interval the admitted count is exactly
// min(burst + elapsed/period, requests), with no float drift. Time is
// passed in by the caller, which makes the bucket trivially testable on
// a fake clock and keeps the hot path free of time syscalls the caller
// already paid for.
//
// The zero value is unusable; construct with NewBucket. All methods are
// safe for concurrent use, and Allow performs no allocation.
type Bucket struct {
	mu     sync.Mutex
	period int64 // ns per token
	burst  int64 // max tokens
	tokens int64 // tokens available now
	last   int64 // unixnano bookmark of the last whole-token refill
	primed bool  // bookmark initialized by the first call
}

// NewBucket builds a bucket admitting ratePerSec sustained tokens per
// second with the given burst depth. ratePerSec must be positive (a
// non-positive rate means "unlimited" to callers, who should not build a
// bucket at all); burst < 1 is clamped to 1 so a configured rate always
// admits something.
func NewBucket(ratePerSec float64, burst int) *Bucket {
	period := int64(float64(time.Second) / ratePerSec)
	if period < 1 {
		period = 1 // >1e9 tokens/s: saturate at one per nanosecond
	}
	if burst < 1 {
		burst = 1
	}
	return &Bucket{period: period, burst: int64(burst), tokens: int64(burst)}
}

// refillLocked credits the whole tokens earned since last and advances
// the bookmark by exactly the nanoseconds those tokens cost, preserving
// the remainder. At the cap the bookmark snaps to now: a full bucket
// earns nothing, so idle time must not bank beyond burst.
func (b *Bucket) refillLocked(now int64) {
	if !b.primed {
		b.primed = true
		b.last = now
		return
	}
	if b.tokens >= b.burst {
		b.last = now
		return
	}
	elapsed := now - b.last
	if elapsed <= 0 {
		return
	}
	earned := elapsed / b.period
	if earned > b.burst-b.tokens {
		earned = b.burst - b.tokens
		b.last = now // capped: the excess interval is forfeit, like idle time
	} else {
		b.last += earned * b.period
	}
	b.tokens += earned
}

// Allow consumes one token if available at instant now, reporting
// whether it did. The hot path allocates nothing.
func (b *Bucket) Allow(now time.Time) bool {
	n := now.UnixNano()
	b.mu.Lock()
	b.refillLocked(n)
	ok := b.tokens > 0
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	return ok
}

// NextToken reports how long after now the next token becomes available
// — zero when one is available already. This is the honest Retry-After
// for a rate-throttled client.
func (b *Bucket) NextToken(now time.Time) time.Duration {
	n := now.UnixNano()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(n)
	if b.tokens > 0 {
		return 0
	}
	wait := b.last + b.period - n
	if wait < 0 {
		wait = 0
	}
	return time.Duration(wait)
}

// Tokens reports the tokens available at instant now (tests and
// introspection).
func (b *Bucket) Tokens(now time.Time) int {
	n := now.UnixNano()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(n)
	return int(b.tokens)
}
