package admission

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for bucket conformance tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// TestBucketBurstThenSustain drives the canonical shape: the full burst
// up front, then exactly rate tokens per second, with fractional refill
// carried exactly across steps.
func TestBucketBurstThenSustain(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(10, 5)

	for i := 0; i < 5; i++ {
		if !b.Allow(clk.now()) {
			t.Fatalf("burst token %d refused", i)
		}
	}
	if b.Allow(clk.now()) {
		t.Fatal("6th immediate token allowed past burst 5")
	}
	if wait := b.NextToken(clk.now()); wait != 100*time.Millisecond {
		t.Fatalf("NextToken = %v, want exactly 100ms at 10/s", wait)
	}

	// Sustain: one token per 100ms step, never more, for 5 simulated
	// seconds.
	allowed := 0
	for step := 0; step < 50; step++ {
		now := clk.advance(100 * time.Millisecond)
		if !b.Allow(now) {
			t.Fatalf("step %d: sustained token refused", step)
		}
		allowed++
		if b.Allow(now) {
			t.Fatalf("step %d: second token inside one period allowed", step)
		}
	}
	if allowed != 50 {
		t.Fatalf("sustained phase allowed %d, want 50", allowed)
	}

	// Idle refill caps at burst: a long sleep banks 5, not 50.
	now := clk.advance(5 * time.Second)
	if got := b.Tokens(now); got != 5 {
		t.Fatalf("after long idle Tokens = %d, want burst cap 5", got)
	}
}

// TestBucketFractionalExactness uses a rate whose period does not divide
// the step: 3/s polled every 100ms for 10s must admit exactly 30 — any
// remainder truncation per step would lose ~3 of them.
func TestBucketFractionalExactness(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(3, 1)
	if !b.Allow(clk.now()) {
		t.Fatal("initial burst token refused")
	}
	allowed := 0
	for step := 0; step < 100; step++ {
		now := clk.advance(100 * time.Millisecond)
		for b.Allow(now) {
			allowed++
		}
	}
	if allowed != 30 {
		t.Fatalf("10s at 3/s admitted %d, want exactly 30", allowed)
	}
}

// TestBucketConcurrentExactness hammers Allow from many goroutines at a
// frozen instant — exactly burst must pass — then advances the clock
// once and hammers again — exactly rate x elapsed more. Run under -race
// in CI, this also proves the locking.
func TestBucketConcurrentExactness(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(10, 25)
	hammer := func(now time.Time, tries int) int64 {
		var allowed atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < tries; i++ {
					if b.Allow(now) {
						allowed.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		return allowed.Load()
	}
	if got := hammer(clk.now(), 50); got != 25 {
		t.Fatalf("frozen clock admitted %d, want exactly burst 25", got)
	}
	if got := hammer(clk.advance(2*time.Second), 50); got != 20 {
		t.Fatalf("after 2s at 10/s admitted %d, want exactly 20", got)
	}
	if got := hammer(clk.advance(500*time.Millisecond), 50); got != 5 {
		t.Fatalf("after 500ms at 10/s admitted %d, want exactly 5", got)
	}
}

// TestBucketExtremeRates pins the clamps: a rate above 1e9/s saturates
// at one token per nanosecond instead of dividing by zero, and burst < 1
// still admits.
func TestBucketExtremeRates(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(5e9, 0)
	if !b.Allow(clk.now()) {
		t.Fatal("clamped-burst bucket refused its one token")
	}
	if b.period != 1 {
		t.Fatalf("period = %dns, want clamp to 1ns", b.period)
	}
	now := clk.advance(3 * time.Nanosecond)
	if got := b.Tokens(now); got != 1 {
		t.Fatalf("Tokens = %d, want burst cap 1", got)
	}
}

// TestBucketAllowZeroAlloc pins the hot path at zero allocations.
func TestBucketAllowZeroAlloc(t *testing.T) {
	b := NewBucket(1e6, 1<<30)
	now := time.Unix(1_700_000_000, 0)
	if avg := testing.AllocsPerRun(1000, func() {
		b.Allow(now)
	}); avg != 0 {
		t.Fatalf("Allow allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		b.NextToken(now)
	}); avg != 0 {
		t.Fatalf("NextToken allocates %.1f per call, want 0", avg)
	}
}
