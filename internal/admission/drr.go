package admission

// drr is a weighted deficit-round-robin queue over unit-cost items: the
// scheduler that decides which held submission dispatches next when the
// gateway is saturated. Each flow (client) owns a FIFO of items and a
// weight; a round visits active flows in a fixed rotation, crediting a
// flow quantum×weight deficit when its turn begins and serving one item
// per deficit point. Over any backlogged interval every active flow is
// served within ±1 quantum×weight of its proportional share, and every
// non-empty flow is served at least once per full round — the two
// properties the property-based test in drr_test.go pins.
//
// Items cost 1 each (every submission is one simulation job; job cost is
// the backend's problem, placement is the ring's), so quantum 1 gives
// exact weight-proportional interleaving.
//
// Not safe for concurrent use; the Controller serializes access.
type drr[T any] struct {
	quantum int
	flows   map[string]*drrFlow[T]
	active  []*drrFlow[T] // rotation order; index 0 is the cursor's flow
	size    int
}

type drrFlow[T any] struct {
	key     string
	weight  int
	deficit int
	items   []T
	head    int // index of the first unserved item (amortized pop)
	queued  bool
}

func newDRR[T any](quantum int) *drr[T] {
	if quantum < 1 {
		quantum = 1
	}
	return &drr[T]{quantum: quantum, flows: map[string]*drrFlow[T]{}}
}

// Len reports the queued item count.
func (d *drr[T]) Len() int { return d.size }

// Push appends v to key's flow, activating the flow at the back of the
// rotation if it was idle. weight applies from the flow's next quantum
// grant (re-pushing with a changed weight re-weights future rounds).
func (d *drr[T]) Push(key string, weight int, v T) {
	if weight < 1 {
		weight = 1
	}
	f := d.flows[key]
	if f == nil {
		f = &drrFlow[T]{key: key}
		d.flows[key] = f
	}
	f.weight = weight
	f.items = append(f.items, v)
	d.size++
	if !f.queued {
		f.queued = true
		f.deficit = 0 // a fresh activation earns its quantum at its turn
		d.active = append(d.active, f)
	}
}

// Pop serves the next item under the DRR discipline. ok is false when
// the queue is empty.
func (d *drr[T]) Pop() (v T, ok bool) {
	for d.size > 0 {
		f := d.active[0]
		if f.head >= len(f.items) {
			// Emptied by earlier pops this visit; deactivate. Deficit does
			// not carry across idle periods (classic DRR: an idle flow must
			// not bank credit).
			d.deactivateFront()
			continue
		}
		if f.deficit == 0 {
			f.deficit = d.quantum * f.weight
		}
		v = f.items[f.head]
		var zero T
		f.items[f.head] = zero // release the reference for GC
		f.head++
		f.deficit--
		d.size--
		if f.head >= len(f.items) {
			d.deactivateFront()
		} else if f.deficit == 0 {
			d.rotateFront()
		}
		return v, true
	}
	return v, false
}

func (d *drr[T]) deactivateFront() {
	f := d.active[0]
	f.queued = false
	f.deficit = 0
	f.items = f.items[:0]
	f.head = 0
	d.active = d.active[1:]
	if len(d.active) == 0 {
		d.active = nil // let the backing array go once the queue drains
	}
}

func (d *drr[T]) rotateFront() {
	f := d.active[0]
	copy(d.active, d.active[1:])
	d.active[len(d.active)-1] = f
}
