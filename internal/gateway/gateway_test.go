package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rumor/internal/experiment"
	"rumor/internal/serve"
)

const specBody = `{"graph":"star:16","protocol":"push","trials":2,"seed":9}`

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// hostPort strips the scheme from an httptest URL.
func hostPort(t *testing.T, url string) string {
	t.Helper()
	return strings.TrimPrefix(url, "http://")
}

// deadAddr returns an address that refuses connections: a port that was
// just bound and released.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func newGateway(t *testing.T, opts Options) *Gateway {
	t.Helper()
	g, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// TestScriptedFailureSequence drives the retry loop through the full
// failure alphabet — refused connection, 500, a hang past the per-try
// timeout — before a healthy response, asserting at-most-N attempts,
// round-robin failover, and the deterministic backoff lower bound.
func TestScriptedFailureSequence(t *testing.T) {
	var hits atomic.Int32
	scripted := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch hits.Add(1) {
		case 1:
			http.Error(w, "transient", http.StatusInternalServerError)
		case 2:
			time.Sleep(2 * time.Second) // well past the per-try timeout
			w.Write([]byte("too late"))
		default:
			w.Write([]byte(`{"ok":true}`))
		}
	}))
	defer scripted.Close()

	g := newGateway(t, Options{
		Backends:      []string{deadAddr(t), hostPort(t, scripted.URL)},
		Attempts:      6,
		PerTryTimeout: 100 * time.Millisecond,
		BackoffBase:   10 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
	})
	// Explicit candidate order: the dead backend first, so the sequence is
	// refuse → 500 → refuse → slow → refuse → healthy.
	cands := []*backend{g.backends[0], g.backends[1]}
	start := time.Now()
	resp, err := g.attemptProxy(context.Background(), cands, "GET", "/v1/healthz", "", nil,
		proxyPolicy{attempts: 6})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("attemptProxy: %v", err)
	}
	if resp.status != http.StatusOK || string(resp.body) != `{"ok":true}` {
		t.Fatalf("final response: %d %q", resp.status, resp.body)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("scripted backend saw %d requests, want 3 (500, slow, healthy)", n)
	}
	// Five failed attempts → five backoffs with deterministic lower halves:
	// 5 + 10 + 20 + 25 + 25 = 85ms (base 10ms doubling, capped at 50ms).
	if min := 85 * time.Millisecond; elapsed < min {
		t.Fatalf("elapsed %v < %v: backoff not applied", elapsed, min)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("elapsed %v: runaway retries", elapsed)
	}
	if got := g.retries.Load(); got != 5 {
		t.Fatalf("retries = %d, want 5", got)
	}
	if got := g.failovers.Load(); got != 5 {
		t.Fatalf("failovers = %d, want 5 (every retry switched backend)", got)
	}
}

// TestAtMostNAttempts: a persistently failing backend is asked exactly
// Attempts times, then the client gets 502 — the gateway never spins.
func TestAtMostNAttempts(t *testing.T) {
	var hits atomic.Int32
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "broken", http.StatusInternalServerError)
	}))
	defer bad.Close()
	g := newGateway(t, Options{
		Backends:    []string{hostPort(t, bad.URL)},
		Attempts:    3,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(specBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d (%s), want 502", resp.StatusCode, body)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("backend saw %d attempts, want exactly 3", n)
	}
	if got := g.exhausted.Load(); got != 1 {
		t.Fatalf("exhausted = %d, want 1", got)
	}
}

// TestLoadShedWhenAllDown: with every ring node for the key ejected the
// gateway sheds immediately — 503 plus Retry-After — instead of queueing
// work it cannot place.
func TestLoadShedWhenAllDown(t *testing.T) {
	g := newGateway(t, Options{Backends: []string{deadAddr(t)}, CheckInterval: 0})
	g.backends[0].healthy.Store(false)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(specBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("load-shed 503 without Retry-After")
	}
	if got := g.shed.Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
}

// TestBadRequestsDontBurnRetries: a malformed spec is rejected at the
// gateway with 400 before any backend attempt.
func TestBadRequestsDontBurnRetries(t *testing.T) {
	var hits atomic.Int32
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer backend.Close()
	g := newGateway(t, Options{Backends: []string{hostPort(t, backend.URL)}})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	for _, body := range []string{
		`{"graph":"star:16","bogus":1}`,
		`{"graph":"nonsense:4","protocol":"push","trials":1}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("backend saw %d requests for malformed bodies, want 0", n)
	}
}

// TestEjectionAndReadmission: the active checker ejects a backend whose
// /v1/readyz fails (as a draining rumord's does) and readmits it when
// probes recover.
func TestEjectionAndReadmission(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/readyz" {
			http.NotFound(w, r)
			return
		}
		if ready.Load() {
			w.Write([]byte(`{"status":"ready"}`))
		} else {
			http.Error(w, `{"status":"draining"}`, http.StatusServiceUnavailable)
		}
	}))
	defer backend.Close()
	g := newGateway(t, Options{
		Backends:      []string{hostPort(t, backend.URL)},
		CheckInterval: 10 * time.Millisecond,
		EjectAfter:    2,
		ReadmitAfter:  2,
	})
	b := g.backends[0]
	waitUntil(t, "initial probes to pass", func() bool { return b.checks.Load() >= 2 })
	if !b.healthy.Load() {
		t.Fatal("backend unhealthy while readyz passes")
	}
	ready.Store(false)
	waitUntil(t, "ejection after readyz failures", func() bool { return !b.healthy.Load() })
	if got := b.ejections.Load(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}
	ready.Store(true)
	waitUntil(t, "re-admission after readyz recovery", func() bool { return b.healthy.Load() })
}

// TestJob404Spread: a job lookup walks the whole ring before reporting
// 404, so a job living on any backend is found regardless of which ring
// node owns its ID today.
func TestJob404Spread(t *testing.T) {
	jobJSON := `{"job":"abc","status":"done"}` + "\n"
	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown job"}`, http.StatusNotFound)
	}))
	defer empty.Close()
	holder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(jobJSON))
	}))
	defer holder.Close()

	g := newGateway(t, Options{
		Backends:    []string{hostPort(t, empty.URL), hostPort(t, holder.URL)},
		BackoffBase: time.Millisecond,
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/abc")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != jobJSON {
		t.Fatalf("job lookup: %d %q (must find the holder wherever it sits on the ring)", resp.StatusCode, body)
	}

	// All backends 404 → the gateway reports 404, not 502.
	g2 := newGateway(t, Options{
		Backends:    []string{hostPort(t, empty.URL)},
		BackoffBase: time.Millisecond,
	})
	ts2 := httptest.NewServer(g2.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/v1/jobs/missing")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("all-miss lookup: %d, want 404", resp2.StatusCode)
	}
}

// TestStreamResumeByRerun: a backend dies two frames into a stream, and
// its replacement doesn't know the job. The gateway must re-create the
// job from the remembered request, re-attach, skip the two delivered
// frames, and hand the client one seamless stream.
func TestStreamResumeByRerun(t *testing.T) {
	frames := [][]byte{
		[]byte(`{"trial":0,"rounds":3}` + "\n"),
		[]byte(`{"trial":1,"rounds":4}` + "\n"),
		[]byte(`{"trial":2,"rounds":2}` + "\n"),
		[]byte(`{"trial":3,"rounds":5}` + "\n"),
	}
	final := []byte(`{"done":true,"job":"x","trials":4}` + "\n")
	var posts, streams atomic.Int32
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == "POST":
			posts.Add(1)
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"job":"x","status":"queued"}` + "\n"))
		case strings.HasSuffix(r.URL.Path, "/stream"):
			switch streams.Add(1) {
			case 1:
				// Two frames, then the backend "dies" mid-stream.
				w.Write(frames[0])
				w.Write(frames[1])
				w.(http.Flusher).Flush()
				panic(http.ErrAbortHandler)
			case 2:
				// The restarted backend has never heard of the job.
				http.Error(w, `{"error":"unknown job"}`, http.StatusNotFound)
			default:
				for _, f := range frames {
					w.Write(f)
				}
				w.Write(final)
			}
		default:
			http.NotFound(w, r)
		}
	}))
	defer backend.Close()

	g := newGateway(t, Options{
		Backends:    []string{hostPort(t, backend.URL)},
		Attempts:    4,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// Seed the gateway's spec memory: route the job through it once.
	spec := experiment.DefaultRunSpec()
	if err := json.Unmarshal([]byte(specBody), &spec); err != nil {
		t.Fatal(err)
	}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	id := serve.JobID(norm)
	resp, err := http.Post(ts.URL+"/v1/run?wait=0", "application/json", strings.NewReader(specBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("seed POST status %d", resp.StatusCode)
	}

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Join(append(append([][]byte{}, frames...), final), nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("stream bytes:\ngot:  %q\nwant: %q", got, want)
	}
	if p := posts.Load(); p != 2 {
		t.Fatalf("backend saw %d POSTs, want 2 (original + rerun)", p)
	}
	if s := streams.Load(); s != 3 {
		t.Fatalf("backend saw %d stream GETs, want 3 (abort, 404, full)", s)
	}
	if got := g.streamReruns.Load(); got != 1 {
		t.Fatalf("streamReruns = %d, want 1", got)
	}
	if got := g.streamResumes.Load(); got != 1 {
		t.Fatalf("streamResumes = %d, want 1", got)
	}
}

// TestEndToEndRealBackends: the gateway in front of two real serve
// instances must return byte-identical results to the local reference
// oracle, route identical specs to one backend (cross-client dedup), and
// proxy streams intact.
func TestEndToEndRealBackends(t *testing.T) {
	newBackendServer := func() (*serve.Server, *httptest.Server) {
		s, err := serve.New(serve.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		return s, ts
	}
	s1, b1 := newBackendServer()
	s2, b2 := newBackendServer()
	g := newGateway(t, Options{Backends: []string{hostPort(t, b1.URL), hostPort(t, b2.URL)}})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	spec := experiment.DefaultRunSpec()
	if err := json.Unmarshal([]byte(specBody), &spec); err != nil {
		t.Fatal(err)
	}
	ref, err := serve.ComputeReference(spec)
	if err != nil {
		t.Fatal(err)
	}

	post := func() (http.Header, []byte) {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(specBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		return resp.Header, body
	}
	hdr1, body1 := post()
	hdr2, body2 := post()
	if !bytes.Equal(body1, ref.Body) {
		t.Fatal("gateway-proxied body differs from local reference")
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("repeated request bodies differ")
	}
	if hdr1.Get("X-Rumorgw-Backend") != hdr2.Get("X-Rumorgw-Backend") {
		t.Fatalf("identical spec routed to different backends: %s vs %s",
			hdr1.Get("X-Rumorgw-Backend"), hdr2.Get("X-Rumorgw-Backend"))
	}
	if src := hdr2.Get("X-Rumord-Source"); src != "cache" && src != "dedup" {
		t.Fatalf("second request source %q: consistent routing should hit the warm backend", src)
	}
	if sims := s1.Stats().Simulations + s2.Stats().Simulations; sims != 1 {
		t.Fatalf("%d simulations across backends, want 1 (cross-client dedup)", sims)
	}

	// Stream through the gateway: byte-identical to the reference frames.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + ref.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Join(append(append([][]byte{}, ref.Lines...), ref.Final), nil)
	if !bytes.Equal(streamed, want) {
		t.Fatal("gateway-proxied stream differs from local reference")
	}

	// Sweep through the gateway matches its reference too.
	sweepBody := `{"defaults":{"trials":2,"seed":3},"graphs":["star:12","cycle:10"],"protocols":["push","visitx"]}`
	sw := experiment.Sweep{Defaults: experiment.DefaultRunSpec()}
	if err := json.Unmarshal([]byte(sweepBody), &sw); err != nil {
		t.Fatal(err)
	}
	points, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sref, err := serve.ComputeSweepReference(points)
	if err != nil {
		t.Fatal(err)
	}
	wresp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	wbody, err := io.ReadAll(wresp.Body)
	wresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", wresp.StatusCode, wbody)
	}
	if !bytes.Equal(wbody, sref.Body) {
		t.Fatal("gateway-proxied sweep body differs from local reference")
	}
}
