package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rumor/internal/admission"
	"rumor/internal/experiment"
	"rumor/internal/metrics"
	"rumor/internal/serve"
)

// postWithKey submits specBody to the gateway under an API key and
// returns status, headers, and body.
func postWithKey(t *testing.T, url, key, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set(admission.KeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func runSpec(seed uint64) string {
	return fmt.Sprintf(`{"graph":"star:16","protocol":"push","trials":2,"seed":%d}`, seed)
}

// TestFairnessGreedyAndPolite is the end-to-end fairness scenario: one
// greedy keyed client floods the gateway while a polite weighted client
// submits sequentially through the same saturated admission layer.
// Polite must see zero throttles and byte-identical results; greedy must
// be throttled with honest Retry-After headers; the conservation law
// must hold on the final snapshot; the queue-wait histogram must have
// observed the congestion.
func TestFairnessGreedyAndPolite(t *testing.T) {
	newBackendServer := func() *httptest.Server {
		s, err := serve.New(serve.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		return ts
	}
	b1, b2 := newBackendServer(), newBackendServer()
	g := newGateway(t, Options{
		Backends:             []string{hostPort(t, b1.URL), hostPort(t, b2.URL)},
		AdmissionMaxInFlight: 2, // matches the backends' aggregate workers
		Quotas: admission.Config{
			Clients: map[string]admission.Quota{
				"greedy": {MaxInFlight: 4, MaxQueue: 4, Weight: 1},
				"polite": {Weight: 4},
			},
		},
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// Greedy flood: 12 workers hammering distinct specs, far past the
	// client's 4-in-flight / 4-queued quota.
	var greedy429, greedyBadHint atomic.Int64
	stop := make(chan struct{})
	var flood sync.WaitGroup
	for w := 0; w < 12; w++ {
		flood.Add(1)
		go func(w int) {
			defer flood.Done()
			for seed := uint64(0); ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				code, hdr, _ := postWithKey(t, ts.URL, "greedy", runSpec(1000+uint64(w)*1000+seed))
				if code == http.StatusTooManyRequests {
					greedy429.Add(1)
					if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
						greedyBadHint.Add(1)
					}
				}
			}
		}(w)
	}

	// Polite client: sequential requests through the same congestion,
	// each checked byte-for-byte against the local reference oracle.
	const politeRuns = 6
	var politeWorst time.Duration
	for i := 0; i < politeRuns; i++ {
		body := runSpec(uint64(900000 + i)) // a seed space the flood cannot reach
		spec := experiment.DefaultRunSpec()
		if err := json.Unmarshal([]byte(body), &spec); err != nil {
			t.Fatal(err)
		}
		ref, err := serve.ComputeReference(spec)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		code, _, got := postWithKey(t, ts.URL, "polite", body)
		elapsed := time.Since(start)
		if elapsed > politeWorst {
			politeWorst = elapsed
		}
		if code != http.StatusOK {
			t.Fatalf("polite run %d: status %d (%s) — a polite client must never be dropped", i, code, got)
		}
		if string(got) != string(ref.Body) {
			t.Fatalf("polite run %d: body differs from the reference oracle", i)
		}
	}
	close(stop)
	flood.Wait()

	if politeWorst > 15*time.Second {
		t.Fatalf("polite worst-case latency %v: starved behind the greedy flood", politeWorst)
	}
	if greedy429.Load() == 0 {
		t.Fatal("greedy flood saw zero 429s: per-client quotas not enforced")
	}
	if n := greedyBadHint.Load(); n != 0 {
		t.Fatalf("%d greedy 429s carried no usable Retry-After", n)
	}

	st := g.Admission()
	total := st.Dispatched + st.Throttled + st.Shed + st.Canceled + int64(st.QueueLen)
	if st.Submitted != total {
		t.Fatalf("conservation broken: submitted=%d vs accounted=%d (%+v)", st.Submitted, total, st)
	}
	if st.ByClass["polite"].Throttled != 0 || st.ByClass["polite"].Shed != 0 {
		t.Fatalf("polite client was throttled/shed: %+v", st.ByClass["polite"])
	}
	if st.ByClass["greedy"].Throttled == 0 {
		t.Fatalf("greedy class shows no throttles: %+v", st.ByClass["greedy"])
	}

	// The exposition must carry the per-class admission series and agree
	// with the controller about the greedy throttles.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v := sc.Sum("rumorgw_admission_throttled_total"); v <= 0 {
		t.Fatalf("rumorgw_admission_throttled_total = %v, want > 0", v)
	}
	if count, err := sc.CheckHistogram("rumorgw_admission_queue_wait_seconds",
		map[string]string{"class": "greedy"}); err != nil || count < 1 {
		t.Fatalf("greedy queue-wait histogram count=%d err=%v, want >= 1 observation", count, err)
	}
}

// stubBackend is an httptest backend with a scriptable readyz headroom
// and run handler for headroom-placement tests.
type stubBackend struct {
	ts       *httptest.Server
	headroom atomic.Int64
	runs     atomic.Int64
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	sb := &stubBackend{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ready","queueDepth":0,"queueCapacity":8,"queueHeadroom":%d}`, sb.headroom.Load())
	})
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		sb.runs.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte(`{"ok":true}`))
	})
	sb.ts = httptest.NewServer(mux)
	t.Cleanup(sb.ts.Close)
	return sb
}

// TestHeadroomPlacementAndShed pins headroom propagation: a backend that
// reports a full queue is deprioritized in candidate order, and when
// every healthy backend is known-full the gateway sheds at admission
// with a drain-derived Retry-After instead of queueing unplaceable work.
func TestHeadroomPlacementAndShed(t *testing.T) {
	a, b := newStubBackend(t), newStubBackend(t)
	a.headroom.Store(0)
	b.headroom.Store(5)
	g := newGateway(t, Options{Backends: []string{hostPort(t, a.ts.URL), hostPort(t, b.ts.URL)}})

	// Before any probe: headroom unknown (-1) everywhere, nothing sheds,
	// candidate order is pure ring order.
	if _, known := g.aggregateHeadroom(); known {
		t.Fatal("aggregate headroom known before any probe")
	}
	g.checkAll()
	if hr, known := g.aggregateHeadroom(); !known || hr != 5 {
		t.Fatalf("aggregate headroom = %d known=%v, want 5 true", hr, known)
	}

	// The known-full backend must come last for every key, regardless of
	// its ring position.
	aAddr := g.backends[0].addr
	for _, key := range []string{"k1", "k2", "k3", "k4", "k5"} {
		cands, _ := g.candidates(key)
		if len(cands) != 2 {
			t.Fatalf("key %s: %d candidates, want 2 (full backends stay reachable)", key, len(cands))
		}
		if cands[0].addr == aAddr {
			t.Fatalf("key %s: known-full backend ranked first", key)
		}
	}

	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	if code, _, body := postWithKey(t, ts.URL, "", specBody); code != http.StatusOK {
		t.Fatalf("run with one open backend: %d (%s)", code, body)
	}
	if a.runs.Load() != 0 || b.runs.Load() != 1 {
		t.Fatalf("placement ignored headroom: a=%d b=%d runs", a.runs.Load(), b.runs.Load())
	}

	// Every healthy backend known-full: shed at intake, honestly.
	b.headroom.Store(0)
	g.checkAll()
	code, hdr, body := postWithKey(t, ts.URL, "", specBody)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("zero aggregate headroom answered %d (%s), want 503", code, body)
	}
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("headroom shed Retry-After = %q, want an integer >= 1", hdr.Get("Retry-After"))
	}
	if st := g.Admission(); st.Shed != 1 {
		t.Fatalf("admission shed = %d, want 1", st.Shed)
	}

	// Headroom recovers → intake reopens.
	a.headroom.Store(3)
	g.checkAll()
	if code, _, body := postWithKey(t, ts.URL, "", specBody); code != http.StatusOK {
		t.Fatalf("run after recovery: %d (%s)", code, body)
	}
}

// Test429PassThrough pins the backend-429 contract: when every attempt
// bounces off a full backend queue the client sees the backend's own 429
// (Retry-After preserved), and a backend that omits the hint gets one
// injected by the gateway — never a synthetic 502, never a hintless 429.
func Test429PassThrough(t *testing.T) {
	for _, tc := range []struct {
		name      string
		hdr       string // backend's Retry-After, "" for none
		wantExact string // expected header at the client, "" for any >= 1
	}{
		{"backend hint preserved", "7", "7"},
		{"missing hint injected", "", ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var hits atomic.Int32
			busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasSuffix(r.URL.Path, "/readyz") {
					w.Write([]byte(`{"queueHeadroom":8}`))
					return
				}
				hits.Add(1)
				if tc.hdr != "" {
					w.Header().Set("Retry-After", tc.hdr)
				}
				http.Error(w, `{"error":"serve: job queue full"}`, http.StatusTooManyRequests)
			}))
			defer busy.Close()
			g := newGateway(t, Options{
				Backends:    []string{hostPort(t, busy.URL)},
				Attempts:    3,
				BackoffBase: time.Millisecond,
				BackoffMax:  2 * time.Millisecond,
			})
			ts := httptest.NewServer(g.Handler())
			defer ts.Close()

			code, hdr, body := postWithKey(t, ts.URL, "", specBody)
			if code != http.StatusTooManyRequests {
				t.Fatalf("status %d (%s), want the backend's 429 passed through", code, body)
			}
			ra := hdr.Get("Retry-After")
			if tc.wantExact != "" && ra != tc.wantExact {
				t.Fatalf("Retry-After = %q, want the backend's %q preserved", ra, tc.wantExact)
			}
			if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				t.Fatalf("Retry-After = %q, want an integer >= 1", ra)
			}
			if n := hits.Load(); n != 3 {
				t.Fatalf("backend saw %d attempts, want the full retry budget 3", n)
			}
			// A 429 is backpressure, not failure: the backend must still be
			// healthy, with its headroom snapped to zero by the passive signal.
			if !g.backends[0].healthy.Load() {
				t.Fatal("backend ejected for answering 429")
			}
			if hr := g.backends[0].headroom.Load(); hr != 0 {
				t.Fatalf("backend headroom = %d after 429, want 0 (passive signal)", hr)
			}
		})
	}
}
