package gateway

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
)

// terminalPrefix identifies the terminal NDJSON frame of a job stream
// (serve.streamFinal marshals Done first). Everything before it is a
// deterministic, strictly-ordered frame sequence — the property stream
// resume leans on.
var terminalPrefix = []byte(`{"done":true`)

// streamState tracks one client's stream across backend attempts.
type streamState struct {
	id        string
	delivered int  // frames already written to the client
	headerOut bool // response header written (commits us to 200)
	finished  bool // terminal frame delivered
}

// handleStream proxies GET /v1/jobs/{id}/stream. Frames for a given job
// are byte-identical wherever and whenever it runs, so the gateway can
// survive a backend dying mid-stream: fail over to the next ring node,
// re-create the job there if needed from the remembered request
// (resume-by-rerun), skip the frames the client already has, and keep
// going — the client sees one seamless, complete stream.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	defer g.m.timeRoute("stream")()
	g.requests.Add(1)
	id := r.PathValue("id")
	cands, down := g.candidates(id)
	if len(cands) == 0 {
		g.shed.Add(1)
		w.Header().Set("Retry-After", g.shedRetryAfter())
		writeError(w, http.StatusServiceUnavailable,
			"all %d ring backends for this key are unhealthy; retry after the next health sweep", down)
		return
	}
	st := &streamState{id: id}
	ctx := r.Context()
	// Streams may legitimately need to visit every backend (404 walk) and
	// then retry; bound total attempts by attempts tries per candidate.
	maxTries := g.opts.attempts() * len(cands)
	misses := 0
	backoffs := 0
	for try := 0; try < maxTries && ctx.Err() == nil; try++ {
		b := cands[try%len(cands)]
		if try > 0 {
			g.retries.Add(1)
			if cands[(try-1)%len(cands)] != b {
				g.failovers.Add(1)
			}
		}
		status := g.streamOnce(ctx, b, w, st)
		switch {
		case st.finished:
			if try > 0 && st.delivered > 0 {
				g.streamResumes.Add(1)
			}
			return
		case status == http.StatusNotFound:
			// The backend is healthy but lacks the job — it restarted, or
			// never saw it. Re-create it from the remembered request and
			// stream again; failing that, walk on (it may live elsewhere).
			if g.rerun(ctx, b, st.id) {
				g.streamReruns.Add(1)
				g.streamOnce(ctx, b, w, st)
				if st.finished {
					g.streamResumes.Add(1)
					return
				}
			} else {
				misses++
				if misses >= len(cands) && !st.headerOut {
					writeError(w, http.StatusNotFound, "unknown job %s on every backend", st.id)
					return
				}
				continue // a 404 walk costs no backoff
			}
		}
		// Transport failure or retryable status: back off before the next
		// candidate unless the client is gone.
		if !sleep(ctx, g.backoff(min(backoffs, 8))) {
			return
		}
		backoffs++
	}
	if !st.headerOut {
		g.exhausted.Add(1)
		writeError(w, http.StatusBadGateway,
			"no backend could serve the stream after %d attempts", maxTries)
	}
	// Past the header there is no way to signal failure in-band; the
	// missing terminal frame tells the client the stream is truncated.
}

// streamOnce attaches to b's stream of st.id, skips the frames the
// client already holds, and relays the rest. It returns the HTTP status
// of the attempt (0 on transport error); st records progress.
func (g *Gateway) streamOnce(ctx context.Context, b *backend, w http.ResponseWriter, st *streamState) int {
	req, err := http.NewRequestWithContext(ctx, "GET", b.url+"/v1/jobs/"+st.id+"/stream", nil)
	if err != nil {
		b.noteFailure(g.opts.ejectAfter())
		return 0
	}
	resp, err := g.client.Do(req)
	if err != nil {
		b.noteFailure(g.opts.ejectAfter())
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drainBody(resp)
		if resp.StatusCode == http.StatusNotFound {
			b.noteSuccess(g.opts.readmitAfter())
		} else {
			b.noteFailure(g.opts.ejectAfter())
		}
		return resp.StatusCode
	}
	b.noteSuccess(g.opts.readmitAfter())
	flusher, _ := w.(http.Flusher)
	rd := bufio.NewReader(resp.Body)
	skip := st.delivered
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			// Includes EOF before the terminal frame (the backend died) and
			// a trailing partial line, which is dropped: the next attempt
			// re-reads the full frame, so the client only ever sees whole,
			// byte-exact frames.
			b.noteFailure(g.opts.ejectAfter())
			return 0
		}
		if skip > 0 {
			skip--
			continue
		}
		if !st.headerOut {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Rumord-Job", st.id)
			w.Header().Set("X-Rumorgw-Backend", b.addr)
			w.WriteHeader(http.StatusOK)
			st.headerOut = true
		}
		if _, err := w.Write(line); err != nil {
			return http.StatusOK // client gone; ctx will report it
		}
		if flusher != nil {
			flusher.Flush()
		}
		if bytes.HasPrefix(line, terminalPrefix) {
			st.finished = true
			return http.StatusOK
		}
		st.delivered++
	}
}

// rerun re-creates job id on b by replaying the remembered original
// request with ?wait=0 — safe because the job is content-addressed and
// deterministic: however many times it runs, its bytes are the same.
func (g *Gateway) rerun(ctx context.Context, b *backend, id string) bool {
	spec, ok := g.recall(id)
	if !ok {
		return false
	}
	resp, err := g.once(ctx, b, "POST", spec.path, "wait=0", spec.body)
	if err != nil {
		b.noteFailure(g.opts.ejectAfter())
		return false
	}
	return resp.status < 300
}
