package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend owns
// `replicas` virtual points placed by hashing "addr#i"; a key is owned by
// the first point clockwise from its own hash. Keys here are rumord job
// IDs — already content hashes of the canonical request — so identical
// specs from any client always map to the same backend, which is what
// makes cross-backend singleflight dedup and result caching work without
// any shared state between backends.
//
// The ring is immutable after construction. Backend failure does not
// rewrite it: unhealthy nodes are skipped at selection time (see
// Gateway.candidates), so a backend that comes back owns exactly the
// keys it owned before — no rehash storms, and a restarted backend's
// still-warm disk spill keeps lining up with its keyspace.
type ring struct {
	hashes []uint64 // sorted virtual point positions
	owner  []int    // owner[i] = backend index of hashes[i]
	nodes  int
}

// newRing places replicas virtual points per backend. Names must be
// distinct; collisions of full SHA-256-derived points are not handled
// beyond last-writer-wins on a duplicate position (astronomically
// unlikely, and harmless: one vnode shifts).
func newRing(names []string, replicas int) *ring {
	if replicas < 1 {
		replicas = 1
	}
	r := &ring{
		hashes: make([]uint64, 0, len(names)*replicas),
		owner:  make([]int, 0, len(names)*replicas),
		nodes:  len(names),
	}
	type point struct {
		h    uint64
		node int
	}
	points := make([]point, 0, len(names)*replicas)
	for node, name := range names {
		for i := 0; i < replicas; i++ {
			points = append(points, point{hash64(fmt.Sprintf("%s#%d", name, i)), node})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].h < points[j].h })
	for _, p := range points {
		r.hashes = append(r.hashes, p.h)
		r.owner = append(r.owner, p.node)
	}
	return r
}

// sequence returns every backend index in ring order starting from key's
// owner: the failover order for this key. The first entry is the primary;
// retries walk the rest, so a key's traffic concentrates on as few
// backends as possible even under failures.
func (r *ring) sequence(key string) []int {
	seq := make([]int, 0, r.nodes)
	if len(r.hashes) == 0 {
		return seq
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	seen := make([]bool, r.nodes)
	for i := 0; len(seq) < r.nodes; i++ {
		node := r.owner[(start+i)%len(r.hashes)]
		if !seen[node] {
			seen[node] = true
			seq = append(seq, node)
		}
	}
	return seq
}

// hash64 positions a string on the ring: the first 8 bytes of its
// SHA-256. Job IDs are themselves SHA-256 hex, so this is hashing a
// hash — uniform by construction.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
