// Package gateway is the horizontal half of the serving tier: an HTTP
// front that routes rumord's content-addressed jobs across N backends.
//
// Routing is a consistent-hash ring keyed by the job ID — the SHA-256 of
// the canonical request that the backends themselves key dedup, caching,
// and disk spill by (serve.JobID / serve.SweepJobID, recomputed here
// from the same request bytes). Identical specs from any client land on
// the same backend, so in-flight singleflight dedup and warm caches keep
// collapsing duplicates across processes with zero shared state.
//
// Failure handling leans entirely on the determinism the engine layers
// guarantee: a job retried anywhere returns byte-identical bytes, so the
// gateway is free to retry on connection errors, timeouts, and 5xxs with
// exponential backoff plus jitter, failing over around the ring, and to
// resume a dead backend's NDJSON stream by re-running the job elsewhere
// and skipping the frames already delivered. Backends are ejected by an
// active /v1/readyz checker (draining backends stop receiving work
// before their 503s start) and readmitted when probes recover. When every
// backend is ejected the gateway load-sheds with 503 + Retry-After
// instead of queueing unbounded work it cannot place.
package gateway

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rumor/internal/admission"
	"rumor/internal/lru"
)

// Options configures a Gateway. Backends is required; everything else
// defaults sanely for a LAN of rumord processes.
type Options struct {
	// Backends are the rumord addresses ("host:port"; an http:// prefix is
	// tolerated and stripped). At least one is required.
	Backends []string
	// Replicas is the virtual-node count per backend on the ring.
	// Default 64.
	Replicas int
	// Attempts bounds tries per proxied request (first try included).
	// Default 3.
	Attempts int
	// PerTryTimeout bounds each buffered proxy attempt (streams are
	// exempt — they are long-lived by design). Default 15s.
	PerTryTimeout time.Duration
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts: attempt k sleeps a jittered duration in
	// [base·2ᵏ/2, base·2ᵏ], capped at BackoffMax. Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CheckInterval paces the active health checker; <= 0 disables it
	// (tests drive health by hand). Default 500ms.
	CheckInterval time.Duration
	// ProbeTimeout bounds one readyz probe. Default 2s, clamped to
	// CheckInterval when that is shorter.
	ProbeTimeout time.Duration
	// EjectAfter / ReadmitAfter are the consecutive-failure and
	// consecutive-success thresholds for ejection and re-admission.
	// Defaults 2 / 2.
	EjectAfter   int
	ReadmitAfter int
	// SpecMemory bounds the job-ID → original-request LRU that powers
	// stream resume-by-rerun. Default 4096 entries.
	SpecMemory int
	// Client overrides the backend HTTP client (tests). Default: a
	// dedicated client with a pooled transport.
	Client *http.Client

	// Quotas configures per-client admission: rate limits, concurrency
	// quotas, and DRR weights, keyed by API key. The zero value leaves
	// every client unlimited at weight 1 (global caps still apply).
	Quotas admission.Config
	// AdmissionMaxInFlight caps concurrently dispatched submissions across
	// all clients — size it near the backends' aggregate worker count so
	// saturation queues at the gateway, where fairness is enforced,
	// instead of deep in backend FIFOs. Default 256.
	AdmissionMaxInFlight int
	// AdmissionMaxQueue caps submissions held in the fair queue; beyond it
	// the gateway sheds with 503 + Retry-After. Default 1024.
	AdmissionMaxQueue int
}

func (o Options) replicas() int {
	if o.Replicas > 0 {
		return o.Replicas
	}
	return 64
}

func (o Options) attempts() int {
	if o.Attempts > 0 {
		return o.Attempts
	}
	return 3
}

func (o Options) perTryTimeout() time.Duration {
	if o.PerTryTimeout > 0 {
		return o.PerTryTimeout
	}
	return 15 * time.Second
}

func (o Options) backoffBase() time.Duration {
	if o.BackoffBase > 0 {
		return o.BackoffBase
	}
	return 50 * time.Millisecond
}

func (o Options) backoffMax() time.Duration {
	if o.BackoffMax > 0 {
		return o.BackoffMax
	}
	return 2 * time.Second
}

func (o Options) checkInterval() time.Duration { return o.CheckInterval }

func (o Options) probeTimeout() time.Duration {
	pt := o.ProbeTimeout
	if pt <= 0 {
		pt = 2 * time.Second
	}
	if ci := o.CheckInterval; ci > 0 && ci < pt {
		pt = ci
	}
	return pt
}

func (o Options) ejectAfter() int {
	if o.EjectAfter > 0 {
		return o.EjectAfter
	}
	return 2
}

func (o Options) readmitAfter() int {
	if o.ReadmitAfter > 0 {
		return o.ReadmitAfter
	}
	return 2
}

func (o Options) specMemory() int {
	if o.SpecMemory > 0 {
		return o.SpecMemory
	}
	return 4096
}

// rerunSpec is what the gateway remembers about a request it routed: the
// endpoint and the original body, enough to re-create the job on another
// backend if the one streaming it dies mid-stream.
type rerunSpec struct {
	path string // "/v1/run" or "/v1/sweep"
	body []byte
}

// Gateway fronts the ring. Create with New, expose with Handler, stop
// with Close.
type Gateway struct {
	opts     Options
	ring     *ring
	backends []*backend
	client   *http.Client

	specsMu sync.Mutex
	specs   *lru.Cache[string, rerunSpec]

	requests      atomic.Int64 // proxied requests accepted for routing
	retries       atomic.Int64 // extra attempts after a failed one
	failovers     atomic.Int64 // retries that moved to a different backend
	shed          atomic.Int64 // 503s for keys with no healthy backend
	exhausted     atomic.Int64 // 502s after all attempts failed
	streamResumes atomic.Int64 // streams continued after a mid-stream failure
	streamReruns  atomic.Int64 // resumes that had to re-create the job first

	m   *gwMetrics            // /metrics instruments (always on; scrape-time reads)
	adm *admission.Controller // per-client fairness, quotas, headroom shedding

	stop      chan struct{}
	closeOnce sync.Once
	checkerWG sync.WaitGroup
}

// New builds a Gateway over opts.Backends and starts its health checker
// (unless CheckInterval <= 0).
func New(opts Options) (*Gateway, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("gateway: at least one backend is required")
	}
	addrs := make([]string, 0, len(opts.Backends))
	seen := make(map[string]bool)
	for _, a := range opts.Backends {
		a = strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(a), "http://"), "/")
		if a == "" {
			return nil, fmt.Errorf("gateway: empty backend address")
		}
		if seen[a] {
			return nil, fmt.Errorf("gateway: duplicate backend %s", a)
		}
		seen[a] = true
		addrs = append(addrs, a)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	g := &Gateway{
		opts:   opts,
		ring:   newRing(addrs, opts.replicas()),
		client: client,
		specs:  lru.New[string, rerunSpec](opts.specMemory()),
		stop:   make(chan struct{}),
	}
	for _, a := range addrs {
		g.backends = append(g.backends, newBackend(a))
	}
	// Cold retry hints fall back to the health-sweep cadence until a
	// drain rate has been observed (the clamp keeps it >= 1s).
	g.adm = admission.NewController(admission.Options{
		Config:        opts.Quotas,
		MaxInFlight:   opts.AdmissionMaxInFlight,
		MaxQueue:      opts.AdmissionMaxQueue,
		Headroom:      g.aggregateHeadroom,
		RetryFallback: opts.checkInterval(),
	})
	g.m = newGWMetrics(g)
	g.adm.SetQueueWait(g.m.observeQueueWait)
	if opts.checkInterval() > 0 {
		g.checkerWG.Add(1)
		go g.checkLoop()
	}
	return g, nil
}

// Close stops the health checker. In-flight proxied requests are not
// interrupted; the HTTP server owning the handler decides their fate.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() { close(g.stop) })
	g.checkerWG.Wait()
}

// Handler returns the gateway's HTTP API — the same surface as a
// backend, plus the gateway's own health report:
//
//	POST /v1/run              routed by job ID; retried/failed-over
//	POST /v1/sweep            routed by sweep job ID
//	GET  /v1/jobs/{id}        routed by ID; 404s fan out around the ring
//	GET  /v1/jobs/{id}/stream proxied NDJSON; resumes by rerun on failure
//	GET  /v1/healthz          gateway + per-backend health and counters
//	GET  /metrics             Prometheus text exposition
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", g.handleRun)
	mux.HandleFunc("POST /v1/sweep", g.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", g.handleStream)
	mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	mux.Handle("GET /metrics", g.m.scrapeHandler())
	return mux
}

// candidates returns the healthy backends for key in failover order,
// stable-partitioned by headroom: backends with room (or with headroom
// still unknown) keep their ring order up front, backends that reported
// a full queue move to the back — still reachable, because a stale
// "full" beats an empty candidate list, but only after everyone else
// declined. down reports how many ring nodes were skipped as unhealthy.
func (g *Gateway) candidates(key string) (cands []*backend, down int) {
	var full []*backend
	for _, node := range g.ring.sequence(key) {
		b := g.backends[node]
		switch {
		case !b.healthy.Load():
			down++
		case b.headroom.Load() == 0:
			full = append(full, b)
		default:
			cands = append(cands, b)
		}
	}
	return append(cands, full...), down
}

// aggregateHeadroom sums the queue headroom of the healthy backends.
// The figure is known only when every healthy backend has reported one:
// a single unknown could hide arbitrary capacity, and shedding on a
// guess would turn a probe hiccup into client-visible 503s.
func (g *Gateway) aggregateHeadroom() (int, bool) {
	sum, known := 0, false
	for _, b := range g.backends {
		if !b.healthy.Load() {
			continue
		}
		h := b.headroom.Load()
		if h < 0 {
			return 0, false
		}
		sum += int(h)
		known = true
	}
	return sum, known
}

// remember stores the original request for id so a dying stream can be
// resumed by re-running the job on another backend.
func (g *Gateway) remember(id, path string, body []byte) {
	g.specsMu.Lock()
	g.specs.Put(id, rerunSpec{path: path, body: body})
	g.specsMu.Unlock()
}

// recall fetches the remembered request for id.
func (g *Gateway) recall(id string) (rerunSpec, bool) {
	g.specsMu.Lock()
	defer g.specsMu.Unlock()
	return g.specs.Get(id)
}

// BackendHealth is one backend's entry in the gateway health report.
type BackendHealth struct {
	Addr                string `json:"addr"`
	Healthy             bool   `json:"healthy"`
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	Ejections           int64  `json:"ejections"`
	Checks              int64  `json:"checks"`
	// Headroom is the last queue headroom the backend reported on
	// /v1/readyz; -1 until the first successful probe.
	Headroom int64 `json:"headroom"`
}

// Stats is the gateway's counter snapshot, exposed on /v1/healthz and
// read by cmd/soak for its exit summary.
type Stats struct {
	Requests      int64 `json:"requests"`
	Retries       int64 `json:"retries"`
	Failovers     int64 `json:"failovers"`
	Shed          int64 `json:"shed"`
	Exhausted     int64 `json:"exhausted"`
	StreamResumes int64 `json:"streamResumes"`
	StreamReruns  int64 `json:"streamReruns"`
}

// Snapshot returns the current counters.
func (g *Gateway) Snapshot() Stats {
	return Stats{
		Requests:      g.requests.Load(),
		Retries:       g.retries.Load(),
		Failovers:     g.failovers.Load(),
		Shed:          g.shed.Load(),
		Exhausted:     g.exhausted.Load(),
		StreamResumes: g.streamResumes.Load(),
		StreamReruns:  g.streamReruns.Load(),
	}
}

// Backends returns the per-backend health report.
func (g *Gateway) Backends() []BackendHealth {
	out := make([]BackendHealth, 0, len(g.backends))
	for _, b := range g.backends {
		out = append(out, BackendHealth{
			Addr:                b.addr,
			Healthy:             b.healthy.Load(),
			ConsecutiveFailures: int(b.consecFail.Load()),
			Ejections:           b.ejections.Load(),
			Checks:              b.checks.Load(),
			Headroom:            b.headroom.Load(),
		})
	}
	return out
}

// Admission returns the admission controller's counter snapshot; the
// conservation law holds on every call (see admission.Stats).
func (g *Gateway) Admission() admission.Stats { return g.adm.Stats() }

// healthzBody is the GET /v1/healthz response.
type healthzBody struct {
	Status    string          `json:"status"`
	Stats     Stats           `json:"stats"`
	Admission admission.Stats `json:"admission"`
	Backends  []BackendHealth `json:"backends"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzBody{
		Status:    "ok",
		Stats:     g.Snapshot(),
		Admission: g.Admission(),
		Backends:  g.Backends(),
	})
}
