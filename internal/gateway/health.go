package gateway

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// backend is one rumord instance behind the gateway: its address plus
// health state fed by both the active checker (GET /v1/readyz on a
// schedule) and passive signals from proxying (connection errors and
// 5xxs count as failures, successes as successes). Ejection needs
// EjectAfter consecutive failures, re-admission ReadmitAfter consecutive
// successes, so a single flaky probe neither ejects a healthy backend
// nor readmits a crash-looping one.
type backend struct {
	addr string // host:port
	url  string // http://host:port, no trailing slash

	healthy      atomic.Bool
	consecFail   atomic.Int32
	consecOK     atomic.Int32
	ejections    atomic.Int64
	readmissions atomic.Int64
	checks       atomic.Int64
	proxyReqs    atomic.Int64 // proxy attempts sent (probes excluded)
	proxyFails   atomic.Int64 // proxy attempts that failed (errors and 5xx)

	// headroom is the backend's last-reported queue headroom (capacity
	// minus depth, scraped from /v1/readyz), -1 while unknown. Placement
	// prefers backends with room, and admission sheds when every healthy
	// backend is known-full. A passive 429 snaps it to 0 immediately —
	// the backend just told us its queue is full, no probe needed.
	headroom atomic.Int64
}

func newBackend(addr string) *backend {
	b := &backend{addr: addr, url: "http://" + addr}
	// Born healthy: the first requests race the first probe, and retry
	// machinery handles a dead backend better than an empty ring.
	b.healthy.Store(true)
	b.headroom.Store(-1)
	return b
}

// noteFailure records one failed probe or proxy attempt; the backend is
// ejected once ejectAfter consecutive failures accumulate.
func (b *backend) noteFailure(ejectAfter int) {
	b.consecOK.Store(0)
	if int(b.consecFail.Add(1)) >= ejectAfter && b.healthy.CompareAndSwap(true, false) {
		b.ejections.Add(1)
	}
}

// noteSuccess records one successful probe or proxied request; an
// ejected backend is readmitted once readmitAfter consecutive successes
// accumulate.
func (b *backend) noteSuccess(readmitAfter int) {
	b.consecFail.Store(0)
	if b.healthy.Load() {
		b.consecOK.Store(0)
		return
	}
	if int(b.consecOK.Add(1)) >= readmitAfter && b.healthy.CompareAndSwap(false, true) {
		b.readmissions.Add(1)
	}
}

// checkLoop probes every backend each interval until stop closes. The
// first sweep runs immediately so a gateway that boots against a dead
// backend ejects it without waiting a full interval.
func (g *Gateway) checkLoop() {
	defer g.checkerWG.Done()
	g.checkAll()
	t := time.NewTicker(g.opts.checkInterval())
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.checkAll()
		}
	}
}

// checkAll probes all backends concurrently: readiness, not liveness —
// a draining backend answers /v1/readyz with 503 and is ejected before
// its submission 503s reach clients.
func (g *Gateway) checkAll() {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.probe(b)
		}(b)
	}
	wg.Wait()
}

func (g *Gateway) probe(b *backend) {
	b.checks.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", b.url+"/v1/readyz", nil)
	if err != nil {
		b.noteFailure(g.opts.ejectAfter())
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		b.noteFailure(g.opts.ejectAfter())
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		b.noteHeadroom(body)
		b.noteSuccess(g.opts.readmitAfter())
	} else {
		b.noteFailure(g.opts.ejectAfter())
	}
}

// noteHeadroom parses the queue headroom out of a readyz body. A body
// without the field (or unparseable) leaves the last value standing —
// absence of evidence must not flip placement or shedding decisions.
func (b *backend) noteHeadroom(body []byte) {
	var rs struct {
		QueueHeadroom *int `json:"queueHeadroom"`
	}
	if json.Unmarshal(body, &rs) == nil && rs.QueueHeadroom != nil {
		h := *rs.QueueHeadroom
		if h < 0 {
			h = 0
		}
		b.headroom.Store(int64(h))
	}
}
