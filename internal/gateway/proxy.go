package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"rumor/internal/admission"
	"rumor/internal/experiment"
	"rumor/internal/serve"
)

// maxBodyBytes bounds gateway request bodies, matching the backends.
const maxBodyBytes = 1 << 20

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(v)
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// drainBody discards and closes a response body so the transport can
// reuse the connection.
func drainBody(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// bufferedResponse is one fully-read backend response: safe to retry
// before it exists, safe to replay to the client once it does.
type bufferedResponse struct {
	status  int
	header  http.Header
	body    []byte
	backend string
}

// retryable reports whether a response status means "another attempt may
// do better": 5xx (backend broken or draining) and 429 (this backend's
// queue is full — the same deterministic job can run anywhere else).
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// backoff returns the jittered sleep before retry number k (0-based):
// uniform in [base·2ᵏ/2, base·2ᵏ], capped at max. The deterministic
// lower half gives tests a timing bound; the jittered upper half keeps
// a thundering herd of gateways from synchronizing their retries.
func (g *Gateway) backoff(k int) time.Duration {
	d := g.opts.backoffBase() << uint(k)
	if max := g.opts.backoffMax(); d > max || d <= 0 {
		d = max
	}
	half := d / 2
	return half + rand.N(d-half+1)
}

// sleep waits d or until ctx is done; reports false when ctx won.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// proxyPolicy tunes attemptProxy per endpoint.
type proxyPolicy struct {
	attempts int
	// spread404 treats a 404 as "ask the next backend" without burning a
	// retry attempt, a backoff sleep, or the backend's health: job lookups
	// legitimately 404 on every backend that never ran the job.
	spread404 bool
}

// attemptProxy runs one buffered request against cands in order, with
// bounded retries, exponential backoff + jitter, and failover. It
// returns the first conclusive response — any 2xx/3xx/4xx (except 429,
// and except 404 under spread404 until every candidate has 404ed) — or
// nil with the last error once attempts are exhausted.
func (g *Gateway) attemptProxy(ctx context.Context, cands []*backend, method, path, rawQuery string, body []byte, pol proxyPolicy) (*bufferedResponse, error) {
	var lastErr error
	var last404, last429 *bufferedResponse
	misses := 0
	retriesUsed := 0
	var prev *backend
	for i := 0; ; i++ {
		if misses >= len(cands) && pol.spread404 && last404 != nil {
			return last404, nil // every backend says 404: that IS the answer
		}
		if retriesUsed >= pol.attempts {
			break
		}
		b := cands[i%len(cands)]
		if i > 0 && prev != b {
			g.failovers.Add(1)
		}
		prev = b
		b.proxyReqs.Add(1)
		resp, err := g.once(ctx, b, method, path, rawQuery, body)
		if err != nil || (resp != nil && resp.status >= 500) {
			b.proxyFails.Add(1)
		}
		switch {
		case err != nil:
			b.noteFailure(g.opts.ejectAfter())
			lastErr = err
		case pol.spread404 && resp.status == http.StatusNotFound:
			b.noteSuccess(g.opts.readmitAfter()) // the backend answered; it just lacks the job
			last404 = resp
			misses++
			continue // no backoff, no attempt burned: keep walking the ring
		case retryable(resp.status):
			if resp.status == http.StatusTooManyRequests {
				// The backend just declared its queue full: zero its headroom
				// now instead of waiting for the next probe, and keep the
				// response — if every attempt 429s, the client should see the
				// backend's honest 429, not a synthetic 502.
				b.headroom.Store(0)
				last429 = resp
			} else {
				b.noteFailure(g.opts.ejectAfter())
			}
			lastErr = fmt.Errorf("backend %s answered %d", b.addr, resp.status)
		default:
			b.noteSuccess(g.opts.readmitAfter())
			return resp, nil
		}
		retriesUsed++
		if retriesUsed >= pol.attempts {
			break
		}
		g.retries.Add(1)
		if !sleep(ctx, g.backoff(retriesUsed-1)) {
			return nil, ctx.Err()
		}
	}
	if last429 != nil {
		return last429, nil // every retry bounced off a full queue: pass it through
	}
	if lastErr == nil && last404 != nil {
		return last404, nil
	}
	return nil, lastErr
}

// once performs a single buffered attempt against b under the per-try
// timeout. Reading the body is part of the attempt: a backend that dies
// mid-body fails here, before anything reached the client, so the
// attempt is still retryable.
func (g *Gateway) once(ctx context.Context, b *backend, method, path, rawQuery string, body []byte) (*bufferedResponse, error) {
	tryCtx, cancel := context.WithTimeout(ctx, g.opts.perTryTimeout())
	defer cancel()
	url := b.url + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(tryCtx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("read backend %s response: %w", b.addr, err)
	}
	return &bufferedResponse{status: resp.StatusCode, header: resp.Header.Clone(), body: payload, backend: b.addr}, nil
}

// retryAfterSecs renders a wait hint as a Retry-After header value in
// whole seconds, rounded up, never below 1.
func retryAfterSecs(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// shedRetryAfter is the Retry-After value for load-shed 503s: derived
// from the admission controller's observed drain rate (how long the
// work ahead of a new arrival needs to clear), falling back to the
// health-sweep cadence before any drain has been seen.
func (g *Gateway) shedRetryAfter() string {
	return retryAfterSecs(g.adm.RetryAfter())
}

// admit runs one submission through the admission controller. When the
// request may proceed it returns its release closure and true; otherwise
// it has already written the throttle/shed response (or nothing, for a
// client that gave up while queued) and returns false.
func (g *Gateway) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	dec := g.adm.Acquire(r.Context(), r.Header.Get(admission.KeyHeader), r.RemoteAddr)
	switch dec.Outcome {
	case admission.Throttled:
		w.Header().Set("Retry-After", retryAfterSecs(dec.RetryAfter))
		writeError(w, http.StatusTooManyRequests,
			"client %s over its %s quota; retry after the indicated wait", dec.Class, dec.Reason)
		return nil, false
	case admission.Shed:
		w.Header().Set("Retry-After", retryAfterSecs(dec.RetryAfter))
		writeError(w, http.StatusServiceUnavailable,
			"gateway saturated (%s); retry after the indicated wait", dec.Reason)
		return nil, false
	case admission.Canceled:
		// The client hung up while fair-queued; nothing to write.
		return nil, false
	}
	return dec.Release, true
}

// proxyBuffered routes one buffered request keyed by key: candidate
// selection, load shedding, retry loop, and response replay.
func (g *Gateway) proxyBuffered(w http.ResponseWriter, r *http.Request, key, path string, body []byte, pol proxyPolicy) {
	g.requests.Add(1)
	cands, down := g.candidates(key)
	if len(cands) == 0 {
		g.shed.Add(1)
		w.Header().Set("Retry-After", g.shedRetryAfter())
		writeError(w, http.StatusServiceUnavailable,
			"all %d ring backends for this key are unhealthy; retry after the next health sweep", down)
		return
	}
	resp, err := g.attemptProxy(r.Context(), cands, r.Method, path, r.URL.RawQuery, body, pol)
	if err != nil {
		g.exhausted.Add(1)
		writeError(w, http.StatusBadGateway,
			"no backend could serve the request after %d attempts: %v", pol.attempts, err)
		return
	}
	if resp.status == http.StatusTooManyRequests && resp.header.Get("Retry-After") == "" {
		// Backstop for backends that 429 without a hint: the gateway's
		// drain estimate is the best honesty available.
		resp.header.Set("Retry-After", g.shedRetryAfter())
	}
	replay(w, resp)
}

// replay writes a buffered backend response to the client, tagging which
// backend served it.
func replay(w http.ResponseWriter, resp *bufferedResponse) {
	for k, vs := range resp.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Rumorgw-Backend", resp.backend)
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// readBody reads and bounds the request body.
func readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, fmt.Errorf("read request: %w", err)
	}
	if len(body) > maxBodyBytes {
		return nil, fmt.Errorf("request body exceeds %d bytes", maxBodyBytes)
	}
	return body, nil
}

// decodeStrict decodes one JSON object, rejecting unknown fields and
// trailing content — the backends' contract, enforced here too so a
// malformed request costs a 400, not a retry budget.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("decode request: unexpected content after the JSON object")
	}
	return nil
}

// handleRun proxies POST /v1/run: derive the job ID the backend will
// derive, remember the request for stream rerun, route by the ID.
func (g *Gateway) handleRun(w http.ResponseWriter, r *http.Request) {
	defer g.m.timeRoute("run")()
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec := experiment.DefaultRunSpec()
	if err := decodeStrict(body, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := serve.JobID(norm)
	release, ok := g.admit(w, r)
	if !ok {
		return
	}
	defer release()
	g.remember(id, "/v1/run", body)
	g.proxyBuffered(w, r, id, "/v1/run", body, proxyPolicy{attempts: g.opts.attempts()})
}

// handleSweep proxies POST /v1/sweep, keyed by the sweep job ID so the
// whole sweep — and every poll or stream of it — lands on one backend.
func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	defer g.m.timeRoute("sweep")()
	body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sw := experiment.Sweep{Defaults: experiment.DefaultRunSpec()}
	if err := decodeStrict(body, &sw); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(sw.Graphs) == 0 {
		writeError(w, http.StatusBadRequest, "sweep needs at least one graph")
		return
	}
	points, err := sw.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := serve.SweepJobID(points)
	release, ok := g.admit(w, r)
	if !ok {
		return
	}
	defer release()
	g.remember(id, "/v1/sweep", body)
	g.proxyBuffered(w, r, id, "/v1/sweep", body, proxyPolicy{attempts: g.opts.attempts()})
}

// handleJob proxies GET /v1/jobs/{id}. The ring makes the job's owner
// the first candidate, but a job may live elsewhere (it predates a ring
// change, or a failover re-ran it), so 404s walk the whole ring before
// the gateway reports one.
func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	defer g.m.timeRoute("job")()
	id := r.PathValue("id")
	g.proxyBuffered(w, r, id, "/v1/jobs/"+id, nil, proxyPolicy{
		attempts:  g.opts.attempts(),
		spread404: true,
	})
}
