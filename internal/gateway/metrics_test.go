package gateway

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rumor/internal/metrics"
)

// scrapeGW fetches and parses the gateway's /metrics.
func scrapeGW(t *testing.T, url string) *metrics.Scrape {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	sc, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return sc
}

// TestGatewayMetrics drives a proxied request plus a failing backend and
// checks the scrape: func-backed counters agree with Snapshot, per-
// backend series carry the backend label, and the route histogram is
// populated and internally valid.
func TestGatewayMetrics(t *testing.T) {
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}` + "\n"))
	}))
	defer ok.Close()
	dead := deadAddr(t)
	g := newGateway(t, Options{
		Backends:    []string{hostPort(t, ok.URL), dead},
		Attempts:    4,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// Boot inventory: every series exists before traffic, including both
	// backends' children and all four route histograms.
	sc := scrapeGW(t, ts.URL)
	for _, name := range []string{
		"rumorgw_requests_total", "rumorgw_retries_total", "rumorgw_failovers_total",
		"rumorgw_shed_total", "rumorgw_exhausted_total", "rumorgw_stream_resumes_total",
		"rumorgw_ring_backends", "rumorgw_healthy_backends",
	} {
		if !sc.Has(name, nil) {
			t.Fatalf("series %s missing from boot scrape", name)
		}
	}
	for _, addr := range []string{hostPort(t, ok.URL), dead} {
		if !sc.Has("rumorgw_backend_requests_total", map[string]string{"backend": addr}) {
			t.Fatalf("backend %s missing from rumorgw_backend_requests_total", addr)
		}
	}
	for _, route := range gwRoutes {
		if !sc.Has("rumorgw_request_seconds_bucket", map[string]string{"route": route}) {
			t.Fatalf("route %q histogram missing from boot scrape", route)
		}
	}
	if v, _ := sc.Value("rumorgw_ring_backends", nil); v != 2 {
		t.Fatalf("ring_backends = %v, want 2", v)
	}

	// Traffic: proxied runs until one lands on the dead backend's key
	// space or succeeds directly; either way requests/attempts move.
	for i := 0; i < 4; i++ {
		body := strings.NewReader(`{"graph":"star:16","protocol":"push","trials":2,"seed":` + string(rune('1'+i)) + `}`)
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	sc = scrapeGW(t, ts.URL)
	snap := g.Snapshot()
	if v, _ := sc.Value("rumorgw_requests_total", nil); int64(v) != snap.Requests {
		t.Fatalf("metrics requests %v != snapshot %d", v, snap.Requests)
	}
	if v, _ := sc.Value("rumorgw_retries_total", nil); int64(v) != snap.Retries {
		t.Fatalf("metrics retries %v != snapshot %d", v, snap.Retries)
	}
	if sc.Sum("rumorgw_backend_requests_total") < 4 {
		t.Fatalf("backend attempts = %v, want >= 4", sc.Sum("rumorgw_backend_requests_total"))
	}
	n, err := sc.CheckHistogram("rumorgw_request_seconds", map[string]string{"route": "run"})
	if err != nil {
		t.Fatalf("run histogram: %v", err)
	}
	if n != 4 {
		t.Fatalf("run histogram count = %d, want 4", n)
	}
}

// TestGatewayMetricsEjection pins the ejection/readmission series
// against a backend that dies and recovers under the active checker.
func TestGatewayMetricsEjection(t *testing.T) {
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	addr := hostPort(t, flaky.URL)
	g := newGateway(t, Options{
		Backends:      []string{addr},
		CheckInterval: 10 * time.Millisecond,
		EjectAfter:    2,
		ReadmitAfter:  2,
	})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	waitUntil(t, "ejection", func() bool { return !g.backends[0].healthy.Load() })
	flaky.Close()

	sc := scrapeGW(t, ts.URL)
	if v, _ := sc.Value("rumorgw_backend_ejections_total", map[string]string{"backend": addr}); v < 1 {
		t.Fatalf("ejections = %v, want >= 1", v)
	}
	if v, _ := sc.Value("rumorgw_backend_healthy", map[string]string{"backend": addr}); v != 0 {
		t.Fatalf("backend_healthy = %v, want 0 after ejection", v)
	}
	if v, _ := sc.Value("rumorgw_healthy_backends", nil); v != 0 {
		t.Fatalf("healthy_backends = %v, want 0", v)
	}
	if v, _ := sc.Value("rumorgw_backend_checks_total", map[string]string{"backend": addr}); v < 2 {
		t.Fatalf("checks = %v, want >= 2", v)
	}
}
