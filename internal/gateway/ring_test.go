package gateway

import (
	"fmt"
	"testing"
)

// TestRingSequenceCoversAllNodes: every key's failover sequence visits
// every backend exactly once, starting from its owner, and the
// assignment is deterministic.
func TestRingSequenceCoversAllNodes(t *testing.T) {
	names := []string{"a:1", "b:2", "c:3", "d:4"}
	r := newRing(names, 64)
	owned := make([]int, len(names))
	for k := 0; k < 512; k++ {
		key := fmt.Sprintf("key-%d", k)
		seq := r.sequence(key)
		if len(seq) != len(names) {
			t.Fatalf("sequence(%q) has %d entries, want %d", key, len(seq), len(names))
		}
		seen := make(map[int]bool)
		for _, n := range seq {
			if n < 0 || n >= len(names) || seen[n] {
				t.Fatalf("sequence(%q) = %v: out of range or duplicate", key, seq)
			}
			seen[n] = true
		}
		again := r.sequence(key)
		for i := range seq {
			if again[i] != seq[i] {
				t.Fatalf("sequence(%q) not deterministic: %v vs %v", key, seq, again)
			}
		}
		owned[seq[0]]++
	}
	for i, n := range owned {
		if n == 0 {
			t.Fatalf("backend %s owns no keys out of 512 (distribution broken): %v", names[i], owned)
		}
	}
}

// TestRingConsistency: removing one backend only moves the keys it
// owned; every key owned by a surviving backend keeps its owner. This is
// the property that makes the ring "consistent" — a backend set change
// does not reshuffle the warm caches of the survivors.
func TestRingConsistency(t *testing.T) {
	full := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	rFull := newRing(full, 64)
	rLess := newRing(full[:4], 64) // "e:5" removed
	moved := 0
	for k := 0; k < 2000; k++ {
		key := fmt.Sprintf("job-%d", k)
		ownerFull := rFull.sequence(key)[0]
		ownerLess := rLess.sequence(key)[0]
		if ownerFull == 4 { // owned by the removed node: must move somewhere
			moved++
			continue
		}
		if ownerLess != ownerFull {
			t.Fatalf("key %q moved from %s to %s though its owner survived",
				key, full[ownerFull], full[ownerLess])
		}
	}
	if moved == 0 {
		t.Fatal("removed backend owned zero of 2000 keys; ring distribution broken")
	}
	if moved > 2000*2/len(full) {
		t.Fatalf("removed backend owned %d of 2000 keys; expected about 1/%d", moved, len(full))
	}
}

// TestRingSingleNode: a one-backend ring owns everything.
func TestRingSingleNode(t *testing.T) {
	r := newRing([]string{"only:1"}, 8)
	for k := 0; k < 32; k++ {
		seq := r.sequence(fmt.Sprintf("k%d", k))
		if len(seq) != 1 || seq[0] != 0 {
			t.Fatalf("sequence = %v", seq)
		}
	}
}
