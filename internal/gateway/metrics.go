// Metrics instrumentation for the gateway: the counters the gateway
// already keeps (requests, retries, failovers, shed, stream resumes)
// surface as func-backed series — one source of truth, read at scrape
// time — plus per-backend attempt/failure/ejection/readmission series
// and per-route latency histograms, rendered on GET /metrics.
package gateway

import (
	"time"

	"rumor/internal/metrics"
)

// reqBuckets spans gateway request latency: 1ms (a warm cache replay)
// up to ~17min (a paper-scale simulation waited on synchronously).
var reqBuckets = metrics.ExpBuckets(0.001, 2, 21)

// gwRoutes are the label values of rumorgw_request_seconds, one per
// proxied endpoint.
var gwRoutes = []string{"run", "sweep", "job", "stream"}

// gwMetrics bundles the gateway's instruments.
type gwMetrics struct {
	reg     *metrics.Registry
	byRoute map[string]*metrics.Histogram
}

// newGWMetrics builds the registry for g, pre-resolving every child
// series so the full inventory exists from boot.
func newGWMetrics(g *Gateway) *gwMetrics {
	reg := metrics.NewRegistry()
	m := &gwMetrics{reg: reg}

	reg.CounterFunc("rumorgw_requests_total", "Proxied requests accepted for routing.",
		func() float64 { return float64(g.requests.Load()) })
	reg.CounterFunc("rumorgw_retries_total", "Extra proxy attempts after a failed one.",
		func() float64 { return float64(g.retries.Load()) })
	reg.CounterFunc("rumorgw_failovers_total", "Retries that moved to a different backend.",
		func() float64 { return float64(g.failovers.Load()) })
	reg.CounterFunc("rumorgw_shed_total", "Load-shed 503s for keys with no healthy backend.",
		func() float64 { return float64(g.shed.Load()) })
	reg.CounterFunc("rumorgw_exhausted_total", "502s after every attempt failed.",
		func() float64 { return float64(g.exhausted.Load()) })
	reg.CounterFunc("rumorgw_stream_resumes_total", "Streams continued after a mid-stream failure.",
		func() float64 { return float64(g.streamResumes.Load()) })
	reg.CounterFunc("rumorgw_stream_reruns_total", "Stream resumes that re-created the job first.",
		func() float64 { return float64(g.streamReruns.Load()) })

	reg.GaugeFunc("rumorgw_ring_backends", "Backends configured on the ring.",
		func() float64 { return float64(len(g.backends)) })
	reg.GaugeFunc("rumorgw_healthy_backends", "Backends currently admitted by the health checker.",
		func() float64 {
			n := 0
			for _, b := range g.backends {
				if b.healthy.Load() {
					n++
				}
			}
			return float64(n)
		})

	beReqs := reg.CounterVec("rumorgw_backend_requests_total",
		"Buffered proxy attempts sent to each backend (streams and probes excluded).", "backend")
	beFails := reg.CounterVec("rumorgw_backend_failures_total",
		"Buffered proxy attempts that failed per backend (errors and 5xx).", "backend")
	beEject := reg.CounterVec("rumorgw_backend_ejections_total",
		"Times each backend was ejected from rotation.", "backend")
	beReadmit := reg.CounterVec("rumorgw_backend_readmissions_total",
		"Times each ejected backend was readmitted.", "backend")
	beChecks := reg.CounterVec("rumorgw_backend_checks_total",
		"Active health probes per backend.", "backend")
	beHealthy := reg.GaugeVec("rumorgw_backend_healthy",
		"1 while the backend is admitted by the health checker.", "backend")
	for _, b := range g.backends {
		b := b
		beReqs.Func(func() float64 { return float64(b.proxyReqs.Load()) }, b.addr)
		beFails.Func(func() float64 { return float64(b.proxyFails.Load()) }, b.addr)
		beEject.Func(func() float64 { return float64(b.ejections.Load()) }, b.addr)
		beReadmit.Func(func() float64 { return float64(b.readmissions.Load()) }, b.addr)
		beChecks.Func(func() float64 { return float64(b.checks.Load()) }, b.addr)
		beHealthy.Func(func() float64 {
			if b.healthy.Load() {
				return 1
			}
			return 0
		}, b.addr)
	}

	seconds := reg.HistogramVec("rumorgw_request_seconds",
		"Wall-clock duration of proxied requests by route.", reqBuckets, "route")
	m.byRoute = make(map[string]*metrics.Histogram, len(gwRoutes))
	for _, route := range gwRoutes {
		m.byRoute[route] = seconds.With(route)
	}
	return m
}

// timeRoute returns a func that observes the elapsed time under route
// when called — `defer g.m.timeRoute("run")()` at the top of a handler.
func (m *gwMetrics) timeRoute(route string) func() {
	start := time.Now()
	return func() { m.byRoute[route].Observe(time.Since(start).Seconds()) }
}
