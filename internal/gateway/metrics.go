// Metrics instrumentation for the gateway: the counters the gateway
// already keeps (requests, retries, failovers, shed, stream resumes)
// surface as func-backed series — one source of truth, read at scrape
// time — plus per-backend attempt/failure/ejection/readmission series
// and per-route latency histograms, rendered on GET /metrics.
package gateway

import (
	"net/http"
	"sync"
	"time"

	"rumor/internal/admission"
	"rumor/internal/metrics"
)

// reqBuckets spans gateway request latency: 1ms (a warm cache replay)
// up to ~17min (a paper-scale simulation waited on synchronously).
var reqBuckets = metrics.ExpBuckets(0.001, 2, 21)

// gwRoutes are the label values of rumorgw_request_seconds, one per
// proxied endpoint.
var gwRoutes = []string{"run", "sweep", "job", "stream"}

// waitBuckets spans fair-queue waits: 1ms up to ~2min.
var waitBuckets = metrics.ExpBuckets(0.001, 2, 18)

// gwMetrics bundles the gateway's instruments.
type gwMetrics struct {
	reg       *metrics.Registry
	byRoute   map[string]*metrics.Histogram
	queueWait map[string]*metrics.Histogram // per admission class
	view      *admView
	adm       *admission.Controller
}

// admView caches one admission.Stats snapshot briefly so every
// func-backed rumorgw_admission_* series rendered in one scrape reads
// the SAME snapshot — the conservation law (submitted == accepted +
// throttled + shed + canceled + queued) then holds exactly on every
// exposition, which cmd/soak asserts per scrape.
type admView struct {
	mu sync.Mutex
	at time.Time
	st admission.Stats
}

func (v *admView) get(c *admission.Controller) admission.Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.st.ByClass == nil || time.Since(v.at) > 25*time.Millisecond {
		v.st = c.Stats()
		v.at = time.Now()
	}
	return v.st
}

// refresh forces a fresh snapshot, restarting the TTL. The /metrics
// handler calls it before rendering so the cache never expires mid-render
// (which would mix two snapshots in one exposition and break the law).
func (v *admView) refresh(c *admission.Controller) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.st = c.Stats()
	v.at = time.Now()
}

// scrapeHandler wraps the registry handler with a snapshot refresh per
// request, pinning every admission series in one scrape to one snapshot.
func (m *gwMetrics) scrapeHandler() http.Handler {
	inner := m.reg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.view.refresh(m.adm)
		inner.ServeHTTP(w, r)
	})
}

// newGWMetrics builds the registry for g, pre-resolving every child
// series so the full inventory exists from boot.
func newGWMetrics(g *Gateway) *gwMetrics {
	reg := metrics.NewRegistry()
	m := &gwMetrics{reg: reg}

	reg.CounterFunc("rumorgw_requests_total", "Proxied requests accepted for routing.",
		func() float64 { return float64(g.requests.Load()) })
	reg.CounterFunc("rumorgw_retries_total", "Extra proxy attempts after a failed one.",
		func() float64 { return float64(g.retries.Load()) })
	reg.CounterFunc("rumorgw_failovers_total", "Retries that moved to a different backend.",
		func() float64 { return float64(g.failovers.Load()) })
	reg.CounterFunc("rumorgw_shed_total", "Load-shed 503s for keys with no healthy backend.",
		func() float64 { return float64(g.shed.Load()) })
	reg.CounterFunc("rumorgw_exhausted_total", "502s after every attempt failed.",
		func() float64 { return float64(g.exhausted.Load()) })
	reg.CounterFunc("rumorgw_stream_resumes_total", "Streams continued after a mid-stream failure.",
		func() float64 { return float64(g.streamResumes.Load()) })
	reg.CounterFunc("rumorgw_stream_reruns_total", "Stream resumes that re-created the job first.",
		func() float64 { return float64(g.streamReruns.Load()) })

	reg.GaugeFunc("rumorgw_ring_backends", "Backends configured on the ring.",
		func() float64 { return float64(len(g.backends)) })
	reg.GaugeFunc("rumorgw_healthy_backends", "Backends currently admitted by the health checker.",
		func() float64 {
			n := 0
			for _, b := range g.backends {
				if b.healthy.Load() {
					n++
				}
			}
			return float64(n)
		})

	beReqs := reg.CounterVec("rumorgw_backend_requests_total",
		"Buffered proxy attempts sent to each backend (streams and probes excluded).", "backend")
	beFails := reg.CounterVec("rumorgw_backend_failures_total",
		"Buffered proxy attempts that failed per backend (errors and 5xx).", "backend")
	beEject := reg.CounterVec("rumorgw_backend_ejections_total",
		"Times each backend was ejected from rotation.", "backend")
	beReadmit := reg.CounterVec("rumorgw_backend_readmissions_total",
		"Times each ejected backend was readmitted.", "backend")
	beChecks := reg.CounterVec("rumorgw_backend_checks_total",
		"Active health probes per backend.", "backend")
	beHealthy := reg.GaugeVec("rumorgw_backend_healthy",
		"1 while the backend is admitted by the health checker.", "backend")
	beHeadroom := reg.GaugeVec("rumorgw_backend_headroom",
		"Last queue headroom the backend reported on /v1/readyz (-1 until known).", "backend")
	for _, b := range g.backends {
		b := b
		beReqs.Func(func() float64 { return float64(b.proxyReqs.Load()) }, b.addr)
		beFails.Func(func() float64 { return float64(b.proxyFails.Load()) }, b.addr)
		beEject.Func(func() float64 { return float64(b.ejections.Load()) }, b.addr)
		beReadmit.Func(func() float64 { return float64(b.readmissions.Load()) }, b.addr)
		beChecks.Func(func() float64 { return float64(b.checks.Load()) }, b.addr)
		beHealthy.Func(func() float64 {
			if b.healthy.Load() {
				return 1
			}
			return 0
		}, b.addr)
		beHeadroom.Func(func() float64 { return float64(b.headroom.Load()) }, b.addr)
	}

	// Admission series: every class pre-registered (scrapes see zeros, not
	// absent series), every value read off one cached snapshot per scrape
	// so the conservation law holds on each exposition.
	view := &admView{}
	m.view, m.adm = view, g.adm
	snap := func() admission.Stats { return view.get(g.adm) }
	reg.CounterFunc("rumorgw_admission_submitted_total",
		"Submissions that entered admission (accepted + throttled + shed + canceled + queued).",
		func() float64 { return float64(snap().Submitted) })
	reg.CounterFunc("rumorgw_admission_canceled_total",
		"Submissions whose client gave up while held in the fair queue.",
		func() float64 { return float64(snap().Canceled) })
	reg.GaugeFunc("rumorgw_admission_queue_occupancy",
		"Submissions currently held in the fair queue.",
		func() float64 { return float64(snap().QueueLen) })
	reg.GaugeFunc("rumorgw_admission_inflight",
		"Submissions currently dispatched to backends.",
		func() float64 { return float64(snap().InFlight) })
	reg.GaugeFunc("rumorgw_admission_clients",
		"Distinct client identities currently tracked.",
		func() float64 { return float64(snap().Clients) })
	accepted := reg.CounterVec("rumorgw_admission_accepted_total",
		"Submissions dispatched to backends, by client class.", "class")
	throttled := reg.CounterVec("rumorgw_admission_throttled_total",
		"Submissions bounced off their client's own quota (429), by client class.", "class")
	shed := reg.CounterVec("rumorgw_admission_shed_total",
		"Submissions shed at gateway-wide limits (503), by client class.", "class")
	queuedC := reg.CounterVec("rumorgw_admission_queued_total",
		"Submissions that waited in the fair queue at least once, by client class.", "class")
	waits := reg.HistogramVec("rumorgw_admission_queue_wait_seconds",
		"Fair-queue wait of admitted submissions, by client class.", waitBuckets, "class")
	m.queueWait = make(map[string]*metrics.Histogram)
	for _, class := range g.adm.Classes() {
		class := class
		accepted.Func(func() float64 { return float64(snap().ByClass[class].Accepted) }, class)
		throttled.Func(func() float64 { return float64(snap().ByClass[class].Throttled) }, class)
		shed.Func(func() float64 { return float64(snap().ByClass[class].Shed) }, class)
		queuedC.Func(func() float64 { return float64(snap().ByClass[class].Queued) }, class)
		m.queueWait[class] = waits.With(class)
	}

	seconds := reg.HistogramVec("rumorgw_request_seconds",
		"Wall-clock duration of proxied requests by route.", reqBuckets, "route")
	m.byRoute = make(map[string]*metrics.Histogram, len(gwRoutes))
	for _, route := range gwRoutes {
		m.byRoute[route] = seconds.With(route)
	}
	return m
}

// timeRoute returns a func that observes the elapsed time under route
// when called — `defer g.m.timeRoute("run")()` at the top of a handler.
func (m *gwMetrics) timeRoute(route string) func() {
	start := time.Now()
	return func() { m.byRoute[route].Observe(time.Since(start).Seconds()) }
}

// observeQueueWait is the admission controller's queue-wait hook. An
// unknown class (impossible while resolve only yields configured
// classes) degrades to the default series rather than dropping data.
func (m *gwMetrics) observeQueueWait(class string, seconds float64) {
	h := m.queueWait[class]
	if h == nil {
		h = m.queueWait[admission.DefaultClass]
	}
	h.Observe(seconds)
}
