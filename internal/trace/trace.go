// Package trace provides observers for the simulation engine: per-edge
// utilization accounting (the "locally fair bandwidth use" the paper credits
// for the agent protocols' good performance, Section 1) and round-history
// recording helpers.
package trace

import (
	"fmt"
	"math"
	"sort"

	"rumor/internal/graph"
)

// EdgeUsage counts traversals per undirected edge. Feed it to a protocol
// via core's MoveObserver; Observer ignores stay-put moves (lazy walks).
type EdgeUsage struct {
	g      *graph.Graph
	counts map[uint64]int64
	total  int64
	rounds int
}

// NewEdgeUsage returns a counter for edges of g.
func NewEdgeUsage(g *graph.Graph) *EdgeUsage {
	return &EdgeUsage{
		g:      g,
		counts: make(map[uint64]int64, g.M()),
	}
}

func edgeKey(u, v graph.Vertex) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// Observe records one traversal of {from, to}. It is shaped to be used as a
// core.MoveObserver.
func (e *EdgeUsage) Observe(round int, from, to graph.Vertex) {
	if from == to {
		return // lazy stay; no edge used
	}
	e.counts[edgeKey(from, to)]++
	e.total++
	if round > e.rounds {
		e.rounds = round
	}
}

// Total returns the number of traversals observed.
func (e *EdgeUsage) Total() int64 { return e.total }

// Rounds returns the highest round observed.
func (e *EdgeUsage) Rounds() int { return e.rounds }

// Count returns the traversal count of edge {u, v}.
func (e *EdgeUsage) Count(u, v graph.Vertex) int64 {
	return e.counts[edgeKey(u, v)]
}

// PerEdge returns the traversal count of every edge of the graph, including
// zeros for unused edges, in a deterministic order.
func (e *EdgeUsage) PerEdge() []int64 {
	out := make([]int64, 0, e.g.M())
	for u := 0; u < e.g.N(); u++ {
		for _, v := range e.g.Neighbors(graph.Vertex(u)) {
			if graph.Vertex(u) < v {
				out = append(out, e.counts[edgeKey(graph.Vertex(u), v)])
			}
		}
	}
	return out
}

// FairnessStats summarizes how evenly edge bandwidth was used.
type FairnessStats struct {
	MeanPerEdge float64
	CV          float64 // coefficient of variation (std/mean); 0 = perfectly fair
	Gini        float64 // Gini coefficient in [0,1); 0 = perfectly fair
	MaxPerEdge  int64
	MinPerEdge  int64
}

// Fairness computes fairness statistics over all edges of the graph.
func (e *EdgeUsage) Fairness() FairnessStats {
	per := e.PerEdge()
	if len(per) == 0 {
		return FairnessStats{}
	}
	sum := 0.0
	minC, maxC := per[0], per[0]
	for _, c := range per {
		sum += float64(c)
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	mean := sum / float64(len(per))
	ss := 0.0
	for _, c := range per {
		d := float64(c) - mean
		ss += d * d
	}
	cv := 0.0
	if mean > 0 {
		cv = math.Sqrt(ss/float64(len(per))) / mean
	}
	return FairnessStats{
		MeanPerEdge: mean,
		CV:          cv,
		Gini:        gini(per),
		MaxPerEdge:  maxC,
		MinPerEdge:  minC,
	}
}

func gini(counts []int64) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := append([]int64(nil), counts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var cum, weighted float64
	for i, c := range sorted {
		cum += float64(c)
		weighted += float64(c) * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
}

// String renders a short human-readable summary.
func (f FairnessStats) String() string {
	return fmt.Sprintf("mean/edge=%.2f cv=%.3f gini=%.3f min=%d max=%d",
		f.MeanPerEdge, f.CV, f.Gini, f.MinPerEdge, f.MaxPerEdge)
}
