package trace

import (
	"math"
	"testing"

	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func TestObserveCountsUndirected(t *testing.T) {
	g := graph.Path(3)
	e := NewEdgeUsage(g)
	e.Observe(1, 0, 1)
	e.Observe(2, 1, 0) // same undirected edge
	e.Observe(2, 1, 2)
	if got := e.Count(0, 1); got != 2 {
		t.Errorf("Count(0,1) = %d, want 2", got)
	}
	if got := e.Count(1, 0); got != 2 {
		t.Errorf("Count(1,0) = %d, want 2 (undirected)", got)
	}
	if got := e.Count(1, 2); got != 1 {
		t.Errorf("Count(1,2) = %d, want 1", got)
	}
	if e.Total() != 3 {
		t.Errorf("Total = %d, want 3", e.Total())
	}
	if e.Rounds() != 2 {
		t.Errorf("Rounds = %d, want 2", e.Rounds())
	}
}

func TestObserveIgnoresStays(t *testing.T) {
	g := graph.Path(3)
	e := NewEdgeUsage(g)
	e.Observe(1, 1, 1)
	if e.Total() != 0 {
		t.Error("stay-put move counted as edge use")
	}
}

func TestPerEdgeIncludesZeros(t *testing.T) {
	g := graph.Cycle(5)
	e := NewEdgeUsage(g)
	e.Observe(1, 0, 1)
	per := e.PerEdge()
	if len(per) != g.M() {
		t.Fatalf("PerEdge length %d, want %d", len(per), g.M())
	}
	nonzero := 0
	for _, c := range per {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Errorf("nonzero edges = %d, want 1", nonzero)
	}
}

func TestFairnessUniform(t *testing.T) {
	g := graph.Cycle(6)
	e := NewEdgeUsage(g)
	for round := 1; round <= 10; round++ {
		for u := 0; u < 6; u++ {
			e.Observe(round, graph.Vertex(u), graph.Vertex((u+1)%6))
		}
	}
	f := e.Fairness()
	if f.CV != 0 || f.Gini != 0 {
		t.Errorf("uniform usage reported unfair: %+v", f)
	}
	if f.MeanPerEdge != 10 || f.MinPerEdge != 10 || f.MaxPerEdge != 10 {
		t.Errorf("uniform usage stats wrong: %+v", f)
	}
}

func TestFairnessSkewed(t *testing.T) {
	g := graph.Cycle(6)
	e := NewEdgeUsage(g)
	for i := 0; i < 100; i++ {
		e.Observe(1, 0, 1)
	}
	e.Observe(1, 1, 2)
	f := e.Fairness()
	if f.CV < 1 {
		t.Errorf("skewed usage CV = %.3f, want > 1", f.CV)
	}
	if f.Gini < 0.5 {
		t.Errorf("skewed usage Gini = %.3f, want > 0.5", f.Gini)
	}
	if f.MinPerEdge != 0 || f.MaxPerEdge != 100 {
		t.Errorf("min/max wrong: %+v", f)
	}
}

func TestGiniEmptyAndZero(t *testing.T) {
	g := graph.Path(2)
	e := NewEdgeUsage(g)
	f := e.Fairness()
	if f.Gini != 0 || f.CV != 0 {
		t.Errorf("empty usage nonzero fairness: %+v", f)
	}
}

// TestVisitExchangeFairerThanPushPullOnDoubleStar reproduces the paper's
// Section 1 fairness claim on the motivating example. The operative notion
// is starvation: in visit-exchange every edge (including the bridge) is
// crossed at the same Θ(1) per-round rate, while push-pull selects the
// bridge only with probability Θ(1/n) per round. Both protocols are run for
// a fixed window so rates are comparable.
func TestVisitExchangeFairerThanPushPullOnDoubleStar(t *testing.T) {
	g := graph.DoubleStar(64)
	a, _ := g.Landmark("centerA")
	b, _ := g.Landmark("centerB")
	const rounds = 300

	ppullUsage := NewEdgeUsage(g)
	pp, err := core.NewPushPull(g, a, xrand.New(5), core.PushPullOptions{Observer: ppullUsage.Observe})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		pp.Step()
	}

	visitUsage := NewEdgeUsage(g)
	vx, err := core.NewVisitExchange(g, a, xrand.New(5), core.AgentOptions{Observer: visitUsage.Observe})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		vx.Step()
	}

	// Bridge rate: agents cross at Θ(1) per round; push-pull at Θ(1/n).
	ppBridgeRate := float64(ppullUsage.Count(a, b)) / rounds
	vxBridgeRate := float64(visitUsage.Count(a, b)) / rounds
	if vxBridgeRate < 10*ppBridgeRate {
		t.Errorf("bridge rate visitx %.4f not >> push-pull %.4f", vxBridgeRate, ppBridgeRate)
	}

	// No starved edges under visit-exchange: the least-used edge still gets
	// a constant fraction of the mean.
	fv := visitUsage.Fairness()
	if ratio := float64(fv.MinPerEdge) / fv.MeanPerEdge; ratio < 0.2 || math.IsNaN(ratio) {
		t.Errorf("visitx min/mean edge usage = %.3f, want >= 0.2 (no starvation)", ratio)
	}
	// Push-pull starves the bridge: its usage is far below the mean edge
	// usage.
	fp := ppullUsage.Fairness()
	if rate := float64(ppullUsage.Count(a, b)) / fp.MeanPerEdge; rate > 0.25 {
		t.Errorf("push-pull bridge usage %.3f of mean, expected starvation (< 0.25)", rate)
	}
}
