package graph

import (
	"fmt"
	"slices"
)

// Streaming two-pass CSR construction.
//
// The Builder materializes per-vertex adjacency slices before flattening
// them, so its peak memory is roughly twice the final CSR. The
// deterministic graph families don't need that: their edge sets are pure
// functions of the parameters, so the edges can be *replayed* instead of
// stored. StreamSpec captures a family as an edge-emitting closure and
// BuildStream assembles the CSR in two passes over it:
//
//	pass 1  count degrees directly into the offset array (off[v+1]++)
//	        prefix-sum the offsets in place
//	pass 2  place each endpoint at its vertex's cursor, using the offset
//	        entries themselves as cursors (off[u] advances through u's
//	        segment), then shift the array right one slot to restore it
//	sort    each vertex's segment in place, rejecting duplicates
//
// Peak memory is exactly the final CSR — offsets in the narrowest width
// the endpoint count allows plus the int32 neighbor array — with O(1)
// scratch. No per-vertex slices, no second copy, no degree array: the
// offsets double as the counting buffer and then as the placement
// cursors. A 100M-vertex star builds in 1.2 GB, the size of its CSR.
//
// The result is bit-identical to what the Builder produces for the same
// edge set: both end with per-vertex sorted segments concatenated in
// vertex order, and equal graphs encode to byte-identical files (see
// EncodeCSR), which the property tests in stream_test.go pin down.
type StreamSpec struct {
	// N is the vertex count.
	N int
	// M is the exact number of undirected edges Emit produces. Zero means
	// unknown: BuildStream then calls Count when set, or runs a count-only
	// Emit prepass otherwise, to learn the exact value before choosing the
	// offset width. Stochastic samplers that know m only after sampling
	// (gnp, chunglu) leave M zero; those that fix it from parameters
	// (randreg: nd/2, ba: C(m+1,2)+(n−m−1)m) declare it, and BuildStream
	// still verifies both passes emit exactly that many edges.
	M int64
	// Name is the graph's human-readable name.
	Name string
	// Emit calls emit(u, v) exactly once per undirected edge, in any
	// order. It must be deterministic: BuildStream replays it and requires
	// the same edges each pass. Random samplers satisfy this with
	// counter-based streams — reconstructing the same (seed, unit, round)
	// key replays bit-identical draws on every pass.
	Emit func(emit func(u, v Vertex))
	// Count, when non-nil and M is zero, returns the exact number of edges
	// Emit will produce. It lets samplers that can count cheaper than they
	// can emit (gnp's skip loop without pair unranking) replace the full
	// Emit prepass.
	Count func() int64
	// Landmarks names vertices for Graph.Landmark.
	Landmarks map[string]Vertex
}

// BuildStream assembles the spec's graph with peak memory equal to the
// final CSR. Self-loops, out-of-range endpoints, duplicate edges, and
// emitters that change between passes are reported as errors.
func BuildStream(s StreamSpec) (*Graph, error) {
	n := s.N
	if n < 0 {
		return nil, fmt.Errorf("graph: stream spec has negative N")
	}
	m := s.M
	if m == 0 {
		if s.Count != nil {
			m = s.Count()
		} else {
			s.Emit(func(u, v Vertex) { m++ })
		}
	}
	endpoints := 2 * m

	off := newOffsetStore(n, endpoints)

	// Pass 1: count degrees into off[v+1] so the in-place prefix sum lands
	// each vertex's start at off[v]. Endpoint validation happens here,
	// once; pass 2 trusts the (deterministic) emitter.
	var emitted int64
	var emitErr error
	s.Emit(func(u, v Vertex) {
		if emitErr != nil {
			return
		}
		if u == v {
			emitErr = fmt.Errorf("graph: self-loop at %d", u)
			return
		}
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			emitErr = fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
			return
		}
		off.inc(int(u)+1, 1)
		off.inc(int(v)+1, 1)
		emitted++
	})
	if emitErr != nil {
		return nil, emitErr
	}
	if emitted != m {
		return nil, fmt.Errorf("graph: stream spec %q declared %d edges, emitted %d", s.Name, m, emitted)
	}
	for v := 1; v <= n; v++ {
		off.set(v, off.at(v)+off.at(v-1))
	}

	// Pass 2: place endpoints at the per-vertex cursors. off[u] walks from
	// the start of u's segment to its end, so after the pass every entry
	// holds the *next* vertex's start and one right-shift restores the
	// offset invariant.
	neighbors := make([]Vertex, endpoints)
	var placed int64
	s.Emit(func(u, v Vertex) {
		neighbors[off.inc(int(u), 1)] = v
		neighbors[off.inc(int(v), 1)] = u
		placed++
	})
	if placed != m {
		return nil, fmt.Errorf("graph: stream spec %q emitted %d edges on replay, expected %d", s.Name, placed, m)
	}
	for v := n; v >= 1; v-- {
		off.set(v, off.at(v-1))
	}
	off.set(0, 0)

	// Sort each segment in place and reject duplicates, matching the
	// Builder's per-vertex sorted layout exactly.
	for v := 0; v < n; v++ {
		lo, hi := off.span(Vertex(v))
		seg := neighbors[lo:hi]
		slices.Sort(seg)
		for i := 1; i < len(seg); i++ {
			if seg[i] == seg[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", v, seg[i])
			}
		}
	}

	return &Graph{
		off:       off,
		neighbors: neighbors,
		name:      s.Name,
		landmarks: s.Landmarks,
	}, nil
}

// mustBuildStream is used by generators whose emitters cannot produce
// invalid edges; a failure there is a programming error.
func mustBuildStream(s StreamSpec) *Graph {
	g, err := BuildStream(s)
	if err != nil {
		panic(err)
	}
	return g
}

// emitClique emits all pairs within the contiguous vertex range [lo, hi).
func emitClique(emit func(u, v Vertex), lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := i + 1; j < hi; j++ {
			emit(Vertex(i), Vertex(j))
		}
	}
}

// emitCompleteBinaryTree emits the parent edges of a complete binary tree
// on n heap-numbered vertices starting at base.
func emitCompleteBinaryTree(emit func(u, v Vertex), base, n int) {
	for i := 1; i < n; i++ {
		emit(Vertex(base+(i-1)/2), Vertex(base+i))
	}
}

// cliqueEdges returns s*(s-1)/2 as an int64 without intermediate overflow
// for any s that fits a Vertex.
func cliqueEdges(s int) int64 {
	return int64(s) * int64(s-1) / 2
}
