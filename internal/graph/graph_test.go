package graph

import (
	"bytes"
	"testing"
	"testing/quick"

	"rumor/internal/xrand"
)

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3, "t")
	if err := b.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Error("negative accepted")
	}
}

func TestBuilderRejectsDuplicates(t *testing.T) {
	b := NewBuilder(3, "t")
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Error("duplicate edge not caught at Build")
	}
}

func TestBasicAccessors(t *testing.T) {
	b := NewBuilder(4, "diamond")
	for _, e := range [][2]Vertex{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 5 {
		t.Fatalf("N=%d M=%d, want 4, 5", g.N(), g.M())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 3 {
		t.Errorf("degrees wrong: %d %d", g.Degree(0), g.Degree(1))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 3) {
		t.Error("HasEdge wrong")
	}
	if g.MinDegree() != 2 || g.MaxDegree() != 3 {
		t.Errorf("MinDegree=%d MaxDegree=%d", g.MinDegree(), g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 2.5 {
		t.Errorf("AvgDegree=%g, want 2.5", got)
	}
	if reg, _ := g.IsRegular(); reg {
		t.Error("diamond reported regular")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// familyCase describes one generated graph and its structural expectations.
type familyCase struct {
	name       string
	g          *Graph
	wantN      int
	wantM      int
	regular    int // -1 if not regular, else the degree
	bipartite  bool
	landmarks  []string
	wantMinDeg int
	wantMaxDeg int
}

func allFamilies(t *testing.T) []familyCase {
	t.Helper()
	rng := xrand.New(12345)
	rr, err := RandomRegularConnected(64, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyi(80, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := ChungLu(200, 2.5, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	k := 4 // CycleStarsCliques parameter
	return []familyCase{
		{
			name: "star", g: Star(10), wantN: 11, wantM: 10, regular: -1,
			bipartite: true, landmarks: []string{"center", "leaf"},
			wantMinDeg: 1, wantMaxDeg: 10,
		},
		{
			name: "doublestar", g: DoubleStar(8), wantN: 18, wantM: 17, regular: -1,
			bipartite: true, landmarks: []string{"centerA", "centerB", "leafA", "leafB"},
			wantMinDeg: 1, wantMaxDeg: 9,
		},
		{
			// levels=4: n=15, leaves=8; tree edges 14 + C(8,2)=28 clique edges.
			// Leaf degree = 1 parent + 7 clique peers = 8; root degree 2.
			name: "heavytree", g: HeavyBinaryTree(4), wantN: 15, wantM: 42, regular: -1,
			bipartite: false, landmarks: []string{"root", "leaf"},
			wantMinDeg: 2, wantMaxDeg: 8,
		},
		{
			// levels=4 twice sharing root: n = 2*15-1 = 29,
			// m = 2*42 = 84 (root edges counted once per tree). Shared root
			// has degree 4, internal nodes 3, leaves 8.
			name: "siamesetree", g: SiameseHeavyTree(4), wantN: 29, wantM: 84, regular: -1,
			bipartite: false, landmarks: []string{"root", "leafA", "leafB"},
			wantMinDeg: 3, wantMaxDeg: 8,
		},
		{
			// k=4: n = 4 + 16 + 64 = 84.
			// m = cycle 4 + center-leaf 16 + per-(i,j) C(5,2)=10 cliques * 16 = 180.
			name: "cyclestars", g: CycleStarsCliques(k), wantN: 84, wantM: 180, regular: -1,
			bipartite: false, landmarks: []string{"ring", "starLeaf", "cliqueVertex"},
			wantMinDeg: 4, wantMaxDeg: 6,
		},
		{
			name: "complete", g: Complete(9), wantN: 9, wantM: 36, regular: 8,
			bipartite: false, wantMinDeg: 8, wantMaxDeg: 8,
		},
		{
			name: "cycle-even", g: Cycle(10), wantN: 10, wantM: 10, regular: 2,
			bipartite: true, wantMinDeg: 2, wantMaxDeg: 2,
		},
		{
			name: "cycle-odd", g: Cycle(9), wantN: 9, wantM: 9, regular: 2,
			bipartite: false, wantMinDeg: 2, wantMaxDeg: 2,
		},
		{
			name: "path", g: Path(7), wantN: 7, wantM: 6, regular: -1,
			bipartite: true, landmarks: []string{"end"}, wantMinDeg: 1, wantMaxDeg: 2,
		},
		{
			name: "bintree", g: BinaryTree(4), wantN: 15, wantM: 14, regular: -1,
			bipartite: true, landmarks: []string{"root", "leaf"}, wantMinDeg: 1, wantMaxDeg: 3,
		},
		{
			name: "hypercube", g: Hypercube(5), wantN: 32, wantM: 80, regular: 5,
			bipartite: true, wantMinDeg: 5, wantMaxDeg: 5,
		},
		{
			name: "torus", g: Torus2D(4, 5), wantN: 20, wantM: 40, regular: 4,
			bipartite: false, wantMinDeg: 4, wantMaxDeg: 4,
		},
		{
			name: "grid", g: Grid2D(3, 4), wantN: 12, wantM: 17, regular: -1,
			bipartite: true, landmarks: []string{"corner"}, wantMinDeg: 2, wantMaxDeg: 4,
		},
		{
			// 4 cliques of 5: clique edges 4*10=40, matchings 4*5=20.
			name: "ringcliques", g: RingOfCliques(4, 5), wantN: 20, wantM: 60, regular: 6,
			bipartite: false, landmarks: []string{"cliqueVertex"}, wantMinDeg: 6, wantMaxDeg: 6,
		},
		{
			// 3 cliques of 4: 3*6=18 clique edges + 2 bridges.
			name: "cliquepath", g: CliquePath(3, 4), wantN: 12, wantM: 20, regular: -1,
			bipartite: false, landmarks: []string{"first", "last"}, wantMinDeg: 3, wantMaxDeg: 4,
		},
		{
			name: "randregular", g: rr, wantN: 64, wantM: 192, regular: 6,
			bipartite: false, wantMinDeg: 6, wantMaxDeg: 6,
		},
		{
			name: "erdosrenyi", g: er, wantN: 80, wantM: -1, regular: -1,
			bipartite: false, wantMinDeg: -1, wantMaxDeg: -1,
		},
		{
			name: "chunglu", g: cl, wantN: 200, wantM: -1, regular: -1,
			bipartite: false, wantMinDeg: -1, wantMaxDeg: -1,
		},
	}
}

func TestFamilies(t *testing.T) {
	for _, tc := range allFamilies(t) {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			if err := g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if g.N() != tc.wantN {
				t.Errorf("N = %d, want %d", g.N(), tc.wantN)
			}
			if tc.wantM >= 0 && g.M() != tc.wantM {
				t.Errorf("M = %d, want %d", g.M(), tc.wantM)
			}
			reg, d := g.IsRegular()
			if tc.regular >= 0 {
				if !reg || d != tc.regular {
					t.Errorf("IsRegular = (%v, %d), want (true, %d)", reg, d, tc.regular)
				}
			} else if reg && tc.wantMinDeg != tc.wantMaxDeg {
				t.Errorf("unexpectedly regular")
			}
			if tc.wantMinDeg >= 0 && g.MinDegree() != tc.wantMinDeg {
				t.Errorf("MinDegree = %d, want %d", g.MinDegree(), tc.wantMinDeg)
			}
			if tc.wantMaxDeg >= 0 && g.MaxDegree() != tc.wantMaxDeg {
				t.Errorf("MaxDegree = %d, want %d", g.MaxDegree(), tc.wantMaxDeg)
			}
			// Deterministic families must be connected; random ones usually are
			// but only the regular one is guaranteed by construction here.
			if tc.name != "erdosrenyi" && tc.name != "chunglu" && !IsConnected(g) {
				t.Error("graph not connected")
			}
			if got := IsBipartite(g); got != tc.bipartite && tc.name != "erdosrenyi" && tc.name != "chunglu" {
				t.Errorf("IsBipartite = %v, want %v", got, tc.bipartite)
			}
			for _, lm := range tc.landmarks {
				if _, ok := g.Landmark(lm); !ok {
					t.Errorf("missing landmark %q", lm)
				}
			}
			if g.Name() == "" {
				t.Error("empty name")
			}
		})
	}
}

func TestDegreeSumIsTwiceEdges(t *testing.T) {
	for _, tc := range allFamilies(t) {
		sum := 0
		for v := 0; v < tc.g.N(); v++ {
			sum += tc.g.Degree(Vertex(v))
		}
		if sum != 2*tc.g.M() {
			t.Errorf("%s: degree sum %d != 2M %d", tc.name, sum, 2*tc.g.M())
		}
	}
}

func TestStarStructure(t *testing.T) {
	g := Star(5)
	center, _ := g.Landmark("center")
	if g.Degree(center) != 5 {
		t.Errorf("center degree %d", g.Degree(center))
	}
	for v := Vertex(1); v <= 5; v++ {
		if g.Degree(v) != 1 {
			t.Errorf("leaf %d degree %d", v, g.Degree(v))
		}
	}
}

func TestDoubleStarBridge(t *testing.T) {
	g := DoubleStar(6)
	a, _ := g.Landmark("centerA")
	c, _ := g.Landmark("centerB")
	if !g.HasEdge(a, c) {
		t.Fatal("centers not connected")
	}
	if g.Degree(a) != 7 || g.Degree(c) != 7 {
		t.Errorf("center degrees %d, %d; want 7", g.Degree(a), g.Degree(c))
	}
}

func TestHeavyTreeLeafClique(t *testing.T) {
	g := HeavyBinaryTree(4)
	// Leaves 7..14 must form a clique and each also connects to its parent.
	for u := Vertex(7); u <= 14; u++ {
		for v := u + 1; v <= 14; v++ {
			if !g.HasEdge(u, v) {
				t.Errorf("leaves %d,%d not adjacent", u, v)
			}
		}
		parent := (u - 1) / 2
		if !g.HasEdge(u, parent) {
			t.Errorf("leaf %d missing tree edge to %d", u, parent)
		}
	}
	root, _ := g.Landmark("root")
	if g.Degree(root) != 2 {
		t.Errorf("root degree %d, want 2", g.Degree(root))
	}
}

func TestSiameseTreeRootDegree(t *testing.T) {
	g := SiameseHeavyTree(4)
	root, _ := g.Landmark("root")
	if g.Degree(root) != 4 {
		t.Errorf("shared root degree %d, want 4 (two children per tree)", g.Degree(root))
	}
	// The two leaf landmarks must be in different cliques: not adjacent.
	a, _ := g.Landmark("leafA")
	bb, _ := g.Landmark("leafB")
	if g.HasEdge(a, bb) {
		t.Error("leaves of different trees adjacent")
	}
}

func TestCycleStarsDegrees(t *testing.T) {
	k := 5
	g := CycleStarsCliques(k)
	ring, _ := g.Landmark("ring")
	leafV, _ := g.Landmark("starLeaf")
	cliqueV, _ := g.Landmark("cliqueVertex")
	if got := g.Degree(ring); got != k+2 {
		t.Errorf("ring degree %d, want %d", got, k+2)
	}
	if got := g.Degree(leafV); got != k+1 {
		t.Errorf("star leaf degree %d, want %d", got, k+1)
	}
	if got := g.Degree(cliqueV); got != k {
		t.Errorf("clique vertex degree %d, want %d", got, k)
	}
}

func TestHypercubeStructure(t *testing.T) {
	g := Hypercube(4)
	// Neighbors of v are exactly the single-bit flips.
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(Vertex(v)) {
			x := v ^ int(w)
			if x == 0 || x&(x-1) != 0 {
				t.Fatalf("hypercube edge %d-%d differs in more than one bit", v, w)
			}
		}
	}
	if got := Diameter(g); got != 4 {
		t.Errorf("Diameter = %d, want 4", got)
	}
}

func TestDiameterKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path7", Path(7), 6},
		{"cycle10", Cycle(10), 5},
		{"cycle9", Cycle(9), 4},
		{"complete6", Complete(6), 1},
		{"star8", Star(8), 2},
		{"doublestar4", DoubleStar(4), 3},
		{"grid3x4", Grid2D(3, 4), 5},
	}
	for _, tc := range cases {
		if got := Diameter(tc.g); got != tc.want {
			t.Errorf("%s: Diameter = %d, want %d", tc.name, got, tc.want)
		}
		// The double-sweep estimate is exact on these simple families.
		if got := DiameterEstimate(tc.g); got != tc.want {
			t.Errorf("%s: DiameterEstimate = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	d := BFS(g, 0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("BFS[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestComponents(t *testing.T) {
	// Two triangles, disjoint.
	b := NewBuilder(6, "二triangles")
	for _, e := range [][2]Vertex{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	count, comp := Components(g)
	if count != 2 {
		t.Fatalf("Components = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[0] == comp[3] {
		t.Errorf("component labeling wrong: %v", comp)
	}
	if IsConnected(g) {
		t.Error("disconnected graph reported connected")
	}
	if Diameter(g) != -1 {
		t.Error("Diameter of disconnected graph should be -1")
	}
}

func TestEndpointOwner(t *testing.T) {
	g := Star(4) // degrees: center 4, leaves 1 each; endpoints = 8
	if g.EndpointCount() != 8 {
		t.Fatalf("EndpointCount = %d, want 8", g.EndpointCount())
	}
	counts := make(map[Vertex]int)
	for i := 0; i < g.EndpointCount(); i++ {
		counts[g.EndpointOwner(i)]++
	}
	for v := Vertex(0); v < Vertex(g.N()); v++ {
		if counts[v] != g.Degree(v) {
			t.Errorf("owner count of %d = %d, want degree %d", v, counts[v], g.Degree(v))
		}
	}
}

func TestRandomRegularProperties(t *testing.T) {
	rng := xrand.New(99)
	for _, tc := range []struct{ n, d int }{{16, 3}, {50, 4}, {128, 7}, {200, 12}} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("RandomRegular(%d,%d) invalid: %v", tc.n, tc.d, err)
		}
		reg, d := g.IsRegular()
		if !reg || d != tc.d {
			t.Errorf("RandomRegular(%d,%d): regular=(%v,%d)", tc.n, tc.d, reg, d)
		}
	}
}

func TestRandomRegularRejectsBadParams(t *testing.T) {
	rng := xrand.New(1)
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("d >= n accepted")
	}
	if _, err := RandomRegular(4, 0, rng); err == nil {
		t.Error("d = 0 accepted")
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	g1, err := RandomRegular(40, 4, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RandomRegular(40, 4, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := g1.Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := g2.Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same seed produced different random regular graphs")
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	rng := xrand.New(5)
	n, p := 200, 0.1
	g, err := ErdosRenyi(n, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := p * float64(n*(n-1)/2)
	got := float64(g.M())
	if got < 0.8*want || got > 1.2*want {
		t.Errorf("G(n,p) edges = %g, expected about %g", got, want)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := xrand.New(6)
	g0, err := ErdosRenyi(10, 0, rng)
	if err != nil || g0.M() != 0 {
		t.Errorf("G(10,0): m=%d err=%v", g0.M(), err)
	}
	g1, err := ErdosRenyi(10, 1, rng)
	if err != nil || g1.M() != 45 {
		t.Errorf("G(10,1): m=%d err=%v, want complete 45", g1.M(), err)
	}
}

func TestChungLuShape(t *testing.T) {
	rng := xrand.New(8)
	g, err := ChungLu(400, 2.5, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := g.AvgDegree()
	if avg < 5 || avg > 15 {
		t.Errorf("ChungLu avg degree %.2f, wanted near 10", avg)
	}
	// Power-law: max degree should far exceed the average.
	if g.MaxDegree() < 3*int(avg) {
		t.Errorf("ChungLu max degree %d not heavy-tailed vs avg %.1f", g.MaxDegree(), avg)
	}
}

func TestChungLuRejectsBadParams(t *testing.T) {
	rng := xrand.New(8)
	if _, err := ChungLu(1, 2.5, 1, rng); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ChungLu(10, 2.0, 3, rng); err == nil {
		t.Error("beta=2 accepted")
	}
	if _, err := ChungLu(10, 2.5, 0, rng); err == nil {
		t.Error("avgDeg=0 accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, tc := range allFamilies(t) {
		var buf bytes.Buffer
		if err := tc.g.Encode(&buf); err != nil {
			t.Fatalf("%s: Encode: %v", tc.name, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: Decode: %v", tc.name, err)
		}
		if got.N() != tc.g.N() || got.M() != tc.g.M() {
			t.Fatalf("%s: round trip changed size: %d/%d -> %d/%d",
				tc.name, tc.g.N(), tc.g.M(), got.N(), got.M())
		}
		for v := 0; v < got.N(); v++ {
			a, b := tc.g.Neighbors(Vertex(v)), got.Neighbors(Vertex(v))
			if len(a) != len(b) {
				t.Fatalf("%s: vertex %d degree changed", tc.name, v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: vertex %d neighbors differ", tc.name, v)
				}
			}
		}
	}
}

func TestReadFromErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus 3 1\n0 1\n",
		"rumorgraph x 1\n0 1\n",
		"rumorgraph 3 2\n0 1\n", // edge count mismatch
		"rumorgraph 3 1\n0 9\n", // out of range
		"rumorgraph 3 1\n0\n",   // malformed line
		"rumorgraph 3 1\n0 z\n", // bad vertex
	}
	for i, in := range cases {
		if _, err := Decode(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("case %d: Decode accepted %q", i, in)
		}
	}
}

func TestReadFromSkipsComments(t *testing.T) {
	in := "rumorgraph 3 2 tri\n# comment\n0 1\n\n1 2\n"
	g, err := Decode(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || g.Name() != "tri" {
		t.Errorf("got n=%d m=%d name=%q", g.N(), g.M(), g.Name())
	}
}

// TestQuickPairFromIndex checks the linear-index-to-pair bijection used by
// the G(n,p) skip sampler.
func TestQuickPairFromIndex(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.IntN(60)
		idx := int64(0)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				u, v := pairFromIndex(idx, n)
				if int(u) != i || int(v) != j {
					return false
				}
				idx++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEndpointOwnerStationary verifies the binary search in
// EndpointOwner on random graphs.
func TestQuickEndpointOwnerStationary(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g, err := ErdosRenyi(3+rng.IntN(40), 0.3, rng)
		if err != nil || g.M() == 0 {
			return true // nothing to check
		}
		counts := make([]int, g.N())
		for i := 0; i < g.EndpointCount(); i++ {
			counts[g.EndpointOwner(i)]++
		}
		for v := 0; v < g.N(); v++ {
			if counts[v] != g.Degree(Vertex(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"star0", func() { Star(0) }},
		{"doublestar0", func() { DoubleStar(0) }},
		{"heavytree1", func() { HeavyBinaryTree(1) }},
		{"siamese1", func() { SiameseHeavyTree(1) }},
		{"cyclestars2", func() { CycleStarsCliques(2) }},
		{"complete1", func() { Complete(1) }},
		{"cycle2", func() { Cycle(2) }},
		{"path1", func() { Path(1) }},
		{"bintree0", func() { BinaryTree(0) }},
		{"hypercube0", func() { Hypercube(0) }},
		{"torus2", func() { Torus2D(2, 5) }},
		{"ringcliques2", func() { RingOfCliques(2, 3) }},
		{"cliquepath1", func() { CliquePath(1, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestGiantComponent(t *testing.T) {
	// Triangle + edge + isolated vertex: giant component is the triangle.
	b := NewBuilder(6, "mix")
	for _, e := range [][2]Vertex{{0, 1}, {1, 2}, {2, 0}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	giant, mapping := GiantComponent(g)
	if giant.N() != 3 || giant.M() != 3 {
		t.Fatalf("giant = (%d,%d), want triangle (3,3)", giant.N(), giant.M())
	}
	if err := giant.Validate(); err != nil {
		t.Fatal(err)
	}
	if !IsConnected(giant) {
		t.Error("giant component disconnected")
	}
	seen := map[Vertex]bool{}
	for newV, oldV := range mapping {
		if oldV > 2 {
			t.Errorf("mapping[%d] = %d, not in the triangle", newV, oldV)
		}
		seen[oldV] = true
	}
	if len(seen) != 3 {
		t.Errorf("mapping covers %d vertices", len(seen))
	}
}

func TestGiantComponentOfConnectedGraphIsWhole(t *testing.T) {
	g := Hypercube(4)
	giant, mapping := GiantComponent(g)
	if giant.N() != g.N() || giant.M() != g.M() {
		t.Fatalf("giant of connected graph shrank: %d/%d", giant.N(), giant.M())
	}
	for newV, oldV := range mapping {
		if Vertex(newV) != oldV {
			t.Fatal("identity mapping expected for connected input")
		}
	}
}

func TestBarabasiAlbertStructure(t *testing.T) {
	rng := xrand.New(77)
	n, m := 500, 3
	g, err := BarabasiAlbert(n, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	// Edges: seed clique C(m+1,2) + m per added vertex.
	wantM := m*(m+1)/2 + m*(n-m-1)
	if g.M() != wantM {
		t.Errorf("M = %d, want %d", g.M(), wantM)
	}
	if !IsConnected(g) {
		t.Error("preferential attachment graph disconnected")
	}
	if g.MinDegree() < m {
		t.Errorf("MinDegree = %d, want >= %d", g.MinDegree(), m)
	}
	// Heavy tail: the max degree should far exceed the average (2m-ish).
	if g.MaxDegree() < 4*int(g.AvgDegree()) {
		t.Errorf("max degree %d not heavy-tailed vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
	if _, ok := g.Landmark("hub"); !ok {
		t.Error("hub landmark missing")
	}
}

func TestBarabasiAlbertRejectsBadParams(t *testing.T) {
	rng := xrand.New(1)
	if _, err := BarabasiAlbert(5, 0, rng); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := BarabasiAlbert(3, 2, rng); err == nil {
		t.Error("n < m+2 accepted")
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a, err := BarabasiAlbert(100, 2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BarabasiAlbert(100, 2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("same seed, different graphs")
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(Vertex(v)), b.Neighbors(Vertex(v))
		if len(na) != len(nb) {
			t.Fatal("same seed, different adjacency")
		}
	}
}
