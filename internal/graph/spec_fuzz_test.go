package graph

import (
	"math"
	"testing"
)

// FuzzParseSpec pins the canonicalization properties the serving layer's
// request identity is built on: any spec that parses must canonicalize
// to a fixed point. Concretely, for every accepted input:
//
//   - its Canonical form re-parses (no accepted spec renders itself
//     unparseable);
//   - re-parsing the Canonical form yields the same Canonical form (one
//     round of canonicalization reaches the fixed point);
//   - the Hash — the identity sharded stores and caches key on — is the
//     same before and after the round trip, and the parsed parameters
//     are bit-identical.
//
// A violation would let two spellings of one simulation land in
// different cache entries (wasted recompute) or, worse, let one spelling
// alias another's entry.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		// One well-formed spec per family.
		"star:64", "doublestar:8", "heavytree:4", "siamesetree:4", "cyclestars:3",
		"complete:12", "cycle:10", "path:9", "bintree:5", "hypercube:6",
		"torus:4,5", "grid:3,7", "ringcliques:4,6", "cliquepath:3,5",
		"randreg:64,4", "gnp:32,0.25", "barabasi:50,3", "chunglu:40,2.5,6",
		// Spellings that must normalize: case, whitespace, numeric forms.
		"  STAR : 64 ", "Gnp:32,0.250", "gnp:32,2.5e-1", "gnp:32,.25",
		"torus: 4 , 5", "star:+7", "star:007", "chunglu:40,2.50,6.0",
		// Edge-of-grammar values the parser accepts (validation happens at
		// build time).
		"star:0", "star:-3", "gnp:10,NaN", "gnp:10,+Inf", "gnp:10,-0",
		"gnp:10,0x1p-2",
		// Rejected shapes, so the fuzzer explores the error paths too.
		"", "star", "star:", "star:1,2", "torus:4", "nope:3", "star:1.5",
		"star:1;2", "gnp:10,", "star:9999999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseSpec(spec)
		if err != nil {
			return // rejected inputs have no canonicalization contract
		}
		c := p.Canonical()
		p2, err := ParseSpec(c)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", c, spec, err)
		}
		if got := p2.Canonical(); got != c {
			t.Fatalf("canonicalization is not a fixed point: %q -> %q -> %q", spec, c, got)
		}
		if p2.Hash() != p.Hash() {
			t.Fatalf("hash changed across canonicalization of %q (%q): %x vs %x", spec, c, p.Hash(), p2.Hash())
		}
		if p2.Family != p.Family || p2.Random() != p.Random() {
			t.Fatalf("family/randomness changed across canonicalization of %q: %+v vs %+v", spec, p, p2)
		}
		if len(p2.Ints) != len(p.Ints) || len(p2.Floats) != len(p.Floats) {
			t.Fatalf("parameter arity changed across canonicalization of %q: %+v vs %+v", spec, p, p2)
		}
		for i := range p.Ints {
			if p2.Ints[i] != p.Ints[i] {
				t.Fatalf("int parameter %d changed across canonicalization of %q: %d vs %d", i, spec, p.Ints[i], p2.Ints[i])
			}
		}
		for i := range p.Floats {
			// Bit comparison: NaN must round-trip to the same NaN, -0 to -0.
			if math.Float64bits(p2.Floats[i]) != math.Float64bits(p.Floats[i]) {
				t.Fatalf("float parameter %d changed across canonicalization of %q: %v (%x) vs %v (%x)",
					i, spec, p.Floats[i], math.Float64bits(p.Floats[i]), p2.Floats[i], math.Float64bits(p2.Floats[i]))
			}
		}
	})
}
