package graph

import (
	"fmt"
	"math"
	"unsafe"

	"rumor/internal/bitset"
	"rumor/internal/xrand"
)

// Seeded, replayable edge-stream samplers for the random graph families.
//
// The streaming two-pass builder (stream.go) needs its emitter to produce
// the same edge set on every pass. Deterministic families get that for
// free; the random families get it from counter-based randomness: every
// draw a sampler makes comes from an xrand.Stream keyed by (seed, family
// lane, attempt), so reconstructing the stream replays bit-identical
// draws. A sampler keyed (spec, seed) is therefore a *deterministic*
// edge emitter — pass 1 counts degrees, pass 2 places endpoints — and
// random families inherit the builder's peak-heap ≈ 1.0× final CSR
// envelope that previously only deterministic families had.
//
// Auxiliary sampler state that must survive across passes (the
// configuration-model stub array, the preferential-attachment target
// array) lives in a width-adaptive scratch buffer backed by an unlinked
// temp-file mapping once it is large, so it never counts against the Go
// heap during the build (see mapScratch). Per family:
//
//	gnp      geometric skip-sampling over the linearized pair index —
//	         O(m) expected draws instead of O(n²) coin flips, no state.
//	randreg  configuration model: stubs shuffled and paired left to
//	         right in scratch, invalid partners redrawn in place (a
//	         Bloom filter with no false negatives rejects duplicate
//	         edges), deterministic counter-keyed full restarts on the
//	         rare dead end.
//	ba       Batagelj–Brandes-style preferential attachment: the target
//	         array is the only auxiliary state; the degree-proportional
//	         pool is resolved analytically (clique pairs and attachment
//	         sources are arithmetic, earlier targets are array reads).
//	chunglu  Miller–Hagberg per-vertex skip sampling over analytically
//	         computed decreasing weights — no weight array at all.

// Stream-key lanes separating each family's draws (and, within randreg,
// each restart attempt) at a shared seed.
const (
	gnpStreamUnit     = 0x67_6e_70 // "gnp"
	rrStreamUnit      = 0x72_72    // "rr"
	baStreamUnit      = 0x62_61    // "ba"
	chungluStreamUnit = 0x63_6c    // "cl"
)

// RandomSamplerVersion identifies the generation of the edge-stream
// samplers above. It is baked into every seeded spill key (SeededKey), so
// content-addressed graph caches can never serve a realization produced
// by a different sampler algorithm for the same (spec, seed): any change
// to a sampler's draw sequence must bump this constant.
const RandomSamplerVersion = 1

// SeededKey returns the content-address key for one realization of a
// random spec: the canonical spec plus the sampler seed plus the sampler
// version. Deterministic specs are keyed by canonical form alone; random
// specs must use this key for any cross-process cache (disk store, memo)
// so distinct seeds — and distinct sampler generations — never collide.
func SeededKey(canonicalSpec string, seed uint64) string {
	return fmt.Sprintf("%s@seed=%016x;sampler=v%d", canonicalSpec, seed, RandomSamplerVersion)
}

// scratch is a width-adaptive vertex-id array for sampler auxiliary
// state: uint16 entries when every vertex id fits (n ≤ 2¹⁶), uint32
// otherwise. Small buffers live on the heap; large ones alias an
// unlinked temp-file mapping so a giant build's auxiliary state is
// reclaimable file cache, not heap (the giant harness pins build peak
// *heap* at ≤ 1.1× the final CSR). Callers release() when done.
type scratch struct {
	m   *mapping
	u16 []uint16
	u32 []uint32
}

// scratchHeapMax is the largest scratch kept heap-resident. Above it the
// buffer is file-backed; below it the mapping overhead isn't worth it.
const scratchHeapMax = 32 << 20

// newScratch allocates a zeroed scratch of count entries for vertex ids
// below n.
func newScratch(n int, count int64) (*scratch, error) {
	st := &scratch{}
	if count == 0 {
		return st, nil
	}
	wide := n > 1<<16
	width := int64(2)
	if wide {
		width = 4
	}
	if bytes := count * width; bytes > scratchHeapMax {
		m, err := mapScratch(int(bytes))
		if err == nil {
			st.m = m
			if wide {
				st.u32 = unsafe.Slice((*uint32)(unsafe.Pointer(&m.data[0])), count)
			} else {
				st.u16 = unsafe.Slice((*uint16)(unsafe.Pointer(&m.data[0])), count)
			}
			return st, nil
		}
		// Mapping failed (exotic tmpfs, fd limits): degrade to heap. The
		// build still works; only the off-heap property is lost.
	}
	if wide {
		st.u32 = make([]uint32, count)
	} else {
		st.u16 = make([]uint16, count)
	}
	return st, nil
}

// at returns entry i.
func (s *scratch) at(i int64) Vertex {
	if s.u16 != nil {
		return Vertex(s.u16[i])
	}
	return Vertex(s.u32[i])
}

// set stores entry i.
func (s *scratch) set(i int64, v Vertex) {
	if s.u16 != nil {
		s.u16[i] = uint16(v)
		return
	}
	s.u32[i] = uint32(v)
}

// swap exchanges entries i and j.
func (s *scratch) swap(i, j int64) {
	if s.u16 != nil {
		s.u16[i], s.u16[j] = s.u16[j], s.u16[i]
		return
	}
	s.u32[i], s.u32[j] = s.u32[j], s.u32[i]
}

// release unmaps any file backing and drops the slices. The scratch must
// not be used afterwards.
func (s *scratch) release() {
	s.u16, s.u32 = nil, nil
	if s.m != nil {
		s.m.close()
		s.m = nil
	}
}

// bloom is a 3-probe Bloom filter over edge keys, used by the randreg
// sampler to reject duplicate edges during pairing. No false negatives:
// a pairing that survives it is guaranteed simple. False positives
// (≈6% at the ~6 bits/edge sizing) merely cause a benign, deterministic
// partner redraw.
type bloom struct {
	words []uint64
	mask  uint64
}

// newBloom sizes the filter at roughly 6 bits per expected edge, rounded
// up to a power of two — small enough that the filter (the pairing's only
// heap-resident aux structure; the stub array is file-backed) stays well
// inside the streaming build's 1.1x-of-CSR peak-heap envelope even at
// 10M-vertex scales.
func newBloom(m int64) *bloom {
	bits := uint64(64)
	for int64(bits) < 6*m {
		bits <<= 1
	}
	return &bloom{words: make([]uint64, bits/64), mask: bits - 1}
}

func (b *bloom) probes(key uint64) (p1, p2, p3 uint64) {
	h1 := xrand.Mix(key)
	h2 := xrand.Mix(key^0x9e3779b97f4a7c15) | 1
	return h1 & b.mask, (h1 + h2) & b.mask, (h1 + 2*h2) & b.mask
}

func (b *bloom) contains(key uint64) bool {
	p1, p2, p3 := b.probes(key)
	return b.words[p1>>6]&(1<<(p1&63)) != 0 &&
		b.words[p2>>6]&(1<<(p2&63)) != 0 &&
		b.words[p3>>6]&(1<<(p3&63)) != 0
}

func (b *bloom) add(key uint64) {
	p1, p2, p3 := b.probes(key)
	b.words[p1>>6] |= 1 << (p1 & 63)
	b.words[p2>>6] |= 1 << (p2 & 63)
	b.words[p3>>6] |= 1 << (p3 & 63)
}

// edgeKey packs an unordered vertex pair into one comparable word.
func edgeKey(u, v Vertex) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// connectedLean reports connectivity with O(n) bits of visited state and
// one preallocated queue — unlike BFS it allocates no per-vertex int32
// distance array, which matters exactly where this is called: checking a
// just-built giant randreg graph whose CSR already owns the heap budget.
func connectedLean(g *Graph) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	visited := bitset.New(n)
	// The DFS stack can reach O(n) entries, which at giant sizes would be
	// the largest heap allocation of the whole connectivity check — so it
	// lives in the same width-adaptive, file-backed-when-large scratch the
	// samplers use for their aux arrays, keeping the check inside the
	// streaming build's peak-heap envelope. Only the n-bit visited set
	// stays on the heap.
	stack, err := newScratch(n, int64(n))
	if err != nil {
		// newScratch degrades to heap on mmap failure, so this is
		// unreachable; keep the check for future error paths.
		return IsConnected(g)
	}
	defer stack.release()
	top := int64(1)
	stack.set(0, 0)
	visited.Set(0)
	seen := 1
	for top > 0 {
		top--
		u := stack.at(top)
		for _, v := range g.Neighbors(u) {
			if !visited.Test(int(v)) {
				visited.Set(int(v))
				seen++
				stack.set(top, v)
				top++
			}
		}
	}
	return seen == n
}

// ErdosRenyiSeeded samples G(n, p) through the streaming builder using
// geometric skip-sampling: pairs (i, j), i < j, are linearized and the
// sampler jumps between present edges in Geometric(p) steps — O(m)
// expected draws, O(1) sampler state, peak heap equal to the final CSR.
// The same (n, p, seed) always yields the same graph.
func ErdosRenyiSeeded(n int, p float64, seed uint64) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: ErdosRenyi needs n >= 1")
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: ErdosRenyi needs p in [0,1], got %g", p)
	}
	return BuildStream(gnpSpec(n, p, seed))
}

func gnpSpec(n int, p float64, seed uint64) StreamSpec {
	total := int64(n) * int64(n-1) / 2
	// skips replays the edge-index walk: identical draws every call, so
	// Count, pass 1, and pass 2 all see the same edge set.
	skips := func(visit func(idx int64)) {
		if p <= 0 || total == 0 {
			return
		}
		s := xrand.NewStream(seed, gnpStreamUnit, 0)
		idx := int64(-1)
		for {
			idx += s.Geometric64(p)
			if idx >= total {
				return
			}
			visit(idx)
		}
	}
	return StreamSpec{
		N:    n,
		Name: fmt.Sprintf("gnp(%d,%g)", n, p),
		// Counting doesn't need pair coordinates, so the prepass skips the
		// unranking entirely.
		Count: func() int64 {
			var m int64
			skips(func(int64) { m++ })
			return m
		},
		Emit: func(emit func(u, v Vertex)) {
			// The walk visits strictly increasing indices, so the row
			// pointer only ever moves forward: unranking is O(n + m) total,
			// with no per-edge binary search.
			i, rowEnd := 0, int64(n-1)
			skips(func(idx int64) {
				for idx >= rowEnd {
					i++
					rowEnd += int64(n - 1 - i)
				}
				j := int64(i+1) + idx - (rowEnd - int64(n-1-i))
				emit(Vertex(i), Vertex(j))
			})
		},
	}
}

// RandomRegularSeeded samples a random d-regular simple graph on n
// vertices via a replayable two-pass configuration model: stubs are
// shuffled and paired left to right inside a scratch buffer, partners
// that would form a self-loop or duplicate edge are redrawn in place
// (a Bloom filter guarantees no duplicate survives), and the rare
// unresolvable tail triggers a deterministic counter-keyed restart.
// Requires n·d even and 0 < d < n.
func RandomRegularSeeded(n, d int, seed uint64) (*Graph, error) {
	if d <= 0 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegular needs 0 < d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular needs n*d even, got n=%d d=%d", n, d)
	}
	m := int64(n) * int64(d) / 2
	const maxRestarts = 64
	for attempt := uint64(0); attempt < maxRestarts; attempt++ {
		st, ok, err := randRegPairing(n, d, m, seed, attempt)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		g, err := BuildStream(StreamSpec{
			N:    n,
			M:    m,
			Name: fmt.Sprintf("randreg(%d,%d)", n, d),
			Emit: func(emit func(u, v Vertex)) {
				for k := int64(0); k < m; k++ {
					emit(st.at(2*k), st.at(2*k+1))
				}
			},
		})
		st.release()
		return g, err
	}
	return nil, fmt.Errorf("graph: RandomRegular(%d,%d) failed after %d restarts", n, d, maxRestarts)
}

// randRegPairing samples one configuration-model pairing into scratch:
// entries (2k, 2k+1) are edge k's endpoints. ok is false on a dead end
// (some stub cannot find a valid partner), telling the caller to restart
// with the next attempt key.
func randRegPairing(n, d int, m int64, seed, attempt uint64) (st *scratch, ok bool, err error) {
	st, err = newScratch(n, 2*m)
	if err != nil {
		return nil, false, err
	}
	idx := int64(0)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			st.set(idx, Vertex(v))
			idx++
		}
	}
	// The attempt index is the stream's round key, so restarts draw fresh
	// randomness without touching the caller's seed derivation.
	s := xrand.NewStream(seed, rrStreamUnit, attempt)
	for i := 2*m - 1; i > 0; i-- {
		st.swap(i, int64(s.IntN(int(i+1))))
	}
	// Pair left to right. The Bloom filter has no false negatives, so any
	// pairing that completes is simple; false positives just redraw a
	// partner that would have been fine.
	filter := newBloom(m)
	const maxTries = 256
	for k := int64(0); k < m; k++ {
		u := st.at(2 * k)
		limit := int(2*m - (2*k + 1))
		paired := false
		for try := 0; try < maxTries; try++ {
			v := st.at(2*k + 1)
			if u != v && !filter.contains(edgeKey(u, v)) {
				filter.add(edgeKey(u, v))
				paired = true
				break
			}
			st.swap(2*k+1, 2*k+1+int64(s.IntN(limit)))
		}
		if !paired {
			st.release()
			return nil, false, nil
		}
	}
	return st, true, nil
}

// RandomRegularConnectedSeeded retries RandomRegularSeeded with derived
// seeds until the sample is connected (at most 32 attempts). For d >= 3
// almost every sample is connected, so this nearly always returns the
// first sample. Connectivity is checked with connectedLean, whose O(n/8)
// bytes of state keep the giant-build heap envelope intact.
func RandomRegularConnectedSeeded(n, d int, seed uint64) (*Graph, error) {
	for attempt := 0; attempt < 32; attempt++ {
		g, err := RandomRegularSeeded(n, d, xrand.Derive(seed, attempt))
		if err != nil {
			return nil, err
		}
		if connectedLean(g) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no connected %d-regular sample on %d vertices after 32 tries", d, n)
}

// BarabasiAlbertSeeded samples a preferential-attachment graph through
// the streaming builder: seed clique on m+1 vertices, then each new
// vertex attaches to m distinct existing vertices chosen uniformly from
// the endpoint multiset of all earlier edges (degree-proportional). In
// the Batagelj–Brandes manner the endpoint pool is never materialized:
// a pool position resolves analytically — clique endpoints and
// attachment sources are arithmetic, earlier attachment targets are
// reads from the width-adaptive target array, which is the sampler's
// only auxiliary state.
func BarabasiAlbertSeeded(n, m int, seed uint64) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("graph: BarabasiAlbert needs m >= 1")
	}
	if n < m+2 {
		return nil, fmt.Errorf("graph: BarabasiAlbert needs n >= m+2, got n=%d m=%d", n, m)
	}
	cliqueN := m + 1
	cq := cliqueEdges(cliqueN)
	attach := int64(n-cliqueN) * int64(m)
	targets, err := newScratch(n, attach)
	if err != nil {
		return nil, err
	}
	// resolve maps a position in the virtual endpoint pool (edge e
	// contributes positions 2e and 2e+1, in emission order: clique pairs
	// lexicographically, then attachment edges in draw order) to the
	// vertex standing there.
	resolve := func(pos int64) Vertex {
		if pos < 2*cq {
			u, v := pairFromIndex(pos/2, cliqueN)
			if pos%2 == 0 {
				return u
			}
			return v
		}
		q := pos - 2*cq
		e := q / 2
		if q%2 == 0 {
			return Vertex(cliqueN + int(e)/m)
		}
		return targets.at(e)
	}
	s := xrand.NewStream(seed, baStreamUnit, 0)
	chosen := make([]Vertex, 0, m)
	var placed int64
	for v := cliqueN; v < n; v++ {
		// Every vertex below v is in the pool and v is not, so draws can
		// produce neither self-loops nor edges to future vertices.
		pool := 2 * (cq + placed)
		chosen = chosen[:0]
		for len(chosen) < m {
			t := resolve(int64(s.IntN(int(pool))))
			if !containsVertex(chosen, t) {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			targets.set(placed, t)
			placed++
		}
	}
	g, err := BuildStream(StreamSpec{
		N:    n,
		M:    cq + attach,
		Name: fmt.Sprintf("barabasi(%d,%d)", n, m),
		Emit: func(emit func(u, v Vertex)) {
			emitClique(emit, 0, cliqueN)
			for e := int64(0); e < attach; e++ {
				emit(Vertex(cliqueN+int(e)/m), targets.at(e))
			}
		},
		Landmarks: map[string]Vertex{"hub": 0},
	})
	targets.release()
	return g, err
}

// ChungLuSeeded samples a Chung-Lu power-law expected-degree graph
// (weight w_i ∝ (i+1)^(−1/(β−1)) scaled to the requested average degree,
// edge {i,j} present with probability min(1, w_i·w_j/Σw)) through the
// streaming builder via Miller–Hagberg per-vertex skip sampling: for
// each i the partners j > i are visited in Geometric jumps under the
// current probability bound, thinned to the exact probability as the
// decreasing weights tighten the bound. Weights are computed
// analytically on demand — the sampler holds no per-vertex array at all.
// O(n + m) expected draws; β must exceed 2 for a finite mean.
func ChungLuSeeded(n int, beta, avgDeg float64, seed uint64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: ChungLu needs n >= 2")
	}
	if beta <= 2 {
		return nil, fmt.Errorf("graph: ChungLu needs beta > 2, got %g", beta)
	}
	if avgDeg <= 0 || avgDeg >= float64(n) {
		return nil, fmt.Errorf("graph: ChungLu needs 0 < avgDeg < n, got %g", avgDeg)
	}
	exp := -1 / (beta - 1)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), exp)
	}
	scale := avgDeg * float64(n) / sum
	total := avgDeg * float64(n) // Σ of the scaled weights
	w := func(i int) float64 { return scale * math.Pow(float64(i+1), exp) }
	return BuildStream(StreamSpec{
		N:    n,
		Name: fmt.Sprintf("chunglu(%d,%.1f,%.1f)", n, beta, avgDeg),
		Emit: func(emit func(u, v Vertex)) {
			s := xrand.NewStream(seed, chungluStreamUnit, 0)
			for i := 0; i < n-1; i++ {
				wi := w(i)
				j := i + 1
				p := math.Min(1, wi*w(j)/total)
				for j < n && p > 0 {
					if p < 1 {
						j += int(s.Geometric64(p)) - 1
						if j >= n {
							break
						}
					}
					q := math.Min(1, wi*w(j)/total)
					// The skip accepted at rate p; thin to the exact q ≤ p.
					if s.Float64()*p < q {
						emit(Vertex(i), Vertex(j))
					}
					p = q
					j++
				}
			}
		},
	})
}
