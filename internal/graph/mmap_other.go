//go:build !(linux || darwin)

package graph

import "os"

// mapping on platforms without mmap support: the encoded file is loaded
// onto the heap. Graphs still round-trip through the same on-disk format
// and content-addressed store; only the out-of-core property is lost.
type mapping struct {
	data []byte
	heap bool
}

func mapFile(path string) (*mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &mapping{data: data, heap: true}, nil
}

func (m *mapping) close() {}

// mapScratch on platforms without mmap: plain heap memory. Samplers work
// unchanged; only the off-heap property of giant builds is lost.
func mapScratch(size int) (*mapping, error) {
	return &mapping{data: make([]byte, size), heap: true}, nil
}
