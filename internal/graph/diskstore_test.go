package graph

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStoreSpillsAndReopens(t *testing.T) {
	st, err := NewStore(filepath.Join(t.TempDir(), "graphs"), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Star(500)
	builds := 0
	build := func() (*Graph, error) { builds++; return Star(500), nil }

	g1, err := st.GetOrBuild("star:500", build)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, want, g1)
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	if _, err := os.Stat(st.Path("star:500")); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}

	// Second request must come from disk, not the builder — this is the
	// cross-restart replay seam: a fresh process with the same data dir
	// takes this path.
	g2, err := st.GetOrBuild("star:500", func() (*Graph, error) {
		t.Fatal("rebuilt a spilled graph")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, want, g2)
}

func TestStoreThresholdKeepsSmallGraphsInMemory(t *testing.T) {
	st, err := NewStore(filepath.Join(t.TempDir(), "graphs"), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	g, err := st.GetOrBuild("path:9", func() (*Graph, error) { return Path(9), nil })
	if err != nil {
		t.Fatal(err)
	}
	if g.MmapBacked() {
		t.Fatal("small graph spilled despite threshold")
	}
	if _, err := os.Stat(st.Path("path:9")); !os.IsNotExist(err) {
		t.Fatalf("spill file exists for under-threshold graph: %v", err)
	}
}

func TestStoreDisabledThreshold(t *testing.T) {
	st, err := NewStore(filepath.Join(t.TempDir(), "graphs"), 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := st.GetOrBuild("cycle:6", func() (*Graph, error) { return Cycle(6), nil })
	if err != nil {
		t.Fatal(err)
	}
	if g.MmapBacked() {
		t.Fatal("spilled with spilling disabled")
	}
}

func TestStoreRecoversFromCorruptFile(t *testing.T) {
	st, err := NewStore(filepath.Join(t.TempDir(), "graphs"), 1)
	if err != nil {
		t.Fatal(err)
	}
	path := st.Path("cycle:12")
	if err := os.WriteFile(path, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := st.GetOrBuild("cycle:12", func() (*Graph, error) { return Cycle(12), nil })
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, Cycle(12), g)
	// The rebuilt graph must have replaced the corrupt file with a valid one.
	if _, err := OpenCSRFile(path); err != nil {
		t.Fatalf("spill file still corrupt after rebuild: %v", err)
	}
}

func TestStoreBuildErrorPropagates(t *testing.T) {
	st, err := NewStore(filepath.Join(t.TempDir(), "graphs"), 1)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := os.ErrInvalid
	if _, err := st.GetOrBuild("bad", func() (*Graph, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if _, err := os.Stat(st.Path("bad")); !os.IsNotExist(err) {
		t.Fatal("file written for failed build")
	}
}

func TestStoreHostileKeysStayInDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "graphs")
	st, err := NewStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"../escape", "a/b/c", "", "star:1\x00"} {
		p := st.Path(key)
		if filepath.Dir(p) != dir {
			t.Fatalf("key %q maps outside the store: %s", key, p)
		}
	}
}

func TestStoreDirCreationFailure(t *testing.T) {
	blocked := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(blocked, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(filepath.Join(blocked, "graphs"), 1); err == nil {
		t.Fatal("store created under a regular file")
	}
}
