package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestCSRRoundTrip(t *testing.T) {
	for _, spec := range deterministicSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			g := mustBuildStream(spec)
			raw := encodeCSRBytes(t, g)
			// DecodeCSR aliases raw on little-endian hosts; keep raw alive
			// and unmodified for the decoded graph's lifetime.
			d, err := DecodeCSR(raw)
			if err != nil {
				t.Fatalf("DecodeCSR: %v", err)
			}
			assertGraphsEqual(t, g, d)
			// The decoded graph must re-encode to the same bytes:
			// encoding is deterministic and lossless.
			if !bytes.Equal(raw, encodeCSRBytes(t, d)) {
				t.Fatal("re-encoded CSR differs from original bytes")
			}
		})
	}
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("shape differs: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	if sanitizeName(a.Name()) != b.Name() && a.Name() != b.Name() {
		t.Fatalf("name differs: %q vs %q", a.Name(), b.Name())
	}
	for v := 0; v < a.N(); v++ {
		an, bn := a.Neighbors(Vertex(v)), b.Neighbors(Vertex(v))
		if len(an) != len(bn) {
			t.Fatalf("degree of %d differs: %d vs %d", v, len(an), len(bn))
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("neighbors of %d differ at %d: %d vs %d", v, i, an[i], bn[i])
			}
		}
	}
	an, bn := a.LandmarkNames(), b.LandmarkNames()
	if len(an) != len(bn) {
		t.Fatalf("landmark count differs: %v vs %v", an, bn)
	}
	for i, name := range an {
		if bn[i] != name {
			t.Fatalf("landmark names differ: %v vs %v", an, bn)
		}
		av, _ := a.Landmark(name)
		bv, _ := b.Landmark(name)
		if av != bv {
			t.Fatalf("landmark %q differs: %d vs %d", name, av, bv)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("decoded graph invalid: %v", err)
	}
}

func TestCSRFileRoundTrip(t *testing.T) {
	g := Star(257)
	path := filepath.Join(t.TempDir(), "star.csr")
	if err := WriteCSRFile(g, path); err != nil {
		t.Fatalf("WriteCSRFile: %v", err)
	}
	m, err := OpenCSRFile(path)
	if err != nil {
		t.Fatalf("OpenCSRFile: %v", err)
	}
	assertGraphsEqual(t, g, m)
	if !m.MmapBacked() {
		// Non-unix fallbacks load to heap; on linux/darwin the graph must
		// actually be mmap-backed.
		t.Log("graph not mmap-backed (heap fallback platform)")
	}
	// Reopening must work repeatedly: the store reopens graphs across
	// "process restarts" without rewriting the file.
	m2, err := OpenCSRFile(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	assertGraphsEqual(t, g, m2)
}

func TestCSRWideOffsets(t *testing.T) {
	// Force the 64-bit offset path without allocating 2^32 endpoints:
	// build a small graph, then rebuild its offsets wide via the store
	// constructor, exercising encode/decode for both widths.
	g := Complete(9)
	wide := &Graph{
		off:       offsetStore{o64: make([]int64, g.N()+1)},
		neighbors: g.neighbors,
		name:      g.name,
		landmarks: g.landmarks,
	}
	for i := 0; i <= g.N(); i++ {
		wide.off.set(i, g.off.at(i))
	}
	if !wide.off.wide() || wide.OffsetWidth() != 8 {
		t.Fatal("wide store not wide")
	}
	raw := encodeCSRBytes(t, wide)
	d, err := DecodeCSR(raw)
	if err != nil {
		t.Fatal(err)
	}
	if d.OffsetWidth() != 8 {
		t.Fatalf("decoded width %d, want 8", d.OffsetWidth())
	}
	assertGraphsEqual(t, g, d)
}

func TestDecodeCSRRejectsCorrupt(t *testing.T) {
	g := Cycle(12)
	raw := encodeCSRBytes(t, g)

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad-version", func(b []byte) []byte { b[8] = 99; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-1] }},
		{"extended", func(b []byte) []byte { return append(b, 0) }},
		{"huge-n", func(b []byte) []byte { b[19] = 0xff; return b }},
		{"offsets-mismatch", func(b []byte) []byte {
			// First offset must be zero; make it nonzero.
			b[csrHeaderSize] = 1
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mut(append([]byte(nil), raw...))
			if _, err := DecodeCSR(mutated); err == nil {
				t.Error("corrupt CSR accepted")
			}
		})
	}
}

func TestDecodeCSRRejectsBadLandmark(t *testing.T) {
	g := mustBuildStream(StreamSpec{
		N: 3, M: 2, Name: "t",
		Emit:      func(emit func(u, v Vertex)) { emit(0, 1); emit(1, 2) },
		Landmarks: map[string]Vertex{"x": 2},
	})
	raw := encodeCSRBytes(t, g)
	// The landmark vertex is the last 4 bytes; point it out of range.
	raw[len(raw)-4] = 0xff
	raw[len(raw)-3] = 0xff
	raw[len(raw)-2] = 0xff
	raw[len(raw)-1] = 0x7f
	if _, err := DecodeCSR(raw); err == nil {
		t.Error("out-of-range landmark accepted")
	}
}

func TestOpenCSRFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenCSRFile(filepath.Join(dir, "missing.csr")); err == nil {
		t.Error("missing file accepted")
	}
	garbage := filepath.Join(dir, "garbage.csr")
	if err := os.WriteFile(garbage, []byte("not a csr file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCSRFile(garbage); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestWriteCSRFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	if err := WriteCSRFile(Path(5), path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a different graph; readers must see one or the other,
	// never a torn file — after the write, only the new content.
	if err := WriteCSRFile(Cycle(8), path); err != nil {
		t.Fatal(err)
	}
	g, err := OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 || g.M() != 8 {
		t.Fatalf("got n=%d m=%d after overwrite, want 8,8", g.N(), g.M())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestMemoryCostAccounting(t *testing.T) {
	g := Star(1000)
	inMem := g.MemoryCost()
	if inMem < g.CSRBytes() {
		t.Fatalf("in-memory cost %d below CSR size %d", inMem, g.CSRBytes())
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := WriteCSRFile(g, path); err != nil {
		t.Fatal(err)
	}
	m, err := OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.MmapBacked() && m.MemoryCost() >= inMem {
		t.Fatalf("mmap-backed cost %d not below in-memory cost %d", m.MemoryCost(), inMem)
	}
	if g.OffsetWidth() != 4 {
		t.Fatalf("small graph uses %d-byte offsets", g.OffsetWidth())
	}
}
