package graph

import (
	"fmt"
	"strconv"
	"strings"

	"rumor/internal/xrand"
)

// FromSpec builds a graph from a compact textual description, used by the
// command-line tools. The grammar is family[:p1[,p2[,p3]]]:
//
//	star:L             star with L leaves
//	doublestar:L       double star, L leaves per star
//	heavytree:LV       heavy binary tree with LV levels
//	siamesetree:LV     Siamese heavy binary tree with LV levels
//	cyclestars:K       cycle of stars of cliques with parameter K
//	complete:N         complete graph K_N
//	cycle:N            N-cycle
//	path:N             N-vertex path
//	bintree:LV         complete binary tree with LV levels
//	hypercube:D        D-dimensional hypercube
//	torus:R,C          R×C torus
//	grid:R,C           R×C grid
//	ringcliques:K,S    K cliques of size S in a ring
//	cliquepath:K,S     K cliques of size S in a path
//	randreg:N,D        connected random D-regular graph on N vertices
//	gnp:N,P            Erdős–Rényi G(N, P); P parsed as float
//	barabasi:N,M       preferential attachment, M edges per new vertex
//	chunglu:N,B,D      Chung-Lu power law, exponent B, average degree D
//
// Random families consume randomness from rng.
func FromSpec(spec string, rng *xrand.RNG) (*Graph, error) {
	name, args, _ := strings.Cut(spec, ":")
	name = strings.ToLower(strings.TrimSpace(name))
	var parts []string
	if args != "" {
		parts = strings.Split(args, ",")
	}
	ints := func(want int) ([]int, error) {
		if len(parts) != want {
			return nil, fmt.Errorf("graph: spec %q wants %d parameters, got %d", spec, want, len(parts))
		}
		out := make([]int, want)
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("graph: spec %q parameter %q: %w", spec, p, err)
			}
			out[i] = v
		}
		return out, nil
	}
	// Deterministic families panic on bad parameter ranges; convert that to
	// an error for CLI friendliness.
	build := func(f func() *Graph) (g *Graph, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("graph: spec %q: %v", spec, r)
			}
		}()
		return f(), nil
	}
	switch name {
	case "star":
		p, err := ints(1)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return Star(p[0]) })
	case "doublestar":
		p, err := ints(1)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return DoubleStar(p[0]) })
	case "heavytree":
		p, err := ints(1)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return HeavyBinaryTree(p[0]) })
	case "siamesetree":
		p, err := ints(1)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return SiameseHeavyTree(p[0]) })
	case "cyclestars":
		p, err := ints(1)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return CycleStarsCliques(p[0]) })
	case "complete":
		p, err := ints(1)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return Complete(p[0]) })
	case "cycle":
		p, err := ints(1)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return Cycle(p[0]) })
	case "path":
		p, err := ints(1)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return Path(p[0]) })
	case "bintree":
		p, err := ints(1)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return BinaryTree(p[0]) })
	case "hypercube":
		p, err := ints(1)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return Hypercube(p[0]) })
	case "torus":
		p, err := ints(2)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return Torus2D(p[0], p[1]) })
	case "grid":
		p, err := ints(2)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return Grid2D(p[0], p[1]) })
	case "ringcliques":
		p, err := ints(2)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return RingOfCliques(p[0], p[1]) })
	case "cliquepath":
		p, err := ints(2)
		if err != nil {
			return nil, err
		}
		return build(func() *Graph { return CliquePath(p[0], p[1]) })
	case "randreg":
		p, err := ints(2)
		if err != nil {
			return nil, err
		}
		return RandomRegularConnected(p[0], p[1], rng)
	case "gnp":
		if len(parts) != 2 {
			return nil, fmt.Errorf("graph: spec %q wants 2 parameters", spec)
		}
		n, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("graph: spec %q: %w", spec, err)
		}
		prob, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("graph: spec %q: %w", spec, err)
		}
		return ErdosRenyi(n, prob, rng)
	case "barabasi":
		p, err := ints(2)
		if err != nil {
			return nil, err
		}
		return BarabasiAlbert(p[0], p[1], rng)
	case "chunglu":
		if len(parts) != 3 {
			return nil, fmt.Errorf("graph: spec %q wants 3 parameters", spec)
		}
		n, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("graph: spec %q: %w", spec, err)
		}
		beta, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("graph: spec %q: %w", spec, err)
		}
		avg, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("graph: spec %q: %w", spec, err)
		}
		return ChungLu(n, beta, avg, rng)
	default:
		return nil, fmt.Errorf("graph: unknown family %q (see FromSpec doc for the grammar)", name)
	}
}

// SpecFamilies lists the family names FromSpec accepts, for CLI usage text.
func SpecFamilies() []string {
	return []string{
		"star:L", "doublestar:L", "heavytree:LV", "siamesetree:LV",
		"cyclestars:K", "complete:N", "cycle:N", "path:N", "bintree:LV",
		"hypercube:D", "torus:R,C", "grid:R,C", "ringcliques:K,S",
		"cliquepath:K,S", "randreg:N,D", "gnp:N,P", "chunglu:N,B,D",
		"barabasi:N,M",
	}
}
