package graph

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"rumor/internal/xrand"
)

// The spec grammar is family[:p1[,p2[,p3]]]:
//
//	star:L             star with L leaves
//	doublestar:L       double star, L leaves per star
//	heavytree:LV       heavy binary tree with LV levels
//	siamesetree:LV     Siamese heavy binary tree with LV levels
//	cyclestars:K       cycle of stars of cliques with parameter K
//	complete:N         complete graph K_N
//	cycle:N            N-cycle
//	path:N             N-vertex path
//	bintree:LV         complete binary tree with LV levels
//	hypercube:D        D-dimensional hypercube
//	torus:R,C          R×C torus
//	grid:R,C           R×C grid
//	ringcliques:K,S    K cliques of size S in a ring
//	cliquepath:K,S     K cliques of size S in a path
//	randreg:N,D        connected random D-regular graph on N vertices
//	gnp:N,P            Erdős–Rényi G(N, P); P parsed as float
//	barabasi:N,M       preferential attachment, M edges per new vertex
//	chunglu:N,B,D      Chung-Lu power law, exponent B, average degree D
//
// specFamily describes one family of the grammar: its parameter shape
// (kinds has one letter per parameter: 'i' int, 'f' float), whether its
// construction consumes randomness, and how to build it from parsed
// parameters. Random families carry a seeded builder — the edge-stream
// sampler keyed by an explicit sampler seed (randstream.go) — and their
// rng-driven build derives its seed from one rng draw, so both entry
// points sample the same realization for the same randomness.
type specFamily struct {
	usage  string
	kinds  string
	random bool
	build  func(p ParsedSpec, rng *xrand.RNG) (*Graph, error)
	seeded func(p ParsedSpec, seed uint64) (*Graph, error)
}

// deterministic wraps a parameter-only generator, converting its
// bad-parameter panics to errors for CLI friendliness.
func deterministic(f func(p ParsedSpec) *Graph) func(p ParsedSpec, rng *xrand.RNG) (*Graph, error) {
	return func(p ParsedSpec, _ *xrand.RNG) (g *Graph, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("graph: spec %q: %v", p.Canonical(), r)
			}
		}()
		return f(p), nil
	}
}

// specFamilies maps family name to its grammar entry. Iteration never
// happens over this map directly (ordering comes from specOrder), so the
// canonical form and usage text stay stable.
var specFamilies = map[string]specFamily{
	"star":        {usage: "star:L", kinds: "i", build: deterministic(func(p ParsedSpec) *Graph { return Star(p.Ints[0]) })},
	"doublestar":  {usage: "doublestar:L", kinds: "i", build: deterministic(func(p ParsedSpec) *Graph { return DoubleStar(p.Ints[0]) })},
	"heavytree":   {usage: "heavytree:LV", kinds: "i", build: deterministic(func(p ParsedSpec) *Graph { return HeavyBinaryTree(p.Ints[0]) })},
	"siamesetree": {usage: "siamesetree:LV", kinds: "i", build: deterministic(func(p ParsedSpec) *Graph { return SiameseHeavyTree(p.Ints[0]) })},
	"cyclestars":  {usage: "cyclestars:K", kinds: "i", build: deterministic(func(p ParsedSpec) *Graph { return CycleStarsCliques(p.Ints[0]) })},
	"complete":    {usage: "complete:N", kinds: "i", build: deterministic(func(p ParsedSpec) *Graph { return Complete(p.Ints[0]) })},
	"cycle":       {usage: "cycle:N", kinds: "i", build: deterministic(func(p ParsedSpec) *Graph { return Cycle(p.Ints[0]) })},
	"path":        {usage: "path:N", kinds: "i", build: deterministic(func(p ParsedSpec) *Graph { return Path(p.Ints[0]) })},
	"bintree":     {usage: "bintree:LV", kinds: "i", build: deterministic(func(p ParsedSpec) *Graph { return BinaryTree(p.Ints[0]) })},
	"hypercube":   {usage: "hypercube:D", kinds: "i", build: deterministic(func(p ParsedSpec) *Graph { return Hypercube(p.Ints[0]) })},
	"torus":       {usage: "torus:R,C", kinds: "ii", build: deterministic(func(p ParsedSpec) *Graph { return Torus2D(p.Ints[0], p.Ints[1]) })},
	"grid":        {usage: "grid:R,C", kinds: "ii", build: deterministic(func(p ParsedSpec) *Graph { return Grid2D(p.Ints[0], p.Ints[1]) })},
	"ringcliques": {usage: "ringcliques:K,S", kinds: "ii", build: deterministic(func(p ParsedSpec) *Graph { return RingOfCliques(p.Ints[0], p.Ints[1]) })},
	"cliquepath":  {usage: "cliquepath:K,S", kinds: "ii", build: deterministic(func(p ParsedSpec) *Graph { return CliquePath(p.Ints[0], p.Ints[1]) })},
	"randreg": {usage: "randreg:N,D", kinds: "ii", random: true,
		seeded: func(p ParsedSpec, seed uint64) (*Graph, error) {
			return RandomRegularConnectedSeeded(p.Ints[0], p.Ints[1], seed)
		}},
	"gnp": {usage: "gnp:N,P", kinds: "if", random: true,
		seeded: func(p ParsedSpec, seed uint64) (*Graph, error) {
			return ErdosRenyiSeeded(p.Ints[0], p.Floats[0], seed)
		}},
	"barabasi": {usage: "barabasi:N,M", kinds: "ii", random: true,
		seeded: func(p ParsedSpec, seed uint64) (*Graph, error) {
			return BarabasiAlbertSeeded(p.Ints[0], p.Ints[1], seed)
		}},
	"chunglu": {usage: "chunglu:N,B,D", kinds: "iff", random: true,
		seeded: func(p ParsedSpec, seed uint64) (*Graph, error) {
			return ChungLuSeeded(p.Ints[0], p.Floats[0], p.Floats[1], seed)
		}},
}

// specOrder fixes the presentation order of SpecFamilies.
var specOrder = []string{
	"star", "doublestar", "heavytree", "siamesetree", "cyclestars",
	"complete", "cycle", "path", "bintree", "hypercube", "torus", "grid",
	"ringcliques", "cliquepath", "randreg", "gnp", "chunglu", "barabasi",
}

// ParsedSpec is a validated, normalized graph spec. Two textual specs that
// differ only in case, whitespace, or numeric rendering ("0.20" vs "0.2")
// parse to ParsedSpecs with identical Canonical forms and Hashes — the
// stability the serving layer's request deduplication is keyed on.
type ParsedSpec struct {
	// Family is the lowercased family name.
	Family string
	// Ints holds the integer parameters in positional order.
	Ints []int
	// Floats holds the float parameters in positional order.
	Floats []float64
	// kinds mirrors specFamily.kinds, for canonical rendering.
	kinds string
	// random records whether building consumes randomness.
	random bool
}

// ParseSpec validates and normalizes a textual graph spec without building
// the graph. It checks family, arity, and parameter syntax; value-range
// errors surface when the graph is built.
func ParseSpec(spec string) (ParsedSpec, error) {
	name, args, _ := strings.Cut(spec, ":")
	name = strings.ToLower(strings.TrimSpace(name))
	fam, ok := specFamilies[name]
	if !ok {
		return ParsedSpec{}, fmt.Errorf("graph: unknown family %q (see the ParseSpec grammar)", name)
	}
	var parts []string
	if args != "" {
		parts = strings.Split(args, ",")
	}
	if len(parts) != len(fam.kinds) {
		return ParsedSpec{}, fmt.Errorf("graph: spec %q wants %d parameters, got %d", spec, len(fam.kinds), len(parts))
	}
	p := ParsedSpec{Family: name, kinds: fam.kinds, random: fam.random}
	for i, raw := range parts {
		raw = strings.TrimSpace(raw)
		switch fam.kinds[i] {
		case 'i':
			v, err := strconv.Atoi(raw)
			if err != nil {
				return ParsedSpec{}, fmt.Errorf("graph: spec %q parameter %q: %w", spec, raw, err)
			}
			p.Ints = append(p.Ints, v)
		case 'f':
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return ParsedSpec{}, fmt.Errorf("graph: spec %q parameter %q: %w", spec, raw, err)
			}
			p.Floats = append(p.Floats, v)
		}
	}
	return p, nil
}

// Canonical returns the canonical textual form of the spec: lowercased
// family, no whitespace, integers in base 10, floats in shortest
// round-trip rendering. Parsing the canonical form yields an identical
// ParsedSpec.
func (p ParsedSpec) Canonical() string {
	var sb strings.Builder
	sb.WriteString(p.Family)
	ii, fi := 0, 0
	for i := range p.kinds {
		if i == 0 {
			sb.WriteByte(':')
		} else {
			sb.WriteByte(',')
		}
		switch p.kinds[i] {
		case 'i':
			sb.WriteString(strconv.Itoa(p.Ints[ii]))
			ii++
		case 'f':
			sb.WriteString(strconv.FormatFloat(p.Floats[fi], 'g', -1, 64))
			fi++
		}
	}
	return sb.String()
}

// Random reports whether building this spec consumes randomness from the
// RNG — true for the generated families (randreg, gnp, barabasi, chunglu),
// whose identity depends on the build seed. Deterministic specs are safe
// to memoize by Canonical form alone.
func (p ParsedSpec) Random() bool { return p.random }

// Hash returns a stable 64-bit FNV-1a hash of the canonical form. It
// depends only on the canonical string, so it is identical across
// processes, platforms, and releases that keep the grammar. It is a
// compact spec identity for callers that want a fixed-width key; note
// the graph cache keys on Canonical directly and the serving layer
// hashes the full request spec (serve.jobID), not this value.
func (p ParsedSpec) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(p.Canonical()))
	return h.Sum64()
}

// Build constructs the graph. Random families draw one Uint64 from rng
// as the sampler seed and build through the streaming edge-stream
// samplers (see BuildSeeded); deterministic families ignore rng (and
// convert bad-parameter panics to errors).
func (p ParsedSpec) Build(rng *xrand.RNG) (*Graph, error) {
	fam, ok := specFamilies[p.Family]
	if !ok {
		return nil, fmt.Errorf("graph: unknown family %q (see the ParseSpec grammar)", p.Family)
	}
	if fam.seeded != nil {
		return fam.seeded(p, rng.Uint64())
	}
	return fam.build(p, rng)
}

// BuildSeeded constructs the graph from an explicit sampler seed. For
// random families it is the canonical entry point of the replayable
// edge-stream samplers: the same (spec, seed) always yields a
// byte-identical CSR, which is what lets realizations be memoized and
// disk-spilled under SeededKey(p.Canonical(), seed). Deterministic
// families ignore the seed and build normally.
func (p ParsedSpec) BuildSeeded(seed uint64) (*Graph, error) {
	fam, ok := specFamilies[p.Family]
	if !ok {
		return nil, fmt.Errorf("graph: unknown family %q (see the ParseSpec grammar)", p.Family)
	}
	if fam.seeded != nil {
		return fam.seeded(p, seed)
	}
	return fam.build(p, nil)
}

// CanonicalSpec parses spec and returns its canonical form.
func CanonicalSpec(spec string) (string, error) {
	p, err := ParseSpec(spec)
	if err != nil {
		return "", err
	}
	return p.Canonical(), nil
}

// FromSpec builds a graph from a compact textual description (see the
// grammar above): ParseSpec followed by Build. Random families consume
// randomness from rng.
func FromSpec(spec string, rng *xrand.RNG) (*Graph, error) {
	p, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return p.Build(rng)
}

// SpecFamilies lists the family usages FromSpec accepts, for CLI usage
// text.
func SpecFamilies() []string {
	out := make([]string, len(specOrder))
	for i, name := range specOrder {
		out[i] = specFamilies[name].usage
	}
	return out
}
