package graph

// BFS returns the array of BFS distances from src; unreachable vertices get
// distance -1.
func BFS(g *Graph, src Vertex) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]Vertex, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered connected.
func IsConnected(g *Graph) bool {
	if g.N() == 0 {
		return true
	}
	for _, d := range BFS(g, 0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the number of connected components and a component id
// per vertex.
func Components(g *Graph) (int, []int32) {
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	count := int32(0)
	queue := make([]Vertex, 0)
	for s := 0; s < g.N(); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], Vertex(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(u) {
				if comp[w] < 0 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return int(count), comp
}

// IsBipartite reports whether the graph is bipartite (2-colorable). The
// agent protocols use this to decide whether lazy walks are required for
// meet-exchange to terminate (Section 3 of the paper).
func IsBipartite(g *Graph) bool {
	color := make([]int8, g.N())
	queue := make([]Vertex, 0)
	for s := 0; s < g.N(); s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue = append(queue[:0], Vertex(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(u) {
				switch color[w] {
				case 0:
					color[w] = -color[u]
					queue = append(queue, w)
				case color[u]:
					return false
				}
			}
		}
	}
	return true
}

// Eccentricity returns the largest BFS distance from v; -1 if the graph is
// disconnected from v.
func Eccentricity(g *Graph, v Vertex) int {
	ecc := 0
	for _, d := range BFS(g, v) {
		if d < 0 {
			return -1
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// Diameter returns the exact diameter via all-pairs BFS. O(n·m); intended
// for the laptop-scale graphs in this repository's tests and experiments.
// Returns -1 for disconnected graphs.
func Diameter(g *Graph) int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		e := Eccentricity(g, Vertex(v))
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterEstimate returns a fast lower bound on the diameter using the
// classic double-sweep heuristic (exact on trees). Returns -1 for
// disconnected graphs.
func DiameterEstimate(g *Graph) int {
	if g.N() == 0 {
		return 0
	}
	dist := BFS(g, 0)
	far := Vertex(0)
	for v, d := range dist {
		if d < 0 {
			return -1
		}
		if d > dist[far] {
			far = Vertex(v)
		}
	}
	return Eccentricity(g, far)
}

// DegreeHistogram returns a map degree -> count of vertices.
func DegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		h[g.Degree(Vertex(v))]++
	}
	return h
}

// GiantComponent extracts the largest connected component as a new graph
// with vertices renumbered densely. The second return value maps new vertex
// ids back to ids in the original graph. Random-graph models such as
// Chung-Lu and G(n,p) can produce isolated vertices; broadcast experiments
// run on the giant component.
func GiantComponent(g *Graph) (*Graph, []Vertex) {
	count, comp := Components(g)
	if count == 0 {
		return g, nil
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	oldToNew := make([]Vertex, g.N())
	newToOld := make([]Vertex, 0, sizes[best])
	for v := 0; v < g.N(); v++ {
		if comp[v] == int32(best) {
			oldToNew[v] = Vertex(len(newToOld))
			newToOld = append(newToOld, Vertex(v))
		} else {
			oldToNew[v] = -1
		}
	}
	b := NewBuilder(len(newToOld), g.name+"-giant")
	for _, old := range newToOld {
		for _, w := range g.Neighbors(old) {
			if old < w && oldToNew[w] >= 0 {
				if err := b.AddEdge(oldToNew[old], oldToNew[w]); err != nil {
					panic(err) // cannot happen: subgraph of a simple graph
				}
			}
		}
	}
	return b.mustBuild(), newToOld
}
