package graph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Store observability: package-level atomics with an accessor, so the
// serving layer can register them as func-backed metrics without this
// package depending on a metrics registry.
var (
	storeOpens  atomic.Int64 // spilled CSR files reopened mmap-backed
	storeBuilds atomic.Int64 // graphs built because no valid file existed
	storeSpills atomic.Int64 // built graphs encoded to disk
)

// StoreStats reports the lifetime counters of every Store in the
// process: mmap-backed opens of spilled files, builds invoked on store
// misses, and successful spill writes.
func StoreStats() (opens, builds, spills int64) {
	return storeOpens.Load(), storeBuilds.Load(), storeSpills.Load()
}

// Store is a content-addressed on-disk tier for graphs.
//
// Deterministic families are pure functions of their canonical spec
// string, so the spec is the identity: a graph is encoded once into
// <dir>/<sha256(spec)>.csr and every later request — in this process or
// the next — reopens the file read-only via mmap instead of rebuilding.
// Random families are pure functions of (canonical spec, sampler seed,
// sampler version) — the replayable edge-stream samplers guarantee it —
// so their realizations spill under SeededKey, which bakes all three
// into the key: distinct seeds get distinct files, and a sampler
// algorithm change (a RandomSamplerVersion bump) can never be served a
// stale realization from an older generation.
// Hashing the key keeps hostile or merely awkward spec strings (slashes,
// dots, multi-kilobyte params) from steering the path, the same defense
// the serve layer's spill tier applies to result IDs.
//
// Only graphs at or above the spill threshold go to disk: small graphs
// rebuild in microseconds and would pay the encode round-trip for
// nothing, while a giant graph's CSR moves off the Go heap entirely —
// the mmap'd pages are file cache the kernel reclaims under pressure.
// Writes are atomic (temp file + rename), so concurrent builders of the
// same graph race benignly: both write identical bytes, one rename wins,
// and a crash mid-write leaves only a temp file that is swept on reuse.
type Store struct {
	dir       string
	threshold int64
}

// NewStore opens (creating if needed) a graph store rooted at dir.
// Graphs whose CSR is at least thresholdBytes spill to disk; smaller
// graphs stay heap-resident. thresholdBytes <= 0 disables spilling (the
// store still opens previously spilled files).
func NewStore(dir string, thresholdBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("graph: store dir: %w", err)
	}
	return &Store{dir: dir, threshold: thresholdBytes}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Threshold returns the spill threshold in bytes (<= 0: spilling off).
func (s *Store) Threshold() int64 { return s.threshold }

// Path returns the content-addressed file path for a canonical spec key.
func (s *Store) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".csr")
}

// shouldSpill reports whether a built graph belongs on disk.
func (s *Store) shouldSpill(g *Graph) bool {
	return s.threshold > 0 && g.CSRBytes() >= s.threshold
}

// GetOrBuild returns the graph identified by key. A valid spilled file is
// reopened mmap-backed without invoking build; otherwise the graph is
// built, and if it crosses the spill threshold it is encoded to disk and
// reopened from the mapping so the heap copy can be collected. Disk
// failures (full volume, torn file, revoked permissions) degrade to the
// in-memory graph — the store is an optimization tier, never a
// correctness dependency.
func (s *Store) GetOrBuild(key string, build func() (*Graph, error)) (*Graph, error) {
	path := s.Path(key)
	if g, err := OpenCSRFile(path); err == nil {
		storeOpens.Add(1)
		return g, nil
	} else if !os.IsNotExist(err) {
		// A file exists but didn't decode (torn write from a crash,
		// format revision): drop it and rebuild below.
		os.Remove(path)
	}
	g, err := build()
	if err != nil {
		return nil, err
	}
	storeBuilds.Add(1)
	if !s.shouldSpill(g) {
		return g, nil
	}
	if err := WriteCSRFile(g, path); err != nil {
		return g, nil
	}
	storeSpills.Add(1)
	if m, err := OpenCSRFile(path); err == nil {
		storeOpens.Add(1)
		return m, nil
	}
	return g, nil
}
