//go:build linux || darwin

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is a read-only memory mapping of an encoded CSR file. The
// Graph whose arrays alias it keeps a pointer; a runtime cleanup unmaps
// the region once the Graph is unreachable, so no reader can outlive the
// mapping. On platforms without mmap the fallback loads the file onto the
// heap behind the same type (see mmap_other.go).
type mapping struct {
	data []byte
	heap bool // heap-loaded fallback: nothing to unmap
}

// mapFile maps path read-only. The returned mapping's pages are file
// cache: the kernel reclaims them under pressure and faults them back on
// access, which is what lets a graph far beyond RAM be swept at all.
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size == 0 {
		return &mapping{heap: true}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("graph: %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	return &mapping{data: data}, nil
}

// close unmaps the region. Called by the Graph cleanup only after the
// Graph (and so every alias of the arrays) is unreachable.
func (m *mapping) close() {
	if m.heap || m.data == nil {
		return
	}
	syscall.Munmap(m.data)
	m.data = nil
}

// mapScratch returns size bytes of zeroed read-write memory backed by an
// unlinked temp file rather than the Go heap. Random-graph samplers keep
// their auxiliary state (stub arrays, preferential-attachment targets) in
// such buffers so a giant build's peak *heap* stays at the final CSR: the
// scratch pages are file cache the kernel can write back and reclaim
// under pressure, and the unlink ties their lifetime to the mapping. The
// caller must close() the mapping when done.
func mapScratch(size int) (*mapping, error) {
	if size == 0 {
		return &mapping{heap: true}, nil
	}
	f, err := os.CreateTemp("", "rumor-scratch-*")
	if err != nil {
		return nil, fmt.Errorf("graph: scratch temp file: %w", err)
	}
	defer f.Close()
	os.Remove(f.Name()) // unlinked: the pages die with the mapping
	if err := f.Truncate(int64(size)); err != nil {
		return nil, fmt.Errorf("graph: scratch truncate: %w", err)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: scratch mmap: %w", err)
	}
	return &mapping{data: data}, nil
}
