//go:build linux || darwin

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is a read-only memory mapping of an encoded CSR file. The
// Graph whose arrays alias it keeps a pointer; a runtime cleanup unmaps
// the region once the Graph is unreachable, so no reader can outlive the
// mapping. On platforms without mmap the fallback loads the file onto the
// heap behind the same type (see mmap_other.go).
type mapping struct {
	data []byte
	heap bool // heap-loaded fallback: nothing to unmap
}

// mapFile maps path read-only. The returned mapping's pages are file
// cache: the kernel reclaims them under pressure and faults them back on
// access, which is what lets a graph far beyond RAM be swept at all.
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size == 0 {
		return &mapping{heap: true}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("graph: %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	return &mapping{data: data}, nil
}

// close unmaps the region. Called by the Graph cleanup only after the
// Graph (and so every alias of the arrays) is unreachable.
func (m *mapping) close() {
	if m.heap || m.data == nil {
		return
	}
	syscall.Munmap(m.data)
	m.data = nil
}
