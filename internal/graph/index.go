package graph

import (
	"math/bits"

	"rumor/internal/xrand"
)

// Hot-path sampling caches.
//
// Random-walk stepping and stationary placement are the innermost loops of
// the agent protocols: every agent, every round, resolves its current
// vertex to a (neighbor-list base, degree) pair and draws one neighbor.
// The caches below are built lazily, once per graph, and shared read-only
// by every concurrent trial.

// Walk-index packing: one uint64 per vertex holding everything a neighbor
// draw needs in a single random-access load.
//
//	bits 32..63  base: index of the vertex's first neighbor in Neighbors()
//	bits  1..31  degree-1 (power-of-two degree) or degree (otherwise)
//	bit   0      1 if the degree is a power of two
//
// For power-of-two degrees the stored value is directly the AND-mask for
// the draw, so `u & mask` replaces the multiply-shift reduction; degree 1
// stores mask 0 and needs no random bits at all.
const (
	walkBaseShift = 32
	walkPow2Bit   = 1
)

// walkIndexMaxBytes caps the packed walk index's heap footprint at 8 bytes
// per vertex: graphs beyond 2^25 vertices (a 256 MiB index) skip it and
// sample through the CSR slices instead. Giant graphs are exactly the ones
// the mmap tier keeps off the heap, so pinning an O(N) heap index for them
// would defeat the out-of-core budget; the fallback consumes identical
// draws, so the cap never changes results — only per-draw cost.
const walkIndexMaxBytes = 1 << 28

// walkIndexEligible reports whether WalkIndex will (or did) build an
// index for this graph. It is a pure function of the graph's shape, so
// memory-cost estimates can charge the index before it is lazily built.
func (g *Graph) walkIndexEligible() bool {
	n := g.N()
	return n > 0 && int64(len(g.neighbors)) < 1<<32 && int64(n)*8 <= walkIndexMaxBytes
}

// WalkIndex returns the packed per-vertex sampling index, building it on
// first use. It returns nil when the graph is too large to pack (2M >=
// 2^32 neighbor slots, or the index would exceed walkIndexMaxBytes);
// callers fall back to the offsets-based path, which consumes identical
// draws and applies the same reduction (xrand.ReduceDeg mirrors the
// mask/multiply-shift split), so results do not depend on which path ran.
func (g *Graph) WalkIndex() []uint64 {
	g.walkOnce.Do(func() {
		if !g.walkIndexEligible() {
			return
		}
		idx := make([]uint64, g.N())
		for v := 0; v < g.N(); v++ {
			lo, hi := g.off.span(Vertex(v))
			base := uint64(lo) << walkBaseShift
			deg := uint64(hi - lo)
			if deg > 0 && deg&(deg-1) == 0 {
				idx[v] = base | (deg-1)<<1 | walkPow2Bit
				g.walkHasPow2 = true
			} else {
				idx[v] = base | deg<<1
				if deg > 0 {
					g.walkHasMul = true
				}
			}
		}
		g.walkIdx = idx
	})
	return g.walkIdx
}

// WalkTarget resolves one neighbor draw against a packed walk-index word:
// it maps the 64-bit draw u onto [0, deg) — an AND for power-of-two
// degrees, a multiply-shift reduction otherwise — and returns that
// neighbor. The caller must ensure the vertex has positive degree.
func WalkTarget(word uint64, u uint64, neighbors []Vertex) Vertex {
	base := word >> walkBaseShift
	dp := uint32(word)
	var i uint64
	if dp&walkPow2Bit != 0 {
		i = u & uint64(dp>>1)
	} else {
		i = uint64(xrand.ReduceN(u, int(dp>>1)))
	}
	return neighbors[base+i]
}

// WalkTarget32 resolves one neighbor draw from only 32 random bits: the
// AND-mask for power-of-two degrees, a 32-bit multiply-shift reduction
// otherwise (bias at most deg/2^32 — invisible at simulation scale). Lazy
// walks use it to fund the stay coin and the neighbor index from a single
// 64-bit draw: the coin takes the top bit, the index the low word, and the
// two never overlap.
func WalkTarget32(word uint64, u uint32, neighbors []Vertex) Vertex {
	base := word >> walkBaseShift
	dp := uint32(word)
	var i uint64
	if dp&walkPow2Bit != 0 {
		i = uint64(u & (dp >> 1))
	} else {
		i = uint64(u) * uint64(dp>>1) >> 32
	}
	return neighbors[base+i]
}

// WalkTargetAny resolves one neighbor draw for any positive-degree vertex
// without a degree-1 fast path: degree 1 is a power of two with mask 0, so
// the AND branch already returns the single neighbor. Both reduction
// results are computed and the power-of-two flag selects one, which the
// compiler turns into a conditional move — no branch to mispredict. The
// batched multi-trial stepper uses this: on mixed-degree families (star,
// double star) the degree-1 branch of the serial loop is taken
// near-randomly per agent, and the mispredictions cost more than the spare
// multiply. Draw-for-draw it returns exactly what the
// WalkDegreeOne/WalkTarget split returns for the same (word, u).
func WalkTargetAny(word, u uint64, neighbors []Vertex) Vertex {
	dp := uint32(word)
	d := uint64(dp >> 1) // AND-mask (pow2) or degree (otherwise)
	hi, _ := bits.Mul64(u, d)
	// sel is all-ones when the degree is not a power of two, zero when it
	// is; arithmetic selection rather than an if so the compiler cannot
	// reintroduce a data-dependent branch.
	sel := uint64(dp&walkPow2Bit) - 1
	i := (hi & sel) | (u & d &^ sel)
	return neighbors[word>>walkBaseShift+i]
}

// WalkTarget32Any is WalkTargetAny for the 32-bit lazy-walk draw scheme,
// consuming only the low 32 bits of the draw exactly as WalkTarget32 does.
func WalkTarget32Any(word uint64, u uint32, neighbors []Vertex) Vertex {
	dp := uint32(word)
	d := dp >> 1
	ms := uint64(u) * uint64(d) >> 32
	sel := uint64(dp&walkPow2Bit) - 1
	i := (ms & sel) | (uint64(u&d) &^ sel)
	return neighbors[word>>walkBaseShift+i]
}

// WalkDegreeMix reports which reduction classes the packed walk index
// holds across positive-degree vertices: AND-mask (power-of-two degrees,
// including degree 1) and multiply-shift (all other degrees). Uniform
// graphs (hypercube, random regular) have exactly one class, so steppers
// can run a class-specialized loop whose reduction branch vanishes; mixed
// graphs (star, trees) are the ones where the per-vertex class branch is
// data-dependent and a branchless select (WalkTargetAny) wins. Builds the
// index as a side effect; both values are false when the graph is too
// large to pack.
func (g *Graph) WalkDegreeMix() (hasPow2, hasMul bool) {
	if g.WalkIndex() == nil {
		return false, false
	}
	return g.walkHasPow2, g.walkHasMul
}

// WalkTargetPow2 resolves a draw for a vertex known to have a power-of-two
// degree: a single AND against the stored mask (degree 1 has mask 0).
func WalkTargetPow2(word, u uint64, neighbors []Vertex) Vertex {
	return neighbors[word>>walkBaseShift+(u&uint64(uint32(word)>>1))]
}

// WalkTargetMul resolves a draw for a vertex known to have a
// non-power-of-two degree: one multiply-shift reduction.
func WalkTargetMul(word, u uint64, neighbors []Vertex) Vertex {
	hi, _ := bits.Mul64(u, uint64(uint32(word)>>1))
	return neighbors[word>>walkBaseShift+hi]
}

// WalkTarget32Pow2 is WalkTargetPow2 on the 32-bit lazy-walk draw scheme.
func WalkTarget32Pow2(word uint64, u uint32, neighbors []Vertex) Vertex {
	return neighbors[word>>walkBaseShift+uint64(u&(uint32(word)>>1))]
}

// WalkTarget32Mul is WalkTargetMul on the 32-bit lazy-walk draw scheme.
func WalkTarget32Mul(word uint64, u uint32, neighbors []Vertex) Vertex {
	return neighbors[word>>walkBaseShift+uint64(u)*uint64(uint32(word)>>1)>>32]
}

// WalkDegreeOne reports whether a packed walk-index word denotes a
// degree-1 vertex, whose single neighbor needs no randomness.
func WalkDegreeOne(word uint64) bool {
	// Degree 1 is a power of two with mask 0: dp == walkPow2Bit.
	return uint32(word) == walkPow2Bit
}

// WalkDegreeZero reports whether a packed walk-index word denotes an
// isolated vertex. Callers that draw for every vertex (push-pull, hybrid)
// must skip such vertices — WalkTarget on an isolated vertex would read a
// neighbor belonging to the next vertex. Walk systems never place agents
// on isolated vertices, so the agent stepping loops need no check.
func WalkDegreeZero(word uint64) bool { return uint32(word) == 0 }

// WalkOnlyNeighbor returns the single neighbor of a degree-1 vertex's
// packed word.
func WalkOnlyNeighbor(word uint64, neighbors []Vertex) Vertex {
	return neighbors[word>>walkBaseShift]
}

// NeighborsRaw exposes the full CSR neighbor array for use with WalkIndex
// words. The slice aliases graph storage and must not be modified.
func (g *Graph) NeighborsRaw() []Vertex { return g.neighbors }

// StationaryAlias returns an alias table over the stationary distribution
// deg(v)/2|E| of a random walk, building it on first use. Sampling it is
// O(1) per draw, replacing the O(log n) binary search over CSR offsets
// that EndpointOwner performs. Returns nil for edgeless graphs.
func (g *Graph) StationaryAlias() *xrand.Alias {
	g.aliasOnce.Do(func() {
		if len(g.neighbors) == 0 {
			return
		}
		weights := make([]float64, g.N())
		for v := 0; v < g.N(); v++ {
			weights[v] = float64(g.Degree(Vertex(v)))
		}
		a, err := xrand.NewAlias(weights)
		if err != nil {
			// Unreachable: at least one neighbor slot exists, so at
			// least one weight is positive.
			panic(err)
		}
		g.alias = a
	})
	return g.alias
}
