package graph

import (
	"bytes"
	"fmt"
	"testing"
)

// buildLegacy replays a StreamSpec's edges through the slice-of-slices
// Builder, the construction path the streaming builder replaced. The
// property tests pin the two paths byte-identical.
func buildLegacy(t testing.TB, s StreamSpec) *Graph {
	t.Helper()
	b := NewBuilder(s.N, s.Name)
	var emitErr error
	s.Emit(func(u, v Vertex) {
		if err := b.AddEdge(u, v); err != nil && emitErr == nil {
			emitErr = err
		}
	})
	if emitErr != nil {
		t.Fatalf("legacy build: %v", emitErr)
	}
	for name, v := range s.Landmarks {
		b.SetLandmark(name, v)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("legacy build: %v", err)
	}
	return g
}

func encodeCSRBytes(t testing.TB, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.EncodeCSR(&buf); err != nil {
		t.Fatalf("EncodeCSR: %v", err)
	}
	return buf.Bytes()
}

// deterministicSpecs enumerates every deterministic family at a few
// parameter points, including shapes that stress each emitter: minimum
// sizes, power-of-two boundaries, and asymmetric grids.
func deterministicSpecs() []StreamSpec {
	return []StreamSpec{
		starSpec(1), starSpec(2), starSpec(100),
		doubleStarSpec(1), doubleStarSpec(17),
		heavyBinaryTreeSpec(2), heavyBinaryTreeSpec(5),
		siameseHeavyTreeSpec(2), siameseHeavyTreeSpec(5),
		cycleStarsCliquesSpec(3), cycleStarsCliquesSpec(5),
		completeSpec(2), completeSpec(9),
		cycleSpec(3), cycleSpec(10),
		pathSpec(2), pathSpec(11),
		binaryTreeSpec(1), binaryTreeSpec(6),
		hypercubeSpec(1), hypercubeSpec(6),
		torus2DSpec(3, 3), torus2DSpec(4, 7),
		grid2DSpec(1, 2), grid2DSpec(5, 3),
		ringOfCliquesSpec(3, 2), ringOfCliquesSpec(5, 4),
		cliquePathSpec(2, 2), cliquePathSpec(6, 5),
	}
}

// TestStreamMatchesBuilderByteIdentical is the seam-pinning property:
// for every deterministic family, the streaming two-pass builder and the
// legacy Builder produce graphs whose binary CSR encodings are
// byte-for-byte equal, so switching the generators over cannot have
// changed a single offset, neighbor, landmark, or name anywhere.
func TestStreamMatchesBuilderByteIdentical(t *testing.T) {
	for _, spec := range deterministicSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			streamed, err := BuildStream(spec)
			if err != nil {
				t.Fatalf("BuildStream: %v", err)
			}
			if err := streamed.Validate(); err != nil {
				t.Fatalf("streamed graph invalid: %v", err)
			}
			legacy := buildLegacy(t, spec)
			sb, lb := encodeCSRBytes(t, streamed), encodeCSRBytes(t, legacy)
			if !bytes.Equal(sb, lb) {
				t.Fatalf("streamed and legacy CSR encodings differ (%d vs %d bytes)", len(sb), len(lb))
			}
		})
	}
}

// TestStreamUnknownEdgeCount checks the count-only prepass: a spec that
// declares M=0 learns the edge count by replaying the emitter once.
func TestStreamUnknownEdgeCount(t *testing.T) {
	spec := completeSpec(7)
	spec.M = 0
	g, err := BuildStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 21 {
		t.Fatalf("M = %d, want 21", g.M())
	}
}

func TestStreamRejectsBadEdges(t *testing.T) {
	cases := []struct {
		name string
		spec StreamSpec
	}{
		{"self-loop", StreamSpec{N: 3, M: 1, Emit: func(emit func(u, v Vertex)) { emit(1, 1) }}},
		{"out-of-range", StreamSpec{N: 3, M: 1, Emit: func(emit func(u, v Vertex)) { emit(0, 3) }}},
		{"negative", StreamSpec{N: 3, M: 1, Emit: func(emit func(u, v Vertex)) { emit(-1, 0) }}},
		{"duplicate", StreamSpec{N: 3, M: 2, Emit: func(emit func(u, v Vertex)) { emit(0, 1); emit(1, 0) }}},
		{"undercount", StreamSpec{N: 3, M: 2, Emit: func(emit func(u, v Vertex)) { emit(0, 1) }}},
		{"overcount", StreamSpec{N: 3, M: 1, Emit: func(emit func(u, v Vertex)) { emit(0, 1); emit(0, 2) }}},
		{"negative-n", StreamSpec{N: -1, M: 0, Emit: func(emit func(u, v Vertex)) {}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := BuildStream(tc.spec); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

// TestStreamEmptyGraph covers the n=0 and edgeless corners the harness
// never generates but the builder must not crash on.
func TestStreamEmptyGraph(t *testing.T) {
	g, err := BuildStream(StreamSpec{N: 0, Name: "empty", Emit: func(emit func(u, v Vertex)) {}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.N(), g.M())
	}
	g, err = BuildStream(StreamSpec{N: 4, Name: "edgeless", Emit: func(emit func(u, v Vertex)) {}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("edgeless graph has n=%d m=%d", g.N(), g.M())
	}
}

// FuzzStreamVsBuilder drives the byte-identity property over fuzzer-chosen
// family parameters, so the equivalence is not just pinned at the
// hand-picked sizes in deterministicSpecs.
func FuzzStreamVsBuilder(f *testing.F) {
	f.Add(uint8(0), uint8(5), uint8(3))
	f.Add(uint8(1), uint8(4), uint8(2))
	f.Add(uint8(13), uint8(6), uint8(6))
	f.Fuzz(func(t *testing.T, family, a, b uint8) {
		var spec StreamSpec
		switch family % 14 {
		case 0:
			spec = starSpec(1 + int(a)%64)
		case 1:
			spec = doubleStarSpec(1 + int(a)%32)
		case 2:
			spec = heavyBinaryTreeSpec(2 + int(a)%5)
		case 3:
			spec = siameseHeavyTreeSpec(2 + int(a)%5)
		case 4:
			spec = cycleStarsCliquesSpec(3 + int(a)%4)
		case 5:
			spec = completeSpec(2 + int(a)%24)
		case 6:
			spec = cycleSpec(3 + int(a)%64)
		case 7:
			spec = pathSpec(2 + int(a)%64)
		case 8:
			spec = binaryTreeSpec(1 + int(a)%6)
		case 9:
			spec = hypercubeSpec(1 + int(a)%7)
		case 10:
			spec = torus2DSpec(3+int(a)%6, 3+int(b)%6)
		case 11:
			spec = grid2DSpec(1+int(a)%8, 2+int(b)%8)
		case 12:
			spec = ringOfCliquesSpec(3+int(a)%5, 2+int(b)%5)
		default:
			spec = cliquePathSpec(2+int(a)%5, 2+int(b)%5)
		}
		streamed, err := BuildStream(spec)
		if err != nil {
			t.Fatalf("BuildStream(%s): %v", spec.Name, err)
		}
		legacy := buildLegacy(t, spec)
		if !bytes.Equal(encodeCSRBytes(t, streamed), encodeCSRBytes(t, legacy)) {
			t.Fatalf("CSR encodings differ for %s", spec.Name)
		}
	})
}

// TestStreamPeakAllocations spot-checks the headline claim: building via
// the stream spec allocates no per-vertex adjacency slices, so total
// allocated bytes stay within a small factor of the final CSR, where the
// legacy Builder's slice-of-slices roughly doubles it.
func TestStreamPeakAllocations(t *testing.T) {
	const leaves = 1 << 16
	spec := starSpec(leaves)
	streamedBytes := testing.AllocsPerRun(1, func() {
		g, err := BuildStream(spec)
		if err != nil {
			t.Error(err)
		}
		_ = g
	})
	// AllocsPerRun counts allocations, not bytes: the streaming path does
	// O(1) allocations (offsets, neighbors, landmark map internals), the
	// legacy path at least one per vertex.
	if streamedBytes > 64 {
		t.Fatalf("streaming build of star(%d) did %v allocations, want O(1)", leaves, streamedBytes)
	}
}

func ExampleBuildStream() {
	g, err := BuildStream(StreamSpec{
		N:    4,
		M:    3,
		Name: "claw",
		Emit: func(emit func(u, v Vertex)) {
			emit(0, 1)
			emit(0, 2)
			emit(0, 3)
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(g.N(), g.M(), g.Degree(0))
	// Output: 4 3 3
}
