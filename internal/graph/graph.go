// Package graph provides the immutable graph substrate for the rumor
// spreading simulator: a compact CSR (compressed sparse row) representation,
// generators for every graph family used in the paper (star, double star,
// heavy binary tree, Siamese heavy binary tree, cycle-of-stars-of-cliques,
// regular families), and the graph algorithms the experiment harness needs
// (BFS, connectivity, bipartiteness, diameter, degree statistics).
//
// Graphs are simple (no self-loops, no parallel edges), undirected, and
// immutable after construction. Vertices are dense integers [0, N()).
package graph

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"rumor/internal/xrand"
)

// Vertex identifies a vertex. Vertices are dense in [0, N()).
type Vertex = int32

// Graph is an immutable simple undirected graph in CSR form.
//
// The neighbor lists are sorted, which makes duplicate detection, equality
// checks, and binary-search membership tests cheap.
type Graph struct {
	off       offsetStore // len N()+1; neighbors of v are neighbors[off.at(v):off.at(v+1)]
	neighbors []Vertex
	name      string
	landmarks map[string]Vertex
	backing   *mapping // non-nil when the CSR arrays alias an mmap'd file

	// Lazily built, immutable-once-built caches for the simulation hot
	// path (see index.go). Graphs are shared read-only across parallel
	// trials, so these amortize to one build per graph, not per trial.
	walkOnce sync.Once
	walkIdx  []uint64
	// walkHasPow2/walkHasMul record, during the WalkIndex build, whether
	// any positive-degree vertex uses the AND-mask (power-of-two degree)
	// or the multiply-shift reduction; the batched stepper picks a
	// specialized inner loop from them (see WalkDegreeMix).
	walkHasPow2 bool
	walkHasMul  bool
	aliasOnce   sync.Once
	alias       *xrand.Alias
	posDegOnce  sync.Once
	posDegCount int
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.off.len() - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.neighbors) / 2 }

// Name returns the human-readable name the generator gave this graph.
func (g *Graph) Name() string { return g.name }

// Degree returns the degree of v.
func (g *Graph) Degree(v Vertex) int {
	lo, hi := g.off.span(v)
	return hi - lo
}

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	lo, hi := g.off.span(v)
	return g.neighbors[lo:hi]
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v Vertex) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// EndpointCount returns the total number of (vertex, incident-edge) slots,
// i.e. 2*M(). A uniform index into [0, EndpointCount()) mapped through
// EndpointOwner samples a vertex exactly according to the stationary
// distribution deg(v)/2|E| of a random walk.
func (g *Graph) EndpointCount() int { return len(g.neighbors) }

// EndpointOwner returns the vertex that owns position i of the CSR neighbor
// array. Because vertex v owns exactly deg(v) positions, a uniform i yields
// a stationary-distributed vertex.
func (g *Graph) EndpointOwner(i int) Vertex {
	// Find the largest v with offsets[v] <= i, i.e. offsets[v+1] > i.
	v := sort.Search(g.N(), func(v int) bool { return g.off.at(v+1) > int64(i) })
	return Vertex(v)
}

// Landmark returns a named vertex recorded by the generator (for example
// "center" on a star, "root" or "leaf" on a heavy binary tree), so that
// experiments can pick the source vertices the paper's lemmas require.
func (g *Graph) Landmark(name string) (Vertex, bool) {
	v, ok := g.landmarks[name]
	return v, ok
}

// LandmarkNames returns the sorted list of landmark names.
func (g *Graph) LandmarkNames() []string {
	names := make([]string, 0, len(g.landmarks))
	for k := range g.landmarks {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// MinDegree returns the smallest vertex degree. It is 0 only for graphs with
// isolated vertices, which the builders reject for connected families.
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	m := g.Degree(0)
	for v := 1; v < g.N(); v++ {
		if d := g.Degree(Vertex(v)); d < m {
			m = d
		}
	}
	return m
}

// PositiveDegreeCount returns the number of non-isolated vertices,
// computed once per graph: the exchange protocols charge one message per
// such vertex per round, so per-trial constructors must not re-scan the
// shared immutable graph.
func (g *Graph) PositiveDegreeCount() int {
	g.posDegOnce.Do(func() {
		for v := 0; v < g.N(); v++ {
			if g.Degree(Vertex(v)) > 0 {
				g.posDegCount++
			}
		}
	})
	return g.posDegCount
}

// MaxDegree returns the largest vertex degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(Vertex(v)); d > m {
			m = d
		}
	}
	return m
}

// AvgDegree returns the average degree 2M/N.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(len(g.neighbors)) / float64(g.N())
}

// IsRegular reports whether every vertex has the same degree, and that degree.
func (g *Graph) IsRegular() (bool, int) {
	if g.N() == 0 {
		return true, 0
	}
	d := g.Degree(0)
	for v := 1; v < g.N(); v++ {
		if g.Degree(Vertex(v)) != d {
			return false, 0
		}
	}
	return true, d
}

// Validate checks CSR structural invariants: monotone offsets, neighbor ids
// in range, sorted neighbor lists, no self-loops, no duplicate edges, and
// symmetric adjacency. Generators are trusted, but Validate is cheap enough
// to run in tests on every family.
func (g *Graph) Validate() error {
	n := g.N()
	if int64(len(g.neighbors)) != g.off.at(n) {
		return fmt.Errorf("graph: offsets end %d != len(neighbors) %d", g.off.at(n), len(g.neighbors))
	}
	for v := 0; v < n; v++ {
		if g.off.at(v) > g.off.at(v+1) {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		nb := g.Neighbors(Vertex(v))
		for i, w := range nb {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: neighbor %d of %d out of range", w, v)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && nb[i-1] >= w {
				return fmt.Errorf("graph: neighbors of %d not strictly sorted at index %d", v, i)
			}
			if !g.HasEdge(w, Vertex(v)) {
				return fmt.Errorf("graph: edge %d->%d not symmetric", v, w)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n    int
	adj  [][]Vertex
	name string
	lmk  map[string]Vertex
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int, name string) *Builder {
	return &Builder{
		n:    n,
		adj:  make([][]Vertex, n),
		name: name,
	}
}

// AddEdge records the undirected edge {u, v}. Self-loops are rejected.
// Duplicate edges are rejected at Build time.
func (b *Builder) AddEdge(u, v Vertex) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
	return nil
}

// SetLandmark names a vertex for later retrieval via Graph.Landmark.
func (b *Builder) SetLandmark(name string, v Vertex) {
	if b.lmk == nil {
		b.lmk = make(map[string]Vertex)
	}
	b.lmk[name] = v
}

// Build finalizes the graph. It sorts adjacency lists and returns an error
// if any duplicate edge was added. The offset array comes out in the
// narrowest width the endpoint count allows (see offsetStore).
func (b *Builder) Build() (*Graph, error) {
	total := int64(0)
	for v, nb := range b.adj {
		slices.Sort(nb)
		for i := 1; i < len(nb); i++ {
			if nb[i] == nb[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", v, nb[i])
			}
		}
		total += int64(len(nb))
	}
	off := newOffsetStore(b.n, total)
	for v, nb := range b.adj {
		off.set(v+1, off.at(v)+int64(len(nb)))
	}
	neighbors := make([]Vertex, 0, total)
	for _, nb := range b.adj {
		neighbors = append(neighbors, nb...)
	}
	return &Graph{
		off:       off,
		neighbors: neighbors,
		name:      b.name,
		landmarks: b.lmk,
	}, nil
}

// mustBuild is used by generators whose construction cannot produce
// duplicate edges; a failure there is a programming error.
func (b *Builder) mustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
