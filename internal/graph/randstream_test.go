package graph

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"testing"

	"rumor/internal/xrand"
)

// seededCases enumerates one (spec-ish, build) closure per random family
// across a fuzzed parameter grid. Every successful build already proves
// the two-pass contract — BuildStream fails loudly if the pass-1 count
// and the pass-2 placement disagree — so the cases double as the
// count==placement suite.
type seededCase struct {
	name  string
	build func(seed uint64) (*Graph, error)
}

func seededCases() []seededCase {
	var cases []seededCase
	for _, p := range []struct {
		n int
		p float64
	}{{2, 0.5}, {50, 0}, {50, 1}, {64, 0.01}, {300, 0.05}, {1000, 0.003}, {70000, 0.00005}} {
		p := p
		cases = append(cases, seededCase{
			name:  fmt.Sprintf("gnp:%d,%g", p.n, p.p),
			build: func(seed uint64) (*Graph, error) { return ErdosRenyiSeeded(p.n, p.p, seed) },
		})
	}
	for _, p := range []struct{ n, d int }{{4, 3}, {30, 2}, {101, 4}, {300, 7}, {1024, 8}} {
		p := p
		cases = append(cases, seededCase{
			name:  fmt.Sprintf("randreg:%d,%d", p.n, p.d),
			build: func(seed uint64) (*Graph, error) { return RandomRegularSeeded(p.n, p.d, seed) },
		})
	}
	for _, p := range []struct{ n, m int }{{4, 1}, {50, 1}, {200, 3}, {500, 5}} {
		p := p
		cases = append(cases, seededCase{
			name:  fmt.Sprintf("barabasi:%d,%d", p.n, p.m),
			build: func(seed uint64) (*Graph, error) { return BarabasiAlbertSeeded(p.n, p.m, seed) },
		})
	}
	for _, p := range []struct {
		n    int
		beta float64
		avg  float64
	}{{16, 3, 2}, {300, 2.5, 6}, {1000, 2.2, 4}} {
		p := p
		cases = append(cases, seededCase{
			name:  fmt.Sprintf("chunglu:%d,%g,%g", p.n, p.beta, p.avg),
			build: func(seed uint64) (*Graph, error) { return ChungLuSeeded(p.n, p.beta, p.avg, seed) },
		})
	}
	return cases
}

// TestSeededSamplersReplayable pins the tentpole contract: the same
// (family, params, seed) yields a byte-identical CSR on every build —
// across repeated builds and across GOMAXPROCS settings — while distinct
// seeds yield distinct realizations (except where the distribution is a
// point mass, e.g. p = 0 or p = 1).
func TestSeededSamplersReplayable(t *testing.T) {
	for _, c := range seededCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			g1, err := c.build(42)
			if err != nil {
				t.Fatal(err)
			}
			if err := g1.Validate(); err != nil {
				t.Fatalf("invalid graph: %v", err)
			}
			b1 := encodeCSRBytes(t, g1)

			g2, err := c.build(42)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, encodeCSRBytes(t, g2)) {
				t.Fatal("same seed produced different CSR bytes")
			}

			prev := runtime.GOMAXPROCS(0)
			for _, procs := range []int{1, 8} {
				runtime.GOMAXPROCS(procs)
				g, err := c.build(42)
				runtime.GOMAXPROCS(prev)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(b1, encodeCSRBytes(t, g)) {
					t.Fatalf("GOMAXPROCS=%d produced different CSR bytes", procs)
				}
			}

			// Distinct-seed divergence is only a near-certainty away from
			// point masses (p = 0, p = 1) and away from tiny instances
			// whose realization space has a handful of members.
			if g1.N() >= 50 && g1.M() > 0 && float64(g1.M()) < 0.99*float64(g1.N())*float64(g1.N()-1)/2 {
				g3, err := c.build(43)
				if err != nil {
					t.Fatal(err)
				}
				if bytes.Equal(b1, encodeCSRBytes(t, g3)) {
					t.Fatal("distinct seeds produced identical realizations")
				}
			}
		})
	}
}

// TestRandomRegularSeededDegrees checks exact d-regularity and simplicity
// for the configuration-model sampler, and connectivity for the
// Connected variant.
func TestRandomRegularSeededDegrees(t *testing.T) {
	for _, p := range []struct{ n, d int }{{30, 2}, {101, 4}, {300, 7}, {1024, 8}} {
		g, err := RandomRegularSeeded(p.n, p.d, 7)
		if err != nil {
			t.Fatalf("randreg(%d,%d): %v", p.n, p.d, err)
		}
		for v := 0; v < g.N(); v++ {
			if got := g.Degree(Vertex(v)); got != p.d {
				t.Fatalf("randreg(%d,%d): degree(%d) = %d", p.n, p.d, v, got)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("randreg(%d,%d): %v", p.n, p.d, err)
		}
	}
	g, err := RandomRegularConnectedSeeded(200, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(g) {
		t.Fatal("RandomRegularConnectedSeeded returned a disconnected graph")
	}
	if !connectedLean(g) {
		t.Fatal("connectedLean disagrees with IsConnected on a connected graph")
	}
	if connectedLean(Star(3)) != IsConnected(Star(3)) {
		t.Fatal("connectedLean disagrees on star")
	}
}

// TestConnectedLeanMatchesIsConnected cross-checks the allocation-lean
// DFS against the reference implementation on graphs with and without
// isolated parts.
func TestConnectedLeanMatchesIsConnected(t *testing.T) {
	for _, c := range seededCases() {
		g, err := c.build(5)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := connectedLean(g), IsConnected(g); got != want {
			t.Fatalf("%s: connectedLean = %v, IsConnected = %v", c.name, got, want)
		}
	}
}

// TestBarabasiAlbertSeededShape checks the preferential-attachment
// invariants: edge count C(m+1,2) + (n-m-1)m, minimum degree >= m, and
// the hub landmark.
func TestBarabasiAlbertSeededShape(t *testing.T) {
	const n, m = 500, 5
	g, err := BarabasiAlbertSeeded(n, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := (m+1)*m/2 + (n-m-1)*m
	if g.M() != want {
		t.Fatalf("M = %d, want %d", g.M(), want)
	}
	if g.MinDegree() < m {
		t.Fatalf("min degree %d < m = %d", g.MinDegree(), m)
	}
	if _, ok := g.Landmark("hub"); !ok {
		t.Fatal("missing hub landmark")
	}
}

// TestSeededSamplerErrors pins parameter validation.
func TestSeededSamplerErrors(t *testing.T) {
	if _, err := RandomRegularSeeded(5, 3, 1); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := RandomRegularSeeded(4, 0, 1); err == nil {
		t.Error("d = 0 accepted")
	}
	if _, err := RandomRegularSeeded(4, 4, 1); err == nil {
		t.Error("d >= n accepted")
	}
	if _, err := ErdosRenyiSeeded(0, 0.5, 1); err == nil {
		t.Error("n < 1 accepted")
	}
	if _, err := ErdosRenyiSeeded(10, -0.1, 1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := ErdosRenyiSeeded(10, 1.5, 1); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := BarabasiAlbertSeeded(3, 2, 1); err == nil {
		t.Error("n < m+2 accepted")
	}
	if _, err := BarabasiAlbertSeeded(10, 0, 1); err == nil {
		t.Error("m = 0 accepted")
	}
	if _, err := ChungLuSeeded(1, 2.5, 1, 1); err == nil {
		t.Error("n < 2 accepted")
	}
	if _, err := ChungLuSeeded(10, 2, 2, 1); err == nil {
		t.Error("beta <= 2 accepted")
	}
	if _, err := ChungLuSeeded(10, 2.5, 0, 1); err == nil {
		t.Error("avgDeg = 0 accepted")
	}
}

// TestBuildSeededMatchesSpecRouting pins that ParsedSpec.BuildSeeded and
// ParsedSpec.Build(rng) route random families through the same seeded
// samplers: Build draws the sampler seed as rng.Uint64(), so BuildSeeded
// with that drawn seed must reproduce the realization bit for bit.
func TestBuildSeededMatchesSpecRouting(t *testing.T) {
	for _, spec := range []string{"gnp:120,0.06", "randreg:64,4", "barabasi:90,2", "chunglu:80,2.5,4"} {
		p, err := ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Random() {
			t.Fatalf("%s: expected random family", spec)
		}
		rng := xrand.New(99)
		g1, err := p.Build(rng)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := p.BuildSeeded(xrand.New(99).Uint64())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeCSRBytes(t, g1), encodeCSRBytes(t, g2)) {
			t.Fatalf("%s: Build(rng) and BuildSeeded(rng.Uint64()) diverge", spec)
		}
		// Deterministic families ignore the seed entirely.
		if _, err := mustParse(t, "star:8").BuildSeeded(123); err != nil {
			t.Fatal(err)
		}
	}
}

func mustParse(t *testing.T, spec string) ParsedSpec {
	t.Helper()
	p, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSeededKeyDistinctSpillFiles pins the disk-store identity: distinct
// sampler seeds spill to distinct content-addressed files, and the same
// seed re-resolves to the same file.
func TestSeededKeyDistinctSpillFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := mustParse(t, "randreg:64,4")
	keyA := SeededKey(p.Canonical(), 1)
	keyB := SeededKey(p.Canonical(), 2)
	if keyA == keyB {
		t.Fatal("distinct seeds produced identical keys")
	}
	if store.Path(keyA) == store.Path(keyB) {
		t.Fatal("distinct keys mapped to one spill file")
	}
	for _, k := range []struct {
		key  string
		seed uint64
	}{{keyA, 1}, {keyB, 2}} {
		g, err := store.GetOrBuild(k.key, func() (*Graph, error) { return p.BuildSeeded(k.seed) })
		if err != nil {
			t.Fatal(err)
		}
		if !g.MmapBacked() {
			t.Fatalf("seed %d: spilled graph not mmap-backed", k.seed)
		}
		if _, err := os.Stat(store.Path(k.key)); err != nil {
			t.Fatalf("seed %d: missing spill file: %v", k.seed, err)
		}
	}
	ga, err := store.GetOrBuild(keyA, func() (*Graph, error) {
		t.Fatal("rebuild despite existing spill file")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := p.BuildSeeded(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeCSRBytes(t, ga), encodeCSRBytes(t, direct)) {
		t.Fatal("spilled realization diverges from a fresh seeded build")
	}
}

// TestSeededKeyFormat pins the cache-key shape: canonical spec, seed, and
// sampler version all participate, so bumping RandomSamplerVersion
// invalidates every spilled random realization at once.
func TestSeededKeyFormat(t *testing.T) {
	got := SeededKey("randreg:64,4", 0xabc)
	want := fmt.Sprintf("randreg:64,4@seed=%016x;sampler=v%d", 0xabc, RandomSamplerVersion)
	if got != want {
		t.Fatalf("SeededKey = %q, want %q", got, want)
	}
}

// FuzzSeededGnpReplay fuzzes (n, p, seed) and asserts replayability plus
// the builder's structural invariants.
func FuzzSeededGnpReplay(f *testing.F) {
	f.Add(10, 0.3, uint64(1))
	f.Add(100, 0.01, uint64(7))
	f.Add(2, 1.0, uint64(0))
	f.Fuzz(func(t *testing.T, n int, p float64, seed uint64) {
		if n < 2 || n > 400 || p < 0 || p > 1 || p != p {
			t.Skip()
		}
		g1, err := ErdosRenyiSeeded(n, p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := g1.Validate(); err != nil {
			t.Fatal(err)
		}
		g2, err := ErdosRenyiSeeded(n, p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeCSRBytes(t, g1), encodeCSRBytes(t, g2)) {
			t.Fatal("replay diverged")
		}
	})
}
