package graph

import (
	"math"
	"testing"

	"rumor/internal/xrand"
)

func TestWalkIndexMatchesCSR(t *testing.T) {
	for _, g := range []*Graph{Star(17), Hypercube(6), Cycle(9), HeavyBinaryTree(5)} {
		idx := g.WalkIndex()
		if idx == nil {
			t.Fatalf("%s: WalkIndex nil", g.Name())
		}
		nbrs := g.NeighborsRaw()
		for v := 0; v < g.N(); v++ {
			word := idx[v]
			deg := g.Degree(Vertex(v))
			if WalkDegreeOne(word) != (deg == 1) {
				t.Fatalf("%s: vertex %d degree-1 flag wrong (deg %d)", g.Name(), v, deg)
			}
			// Every draw must land on a real neighbor of v.
			s := xrand.NewStream(1, uint64(v), 0)
			for k := 0; k < 32; k++ {
				to := WalkTarget(word, s.Uint64(), nbrs)
				if !g.HasEdge(Vertex(v), to) {
					t.Fatalf("%s: WalkTarget(%d) = %d, not a neighbor", g.Name(), v, to)
				}
			}
			if deg == 1 {
				if got, want := WalkOnlyNeighbor(word, nbrs), g.Neighbors(Vertex(v))[0]; got != want {
					t.Fatalf("%s: WalkOnlyNeighbor(%d) = %d, want %d", g.Name(), v, got, want)
				}
			}
		}
	}
}

// TestWalkTargetUniform: draws through the packed index must be uniform
// over the neighbor list, for both the mask path (power-of-two degree) and
// the reduction path.
func TestWalkTargetUniform(t *testing.T) {
	for _, tc := range []struct {
		g *Graph
		v Vertex
	}{
		{Hypercube(4), 0}, // degree 4: mask path
		{Star(6), 0},      // degree 6: reduction path
	} {
		idx := tc.g.WalkIndex()
		nbrs := tc.g.NeighborsRaw()
		deg := tc.g.Degree(tc.v)
		counts := make(map[Vertex]int, deg)
		s := xrand.NewStream(7, uint64(tc.v), 1)
		const trials = 20000
		for k := 0; k < trials; k++ {
			counts[WalkTarget(idx[tc.v], s.Uint64(), nbrs)]++
		}
		want := float64(trials) / float64(deg)
		for to, c := range counts {
			if math.Abs(float64(c)-want) > 0.1*want {
				t.Errorf("%s: neighbor %d drawn %d times, want about %.0f", tc.g.Name(), to, c, want)
			}
		}
		if len(counts) != deg {
			t.Errorf("%s: only %d of %d neighbors drawn", tc.g.Name(), len(counts), deg)
		}
	}
}

func TestStationaryAliasMatchesDegrees(t *testing.T) {
	g := Star(100) // center degree 100, leaves degree 1
	a := g.StationaryAlias()
	if a == nil {
		t.Fatal("StationaryAlias nil")
	}
	s := xrand.NewStream(3, 0, 0)
	const trials = 40000
	center := 0
	for k := 0; k < trials; k++ {
		if a.SampleStream(&s) == 0 {
			center++
		}
	}
	if got := float64(center) / trials; math.Abs(got-0.5) > 0.02 {
		t.Errorf("center sampled with frequency %.3f, want 0.5", got)
	}
}

func TestWalkIndexCachedOnce(t *testing.T) {
	g := Cycle(8)
	a := g.WalkIndex()
	b := g.WalkIndex()
	if &a[0] != &b[0] {
		t.Error("WalkIndex rebuilt instead of cached")
	}
	if g.StationaryAlias() != g.StationaryAlias() {
		t.Error("StationaryAlias rebuilt instead of cached")
	}
}

// TestWalkTargetAnyMatchesSplitPaths: the branchless resolvers must return
// exactly what the WalkDegreeOne/WalkTarget split returns for every degree
// class (1, power-of-two, general) and many draws, and the class-
// specialized variants must agree on their own classes.
func TestWalkTargetAnyMatchesSplitPaths(t *testing.T) {
	graphs := []*Graph{Star(9), Hypercube(4), HeavyBinaryTree(4), RingOfCliques(4, 5)}
	for _, g := range graphs {
		idx := g.WalkIndex()
		nbrs := g.NeighborsRaw()
		hasPow2, hasMul := g.WalkDegreeMix()
		for v := 0; v < g.N(); v++ {
			word := idx[v]
			if WalkDegreeZero(word) {
				continue
			}
			pow2 := uint32(word)&1 != 0
			if pow2 && !hasPow2 || !pow2 && !hasMul {
				t.Fatalf("%s: WalkDegreeMix inconsistent with vertex %d", g.Name(), v)
			}
			for draw := uint64(0); draw < 64; draw++ {
				u := draw * 0x9e3779b97f4a7c15
				var want Vertex
				if WalkDegreeOne(word) {
					want = WalkOnlyNeighbor(word, nbrs)
				} else {
					want = WalkTarget(word, u, nbrs)
				}
				if got := WalkTargetAny(word, u, nbrs); got != want {
					t.Fatalf("%s v=%d u=%#x: WalkTargetAny %d != %d", g.Name(), v, u, got, want)
				}
				if pow2 {
					if got := WalkTargetPow2(word, u, nbrs); got != want {
						t.Fatalf("%s v=%d: WalkTargetPow2 %d != %d", g.Name(), v, got, want)
					}
				} else {
					if got := WalkTargetMul(word, u, nbrs); got != want {
						t.Fatalf("%s v=%d: WalkTargetMul %d != %d", g.Name(), v, got, want)
					}
				}
				// 32-bit scheme against WalkTarget32.
				u32 := uint32(u)
				var want32 Vertex
				if WalkDegreeOne(word) {
					want32 = WalkOnlyNeighbor(word, nbrs)
				} else {
					want32 = WalkTarget32(word, u32, nbrs)
				}
				if got := WalkTarget32Any(word, u32, nbrs); got != want32 {
					t.Fatalf("%s v=%d: WalkTarget32Any %d != %d", g.Name(), v, got, want32)
				}
				if pow2 {
					if got := WalkTarget32Pow2(word, u32, nbrs); got != want32 {
						t.Fatalf("%s v=%d: WalkTarget32Pow2 %d != %d", g.Name(), v, got, want32)
					}
				} else {
					if got := WalkTarget32Mul(word, u32, nbrs); got != want32 {
						t.Fatalf("%s v=%d: WalkTarget32Mul %d != %d", g.Name(), v, got, want32)
					}
				}
			}
		}
	}
}

// TestWalkDegreeMixClasses pins the class summary on known families.
func TestWalkDegreeMixClasses(t *testing.T) {
	cases := []struct {
		g       *Graph
		hasPow2 bool
		hasMul  bool
	}{
		{Hypercube(4), true, false},        // uniform degree 4: pure pow2
		{Hypercube(5), false, true},        // uniform degree 5: pure multiply-shift
		{Star(9), true, true},              // leaves deg 1 (pow2), hub deg 9
		{RingOfCliques(4, 5), false, true}, // uniform degree 6
	}
	for _, c := range cases {
		p, m := c.g.WalkDegreeMix()
		if p != c.hasPow2 || m != c.hasMul {
			t.Errorf("%s: WalkDegreeMix = (%v,%v), want (%v,%v)", c.g.Name(), p, m, c.hasPow2, c.hasMul)
		}
	}
}
