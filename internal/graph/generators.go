package graph

import (
	"fmt"
	"math"

	"rumor/internal/xrand"
)

// The deterministic families below are defined as StreamSpecs — an edge
// count, an edge-emitting closure, and landmarks — and built by the
// two-pass streaming builder (see stream.go), so construction peaks at
// exactly the final CSR size. The xxxSpec functions are separate from the
// public constructors so tests can replay the same edge stream through
// the legacy Builder and pin byte-identical output.

// Star returns the star S_n of the paper's Fig. 1(a): one center connected
// to `leaves` leaves. Landmarks: "center", "leaf".
func Star(leaves int) *Graph {
	return mustBuildStream(starSpec(leaves))
}

func starSpec(leaves int) StreamSpec {
	if leaves < 1 {
		panic("graph: Star needs at least one leaf")
	}
	return StreamSpec{
		N:    leaves + 1,
		M:    int64(leaves),
		Name: fmt.Sprintf("star(%d)", leaves),
		Emit: func(emit func(u, v Vertex)) {
			for i := 1; i <= leaves; i++ {
				emit(0, Vertex(i))
			}
		},
		Landmarks: map[string]Vertex{"center": 0, "leaf": 1},
	}
}

// DoubleStar returns the double star S²_n of Fig. 1(b): two stars with
// `leavesPerStar` leaves each, whose centers are joined by an edge.
// Landmarks: "centerA", "centerB", "leafA", "leafB".
func DoubleStar(leavesPerStar int) *Graph {
	return mustBuildStream(doubleStarSpec(leavesPerStar))
}

func doubleStarSpec(leavesPerStar int) StreamSpec {
	if leavesPerStar < 1 {
		panic("graph: DoubleStar needs at least one leaf per star")
	}
	const a, c = 0, 1
	return StreamSpec{
		N:    2 + 2*leavesPerStar,
		M:    int64(1 + 2*leavesPerStar),
		Name: fmt.Sprintf("doublestar(%d)", leavesPerStar),
		Emit: func(emit func(u, v Vertex)) {
			emit(a, c)
			for i := 0; i < leavesPerStar; i++ {
				emit(a, Vertex(2+i))
				emit(c, Vertex(2+leavesPerStar+i))
			}
		},
		Landmarks: map[string]Vertex{
			"centerA": a, "centerB": c,
			"leafA": 2, "leafB": Vertex(2 + leavesPerStar),
		},
	}
}

// HeavyBinaryTree returns the heavy binary tree B_n of Fig. 1(c): a complete
// binary tree with `levels` levels (n = 2^levels − 1 vertices, heap
// numbering) whose 2^(levels−1) leaves are additionally connected into a
// clique. Landmarks: "root", "leaf".
func HeavyBinaryTree(levels int) *Graph {
	return mustBuildStream(heavyBinaryTreeSpec(levels))
}

func heavyBinaryTreeSpec(levels int) StreamSpec {
	if levels < 2 {
		panic("graph: HeavyBinaryTree needs at least 2 levels")
	}
	n := (1 << levels) - 1
	firstLeaf := (1 << (levels - 1)) - 1
	return StreamSpec{
		N:    n,
		M:    int64(n-1) + cliqueEdges(n-firstLeaf),
		Name: fmt.Sprintf("heavytree(%d)", levels),
		Emit: func(emit func(u, v Vertex)) {
			emitCompleteBinaryTree(emit, 0, n)
			emitClique(emit, firstLeaf, n)
		},
		Landmarks: map[string]Vertex{"root": 0, "leaf": Vertex(firstLeaf)},
	}
}

// SiameseHeavyTree returns the graph D_n of Fig. 1(d): two heavy binary
// trees sharing a single root vertex. Landmarks: "root", "leafA", "leafB".
func SiameseHeavyTree(levels int) *Graph {
	return mustBuildStream(siameseHeavyTreeSpec(levels))
}

func siameseHeavyTreeSpec(levels int) StreamSpec {
	if levels < 2 {
		panic("graph: SiameseHeavyTree needs at least 2 levels")
	}
	nA := (1 << levels) - 1 // vertices of tree A, heap numbered from 0
	n := 2*nA - 1           // tree B reuses vertex 0 as its root
	firstLeafA := (1 << (levels - 1)) - 1
	// Tree B's heap index i>0 maps to vertex nA-1+i; index 0 is vertex 0.
	mapB := func(i int) Vertex {
		if i == 0 {
			return 0
		}
		return Vertex(nA - 1 + i)
	}
	return StreamSpec{
		N:    n,
		M:    2 * (int64(nA-1) + cliqueEdges(nA-firstLeafA)),
		Name: fmt.Sprintf("siamesetree(%d)", levels),
		Emit: func(emit func(u, v Vertex)) {
			// Tree A occupies [0, nA) with heap numbering.
			emitCompleteBinaryTree(emit, 0, nA)
			emitClique(emit, firstLeafA, nA)
			for i := 1; i < nA; i++ {
				emit(mapB((i-1)/2), mapB(i))
			}
			// Tree B's leaves are contiguous under mapB, so its leaf
			// clique is a range clique over the mapped interval.
			emitClique(emit, int(mapB(firstLeafA)), int(mapB(nA-1))+1)
		},
		Landmarks: map[string]Vertex{
			"root": 0, "leafA": Vertex(firstLeafA), "leafB": mapB(firstLeafA),
		},
	}
}

// CycleStarsCliques returns the cycle-of-stars-of-cliques of Fig. 1(e) with
// parameter k (the paper's n^{1/3}): a k-cycle of centers c_i, each with k
// star leaves l_{i,j}, each leaf joined to a k-clique so that
// {l_{i,j}} ∪ Q_{i,j} induces a (k+1)-clique. Total n = k + k² + k³.
// Landmarks: "ring", "starLeaf", "cliqueVertex".
func CycleStarsCliques(k int) *Graph {
	return mustBuildStream(cycleStarsCliquesSpec(k))
}

func cycleStarsCliquesSpec(k int) StreamSpec {
	if k < 3 {
		panic("graph: CycleStarsCliques needs k >= 3")
	}
	n := k + k*k + k*k*k
	center := func(i int) Vertex { return Vertex(i) }
	leaf := func(i, j int) Vertex { return Vertex(k + i*k + j) }
	cliqBase := func(i, j int) int { return k + k*k + (i*k+j)*k }
	return StreamSpec{
		N: n,
		// k ring edges, k² star edges, and k² induced (k+1)-cliques each
		// contributing k leaf-to-clique edges plus a k-clique.
		M:    int64(k) + int64(k)*int64(k)*(1+int64(k)) + int64(k)*int64(k)*cliqueEdges(k),
		Name: fmt.Sprintf("cyclestars(%d)", k),
		Emit: func(emit func(u, v Vertex)) {
			for i := 0; i < k; i++ {
				emit(center(i), center((i+1)%k))
				for j := 0; j < k; j++ {
					emit(center(i), leaf(i, j))
					base := cliqBase(i, j)
					for r := 0; r < k; r++ {
						emit(leaf(i, j), Vertex(base+r))
					}
					emitClique(emit, base, base+k)
				}
			}
		},
		Landmarks: map[string]Vertex{
			"ring": center(0), "starLeaf": leaf(0, 0),
			"cliqueVertex": Vertex(cliqBase(0, 0)),
		},
	}
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	return mustBuildStream(completeSpec(n))
}

func completeSpec(n int) StreamSpec {
	if n < 2 {
		panic("graph: Complete needs n >= 2")
	}
	return StreamSpec{
		N:    n,
		M:    cliqueEdges(n),
		Name: fmt.Sprintf("complete(%d)", n),
		Emit: func(emit func(u, v Vertex)) { emitClique(emit, 0, n) },
	}
}

// Cycle returns the n-cycle, n >= 3.
func Cycle(n int) *Graph {
	return mustBuildStream(cycleSpec(n))
}

func cycleSpec(n int) StreamSpec {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	return StreamSpec{
		N:    n,
		M:    int64(n),
		Name: fmt.Sprintf("cycle(%d)", n),
		Emit: func(emit func(u, v Vertex)) {
			for i := 0; i < n; i++ {
				emit(Vertex(i), Vertex((i+1)%n))
			}
		},
	}
}

// Path returns the path graph on n vertices, n >= 2.
func Path(n int) *Graph {
	return mustBuildStream(pathSpec(n))
}

func pathSpec(n int) StreamSpec {
	if n < 2 {
		panic("graph: Path needs n >= 2")
	}
	return StreamSpec{
		N:    n,
		M:    int64(n - 1),
		Name: fmt.Sprintf("path(%d)", n),
		Emit: func(emit func(u, v Vertex)) {
			for i := 0; i+1 < n; i++ {
				emit(Vertex(i), Vertex(i+1))
			}
		},
		Landmarks: map[string]Vertex{"end": 0},
	}
}

// BinaryTree returns a complete binary tree with `levels` levels and
// 2^levels − 1 vertices in heap order. Landmarks: "root", "leaf".
func BinaryTree(levels int) *Graph {
	return mustBuildStream(binaryTreeSpec(levels))
}

func binaryTreeSpec(levels int) StreamSpec {
	if levels < 1 {
		panic("graph: BinaryTree needs at least 1 level")
	}
	n := (1 << levels) - 1
	return StreamSpec{
		N:    n,
		M:    int64(n - 1),
		Name: fmt.Sprintf("bintree(%d)", levels),
		Emit: func(emit func(u, v Vertex)) {
			emitCompleteBinaryTree(emit, 0, n)
		},
		Landmarks: map[string]Vertex{"root": 0, "leaf": Vertex(n - 1)},
	}
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices. It is
// dim-regular with dim = log2 n, the natural "degree exactly log n" regular
// graph for Theorem 1 experiments.
func Hypercube(dim int) *Graph {
	return mustBuildStream(hypercubeSpec(dim))
}

func hypercubeSpec(dim int) StreamSpec {
	if dim < 1 || dim > 30 {
		panic("graph: Hypercube dimension out of range [1,30]")
	}
	n := 1 << dim
	return StreamSpec{
		N:    n,
		M:    int64(n) * int64(dim) / 2,
		Name: fmt.Sprintf("hypercube(%d)", dim),
		Emit: func(emit func(u, v Vertex)) {
			for v := 0; v < n; v++ {
				for bit := 0; bit < dim; bit++ {
					if w := v ^ (1 << bit); v < w {
						emit(Vertex(v), Vertex(w))
					}
				}
			}
		},
	}
}

// Torus2D returns the rows×cols torus (wraparound grid). It is 4-regular.
// Both dimensions must be at least 3 to keep the graph simple.
func Torus2D(rows, cols int) *Graph {
	return mustBuildStream(torus2DSpec(rows, cols))
}

func torus2DSpec(rows, cols int) StreamSpec {
	if rows < 3 || cols < 3 {
		panic("graph: Torus2D needs rows, cols >= 3")
	}
	id := func(r, c int) Vertex { return Vertex(r*cols + c) }
	return StreamSpec{
		N:    rows * cols,
		M:    2 * int64(rows) * int64(cols),
		Name: fmt.Sprintf("torus(%dx%d)", rows, cols),
		Emit: func(emit func(u, v Vertex)) {
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					emit(id(r, c), id(r, (c+1)%cols))
					emit(id(r, c), id((r+1)%rows, c))
				}
			}
		},
	}
}

// Grid2D returns the rows×cols grid without wraparound.
func Grid2D(rows, cols int) *Graph {
	return mustBuildStream(grid2DSpec(rows, cols))
}

func grid2DSpec(rows, cols int) StreamSpec {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("graph: Grid2D needs at least 2 vertices")
	}
	id := func(r, c int) Vertex { return Vertex(r*cols + c) }
	return StreamSpec{
		N:    rows * cols,
		M:    int64(rows)*int64(cols-1) + int64(rows-1)*int64(cols),
		Name: fmt.Sprintf("grid(%dx%d)", rows, cols),
		Emit: func(emit func(u, v Vertex)) {
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					if c+1 < cols {
						emit(id(r, c), id(r, c+1))
					}
					if r+1 < rows {
						emit(id(r, c), id(r+1, c))
					}
				}
			}
		},
		Landmarks: map[string]Vertex{"corner": 0},
	}
}

// RingOfCliques returns k cliques of size s arranged in a ring, consecutive
// cliques joined by a perfect matching. The result is (s+1)-regular on k·s
// vertices — the regular "slow" graph for Theorem 1 experiments (information
// must traverse Θ(k) cliques). Requires k >= 3, s >= 2.
func RingOfCliques(k, s int) *Graph {
	return mustBuildStream(ringOfCliquesSpec(k, s))
}

func ringOfCliquesSpec(k, s int) StreamSpec {
	if k < 3 || s < 2 {
		panic("graph: RingOfCliques needs k >= 3, s >= 2")
	}
	id := func(i, j int) Vertex { return Vertex(i*s + j) }
	return StreamSpec{
		N:    k * s,
		M:    int64(k)*cliqueEdges(s) + int64(k)*int64(s),
		Name: fmt.Sprintf("ringcliques(%dx%d)", k, s),
		Emit: func(emit func(u, v Vertex)) {
			for i := 0; i < k; i++ {
				emitClique(emit, i*s, (i+1)*s)
				for j := 0; j < s; j++ {
					emit(id(i, j), id((i+1)%k, j))
				}
			}
		},
		Landmarks: map[string]Vertex{"cliqueVertex": 0},
	}
}

// CliquePath returns the paper's "path of d-cliques": k cliques of size s in
// a path, consecutive cliques joined by a single bridge edge. Broadcast time
// of push is Ω(k·s) = Ω(n) because each bridge is found with probability 1/s
// per round. Nearly regular (degrees s−1, s, s+1).
func CliquePath(k, s int) *Graph {
	return mustBuildStream(cliquePathSpec(k, s))
}

func cliquePathSpec(k, s int) StreamSpec {
	if k < 2 || s < 2 {
		panic("graph: CliquePath needs k >= 2, s >= 2")
	}
	return StreamSpec{
		N:    k * s,
		M:    int64(k)*cliqueEdges(s) + int64(k-1),
		Name: fmt.Sprintf("cliquepath(%dx%d)", k, s),
		Emit: func(emit func(u, v Vertex)) {
			for i := 0; i < k; i++ {
				emitClique(emit, i*s, (i+1)*s)
				if i+1 < k {
					// Bridge from the last vertex of clique i to the
					// first of i+1.
					emit(Vertex((i+1)*s-1), Vertex((i+1)*s))
				}
			}
		},
		Landmarks: map[string]Vertex{"first": 0, "last": Vertex(k*s - 1)},
	}
}

// RandomRegular returns a uniform-ish random d-regular simple graph on n
// vertices via the configuration (stub pairing) model with edge-switch
// repair of self-loops and duplicate edges. Requires n·d even and 0 < d < n.
//
// The repair step performs uniformly random edge switches, which preserves
// the degree sequence; for d = O(log n) the result is statistically
// indistinguishable from the uniform model for this repository's purposes.
//
// This is the legacy in-memory sampler, kept as the laptop-scale
// reference API; spec builds (randreg:N,D) route through the streaming
// RandomRegularSeeded in randstream.go, whose peak heap is the final CSR.
func RandomRegular(n, d int, rng *xrand.RNG) (*Graph, error) {
	if d <= 0 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegular needs 0 < d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular needs n*d even, got n=%d d=%d", n, d)
	}
	const maxRestarts = 64
	for attempt := 0; attempt < maxRestarts; attempt++ {
		g, ok := tryRandomRegular(n, d, rng)
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: RandomRegular(%d,%d) failed after %d restarts", n, d, maxRestarts)
}

func tryRandomRegular(n, d int, rng *xrand.RNG) (*Graph, bool) {
	stubs := make([]Vertex, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs[v*d+i] = Vertex(v)
		}
	}
	// Fisher-Yates shuffle of the stubs.
	for i := len(stubs) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}

	type pair struct{ u, v Vertex }
	key := func(u, v Vertex) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(uint32(v))
	}
	edgeSet := make(map[uint64]bool, n*d/2)
	good := make([]pair, 0, n*d/2)
	bad := make([]pair, 0)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || edgeSet[key(u, v)] {
			bad = append(bad, pair{u, v})
			continue
		}
		edgeSet[key(u, v)] = true
		good = append(good, pair{u, v})
	}

	// Repair each bad pair with random edge switches against good pairs.
	const maxSwitchTries = 200
	for _, p := range bad {
		repaired := false
		for try := 0; try < maxSwitchTries; try++ {
			j := rng.IntN(len(good))
			q := good[j]
			// Candidate new edges (p.u, q.u) and (p.v, q.v).
			a, bb := p.u, q.u
			c, dd := p.v, q.v
			if try%2 == 1 { // alternate orientation
				a, bb = p.u, q.v
				c, dd = p.v, q.u
			}
			if a == bb || c == dd {
				continue
			}
			k1, k2 := key(a, bb), key(c, dd)
			if k1 == k2 || edgeSet[k1] || edgeSet[k2] {
				continue
			}
			delete(edgeSet, key(q.u, q.v))
			edgeSet[k1] = true
			edgeSet[k2] = true
			good[j] = pair{a, bb}
			good = append(good, pair{c, dd})
			repaired = true
			break
		}
		if !repaired {
			return nil, false
		}
	}

	b := NewBuilder(n, fmt.Sprintf("randreg(%d,%d)", n, d))
	for _, p := range good {
		if err := b.AddEdge(p.u, p.v); err != nil {
			return nil, false
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, false
	}
	return g, true
}

// RandomRegularConnected retries RandomRegular until the sample is connected
// (at most 32 attempts). For d >= 3 almost every sample is connected, so
// this nearly always succeeds on the first try.
func RandomRegularConnected(n, d int, rng *xrand.RNG) (*Graph, error) {
	for attempt := 0; attempt < 32; attempt++ {
		g, err := RandomRegular(n, d, rng)
		if err != nil {
			return nil, err
		}
		if IsConnected(g) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no connected %d-regular sample on %d vertices after 32 tries", d, n)
}

// ErdosRenyi returns a sample of G(n, p) using geometric skipping, so the
// cost is proportional to the number of edges rather than n². It is the
// legacy Builder-based sampler (peak memory ≈ 2× the CSR); spec builds
// (gnp:N,P) route through the streaming ErdosRenyiSeeded in
// randstream.go.
func ErdosRenyi(n int, p float64, rng *xrand.RNG) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: ErdosRenyi needs n >= 1")
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: ErdosRenyi needs p in [0,1], got %g", p)
	}
	b := NewBuilder(n, fmt.Sprintf("gnp(%d,%.4f)", n, p))
	if p > 0 {
		// Linearize pairs (i, j), i < j, and jump by Geometric(p) gaps.
		total := int64(n) * int64(n-1) / 2
		idx := int64(-1)
		for {
			idx += int64(rng.Geometric(p))
			if idx >= total {
				break
			}
			u, v := pairFromIndex(idx, n)
			if err := b.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}

// pairFromIndex maps a linear index over {(i,j) : 0 <= i < j < n} in
// row-major order back to the pair.
func pairFromIndex(idx int64, n int) (Vertex, Vertex) {
	// Row i contains n-1-i pairs. Walk rows; n is laptop-scale so the loop
	// is acceptable, but use the closed form to stay O(1).
	// Pairs before row i: i*n - i*(i+1)/2.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		before := int64(mid)*int64(n) - int64(mid)*int64(mid+1)/2
		if before <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	i := lo
	before := int64(i)*int64(n) - int64(i)*int64(i+1)/2
	j := i + 1 + int(idx-before)
	return Vertex(i), Vertex(j)
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// clique on m+1 vertices, each new vertex attaches to m distinct existing
// vertices chosen proportionally to their degree. This is the classic
// social-network model on which push-pull is provably much faster than push
// (Doerr, Fouz & Friedrich [17]; Chierichetti et al. [12]) — the
// observation the paper's introduction cites.
//
// Degree-proportional sampling uses the standard trick of picking a uniform
// endpoint of an existing edge. This is the legacy in-memory sampler
// (it materializes the full endpoint list); spec builds (barabasi:N,M)
// route through the streaming BarabasiAlbertSeeded in randstream.go,
// which resolves the endpoint pool analytically.
func BarabasiAlbert(n, m int, rng *xrand.RNG) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("graph: BarabasiAlbert needs m >= 1")
	}
	if n < m+2 {
		return nil, fmt.Errorf("graph: BarabasiAlbert needs n >= m+2, got n=%d m=%d", n, m)
	}
	b := NewBuilder(n, fmt.Sprintf("barabasi(%d,%d)", n, m))
	// Endpoint list: every edge contributes both endpoints, so a uniform
	// entry is a degree-proportional vertex.
	endpoints := make([]Vertex, 0, 2*m*n)
	addEdge := func(u, v Vertex) error {
		if err := b.AddEdge(u, v); err != nil {
			return err
		}
		endpoints = append(endpoints, u, v)
		return nil
	}
	// Seed clique on m+1 vertices.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			if err := addEdge(Vertex(i), Vertex(j)); err != nil {
				return nil, err
			}
		}
	}
	chosen := make([]Vertex, 0, m)
	for v := m + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			t := endpoints[rng.IntN(len(endpoints))]
			if !containsVertex(chosen, t) {
				chosen = append(chosen, t)
			}
		}
		// Insertion order is the draw order, so the construction is a pure
		// function of the RNG stream (no map-iteration nondeterminism).
		for _, t := range chosen {
			if err := addEdge(Vertex(v), t); err != nil {
				return nil, err
			}
		}
	}
	b.SetLandmark("hub", 0)
	return b.Build()
}

// ChungLu returns a Chung-Lu random graph with power-law expected degrees:
// weight w_i ∝ (i+1)^(−1/(β−1)) scaled to the requested average degree, and
// each edge {i,j} present independently with probability
// min(1, w_i·w_j / Σw). β must exceed 2 for a finite mean. The generator is
// O(n²); it targets the social-network example (n in the low thousands).
// Spec builds (chunglu:N,B,D) route through the streaming ChungLuSeeded
// in randstream.go, whose skip sampling is O(n + m) expected.
func ChungLu(n int, beta, avgDeg float64, rng *xrand.RNG) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: ChungLu needs n >= 2")
	}
	if beta <= 2 {
		return nil, fmt.Errorf("graph: ChungLu needs beta > 2, got %g", beta)
	}
	if avgDeg <= 0 || avgDeg >= float64(n) {
		return nil, fmt.Errorf("graph: ChungLu needs 0 < avgDeg < n, got %g", avgDeg)
	}
	w := make([]float64, n)
	sum := 0.0
	exp := -1 / (beta - 1)
	for i := range w {
		w[i] = math.Pow(float64(i+1), exp)
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	total := 0.0
	for i := range w {
		w[i] *= scale
		total += w[i]
	}
	b := NewBuilder(n, fmt.Sprintf("chunglu(%d,%.1f,%.1f)", n, beta, avgDeg))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := w[i] * w[j] / total
			if p > 1 {
				p = 1
			}
			if rng.Bernoulli(p) {
				if err := b.AddEdge(Vertex(i), Vertex(j)); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

func containsVertex(vs []Vertex, v Vertex) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}
