package graph

// Width-adaptive CSR storage.
//
// The row-offset array is the per-vertex overhead of the CSR form. Stored
// as []int64 it costs 8 B/vertex regardless of graph size; every graph the
// paper uses — and every graph below 2³¹ neighbor slots — fits its offsets
// in uint32, halving that overhead. offsetStore keeps whichever width the
// endpoint count requires and is the single point through which the rest
// of the package reads offsets, so the width decision never leaks into
// callers (and an mmap-backed graph can alias either width directly from
// its on-disk encoding).

// offsetStore holds the CSR row-offset array (length N+1) in the
// narrowest width that fits: uint32 when the endpoint count (2M) is below
// 2³², int64 otherwise. Exactly one of o32/o64 is non-nil.
type offsetStore struct {
	o32 []uint32
	o64 []int64
}

// newOffsetStore allocates a zeroed offset array for n vertices whose
// final entry will be `endpoints` (= 2M), choosing the narrow width
// whenever every offset fits in uint32.
func newOffsetStore(n int, endpoints int64) offsetStore {
	if endpoints < 1<<32 {
		return offsetStore{o32: make([]uint32, n+1)}
	}
	return offsetStore{o64: make([]int64, n+1)}
}

// len returns the array length (N+1), or 0 for the zero value.
func (o offsetStore) len() int {
	if o.o32 != nil {
		return len(o.o32)
	}
	return len(o.o64)
}

// at returns offset i.
func (o offsetStore) at(i int) int64 {
	if o.o32 != nil {
		return int64(o.o32[i])
	}
	return o.o64[i]
}

// set stores offset i. The caller is responsible for v fitting the width
// chosen at allocation (newOffsetStore sized it from the final endpoint
// count, so monotone fills cannot overflow).
func (o offsetStore) set(i int, v int64) {
	if o.o32 != nil {
		o.o32[i] = uint32(v)
		return
	}
	o.o64[i] = v
}

// inc adds d to offset i and returns the pre-increment value — the
// placement cursor of the streaming builder's second pass.
func (o offsetStore) inc(i int, d int64) int64 {
	if o.o32 != nil {
		v := o.o32[i]
		o.o32[i] = v + uint32(d)
		return int64(v)
	}
	v := o.o64[i]
	o.o64[i] = v + d
	return v
}

// span returns the neighbor-array range [lo, hi) of vertex v as ints
// (endpoint counts fit int on 64-bit platforms, which the simulator
// requires anyway: slice lengths are ints).
func (o offsetStore) span(v Vertex) (lo, hi int) {
	if o.o32 != nil {
		return int(o.o32[v]), int(o.o32[v+1])
	}
	return int(o.o64[v]), int(o.o64[v+1])
}

// wide reports whether the 8-byte width is in use.
func (o offsetStore) wide() bool { return o.o64 != nil }

// bytes returns the storage footprint of the offset array.
func (o offsetStore) bytes() int64 {
	if o.o32 != nil {
		return int64(len(o.o32)) * 4
	}
	return int64(len(o.o64)) * 8
}

// vertexBytes returns the per-vertex offset cost of the active width (4
// or 8), for memory-envelope reporting.
func (o offsetStore) vertexBytes() int64 {
	if o.o32 != nil {
		return 4
	}
	return 8
}

// CSRBytes returns the storage footprint of the graph's CSR arrays
// (offsets + neighbors), independent of whether they live on the heap or
// alias an mmap'd file. It is the size the versioned binary encoding's
// array sections occupy, and the denominator of the construction-peak
// budget the streaming builder is held to.
func (g *Graph) CSRBytes() int64 {
	return g.off.bytes() + int64(len(g.neighbors))*4
}

// OffsetWidth returns the bytes per offset entry in use (4 or 8), for
// memory-envelope reporting.
func (g *Graph) OffsetWidth() int { return int(g.off.vertexBytes()) }

// MmapBacked reports whether the CSR arrays alias a read-only memory
// mapping rather than the heap.
func (g *Graph) MmapBacked() bool { return g.backing != nil }

// MemoryCost estimates the heap bytes keeping this graph resident pins:
// the CSR arrays when heap-backed (an mmap-backed graph's pages are
// reclaimable file cache and charge nothing), plus the packed walk index
// the hot paths will lazily build for index-eligible graphs. The alias
// table (agent placement) is deliberately not charged: it only exists for
// graphs agent protocols ran on, and charging it for every resident graph
// would evict cache entries that never pay it. The estimate is stable
// over the graph's lifetime, which the byte-cost-aware cache requires.
func (g *Graph) MemoryCost() int64 {
	c := int64(4096) // struct, landmarks, name, slice headers
	if g.backing == nil {
		c += g.CSRBytes()
	}
	if g.walkIndexEligible() {
		c += int64(g.N()) * 8
	}
	return c
}
