package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"unsafe"
)

// Encode writes the graph in a simple line-oriented text format:
//
//	rumorgraph <n> <m> <name>
//	u v        (one line per undirected edge, u < v)
//
// The format round-trips through Decode. Landmarks are not serialized;
// they are generator metadata.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "rumorgraph %d %d %s\n", g.N(), g.M(), sanitizeName(g.name)); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(Vertex(v)) {
			if Vertex(v) < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Decode parses a graph in the Encode format.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 3 || header[0] != "rumorgraph" {
		return nil, fmt.Errorf("graph: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[1])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: bad vertex count %q", header[1])
	}
	m, err := strconv.Atoi(header[2])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("graph: bad edge count %q", header[2])
	}
	name := "imported"
	if len(header) >= 4 {
		name = header[3]
	}
	b := NewBuilder(n, name)
	edges := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad vertex %q", fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad vertex %q", fields[1])
		}
		if err := b.AddEdge(Vertex(u), Vertex(v)); err != nil {
			return nil, err
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if edges != m {
		return nil, fmt.Errorf("graph: header claims %d edges, found %d", m, edges)
	}
	return b.Build()
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.ReplaceAll(s, " ", "_")
}

// Versioned binary CSR format.
//
// The text format above round-trips small graphs; the binary format below
// is the out-of-core representation: a fixed header, then the CSR arrays
// laid out exactly as the in-memory storage layer holds them (offsets in
// the width-adaptive 4- or 8-byte form, neighbors as int32), 8-byte
// aligned so a read-only mmap of the file can be aliased directly as the
// graph's arrays with zero copies — opening a 100M-vertex graph faults in
// only the pages a sweep touches. Landmarks and the name ride in a
// trailer after the arrays (they are metadata, not hot-path state).
//
// Layout (all integers little-endian):
//
//	  0  magic   "RUMORCSR"          (8 bytes)
//	  8  version u32                 (currently 1)
//	 12  flags   u32                 (bit 0: offsets are u32)
//	 16  n       u64                 (vertex count)
//	 24  e       u64                 (endpoint count = 2M)
//	 32  nameLen u32
//	 36  lmkN    u32                 (landmark count)
//	 40  trailer u64                 (trailer length in bytes)
//	 48  reserved                    (16 zero bytes)
//	 64  offsets (n+1 entries × 4 or 8 bytes)
//	     pad to 8-byte boundary
//	     neighbors (e entries × 4 bytes)
//	     trailer: name bytes, then per landmark (sorted by name):
//	              u32 keyLen, key bytes, u32 vertex
//
// Encoding is deterministic: equal graphs produce byte-identical files
// (landmarks are sorted), which is what lets the content-addressed store
// and the streamed-vs-legacy builder property tests compare raw bytes.

const (
	csrMagic      = "RUMORCSR"
	csrVersion    = 1
	csrFlagOff32  = 1 << 0
	csrHeaderSize = 64
)

// hostLittleEndian reports the native byte order; on little-endian hosts
// (every platform this repository targets in practice) array sections are
// written and aliased without per-element conversion.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// csrPad returns the bytes of padding needed to align n up to 8.
func csrPad(n int64) int64 { return (8 - n%8) % 8 }

// EncodeCSR writes the graph in the versioned binary CSR format. The
// encoding is deterministic and byte-stable across processes.
func (g *Graph) EncodeCSR(w io.Writer) error {
	n := int64(g.N())
	endpoints := int64(len(g.neighbors))
	name := sanitizeName(g.name)
	lmkNames := g.LandmarkNames()

	trailerLen := int64(len(name))
	for _, k := range lmkNames {
		trailerLen += 4 + int64(len(k)) + 4
	}

	var hdr [csrHeaderSize]byte
	copy(hdr[0:8], csrMagic)
	binary.LittleEndian.PutUint32(hdr[8:], csrVersion)
	flags := uint32(0)
	if !g.off.wide() {
		flags |= csrFlagOff32
	}
	binary.LittleEndian.PutUint32(hdr[12:], flags)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(endpoints))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(len(name)))
	binary.LittleEndian.PutUint32(hdr[36:], uint32(len(lmkNames)))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(trailerLen))

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var offBytes int64
	if g.off.wide() {
		offBytes = (n + 1) * 8
		if err := writeInt64sLE(bw, g.off.o64); err != nil {
			return err
		}
	} else {
		offBytes = (n + 1) * 4
		if err := writeUint32sLE(bw, g.off.o32); err != nil {
			return err
		}
	}
	var pad [8]byte
	if p := csrPad(csrHeaderSize + offBytes); p > 0 {
		if _, err := bw.Write(pad[:p]); err != nil {
			return err
		}
	}
	if err := writeVerticesLE(bw, g.neighbors); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	var u32 [4]byte
	for _, k := range lmkNames {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(k)))
		if _, err := bw.Write(u32[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(k); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(u32[:], uint32(g.landmarks[k]))
		if _, err := bw.Write(u32[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeUint32sLE writes s as little-endian bytes: a single unsafe byte
// view on little-endian hosts, chunked conversion otherwise.
func writeUint32sLE(w io.Writer, s []uint32) error {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		_, err := w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4))
		return err
	}
	var buf [64 << 10]byte
	for len(s) > 0 {
		chunk := min(len(s), len(buf)/4)
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], s[i])
		}
		if _, err := w.Write(buf[:chunk*4]); err != nil {
			return err
		}
		s = s[chunk:]
	}
	return nil
}

func writeInt64sLE(w io.Writer, s []int64) error {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		_, err := w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8))
		return err
	}
	var buf [64 << 10]byte
	for len(s) > 0 {
		chunk := min(len(s), len(buf)/8)
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(s[i]))
		}
		if _, err := w.Write(buf[:chunk*8]); err != nil {
			return err
		}
		s = s[chunk:]
	}
	return nil
}

func writeVerticesLE(w io.Writer, s []Vertex) error {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		_, err := w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4))
		return err
	}
	var buf [64 << 10]byte
	for len(s) > 0 {
		chunk := min(len(s), len(buf)/4)
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(s[i]))
		}
		if _, err := w.Write(buf[:chunk*4]); err != nil {
			return err
		}
		s = s[chunk:]
	}
	return nil
}

// DecodeCSR decodes a binary-CSR graph from data. On little-endian hosts
// the returned graph's arrays alias data (zero copy), so the caller must
// keep data immutable and alive for the graph's lifetime; on big-endian
// hosts the arrays are converted onto the heap. Structural header fields
// are fully validated; array contents are trusted the way the serve
// layer's spill tier trusts its files — the store that manages these
// files rebuilds on any decode error.
func DecodeCSR(data []byte) (*Graph, error) {
	g, _, err := decodeCSR(data)
	return g, err
}

// decodeCSR reports, alongside the graph, whether its arrays alias data.
func decodeCSR(data []byte) (g *Graph, aliased bool, err error) {
	if len(data) < csrHeaderSize || string(data[0:8]) != csrMagic {
		return nil, false, fmt.Errorf("graph: not a binary CSR file")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != csrVersion {
		return nil, false, fmt.Errorf("graph: unsupported CSR version %d", v)
	}
	flags := binary.LittleEndian.Uint32(data[12:])
	n := binary.LittleEndian.Uint64(data[16:])
	endpoints := binary.LittleEndian.Uint64(data[24:])
	nameLen := binary.LittleEndian.Uint32(data[32:])
	lmkN := binary.LittleEndian.Uint32(data[36:])
	trailerLen := binary.LittleEndian.Uint64(data[40:])

	if n >= 1<<31 || endpoints >= 1<<62 || nameLen > 1<<16 || lmkN > 1<<16 {
		return nil, false, fmt.Errorf("graph: CSR header out of range (n=%d e=%d)", n, endpoints)
	}
	off32 := flags&csrFlagOff32 != 0
	if off32 && endpoints >= 1<<32 {
		return nil, false, fmt.Errorf("graph: CSR claims 32-bit offsets for %d endpoints", endpoints)
	}
	offWidth := int64(8)
	if off32 {
		offWidth = 4
	}
	offBytes := (int64(n) + 1) * offWidth
	nbrStart := csrHeaderSize + offBytes + csrPad(csrHeaderSize+offBytes)
	total := nbrStart + int64(endpoints)*4 + int64(trailerLen)
	if int64(len(data)) != total {
		return nil, false, fmt.Errorf("graph: CSR file is %d bytes, header implies %d", len(data), total)
	}

	var off offsetStore
	var neighbors []Vertex
	aliased = hostLittleEndian
	if hostLittleEndian {
		if off32 {
			off.o32 = unsafe.Slice((*uint32)(unsafe.Pointer(&data[csrHeaderSize])), n+1)
		} else {
			off.o64 = unsafe.Slice((*int64)(unsafe.Pointer(&data[csrHeaderSize])), n+1)
		}
		if endpoints > 0 {
			neighbors = unsafe.Slice((*Vertex)(unsafe.Pointer(&data[nbrStart])), endpoints)
		}
	} else {
		off = newOffsetStore(int(n), int64(endpoints))
		for i := int64(0); i <= int64(n); i++ {
			if off32 {
				off.set(int(i), int64(binary.LittleEndian.Uint32(data[csrHeaderSize+i*4:])))
			} else {
				off.set(int(i), int64(binary.LittleEndian.Uint64(data[csrHeaderSize+i*8:])))
			}
		}
		neighbors = make([]Vertex, endpoints)
		for i := range neighbors {
			neighbors[i] = Vertex(binary.LittleEndian.Uint32(data[nbrStart+int64(i)*4:]))
		}
	}
	if off.at(0) != 0 || off.at(int(n)) != int64(endpoints) {
		return nil, false, fmt.Errorf("graph: CSR offsets endpoints mismatch")
	}

	tr := data[nbrStart+int64(endpoints)*4:]
	if uint64(len(tr)) != trailerLen || uint64(nameLen) > trailerLen {
		return nil, false, fmt.Errorf("graph: CSR trailer truncated")
	}
	name := string(tr[:nameLen])
	tr = tr[nameLen:]
	var landmarks map[string]Vertex
	if lmkN > 0 {
		landmarks = make(map[string]Vertex, lmkN)
	}
	for i := uint32(0); i < lmkN; i++ {
		if len(tr) < 4 {
			return nil, false, fmt.Errorf("graph: CSR landmark %d truncated", i)
		}
		kl := binary.LittleEndian.Uint32(tr)
		if uint64(len(tr)) < 8+uint64(kl) {
			return nil, false, fmt.Errorf("graph: CSR landmark %d truncated", i)
		}
		key := string(tr[4 : 4+kl])
		v := Vertex(binary.LittleEndian.Uint32(tr[4+kl:]))
		if v < 0 || uint64(v) >= n {
			return nil, false, fmt.Errorf("graph: CSR landmark %q out of range", key)
		}
		landmarks[key] = v
		tr = tr[8+kl:]
	}
	if len(tr) != 0 {
		return nil, false, fmt.Errorf("graph: CSR trailer has %d trailing bytes", len(tr))
	}
	return &Graph{off: off, neighbors: neighbors, name: name, landmarks: landmarks}, aliased, nil
}

// WriteCSRFile encodes g atomically into path (temp file + rename), so
// concurrent or crashed writers leave either the full file or none.
func WriteCSRFile(g *Graph, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".csr.*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	err = g.EncodeCSR(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// OpenCSRFile maps path read-only and decodes it as a binary CSR graph.
// On little-endian hosts the graph's arrays alias the mapping — pages
// fault in on access and the kernel reclaims them under memory pressure —
// and the mapping is released by a runtime cleanup once the graph is
// unreachable. Decode errors leave no mapping behind.
func OpenCSRFile(path string) (*Graph, error) {
	m, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	g, aliased, err := decodeCSR(m.data)
	if err != nil {
		m.close()
		return nil, err
	}
	if !aliased {
		// Arrays were copied to the heap; the mapping is no longer needed
		// and the graph is accounted as heap-resident.
		m.close()
		return g, nil
	}
	g.backing = m
	runtime.AddCleanup(g, func(m *mapping) { m.close() }, m)
	return g, nil
}
