package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Encode writes the graph in a simple line-oriented text format:
//
//	rumorgraph <n> <m> <name>
//	u v        (one line per undirected edge, u < v)
//
// The format round-trips through Decode. Landmarks are not serialized;
// they are generator metadata.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "rumorgraph %d %d %s\n", g.N(), g.M(), sanitizeName(g.name)); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(Vertex(v)) {
			if Vertex(v) < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Decode parses a graph in the Encode format.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 3 || header[0] != "rumorgraph" {
		return nil, fmt.Errorf("graph: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[1])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: bad vertex count %q", header[1])
	}
	m, err := strconv.Atoi(header[2])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("graph: bad edge count %q", header[2])
	}
	name := "imported"
	if len(header) >= 4 {
		name = header[3]
	}
	b := NewBuilder(n, name)
	edges := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad vertex %q", fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad vertex %q", fields[1])
		}
		if err := b.AddEdge(Vertex(u), Vertex(v)); err != nil {
			return nil, err
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if edges != m {
		return nil, fmt.Errorf("graph: header claims %d edges, found %d", m, edges)
	}
	return b.Build()
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.ReplaceAll(s, " ", "_")
}
