package graph

import (
	"strings"
	"testing"

	"rumor/internal/xrand"
)

func TestFromSpecAllFamilies(t *testing.T) {
	rng := xrand.New(1)
	cases := []struct {
		spec  string
		wantN int
	}{
		{"star:10", 11},
		{"doublestar:5", 12},
		{"heavytree:4", 15},
		{"siamesetree:4", 29},
		{"cyclestars:3", 39},
		{"complete:7", 7},
		{"cycle:9", 9},
		{"path:5", 5},
		{"bintree:3", 7},
		{"hypercube:4", 16},
		{"torus:3,4", 12},
		{"grid:2,5", 10},
		{"ringcliques:3,4", 12},
		{"cliquepath:3,4", 12},
		{"randreg:20,4", 20},
		{"gnp:30,0.2", 30},
		{"chunglu:50,2.5,5", 50},
	}
	for _, c := range cases {
		g, err := FromSpec(c.spec, rng)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if g.N() != c.wantN {
			t.Errorf("%s: N = %d, want %d", c.spec, g.N(), c.wantN)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", c.spec, err)
		}
	}
}

func TestFromSpecWhitespaceAndCase(t *testing.T) {
	rng := xrand.New(2)
	g, err := FromSpec(" Star:8", rng)
	if err != nil || g.N() != 9 {
		t.Errorf("case/space-insensitive parse failed: %v", err)
	}
	g, err = FromSpec("torus: 3 , 3", rng)
	if err != nil || g.N() != 9 {
		t.Errorf("parameter whitespace parse failed: %v", err)
	}
}

func TestFromSpecErrors(t *testing.T) {
	rng := xrand.New(3)
	bad := []string{
		"",
		"unknown:5",
		"star",           // missing parameter
		"star:x",         // non-integer
		"star:0",         // out of range (panic converted to error)
		"torus:3",        // wrong arity
		"hypercube:99",   // out of range
		"gnp:10",         // wrong arity
		"gnp:10,zz",      // bad float
		"chunglu:10,2,3", // beta out of range
		"randreg:10,11",  // d >= n
	}
	for _, spec := range bad {
		if _, err := FromSpec(spec, rng); err == nil {
			t.Errorf("FromSpec(%q) succeeded, want error", spec)
		}
	}
}

func TestSpecFamiliesCoverSwitch(t *testing.T) {
	rng := xrand.New(4)
	for _, f := range SpecFamilies() {
		name, _, _ := strings.Cut(f, ":")
		// Each listed family must at least be recognized (parameter errors
		// are fine, unknown-family errors are not).
		_, err := FromSpec(name+":0", rng)
		if err != nil && strings.Contains(err.Error(), "unknown family") {
			t.Errorf("listed family %q not recognized by FromSpec", name)
		}
	}
}

func TestFromSpecBarabasi(t *testing.T) {
	g, err := FromSpec("barabasi:60,3", xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 60 {
		t.Errorf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalSpecNormalizes(t *testing.T) {
	cases := []struct{ in, want string }{
		{"star:10", "star:10"},
		{" Star : 10 ", "star:10"},
		{"GNP:30,0.20", "gnp:30,0.2"},
		{"gnp:30,.2", "gnp:30,0.2"},
		{"chunglu:50, 2.50 ,5.0", "chunglu:50,2.5,5"},
		{"Torus: 3 , 4", "torus:3,4"},
	}
	for _, c := range cases {
		got, err := CanonicalSpec(c.in)
		if err != nil {
			t.Errorf("CanonicalSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("CanonicalSpec(%q) = %q, want %q", c.in, got, c.want)
		}
		// Canonical forms are fixed points.
		again, err := CanonicalSpec(got)
		if err != nil || again != got {
			t.Errorf("CanonicalSpec(%q) = %q, %v: not a fixed point", got, again, err)
		}
	}
}

func TestSpecHashStable(t *testing.T) {
	a, err := ParseSpec(" Star : 12 ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("star:12")
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("equivalent specs hash differently: %x vs %x", a.Hash(), b.Hash())
	}
	c, _ := ParseSpec("star:13")
	if a.Hash() == c.Hash() {
		t.Fatal("distinct specs collide")
	}
	// Pin one value so accidental grammar or hash changes are caught: the
	// hash is part of the serving layer's cache identity.
	if got := b.Hash(); got != 0xcfcae2e1de7ef3d6 {
		t.Fatalf("Hash(star:12) = %#x, want the pinned value (grammar/hash change?)", got)
	}
}

func TestParsedSpecRandom(t *testing.T) {
	for spec, want := range map[string]bool{
		"star:10":      false,
		"hypercube:4":  false,
		"randreg:20,4": true,
		"gnp:30,0.2":   true,
		"barabasi:9,2": true,
	} {
		p, err := ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if p.Random() != want {
			t.Errorf("Random(%s) = %v, want %v", spec, p.Random(), want)
		}
	}
}

func TestFromSpecMatchesParseBuild(t *testing.T) {
	// FromSpec must be exactly ParseSpec+Build: same graph for the same
	// rng seed, including for random families.
	for _, spec := range []string{"doublestar:6", "randreg:24,4"} {
		g1, err := FromSpec(spec, xrand.New(77))
		if err != nil {
			t.Fatal(err)
		}
		p, err := ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := p.Build(xrand.New(77))
		if err != nil {
			t.Fatal(err)
		}
		if g1.N() != g2.N() || g1.M() != g2.M() {
			t.Errorf("%s: FromSpec and ParseSpec+Build disagree", spec)
		}
	}
}
