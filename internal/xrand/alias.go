package xrand

import "fmt"

// Alias is a Walker alias table for O(1) sampling from a fixed discrete
// distribution. It is used to place agents according to the stationary
// distribution of a random walk and to draw weighted vertices in the
// Chung-Lu graph generator.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table from non-negative weights. At least one
// weight must be positive.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("xrand: alias table needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("xrand: negative weight %g at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("xrand: all weights are zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities; classify into small/large work lists.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are all probability 1.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one outcome index.
func (a *Alias) Sample(r *RNG) int32 {
	i := int32(r.IntN(len(a.prob)))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// SampleStream draws one outcome index from a counter-based Stream. It
// consumes exactly two 64-bit draws — one for the column, one for the
// coin — so per-unit draw counts stay fixed and sharded callers remain
// deterministic.
func (a *Alias) SampleStream(s *Stream) int32 {
	i := s.IntN(len(a.prob))
	if s.Float64() < a.prob[i] {
		return int32(i)
	}
	return a.alias[i]
}
