// Package xrand provides the deterministic randomness substrate for the
// simulator: seeded PRNG construction, SplitMix64 seed derivation for
// parallel trials, and samplers for the distributions the protocols and
// graph generators need.
//
// Every simulation run is driven by a single *RNG derived from a 64-bit
// seed, so identical seeds reproduce identical traces. Parallel trials
// derive independent child seeds with Derive, which passes the (seed, index)
// pair through SplitMix64 — a well-dispersed 64-bit mixer — so trial streams
// do not overlap in practice.
package xrand

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random number generator. It wraps the
// stdlib PCG generator behind a fixed construction so the whole repository
// shares one seeding discipline.
type RNG struct {
	*rand.Rand
}

// New returns an RNG seeded with seed. Two RNGs built from the same seed
// produce identical streams.
func New(seed uint64) *RNG {
	// The second PCG word is a fixed odd constant so that New(seed) is a
	// pure function of seed.
	return &RNG{rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))}
}

// SplitMix64 advances and mixes x per Steele et al.'s SplitMix64. It is the
// standard way to spawn well-separated seeds from a master seed.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive returns the i-th child seed of seed. Children with distinct (seed,
// i) pairs are well-dispersed.
func Derive(seed uint64, i int) uint64 {
	return SplitMix64(seed ^ SplitMix64(uint64(i)+0x52dce729))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from the geometric distribution on {1, 2, ...}
// with success probability p, i.e. the number of Bernoulli(p) trials up to
// and including the first success. It uses inversion, which is exact up to
// floating point.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("xrand: Geometric requires p > 0")
	}
	// Inversion: ceil(ln(U) / ln(1-p)) with U uniform in (0,1].
	u := 1 - r.Float64() // in (0, 1]
	k := math.Ceil(math.Log(u) / math.Log1p(-p))
	if k < 1 {
		k = 1
	}
	return int(k)
}

// Binomial returns a sample of Bin(n, p). It uses direct simulation for
// small n and a normal approximation is deliberately avoided: the simulator
// only needs Binomial for test oracles and workload generators where n is
// modest, so exactness wins over speed.
func (r *RNG) Binomial(n int, p float64) int {
	if n < 0 {
		panic("xrand: Binomial requires n >= 0")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// BTRS would be faster for large n·p, but direct simulation keeps this
	// exact and dependency-free; callers keep n in the thousands at most.
	c := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			c++
		}
	}
	return c
}

// Perm fills out with a uniformly random permutation of {0, ..., len(out)-1}.
func (r *RNG) Perm(out []int32) {
	for i := range out {
		out[i] = int32(i)
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
