package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d for identical seeds", i)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("distinct seeds agree on %d/64 outputs; generator looks broken", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical SplitMix64 with seed 0 and 1:
	// the function here is next(state) applied once to the given state.
	cases := []struct {
		in, want uint64
	}{
		{0, 0xe220a8397b1dcdaf},
		{1, 0x910a2dec89025cc1},
	}
	for _, c := range cases {
		if got := SplitMix64(c.in); got != c.want {
			t.Errorf("SplitMix64(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestDeriveDispersion(t *testing.T) {
	seen := make(map[uint64]bool)
	for seed := uint64(0); seed < 8; seed++ {
		for i := 0; i < 64; i++ {
			s := Derive(seed, i)
			if seen[s] {
				t.Fatalf("Derive collision at seed=%d i=%d", seed, i)
			}
			seen[s] = true
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(7)
	for i := 0; i < 10; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(11)
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) empirical mean %.3f", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const trials = 20000
		sum := 0
		for i := 0; i < trials; i++ {
			sum += r.Geometric(p)
		}
		got := float64(sum) / trials
		want := 1 / p
		if math.Abs(got-want) > 0.08*want+0.05 {
			t.Errorf("Geometric(%g) mean %.3f, want %.3f", p, got, want)
		}
	}
}

func TestGeometricAlwaysPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		if g := r.Geometric(0.99); g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
	}
	if r.Geometric(1) != 1 {
		t.Fatal("Geometric(1) != 1")
	}
}

func TestGeometricInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestBinomialEdges(t *testing.T) {
	r := New(19)
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10,0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10,1) = %d", got)
	}
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0,0.5) = %d", got)
	}
}

func TestBinomialMeanVariance(t *testing.T) {
	r := New(23)
	const n, p, trials = 40, 0.25, 5000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		x := float64(r.Binomial(n, p))
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-n*p) > 0.3 {
		t.Errorf("Binomial mean %.3f, want %.1f", mean, float64(n)*p)
	}
	wantVar := n * p * (1 - p)
	if math.Abs(variance-wantVar) > 0.15*wantVar {
		t.Errorf("Binomial variance %.3f, want %.3f", variance, wantVar)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	out := make([]int32, 100)
	r.Perm(out)
	seen := make([]bool, 100)
	for _, v := range out {
		if v < 0 || int(v) >= 100 || seen[v] {
			t.Fatalf("Perm output invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(31)
	counts := make([]int, 4)
	out := make([]int32, 4)
	const trials = 8000
	for i := 0; i < trials; i++ {
		r.Perm(out)
		counts[out[0]]++
	}
	for v, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.25) > 0.03 {
			t.Errorf("P[first=%d] = %.3f, want 0.25", v, got)
		}
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("NewAlias(nil) succeeded")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("NewAlias(all-zero) succeeded")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("NewAlias(negative) succeeded")
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 4 {
		t.Fatalf("N() = %d", a.N())
	}
	r := New(37)
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[a.Sample(r)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.015 {
			t.Errorf("P[%d] = %.4f, want %.4f", i, got, want)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	r := New(41)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-outcome alias sampled nonzero index")
		}
	}
}

// TestQuickAliasValidDistribution property-checks that alias tables built
// from random weights always sample valid indices and never lose an outcome
// that has positive weight.
func TestQuickAliasValidDistribution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := New(seed)
		n := 1 + rng.IntN(20)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(rng.IntN(5)) // some zeros allowed
		}
		weights[rng.IntN(n)] += 1 // ensure positive total
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		counts := make([]int, n)
		for i := 0; i < 2000; i++ {
			s := a.Sample(rng)
			if s < 0 || int(s) >= n {
				return false
			}
			counts[s]++
		}
		for i, w := range weights {
			if w == 0 && counts[i] > 0 && n > 1 {
				// A zero-weight outcome must (almost) never be sampled. The
				// alias construction is exact, so never.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
