package xrand

import (
	"math"
	"math/bits"
)

// Counter-based randomness for deterministic parallelism.
//
// A Stream is a tiny SplitMix64-style generator whose initial state is a
// pure function of a (seed, unit, round) triple. Because every (agent,
// round) or (vertex, round) pair owns an independent stream, a simulation
// round can be sharded across any number of workers and still draw exactly
// the same randomness: no draw depends on execution order, shard count, or
// how many values other units consumed. This is the contract the parallel
// round engine in internal/core and internal/agents relies on.
//
// The construction follows the counter-based design of Salmon et al.
// ("Parallel random numbers: as easy as 1, 2, 3", SC'11) in spirit, with
// SplitMix64's finalizer as the bijective mixer: the key (seed, unit,
// round) is combined with distinct odd multipliers into the initial state,
// and successive draws advance the state by the golden-ratio increment
// before mixing, exactly as SplitMix64 does.

const (
	// splitMixGamma is SplitMix64's golden-ratio state increment.
	splitMixGamma = 0x9e3779b97f4a7c15
	// unitMult and roundMult spread the unit and round keys across the
	// 64-bit state. They are distinct from splitMixGamma so that
	// (unit, draw-index) and (unit, round) pairs cannot alias: with a
	// shared constant, unit u at draw k+1 would collide with unit u+1 at
	// draw k.
	unitMult  = 0xa24baed4963ee407
	roundMult = 0x9fb21c651e98df25
)

// mix64 is SplitMix64's output finalizer: a strong 64-bit avalanche mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// streamState returns the initial Stream state for a (seed, unit, round)
// key. It is shared by NewStream and the single-draw helpers. The key is
// combined additively so hot loops over consecutive units can advance the
// state incrementally (one add per unit) instead of recomputing the
// multiplies; mix64 provides all the avalanche.
func streamState(seed, unit, round uint64) uint64 {
	return seed + unit*unitMult + round*roundMult
}

// UnitStride is the stream-state difference between consecutive units of
// the same (seed, round): MixBase(seed, u+1, r) == MixBase(seed, u, r) +
// UnitStride. Loops over a unit range use it to derive each unit's first
// draw with one add + Mix.
const UnitStride = unitMult

// DrawStride is the stream-state difference between consecutive draws of
// one stream (SplitMix64's gamma): the k-th draw of a stream with base b
// is Mix(b + k*DrawStride).
const DrawStride = splitMixGamma

// MixBase returns the pre-mix state of stream (seed, unit, round)'s first
// draw, for incremental hot loops: Mix(MixBase(s,u,r)) == Mix3(s,u,r).
func MixBase(seed, unit, round uint64) uint64 {
	return streamState(seed, unit, round) + splitMixGamma
}

// Mix finalizes a stream state into a draw (see MixBase/UnitStride).
func Mix(base uint64) uint64 { return mix64(base) }

// Trial lane
//
// Batched multi-trial engines need a fourth key lane besides (seed, unit,
// round): the trial index. To keep batched draws bit-identical to the
// serial per-trial path, the lane is realized by seed derivation rather
// than a fourth multiplier: trial t's streams are keyed
// (TrialSeed(seed, t), unit, round), where TrialSeed is exactly the
// derivation core.RunMany applies when it spawns trial RNGs. A protocol
// constructor that draws its stream seed from the trial RNG therefore
// obtains the same seed whether the trial runs serially or inside a batch.

// TrialSeed is the trial lane of the stream keying: the master seed handed
// to trial t of a multi-trial run, making the full key of a draw
// (seed, trial, unit, round) — realized as NewStream(TrialSeed(seed, t),
// unit, round). It is exactly RunMany's per-trial derivation (Derive), so
// engines that construct trial RNGs or streams from it reproduce the
// serial per-trial draws bit for bit.
func TrialSeed(seed uint64, trial int) uint64 {
	return Derive(seed, trial)
}

// Stream is a counter-based deterministic generator for one simulation
// unit in one round. It is a value type: construction costs two multiplies
// and allocates nothing, so hot loops create one per unit per round.
type Stream struct {
	state uint64
}

// NewStream returns the stream keyed by (seed, unit, round). Identical
// keys always produce identical draw sequences; distinct keys produce
// well-dispersed, effectively independent sequences.
func NewStream(seed, unit, round uint64) Stream {
	return Stream{state: streamState(seed, unit, round)}
}

// Uint64 returns the next 64-bit draw.
func (s *Stream) Uint64() uint64 {
	s.state += splitMixGamma
	return mix64(s.state)
}

// Mix3 returns the first draw of NewStream(seed, unit, round) without
// constructing a Stream. It is the single-draw fast path for hot loops
// that need exactly one value per unit per round.
func Mix3(seed, unit, round uint64) uint64 {
	return mix64(streamState(seed, unit, round) + splitMixGamma)
}

// IntN returns a draw uniform on [0, n) for n > 0. It uses Lemire's
// multiply-shift reduction; the bias (at most n/2^64) is far below
// anything a simulation can observe, and keeping every draw a single
// Uint64 is what lets draw counts stay position-independent.
func (s *Stream) IntN(n int) int {
	hi, _ := bits.Mul64(s.Uint64(), uint64(n))
	return int(hi)
}

// ReduceN maps an existing 64-bit draw onto [0, n) with the same
// multiply-shift reduction IntN uses.
func ReduceN(u uint64, n int) int {
	hi, _ := bits.Mul64(u, uint64(n))
	return int(hi)
}

// ReduceDeg maps a draw onto [0, deg) exactly as the packed walk index
// does: an AND mask for power-of-two degrees, multiply-shift otherwise.
// Fallback samplers use it so packed and unpacked paths pick identical
// neighbors from identical draws. deg must be positive.
func ReduceDeg(u uint64, deg int) int {
	if deg&(deg-1) == 0 {
		return int(u) & (deg - 1)
	}
	return ReduceN(u, deg)
}

// ReduceDeg32 is ReduceDeg for the 32-bit lazy-walk draw scheme, matching
// graph.WalkTarget32's reduction.
func ReduceDeg32(u uint32, deg int) int {
	if deg&(deg-1) == 0 {
		return int(u) & (deg - 1)
	}
	return int(uint64(u) * uint64(deg) >> 32)
}

// Float64 returns a draw uniform on [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1.0p-53
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric64 returns a draw from the geometric distribution on
// {1, 2, ...} with success probability p: the index of the first success
// in a Bernoulli(p) sequence, sampled by inversion in one Float64 draw.
// It is the skip-length primitive of the edge-stream samplers (gnp,
// chunglu), where m expected draws replace n² coin flips. p must be in
// (0, 1]; int64 range covers every gap a 64-bit pair index can need.
func (s *Stream) Geometric64(p float64) int64 {
	if p >= 1 {
		s.Uint64() // keep draw counts position-independent across p
		return 1
	}
	if p <= 0 {
		panic("xrand: Geometric64 requires p > 0")
	}
	// 1 - Float64() is in (0, 1], so the log is finite and <= 0.
	g := int64(math.Ceil(math.Log(1-s.Float64()) / math.Log1p(-p)))
	if g < 1 {
		return 1
	}
	return g
}

// BernoulliThreshold converts p into a threshold comparable against a raw
// Uint64 draw: u < BernoulliThreshold(p) holds with probability p (up to
// 2^-64 rounding). Precomputing the threshold turns per-draw Bernoulli
// trials into a single integer compare.
func BernoulliThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	return uint64(p * 0x1.0p64)
}
