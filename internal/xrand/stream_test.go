package xrand

import (
	"math"
	"testing"
)

func TestStreamDeterministic(t *testing.T) {
	a := NewStream(7, 3, 11)
	b := NewStream(7, 3, 11)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("identical keys diverge at draw %d", i)
		}
	}
}

func TestStreamKeySeparation(t *testing.T) {
	// Streams with any differing key component must not collide on their
	// first draws.
	seen := make(map[uint64][3]uint64)
	for seed := uint64(0); seed < 4; seed++ {
		for unit := uint64(0); unit < 32; unit++ {
			for round := uint64(0); round < 32; round++ {
				s := NewStream(seed, unit, round)
				u := s.Uint64()
				if prev, dup := seen[u]; dup {
					t.Fatalf("first-draw collision: (%d,%d,%d) vs %v", seed, unit, round, prev)
				}
				seen[u] = [3]uint64{seed, unit, round}
			}
		}
	}
}

// TestStreamUnitDrawNoAliasing guards the constant choice: unit u at draw
// k+1 must not equal unit u+1 at draw k (which happens when the unit
// multiplier equals the draw increment).
func TestStreamUnitDrawNoAliasing(t *testing.T) {
	for unit := uint64(0); unit < 16; unit++ {
		a := NewStream(1, unit, 5)
		b := NewStream(1, unit+1, 5)
		var as, bs []uint64
		for i := 0; i < 8; i++ {
			as = append(as, a.Uint64())
			bs = append(bs, b.Uint64())
		}
		for i := 0; i+1 < 8; i++ {
			if as[i+1] == bs[i] {
				t.Fatalf("unit %d draw %d aliases unit %d draw %d", unit, i+1, unit+1, i)
			}
		}
	}
}

func TestMix3MatchesFirstDraw(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		s := NewStream(seed, 9, 4)
		if got, want := Mix3(seed, 9, 4), s.Uint64(); got != want {
			t.Fatalf("Mix3(%d,9,4) = %#x, stream first draw %#x", seed, got, want)
		}
	}
}

// TestMixBaseIncremental pins the incremental-loop identities hot paths
// rely on: advancing the base by UnitStride moves to the next unit, and by
// DrawStride to the next draw of the same stream.
func TestMixBaseIncremental(t *testing.T) {
	base := MixBase(99, 10, 7)
	for u := uint64(10); u < 20; u++ {
		if got, want := Mix(base), Mix3(99, u, 7); got != want {
			t.Fatalf("incremental unit %d: %#x, want %#x", u, got, want)
		}
		base += UnitStride
	}
	s := NewStream(5, 2, 3)
	b := MixBase(5, 2, 3)
	for k := 0; k < 10; k++ {
		if got, want := Mix(b+uint64(k)*DrawStride), s.Uint64(); got != want {
			t.Fatalf("draw %d: %#x, want %#x", k, got, want)
		}
	}
}

func TestStreamIntNBounds(t *testing.T) {
	s := NewStream(3, 1, 2)
	for _, n := range []int{1, 2, 3, 7, 14, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestStreamIntNUniform(t *testing.T) {
	s := NewStream(5, 0, 0)
	const n, trials = 7, 70000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.IntN(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("IntN(%d): outcome %d count %d, want about %.0f", n, v, c, want)
		}
	}
}

func TestStreamFloat64Range(t *testing.T) {
	s := NewStream(11, 2, 3)
	sum := 0.0
	const trials = 50000
	for i := 0; i < trials; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f, want about 0.5", mean)
	}
}

func TestStreamBernoulli(t *testing.T) {
	s := NewStream(13, 0, 1)
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) true")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) false")
	}
	hits := 0
	const trials = 40000
	for i := 0; i < trials; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if got := float64(hits) / trials; math.Abs(got-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) empirical %.3f", got)
	}
}

func TestStreamGeometric64(t *testing.T) {
	// p >= 1 consumes exactly one draw and returns 1, so skip-sampling
	// loops advance the stream position identically at every p.
	a := NewStream(13, 2, 3)
	if g := a.Geometric64(1); g != 1 {
		t.Errorf("Geometric64(1) = %d", g)
	}
	b := NewStream(13, 2, 3)
	b.Uint64()
	if a.Uint64() != b.Uint64() {
		t.Error("Geometric64(1) did not consume exactly one draw")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("Geometric64(0) did not panic")
			}
		}()
		s := NewStream(1, 1, 1)
		s.Geometric64(0)
	}()

	// Determinism: same key, same skip sequence.
	s1, s2 := NewStream(7, 1, 9), NewStream(7, 1, 9)
	for i := 0; i < 100; i++ {
		if s1.Geometric64(0.01) != s2.Geometric64(0.01) {
			t.Fatal("Geometric64 diverged across identical streams")
		}
	}

	// Mean: E[G] = 1/p, and the support starts at 1.
	const p, trials = 0.02, 40000
	s := NewStream(23, 5, 6)
	var sum int64
	for i := 0; i < trials; i++ {
		g := s.Geometric64(p)
		if g < 1 {
			t.Fatalf("Geometric64 returned %d < 1", g)
		}
		sum += g
	}
	if got := float64(sum) / trials; math.Abs(got-1/p) > 2 {
		t.Errorf("Geometric64(%g) empirical mean %.2f, want ~%.0f", p, got, 1/p)
	}
}

func TestBernoulliThreshold(t *testing.T) {
	if BernoulliThreshold(0) != 0 {
		t.Error("threshold(0) != 0")
	}
	if BernoulliThreshold(1) != ^uint64(0) {
		t.Error("threshold(1) != max")
	}
	th := BernoulliThreshold(0.25)
	s := NewStream(17, 4, 9)
	hits := 0
	const trials = 40000
	for i := 0; i < trials; i++ {
		if s.Uint64() < th {
			hits++
		}
	}
	if got := float64(hits) / trials; math.Abs(got-0.25) > 0.02 {
		t.Errorf("threshold(0.25) empirical %.3f", got)
	}
}

func TestReduceNMatchesIntN(t *testing.T) {
	a := NewStream(19, 1, 1)
	b := NewStream(19, 1, 1)
	for i := 0; i < 100; i++ {
		if got, want := ReduceN(a.Uint64(), 14), b.IntN(14); got != want {
			t.Fatalf("ReduceN disagrees with IntN at draw %d: %d vs %d", i, got, want)
		}
	}
}

func TestAliasSampleStreamMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(23, 0, 0)
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[a.SampleStream(&s)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.015 {
			t.Errorf("P[%d] = %.4f, want %.4f", i, got, want)
		}
	}
}

// TestDeriveGolden pins Derive to the seed implementation: parallel-trial
// seed derivation is part of the reproducibility contract, and these values
// must never change (recorded results and tests depend on them).
func TestDeriveGolden(t *testing.T) {
	cases := []struct {
		seed uint64
		i    int
		want uint64
	}{
		{0, 0, 0x2f9219f52030ddc9},
		{0, 1, 0xcd6ec9096781362b},
		{0, 7, 0x90396c0fd5c9c587},
		{0, 1000, 0x3f6f81d4fca988f4},
		{1, 0, 0x99e5a785bde9c4a3},
		{1, 1, 0x69384a533652c33d},
		{1, 7, 0x3221fa4713f870ad},
		{1, 1000, 0x5832231f0846c104},
		{42, 0, 0x5823270947650485},
		{42, 1, 0xa86df1a6b990a81b},
		{42, 7, 0x56a6b1b00c9d1ff9},
		{42, 1000, 0x86f69ed171876a8c},
		{3735928559, 0, 0xd851755588c804c0},
		{3735928559, 1, 0x766d23eefa45b40d},
		{3735928559, 7, 0x8f1a1ee438ccb6d7},
		{3735928559, 1000, 0xfa64294b822fb477},
	}
	for _, c := range cases {
		if got := Derive(c.seed, c.i); got != c.want {
			t.Errorf("Derive(%d, %d) = %#x, want %#x", c.seed, c.i, got, c.want)
		}
	}
}

// TestTrialSeedMatchesRunManyDerivation: the trial lane must be exactly
// the per-trial derivation the serial trial pool uses, so batched engines
// keyed (TrialSeed(seed, t), unit, round) replay serial trials bit for
// bit.
func TestTrialSeedMatchesRunManyDerivation(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		for trial := 0; trial < 64; trial++ {
			if TrialSeed(seed, trial) != Derive(seed, trial) {
				t.Fatalf("TrialSeed(%d,%d) != Derive", seed, trial)
			}
		}
	}
}

// TestTrialLaneSeparation: streams keyed through the trial lane —
// NewStream(TrialSeed(seed, t), unit, round) — must yield distinct draw
// sequences for distinct trials at the same (unit, round).
func TestTrialLaneSeparation(t *testing.T) {
	seen := make(map[uint64]int)
	for trial := 0; trial < 256; trial++ {
		s := NewStream(TrialSeed(9, trial), 5, 7)
		u := s.Uint64()
		if prev, dup := seen[u]; dup {
			t.Fatalf("trial-lane collision: trials %d and %d share a first draw", prev, trial)
		}
		seen[u] = trial
	}
}
