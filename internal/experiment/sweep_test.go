package experiment

import (
	"bytes"
	"errors"
	"testing"
)

// TestSweepExpandOrderAndNormalization: Expand yields the cross-product
// in canonical order (graphs, then protocols, then seeds) with each
// point's spec normalized.
func TestSweepExpandOrderAndNormalization(t *testing.T) {
	sw := Sweep{
		Defaults:  DefaultRunSpec(),
		Graphs:    []string{" STAR : 8 ", "cycle:6"},
		Protocols: []Proto{ProtoPush, ProtoVisitX},
		Seeds:     []uint64{3, 4},
	}
	g, p, s := sw.Dims()
	if g != 2 || p != 2 || s != 2 {
		t.Fatalf("Dims = %d,%d,%d, want 2,2,2", g, p, s)
	}
	points, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("expanded %d points, want 8", len(points))
	}
	// Canonical order: graphs outermost, seeds innermost.
	want := []struct {
		graph string
		proto Proto
		seed  uint64
	}{
		{"star:8", ProtoPush, 3}, {"star:8", ProtoPush, 4},
		{"star:8", ProtoVisitX, 3}, {"star:8", ProtoVisitX, 4},
		{"cycle:6", ProtoPush, 3}, {"cycle:6", ProtoPush, 4},
		{"cycle:6", ProtoVisitX, 3}, {"cycle:6", ProtoVisitX, 4},
	}
	for i, pt := range points {
		if pt.Spec.Graph != want[i].graph || pt.Spec.Protocol != want[i].proto || pt.Spec.Seed != want[i].seed {
			t.Fatalf("point %d = %s/%s/%d, want %s/%s/%d",
				i, pt.Spec.Graph, pt.Spec.Protocol, pt.Spec.Seed,
				want[i].graph, want[i].proto, want[i].seed)
		}
	}
	// Vertex-only points must have agent knobs zeroed by normalization.
	if points[0].Spec.Alpha != 0 || points[0].Spec.Lazy != "" {
		t.Fatalf("push point not normalized: %+v", points[0].Spec)
	}
}

// TestSweepExpandDefaultsAxes: empty protocol/seed axes inherit the
// defaults, so the cross-product never collapses to zero on them.
func TestSweepExpandDefaultsAxes(t *testing.T) {
	d := DefaultRunSpec()
	d.Protocol = ProtoMeetX
	d.Seed = 77
	sw := Sweep{Defaults: d, Graphs: []string{"star:4"}}
	if g, p, s := sw.Dims(); g != 1 || p != 1 || s != 1 {
		t.Fatalf("Dims = %d,%d,%d, want 1,1,1", g, p, s)
	}
	points, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Spec.Protocol != ProtoMeetX || points[0].Spec.Seed != 77 {
		t.Fatalf("defaulted point = %+v", points)
	}
}

// TestSweepExpandBadPoint: an invalid point rejects the sweep with a
// typed error naming the offending axis values.
func TestSweepExpandBadPoint(t *testing.T) {
	sw := Sweep{
		Defaults: DefaultRunSpec(),
		Graphs:   []string{"star:8", "nope:1"},
		Seeds:    []uint64{9},
	}
	_, err := sw.Expand()
	var pe *SweepPointError
	if !errors.As(err, &pe) {
		t.Fatalf("Expand error = %v, want *SweepPointError", err)
	}
	if pe.Graph != "nope:1" || pe.Seed != 9 {
		t.Fatalf("offending point = %q/%d, want nope:1/9", pe.Graph, pe.Seed)
	}
}

// TestCanonicalJSONStable: equal normalized specs encode to identical
// bytes, different specs to different bytes — the identity the serving
// layer's store keys on.
func TestCanonicalJSONStable(t *testing.T) {
	a, err := RunSpec{Graph: "STAR:8", Protocol: ProtoPush, Trials: 2, Seed: 1, Source: -5}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec{Graph: "star:8", Protocol: ProtoPush, Trials: 2, Seed: 1, Source: -1, Alpha: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.CanonicalJSON(), b.CanonicalJSON()) {
		t.Fatalf("equivalent specs encode differently:\n%s\n%s", a.CanonicalJSON(), b.CanonicalJSON())
	}
	c := a
	c.Seed = 2
	if bytes.Equal(a.CanonicalJSON(), c.CanonicalJSON()) {
		t.Fatal("distinct specs share an encoding")
	}
}
