package experiment

import (
	"fmt"
	"math"

	"rumor/internal/core"
	"rumor/internal/walkstats"
	"rumor/internal/xrand"
)

func init() {
	register(Spec{
		ID:       "meeting-bound",
		Title:    "Meet-exchange vs the meeting-time bound of Dimitriou et al. [16]",
		PaperRef: "Section 2 (related work: T_meetx = O(meeting time · log n))",
		Run:      runMeetingBound,
	})
}

// runMeetingBound checks the earliest known bound on meet-exchange: the
// broadcast time is at most O(log n) times the pairwise meeting time of two
// stationary walks [16]. With |A| = n agents the broadcast time should sit
// far *below* t_meet·log n (many pairs try to meet in parallel), so the
// normalized ratio T_meetx/(t_meet·ln n) must be bounded — and visibly
// below 1 on the regular suite.
func runMeetingBound(cfg Config) (*Table, error) {
	cases, err := regularSuite(cfg)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(10)
	tab := &Table{
		ID:       "meeting-bound",
		Title:    "Meet-exchange vs the meeting-time bound of Dimitriou et al. [16]",
		PaperRef: "Section 2 (related work: T_meetx = O(meeting time · log n))",
		Headers: []string{
			"graph", "n", "pairwise meeting time", "T_meetx (rounds)",
			"T_meetx / (t_meet · ln n)",
		},
	}
	worst := 0.0
	for i, c := range cases {
		meet, err := walkstats.EstimateMeetingTime(c.g, trials, xrand.Derive(cfg.Seed, 3000+i))
		if err != nil {
			return nil, err
		}
		meetx, err := Measure(ProtoMeetX, c.g, 0, core.AgentOptions{}, trials, cfg.Seed+uint64(5000+i))
		if err != nil {
			return nil, err
		}
		norm := meetx.Summary.Mean / (meet.Mean * math.Log(float64(c.g.N())))
		if norm > worst {
			worst = norm
		}
		tab.AddRow(
			c.name, fmt.Sprintf("%d", c.g.N()),
			fmt.Sprintf("%.1f ± %.1f", meet.Mean, meet.CI95),
			fmtMean(meetx.Summary),
			fmt.Sprintf("%.3f", norm),
		)
	}
	verdict := "OK (broadcast well inside the [16] bound; n agents beat the two-walk bound comfortably)"
	if worst > 1 {
		verdict = "CHECK (normalized ratio above 1)"
	}
	tab.AddNote("worst normalized ratio %.3f — %s", worst, verdict)
	tab.AddNote("meeting time measured between two stationary-started walks (lazy on bipartite graphs); %d trials per point", trials)
	return tab, nil
}
