package experiment

import (
	"fmt"

	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func init() {
	register(Spec{
		ID:       "social",
		Title:    "Push-pull vs push on preferential-attachment (social-network) graphs",
		PaperRef: "Section 1 (citing Chierichetti et al. [12] and Doerr, Fouz & Friedrich [17])",
		Run:      runSocial,
	})
}

// runSocial reproduces the observation the paper's introduction cites: on
// social-network models (preferential attachment), push-pull is
// dramatically faster than push, because pulls through hubs shortcut the
// low-degree periphery that push must coupon-collect. It also situates the
// agent protocols on the same topology.
func runSocial(cfg Config) (*Table, error) {
	sizes := []int{512, 1024, 2048, 4096}
	mAttach := 4
	if cfg.Scale == ScaleSmall {
		sizes = []int{128, 256}
	}
	trials := cfg.trials(10)
	tab := &Table{
		ID:       "social",
		Title:    "Push-pull vs push on preferential-attachment (social-network) graphs",
		PaperRef: "Section 1 (citing Chierichetti et al. [12] and Doerr, Fouz & Friedrich [17])",
		Headers: []string{
			"n", "max deg", "T_push (rounds)", "T_push-pull (rounds)",
			"push / push-pull", "T_visitx (rounds)", "T_meetx (rounds)",
		},
	}
	rng := xrand.New(xrand.Derive(cfg.Seed, 60001))
	var ns, pushMeans, ppullMeans []float64
	minGap := 1e18
	for i, n := range sizes {
		g, err := graph.BarabasiAlbert(n, mAttach, rng)
		if err != nil {
			return nil, err
		}
		// Source: the last-added vertex — a typical low-degree "user".
		src := graph.Vertex(g.N() - 1)
		push, err := Measure(ProtoPush, g, src, core.AgentOptions{}, trials, cfg.Seed+uint64(4*i))
		if err != nil {
			return nil, err
		}
		ppull, err := Measure(ProtoPPull, g, src, core.AgentOptions{}, trials, cfg.Seed+uint64(4*i+1))
		if err != nil {
			return nil, err
		}
		visitx, err := Measure(ProtoVisitX, g, src, core.AgentOptions{}, trials, cfg.Seed+uint64(4*i+2))
		if err != nil {
			return nil, err
		}
		meetx, err := Measure(ProtoMeetX, g, src, core.AgentOptions{}, trials, cfg.Seed+uint64(4*i+3))
		if err != nil {
			return nil, err
		}
		gap := push.Summary.Mean / ppull.Summary.Mean
		if gap < minGap {
			minGap = gap
		}
		ns = append(ns, float64(n))
		pushMeans = append(pushMeans, push.Summary.Mean)
		ppullMeans = append(ppullMeans, ppull.Summary.Mean)
		tab.AddRow(
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", g.MaxDegree()),
			fmtMean(push.Summary), fmtMean(ppull.Summary), fmt.Sprintf("%.1f", gap),
			fmtMean(visitx.Summary), fmtMean(meetx.Summary),
		)
	}
	verdict := "OK (push-pull far faster than push on the social-network model, as [12, 17] prove)"
	if minGap < 3 {
		verdict = "CHECK (gap below 3x)"
	}
	tab.AddNote("minimum push/push-pull gap %.1fx, growing with n — %s", minGap, verdict)
	if len(ns) >= 2 {
		// Both protocols are polylogarithmic on preferential-attachment
		// graphs (constant conductance); the separation [17] proves is
		// Θ(log n) push vs Θ(log n / log log n) push-pull, visible here as
		// the widening constant-factor gap rather than a shape difference.
		tab.AddNote("push: %s", shapeVerdict(ns, pushMeans, "log n", "n^1/3", "sqrt n"))
		tab.AddNote("push-pull: %s", shapeVerdict(ns, ppullMeans, "log n", "1"))
	}
	tab.AddNote("preferential attachment with m = %d, source = last-attached (low-degree) vertex; %d trials", mAttach, trials)
	tab.AddNote("hubs make pulls decisive: the periphery reaches everything through them in O(log n/log log n) [17], while push pays the full Θ(log n); agents pay for thin peripheral bandwidth")
	return tab, nil
}
