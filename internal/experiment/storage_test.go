package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rumor/internal/graph"
	"rumor/internal/lru"
	"rumor/internal/xrand"
)

// TestGraphCacheByteCostMixedSizes is the regression for the old
// entry-count-only bound: one paper-scale graph among many tiny ones must
// be displaced by byte pressure long before the slot count fills, and
// mmap-backed graphs must be priced as nearly free.
func TestGraphCacheByteCostMixedSizes(t *testing.T) {
	c := lru.New[string, *graph.Graph](graphCacheCap)
	// A small budget so the test stays fast: room for the tiny graphs or
	// the big one, not both.
	big := graph.Complete(600) // ~1.4 MB CSR
	budget := big.MemoryCost() + 4*graph.Path(8).MemoryCost()
	c.SetCost(budget, func(_ string, g *graph.Graph) int64 { return g.MemoryCost() })

	c.Put("big", big)
	for i := 0; i < 16; i++ {
		c.Put(fmt.Sprintf("small/%d", i), graph.Path(8))
	}
	if _, ok := c.Get("big"); ok {
		t.Fatal("big graph survived byte pressure from small inserts (entry-count-only eviction)")
	}
	if c.Len() != 16 {
		// Evicting the big graph must have been enough: all 16 tiny
		// graphs fit the budget together.
		t.Fatalf("len = %d, want all 16 small graphs resident", c.Len())
	}

	// An mmap-backed copy of the same big graph costs ~a page, so it
	// coexists with the small working set under the same budget.
	dir := t.TempDir()
	path := filepath.Join(dir, "big.csr")
	if err := graph.WriteCSRFile(big, path); err != nil {
		t.Fatal(err)
	}
	mapped, err := graph.OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.MmapBacked() {
		t.Skip("no mmap on this platform")
	}
	c.Put("big-mapped", mapped)
	for i := 0; i < 16; i++ {
		c.Put(fmt.Sprintf("small2/%d", i), graph.Path(8))
	}
	if _, ok := c.Get("big-mapped"); !ok {
		t.Fatal("mmap-backed graph evicted despite costing almost nothing")
	}
}

// TestSpilledGraphReplaysByteIdentical is the out-of-core correctness
// seam: a fixed-seed run on a store-spilled, mmap-reopened graph must be
// result-identical to the same run on the heap-built graph — and must
// stay identical when the file is reopened again, the restart path.
func TestSpilledGraphReplaysByteIdentical(t *testing.T) {
	dir := t.TempDir()
	defer func() {
		if err := ConfigureGraphStorage("", 0); err != nil {
			t.Fatal(err)
		}
	}()

	spec := DefaultRunSpec()
	spec.Graph = "heavytree:10"
	spec.Protocol = ProtoVisitX
	spec.Trials = 4
	spec.Seed = 7
	spec, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: heap-built graph, no store.
	if err := ConfigureGraphStorage("", 0); err != nil {
		t.Fatal(err)
	}
	graphCache.Delete("heavytree:10")
	want, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Spill everything (threshold 1 byte), evicting the cached instance so
	// the store path actually runs, and compare results.
	if err := ConfigureGraphStorage(filepath.Join(dir, "graphs"), 1); err != nil {
		t.Fatal(err)
	}
	graphCache.Delete("heavytree:10")
	got, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("results differ between heap-built and spilled graph")
	}
	g, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.MmapBacked() {
		t.Skip("no mmap on this platform")
	}

	// "Restart": drop the cached instance so the graph is reopened from
	// the existing file (the builder must not run), and replay again.
	graphCache.Delete("heavytree:10")
	again, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, again) {
		t.Fatal("results differ after reopening the spilled graph")
	}
}

// TestSpilledRandomGraphReplaysByteIdentical extends the out-of-core seam
// to seeded random families: the realization spills under its
// graph.SeededKey (spec + sampler seed + sampler version), reopens
// mmap-backed, and a fixed-seed sweep replays result-identically — the
// property that makes caching a *random* graph sound at all.
func TestSpilledRandomGraphReplaysByteIdentical(t *testing.T) {
	dir := t.TempDir()
	defer func() {
		if err := ConfigureGraphStorage("", 0); err != nil {
			t.Fatal(err)
		}
	}()

	spec := DefaultRunSpec()
	spec.Graph = "randreg:96,4"
	spec.Protocol = ProtoPush
	spec.Trials = 4
	spec.Seed = 11
	spec, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	p, err := graph.ParseSpec(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	samplerSeed := xrand.New(xrand.Derive(spec.GraphSeed, graphSeedLane)).Uint64()
	key := graph.SeededKey(p.Canonical(), samplerSeed)

	// Reference: heap-built realization, no store.
	if err := ConfigureGraphStorage("", 0); err != nil {
		t.Fatal(err)
	}
	graphCache.Delete(key)
	want, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Spill (threshold 1 byte) and compare.
	if err := ConfigureGraphStorage(filepath.Join(dir, "graphs"), 1); err != nil {
		t.Fatal(err)
	}
	graphCache.Delete(key)
	got, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("results differ between heap-built and spilled random realization")
	}
	g, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.MmapBacked() {
		t.Skip("no mmap on this platform")
	}

	// "Restart": evict, reopen from the spill file (the sampler must not
	// rerun — the file is keyed by seed), and replay again.
	graphCache.Delete(key)
	again, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, again) {
		t.Fatal("results differ after reopening the spilled random realization")
	}

	// A different experiment seed derives a different sampler seed and so a
	// different spill file: both realizations coexist in the store.
	spec2 := spec
	spec2.Seed = 12
	spec2.GraphSeed = 0
	spec2, err = spec2.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	samplerSeed2 := xrand.New(xrand.Derive(spec2.GraphSeed, graphSeedLane)).Uint64()
	if samplerSeed2 == samplerSeed {
		t.Fatal("distinct graph seeds derived one sampler seed")
	}
	if _, err := spec2.Run(nil); err != nil {
		t.Fatal(err)
	}
	st := graphStore.Load()
	if st == nil {
		t.Fatal("store not configured")
	}
	pathA := st.Path(key)
	pathB := st.Path(graph.SeededKey(p.Canonical(), samplerSeed2))
	if pathA == pathB {
		t.Fatal("distinct sampler seeds mapped to one spill file")
	}
	for _, f := range []string{pathA, pathB} {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("missing spill file: %v", err)
		}
	}
}

// TestConfigureGraphStorageErrors: an unusable directory is reported, and
// an empty dir disables the store.
func TestConfigureGraphStorageErrors(t *testing.T) {
	f := filepath.Join(t.TempDir(), "file")
	if err := graph.WriteCSRFile(graph.Path(3), f); err != nil {
		t.Fatal(err)
	}
	if err := ConfigureGraphStorage(filepath.Join(f, "graphs"), 1); err == nil {
		t.Fatal("store configured under a regular file")
	}
	if err := ConfigureGraphStorage("", 0); err != nil {
		t.Fatal(err)
	}
	if graphStore.Load() != nil {
		t.Fatal("store still active after disable")
	}
}
