package experiment

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/stats"
	"rumor/internal/xrand"
)

func newTestRNG() *xrand.RNG { return xrand.New(1) }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1a-star", "fig1b-doublestar", "fig1c-heavytree", "fig1d-siamese",
		"fig1e-cyclestars", "thm1-regular", "thm23-meetx", "lb-log",
		"social", "fairness", "hybrid", "multirumor", "async", "meeting-bound", "ablations",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a nonexistent experiment")
	}
}

func TestSpecsHaveMetadata(t *testing.T) {
	for _, s := range All() {
		if s.ID == "" || s.Title == "" || s.PaperRef == "" || s.Run == nil {
			t.Errorf("spec %+v missing metadata", s.ID)
		}
	}
}

// TestAllExperimentsRunAtSmallScale executes the entire registry at small
// scale: every experiment must produce a well-formed table without errors.
// This is the main integration test of the reproduction harness.
func TestAllExperimentsRunAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps skipped in -short mode")
	}
	for _, s := range All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			t.Parallel()
			tab, err := s.Run(Config{Seed: 7, Scale: ScaleSmall, Trials: 2})
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != s.ID {
				t.Errorf("table ID %q != spec ID %q", tab.ID, s.ID)
			}
			if len(tab.Rows) == 0 {
				t.Error("table has no rows")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Headers) {
					t.Errorf("row width %d != header width %d", len(row), len(tab.Headers))
				}
			}
			if len(tab.Notes) == 0 {
				t.Error("table has no notes (verdicts expected)")
			}
			md := tab.Markdown()
			if !strings.Contains(md, s.ID) || !strings.Contains(md, "|") {
				t.Error("markdown rendering looks wrong")
			}
			csv := tab.CSV()
			if lines := strings.Count(csv, "\n"); lines != len(tab.Rows)+1 {
				t.Errorf("CSV has %d lines, want %d", lines, len(tab.Rows)+1)
			}
		})
	}
}

func TestTableAddRowPanicsOnWidthMismatch(t *testing.T) {
	tab := &Table{ID: "t", Headers: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on row width mismatch")
		}
	}()
	tab.AddRow("only one")
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{ID: "t", Headers: []string{"x", "y"}}
	tab.AddRow(`has,comma`, `has"quote`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"has,comma"`) || !strings.Contains(csv, `"has""quote"`) {
		t.Errorf("CSV quoting wrong:\n%s", csv)
	}
}

func TestBuildProcessAllProtos(t *testing.T) {
	g := graph.Complete(8)
	for _, p := range Protos() {
		proc, err := BuildProcess(p, g, 0, newTestRNG(), core.AgentOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if proc.Name() == "" {
			t.Errorf("%s: empty name", p)
		}
	}
	if _, err := BuildProcess("bogus", g, 0, newTestRNG(), core.AgentOptions{}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestMeasureRejectsIncompleteRuns(t *testing.T) {
	// Opposite-parity meet-exchange on a star with forced non-lazy walks
	// cannot complete; Measure must report the failure. Use a tiny graph and
	// explicit options via BuildProcess equivalence: Measure always uses the
	// given agent options.
	g := graph.Star(4)
	_, err := Measure(ProtoMeetX, g, 0, core.AgentOptions{Lazy: core.LazyOff, Count: 8}, 2, 3)
	if err == nil {
		t.Skip("non-lazy meetx happened to complete (agents all same parity); acceptable")
	}
}

func TestMeasureDeterministic(t *testing.T) {
	g := graph.Complete(16)
	a, err := Measure(ProtoPush, g, 0, core.AgentOptions{}, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(ProtoPush, g, 0, core.AgentOptions{}, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Mean != b.Summary.Mean || a.Summary.Max != b.Summary.Max {
		t.Error("Measure not deterministic for fixed seed")
	}
}

func TestConfigTrials(t *testing.T) {
	if got := (Config{Trials: 5}).trials(10); got != 5 {
		t.Errorf("override trials = %d", got)
	}
	if got := (Config{}).trials(10); got != 10 {
		t.Errorf("default trials = %d", got)
	}
	if got := (Config{Scale: ScaleSmall}).trials(10); got != 3 {
		t.Errorf("small-scale trials = %d", got)
	}
}

func TestShapeVerdictFormats(t *testing.T) {
	ns := []float64{128, 256, 512, 1024}
	logs := make([]float64, len(ns))
	for i, n := range ns {
		logs[i] = 3 * math.Log(n)
	}
	v := shapeVerdict(ns, logs, "log n")
	if !strings.Contains(v, "OK") {
		t.Errorf("verdict for clean log n data: %q", v)
	}
	v = shapeVerdict(ns, ns, "log n")
	if !strings.Contains(v, "CHECK") {
		t.Errorf("verdict for linear data vs log n expectation: %q", v)
	}
}

// TestCachedGraphBuildsOnce: concurrent first requests for one key must
// run the builder exactly once and share the instance — the per-key
// sync.Once contract (two goroutines racing LoadOrStore used to both pay
// a paper-scale construction).
func TestCachedGraphBuildsOnce(t *testing.T) {
	var builds atomic.Int32
	const workers = 16
	got := make([]*graph.Graph, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = cachedGraph("test/builds-once", func() *graph.Graph {
				builds.Add(1)
				return graph.Hypercube(6)
			})
		}(w)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("builder ran %d times, want 1", n)
	}
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Errorf("worker %d received a different instance", w)
		}
	}
}

// TestMeasureBatchedMatchesSerial: Measure's automatic batched routing for
// the agent protocols must not change any published number — the summary
// over batched trials equals the summary over serial RunMany trials.
func TestMeasureBatchedMatchesSerial(t *testing.T) {
	g := graph.Star(301)
	for _, p := range []Proto{ProtoVisitX, ProtoMeetX} {
		m, err := Measure(p, g, 0, core.AgentOptions{}, 7, 99)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := core.RunMany(g, func(rng *xrand.RNG) (core.Process, error) {
			return BuildProcess(p, g, 0, rng, core.AgentOptions{})
		}, 7, 0, 99)
		if err != nil {
			t.Fatal(err)
		}
		rounds := make([]float64, len(serial))
		for i, r := range serial {
			rounds[i] = float64(r.Rounds)
		}
		want := stats.Summarize(rounds)
		if m.Summary != want {
			t.Errorf("%s: batched summary %+v != serial %+v", p, m.Summary, want)
		}
	}
}
