package experiment

import (
	"fmt"
	"sort"
	"sync/atomic"

	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/lru"
	"rumor/internal/stats"
	"rumor/internal/xrand"
)

// Scale selects the sweep size. Full is what EXPERIMENTS.md reports; Small
// keeps unit tests and benchmarks fast while exercising the same code.
type Scale int

const (
	// ScaleFull runs the paper-scale sweep.
	ScaleFull Scale = iota
	// ScaleSmall runs a reduced sweep for tests and quick benchmarks.
	ScaleSmall
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed drives all randomness; identical configs reproduce identical
	// tables.
	Seed uint64
	// Trials overrides the per-experiment default when positive.
	Trials int
	// Scale selects full (paper) or small (test) sweeps.
	Scale Scale
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Scale == ScaleSmall && def > 3 {
		return 3
	}
	return def
}

// Spec is one registered experiment.
type Spec struct {
	ID       string
	Title    string
	PaperRef string
	Run      func(cfg Config) (*Table, error)
}

// Proto names a protocol for harness-level construction.
type Proto string

// Protocol names accepted by the harness and the CLI.
const (
	ProtoPush   Proto = "push"
	ProtoPPull  Proto = "push-pull"
	ProtoVisitX Proto = "visitx"
	ProtoMeetX  Proto = "meetx"
	ProtoHybrid Proto = "hybrid"
)

// Protos lists all protocol names.
func Protos() []Proto {
	return []Proto{ProtoPush, ProtoPPull, ProtoVisitX, ProtoMeetX, ProtoHybrid}
}

// BuildProcess constructs a protocol instance by name.
func BuildProcess(p Proto, g *graph.Graph, src graph.Vertex, rng *xrand.RNG, agentOpts core.AgentOptions) (core.Process, error) {
	switch p {
	case ProtoPush:
		return core.NewPush(g, src, rng, core.PushOptions{})
	case ProtoPPull:
		return core.NewPushPull(g, src, rng, core.PushPullOptions{})
	case ProtoVisitX:
		return core.NewVisitExchange(g, src, rng, agentOpts)
	case ProtoMeetX:
		return core.NewMeetExchange(g, src, rng, agentOpts)
	case ProtoHybrid:
		return core.NewHybrid(g, src, rng, agentOpts)
	default:
		return nil, fmt.Errorf("experiment: unknown protocol %q", p)
	}
}

// Measurement is the distribution of broadcast times of one protocol on one
// graph.
type Measurement struct {
	Proto   Proto
	N       int // graph size
	Summary stats.Summary
}

// Measure runs `trials` independent trials of protocol p on g from src and
// summarizes the broadcast times. Incomplete runs are an error: every
// experiment in this repository is expected to complete within the default
// round budget.
//
// Every protocol runs on the unified lane engine (core.RunManyLanes):
// fused multi-lane bundles at the adaptive bundle width for standard
// configurations, serial processes as K = 1 lanes when the configuration
// needs them (observers; churn for the agent protocols). Bundle width
// never changes results — the engines are bit-identical per trial (see
// core's lane-equivalence tests) — so batching is purely a throughput
// decision.
func Measure(p Proto, g *graph.Graph, src graph.Vertex, agentOpts core.AgentOptions, trials int, seed uint64) (Measurement, error) {
	results, err := runTrials(p, g, src, agentOpts, trials, 0, seed, nil)
	if err != nil {
		return Measurement{}, err
	}
	rounds := make([]float64, len(results))
	for i, r := range results {
		if !r.Completed {
			return Measurement{}, fmt.Errorf("experiment: %s on %s trial %d incomplete after %d rounds",
				p, g.Name(), i, r.Rounds)
		}
		rounds[i] = float64(r.Rounds)
	}
	return Measurement{Proto: p, N: g.N(), Summary: stats.Summarize(rounds)}, nil
}

// runTrials dispatches a protocol sweep to the unified lane engine: every
// protocol has a fused multi-lane bundle, run at the adaptive bundle width
// (core.AdaptiveBatchK picks K from trials, graph size, and GOMAXPROCS);
// configurations the bundles cannot express fall back to serial processes
// on the K = 1 lane path. Bundle width produces bit-identical results (see
// core's lane-equivalence tests); batching is purely a throughput
// decision. emit, when non-nil, receives each trial's Result in strict
// trial order as trials complete.
func runTrials(p Proto, g *graph.Graph, src graph.Vertex, agentOpts core.AgentOptions, trials, maxRounds int, seed uint64, emit core.EmitFunc) ([]core.Result, error) {
	if factory := laneFactory(p, g, src, agentOpts); factory != nil {
		return core.RunManyLanes(g, factory, trials, maxRounds, seed, core.AdaptiveBatchK(g, trials), emit)
	}
	return core.RunManyEmit(g, func(rng *xrand.RNG) (core.Process, error) {
		return BuildProcess(p, g, src, rng, agentOpts)
	}, trials, maxRounds, seed, emit)
}

// laneFactory returns the fused-bundle constructor for p, or nil when the
// configuration requires the serial path (observers force serial
// everywhere; churn is only meaningful — and only serial — for the agent
// protocols).
func laneFactory(p Proto, g *graph.Graph, src graph.Vertex, agentOpts core.AgentOptions) core.LaneFactory {
	if agentOpts.Observer != nil {
		return nil
	}
	switch p {
	case ProtoPush:
		return func(rngs []*xrand.RNG) (core.LaneProcess, error) {
			return core.NewBatchedPush(g, src, rngs, core.PushOptions{})
		}
	case ProtoPPull:
		return func(rngs []*xrand.RNG) (core.LaneProcess, error) {
			return core.NewBatchedPushPull(g, src, rngs, core.PushPullOptions{})
		}
	}
	if agentOpts.ChurnRate != 0 {
		return nil
	}
	switch p {
	case ProtoVisitX:
		return func(rngs []*xrand.RNG) (core.LaneProcess, error) {
			return core.NewBatchedVisitExchange(g, src, rngs, agentOpts)
		}
	case ProtoMeetX:
		return func(rngs []*xrand.RNG) (core.LaneProcess, error) {
			return core.NewBatchedMeetExchange(g, src, rngs, agentOpts)
		}
	case ProtoHybrid:
		return func(rngs []*xrand.RNG) (core.LaneProcess, error) {
			return core.NewBatchedHybrid(g, src, rngs, agentOpts)
		}
	}
	return nil
}

// fmtMean renders "mean ± ci95".
func fmtMean(s stats.Summary) string {
	return fmt.Sprintf("%.1f ± %.1f", s.Mean, s.CI95)
}

// shapeVerdict fits the measured means against the candidate shape
// dictionary — both pure c·f(n) and affine c0+c1·f(n) fits, the latter
// absorbing the lower-order terms that dominate at laptop-scale n — and
// reports whether either best fit matches an accepted shape.
func shapeVerdict(ns, means []float64, accepted ...string) string {
	pure := stats.FitShape(ns, means)[0]
	affineName := "-"
	match := ""
	for _, a := range accepted {
		if pure.Shape == a {
			match = pure.Shape
			break
		}
	}
	if len(ns) >= 3 {
		if affine := stats.FitShapeAffine(ns, means); len(affine) > 0 {
			affineName = affine[0].Shape
			if match == "" {
				for _, a := range accepted {
					if affine[0].Shape == a {
						match = affine[0].Shape
						break
					}
				}
			}
		}
	}
	if match != "" {
		return fmt.Sprintf("fits %s (pure %s, affine %s; expected %s) — OK",
			match, pure.Shape, affineName, accepted[0])
	}
	return fmt.Sprintf("fits %s pure / %s affine (expected one of %v) — CHECK",
		pure.Shape, affineName, accepted)
}

// graphCacheCap bounds the graph memoization: a paper-scale sweep touches
// a few dozen (family, parameter) points, and the serving layer replays
// arbitrary request mixes against the same cache, so the bound keeps a
// long-running process from accumulating every graph it ever built. The
// LRU preserves the earlier sync.Map design's guarantee that concurrent
// first requests for one key build the graph exactly once (per residency:
// an evicted key rebuilds on next use).
const graphCacheCap = 64

// graphCacheBytes bounds the *bytes* the memoized graphs pin, not just
// their count: 64 slots of star:256 is a few megabytes, 64 slots of
// paper-scale heavy trees is tens of gigabytes. Entries are priced by
// Graph.MemoryCost, which charges heap-resident CSR arrays and the packed
// walk index but only page-table noise for mmap-backed graphs — their
// arrays live in reclaimable file cache, so a spilled giant costs the
// cache almost nothing and does not displace the working set.
const graphCacheBytes = 2 << 30

// graphCache memoizes experiment graphs. Graphs are immutable and their
// hot-path caches (packed walk index, stationary alias table) hang off the
// instance, so sharing one instance per (family, parameter) across sweeps,
// trials, and repeated experiment runs amortizes both construction and
// cache building. Deterministic graphs key on the canonical spec alone;
// random realizations key on graph.SeededKey — canonical spec + sampler
// seed + sampler version — which the replayable edge-stream samplers
// make a complete identity (same key, byte-identical CSR).
//
// Eviction never unmaps or frees a graph eagerly: concurrent trials may
// still hold it, so eviction only drops the cache's reference and the
// graph (plus any mmap backing, via its runtime cleanup) is collected
// once the last trial finishes.
var graphCache = func() *lru.Cache[string, *graph.Graph] {
	c := lru.New[string, *graph.Graph](graphCacheCap)
	c.SetCost(graphCacheBytes, func(_ string, g *graph.Graph) int64 {
		return g.MemoryCost()
	})
	return c
}()

// graphStore, when configured, spills giant deterministic graphs to a
// content-addressed directory and reopens them mmap-backed (see
// ConfigureGraphStorage).
var graphStore atomic.Pointer[graph.Store]

// Graph-memo observability: calls and builds through buildDeterministic.
// Plain atomics with an accessor — the serving layer registers them as
// func-backed metrics without this package importing a metrics registry.
var (
	graphMemoCalls  atomic.Int64
	graphMemoBuilds atomic.Int64
)

// GraphMemoStats reports the deterministic-graph memo's lifetime
// counters: lookups, builds actually invoked (misses), and LRU
// evictions. Hits are calls − builds.
func GraphMemoStats() (calls, builds, evictions int64) {
	return graphMemoCalls.Load(), graphMemoBuilds.Load(), graphCache.Evictions()
}

// ConfigureGraphStorage routes deterministic graphs through an on-disk
// content-addressed store rooted at dir (conventionally <data-dir>/graphs,
// next to the serve layer's result spill): graphs whose CSR is at least
// thresholdBytes are encoded once and reopened read-only via mmap, in this
// process and across restarts. thresholdBytes <= 0 keeps every build
// heap-resident while still reopening previously spilled files. Call
// before serving traffic; passing an empty dir disables the store.
func ConfigureGraphStorage(dir string, thresholdBytes int64) error {
	if dir == "" {
		graphStore.Store(nil)
		return nil
	}
	st, err := graph.NewStore(dir, thresholdBytes)
	if err != nil {
		return err
	}
	graphStore.Store(st)
	return nil
}

// buildDeterministic memoizes a deterministic graph, routing the build
// through the spill store when one is configured. The LRU continues to
// guarantee one build per key per residency; the store additionally makes
// rebuilds after eviction (or restart) a file open instead of a
// construction.
func buildDeterministic(key string, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	graphMemoCalls.Add(1)
	return graphCache.GetOrBuildErr(key, func() (*graph.Graph, error) {
		graphMemoBuilds.Add(1)
		if st := graphStore.Load(); st != nil {
			return st.GetOrBuild(key, build)
		}
		return build()
	})
}

// buildRandom memoizes one realization of a random-family spec, keyed by
// (canonical spec, sampler seed, sampler version) via graph.SeededKey.
// The seeded samplers are replayable — the key pins the exact CSR bytes —
// so realizations ride the same memo and spill tiers as deterministic
// graphs: repeated sweeps over the same (spec, graphSeed) stop
// re-sampling, and giant realizations spill once and reopen mmap-backed.
func buildRandom(p graph.ParsedSpec, samplerSeed uint64) (*graph.Graph, error) {
	key := graph.SeededKey(p.Canonical(), samplerSeed)
	graphMemoCalls.Add(1)
	return graphCache.GetOrBuildErr(key, func() (*graph.Graph, error) {
		graphMemoBuilds.Add(1)
		if st := graphStore.Load(); st != nil {
			return st.GetOrBuild(key, func() (*graph.Graph, error) {
				return p.BuildSeeded(samplerSeed)
			})
		}
		return p.BuildSeeded(samplerSeed)
	})
}

// cachedGraph returns the memoized graph for key, building it exactly once
// on first use (concurrent first callers share one build). Use only for
// deterministic (parameter-only) generators.
func cachedGraph(key string, build func() *graph.Graph) *graph.Graph {
	g, err := buildDeterministic(key, func() (*graph.Graph, error) { return build(), nil })
	if err != nil {
		// Unreachable: the builder above cannot fail.
		panic(err)
	}
	return g
}

// sourceOr returns the named landmark, falling back to vertex 0.
func sourceOr(g *graph.Graph, landmark string) graph.Vertex {
	if v, ok := g.Landmark(landmark); ok {
		return v
	}
	return 0
}

// registry of all experiments. Registration happens in init() functions
// whose order follows file names, so All() re-sorts into presentation
// order (Fig. 1 families, then theorems, then extensions).
var registry []Spec

// presentationOrder fixes how experiments appear in EXPERIMENTS.md and
// -list output; unknown ids sort last in registration order.
var presentationOrder = []string{
	"fig1a-star", "fig1b-doublestar", "fig1c-heavytree", "fig1d-siamese",
	"fig1e-cyclestars", "thm1-regular", "thm23-meetx", "lb-log",
	"social", "fairness", "hybrid", "multirumor", "async", "meeting-bound", "ablations",
}

func register(s Spec) { registry = append(registry, s) }

func orderIndex(id string) int {
	for i, o := range presentationOrder {
		if o == id {
			return i
		}
	}
	return len(presentationOrder)
}

// All returns every registered experiment in presentation order.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		return orderIndex(out[i].ID) < orderIndex(out[j].ID)
	})
	return out
}

// ByID finds an experiment by ID.
func ByID(id string) (Spec, bool) {
	for _, s := range registry {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}
