package experiment

import (
	"fmt"

	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/trace"
	"rumor/internal/xrand"
)

func init() {
	register(Spec{
		ID:       "fairness",
		Title:    "Bandwidth fairness on the double star: agents use every edge at the same rate; push-pull starves the bridge",
		PaperRef: "Section 1 (local fairness discussion), Lemma 3",
		Run:      runFairness,
	})
}

// runFairness quantifies the paper's Section 1 explanation for the double
// star separation: agent random walks use every edge at the same expected
// rate (2|A|/2|E| crossings per round), while push-pull selects the
// center-center bridge only with probability Θ(1/n) per round. Both
// protocols run for a fixed window so the rates are directly comparable.
func runFairness(cfg Config) (*Table, error) {
	sizes := []int{256, 1024}
	window := 300
	if cfg.Scale == ScaleSmall {
		sizes = []int{64}
		window = 150
	}
	tab := &Table{
		ID:       "fairness",
		Title:    "Bandwidth fairness on the double star: agents use every edge at the same rate; push-pull starves the bridge",
		PaperRef: "Section 1 (local fairness discussion), Lemma 3",
		Headers: []string{
			"leaves/star", "protocol", "bridge crossings/round",
			"min/mean edge use", "Gini", "messages/round",
		},
	}
	for i, leaves := range sizes {
		g := graph.DoubleStar(leaves)
		a, _ := g.Landmark("centerA")
		b, _ := g.Landmark("centerB")

		for _, p := range []Proto{ProtoPPull, ProtoVisitX} {
			usage := trace.NewEdgeUsage(g)
			rng := xrand.New(xrand.Derive(cfg.Seed, 7000+10*i+len(p)))
			var proc core.Process
			var err error
			switch p {
			case ProtoPPull:
				proc, err = core.NewPushPull(g, a, rng, core.PushPullOptions{Observer: usage.Observe})
			default:
				proc, err = core.NewVisitExchange(g, a, rng, core.AgentOptions{Observer: usage.Observe})
			}
			if err != nil {
				return nil, err
			}
			var msgs int64
			for r := 0; r < window; r++ {
				proc.Step()
			}
			msgs = proc.Messages()
			f := usage.Fairness()
			minOverMean := 0.0
			if f.MeanPerEdge > 0 {
				minOverMean = float64(f.MinPerEdge) / f.MeanPerEdge
			}
			tab.AddRow(
				fmt.Sprintf("%d", leaves), string(p),
				fmt.Sprintf("%.3f", float64(usage.Count(a, b))/float64(window)),
				fmt.Sprintf("%.3f", minOverMean),
				fmt.Sprintf("%.3f", f.Gini),
				fmt.Sprintf("%.0f", float64(msgs)/float64(window)),
			)
		}
	}
	tab.AddNote("fixed %d-round window; agent counts |A| = n", window)
	tab.AddNote("prediction: visit-exchange bridge rate ≈ 2|A|/2|E| = Θ(1) per round and min/mean ≈ 1; push-pull bridge rate ≈ 2/deg(center) = Θ(1/n)")
	tab.AddNote("both protocols send Θ(n) messages per round, so the bandwidth budgets are comparable (Section 1)")
	return tab, nil
}
