package experiment

import (
	"fmt"
	"math"

	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// regularCase is one regular graph in the Theorem 1 / Theorem 23 sweeps.
type regularCase struct {
	name string
	g    *graph.Graph
	d    int
}

// regularSuite builds the regular-graph test bed: hypercubes (degree
// exactly log2 n), random d-regular graphs with d ≈ 2·ln n, and rings of
// cliques (the "slow" regular family where broadcast takes Θ(n/d) rounds).
//
// Every family in the suite is memoized in the experiment graph cache:
// the Theorem 1/23, lower-bound, and meeting-bound experiments all sweep
// this suite, so each instance — and its walk-index/alias caches — is
// built once across all of them. The random-regular graphs are keyed by
// (spec, per-case derived seed) via the replayable seeded sampler
// (cachedRandomRegular), so repeated sweeps at one experiment seed stop
// re-sampling and giant instances ride the spill tier like any other.
func regularSuite(cfg Config) ([]regularCase, error) {
	var cases []regularCase
	dims := []int{7, 8, 9, 10}
	rrSizes := []int{256, 512, 1024, 2048}
	rcSizes := []int{256, 512, 1024, 2048}
	if cfg.Scale == ScaleSmall {
		dims = []int{5, 6}
		rrSizes = []int{64, 128}
		rcSizes = []int{128}
	}
	for _, dim := range dims {
		g := cachedGraph(fmt.Sprintf("hypercube:%d", dim), func() *graph.Graph { return graph.Hypercube(dim) })
		cases = append(cases, regularCase{name: g.Name(), g: g, d: dim})
	}
	for i, n := range rrSizes {
		d := 2 * int(math.Ceil(math.Log(float64(n))))
		if (n*d)%2 == 1 {
			d++
		}
		g, err := cachedRandomRegular(n, d, xrand.Derive(xrand.Derive(cfg.Seed, 90001), i))
		if err != nil {
			return nil, err
		}
		cases = append(cases, regularCase{name: g.Name(), g: g, d: d})
	}
	for _, n := range rcSizes {
		s := 2 * int(math.Ceil(math.Log(float64(n))))
		k := n / s
		if k < 3 {
			k = 3
		}
		g := cachedGraph(fmt.Sprintf("ringcliques:%d,%d", k, s), func() *graph.Graph { return graph.RingOfCliques(k, s) })
		cases = append(cases, regularCase{name: g.Name(), g: g, d: s + 1})
	}
	return cases, nil
}

func init() {
	register(Spec{
		ID:       "thm1-regular",
		Title:    "Theorem 1: T_push ≍ T_visitx on regular graphs with d = Ω(log n)",
		PaperRef: "Theorem 1 (Theorems 10 + 19)",
		Run:      runThm1,
	})
	register(Spec{
		ID:       "thm23-meetx",
		Title:    "Theorem 23: T_meetx ≳ T_visitx on regular graphs (up to an additive O(log n))",
		PaperRef: "Theorem 23",
		Run:      runThm23,
	})
	register(Spec{
		ID:       "lb-log",
		Title:    "Theorems 24/25: Ω(log n) lower bounds for the agent protocols on regular graphs",
		PaperRef: "Theorems 24, 25",
		Run:      runLogLowerBounds,
	})
}

// runThm1 measures T_push and T_visitx across the regular suite and reports
// the ratio band. The paper proves the ratio is Θ(1); the measured band
// should be narrow and, critically, not drift with n — even on the ring of
// cliques where both times are polynomially large.
func runThm1(cfg Config) (*Table, error) {
	cases, err := regularSuite(cfg)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(10)
	tab := &Table{
		ID:       "thm1-regular",
		Title:    "Theorem 1: T_push ≍ T_visitx on regular graphs with d = Ω(log n)",
		PaperRef: "Theorem 1 (Theorems 10 + 19)",
		Headers:  []string{"graph", "n", "d", "T_push (rounds)", "T_visitx (rounds)", "ratio push/visitx"},
	}
	var ratios []float64
	for i, c := range cases {
		push, err := Measure(ProtoPush, c.g, 0, core.AgentOptions{}, trials, cfg.Seed+uint64(2*i))
		if err != nil {
			return nil, err
		}
		visitx, err := Measure(ProtoVisitX, c.g, 0, core.AgentOptions{}, trials, cfg.Seed+uint64(2*i+1))
		if err != nil {
			return nil, err
		}
		ratio := push.Summary.Mean / visitx.Summary.Mean
		ratios = append(ratios, ratio)
		tab.AddRow(
			c.name, fmt.Sprintf("%d", c.g.N()), fmt.Sprintf("%d", c.d),
			fmtMean(push.Summary), fmtMean(visitx.Summary), fmt.Sprintf("%.3f", ratio),
		)
	}
	lo, hi := minMax(ratios)
	spread := hi / lo
	verdict := "OK (constant-factor band)"
	if spread > 6 {
		verdict = "CHECK (band wider than 6x)"
	}
	tab.AddNote("ratio band [%.3f, %.3f], spread %.2fx — %s", lo, hi, spread, verdict)
	tab.AddNote("%d trials per point; |A| = n agents from stationarity; source vertex 0", trials)
	tab.AddNote("families: hypercube (d = log2 n), random regular (d ≈ 2 ln n), ring of cliques (slow: T = Θ(n/d) for both protocols)")
	return tab, nil
}

// runThm23 measures T_visitx and T_meetx across the regular suite. The
// theorem implies T_visitx ≤ T_meetx + O(log n), i.e. the normalized slack
// (T_meetx − T_visitx)/ln n is bounded below by a constant that may be
// slightly negative but must not diverge.
func runThm23(cfg Config) (*Table, error) {
	cases, err := regularSuite(cfg)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(10)
	tab := &Table{
		ID:       "thm23-meetx",
		Title:    "Theorem 23: T_meetx ≳ T_visitx on regular graphs (up to an additive O(log n))",
		PaperRef: "Theorem 23",
		Headers:  []string{"graph", "n", "T_visitx (rounds)", "T_meetx (rounds)", "(meetx − visitx)/ln n"},
	}
	minSlack := math.Inf(1)
	for i, c := range cases {
		visitx, err := Measure(ProtoVisitX, c.g, 0, core.AgentOptions{}, trials, cfg.Seed+uint64(2*i))
		if err != nil {
			return nil, err
		}
		meetx, err := Measure(ProtoMeetX, c.g, 0, core.AgentOptions{}, trials, cfg.Seed+uint64(2*i+1))
		if err != nil {
			return nil, err
		}
		slack := (meetx.Summary.Mean - visitx.Summary.Mean) / math.Log(float64(c.g.N()))
		if slack < minSlack {
			minSlack = slack
		}
		tab.AddRow(
			c.name, fmt.Sprintf("%d", c.g.N()),
			fmtMean(visitx.Summary), fmtMean(meetx.Summary), fmt.Sprintf("%.2f", slack),
		)
	}
	verdict := "OK (visitx never loses by more than an additive O(log n))"
	if minSlack < -3 {
		verdict = "CHECK (slack below -3 ln n)"
	}
	tab.AddNote("minimum normalized slack %.2f — %s", minSlack, verdict)
	tab.AddNote("meet-exchange uses lazy walks on bipartite families (hypercube), as the paper prescribes; laziness roughly doubles its constant")
	tab.AddNote("%d trials per point; |A| = n agents from stationarity", trials)
	return tab, nil
}

// runLogLowerBounds checks Theorems 24/25: even the *fastest* trial of the
// agent protocols takes Ω(log n) rounds on regular graphs of logarithmic
// degree.
func runLogLowerBounds(cfg Config) (*Table, error) {
	sizes := []int{256, 1024, 4096}
	trials := cfg.trials(20)
	if cfg.Scale == ScaleSmall {
		sizes = []int{128, 256}
	}
	tab := &Table{
		ID:       "lb-log",
		Title:    "Theorems 24/25: Ω(log n) lower bounds for the agent protocols on regular graphs",
		PaperRef: "Theorems 24, 25",
		Headers: []string{
			"n", "d", "min T_visitx", "min T_visitx / ln n",
			"min T_meetx", "min T_meetx / ln n",
		},
	}
	worstV, worstM := math.Inf(1), math.Inf(1)
	for i, n := range sizes {
		d := 2 * int(math.Ceil(math.Log(float64(n))))
		if (n*d)%2 == 1 {
			d++
		}
		g, err := cachedRandomRegular(n, d, xrand.Derive(xrand.Derive(cfg.Seed, 90002), i))
		if err != nil {
			return nil, err
		}
		mv, err := Measure(ProtoVisitX, g, 0, core.AgentOptions{}, trials, cfg.Seed+uint64(3*i))
		if err != nil {
			return nil, err
		}
		mm, err := Measure(ProtoMeetX, g, 0, core.AgentOptions{}, trials, cfg.Seed+uint64(3*i+1))
		if err != nil {
			return nil, err
		}
		ln := math.Log(float64(n))
		nv := mv.Summary.Min / ln
		nm := mm.Summary.Min / ln
		worstV = math.Min(worstV, nv)
		worstM = math.Min(worstM, nm)
		tab.AddRow(
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", d),
			fmt.Sprintf("%.0f", mv.Summary.Min), fmt.Sprintf("%.2f", nv),
			fmt.Sprintf("%.0f", mm.Summary.Min), fmt.Sprintf("%.2f", nm),
		)
	}
	verdict := "OK (bounded below by a constant multiple of ln n)"
	if worstV < 0.2 || worstM < 0.2 {
		verdict = "CHECK (normalized minimum below 0.2)"
	}
	tab.AddNote("worst normalized minima: visitx %.2f, meetx %.2f — %s", worstV, worstM, verdict)
	tab.AddNote("minimum taken over %d trials per point (finite-sample stand-in for the w.h.p. statement)", trials)
	return tab, nil
}

// cachedRandomRegular builds a connected random d-regular graph through
// the graph memo/spill tiers: the realization is keyed by the randreg
// spec and the caller's derived seed, so every experiment that asks for
// the same (n, d, seed) shares one instance — and one walk index — per
// residency instead of re-sampling a fresh pairing.
func cachedRandomRegular(n, d int, seed uint64) (*graph.Graph, error) {
	p, err := graph.ParseSpec(fmt.Sprintf("randreg:%d,%d", n, d))
	if err != nil {
		return nil, err
	}
	return buildRandom(p, seed)
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
