package experiment

import (
	"fmt"

	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/stats"
	"rumor/internal/xrand"
)

func init() {
	register(Spec{
		ID:       "multirumor",
		Title:    "Parallel rumors share one agent system at no extra bandwidth",
		PaperRef: "Section 3 (the multi-rumor setting motivating stationary starts)",
		Run:      runMultiRumor,
	})
}

// runMultiRumor quantifies the paper's Section 3 motivation: a fleet of
// perpetual random walks disseminates many rumors, injected over time at
// different sources, with per-rumor broadcast times matching the
// single-rumor case and total token traffic independent of the number of
// rumors in flight.
func runMultiRumor(cfg Config) (*Table, error) {
	dims := []int{8, 9, 10}
	counts := []int{1, 8, 32, 64}
	spacing := 5
	if cfg.Scale == ScaleSmall {
		dims = []int{6}
		counts = []int{1, 8}
	}
	trials := cfg.trials(8)
	tab := &Table{
		ID:       "multirumor",
		Title:    "Parallel rumors share one agent system at no extra bandwidth",
		PaperRef: "Section 3 (the multi-rumor setting motivating stationary starts)",
		Headers: []string{
			"graph", "n", "rumors in flight", "per-rumor rounds (mean ± ci)",
			"vs single-rumor", "agent messages/round",
		},
	}
	worst := 0.0
	for di, dim := range dims {
		g := graph.Hypercube(dim)
		baseline := 0.0
		for ci, count := range counts {
			perRumor := make([]float64, 0, trials*count)
			var msgsPerRound float64
			for trial := 0; trial < trials; trial++ {
				rumors := make([]core.Rumor, count)
				for r := range rumors {
					rumors[r] = core.Rumor{
						Source: graph.Vertex((r * 37) % g.N()),
						Round:  r * spacing,
					}
				}
				seed := xrand.Derive(cfg.Seed, 1000*di+10*ci+trial)
				res, err := core.RunMultiRumor(g, rumors, xrand.New(seed), core.AgentOptions{}, 0)
				if err != nil {
					return nil, err
				}
				if !res.Completed {
					return nil, fmt.Errorf("multirumor: incomplete on %s with %d rumors", g.Name(), count)
				}
				for _, br := range res.BroadcastRounds {
					perRumor = append(perRumor, float64(br))
				}
				msgsPerRound = float64(res.Messages) / float64(res.Rounds)
			}
			s := stats.Summarize(perRumor)
			ratio := 1.0
			if ci == 0 {
				baseline = s.Mean
			} else if baseline > 0 {
				ratio = s.Mean / baseline
			}
			if ratio > worst {
				worst = ratio
			}
			tab.AddRow(
				g.Name(), fmt.Sprintf("%d", g.N()), fmt.Sprintf("%d", count),
				fmtMean(s), fmt.Sprintf("%.2fx", ratio),
				fmt.Sprintf("%.0f", msgsPerRound),
			)
		}
	}
	verdict := "OK (parallel rumors are free: same per-rumor latency, same traffic)"
	if worst > 1.5 {
		verdict = "CHECK (per-rumor latency degraded beyond 1.5x)"
	}
	tab.AddNote("worst per-rumor slowdown %.2fx — %s", worst, verdict)
	tab.AddNote("rumors injected %d rounds apart at scattered sources; |A| = n agents; %d trials", spacing, trials)
	tab.AddNote("agent messages/round is |A| regardless of rumors in flight — agents are unlabeled token counters (Section 3)")
	return tab, nil
}
