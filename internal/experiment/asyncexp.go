package experiment

import (
	"fmt"

	"rumor/internal/async"
	"rumor/internal/core"
	"rumor/internal/stats"
	"rumor/internal/xrand"
)

func init() {
	register(Spec{
		ID:       "async",
		Title:    "Asynchronous vs synchronous rumor spreading on regular graphs",
		PaperRef: "Section 2 (related work: Sauerwald [41]; Giakkoupis, Nazari & Woelfel [27])",
		Run:      runAsync,
	})
}

// runAsync compares synchronous rounds against asynchronous (unit-rate
// Poisson clock) time units for push and push-pull across the regular
// suite. Sauerwald [41] proves asynchronous push matches synchronous push
// on regular graphs up to constants; the measured sync/async ratio should
// therefore sit in a narrow constant band across sizes and families.
func runAsync(cfg Config) (*Table, error) {
	cases, err := regularSuite(cfg)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(10)
	tab := &Table{
		ID:       "async",
		Title:    "Asynchronous vs synchronous rumor spreading on regular graphs",
		PaperRef: "Section 2 (related work: Sauerwald [41]; Giakkoupis, Nazari & Woelfel [27])",
		Headers: []string{
			"graph", "n", "sync push (rounds)", "async push (time)",
			"ratio", "sync ppull (rounds)", "async ppull (time)", "ratio",
		},
	}
	var pushRatios, ppullRatios []float64
	for i, c := range cases {
		syncPush, err := Measure(ProtoPush, c.g, 0, core.AgentOptions{}, trials, cfg.Seed+uint64(4*i))
		if err != nil {
			return nil, err
		}
		syncPPull, err := Measure(ProtoPPull, c.g, 0, core.AgentOptions{}, trials, cfg.Seed+uint64(4*i+1))
		if err != nil {
			return nil, err
		}
		asyncPush, err := measureAsync(c, async.Push, trials, xrand.Derive(cfg.Seed, 4*i+2))
		if err != nil {
			return nil, err
		}
		asyncPPull, err := measureAsync(c, async.PushPull, trials, xrand.Derive(cfg.Seed, 4*i+3))
		if err != nil {
			return nil, err
		}
		rPush := syncPush.Summary.Mean / asyncPush.Mean
		rPPull := syncPPull.Summary.Mean / asyncPPull.Mean
		pushRatios = append(pushRatios, rPush)
		ppullRatios = append(ppullRatios, rPPull)
		tab.AddRow(
			c.name, fmt.Sprintf("%d", c.g.N()),
			fmtMean(syncPush.Summary), fmt.Sprintf("%.1f ± %.1f", asyncPush.Mean, asyncPush.CI95),
			fmt.Sprintf("%.2f", rPush),
			fmtMean(syncPPull.Summary), fmt.Sprintf("%.1f ± %.1f", asyncPPull.Mean, asyncPPull.CI95),
			fmt.Sprintf("%.2f", rPPull),
		)
	}
	lo, hi := minMax(pushRatios)
	verdict := "OK"
	if hi/lo > 4 {
		verdict = "CHECK (band wider than 4x)"
	}
	tab.AddNote("sync/async push ratio band [%.2f, %.2f] — %s (async push ≍ sync push on regular graphs, [41])", lo, hi, verdict)
	lo, hi = minMax(ppullRatios)
	tab.AddNote("sync/async push-pull ratio band [%.2f, %.2f] ([27] allows a Θ(1) gap either way)", lo, hi)
	tab.AddNote("%d trials per point; async time is in unit-rate Poisson clock units (n activations per unit)", trials)
	return tab, nil
}

func measureAsync(c regularCase, p async.Protocol, trials int, seed uint64) (stats.Summary, error) {
	times := make([]float64, trials)
	for i := range times {
		res, err := async.Run(c.g, 0, xrand.New(xrand.Derive(seed, i)), async.Config{Protocol: p})
		if err != nil {
			return stats.Summary{}, err
		}
		if !res.Completed {
			return stats.Summary{}, fmt.Errorf("experiment: async %s on %s incomplete", p, c.name)
		}
		times[i] = res.Time
	}
	return stats.Summarize(times), nil
}
