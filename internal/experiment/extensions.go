package experiment

import (
	"fmt"
	"math"

	"rumor/internal/agents"
	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/stats"
	"rumor/internal/xrand"
)

func init() {
	register(Spec{
		ID:       "hybrid",
		Title:    "Hybrid push-pull + visit-exchange: near-best on every Fig. 1 family",
		PaperRef: "Section 1 (combination suggestion)",
		Run:      runHybrid,
	})
	register(Spec{
		ID:       "ablations",
		Title:    "Ablations: agent density, placement, churn, transmission failures",
		PaperRef: "Section 9 (open problems) and the model assumptions of Section 3",
		Run:      runAblations,
	})
}

// runHybrid measures the combined protocol against all four single
// protocols on every Fig. 1 family. The paper suggests the combination
// "can significantly improve the broadcast time"; concretely the hybrid
// should track the fastest single protocol on each family, while each
// single protocol is polynomially slow on at least one of them.
func runHybrid(cfg Config) (*Table, error) {
	type ga struct {
		g   *graph.Graph
		src graph.Vertex
	}
	var families []ga
	if cfg.Scale == ScaleSmall {
		families = []ga{
			{graph.Star(128), 1},
			{graph.DoubleStar(64), 0},
			{graph.HeavyBinaryTree(6), 31},
		}
	} else {
		ht := graph.HeavyBinaryTree(9)
		htLeaf := sourceOr(ht, "leaf")
		st := graph.SiameseHeavyTree(9)
		stLeaf := sourceOr(st, "leafA")
		cs := graph.CycleStarsCliques(8)
		families = []ga{
			{graph.Star(1024), 1},
			{graph.DoubleStar(512), 0},
			{ht, htLeaf},
			{st, stLeaf},
			{cs, sourceOr(cs, "cliqueVertex")},
		}
	}
	trials := cfg.trials(8)
	tab := &Table{
		ID:       "hybrid",
		Title:    "Hybrid push-pull + visit-exchange: near-best on every Fig. 1 family",
		PaperRef: "Section 1 (combination suggestion)",
		Headers: []string{
			"graph", "n", "best single protocol", "T_best (rounds)",
			"T_hybrid (rounds)", "hybrid/best",
		},
	}
	worst := 0.0
	for i, fam := range families {
		bestName := ""
		best := math.Inf(1)
		for _, p := range []Proto{ProtoPush, ProtoPPull, ProtoVisitX, ProtoMeetX} {
			m, err := Measure(p, fam.g, fam.src, core.AgentOptions{}, trials, cfg.Seed+uint64(10*i)+uint64(len(p)))
			if err != nil {
				return nil, err
			}
			if m.Summary.Mean < best {
				best = m.Summary.Mean
				bestName = string(p)
			}
		}
		h, err := Measure(ProtoHybrid, fam.g, fam.src, core.AgentOptions{}, trials, cfg.Seed+uint64(10*i+9))
		if err != nil {
			return nil, err
		}
		ratio := h.Summary.Mean / best
		if ratio > worst {
			worst = ratio
		}
		tab.AddRow(
			fam.g.Name(), fmt.Sprintf("%d", fam.g.N()), bestName,
			fmt.Sprintf("%.1f", best), fmtMean(h.Summary), fmt.Sprintf("%.2f", ratio),
		)
	}
	verdict := "OK (hybrid within a small constant of the per-family best)"
	if worst > 3 {
		verdict = "CHECK (hybrid more than 3x slower than the best single protocol somewhere)"
	}
	tab.AddNote("worst hybrid/best ratio %.2f — %s", worst, verdict)
	tab.AddNote("%d trials per point; hybrid runs one push-pull exchange and one agent step per round (2n vs n messages/round)", trials)
	return tab, nil
}

// runAblations exercises the model knobs: agent density α (including the
// sub-linear regime raised as an open problem in Section 9), initial agent
// placement (stationary vs one-per-vertex, cf. the remark after Lemma 11),
// agent churn (the dynamic-agents idea of Section 9), and lossy links for
// push (the robustness property of [22] used in Lemma 4).
func runAblations(cfg Config) (*Table, error) {
	trials := cfg.trials(8)
	tab := &Table{
		ID:       "ablations",
		Title:    "Ablations: agent density, placement, churn, transmission failures",
		PaperRef: "Section 9 (open problems) and the model assumptions of Section 3",
		Headers:  []string{"study", "setting", "graph", "result"},
	}

	// (a) Agent density sweep: visit-exchange on the star.
	starLeaves := 1024
	alphas := []float64{0.25, 0.5, 1, 2, 4}
	if cfg.Scale == ScaleSmall {
		starLeaves = 128
		alphas = []float64{0.5, 1, 2}
	}
	star := graph.Star(starLeaves)
	var alphaMeans []float64
	for i, a := range alphas {
		m, err := Measure(ProtoVisitX, star, 1, core.AgentOptions{Alpha: a}, trials, cfg.Seed+uint64(100+i))
		if err != nil {
			return nil, err
		}
		alphaMeans = append(alphaMeans, m.Summary.Mean)
		tab.AddRow("agent density", fmt.Sprintf("α = %.2f (|A| = %d)", a, core.AgentCount(star.N(), a)),
			star.Name(), fmtMean(m.Summary)+" rounds")
	}
	if alphaMeans[0] <= alphaMeans[len(alphaMeans)-1] {
		tab.AddNote("agent density: CHECK — more agents did not speed up broadcast")
	} else {
		tab.AddNote("agent density: OK — broadcast time decreases monotonically-ish in α; sub-linear α stays functional (Section 9 open problem)")
	}

	// (b) Placement: stationary vs one-per-vertex on a hypercube.
	dim := 8
	if cfg.Scale == ScaleSmall {
		dim = 6
	}
	hc := graph.Hypercube(dim)
	mStat, err := Measure(ProtoVisitX, hc, 0, core.AgentOptions{}, trials, cfg.Seed+200)
	if err != nil {
		return nil, err
	}
	mOne, err := Measure(ProtoVisitX, hc, 0, core.AgentOptions{
		Placement: agents.PlaceOnePerVertex, Count: hc.N(),
	}, trials, cfg.Seed+201)
	if err != nil {
		return nil, err
	}
	tab.AddRow("placement", "stationary", hc.Name(), fmtMean(mStat.Summary)+" rounds")
	tab.AddRow("placement", "one agent per vertex", hc.Name(), fmtMean(mOne.Summary)+" rounds")
	ratio := mOne.Summary.Mean / mStat.Summary.Mean
	if ratio > 1.5 || ratio < 0.67 {
		tab.AddNote("placement: CHECK — one-per-vertex differs from stationary by %.2fx", ratio)
	} else {
		tab.AddNote("placement: OK — one-per-vertex matches stationary within %.2fx (remark after Lemma 11)", ratio)
	}

	// (c) Churn: visit-exchange tolerates agent replacement because the
	// vertices also hold the rumor; meet-exchange can lose it.
	kn := 256
	if cfg.Scale == ScaleSmall {
		kn = 64
	}
	kg := graph.Complete(kn)
	for i, churn := range []float64{0, 0.02, 0.1} {
		m, err := Measure(ProtoVisitX, kg, 0, core.AgentOptions{ChurnRate: churn}, trials, cfg.Seed+uint64(300+i))
		if err != nil {
			return nil, err
		}
		tab.AddRow("churn (visitx)", fmt.Sprintf("rate %.2f", churn), kg.Name(), fmtMean(m.Summary)+" rounds")
	}
	for i, churn := range []float64{0.02, 0.1} {
		completed, meanRounds, err := meetxChurnCompletion(kg, churn, trials, xrand.Derive(cfg.Seed, 400+i))
		if err != nil {
			return nil, err
		}
		tab.AddRow("churn (meetx)", fmt.Sprintf("rate %.2f", churn), kg.Name(),
			fmt.Sprintf("%d/%d completed; mean %.1f rounds among completions", completed, trials, meanRounds))
	}
	tab.AddNote("churn: visit-exchange always completes (vertices retain the rumor); meet-exchange may lose it — the robustness gap of Section 9")

	// (d) Push under lossy links.
	var fails []float64
	var failMeans []float64
	for i, fp := range []float64{0, 0.25, 0.5, 0.75} {
		results, err := core.RunMany(kg, func(rng *xrand.RNG) (core.Process, error) {
			return core.NewPush(kg, 0, rng, core.PushOptions{FailureProb: fp})
		}, trials, 0, xrand.Derive(cfg.Seed, 500+i))
		if err != nil {
			return nil, err
		}
		rounds := make([]float64, len(results))
		for j, r := range results {
			rounds[j] = float64(r.Rounds)
		}
		s := stats.Summarize(rounds)
		fails = append(fails, fp)
		failMeans = append(failMeans, s.Mean)
		tab.AddRow("push link loss", fmt.Sprintf("failure prob %.2f", fp), kg.Name(), fmtMean(s)+" rounds")
	}
	// The broadcast time should scale like 1/(1-f): check the extremes.
	slowdown := failMeans[len(failMeans)-1] / failMeans[0]
	expect := 1 / (1 - fails[len(fails)-1])
	if slowdown < 0.4*expect || slowdown > 3*expect {
		tab.AddNote("push link loss: CHECK — slowdown %.2fx vs expected ≈ %.2fx", slowdown, expect)
	} else {
		tab.AddNote("push link loss: OK — slowdown %.2fx ≈ 1/(1−f) = %.2fx; random failures do not change the asymptotics ([22], used in Lemma 4a)", slowdown, expect)
	}
	tab.AddNote("%d trials per row", trials)
	return tab, nil
}

// meetxChurnCompletion runs meet-exchange with churn and reports how many
// trials completed and their mean rounds.
func meetxChurnCompletion(g *graph.Graph, churn float64, trials int, seed uint64) (completed int, meanRounds float64, err error) {
	maxRounds := 4000
	results, err := core.RunMany(g, func(rng *xrand.RNG) (core.Process, error) {
		return core.NewMeetExchange(g, 0, rng, core.AgentOptions{ChurnRate: churn})
	}, trials, maxRounds, seed)
	if err != nil {
		return 0, 0, err
	}
	sum := 0.0
	for _, r := range results {
		if r.Completed {
			completed++
			sum += float64(r.Rounds)
		}
	}
	if completed > 0 {
		meanRounds = sum / float64(completed)
	}
	return completed, meanRounds, nil
}
