package experiment

import "strconv"

// Sweep is the data form of a graphs × protocols × seeds cross-product
// sharing every other knob — the paper's sweep shape (a Fig. 1 family
// across protocols and seeds) and the serving layer's /v1/sweep wire
// format. Empty Protocols or Seeds axes inherit the Defaults' value, so
// the cross-product is never empty on those axes.
type Sweep struct {
	Defaults  RunSpec  `json:"defaults"`
	Graphs    []string `json:"graphs"`
	Protocols []Proto  `json:"protocols,omitempty"`
	Seeds     []uint64 `json:"seeds,omitempty"`
}

// SweepPoint is one expanded point of a sweep: the axis values that
// selected it plus its normalized spec. Spec is what a planner hashes —
// two points whose axis values normalize identically carry equal Specs.
type SweepPoint struct {
	Graph    string
	Protocol Proto
	Seed     uint64
	Spec     RunSpec
}

// protocols returns the protocol axis with the default materialized.
func (sw Sweep) protocols() []Proto {
	if len(sw.Protocols) > 0 {
		return sw.Protocols
	}
	return []Proto{sw.Defaults.Protocol}
}

// seeds returns the seed axis with the default materialized.
func (sw Sweep) seeds() []uint64 {
	if len(sw.Seeds) > 0 {
		return sw.Seeds
	}
	return []uint64{sw.Defaults.Seed}
}

// Dims returns the per-axis sizes after default materialization; the
// cross-product has graphs·protocols·seeds points. Use it to bound a
// sweep before paying Expand's per-point normalization.
func (sw Sweep) Dims() (graphs, protocols, seeds int) {
	return len(sw.Graphs), len(sw.protocols()), len(sw.seeds())
}

// Expand materializes the cross-product in its canonical order — graphs
// outermost, then protocols, then seeds — with every point normalized.
// The order is part of the sweep's identity: planners assemble responses
// and stream frames in it, so a sweep's output is deterministic however
// its points are scheduled. Normalization is pure; an invalid point
// rejects the whole sweep with zero side effects.
func (sw Sweep) Expand() ([]SweepPoint, error) {
	protos, seeds := sw.protocols(), sw.seeds()
	points := make([]SweepPoint, 0, len(sw.Graphs)*len(protos)*len(seeds))
	for _, gs := range sw.Graphs {
		for _, p := range protos {
			for _, seed := range seeds {
				spec := sw.Defaults
				spec.Graph = gs
				spec.Protocol = p
				spec.Seed = seed
				// A pinned defaults.graphSeed applies to every point (one
				// random graph swept across protocol seeds); when unset,
				// Normalize derives it from each point's Seed.
				spec, err := spec.Normalize()
				if err != nil {
					return nil, &SweepPointError{Graph: gs, Protocol: p, Seed: seed, Err: err}
				}
				points = append(points, SweepPoint{Graph: gs, Protocol: p, Seed: seed, Spec: spec})
			}
		}
	}
	return points, nil
}

// SweepPointError reports the axis values of the point that failed to
// normalize.
type SweepPointError struct {
	Graph    string
	Protocol Proto
	Seed     uint64
	Err      error
}

func (e *SweepPointError) Error() string {
	return "point " + e.Graph + "/" + string(e.Protocol) + "/" + strconv.FormatUint(e.Seed, 10) + ": " + e.Err.Error()
}

func (e *SweepPointError) Unwrap() error { return e.Err }
