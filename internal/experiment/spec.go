package experiment

import (
	"encoding/json"
	"fmt"

	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// graphSeedLane is the Derive lane separating graph-construction
// randomness from protocol randomness, shared with cmd/rumor's historical
// behavior so a RunSpec with GraphSeed == Seed builds the same random
// graph the CLI always built for that seed.
const graphSeedLane = 1 << 20

// RunSpec is a complete, data-form description of one simulation sweep
// point: graph, protocol, trial count, and seed. It is the unit the
// serving layer canonicalizes, hashes, deduplicates, and caches, so its
// contract is strict determinism: two normalized RunSpecs with equal
// fields produce bit-identical []core.Result on any machine, whether run
// fresh, concurrently, or years apart.
//
// The JSON field names are the serving layer's wire format.
type RunSpec struct {
	// Graph is a graph.ParseSpec spec; Normalize canonicalizes it.
	Graph string `json:"graph"`
	// GraphSeed seeds construction of random graph families; Normalize
	// defaults it to Seed and zeroes it for deterministic families.
	GraphSeed uint64 `json:"graphSeed,omitempty"`
	// Protocol is one of Protos().
	Protocol Proto `json:"protocol"`
	// Source is the source vertex; negative selects the family's default
	// landmark (DefaultSource).
	Source int `json:"source"`
	// Trials is the number of independent trials.
	Trials int `json:"trials"`
	// MaxRounds cuts runs off (0 = the default n² bound).
	MaxRounds int `json:"maxRounds,omitempty"`
	// Seed is the master seed deriving every trial's randomness.
	Seed uint64 `json:"seed"`
	// Alpha is the agent density (agent protocols; ignored when Agents is
	// set). Normalize zeroes it for non-agent protocols.
	Alpha float64 `json:"alpha,omitempty"`
	// Agents overrides Alpha with an explicit agent count.
	Agents int `json:"agents,omitempty"`
	// Churn is the per-round agent replacement probability.
	Churn float64 `json:"churn,omitempty"`
	// Lazy is the walk laziness policy: "auto", "on", or "off".
	Lazy string `json:"lazy,omitempty"`
	// History asks result consumers (the serving layer) to include
	// per-round informed counts; it does not change the simulation.
	History bool `json:"history,omitempty"`
}

// DefaultRunSpec returns the spec defaults shared by the CLI and the
// serving layer: 10 trials of push from the family's default landmark at
// seed 1, agent density 1, automatic laziness. Decoders overlay request
// fields onto this value so an omitted field means its default, not its
// zero.
func DefaultRunSpec() RunSpec {
	return RunSpec{
		Protocol: ProtoPush,
		Source:   -1,
		Trials:   10,
		Seed:     1,
		Alpha:    1,
		Lazy:     "auto",
	}
}

// agentProtocol reports whether p uses the agent system.
func agentProtocol(p Proto) bool {
	return p == ProtoVisitX || p == ProtoMeetX || p == ProtoHybrid
}

// Normalize validates s and returns its canonical form: graph spec
// canonicalized, defaults materialized, and fields that cannot affect the
// result zeroed (agent options of vertex-only protocols, GraphSeed of
// deterministic families, Alpha under an explicit Agents count). Two
// requests meaning the same simulation normalize to identical structs —
// the property the serving layer's dedup/cache key is built on.
func (s RunSpec) Normalize() (RunSpec, error) {
	p, err := graph.ParseSpec(s.Graph)
	if err != nil {
		return RunSpec{}, err
	}
	s.Graph = p.Canonical()
	if p.Random() {
		if s.GraphSeed == 0 {
			s.GraphSeed = s.Seed
		}
	} else {
		s.GraphSeed = 0
	}
	ok := false
	for _, q := range Protos() {
		if s.Protocol == q {
			ok = true
			break
		}
	}
	if !ok {
		return RunSpec{}, fmt.Errorf("experiment: unknown protocol %q", s.Protocol)
	}
	if s.Trials <= 0 {
		return RunSpec{}, fmt.Errorf("experiment: trials must be positive, got %d", s.Trials)
	}
	if s.MaxRounds < 0 {
		return RunSpec{}, fmt.Errorf("experiment: maxRounds must be non-negative, got %d", s.MaxRounds)
	}
	if s.Source < 0 {
		s.Source = -1
	}
	// Agent knobs are validated for every protocol — a nonsense value is a
	// user error even when the protocol would ignore it — then zeroed for
	// vertex-only protocols so the canonical form (and so the serving
	// layer's dedup key) ignores fields that cannot affect the result.
	if s.Agents < 0 {
		return RunSpec{}, fmt.Errorf("experiment: agents must be non-negative, got %d", s.Agents)
	}
	if s.Churn < 0 || s.Churn >= 1 {
		return RunSpec{}, fmt.Errorf("experiment: churn must be in [0,1), got %g", s.Churn)
	}
	switch s.Lazy {
	case "", "auto", "on", "off":
	default:
		return RunSpec{}, fmt.Errorf("experiment: lazy must be auto, on, or off, got %q", s.Lazy)
	}
	if agentProtocol(s.Protocol) {
		if s.Agents > 0 {
			s.Alpha = 0 // Count overrides Alpha; zero it so the key ignores it
		} else if s.Alpha <= 0 {
			s.Alpha = 1
		}
		if s.Lazy == "" {
			s.Lazy = "auto"
		}
	} else {
		// Vertex-only protocols: agent knobs cannot affect the result.
		s.Alpha, s.Agents, s.Churn, s.Lazy = 0, 0, 0, ""
	}
	return s, nil
}

// CanonicalJSON returns the canonical JSON encoding of the spec — the
// byte string request-identity schemes hash. It is deterministic (struct
// field order fixes the encoding) and canonical once the spec has been
// Normalized; callers hashing un-normalized specs get a valid but
// non-canonical identity. Marshaling a RunSpec cannot fail.
func (s RunSpec) CanonicalJSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A RunSpec has no unmarshalable fields; this cannot happen.
		panic(fmt.Sprintf("experiment: marshal spec: %v", err))
	}
	return b
}

// lazyMode converts the textual laziness policy.
func (s RunSpec) lazyMode() (core.LazyMode, error) {
	switch s.Lazy {
	case "", "auto":
		return core.LazyAuto, nil
	case "on":
		return core.LazyOn, nil
	case "off":
		return core.LazyOff, nil
	default:
		return core.LazyAuto, fmt.Errorf("experiment: lazy must be auto, on, or off, got %q", s.Lazy)
	}
}

// AgentOptions materializes the spec's agent configuration.
func (s RunSpec) AgentOptions() (core.AgentOptions, error) {
	lazy, err := s.lazyMode()
	if err != nil {
		return core.AgentOptions{}, err
	}
	return core.AgentOptions{
		Alpha:     s.Alpha,
		Count:     s.Agents,
		ChurnRate: s.Churn,
		Lazy:      lazy,
	}, nil
}

// Build materializes the graph and the resolved source vertex.
// Deterministic families come from the shared LRU graph memoization
// (keyed by canonical spec, built exactly once per residency). Random
// families resolve GraphSeed to a sampler seed exactly the way the
// historical rng-driven path did — one Uint64 draw from the derived
// graph-seed RNG — and then memoize the realization under
// graph.SeededKey: the replayable samplers make (spec, seed) a complete
// identity, so caching and disk spill are as safe as for deterministic
// graphs, and the realization equals what Build(rng) would sample.
func (s RunSpec) Build() (*graph.Graph, graph.Vertex, error) {
	p, err := graph.ParseSpec(s.Graph)
	if err != nil {
		return nil, 0, err
	}
	var g *graph.Graph
	if p.Random() {
		samplerSeed := xrand.New(xrand.Derive(s.GraphSeed, graphSeedLane)).Uint64()
		g, err = buildRandom(p, samplerSeed)
		if err != nil {
			return nil, 0, err
		}
	} else {
		// The key is the canonical spec form — the same namespace the
		// fig1/regular harnesses key their graphs under, so a server that
		// also runs experiments shares one instance per graph. Build
		// errors (e.g. star:0) are returned, not cached: a stream of
		// invalid requests takes no recency slots and evicts nothing.
		// With graph storage configured, giant graphs come back
		// mmap-backed from the content-addressed store instead of being
		// rebuilt on the heap.
		g, err = buildDeterministic(p.Canonical(), func() (*graph.Graph, error) {
			return p.Build(nil)
		})
		if err != nil {
			return nil, 0, err
		}
	}
	src := graph.Vertex(s.Source)
	if s.Source < 0 {
		src = DefaultSource(g)
	}
	if int(src) >= g.N() {
		return nil, 0, fmt.Errorf("experiment: source %d out of range [0,%d)", src, g.N())
	}
	return g, src, nil
}

// Run executes the spec end to end: Build, then Trials independent trials
// through the unified lane engine — fused multi-lane bundles at the
// adaptive width for every protocol, serial K = 1 lanes for
// configurations the bundles cannot express (see runTrials). emit, when
// non-nil, receives each trial's Result in strict trial order as trials
// complete. Callers wanting canonical behavior should Normalize first;
// Run itself does not mutate s.
func (s RunSpec) Run(emit core.EmitFunc) ([]core.Result, error) {
	g, src, err := s.Build()
	if err != nil {
		return nil, err
	}
	return s.RunOn(g, src, emit)
}

// RunOn runs the spec's trials against an already-built graph and source.
func (s RunSpec) RunOn(g *graph.Graph, src graph.Vertex, emit core.EmitFunc) ([]core.Result, error) {
	agentOpts, err := s.AgentOptions()
	if err != nil {
		return nil, err
	}
	return runTrials(s.Protocol, g, src, agentOpts, s.Trials, s.MaxRounds, s.Seed, emit)
}

// DefaultSource prefers the landmark the paper's lemmas use for each
// family, falling back to vertex 0. It is the resolution of a negative
// RunSpec.Source, shared by cmd/rumor and the serving layer.
func DefaultSource(g *graph.Graph) graph.Vertex {
	for _, name := range []string{"leaf", "leafA", "centerA", "cliqueVertex", "root", "corner", "end", "first"} {
		if v, ok := g.Landmark(name); ok {
			return v
		}
	}
	return 0
}
