package experiment

import (
	"fmt"
	"math"

	"rumor/internal/core"
	"rumor/internal/graph"
	"rumor/internal/stats"
)

// fig1Family drives the shared sweep logic of experiments E1-E4: one graph
// family, one source landmark, all relevant protocols, shape verdicts per
// protocol.
type fig1Family struct {
	id, title, ref string
	// family is the graph.ParseSpec family name; cache keys use the
	// canonical spec form family:param so the serving layer's spec-driven
	// requests share the same memoized instances.
	family      string
	paramName   string
	paramsFull  []int
	paramsSmall []int
	build       func(param int) *graph.Graph
	source      string // landmark name; falls back to vertex 0
	protos      []Proto
	// expected maps each protocol to the accepted fitted shapes (first
	// entry is the paper's claim).
	expected  map[Proto][]string
	defTrials int
}

func (f fig1Family) run(cfg Config) (*Table, error) {
	params := f.paramsFull
	if cfg.Scale == ScaleSmall {
		params = f.paramsSmall
	}
	trials := cfg.trials(f.defTrials)

	tab := &Table{
		ID:       f.id,
		Title:    f.title,
		PaperRef: f.ref,
		Headers:  append([]string{f.paramName, "n"}, protoHeaders(f.protos)...),
	}
	ns := make([]float64, 0, len(params))
	means := make(map[Proto][]float64, len(f.protos))
	for i, param := range params {
		g := cachedGraph(fmt.Sprintf("%s:%d", f.family, param), func() *graph.Graph { return f.build(param) })
		src := sourceOr(g, f.source)
		row := []string{fmt.Sprintf("%d", param), fmt.Sprintf("%d", g.N())}
		ns = append(ns, float64(g.N()))
		for _, p := range f.protos {
			m, err := Measure(p, g, src, core.AgentOptions{}, trials, cfg.Seed+uint64(i))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", f.id, err)
			}
			means[p] = append(means[p], m.Summary.Mean)
			row = append(row, fmtMean(m.Summary))
		}
		tab.AddRow(row...)
	}
	for _, p := range f.protos {
		exp := f.expected[p]
		tab.AddNote("%s: %s", p, shapeVerdict(ns, means[p], exp...))
	}
	tab.AddNote("source = %q landmark; %d trials per point; agents |A| = n, stationary start", f.source, trials)
	return tab, nil
}

func protoHeaders(ps []Proto) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = fmt.Sprintf("T_%s (rounds)", p)
	}
	return out
}

func init() {
	register(Spec{
		ID:       "fig1a-star",
		Title:    "Star S_n: push is Ω(n log n), everything else logarithmic or constant",
		PaperRef: "Fig. 1(a), Lemma 2",
		Run: fig1Family{
			id:          "fig1a-star",
			family:      "star",
			title:       "Star S_n: push is Ω(n log n), everything else logarithmic or constant",
			ref:         "Fig. 1(a), Lemma 2",
			paramName:   "leaves",
			paramsFull:  []int{512, 1024, 2048, 4096},
			paramsSmall: []int{64, 128, 256},
			build:       func(p int) *graph.Graph { return graph.Star(p) },
			source:      "leaf",
			protos:      []Proto{ProtoPush, ProtoPPull, ProtoVisitX, ProtoMeetX},
			expected: map[Proto][]string{
				ProtoPush:   {"n log n", "n"},
				ProtoPPull:  {"1"},
				ProtoVisitX: {"log n", "1"},
				ProtoMeetX:  {"log n", "1"},
			},
			defTrials: 10,
		}.run,
	})

	register(Spec{
		ID:       "fig1b-doublestar",
		Title:    "Double star S²_n: push-pull is Ω(n); agent protocols stay logarithmic",
		PaperRef: "Fig. 1(b), Lemma 3",
		Run: fig1Family{
			id:          "fig1b-doublestar",
			family:      "doublestar",
			title:       "Double star S²_n: push-pull is Ω(n); agent protocols stay logarithmic",
			ref:         "Fig. 1(b), Lemma 3",
			paramName:   "leaves/star",
			paramsFull:  []int{512, 1024, 2048, 4096},
			paramsSmall: []int{64, 128},
			build:       func(p int) *graph.Graph { return graph.DoubleStar(p) },
			source:      "centerA",
			protos:      []Proto{ProtoPush, ProtoPPull, ProtoVisitX, ProtoMeetX},
			expected: map[Proto][]string{
				ProtoPush:   {"n log n", "n"},
				ProtoPPull:  {"n", "n log n"},
				ProtoVisitX: {"log n", "1"},
				ProtoMeetX:  {"log n", "1"},
			},
			defTrials: 10,
		}.run,
	})

	register(Spec{
		ID:       "fig1c-heavytree",
		Title:    "Heavy binary tree B_n: visit-exchange is Ω(n); push and leaf-source meet-exchange logarithmic",
		PaperRef: "Fig. 1(c), Lemma 4",
		Run: fig1Family{
			id:          "fig1c-heavytree",
			family:      "heavytree",
			title:       "Heavy binary tree B_n: visit-exchange is Ω(n); push and leaf-source meet-exchange logarithmic",
			ref:         "Fig. 1(c), Lemma 4",
			paramName:   "levels",
			paramsFull:  []int{7, 8, 9, 10, 11},
			paramsSmall: []int{5, 6},
			build:       func(p int) *graph.Graph { return graph.HeavyBinaryTree(p) },
			source:      "leaf",
			protos:      []Proto{ProtoPush, ProtoPPull, ProtoVisitX, ProtoMeetX},
			expected: map[Proto][]string{
				ProtoPush:   {"log n", "1"},
				ProtoPPull:  {"log n", "1"},
				ProtoVisitX: {"n", "n log n"},
				ProtoMeetX:  {"log n", "1"},
			},
			defTrials: 10,
		}.run,
	})

	register(Spec{
		ID:       "fig1d-siamese",
		Title:    "Siamese heavy trees D_n: both agent protocols are Ω(n); rumor spreading logarithmic",
		PaperRef: "Fig. 1(d), Lemma 8",
		Run: fig1Family{
			id:          "fig1d-siamese",
			family:      "siamesetree",
			title:       "Siamese heavy trees D_n: both agent protocols are Ω(n); rumor spreading logarithmic",
			ref:         "Fig. 1(d), Lemma 8",
			paramName:   "levels",
			paramsFull:  []int{7, 8, 9, 10},
			paramsSmall: []int{5, 6},
			build:       func(p int) *graph.Graph { return graph.SiameseHeavyTree(p) },
			source:      "leafA",
			protos:      []Proto{ProtoPush, ProtoPPull, ProtoVisitX, ProtoMeetX},
			expected: map[Proto][]string{
				ProtoPush:   {"log n", "1"},
				ProtoPPull:  {"log n", "1"},
				ProtoVisitX: {"n", "n log n"},
				// Lemma 8(c) proves only the lower bound E[T_meetx] = Ω(n);
				// any at-least-linear shape is consistent with the paper.
				// (The crossing of the shared root is heavy-tailed, so
				// measured means can grow superlinearly at these sizes.)
				ProtoMeetX: {"n", "n log n", "n^2"},
			},
			defTrials: 10,
		}.run,
	})

	register(Spec{
		ID:       "fig1e-cyclestars",
		Title:    "Cycle of stars of cliques: meet-exchange trails visit-exchange by a log factor",
		PaperRef: "Fig. 1(e), Lemma 9",
		Run:      runCycleStars,
	})
}

// runCycleStars is E5: on the (almost regular) cycle-of-stars-of-cliques,
// E[T_visitx] = O(n^{2/3}) while E[T_meetx] = Ω(n^{2/3}·log n), so the
// ratio T_meetx/T_visitx should grow with log n.
func runCycleStars(cfg Config) (*Table, error) {
	params := []int{6, 8, 10, 12, 14}
	if cfg.Scale == ScaleSmall {
		params = []int{4, 5}
	}
	trials := cfg.trials(10)
	tab := &Table{
		ID:       "fig1e-cyclestars",
		Title:    "Cycle of stars of cliques: meet-exchange trails visit-exchange by a log factor",
		PaperRef: "Fig. 1(e), Lemma 9",
		Headers: []string{
			"k", "n", "T_visitx (rounds)", "T_meetx (rounds)",
			"ratio meetx/visitx", "ratio / ln n",
		},
	}
	var ns, vx, mx, normRatios []float64
	for i, k := range params {
		g := cachedGraph(fmt.Sprintf("cyclestars:%d", k), func() *graph.Graph { return graph.CycleStarsCliques(k) })
		src := sourceOr(g, "cliqueVertex")
		mv, err := Measure(ProtoVisitX, g, src, core.AgentOptions{}, trials, cfg.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		mm, err := Measure(ProtoMeetX, g, src, core.AgentOptions{}, trials, cfg.Seed+1000+uint64(i))
		if err != nil {
			return nil, err
		}
		n := float64(g.N())
		ratio := mm.Summary.Mean / mv.Summary.Mean
		norm := ratio / math.Log(n)
		ns = append(ns, n)
		vx = append(vx, mv.Summary.Mean)
		mx = append(mx, mm.Summary.Mean)
		normRatios = append(normRatios, norm)
		tab.AddRow(
			fmt.Sprintf("%d", k), fmt.Sprintf("%d", g.N()),
			fmtMean(mv.Summary), fmtMean(mm.Summary),
			fmt.Sprintf("%.2f", ratio), fmt.Sprintf("%.3f", norm),
		)
	}
	tab.AddNote("visitx: %s", shapeVerdict(ns, vx, "n^2/3", "sqrt n", "n"))
	tab.AddNote("meetx: %s", shapeVerdict(ns, mx, "n^2/3 log n", "n^2/3", "n"))
	if len(normRatios) >= 2 {
		first, last := normRatios[0], normRatios[len(normRatios)-1]
		verdict := "OK (gap does not shrink relative to log n)"
		if last < 0.5*first {
			verdict = "CHECK (normalized gap shrinking)"
		}
		tab.AddNote("meetx/visitx normalized by ln n: %.3f -> %.3f — %s", first, last, verdict)
	}
	tab.AddNote("%d trials per point; agents |A| = n, stationary start; source in a clique", trials)
	// Keep the slope diagnostic available to readers of the markdown.
	if len(ns) >= 2 {
		slope, r2 := stats.LogLogSlope(ns, vx)
		tab.AddNote("visitx log-log slope %.2f (R²=%.3f); paper predicts 2/3", slope, r2)
	}
	return tab, nil
}
