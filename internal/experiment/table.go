// Package experiment defines the reproduction harness: one registered
// experiment per figure/theorem of the paper, each of which sweeps graph
// sizes, measures broadcast-time distributions for the relevant protocols,
// fits growth shapes, and emits a results table. cmd/experiments regenerates
// EXPERIMENTS.md from this registry; bench_test.go exposes each experiment
// as a testing.B benchmark.
package experiment

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: a titled grid plus free-form notes
// (fitted shapes, verdicts, caveats).
type Table struct {
	ID       string
	Title    string
	PaperRef string
	Headers  []string
	Rows     [][]string
	Notes    []string
}

// AddRow appends a row; it must match the header width.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("experiment: row width %d != header width %d in %s", len(cells), len(t.Headers), t.ID))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.PaperRef != "" {
		fmt.Fprintf(&b, "*Paper reference: %s*\n\n", t.PaperRef)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteString("\n")
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	return b.String()
}

// CSV renders the table as an RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}
