package experiment

import (
	"fmt"
	"reflect"
	"testing"

	"rumor/internal/graph"
)

// TestCachedGraphEvictionRebuild: the graph memoization is LRU-bounded
// (a ROADMAP open item: long-running sweeps and the serving layer must
// not accumulate every graph ever built). An evicted key rebuilds on next
// use; a resident key never rebuilds.
func TestCachedGraphEvictionRebuild(t *testing.T) {
	builds := 0
	key := "test/evict-target"
	get := func() *graph.Graph {
		return cachedGraph(key, func() *graph.Graph {
			builds++
			return graph.Cycle(9)
		})
	}
	g1 := get()
	if builds != 1 {
		t.Fatalf("builds = %d after first get, want 1", builds)
	}
	// Flood the cache with enough distinct keys to evict the target.
	for i := 0; i < graphCacheCap+8; i++ {
		cachedGraph(fmt.Sprintf("test/evict-filler/%d", i), func() *graph.Graph {
			return graph.Path(4)
		})
	}
	g2 := get()
	if builds != 2 {
		t.Fatalf("builds = %d after eviction, want 2 (rebuild)", builds)
	}
	if g1 == g2 {
		t.Fatal("rebuild returned the evicted instance")
	}
	if get() != g2 || builds != 2 {
		t.Fatalf("resident key rebuilt: builds = %d", builds)
	}
}

func TestRunSpecNormalizeCanonicalizes(t *testing.T) {
	a := DefaultRunSpec()
	a.Graph = " Star : 12 "
	a.Protocol = ProtoVisitX
	b := DefaultRunSpec()
	b.Graph = "star:12"
	b.Protocol = ProtoVisitX
	b.Lazy = "" // Normalize materializes "auto"
	na, err := a.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if na != nb {
		t.Fatalf("equivalent specs normalize differently:\n%+v\n%+v", na, nb)
	}
	if na.Graph != "star:12" || na.Lazy != "auto" || na.GraphSeed != 0 {
		t.Fatalf("unexpected normal form: %+v", na)
	}

	// Vertex-only protocols shed agent knobs entirely.
	c := DefaultRunSpec()
	c.Graph = "star:12"
	c.Alpha = 3
	c.Lazy = "on"
	nc, err := c.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if nc.Alpha != 0 || nc.Lazy != "" || nc.Agents != 0 {
		t.Fatalf("push spec kept agent knobs: %+v", nc)
	}

	// Random families default GraphSeed to Seed.
	d := DefaultRunSpec()
	d.Graph = "randreg:32,4"
	d.Seed = 7
	nd, err := d.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if nd.GraphSeed != 7 {
		t.Fatalf("GraphSeed = %d, want 7", nd.GraphSeed)
	}
}

func TestRunSpecNormalizeRejects(t *testing.T) {
	bad := []func(*RunSpec){
		func(s *RunSpec) { s.Graph = "nope:1" },
		func(s *RunSpec) { s.Protocol = "gossip" },
		func(s *RunSpec) { s.Trials = 0 },
		func(s *RunSpec) { s.MaxRounds = -1 },
		func(s *RunSpec) { s.Lazy = "sometimes" },
		func(s *RunSpec) { s.Churn = 1.5 },
		func(s *RunSpec) { s.Agents = -2 },
	}
	for i, mutate := range bad {
		s := DefaultRunSpec()
		s.Graph = "star:8"
		mutate(&s)
		if _, err := s.Normalize(); err == nil {
			t.Errorf("case %d: Normalize(%+v) succeeded, want error", i, s)
		}
	}
}

// TestRunSpecDeterminism: the serving contract — equal normalized specs
// yield identical []core.Result on repeated runs, for deterministic and
// random graph families alike.
func TestRunSpecDeterminism(t *testing.T) {
	for _, gspec := range []string{"doublestar:24", "randreg:48,4"} {
		s := DefaultRunSpec()
		s.Graph = gspec
		s.Protocol = ProtoVisitX
		s.Trials = 5
		s.Seed = 3
		s, err := s.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		r1, err := s.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("%s: repeated runs differ", gspec)
		}
	}
}

// TestRunSpecMatchesDirectEngine: the spec-driven path must reproduce
// what a hand-assembled core run returns for the same parameters.
func TestRunSpecMatchesDirectEngine(t *testing.T) {
	s := DefaultRunSpec()
	s.Graph = "star:40"
	s.Protocol = ProtoPush
	s.Trials = 4
	s.Seed = 11
	s.Source = 1
	ns, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ns.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Star(40)
	opts, err := ns.AgentOptions()
	if err != nil {
		t.Fatal(err)
	}
	want, err := runTrials(ProtoPush, g, 1, opts, 4, 0, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Graph names match because both build star:40; compare fully.
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RunSpec.Run differs from direct runTrials")
	}
}
