package agents

import (
	"math"
	"testing"
	"testing/quick"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	g := graph.Cycle(5)
	rng := xrand.New(1)
	if _, err := New(g, Config{Count: 0}, rng); err == nil {
		t.Error("Count=0 accepted")
	}
	if _, err := New(g, Config{Count: 3, Placement: PlaceOnePerVertex}, rng); err == nil {
		t.Error("PlaceOnePerVertex with Count != N accepted")
	}
	if _, err := New(g, Config{Count: 2, Placement: PlaceFixed, Fixed: []graph.Vertex{0}}, rng); err == nil {
		t.Error("PlaceFixed with wrong length accepted")
	}
	if _, err := New(g, Config{Count: 1, Placement: PlaceFixed, Fixed: []graph.Vertex{9}}, rng); err == nil {
		t.Error("PlaceFixed out of range accepted")
	}
	if _, err := New(g, Config{Count: 1, ChurnRate: 1.5}, rng); err == nil {
		t.Error("ChurnRate >= 1 accepted")
	}
	if _, err := New(g, Config{Count: 1, Placement: Placement(99)}, rng); err == nil {
		t.Error("unknown placement accepted")
	}
}

func TestPlacementModes(t *testing.T) {
	g := graph.Cycle(6)
	rng := xrand.New(2)

	w, err := New(g, Config{Count: 6, Placement: PlaceOnePerVertex}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if w.Pos(i) != graph.Vertex(i) {
			t.Errorf("one-per-vertex agent %d at %d", i, w.Pos(i))
		}
	}

	fixed := []graph.Vertex{3, 3, 0}
	w, err = New(g, Config{Count: 3, Placement: PlaceFixed, Fixed: fixed}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range fixed {
		if w.Pos(i) != want {
			t.Errorf("fixed agent %d at %d, want %d", i, w.Pos(i), want)
		}
	}
}

// TestStationaryPlacementDistribution: on a star, the center has degree n
// and each leaf degree 1, so the center should receive about half the
// agents.
func TestStationaryPlacementDistribution(t *testing.T) {
	g := graph.Star(100)
	rng := xrand.New(3)
	const agents = 20000
	w, err := New(g, Config{Count: agents}, rng)
	if err != nil {
		t.Fatal(err)
	}
	center := 0
	for i := 0; i < agents; i++ {
		if w.Pos(i) == 0 {
			center++
		}
	}
	frac := float64(center) / agents
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("stationary placement put %.3f of agents at center, want 0.5", frac)
	}
}

func TestStepMovesAlongEdges(t *testing.T) {
	g := graph.Hypercube(4)
	rng := xrand.New(4)
	w, err := New(g, Config{Count: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		w.Step(nil)
		for i := 0; i < w.N(); i++ {
			from, to := w.Prev(i), w.Pos(i)
			if !g.HasEdge(from, to) {
				t.Fatalf("agent %d jumped %d -> %d (not an edge)", i, from, to)
			}
		}
	}
	if w.Round() != 20 {
		t.Errorf("Round() = %d, want 20", w.Round())
	}
}

func TestLazyWalksSometimesStay(t *testing.T) {
	g := graph.Cycle(8)
	rng := xrand.New(5)
	w, err := New(g, Config{Count: 400, Lazy: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	w.Step(nil)
	stayed := 0
	for i := 0; i < w.N(); i++ {
		if w.Pos(i) == w.Prev(i) {
			stayed++
		}
	}
	frac := float64(stayed) / float64(w.N())
	if math.Abs(frac-0.5) > 0.1 {
		t.Errorf("lazy walks stayed with frequency %.3f, want about 0.5", frac)
	}
}

func TestNonLazyAlwaysMoves(t *testing.T) {
	g := graph.Cycle(8) // no self-loops, so moving means changing vertex
	rng := xrand.New(6)
	w, err := New(g, Config{Count: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		w.Step(nil)
		for i := 0; i < w.N(); i++ {
			if w.Pos(i) == w.Prev(i) {
				t.Fatalf("non-lazy agent %d stayed put", i)
			}
		}
	}
}

func TestChooseFuncOverride(t *testing.T) {
	g := graph.Star(5)
	rng := xrand.New(7)
	w, err := New(g, Config{Count: 3, Placement: PlaceFixed, Fixed: []graph.Vertex{0, 0, 1}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Force agents leaving the center to go to leaf 4; let others default.
	w.Step(func(agent int, from graph.Vertex) (graph.Vertex, bool) {
		if from == 0 {
			return 4, true
		}
		return 0, false
	})
	if w.Pos(0) != 4 || w.Pos(1) != 4 {
		t.Errorf("override ignored: agents at %d, %d", w.Pos(0), w.Pos(1))
	}
	if w.Pos(2) != 0 {
		t.Errorf("leaf agent must move to center, at %d", w.Pos(2))
	}
}

func TestChurnRespawns(t *testing.T) {
	g := graph.Complete(10)
	rng := xrand.New(8)
	w, err := New(g, Config{Count: 1000, ChurnRate: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	w.Step(nil)
	got := len(w.Respawned())
	if got < 200 || got > 400 {
		t.Errorf("churn respawned %d of 1000 agents, want about 300", got)
	}
	// Respawned ids must be valid and strictly increasing (id order).
	prev := -1
	for _, id := range w.Respawned() {
		if id <= prev || id >= w.N() {
			t.Fatalf("bad respawn id %d after %d", id, prev)
		}
		prev = id
	}
}

func TestNoChurnNoRespawns(t *testing.T) {
	g := graph.Complete(5)
	rng := xrand.New(9)
	w, err := New(g, Config{Count: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Step(nil)
		if len(w.Respawned()) != 0 {
			t.Fatal("respawn without churn")
		}
	}
}

func TestDeterministicWalks(t *testing.T) {
	g := graph.Hypercube(5)
	mk := func() []graph.Vertex {
		w, err := New(g, Config{Count: 64}, xrand.New(42))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			w.Step(nil)
		}
		out := make([]graph.Vertex, w.N())
		for i := range out {
			out[i] = w.Pos(i)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at agent %d", i)
		}
	}
}

// TestStationaryIsInvariant: after many steps, the empirical distribution
// should still match the stationary distribution (degree-proportional).
// This is the property that makes the paper's "agents start from
// stationarity" assumption self-consistent.
func TestStationaryIsInvariant(t *testing.T) {
	g := graph.Star(50) // heavily non-regular: center prob 1/2
	rng := xrand.New(10)
	const agents = 4000
	w, err := New(g, Config{Count: agents}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Count center occupancy averaged over rounds 10..60 (odd/even parity
	// alternates on bipartite graphs, so average over a window).
	for i := 0; i < 10; i++ {
		w.Step(nil)
	}
	total := 0
	const window = 50
	for r := 0; r < window; r++ {
		w.Step(nil)
		for i := 0; i < agents; i++ {
			if w.Pos(i) == 0 {
				total++
			}
		}
	}
	frac := float64(total) / float64(agents*window)
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("center occupancy %.3f after mixing, want about 0.5", frac)
	}
}

func TestOccupancyBasics(t *testing.T) {
	o := NewOccupancy(10)
	if o.Count(3) != 0 {
		t.Error("fresh occupancy nonzero")
	}
	o.NextRound()
	if got := o.Add(3); got != 1 {
		t.Errorf("first Add = %d", got)
	}
	if got := o.Add(3); got != 2 {
		t.Errorf("second Add = %d", got)
	}
	o.Add(7)
	if o.Count(3) != 2 || o.Count(7) != 1 || o.Count(0) != 0 {
		t.Error("counts wrong")
	}
	if len(o.Touched()) != 2 {
		t.Errorf("Touched = %v", o.Touched())
	}
	o.NextRound()
	if o.Count(3) != 0 || len(o.Touched()) != 0 {
		t.Error("NextRound did not clear")
	}
}

// TestQuickOccupancyMatchesMap cross-checks Occupancy against a plain map
// across many rounds.
func TestQuickOccupancyMatchesMap(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		const n = 37
		o := NewOccupancy(n)
		for round := 0; round < 5; round++ {
			o.NextRound()
			ref := make(map[graph.Vertex]int32)
			for k := 0; k < 60; k++ {
				v := graph.Vertex(rng.IntN(n))
				o.Add(v)
				ref[v]++
			}
			for v := graph.Vertex(0); v < n; v++ {
				if o.Count(v) != ref[v] {
					return false
				}
			}
			if len(o.Touched()) != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStepStampedMatchesStep(t *testing.T) {
	g := graph.DoubleStar(64)
	for _, lazy := range []bool{false, true} {
		cfg := Config{Count: 200, Lazy: lazy}
		plain, err := New(g, cfg, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		stamped, err := New(g, cfg, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		stamp := make([]uint32, g.N())
		for round := 1; round <= 20; round++ {
			plain.Step(nil)
			stamped.StepStamped(stamp, uint32(round))
			for i := 0; i < plain.N(); i++ {
				if plain.Pos(i) != stamped.Pos(i) {
					t.Fatalf("lazy=%v round %d: agent %d at %d (plain) vs %d (stamped)",
						lazy, round, i, plain.Pos(i), stamped.Pos(i))
				}
			}
			// The stamped set must be exactly the occupied vertices.
			occupied := make(map[graph.Vertex]bool)
			for i := 0; i < stamped.N(); i++ {
				occupied[stamped.Pos(i)] = true
			}
			for v := 0; v < g.N(); v++ {
				if got := stamp[v] == uint32(round); got != occupied[graph.Vertex(v)] {
					t.Fatalf("lazy=%v round %d: vertex %d stamped=%v occupied=%v",
						lazy, round, v, got, occupied[graph.Vertex(v)])
				}
			}
		}
	}
}

func TestStepStampedPanicsWithChurn(t *testing.T) {
	g := graph.Complete(8)
	w, err := New(g, Config{Count: 8, ChurnRate: 0.5}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("StepStamped with churn did not panic")
		}
	}()
	w.StepStamped(make([]uint32, g.N()), 1)
}
