// Package agents implements the system of independent random walks that
// drives the paper's visit-exchange and meet-exchange protocols: a
// collection of |A| = Θ(n) agents, each performing an independent simple
// (optionally lazy) random walk, starting from the stationary distribution
// deg(v)/2|E| (Section 3 of the paper).
//
// The package also provides epoch-stamped occupancy counters so protocols
// can track per-round vertex visits in O(|A|) per round without O(n) clears.
package agents

import (
	"fmt"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// Placement selects how agents are initially positioned.
type Placement int

const (
	// PlaceStationary samples each agent's start independently from the
	// stationary distribution deg(v)/2|E| — the paper's default model.
	PlaceStationary Placement = iota
	// PlaceOnePerVertex puts exactly one agent on each vertex (the variant
	// discussed after Lemma 11; requires Count == n).
	PlaceOnePerVertex
	// PlaceFixed uses the caller-provided start vertices.
	PlaceFixed
)

// Config configures a walk system. The zero value means "stationary
// placement, non-lazy walks" and is ready to use once Count is set.
type Config struct {
	// Count is the number of agents |A|.
	Count int
	// Lazy makes each walk stay put with probability 1/2 each round. The
	// paper uses lazy walks for meet-exchange on bipartite graphs, where
	// parity could otherwise keep two walks from ever meeting.
	Lazy bool
	// Placement selects the initial distribution.
	Placement Placement
	// Fixed holds the start vertices when Placement == PlaceFixed.
	Fixed []graph.Vertex
	// ChurnRate is the per-round probability that an agent "dies" and is
	// replaced by a fresh agent placed from the stationary distribution.
	// This implements the dynamic-agent variant sketched in the paper's
	// open problems (Section 9). Zero disables churn.
	ChurnRate float64
}

// Walks is a system of independent random walks on a fixed graph.
type Walks struct {
	g    *graph.Graph
	rng  *xrand.RNG
	pos  []graph.Vertex
	prev []graph.Vertex
	cfg  Config

	respawned []int // agents replaced by churn in the latest Step
	round     int
}

// ChooseFunc optionally overrides the destination of one agent's step. It
// receives the agent id and current vertex; returning ok=false falls back
// to a uniform random neighbor. The coupling machinery of Section 5 uses
// this hook to share neighbor choices with the push process.
type ChooseFunc func(agent int, from graph.Vertex) (to graph.Vertex, ok bool)

// New creates a walk system and places the agents.
func New(g *graph.Graph, cfg Config, rng *xrand.RNG) (*Walks, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("agents: Count must be positive, got %d", cfg.Count)
	}
	if g.M() == 0 {
		return nil, fmt.Errorf("agents: graph has no edges")
	}
	if cfg.ChurnRate < 0 || cfg.ChurnRate >= 1 {
		return nil, fmt.Errorf("agents: ChurnRate must be in [0,1), got %g", cfg.ChurnRate)
	}
	w := &Walks{
		g:    g,
		rng:  rng,
		pos:  make([]graph.Vertex, cfg.Count),
		prev: make([]graph.Vertex, cfg.Count),
		cfg:  cfg,
	}
	switch cfg.Placement {
	case PlaceStationary:
		for i := range w.pos {
			w.pos[i] = w.stationaryVertex()
		}
	case PlaceOnePerVertex:
		if cfg.Count != g.N() {
			return nil, fmt.Errorf("agents: PlaceOnePerVertex needs Count == N (%d != %d)", cfg.Count, g.N())
		}
		for i := range w.pos {
			w.pos[i] = graph.Vertex(i)
		}
	case PlaceFixed:
		if len(cfg.Fixed) != cfg.Count {
			return nil, fmt.Errorf("agents: PlaceFixed needs len(Fixed) == Count (%d != %d)", len(cfg.Fixed), cfg.Count)
		}
		for i, v := range cfg.Fixed {
			if v < 0 || int(v) >= g.N() {
				return nil, fmt.Errorf("agents: fixed position %d out of range", v)
			}
			w.pos[i] = v
		}
	default:
		return nil, fmt.Errorf("agents: unknown placement %d", cfg.Placement)
	}
	copy(w.prev, w.pos)
	return w, nil
}

// N returns the number of agents.
func (w *Walks) N() int { return len(w.pos) }

// Round returns the number of Step calls so far.
func (w *Walks) Round() int { return w.round }

// Pos returns the current vertex of agent i.
func (w *Walks) Pos(i int) graph.Vertex { return w.pos[i] }

// Prev returns the vertex agent i occupied before the latest Step.
func (w *Walks) Prev(i int) graph.Vertex { return w.prev[i] }

// Respawned returns the ids of agents replaced by churn during the latest
// Step. The slice is reused between rounds; callers must not retain it.
func (w *Walks) Respawned() []int { return w.respawned }

// Step advances every walk one synchronous round. Agents are processed in
// increasing id order, which fixes the paper's "ties broken by agent id"
// ordering of simultaneous visits. choose, if non-nil, may override
// individual destinations (see ChooseFunc); laziness and churn are applied
// only to non-overridden agents.
func (w *Walks) Step(choose ChooseFunc) {
	w.round++
	w.respawned = w.respawned[:0]
	for i := range w.pos {
		from := w.pos[i]
		w.prev[i] = from
		if choose != nil {
			if to, ok := choose(i, from); ok {
				w.pos[i] = to
				continue
			}
		}
		if w.cfg.ChurnRate > 0 && w.rng.Bernoulli(w.cfg.ChurnRate) {
			w.pos[i] = w.stationaryVertex()
			w.respawned = append(w.respawned, i)
			continue
		}
		if w.cfg.Lazy && w.rng.Bernoulli(0.5) {
			continue // stay put
		}
		nb := w.g.Neighbors(from)
		w.pos[i] = nb[w.rng.IntN(len(nb))]
	}
}

// stationaryVertex samples a vertex from the stationary distribution by
// picking a uniform edge endpoint.
func (w *Walks) stationaryVertex() graph.Vertex {
	return w.g.EndpointOwner(w.rng.IntN(w.g.EndpointCount()))
}

// Occupancy is an epoch-stamped per-vertex counter. Resetting between
// rounds is O(1): bumping the epoch invalidates all previous counts. The
// epoch is 64-bit, so it never wraps in practice.
type Occupancy struct {
	stamp   []int64
	count   []int32
	epoch   int64
	touched []graph.Vertex
}

// NewOccupancy returns a counter over n vertices. Vertices start with stamp
// 0 and the first usable epoch is 1, so all counts begin at zero.
func NewOccupancy(n int) *Occupancy {
	return &Occupancy{
		stamp: make([]int64, n),
		count: make([]int32, n),
		epoch: 1,
	}
}

// NextRound clears all counts in O(1).
func (o *Occupancy) NextRound() {
	o.epoch++
	o.touched = o.touched[:0]
}

// Add increments the count of v and returns the new count.
func (o *Occupancy) Add(v graph.Vertex) int32 {
	if o.stamp[v] != o.epoch {
		o.stamp[v] = o.epoch
		o.count[v] = 0
		o.touched = append(o.touched, v)
	}
	o.count[v]++
	return o.count[v]
}

// Count returns the count of v this round.
func (o *Occupancy) Count(v graph.Vertex) int32 {
	if o.stamp[v] != o.epoch {
		return 0
	}
	return o.count[v]
}

// Touched returns the vertices with nonzero counts this round. The slice is
// reused between rounds; callers must not retain it.
func (o *Occupancy) Touched() []graph.Vertex { return o.touched }
