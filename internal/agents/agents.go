// Package agents implements the system of independent random walks that
// drives the paper's visit-exchange and meet-exchange protocols: a
// collection of |A| = Θ(n) agents, each performing an independent simple
// (optionally lazy) random walk, starting from the stationary distribution
// deg(v)/2|E| (Section 3 of the paper).
//
// # Deterministic parallelism
//
// Stepping is sharded across the reusable worker pool in internal/par
// under a counter-based randomness contract: every draw agent i makes in
// round r comes from the stream keyed (seed, i, r) (see xrand.NewStream),
// where seed is drawn once from the constructor's RNG. No draw depends on
// execution order or on how many values other agents consumed, so results
// are bit-identical for a given seed regardless of GOMAXPROCS or shard
// count. Order-sensitive outputs (the Respawned list) are collected per
// shard and merged in shard order, which — shards being contiguous,
// ascending id ranges — preserves the paper's "ties broken by agent id"
// ordering.
//
// Walk steps with a non-nil ChooseFunc (the Section 5 coupling hook) run
// serially: the hook may close over shared mutable state, as the coupling
// machinery's lazily-built choice lists do. Agents the hook declines are
// stepped with exactly the same per-agent streams as the parallel path.
//
// # Batched multi-trial stepping
//
// BatchedWalks fuses K independent trials' walk systems into one stepper:
// a single blocked loop over agents steps every lane (trial) per round, so
// the packed walk index and CSR neighbor array are touched by all K lanes
// while cache-hot, and the loop runs degree-class-specialized, branchless
// inner bodies (the serial stepper's degree-1/power-of-two branches are
// data-dependent on mixed-degree families and their mispredictions
// dominate the step cost there). Lane t draws from streams keyed
// (seeds[t], agent, round) with seeds[t] consumed from trial t's RNG
// exactly as New would, so every lane's trajectory is bit-identical to a
// serial Walks — the contract core.RunManyBatched builds on.
//
// The package also provides epoch-stamped occupancy counters so protocols
// can track per-round vertex visits in O(|A|) per round without O(n)
// clears.
package agents

import (
	"fmt"
	"sync/atomic"

	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// stepGrain is the minimum number of agents per shard: small enough to
// occupy every processor on paper-scale agent counts, large enough that
// shard dispatch never dominates a round.
const stepGrain = 2048

// Placement selects how agents are initially positioned.
type Placement int

const (
	// PlaceStationary samples each agent's start independently from the
	// stationary distribution deg(v)/2|E| — the paper's default model.
	PlaceStationary Placement = iota
	// PlaceOnePerVertex puts exactly one agent on each vertex (the variant
	// discussed after Lemma 11; requires Count == n).
	PlaceOnePerVertex
	// PlaceFixed uses the caller-provided start vertices.
	PlaceFixed
)

// Config configures a walk system. The zero value means "stationary
// placement, non-lazy walks" and is ready to use once Count is set.
type Config struct {
	// Count is the number of agents |A|.
	Count int
	// Lazy makes each walk stay put with probability 1/2 each round. The
	// paper uses lazy walks for meet-exchange on bipartite graphs, where
	// parity could otherwise keep two walks from ever meeting.
	Lazy bool
	// Placement selects the initial distribution.
	Placement Placement
	// Fixed holds the start vertices when Placement == PlaceFixed.
	Fixed []graph.Vertex
	// ChurnRate is the per-round probability that an agent "dies" and is
	// replaced by a fresh agent placed from the stationary distribution.
	// This implements the dynamic-agent variant sketched in the paper's
	// open problems (Section 9). Zero disables churn.
	ChurnRate float64
}

// Walks is a system of independent random walks on a fixed graph.
type Walks struct {
	g   *graph.Graph
	cfg Config

	// seed keys every per-(agent, round) stream; drawn once from the
	// constructor's RNG so trial seeds keep controlling everything.
	seed uint64
	// churnThreshold is ChurnRate as a raw-uint64 comparison bound.
	churnThreshold uint64

	pos  []graph.Vertex
	prev []graph.Vertex

	respawned []int   // agents replaced by churn in the latest Step
	shardResp [][]int // per-shard respawn scratch, merged in shard order
	procs     int
	stepFn    func(shard, lo, hi int)
	churnFn   func(shard, lo, hi int)
	round     int

	// stampDst/stampEpoch carry StepStamped's destination through the
	// pre-bound stampFn closure (rebinding a closure per round would
	// allocate).
	stampDst   []uint32
	stampEpoch uint32
	stampFn    func(shard, lo, hi int)
}

// ChooseFunc optionally overrides the destination of one agent's step. It
// receives the agent id and current vertex; returning ok=false falls back
// to a uniform random neighbor. The coupling machinery of Section 5 uses
// this hook to share neighbor choices with the push process.
type ChooseFunc func(agent int, from graph.Vertex) (to graph.Vertex, ok bool)

// New creates a walk system and places the agents. It consumes exactly one
// value from rng — the master seed of the per-agent streams — so callers
// constructing several systems from one RNG get independent walks.
func New(g *graph.Graph, cfg Config, rng *xrand.RNG) (*Walks, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("agents: Count must be positive, got %d", cfg.Count)
	}
	if g.M() == 0 {
		return nil, fmt.Errorf("agents: graph has no edges")
	}
	if cfg.ChurnRate < 0 || cfg.ChurnRate >= 1 {
		return nil, fmt.Errorf("agents: ChurnRate must be in [0,1), got %g", cfg.ChurnRate)
	}
	w := &Walks{
		g:              g,
		cfg:            cfg,
		seed:           rng.Uint64(),
		churnThreshold: xrand.BernoulliThreshold(cfg.ChurnRate),
		pos:            make([]graph.Vertex, cfg.Count),
		prev:           make([]graph.Vertex, cfg.Count),
	}
	w.procs = par.Procs()
	w.stepFn = func(_, lo, hi int) { w.stepRangeNoChurn(lo, hi) }
	w.churnFn = func(s, lo, hi int) { w.shardResp[s] = w.stepRangeChurn(lo, hi, w.shardResp[s][:0]) }
	w.stampFn = func(_, lo, hi int) { w.stepRangeStamp(lo, hi, true) }
	if err := placeLane(g, cfg, w.seed, w.pos); err != nil {
		return nil, err
	}
	copy(w.prev, w.pos)
	return w, nil
}

// placeLane fills lane (len cfg.Count) with cfg's initial placement,
// drawing agent i's stationary sample from stream (seed, i, 0). New and
// NewBatched share it, so a serial trial and a batched lane built from the
// same seed place every agent identically.
func placeLane(g *graph.Graph, cfg Config, seed uint64, lane []graph.Vertex) error {
	switch cfg.Placement {
	case PlaceStationary:
		// O(1) alias sampling per agent (table cached on the graph),
		// sharded: agent i draws from its round-0 stream, so placement is
		// order-independent too.
		alias := g.StationaryAlias()
		par.Do(len(lane), stepGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				s := xrand.NewStream(seed, uint64(i), 0)
				lane[i] = graph.Vertex(alias.SampleStream(&s))
			}
		})
	case PlaceOnePerVertex:
		if cfg.Count != g.N() {
			return fmt.Errorf("agents: PlaceOnePerVertex needs Count == N (%d != %d)", cfg.Count, g.N())
		}
		if g.MinDegree() == 0 {
			return fmt.Errorf("agents: PlaceOnePerVertex on a graph with isolated vertices")
		}
		for i := range lane {
			lane[i] = graph.Vertex(i)
		}
	case PlaceFixed:
		if len(cfg.Fixed) != cfg.Count {
			return fmt.Errorf("agents: PlaceFixed needs len(Fixed) == Count (%d != %d)", len(cfg.Fixed), cfg.Count)
		}
		for i, v := range cfg.Fixed {
			if v < 0 || int(v) >= g.N() {
				return fmt.Errorf("agents: fixed position %d out of range", v)
			}
			if g.Degree(v) == 0 {
				return fmt.Errorf("agents: fixed position %d is an isolated vertex", v)
			}
			lane[i] = v
		}
	default:
		return fmt.Errorf("agents: unknown placement %d", cfg.Placement)
	}
	return nil
}

// N returns the number of agents.
func (w *Walks) N() int { return len(w.pos) }

// Round returns the number of Step calls so far.
func (w *Walks) Round() int { return w.round }

// Pos returns the current vertex of agent i.
func (w *Walks) Pos(i int) graph.Vertex { return w.pos[i] }

// Prev returns the vertex agent i occupied before the latest Step.
func (w *Walks) Prev(i int) graph.Vertex { return w.prev[i] }

// Positions returns the current vertex of every agent, indexed by agent
// id. The slice aliases internal state: callers must treat it as read-only
// and not retain it across Step calls.
func (w *Walks) Positions() []graph.Vertex { return w.pos }

// Respawned returns the ids of agents replaced by churn during the latest
// Step, in increasing id order. The slice is reused between rounds;
// callers must not retain it.
func (w *Walks) Respawned() []int { return w.respawned }

// Step advances every walk one synchronous round. Every draw of agent i
// comes from the stream keyed (seed, i, round), so agents may be stepped
// in any order or in parallel with identical results; the paper's "ties
// broken by agent id" ordering is preserved because per-shard outputs are
// merged in ascending shard (hence id) order. choose, if non-nil, may
// override individual destinations (see ChooseFunc) and forces the serial
// path; laziness and churn are applied only to non-overridden agents.
func (w *Walks) Step(choose ChooseFunc) {
	w.round++
	w.respawned = w.respawned[:0]
	// Swap the position buffers: the step loops read prev (last round's
	// positions) and write every entry of pos, saving a per-agent store.
	w.prev, w.pos = w.pos, w.prev
	if choose != nil {
		w.stepSerial(choose)
		return
	}
	n := len(w.pos)
	if w.cfg.ChurnRate <= 0 {
		if w.procs == 1 || n <= stepGrain {
			w.stepRangeNoChurn(0, n) // skip dispatch entirely
			return
		}
		par.Do(n, stepGrain, w.stepFn)
		return
	}
	shards := par.Shards(n, stepGrain)
	for len(w.shardResp) < shards {
		w.shardResp = append(w.shardResp, nil)
	}
	par.DoN(shards, n, w.churnFn)
	for _, b := range w.shardResp[:shards] {
		w.respawned = append(w.respawned, b...)
	}
}

// StepStamped is Step(nil) fused with per-destination occupancy marking:
// it advances every walk one round and additionally stores epoch into
// stamp at each agent's new vertex, in the same pass that writes the
// position. Protocols in the "every agent informed" regime (the Ω(n)
// tails of the paper's star-like families) use it to drop their separate
// mark-informed-positions pass over all agents — see core.VisitExchange.
//
// The walk draws are identical to Step(nil)'s: agent i consumes the
// stream keyed (seed, i, round) either way, so fusing never perturbs a
// trajectory. Churn requires the respawn bookkeeping of the plain path
// and is not supported here; StepStamped panics if it is enabled.
// Stores into stamp go through atomics on the sharded path (two shards
// may stamp the same vertex with the same value); readers must run after
// StepStamped returns.
func (w *Walks) StepStamped(stamp []uint32, epoch uint32) {
	if w.cfg.ChurnRate > 0 {
		panic("agents: StepStamped with churn enabled")
	}
	w.round++
	w.respawned = w.respawned[:0]
	w.prev, w.pos = w.pos, w.prev
	w.stampDst, w.stampEpoch = stamp, epoch
	n := len(w.pos)
	if w.procs == 1 || n <= stepGrain {
		w.stepRangeStamp(0, n, false)
		return
	}
	par.Do(n, stepGrain, w.stampFn)
}

// stepRangeStamp is stepRangeNoChurn plus a stamp store per agent.
// sharedStamp selects atomic stamp stores for the sharded path, where
// concurrent shards may stamp the same vertex; the serial path uses plain
// stores.
func (w *Walks) stepRangeStamp(lo, hi int, sharedStamp bool) {
	stamp, epoch := w.stampDst, w.stampEpoch
	idx := w.g.WalkIndex()
	if idx == nil {
		// Graph too large to pack; same draws through the CSR slices, then
		// stamp the fresh positions.
		w.stepRangeGeneral(lo, hi)
		for _, p := range w.pos[lo:hi] {
			if sharedStamp {
				atomic.StoreUint32(&stamp[p], epoch)
			} else {
				stamp[p] = epoch
			}
		}
		return
	}
	nbrs := w.g.NeighborsRaw()
	pos, prev := w.pos, w.prev
	_ = pos[hi-1] // hoist the bounds checks out of the loop
	_ = prev[hi-1]
	base := xrand.MixBase(w.seed, uint64(lo), uint64(w.round))
	if w.cfg.Lazy {
		for i := lo; i < hi; i++ {
			from := prev[i]
			to := from // stay put on a set coin
			if u := xrand.Mix(base); u>>63 == 0 {
				word := idx[from]
				if graph.WalkDegreeOne(word) {
					to = graph.WalkOnlyNeighbor(word, nbrs)
				} else {
					to = graph.WalkTarget32(word, uint32(u), nbrs)
				}
			}
			pos[i] = to
			if sharedStamp {
				atomic.StoreUint32(&stamp[to], epoch)
			} else {
				stamp[to] = epoch
			}
			base += xrand.UnitStride
		}
		return
	}
	for i := lo; i < hi; i++ {
		from := prev[i]
		word := idx[from]
		var to graph.Vertex
		if graph.WalkDegreeOne(word) {
			to = graph.WalkOnlyNeighbor(word, nbrs)
		} else {
			to = graph.WalkTarget(word, xrand.Mix(base), nbrs)
		}
		pos[i] = to
		if sharedStamp {
			atomic.StoreUint32(&stamp[to], epoch)
		} else {
			stamp[to] = epoch
		}
		base += xrand.UnitStride
	}
}

// stepRangeNoChurn advances agents [lo, hi) along simple or lazy walks.
// This is the simulator's innermost loop: one packed-index load and one
// counter-based draw per agent (two for lazy walks, none for degree-1
// vertices). The per-agent stream base advances incrementally — one add
// per agent — which is why Step's buffer swap matters: the loop reads prev
// and unconditionally writes pos.
func (w *Walks) stepRangeNoChurn(lo, hi int) {
	idx := w.g.WalkIndex()
	if idx == nil {
		// Graph too large to pack; same draws through the CSR slices.
		w.stepRangeGeneral(lo, hi)
		return
	}
	nbrs := w.g.NeighborsRaw()
	pos, prev := w.pos, w.prev
	_ = pos[hi-1] // hoist the bounds checks out of the loop
	_ = prev[hi-1]
	base := xrand.MixBase(w.seed, uint64(lo), uint64(w.round))
	if w.cfg.Lazy {
		// One draw funds both decisions: the stay coin from the top bit,
		// the neighbor index from the (disjoint) low 32 bits.
		for i := lo; i < hi; i++ {
			from := prev[i]
			to := from // stay put on a set coin
			if u := xrand.Mix(base); u>>63 == 0 {
				word := idx[from]
				if graph.WalkDegreeOne(word) {
					to = graph.WalkOnlyNeighbor(word, nbrs)
				} else {
					to = graph.WalkTarget32(word, uint32(u), nbrs)
				}
			}
			pos[i] = to
			base += xrand.UnitStride
		}
		return
	}
	for i := lo; i < hi; i++ {
		from := prev[i]
		word := idx[from]
		var to graph.Vertex
		if graph.WalkDegreeOne(word) {
			to = graph.WalkOnlyNeighbor(word, nbrs)
		} else {
			to = graph.WalkTarget(word, xrand.Mix(base), nbrs)
		}
		pos[i] = to
		base += xrand.UnitStride
	}
}

// stepRangeChurn is the sharded walk step with churn enabled: each agent
// first draws its death coin, then (if alive) walks as usual. Respawn ids
// are appended to resp in increasing order within the shard.
func (w *Walks) stepRangeChurn(lo, hi int, resp []int) []int {
	alias := w.g.StationaryAlias()
	idx, nbrs := w.g.WalkIndex(), w.g.NeighborsRaw()
	seed, round := w.seed, uint64(w.round)
	for i := lo; i < hi; i++ {
		from := w.prev[i]
		s := xrand.NewStream(seed, uint64(i), round)
		if s.Uint64() < w.churnThreshold {
			w.pos[i] = graph.Vertex(alias.SampleStream(&s))
			resp = append(resp, i)
			continue
		}
		w.stepAgentTail(i, from, &s, idx, nbrs)
	}
	return resp
}

// stepRangeGeneral mirrors stepRangeNoChurn through Graph.Neighbors for
// graphs without a packed walk index, consuming identical draws.
func (w *Walks) stepRangeGeneral(lo, hi int) {
	seed, round := w.seed, uint64(w.round)
	for i := lo; i < hi; i++ {
		from := w.prev[i]
		s := xrand.NewStream(seed, uint64(i), round)
		u := s.Uint64()
		if w.cfg.Lazy {
			if u>>63 != 0 {
				w.pos[i] = from
				continue
			}
			nb := w.g.Neighbors(from)
			w.pos[i] = nb[xrand.ReduceDeg32(uint32(u), len(nb))]
			continue
		}
		nb := w.g.Neighbors(from)
		if len(nb) == 1 {
			w.pos[i] = nb[0]
			continue
		}
		w.pos[i] = nb[xrand.ReduceDeg(u, len(nb))]
	}
}

// stepAgentTail finishes one agent's step after any churn draw: one more
// draw funding the lazy coin (top bit, if configured) and the neighbor
// index. It always writes pos[i] (the buffers were swapped at the top of
// Step). idx and nbrs are the caller-hoisted walk index and CSR neighbor
// array (idx may be nil for unpacked graphs).
func (w *Walks) stepAgentTail(i int, from graph.Vertex, s *xrand.Stream, idx []uint64, nbrs []graph.Vertex) {
	u := s.Uint64()
	if w.cfg.Lazy && u>>63 != 0 {
		w.pos[i] = from
		return
	}
	if idx != nil {
		word := idx[from]
		if graph.WalkDegreeOne(word) {
			w.pos[i] = graph.WalkOnlyNeighbor(word, nbrs)
			return
		}
		if w.cfg.Lazy {
			w.pos[i] = graph.WalkTarget32(word, uint32(u), nbrs)
		} else {
			w.pos[i] = graph.WalkTarget(word, u, nbrs)
		}
		return
	}
	nb := w.g.Neighbors(from)
	if len(nb) == 1 {
		w.pos[i] = nb[0]
		return
	}
	if w.cfg.Lazy {
		w.pos[i] = nb[xrand.ReduceDeg32(uint32(u), len(nb))]
		return
	}
	w.pos[i] = nb[xrand.ReduceDeg(u, len(nb))]
}

// stepSerial is the ChooseFunc path: the hook may touch shared state, so
// agents run in id order on one goroutine. Non-overridden agents draw from
// the same per-agent streams as the parallel path.
func (w *Walks) stepSerial(choose ChooseFunc) {
	idx, nbrs := w.g.WalkIndex(), w.g.NeighborsRaw()
	seed, round := w.seed, uint64(w.round)
	for i := range w.pos {
		from := w.prev[i]
		if to, ok := choose(i, from); ok {
			w.pos[i] = to
			continue
		}
		s := xrand.NewStream(seed, uint64(i), round)
		if w.cfg.ChurnRate > 0 && s.Uint64() < w.churnThreshold {
			alias := w.g.StationaryAlias()
			w.pos[i] = graph.Vertex(alias.SampleStream(&s))
			w.respawned = append(w.respawned, i)
			continue
		}
		w.stepAgentTail(i, from, &s, idx, nbrs)
	}
}

// Occupancy is an epoch-stamped per-vertex counter. Resetting between
// rounds is O(1): bumping the epoch invalidates all previous counts. The
// epoch is 64-bit, so it never wraps in practice.
type Occupancy struct {
	stamp   []int64
	count   []int32
	epoch   int64
	touched []graph.Vertex
}

// NewOccupancy returns a counter over n vertices. Vertices start with stamp
// 0 and the first usable epoch is 1, so all counts begin at zero.
func NewOccupancy(n int) *Occupancy {
	return &Occupancy{
		stamp: make([]int64, n),
		count: make([]int32, n),
		epoch: 1,
	}
}

// NextRound clears all counts in O(1).
func (o *Occupancy) NextRound() {
	o.epoch++
	o.touched = o.touched[:0]
}

// Add increments the count of v and returns the new count.
func (o *Occupancy) Add(v graph.Vertex) int32 {
	if o.stamp[v] != o.epoch {
		o.stamp[v] = o.epoch
		o.count[v] = 0
		o.touched = append(o.touched, v)
	}
	o.count[v]++
	return o.count[v]
}

// Count returns the count of v this round.
func (o *Occupancy) Count(v graph.Vertex) int32 {
	if o.stamp[v] != o.epoch {
		return 0
	}
	return o.count[v]
}

// Touched returns the vertices with nonzero counts this round. The slice is
// reused between rounds; callers must not retain it.
func (o *Occupancy) Touched() []graph.Vertex { return o.touched }
