package agents

import (
	"testing"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// trialRNGs builds K trial RNGs exactly as core.RunMany derives them.
func trialRNGs(seed uint64, k int) []*xrand.RNG {
	rngs := make([]*xrand.RNG, k)
	for t := range rngs {
		rngs[t] = xrand.New(xrand.TrialSeed(seed, t))
	}
	return rngs
}

// TestBatchedWalksMatchSerial: every lane of a BatchedWalks must trace
// exactly the positions of a serial Walks built from the same trial RNG,
// for simple and lazy walks, across many rounds.
func TestBatchedWalksMatchSerial(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Hypercube(8), // uniform power-of-two degree (classPow2 loops)
		graph.Star(257),    // mixed degree 1 / huge (branchless select loops)
	}
	for _, g := range graphs {
		for _, lazy := range []bool{false, true} {
			const k, agents, rounds = 5, 300, 40
			cfg := Config{Count: agents, Lazy: lazy}
			bw, err := NewBatched(g, cfg, trialRNGs(42, k))
			if err != nil {
				t.Fatal(err)
			}
			serial := make([]*Walks, k)
			for tr, rng := range trialRNGs(42, k) {
				w, err := New(g, cfg, rng)
				if err != nil {
					t.Fatal(err)
				}
				serial[tr] = w
			}
			check := func(round int) {
				t.Helper()
				for tr := 0; tr < k; tr++ {
					lane := bw.Lane(tr)
					for i := 0; i < agents; i++ {
						if lane[i] != serial[tr].Pos(i) {
							t.Fatalf("%s lazy=%v round %d lane %d agent %d: batched %d != serial %d",
								g.Name(), lazy, round, tr, i, lane[i], serial[tr].Pos(i))
						}
					}
				}
			}
			check(0)
			for r := 1; r <= rounds; r++ {
				bw.Step(nil)
				for _, w := range serial {
					w.Step(nil)
				}
				check(r)
			}
		}
	}
}

// TestBatchedWalksDoneMasking: a masked lane freezes while the others keep
// drawing the same streams they would have drawn with every lane active —
// stream keys are per (agent, round), so masking must shift nothing.
func TestBatchedWalksDoneMasking(t *testing.T) {
	g := graph.Hypercube(7)
	const k, agents = 4, 200
	cfg := Config{Count: agents}
	bw, err := NewBatched(g, cfg, trialRNGs(7, k))
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]*Walks, k)
	for tr, rng := range trialRNGs(7, k) {
		serial[tr], err = New(g, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Lane 1 stops after round 3, lane 2 after round 7.
	stopAt := map[int]int{1: 3, 2: 7}
	active := []bool{true, true, true, true}
	frozen := make(map[int][]graph.Vertex)
	for r := 1; r <= 12; r++ {
		bw.Step(active)
		for tr := 0; tr < k; tr++ {
			if active[tr] {
				serial[tr].Step(nil)
			}
		}
		for tr := 0; tr < k; tr++ {
			lane := bw.Lane(tr)
			if want, ok := frozen[tr]; ok {
				for i := range want {
					if lane[i] != want[i] {
						t.Fatalf("round %d: masked lane %d moved at agent %d", r, tr, i)
					}
				}
				continue
			}
			for i := 0; i < agents; i++ {
				if lane[i] != serial[tr].Pos(i) {
					t.Fatalf("round %d lane %d agent %d: batched %d != serial %d",
						r, tr, i, lane[i], serial[tr].Pos(i))
				}
			}
		}
		for tr, stop := range stopAt {
			if r == stop {
				active[tr] = false
				frozen[tr] = append([]graph.Vertex(nil), bw.Lane(tr)...)
			}
		}
	}
}

// TestBatchedWalksRejectsChurn pins the documented fallback contract.
func TestBatchedWalksRejectsChurn(t *testing.T) {
	g := graph.Hypercube(5)
	_, err := NewBatched(g, Config{Count: 8, ChurnRate: 0.1}, trialRNGs(1, 2))
	if err == nil {
		t.Fatal("expected error for churned batched walks")
	}
}

// Benchmarks: K serial trials stepped one system at a time versus the fused
// batched stepper, per (lane, agent) step.

func benchGraph() *graph.Graph { return graph.Hypercube(12) }

func BenchmarkSerialWalksStep8(b *testing.B) {
	g := benchGraph()
	const k = 8
	count := g.N()
	ws := make([]*Walks, k)
	for tr, rng := range trialRNGs(1, k) {
		w, err := New(g, Config{Count: count}, rng)
		if err != nil {
			b.Fatal(err)
		}
		ws[tr] = w
	}
	b.SetBytes(int64(k * count))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			w.Step(nil)
		}
	}
}

func BenchmarkBatchedWalksStep8(b *testing.B) {
	g := benchGraph()
	const k = 8
	count := g.N()
	bw, err := NewBatched(g, Config{Count: count}, trialRNGs(1, k))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(k * count))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw.Step(nil)
	}
}

func BenchmarkSerialWalksStepStar8(b *testing.B) {
	g := graph.Star(4097)
	const k = 8
	count := g.N()
	ws := make([]*Walks, k)
	for tr, rng := range trialRNGs(1, k) {
		w, err := New(g, Config{Count: count}, rng)
		if err != nil {
			b.Fatal(err)
		}
		ws[tr] = w
	}
	b.SetBytes(int64(k * count))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			w.Step(nil)
		}
	}
}

func BenchmarkBatchedWalksStepStar8(b *testing.B) {
	g := graph.Star(4097)
	const k = 8
	count := g.N()
	bw, err := NewBatched(g, Config{Count: count}, trialRNGs(1, k))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(k * count))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw.Step(nil)
	}
}
