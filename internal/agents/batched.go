package agents

import (
	"fmt"
	"sync/atomic"

	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// BatchedWalks runs K independent trials' walk systems over one graph in a
// single fused loop per round: the agent loop is shared and every lane
// (trial) steps inside it, so the packed walk index and CSR neighbor array
// stay cache-hot across the K lanes and the loop control is paid once per
// agent instead of once per (trial, agent).
//
// Lane t draws from streams keyed (seeds[t], agent, round) with exactly the
// draw discipline of the serial Walks — seeds[t] is drawn from trial t's
// RNG precisely as New does — so lane positions are bit-identical to K
// serial systems built from the same RNGs. The fused loop resolves
// neighbor draws branchlessly (graph.WalkTargetAny): on mixed-degree
// families the serial degree-1 branch is data-dependent and mispredicts,
// while the select compiles to a conditional move; the draws consumed are
// unchanged.
//
// Positions use a struct-of-arrays [K][numAgents] layout (lane-major), so
// each lane's positions remain a contiguous slice (Lane) that the batched
// protocol drivers scan exactly like the serial ones.
//
// Done lanes are masked out per Step: a finished trial stops consuming CPU
// while its siblings keep stepping, and its frozen positions stay readable.
//
// Churn and ChooseFunc are not supported — callers with either fall back
// to serial trials (core.RunMany).
type BatchedWalks struct {
	g   *graph.Graph
	cfg Config

	k     int
	count int
	seeds []uint64 // per-lane stream seeds, drawn like Walks.seed

	// pos/prev are lane-major: lane t's agent i lives at [t*count+i].
	pos  []graph.Vertex
	prev []graph.Vertex

	// laneIDs lists the lanes active this Step, rebuilt from the mask each
	// round; a lane's pos/prev offset is laneIDs[j]*count.
	laneIDs []int

	// dirty[t] records that lane t's two swap buffers differ (the lane
	// stepped since its last freeze copy), so a newly masked lane is
	// copied across exactly once and then costs nothing per round.
	dirty []bool

	// class is the walk-index degree-class specialization the fused loop
	// runs with (see walkClass).
	class walkClass

	// stepFn is stepShard bound once, so sharded dispatch allocates no
	// closure per round.
	stepFn func(shard, lo, hi int)

	// stamps/epochs carry StepStamped's per-lane occupancy marking through
	// the pre-bound stepFn closure; stamps[t] == nil means lane t steps
	// without stamping. sharedStamp selects atomic stamp stores on the
	// sharded path (concurrent shards may stamp the same vertex of one
	// lane's array with the same epoch value).
	stamps      [][]uint32
	epochs      []uint32
	sharedStamp bool

	procs int
	round int
}

// walkClass selects the fused loop's neighbor-draw reduction, from
// Graph.WalkDegreeMix: uniform-class graphs skip the per-vertex class
// dispatch entirely, mixed graphs use the branchless select.
type walkClass uint8

const (
	classMixed walkClass = iota // both reductions present: branchless select
	classPow2                   // every positive degree a power of two: AND only
	classMul                    // no power-of-two degrees: multiply-shift only
)

func classify(g *graph.Graph) walkClass {
	hasPow2, hasMul := g.WalkDegreeMix()
	switch {
	case hasPow2 && !hasMul:
		return classPow2
	case hasMul && !hasPow2:
		return classMul
	default:
		return classMixed
	}
}

// batchedStepGrain is the minimum number of agents per shard of the fused
// step: each agent carries K lanes of work, so the grain is smaller than
// the serial stepGrain.
const batchedStepGrain = 512

// NewBatched creates K = len(rngs) walk systems sharing one fused stepper.
// It consumes exactly one value from each rng — lane t's stream seed, drawn
// in lane order — matching what New would consume for each trial.
func NewBatched(g *graph.Graph, cfg Config, rngs []*xrand.RNG) (*BatchedWalks, error) {
	if len(rngs) == 0 {
		return nil, fmt.Errorf("agents: NewBatched needs at least one trial RNG")
	}
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("agents: Count must be positive, got %d", cfg.Count)
	}
	if g.M() == 0 {
		return nil, fmt.Errorf("agents: graph has no edges")
	}
	if cfg.ChurnRate != 0 {
		return nil, fmt.Errorf("agents: batched walks do not support churn (ChurnRate=%g)", cfg.ChurnRate)
	}
	k := len(rngs)
	w := &BatchedWalks{
		g:     g,
		cfg:   cfg,
		k:     k,
		count: cfg.Count,
		seeds: make([]uint64, k),
		pos:   make([]graph.Vertex, k*cfg.Count),
		prev:  make([]graph.Vertex, k*cfg.Count),
		dirty: make([]bool, k),
	}
	for t, rng := range rngs {
		w.seeds[t] = rng.Uint64()
	}
	w.procs = par.Procs()
	w.class = classify(g)
	w.stepFn = w.stepShard
	// Lane t's agent i draws from stream (seeds[t], i, 0) through the same
	// placement code the serial constructor uses.
	for t := 0; t < k; t++ {
		if err := placeLane(g, cfg, w.seeds[t], w.pos[t*cfg.Count:(t+1)*cfg.Count]); err != nil {
			return nil, err
		}
	}
	copy(w.prev, w.pos)
	return w, nil
}

// K returns the number of lanes (trials).
func (w *BatchedWalks) K() int { return w.k }

// N returns the number of agents per lane.
func (w *BatchedWalks) N() int { return w.count }

// Round returns the number of Step calls so far.
func (w *BatchedWalks) Round() int { return w.round }

// Lane returns lane t's current positions, indexed by agent id. The slice
// aliases internal state: treat it as read-only and do not retain it across
// Step calls.
func (w *BatchedWalks) Lane(t int) []graph.Vertex {
	return w.pos[t*w.count : (t+1)*w.count]
}

// Step advances every lane with active[t] true by one synchronous round
// (inactive lanes keep their positions and consume no draws — their streams
// are keyed by round, so skipping rounds never shifts later draws). active
// must have length K; passing nil steps every lane.
func (w *BatchedWalks) Step(active []bool) {
	w.StepStamped(active, nil, nil)
}

// StepStamped is Step fused with per-lane occupancy stamping: every active
// lane t with a non-nil stamps[t] additionally gets epochs[t] stored into
// stamps[t] at each of its agents' destinations, in the same blocked pass
// that writes the positions. It is the batched counterpart of the serial
// Walks.StepStamped — protocols whose lanes reach the "every agent
// informed" regime (the Ω(n) tails of the paper's star-like families) use
// it to drop those lanes' separate mark-informed-positions pass (see
// core.BatchedVisitExchange). The walk draws are identical to Step's for
// every lane, stamped or not, so fusing never perturbs a trajectory.
//
// Stores into a lane's stamp array go through atomics on the sharded path
// (two shards may stamp the same vertex with the same value); readers must
// run after StepStamped returns. Passing nil stamps is exactly Step.
func (w *BatchedWalks) StepStamped(active []bool, stamps [][]uint32, epochs []uint32) {
	w.round++
	// Swap buffers as the serial stepper does: the fused loop reads prev and
	// writes pos for active lanes; a lane masked off after stepping needs
	// its frozen positions carried across once (dirty), after which both
	// buffers agree and the lane costs nothing per round.
	w.prev, w.pos = w.pos, w.prev
	w.laneIDs = w.laneIDs[:0]
	for t := 0; t < w.k; t++ {
		if active == nil || active[t] {
			w.laneIDs = append(w.laneIDs, t)
			w.dirty[t] = true
		} else if w.dirty[t] {
			copy(w.pos[t*w.count:(t+1)*w.count], w.prev[t*w.count:(t+1)*w.count])
			w.dirty[t] = false
		}
	}
	if len(w.laneIDs) == 0 {
		return
	}
	w.stamps, w.epochs = stamps, epochs
	n := w.count
	if w.procs == 1 || n <= batchedStepGrain {
		w.sharedStamp = false
		w.stepShard(0, 0, n)
		return
	}
	w.sharedStamp = true
	par.Do(n, batchedStepGrain, w.stepFn)
}

// batchBlock is the agent-block width of the fused step: lanes take turns
// over one block before the loop moves to the next, so the block's packed
// walk-index and CSR lines are touched by all K lanes while still hot, and
// the per-lane inner loop stays as tight as the serial stepper (stream base
// and offsets in registers).
const batchBlock = 512

// stepShard is the fused loop: agents [lo, hi) of every active lane,
// blocked so each lane's turn is a tight serial-style scan. Each
// (lane, agent) step is one packed-index load, one draw resolution, and
// one store — identical draws to the serial stepper, minus its
// data-dependent branches: uniform-degree-class graphs run a loop with no
// reduction dispatch at all, mixed graphs a branchless arithmetic select
// (the serial degree-1/power-of-two branches are taken near-randomly per
// agent on the star and tree families, and their mispredictions dominate
// the step cost there). The six loop bodies are written out rather than
// parameterized: an indirect call per (lane, agent) would give back more
// than the specialization wins.
func (w *BatchedWalks) stepShard(_, lo, hi int) {
	idx := w.g.WalkIndex()
	if idx == nil {
		w.stepShardGeneral(lo, hi)
		return
	}
	nbrs := w.g.NeighborsRaw()
	round := uint64(w.round)
	pos, prev := w.pos, w.prev
	lazy := w.cfg.Lazy
	class := w.class
	for blo := lo; blo < hi; blo += batchBlock {
		bhi := blo + batchBlock
		if bhi > hi {
			bhi = hi
		}
		for _, t := range w.laneIDs {
			off := t * w.count
			base := xrand.MixBase(w.seeds[t], uint64(blo), round)
			pv := prev[off+blo : off+bhi]
			ps := pos[off+blo : off+bhi]
			if lazy {
				switch class {
				case classPow2:
					stepBlockLazyPow2(pv, ps, idx, nbrs, base)
				case classMul:
					stepBlockLazyMul(pv, ps, idx, nbrs, base)
				default:
					stepBlockLazyAny(pv, ps, idx, nbrs, base)
				}
			} else {
				switch class {
				case classPow2:
					stepBlockPow2(pv, ps, idx, nbrs, base)
				case classMul:
					stepBlockMul(pv, ps, idx, nbrs, base)
				default:
					stepBlockAny(pv, ps, idx, nbrs, base)
				}
			}
			if w.stamps != nil && w.stamps[t] != nil {
				// Stamp the block's fresh destinations while they are still
				// in registers/L1 — the batched analogue of the serial
				// stepRangeStamp store.
				stampBlock(ps, w.stamps[t], w.epochs[t], w.sharedStamp)
			}
		}
	}
}

// stampBlock stores epoch at each destination in ps. shared selects atomic
// stores for the sharded path, where concurrent shards may stamp the same
// vertex (always with the same epoch value).
func stampBlock(ps []graph.Vertex, stamp []uint32, epoch uint32, shared bool) {
	if shared {
		for _, p := range ps {
			atomic.StoreUint32(&stamp[p], epoch)
		}
		return
	}
	for _, p := range ps {
		stamp[p] = epoch
	}
}

// The six block bodies below are deliberately separate small functions
// rather than one switch-laden loop: each gets its own register
// allocation, keeping the walk index and CSR pointers out of stack spills
// in the innermost loop. The call per (block, lane) is amortized over
// batchBlock agents.

func stepBlockPow2(pv, ps []graph.Vertex, idx []uint64, nbrs []graph.Vertex, base uint64) {
	ps = ps[:len(pv)]
	for i, from := range pv {
		u := xrand.Mix(base)
		base += xrand.UnitStride
		ps[i] = graph.WalkTargetPow2(idx[from], u, nbrs)
	}
}

func stepBlockMul(pv, ps []graph.Vertex, idx []uint64, nbrs []graph.Vertex, base uint64) {
	ps = ps[:len(pv)]
	for i, from := range pv {
		u := xrand.Mix(base)
		base += xrand.UnitStride
		ps[i] = graph.WalkTargetMul(idx[from], u, nbrs)
	}
}

func stepBlockAny(pv, ps []graph.Vertex, idx []uint64, nbrs []graph.Vertex, base uint64) {
	ps = ps[:len(pv)]
	for i, from := range pv {
		u := xrand.Mix(base)
		base += xrand.UnitStride
		ps[i] = graph.WalkTargetAny(idx[from], u, nbrs)
	}
}

// The lazy bodies fund the stay coin (top bit) and the neighbor index
// (low 32 bits) from one draw, as the serial lazy loop does; the coin
// applies as a conditional move instead of a 50/50 branch.

func stepBlockLazyPow2(pv, ps []graph.Vertex, idx []uint64, nbrs []graph.Vertex, base uint64) {
	ps = ps[:len(pv)]
	for i, from := range pv {
		u := xrand.Mix(base)
		base += xrand.UnitStride
		to := graph.WalkTarget32Pow2(idx[from], uint32(u), nbrs)
		if u>>63 != 0 {
			to = from
		}
		ps[i] = to
	}
}

func stepBlockLazyMul(pv, ps []graph.Vertex, idx []uint64, nbrs []graph.Vertex, base uint64) {
	ps = ps[:len(pv)]
	for i, from := range pv {
		u := xrand.Mix(base)
		base += xrand.UnitStride
		to := graph.WalkTarget32Mul(idx[from], uint32(u), nbrs)
		if u>>63 != 0 {
			to = from
		}
		ps[i] = to
	}
}

func stepBlockLazyAny(pv, ps []graph.Vertex, idx []uint64, nbrs []graph.Vertex, base uint64) {
	ps = ps[:len(pv)]
	for i, from := range pv {
		u := xrand.Mix(base)
		base += xrand.UnitStride
		to := graph.WalkTarget32Any(idx[from], uint32(u), nbrs)
		if u>>63 != 0 {
			to = from
		}
		ps[i] = to
	}
}

// stepShardGeneral mirrors stepShard through Graph.Neighbors for graphs
// without a packed walk index, consuming identical draws (it matches the
// serial stepRangeGeneral lane for lane).
func (w *BatchedWalks) stepShardGeneral(lo, hi int) {
	round := uint64(w.round)
	for _, t := range w.laneIDs {
		off := t * w.count
		seed := w.seeds[t]
		for i := lo; i < hi; i++ {
			from := w.prev[off+i]
			s := xrand.NewStream(seed, uint64(i), round)
			u := s.Uint64()
			if w.cfg.Lazy {
				if u>>63 != 0 {
					w.pos[off+i] = from
					continue
				}
				nb := w.g.Neighbors(from)
				w.pos[off+i] = nb[xrand.ReduceDeg32(uint32(u), len(nb))]
				continue
			}
			nb := w.g.Neighbors(from)
			if len(nb) == 1 {
				w.pos[off+i] = nb[0]
				continue
			}
			w.pos[off+i] = nb[xrand.ReduceDeg(u, len(nb))]
		}
		if w.stamps != nil && w.stamps[t] != nil {
			stampBlock(w.pos[off+lo:off+hi], w.stamps[t], w.epochs[t], w.sharedStamp)
		}
	}
}
