package walkstats

import (
	"math"
	"testing"
	"testing/quick"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func TestCoverTimeLowerBound(t *testing.T) {
	// A walk needs at least n-1 steps to cover n vertices.
	g := graph.Complete(32)
	ct, ok := CoverTime(g, 0, xrand.New(1), 0)
	if !ok {
		t.Fatal("cover time budget exhausted on K32")
	}
	if ct < 31 {
		t.Errorf("cover time %d < n-1", ct)
	}
}

// TestCoverTimeCompleteGraph: E[cover] on K_n is ~ n·H_n (coupon
// collector); check the mean against that with generous tolerance.
func TestCoverTimeCompleteGraph(t *testing.T) {
	const n = 64
	g := graph.Complete(n)
	s, err := EstimateCoverTime(g, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n-1) * harmonic(n-1) // walk on K_n = coupon collector over n-1 others
	if s.Mean < 0.6*want || s.Mean > 1.6*want {
		t.Errorf("K%d cover mean %.1f, want about %.1f", n, s.Mean, want)
	}
}

// TestCoverTimeCycleQuadratic: E[cover] on the n-cycle is n(n-1)/2.
func TestCoverTimeCycleQuadratic(t *testing.T) {
	const n = 32
	g := graph.Cycle(n)
	s, err := EstimateCoverTime(g, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n*(n-1)) / 2
	if s.Mean < 0.6*want || s.Mean > 1.6*want {
		t.Errorf("cycle cover mean %.1f, want about %.1f", s.Mean, want)
	}
}

func TestHittingTimeTrivial(t *testing.T) {
	g := graph.Path(5)
	if h, ok := HittingTime(g, 2, 2, xrand.New(1), 0); !ok || h != 0 {
		t.Errorf("HittingTime(v,v) = (%d,%v)", h, ok)
	}
}

// TestHittingTimePathEnds: hitting time from one end of a path to the other
// is exactly (n-1)² in expectation.
func TestHittingTimePathEnds(t *testing.T) {
	const n = 16
	g := graph.Path(n)
	sum := 0.0
	const trials = 60
	for i := 0; i < trials; i++ {
		h, ok := HittingTime(g, 0, n-1, xrand.New(uint64(i)), 0)
		if !ok {
			t.Fatal("budget exhausted")
		}
		sum += float64(h)
	}
	mean := sum / trials
	want := float64((n - 1) * (n - 1))
	if mean < 0.6*want || mean > 1.6*want {
		t.Errorf("path hitting mean %.1f, want about %.1f", mean, want)
	}
}

func TestMeetingTimeSameStart(t *testing.T) {
	g := graph.Complete(8)
	if m, ok := MeetingTime(g, 3, 3, false, xrand.New(1), 0); !ok || m != 0 {
		t.Errorf("MeetingTime(v,v) = (%d,%v)", m, ok)
	}
}

// TestMeetingTimeCompleteGraph: two uniform walks on K_n meet in a round
// with probability ~1/n, so the meeting time is ~geometric with mean ~n.
func TestMeetingTimeCompleteGraph(t *testing.T) {
	const n = 48
	g := graph.Complete(n)
	s, err := EstimateMeetingTime(g, 40, 13)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean < float64(n)/3 || s.Mean > float64(n)*2.5 {
		t.Errorf("K%d meeting mean %.1f, want Θ(n)", n, s.Mean)
	}
}

// TestMeetingTimeParityTrap: on an even cycle, non-lazy walks with odd
// displacement never meet; the lazy option resolves it (and
// EstimateMeetingTime picks lazy automatically on bipartite graphs).
func TestMeetingTimeParityTrap(t *testing.T) {
	g := graph.Cycle(8)
	if _, ok := MeetingTime(g, 0, 1, false, xrand.New(3), 5000); ok {
		t.Error("odd-offset walks met on an even cycle without laziness")
	}
	if _, ok := MeetingTime(g, 0, 1, true, xrand.New(3), 0); !ok {
		t.Error("lazy walks failed to meet")
	}
	if _, err := EstimateMeetingTime(g, 5, 3); err != nil {
		t.Errorf("EstimateMeetingTime on bipartite graph: %v", err)
	}
}

func TestEstimateValidation(t *testing.T) {
	g := graph.Complete(8)
	if _, err := EstimateCoverTime(g, 0, 1); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := EstimateMeetingTime(g, 0, 1); err == nil {
		t.Error("trials=0 accepted")
	}
}

// TestQuickWalksStayOnGraph: cover-time walks only traverse edges and the
// returned step counts are sane on random regular graphs.
func TestQuickWalksStayOnGraph(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 8 + 2*rng.IntN(20)
		g, err := graph.RandomRegularConnected(n, 3, rng)
		if err != nil {
			return true
		}
		ct, ok := CoverTime(g, 0, rng, 0)
		if !ok || ct < n-1 {
			return false
		}
		h, ok := HittingTime(g, 0, graph.Vertex(n-1), rng, 0)
		return ok && h >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDimitriouBound checks the [16] relation on a regular graph: the
// meet-exchange broadcast time is at most O(log n) times the pairwise
// meeting time (here with |A| = n agents the broadcast time is in fact much
// smaller; the bound direction is what matters).
func TestDimitriouBound(t *testing.T) {
	rng := xrand.New(99)
	g, err := graph.RandomRegularConnected(128, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	meet, err := EstimateMeetingTime(g, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	bound := meet.Mean * math.Log(float64(g.N()))
	if bound <= 0 {
		t.Fatal("degenerate bound")
	}
	// T_meetx with n agents should sit far below meeting-time × log n.
	// (Checked properly in the experiment harness; here just the direction.)
	if meet.Mean < 1 {
		t.Errorf("meeting time %.2f implausibly small", meet.Mean)
	}
}

func harmonic(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}
