// Package walkstats estimates the classical random-walk quantities the
// paper's related work builds on: cover time (Aleliunas et al. [1], multiple
// walks [2, 23]), hitting time, and the meeting time of two walks, which
// Dimitriou, Nikoletseas & Spirakis [16] relate to meet-exchange's broadcast
// time (T_meetx = O(meeting time · log n), and the bound is tight).
package walkstats

import (
	"fmt"

	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/stats"
	"rumor/internal/xrand"
)

// CoverTime simulates one simple random walk from start and returns the
// number of steps until every vertex has been visited, or ok=false if
// maxSteps (<= 0 means 64·n³, far beyond the O(nm) worst case at this
// scale) is exhausted first.
func CoverTime(g *graph.Graph, start graph.Vertex, rng *xrand.RNG, maxSteps int) (int, bool) {
	n := g.N()
	if maxSteps <= 0 {
		maxSteps = 64 * n * n * n
	}
	visited := bitset.New(n)
	visited.Set(int(start))
	remaining := n - 1
	cur := start
	for step := 1; step <= maxSteps; step++ {
		nb := g.Neighbors(cur)
		cur = nb[rng.IntN(len(nb))]
		if !visited.Test(int(cur)) {
			visited.Set(int(cur))
			remaining--
			if remaining == 0 {
				return step, true
			}
		}
	}
	return maxSteps, false
}

// HittingTime simulates a walk from `from` and returns the number of steps
// until it first visits `to`.
func HittingTime(g *graph.Graph, from, to graph.Vertex, rng *xrand.RNG, maxSteps int) (int, bool) {
	if from == to {
		return 0, true
	}
	n := g.N()
	if maxSteps <= 0 {
		maxSteps = 64 * n * n * n
	}
	cur := from
	for step := 1; step <= maxSteps; step++ {
		nb := g.Neighbors(cur)
		cur = nb[rng.IntN(len(nb))]
		if cur == to {
			return step, true
		}
	}
	return maxSteps, false
}

// MeetingTime simulates two independent walks from u and v (lazy if lazy is
// set, which is required on bipartite graphs) and returns the number of
// rounds until they occupy the same vertex.
func MeetingTime(g *graph.Graph, u, v graph.Vertex, lazy bool, rng *xrand.RNG, maxSteps int) (int, bool) {
	if u == v {
		return 0, true
	}
	n := g.N()
	if maxSteps <= 0 {
		maxSteps = 64 * n * n * n
	}
	step1 := func(cur graph.Vertex) graph.Vertex {
		if lazy && rng.Bernoulli(0.5) {
			return cur
		}
		nb := g.Neighbors(cur)
		return nb[rng.IntN(len(nb))]
	}
	a, b := u, v
	for step := 1; step <= maxSteps; step++ {
		a = step1(a)
		b = step1(b)
		if a == b {
			return step, true
		}
	}
	return maxSteps, false
}

// EstimateCoverTime returns summary statistics of the cover time over
// independent trials from stationary starts.
func EstimateCoverTime(g *graph.Graph, trials int, seed uint64) (stats.Summary, error) {
	if trials <= 0 {
		return stats.Summary{}, fmt.Errorf("walkstats: trials must be positive")
	}
	times := make([]float64, trials)
	for i := range times {
		rng := xrand.New(xrand.Derive(seed, i))
		start := g.EndpointOwner(rng.IntN(g.EndpointCount()))
		t, ok := CoverTime(g, start, rng, 0)
		if !ok {
			return stats.Summary{}, fmt.Errorf("walkstats: cover time trial %d exhausted its budget", i)
		}
		times[i] = float64(t)
	}
	return stats.Summarize(times), nil
}

// EstimateMeetingTime returns summary statistics of the meeting time of two
// stationary-started walks. Laziness is chosen automatically on bipartite
// graphs, mirroring meet-exchange.
func EstimateMeetingTime(g *graph.Graph, trials int, seed uint64) (stats.Summary, error) {
	if trials <= 0 {
		return stats.Summary{}, fmt.Errorf("walkstats: trials must be positive")
	}
	lazy := graph.IsBipartite(g)
	times := make([]float64, trials)
	for i := range times {
		rng := xrand.New(xrand.Derive(seed, i))
		u := g.EndpointOwner(rng.IntN(g.EndpointCount()))
		v := g.EndpointOwner(rng.IntN(g.EndpointCount()))
		t, ok := MeetingTime(g, u, v, lazy, rng, 0)
		if !ok {
			return stats.Summary{}, fmt.Errorf("walkstats: meeting time trial %d exhausted its budget", i)
		}
		times[i] = float64(t)
	}
	return stats.Summarize(times), nil
}
