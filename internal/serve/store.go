package serve

import (
	"sync"

	"rumor/internal/lru"
)

// store is the sharded job table and result cache. Job IDs are SHA-256
// hex, so the first byte of the hash is a uniform shard selector: intake,
// dedup probes, and completion for different IDs land on different locks
// instead of serializing on one server-wide mutex. Each shard pairs the
// in-flight job map with its slice of the completed-result LRU, so the
// "always findable" invariant — an accepted job is in the map until the
// instant its payload is in the cache — holds per shard under one lock.
//
// Below the memory tiers sits the optional disk spill (see spill.go):
// shard LRUs write capacity-evicted payloads through their eviction hook,
// and find falls through memory → disk, promoting disk hits back into
// the owning shard.
type store struct {
	shards []storeShard
	spill  *spill // nil when no data dir is configured
}

// spillItem is one eviction awaiting its disk write.
type spillItem struct {
	id string
	c  *completedJob
}

// storeShard is padded out to its own cache line so neighboring shards'
// locks do not false-share under concurrent intake.
type storeShard struct {
	mu    sync.Mutex
	jobs  map[string]*Job
	cache *lru.Cache[string, *completedJob]
	// pending collects capacity evictions raised while mu was held (the
	// LRU hook fires during Put); the caller that triggered them drains
	// and writes after releasing mu, so disk I/O never blocks the shard.
	pending []spillItem
	_       [64 - (8+8+8+24)%64]byte
}

// drainPending takes the evictions queued under mu and writes them with
// the shard unlocked. Safe to call with nothing pending.
func (st *store) drainPending(sh *storeShard) {
	sh.mu.Lock()
	items := sh.pending
	sh.pending = nil
	sh.mu.Unlock()
	for _, it := range items {
		st.spill.write(it.id, it.c)
	}
}

// newStore builds nshards shards whose LRU slices sum to (at least)
// cacheSize entries. The bound is enforced per shard, so a pathological
// key skew can retain slightly less than cacheSize globally — the price
// of not sharing one lock.
func newStore(nshards, cacheSize int, sp *spill) *store {
	if nshards < 1 {
		nshards = 1
	}
	per := (cacheSize + nshards - 1) / nshards
	if per < 1 {
		per = 1
	}
	st := &store{shards: make([]storeShard, nshards), spill: sp}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.jobs = make(map[string]*Job)
		sh.cache = lru.New[string, *completedJob](per)
		if sp != nil {
			// Put runs under sh.mu, so the hook only queues; the Put caller
			// drains (and does the file I/O) once the shard is unlocked.
			sh.cache.OnEvict(func(id string, c *completedJob) {
				sh.pending = append(sh.pending, spillItem{id, c})
			})
		}
	}
	return st
}

// shardFor maps an ID to its shard by hash prefix. IDs this server mints
// are lowercase hex; anything else (a malformed GET /v1/jobs/{id}) maps
// to shard 0, where it will simply miss.
func (st *store) shardFor(id string) *storeShard {
	if len(id) < 2 {
		return &st.shards[0]
	}
	hi, ok1 := hexVal(id[0])
	lo, ok2 := hexVal(id[1])
	if !ok1 || !ok2 {
		return &st.shards[0]
	}
	return &st.shards[int(hi<<4|lo)%len(st.shards)]
}

// hexVal is the single definition of the ID alphabet (lowercase hex),
// shared by the shard selector and spill.isJobID.
func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// find resolves an ID anywhere in the store: the in-flight map, the
// memory cache, then the disk tier. With promote, a disk hit is also
// inserted into the owning shard's LRU so repeats are memory-speed (the
// promotion may evict, which re-spills — an idempotent rewrite of
// identical bytes). Promotion is for submissions, where reuse is
// likely; read-only status/stream lookups pass promote=false so a poll
// sweep over cold IDs cannot evict hot entries or churn spill writes —
// the trade-off is that each such lookup re-reads and re-decodes the
// spill file (polling a cold ID is I/O per poll, never cache pollution).
// The returned source is meaningful only when found.
func (st *store) find(id string, promote bool) (j *Job, c *completedJob, src source, ok bool) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	if j, ok := sh.jobs[id]; ok {
		sh.mu.Unlock()
		return j, nil, sourceDedup, true
	}
	if c, ok := sh.cache.Get(id); ok {
		sh.mu.Unlock()
		return nil, c, sourceCache, true
	}
	sh.mu.Unlock()
	if st.spill == nil {
		return nil, nil, "", false
	}
	c, ok = st.spill.read(id)
	if !ok {
		return nil, nil, "", false
	}
	if !promote {
		return nil, c, sourceDisk, true
	}
	sh.mu.Lock()
	// Re-check under the lock: the job may have been resubmitted or the
	// payload re-cached while we read the file. Memory wins — it is the
	// same bytes or fresher state.
	if j, live := sh.jobs[id]; live {
		sh.mu.Unlock()
		return j, nil, sourceDedup, true
	}
	if mc, cached := sh.cache.Get(id); cached {
		sh.mu.Unlock()
		return nil, mc, sourceCache, true
	}
	sh.cache.Put(id, c)
	sh.mu.Unlock()
	st.drainPending(sh) // promotion may have evicted; re-spill is idempotent
	return nil, c, sourceDisk, true
}

// complete publishes a finished job's payload: atomically (per shard)
// moves the ID from the in-flight map to the result cache, then writes
// any eviction this displaced to disk with the shard unlocked.
func (st *store) complete(id string, c *completedJob) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	delete(sh.jobs, id)
	sh.cache.Put(id, c)
	sh.mu.Unlock()
	if st.spill != nil {
		st.drainPending(sh)
	}
}

// jobsLive counts in-flight jobs across shards.
func (st *store) jobsLive() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += len(sh.jobs)
		sh.mu.Unlock()
	}
	return n
}

// cacheLen counts resident completed payloads across shards.
func (st *store) cacheLen() int {
	n := 0
	for i := range st.shards {
		n += st.shards[i].cache.Len()
	}
	return n
}
