package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rumor/internal/experiment"
)

// postSweep posts a sweep body and returns status, headers, and body.
func postSweep(t *testing.T, ts *httptest.Server, body string, wait bool) (int, http.Header, []byte) {
	t.Helper()
	url := ts.URL + "/v1/sweep"
	if !wait {
		url += "?wait=0"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// pickDistinct samples k distinct elements of pool in pool order (so the
// request is deterministic given the rng).
func pickDistinct[T any](rng *rand.Rand, pool []T, k int) []T {
	idx := rng.Perm(len(pool))[:k]
	out := make([]T, 0, k)
	for i, in := range pool {
		for _, j := range idx {
			if i == j {
				out = append(out, in)
				break
			}
		}
	}
	return out
}

// TestSweepPlannerWarmColdEquivalence is the planner's property test:
// for random sweep specs, a sweep against a pre-warmed store — where a
// random subset of points was already run (and so is served from cache)
// and only the misses are computed — produces a response body and a
// stream byte-identical to the same sweep on a cold store, and schedules
// exactly the misses.
func TestSweepPlannerWarmColdEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	graphPool := []string{"star:12", "star:20", "cycle:16", "path:14", "complete:8", "doublestar:6"}
	protoPool := []experiment.Proto{
		experiment.ProtoPush, experiment.ProtoPPull, experiment.ProtoVisitX,
		experiment.ProtoMeetX, experiment.ProtoHybrid,
	}
	for iter := 0; iter < 6; iter++ {
		graphs := pickDistinct(rng, graphPool, 1+rng.Intn(3))
		protos := pickDistinct(rng, protoPool, 1+rng.Intn(2))
		seeds := []uint64{1 + uint64(rng.Intn(50))}
		if rng.Intn(2) == 0 {
			seeds = append(seeds, 100+uint64(rng.Intn(50)))
		}
		trials := 1 + rng.Intn(3)
		sw := experiment.Sweep{Defaults: experiment.DefaultRunSpec(), Graphs: graphs, Protocols: protos, Seeds: seeds}
		sw.Defaults.Trials = trials
		points, err := sw.Expand()
		if err != nil {
			t.Fatal(err)
		}
		reqBody, err := json.Marshal(sw)
		if err != nil {
			t.Fatal(err)
		}
		body := string(reqBody)
		label := fmt.Sprintf("iter %d (%v × %v × %v, %d trials)", iter, graphs, protos, seeds, trials)

		// Cold store: every point is a miss.
		cold, cts := newTestServer(t, Options{Workers: 2})
		code, hdr, coldBody := postSweep(t, cts, body, true)
		if code != http.StatusOK {
			t.Fatalf("%s: cold sweep status %d body %s", label, code, coldBody)
		}
		if got := cold.Stats().Simulations; got != int64(len(points)) {
			t.Fatalf("%s: cold sweep ran %d simulations, want %d", label, got, len(points))
		}
		coldStream := strings.Join(streamLines(t, cts, hdr.Get("X-Rumord-Job")), "\n")

		// Warm store: pre-run a random subset of points individually.
		warm, wts := newTestServer(t, Options{Workers: 2})
		warmed := 0
		for _, pt := range points {
			if rng.Intn(2) == 0 {
				continue
			}
			if code, _, b := postRun(t, wts, string(pt.Spec.CanonicalJSON())); code != http.StatusOK {
				t.Fatalf("%s: pre-warm %s: status %d body %s", label, pt.Spec.Graph, code, b)
			}
			warmed++
		}
		before := warm.Stats().Simulations
		if before != int64(warmed) {
			t.Fatalf("%s: pre-warming ran %d simulations, want %d", label, before, warmed)
		}
		code, whdr, warmBody := postSweep(t, wts, body, true)
		if code != http.StatusOK {
			t.Fatalf("%s: warm sweep status %d body %s", label, code, warmBody)
		}
		// The simulation-count probe: only the misses were scheduled.
		if got := warm.Stats().Simulations - before; got != int64(len(points)-warmed) {
			t.Fatalf("%s: warm sweep ran %d simulations, want only the %d misses",
				label, got, len(points)-warmed)
		}
		if h := whdr.Get("X-Rumord-Sweep-Hits"); h != fmt.Sprint(warmed) {
			t.Fatalf("%s: planner reported %s hits, want %d", label, h, warmed)
		}
		// Byte-identity: body and stream frame order match the cold run.
		if !bytes.Equal(warmBody, coldBody) {
			t.Fatalf("%s: warm sweep body differs from cold\ncold: %s\nwarm: %s", label, coldBody, warmBody)
		}
		warmStream := strings.Join(streamLines(t, wts, whdr.Get("X-Rumord-Job")), "\n")
		if warmStream != coldStream {
			t.Fatalf("%s: warm sweep stream differs from cold\ncold:\n%s\nwarm:\n%s", label, coldStream, warmStream)
		}
	}
}

// TestSweepStreamShape: a sweep stream is, per point in cross-product
// order, one header frame then that point's trial frames in strict trial
// order, closed by a terminal frame carrying both counts.
func TestSweepStreamShape(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	const trials = 3
	body := fmt.Sprintf(`{"defaults":{"trials":%d,"seed":2},"graphs":["star:16","cycle:12"],"protocols":["push","visitx"]}`, trials)
	code, hdr, _ := postSweep(t, ts, body, true)
	if code != http.StatusOK {
		t.Fatalf("sweep status %d", code)
	}
	lines := streamLines(t, ts, hdr.Get("X-Rumord-Job"))
	const numPoints = 4
	if want := numPoints*(trials+1) + 1; len(lines) != want {
		t.Fatalf("stream has %d frames, want %d", len(lines), want)
	}
	for p := 0; p < numPoints; p++ {
		base := p * (trials + 1)
		var head struct {
			Point  *int   `json:"point"`
			Job    string `json:"job"`
			Frames int    `json:"frames"`
		}
		if err := json.Unmarshal([]byte(lines[base]), &head); err != nil {
			t.Fatalf("header %d: %v (%s)", p, err, lines[base])
		}
		if head.Point == nil || *head.Point != p || head.Job == "" || head.Frames != trials {
			t.Fatalf("header %d = %s", p, lines[base])
		}
		for i := 0; i < trials; i++ {
			var frame struct {
				Trial *int `json:"trial"`
			}
			if err := json.Unmarshal([]byte(lines[base+1+i]), &frame); err != nil || frame.Trial == nil || *frame.Trial != i {
				t.Fatalf("point %d frame %d out of order: %s", p, i, lines[base+1+i])
			}
		}
	}
	var fin struct {
		Done   bool `json:"done"`
		Points int  `json:"points"`
		Trials int  `json:"trials"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &fin); err != nil {
		t.Fatal(err)
	}
	if !fin.Done || fin.Points != numPoints || fin.Trials != numPoints*trials {
		t.Fatalf("terminal frame %+v", fin)
	}
}

// TestSweepOverQueueBound422 is the regression test for oversized
// cross-products: a sweep that cannot be scheduled must be rejected with
// 422 — not 500, not a partial 429 — naming the offending dimension.
func TestSweepOverQueueBound422(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueSize: 4})
	body := `{"defaults":{"trials":1,"seed":1},
	          "graphs":["star:8","star:12"],
	          "protocols":["push","push-pull","visitx"],
	          "seeds":[1]}`
	code, _, b := postSweep(t, ts, body, true)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d body %s, want 422", code, b)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatal(err)
	}
	// 2 × 3 × 1 = 6 points over a queue bound of 4; protocols is the
	// largest dimension.
	for _, want := range []string{"6 points", "queue bound", "protocols (3)"} {
		if !strings.Contains(e.Error, want) {
			t.Fatalf("422 error %q does not name %q", e.Error, want)
		}
	}
	// The rejection must be a pure plan-time check: nothing scheduled.
	if st := s.Stats(); st.Simulations != 0 || st.JobsLive != 0 {
		t.Fatalf("oversized sweep had side effects: %+v", st)
	}
}

// TestSweepDedupConcurrent: identical concurrent sweeps collapse onto
// one plan — point simulations run once and every client gets identical
// bytes.
func TestSweepDedupConcurrent(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	release := setGate(s)
	body := `{"defaults":{"trials":2,"seed":3},"graphs":["star:16","cycle:12"],"protocols":["visitx"]}`
	const clients = 4
	codes := make([]int, clients)
	bodies := make([][]byte, clients)
	done := make(chan int, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			codes[i], _, bodies[i] = postSweep(t, ts, body, true)
			done <- i
		}(i)
	}
	// The first plan is registered (2 point jobs + the sweep job) and its
	// simulations are gated, so every other client resolves against the
	// in-flight sweep, not the cache.
	waitUntil(t, "sweep plan in flight", func() bool { return s.Stats().JobsLive >= 3 })
	close(release)
	for i := 0; i < clients; i++ {
		<-done
	}
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d body %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d sweep body differs", i)
		}
	}
	if st := s.Stats(); st.Simulations != 2 {
		t.Fatalf("%d identical sweeps ran %d simulations, want 2 (one per point)", clients, st.Simulations)
	}
}
