package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"rumor/internal/experiment"
	"rumor/internal/metrics"
)

// scrape fetches and parses ts's /metrics.
func scrape(t *testing.T, url string) *metrics.Scrape {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	sc, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return sc
}

// TestMetricsEndpoint drives run/repeat/sweep traffic and checks the
// scrape: full series inventory from boot, the submission conservation
// law, populated per-protocol latency histograms, and zero errors.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	// Before any traffic: every pre-registered series already exists,
	// including all five protocol histogram children.
	sc := scrape(t, ts.URL)
	for _, p := range experiment.Protos() {
		if !sc.Has("rumord_simulation_seconds_bucket", map[string]string{"protocol": string(p)}) {
			t.Fatalf("protocol %q histogram missing from boot scrape", p)
		}
	}
	for _, name := range []string{
		"rumord_requests_total", "rumord_simulations_total", "rumord_failures_total",
		"rumord_internal_errors_total", "rumord_spill_errors_total", "rumord_queue_capacity",
		"rumor_graph_memo_hits_total", "rumor_graph_csr_opens_total",
	} {
		if !sc.Has(name, nil) {
			t.Fatalf("series %s missing from boot scrape", name)
		}
	}

	// Traffic: a fresh run, a cache replay, and a sweep overlapping it.
	if code, _, body := postRun(t, ts, specStarVisitX); code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	if code, hdr, body := postRun(t, ts, specStarVisitX); code != http.StatusOK || hdr.Get("X-Rumord-Source") != "cache" {
		t.Fatalf("repeat: %d source=%q %s", code, hdr.Get("X-Rumord-Source"), body)
	}
	sweep := `{"graphs":["star:64"],"protocols":["visitx","push"],"seeds":[3],"defaults":{"trials":6}}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}

	sc = scrape(t, ts.URL)
	requests := sc.Sum("rumord_requests_total")
	bySource := sc.Sum("rumord_requests_by_source_total")
	rejected := sc.Sum("rumord_submit_rejections_total")
	if requests == 0 || requests != bySource+rejected {
		t.Fatalf("conservation: requests=%v by_source=%v rejections=%v", requests, bySource, rejected)
	}
	if v, _ := sc.Value("rumord_requests_by_source_total", map[string]string{"source": "cache"}); v < 1 {
		t.Fatalf("cache source count = %v, want >= 1", v)
	}
	// visitx ran for the run + sweep point (deduped/cached), push fresh in
	// the sweep: both histograms must be populated and internally valid.
	for _, p := range []string{"visitx", "push"} {
		n, err := sc.CheckHistogram("rumord_simulation_seconds", map[string]string{"protocol": p})
		if err != nil {
			t.Fatalf("%s histogram: %v", p, err)
		}
		if n < 1 {
			t.Fatalf("%s histogram count = %d, want >= 1", p, n)
		}
	}
	if v := sc.Sum("rumord_sweep_points_total"); v != 2 {
		t.Fatalf("sweep points = %v, want 2", v)
	}
	for _, name := range []string{"rumord_internal_errors_total", "rumord_failures_total", "rumord_spill_errors_total"} {
		if v := sc.Sum(name); v != 0 {
			t.Fatalf("%s = %v, want 0", name, v)
		}
	}
	if got := sc.Sum("rumord_simulations_total"); got < 2 {
		t.Fatalf("simulations = %v, want >= 2", got)
	}
}

// TestMetricsReadableWhileDraining pins the drain exemption: once
// Shutdown stops intake, /metrics and /v1/healthz still answer 200
// (operators watch the drain complete) while /v1/readyz and submissions
// answer 503.
func TestMetricsReadableWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	release := setGate(s)
	// Hold one job running so the drain has something to wait on.
	done := make(chan struct{})
	go func() {
		defer close(done)
		postRun(t, ts, specStarVisitX)
	}()
	waitUntil(t, "job accepted", func() bool { return s.Stats().JobsLive >= 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitUntil(t, "draining", s.Draining)

	sc := scrape(t, ts.URL) // must be 200 mid-drain
	if v, _ := sc.Value("rumord_draining", nil); v != 1 {
		t.Fatalf("rumord_draining = %v, want 1 mid-drain", v)
	}
	if resp, err := http.Get(ts.URL + "/v1/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz mid-drain: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/v1/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz mid-drain: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	spec2 := `{"graph":"star:32","protocol":"push","trials":3,"seed":9}`
	if code, _, _ := postRun(t, ts, spec2); code != http.StatusServiceUnavailable {
		t.Fatalf("run mid-drain: %d, want 503", code)
	}
	sc = scrape(t, ts.URL)
	if v, _ := sc.Value("rumord_submit_rejections_total", map[string]string{"reason": "draining"}); v < 1 {
		t.Fatalf("draining rejections = %v, want >= 1", v)
	}

	close(release)
	<-done
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Post-drain, the scrape still answers (the HTTP front is the
	// caller's to stop) and shows the drained steady state.
	sc = scrape(t, ts.URL)
	if v, _ := sc.Value("rumord_jobs_live", nil); v != 0 {
		t.Fatalf("jobs_live after drain = %v, want 0", v)
	}
}

// TestDisableMetrics pins the benchmark configuration: no /metrics
// route, and the serving paths still work.
func TestDisableMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, DisableMetrics: true})
	if code, _, body := postRun(t, ts, specStarVisitX); code != http.StatusOK {
		t.Fatalf("run: %d %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with DisableMetrics: %d, want 404", resp.StatusCode)
	}
}
