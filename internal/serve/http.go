package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"rumor/internal/experiment"
)

// sweepLimit bounds the cross-product size of one /v1/sweep request.
const sweepLimit = 1024

// maxBodyBytes bounds request bodies; specs are a few hundred bytes.
const maxBodyBytes = 1 << 20

// Handler returns the HTTP API:
//
//	POST /v1/run              run (or join, or replay) one spec; ?wait=0 for async
//	POST /v1/sweep            submit a cross-product of specs, returns job ids
//	GET  /v1/jobs/{id}        job status; embeds the result when done
//	GET  /v1/jobs/{id}/stream NDJSON per-trial results, replay + follow
//	GET  /v1/healthz          liveness + counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// errorJSON is the error body of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(errorJSON{Error: fmt.Sprintf(format, args...)})
	w.Write(append(b, '\n'))
}

// writeJSON marshals v; for pre-marshaled bodies use writeRaw so cached
// bytes stay byte-identical.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(mustMarshalLine(v))
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// decodeBody strictly decodes a single JSON object into v: unknown
// fields are rejected (a typoed knob silently meaning "default" would
// dedup against the wrong simulation), and so is trailing content (a
// concatenated second request would otherwise be dropped silently).
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("decode request: unexpected content after the JSON object")
	}
	return nil
}

// decodeSpec overlays the request body onto the shared defaults and
// normalizes.
func decodeSpec(r *http.Request) (experiment.RunSpec, error) {
	spec := experiment.DefaultRunSpec()
	if err := decodeBody(r, &spec); err != nil {
		return experiment.RunSpec{}, err
	}
	return spec.Normalize()
}

// submitStatus maps a submission error to an HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// handleRun serves POST /v1/run. By default it waits for the result and
// returns the full response body — byte-identical across fresh, deduped,
// and cached service of the same normalized spec. With ?wait=0 it returns
// 202 and the job id immediately.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	spec, err := decodeSpec(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, j, c, src, err := s.submit(spec)
	if err != nil {
		writeError(w, submitStatus(err), "%v", err)
		return
	}
	w.Header().Set("X-Rumord-Job", id)
	w.Header().Set("X-Rumord-Source", string(src))
	if r.URL.Query().Get("wait") == "0" {
		writeJSON(w, http.StatusAccepted, jobStatusBody(id, j, c))
		return
	}
	if c == nil {
		select {
		case <-j.done:
		case <-r.Context().Done():
			// Client gone; the job keeps running for other waiters and the
			// cache.
			return
		}
		resp, jerr := j.result()
		if jerr != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", jerr)
			return
		}
		writeRaw(w, http.StatusOK, resp)
		return
	}
	if c.failed() {
		writeError(w, http.StatusUnprocessableEntity, "%s", c.errMsg)
		return
	}
	writeRaw(w, http.StatusOK, c.resp)
}

// sweepRequest is the body of POST /v1/sweep: shared defaults plus the
// axes of a cross-product. Empty axes inherit the default's value.
type sweepRequest struct {
	Defaults  experiment.RunSpec `json:"defaults"`
	Graphs    []string           `json:"graphs"`
	Protocols []experiment.Proto `json:"protocols,omitempty"`
	Seeds     []uint64           `json:"seeds,omitempty"`
}

// sweepPoint reports one submitted point of a sweep.
type sweepPoint struct {
	Graph    string           `json:"graph"`
	Protocol experiment.Proto `json:"protocol"`
	Seed     uint64           `json:"seed"`
	Job      string           `json:"job"`
	Source   string           `json:"source"`
}

// handleSweep serves POST /v1/sweep: the paper's sweep shape — a list of
// graphs × protocols × seeds sharing every other knob — submitted as
// individual jobs that dedup and cache like any other request. Responds
// 202 with one job id per point; poll or stream each id.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req := sweepRequest{Defaults: experiment.DefaultRunSpec()}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Graphs) == 0 {
		writeError(w, http.StatusBadRequest, "sweep needs at least one graph")
		return
	}
	protos := req.Protocols
	if len(protos) == 0 {
		protos = []experiment.Proto{req.Defaults.Protocol}
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{req.Defaults.Seed}
	}
	if n := len(req.Graphs) * len(protos) * len(seeds); n > sweepLimit {
		writeError(w, http.StatusBadRequest, "sweep of %d points exceeds the limit of %d", n, sweepLimit)
		return
	}
	// Normalize every point before submitting any: validation is pure, so
	// a bad point rejects the whole sweep with zero side effects.
	type point struct {
		spec  experiment.RunSpec
		proto experiment.Proto
		seed  uint64
	}
	specs := make([]point, 0, len(req.Graphs)*len(protos)*len(seeds))
	for _, gs := range req.Graphs {
		for _, p := range protos {
			for _, seed := range seeds {
				spec := req.Defaults
				spec.Graph = gs
				spec.Protocol = p
				spec.Seed = seed
				// A pinned defaults.graphSeed applies to every point (one
				// random graph swept across protocol seeds); when unset,
				// Normalize derives it from each point's Seed.
				spec, err := spec.Normalize()
				if err != nil {
					writeError(w, http.StatusBadRequest, "point %s/%s/%d: %v", gs, p, seed, err)
					return
				}
				specs = append(specs, point{spec, p, seed})
			}
		}
	}
	// Submission has side effects; on a mid-sweep rejection (queue full,
	// draining) report the already-submitted points alongside the error so
	// the caller can track the simulations that are running.
	points := make([]sweepPoint, 0, len(specs))
	for _, pt := range specs {
		id, _, _, src, err := s.submit(pt.spec)
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(submitStatus(err))
			w.Write(mustMarshalLine(struct {
				Error string       `json:"error"`
				Jobs  []sweepPoint `json:"jobs"`
			}{fmt.Sprintf("point %s/%s/%d: %v (the listed jobs were already submitted)", pt.spec.Graph, pt.proto, pt.seed, err), points}))
			return
		}
		points = append(points, sweepPoint{
			Graph: pt.spec.Graph, Protocol: pt.proto, Seed: pt.seed, Job: id, Source: string(src),
		})
	}
	writeJSON(w, http.StatusAccepted, struct {
		Jobs []sweepPoint `json:"jobs"`
	}{points})
}

// jobStatus is the body of GET /v1/jobs/{id}.
type jobStatus struct {
	Job     string          `json:"job"`
	Status  jobState        `json:"status"`
	Trials  int             `json:"trials"`
	Emitted int             `json:"emitted"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// jobStatusBody renders the status of a live or completed job (exactly
// one of j and c is non-nil).
func jobStatusBody(id string, j *Job, c *completedJob) jobStatus {
	if j != nil {
		j.mu.Lock()
		st := jobStatus{Job: id, Status: j.state, Trials: j.Spec.Trials, Emitted: len(j.lines)}
		j.mu.Unlock()
		return st
	}
	if c.failed() {
		return jobStatus{Job: id, Status: stateFailed, Error: c.errMsg, Trials: c.trials, Emitted: len(c.lines)}
	}
	return jobStatus{
		Job: id, Status: stateDone, Emitted: len(c.lines), Trials: c.trials,
		Result: json.RawMessage(c.resp),
	}
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, c, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	writeJSON(w, http.StatusOK, jobStatusBody(id, j, c))
}

// handleStream serves GET /v1/jobs/{id}/stream: NDJSON frames, one per
// trial in strict trial order, closed by a terminal frame. Completed jobs
// replay their stored frames — byte-identical to what a live follower of
// the original run received.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, c, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Rumord-Job", id)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if c != nil {
		for _, line := range c.lines {
			w.Write(line)
		}
		w.Write(c.final)
		flush()
		return
	}
	next := 0
	for {
		lines, _, final, changed := j.snapshot(next)
		for _, line := range lines {
			w.Write(line)
		}
		next += len(lines)
		if len(lines) > 0 {
			flush()
		}
		if final != nil {
			w.Write(final)
			flush()
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealthz serves GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}{"ok", s.Stats()})
}
