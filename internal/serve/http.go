package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"rumor/internal/experiment"
)

// maxBodyBytes bounds request bodies; specs are a few hundred bytes.
const maxBodyBytes = 1 << 20

// Handler returns the HTTP API:
//
//	POST /v1/run              run (or join, or replay) one spec; ?wait=0 for async
//	POST /v1/sweep            plan + run a cross-product of specs cache-aware;
//	                          ?wait=0 for async (202 + per-point provenance)
//	GET  /v1/jobs/{id}        job or sweep status; embeds the result when done
//	GET  /v1/jobs/{id}/stream NDJSON results, replay + follow
//	GET  /v1/healthz          liveness + counters (200 while the process serves)
//	GET  /v1/readyz           readiness: 200 with queue headroom, 503 once draining
//	GET  /metrics             Prometheus text exposition (unless DisableMetrics)
//
// Like /v1/healthz, /metrics answers 200 while the server drains — only
// intake (run/sweep submissions, via readyz for routers) is refused, so
// operators can watch a drain complete through the same scrape that
// watched the server live.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	if s.m != nil {
		mux.Handle("GET /metrics", s.m.reg.Handler())
	}
	return mux
}

// errorJSON is the error body of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(errorJSON{Error: fmt.Sprintf(format, args...)})
	w.Write(append(b, '\n'))
}

// writeJSON marshals v; for pre-marshaled bodies use writeRaw so cached
// bytes stay byte-identical.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(mustMarshalLine(v))
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// decodeBody strictly decodes a single JSON object into v: unknown
// fields are rejected (a typoed knob silently meaning "default" would
// dedup against the wrong simulation), and so is trailing content (a
// concatenated second request would otherwise be dropped silently).
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("decode request: unexpected content after the JSON object")
	}
	return nil
}

// decodeSpec overlays the request body onto the shared defaults and
// normalizes.
func decodeSpec(r *http.Request) (experiment.RunSpec, error) {
	spec := experiment.DefaultRunSpec()
	if err := decodeBody(r, &spec); err != nil {
		return experiment.RunSpec{}, err
	}
	return spec.Normalize()
}

// submitStatus maps a submission error to an HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// handleRun serves POST /v1/run. By default it waits for the result and
// returns the full response body — byte-identical across fresh, deduped,
// and cached service of the same normalized spec. With ?wait=0 it returns
// 202 and the job id immediately.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	spec, err := decodeSpec(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, j, c, src, err := s.submit(spec)
	if err != nil {
		status := submitStatus(err)
		if status == http.StatusInternalServerError {
			s.m.countInternalError()
		}
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("X-Rumord-Job", id)
	w.Header().Set("X-Rumord-Source", string(src))
	if r.URL.Query().Get("wait") == "0" {
		writeJSON(w, http.StatusAccepted, jobStatusBody(id, j, c))
		return
	}
	waitAndRespond(w, r, j, c)
}

// waitAndRespond is the shared waited-request tail of /v1/run and
// /v1/sweep: wait for the in-flight job (exactly one of j and c is
// non-nil), then write the result bytes or map a failure to 422.
func waitAndRespond(w http.ResponseWriter, r *http.Request, j *Job, c *completedJob) {
	if c == nil {
		select {
		case <-j.done:
		case <-r.Context().Done():
			// Client gone; the work keeps running for other waiters and the
			// cache.
			return
		}
		resp, jerr := j.result()
		if jerr != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", jerr)
			return
		}
		writeRaw(w, http.StatusOK, resp)
		return
	}
	if c.failed() {
		writeError(w, http.StatusUnprocessableEntity, "%s", c.errMsg)
		return
	}
	writeRaw(w, http.StatusOK, c.resp)
}

// sweepPoint reports one planned point of a fresh sweep: its identity
// plus where the planner resolved it (cache/disk/dedup/run). Provenance
// is planning metadata — it varies with store temperature, so it appears
// only in the async 202 body and headers, never in the deterministic
// sweep result.
type sweepPoint struct {
	Graph    string           `json:"graph"`
	Protocol experiment.Proto `json:"protocol"`
	Seed     uint64           `json:"seed"`
	Job      string           `json:"job"`
	Source   string           `json:"source"`
}

// sweepStatus is the async (202) body of POST /v1/sweep?wait=0. The
// provenance array is named "plan" — not "points" — so it cannot shadow
// the embedded jobStatus.Points count, and the "points" key keeps one
// type (int) across every endpoint.
type sweepStatus struct {
	jobStatus
	Plan []sweepPoint `json:"plan,omitempty"` // fresh plans only
}

// handleSweep serves POST /v1/sweep: the paper's sweep shape — a list of
// graphs × protocols × seeds sharing every other knob — planned
// cache-aware: every point is probed against the store and only the
// misses are scheduled, yet the assembled response and stream are
// byte-identical to a cold sweep. By default the handler waits for the
// assembled body (like /v1/run); with ?wait=0 it responds 202 with the
// sweep job ID and per-point planning provenance.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req := experiment.Sweep{Defaults: experiment.DefaultRunSpec()}
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Graphs) == 0 {
		writeError(w, http.StatusBadRequest, "sweep needs at least one graph")
		return
	}
	if err := s.checkSweepBounds(req); err != nil {
		// The cross-product cannot be scheduled as one sweep: a valid
		// request the service refuses → 422, naming the dimension to shrink.
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	// Expansion is pure: a bad point rejects the sweep with zero side
	// effects.
	points, err := req.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, j, c, src, plan, err := s.submitSweep(points)
	if err != nil {
		// Scheduling has side effects; report the points resolved before
		// the rejection so the caller can track simulations already running.
		status := submitStatus(err)
		if status == http.StatusInternalServerError {
			s.m.countInternalError()
		}
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(mustMarshalLine(struct {
			Error string       `json:"error"`
			Plan  []sweepPoint `json:"plan"`
		}{fmt.Sprintf("%v (the listed points were already resolved)", err), planProvenance(plan)}))
		return
	}
	w.Header().Set("X-Rumord-Job", id)
	w.Header().Set("X-Rumord-Source", string(src))
	if plan != nil {
		w.Header().Set("X-Rumord-Sweep-Hits", fmt.Sprint(plan.hits))
		w.Header().Set("X-Rumord-Sweep-Joined", fmt.Sprint(plan.joined))
		w.Header().Set("X-Rumord-Sweep-Scheduled", fmt.Sprint(plan.scheduled))
	}
	if r.URL.Query().Get("wait") == "0" {
		writeJSON(w, http.StatusAccepted, sweepStatus{
			jobStatus: jobStatusBody(id, j, c),
			Plan:      planProvenance(plan),
		})
		return
	}
	waitAndRespond(w, r, j, c)
}

// planProvenance renders a plan's per-point resolution for the async
// body; nil for joined/cached sweeps (their original plan already ran).
func planProvenance(plan *sweepPlan) []sweepPoint {
	if plan == nil {
		return nil
	}
	points := make([]sweepPoint, 0, len(plan.points))
	for _, pp := range plan.points {
		points = append(points, sweepPoint{
			Graph: pp.spec.Graph, Protocol: pp.spec.Protocol, Seed: pp.spec.Seed,
			Job: pp.id, Source: string(pp.src),
		})
	}
	return points
}

// jobStatus is the body of GET /v1/jobs/{id}.
type jobStatus struct {
	Job     string          `json:"job"`
	Status  jobState        `json:"status"`
	Trials  int             `json:"trials"`
	Points  int             `json:"points,omitempty"` // sweep jobs only
	Emitted int             `json:"emitted"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// jobStatusBody renders the status of a live or completed job (exactly
// one of j and c is non-nil).
func jobStatusBody(id string, j *Job, c *completedJob) jobStatus {
	if j != nil {
		j.mu.Lock()
		st := jobStatus{Job: id, Status: j.state, Trials: j.trials, Points: j.points, Emitted: len(j.lines)}
		j.mu.Unlock()
		return st
	}
	if c.failed() {
		return jobStatus{Job: id, Status: stateFailed, Error: c.errMsg, Trials: c.trials, Points: c.points, Emitted: len(c.lines)}
	}
	return jobStatus{
		Job: id, Status: stateDone, Emitted: len(c.lines), Trials: c.trials, Points: c.points,
		Result: json.RawMessage(c.resp),
	}
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, c, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	writeJSON(w, http.StatusOK, jobStatusBody(id, j, c))
}

// handleStream serves GET /v1/jobs/{id}/stream: NDJSON frames, one per
// trial in strict trial order, closed by a terminal frame. Completed jobs
// replay their stored frames — byte-identical to what a live follower of
// the original run received.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, c, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	defer s.m.streamOpen()()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Rumord-Job", id)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if c != nil {
		for _, line := range c.lines {
			w.Write(line)
		}
		w.Write(c.final)
		flush()
		return
	}
	next := 0
	for {
		lines, _, final, changed := j.snapshot(next)
		for _, line := range lines {
			w.Write(line)
		}
		next += len(lines)
		if len(lines) > 0 {
			flush()
		}
		if final != nil {
			w.Write(final)
			flush()
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleHealthz serves GET /v1/healthz: liveness. It answers 200 for as
// long as the process can serve HTTP at all — including while draining,
// when the server still delivers results for accepted jobs. Routers that
// must stop sending new work before the 503s start should watch
// /v1/readyz instead.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}{"ok", s.Stats()})
}

// readyStatus is the body of GET /v1/readyz.
type readyStatus struct {
	Status   string `json:"status"` // "ready" or "draining"
	Draining bool   `json:"draining"`
	// Queue headroom: how many more jobs intake can accept before /v1/run
	// starts answering 429. A gateway can use a shrinking headroom as a
	// backpressure signal before the hard limit hits.
	QueueDepth    int `json:"queueDepth"`
	QueueCapacity int `json:"queueCapacity"`
	QueueHeadroom int `json:"queueHeadroom"`
}

// handleReadyz serves GET /v1/readyz: readiness, split from liveness so
// a draining backend is ejected by routers *before* its submissions 503.
// A ready server answers 200 with its queue headroom; a draining one
// answers 503 (with the same shape) while /v1/healthz keeps returning
// 200 for the benefit of liveness supervisors.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.QueueDepth()
	body := readyStatus{
		Status:        "ready",
		QueueDepth:    depth,
		QueueCapacity: capacity,
		QueueHeadroom: capacity - depth,
	}
	status := http.StatusOK
	if s.Draining() {
		body.Status = "draining"
		body.Draining = true
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}
