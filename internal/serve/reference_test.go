package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rumor/internal/experiment"
)

// TestReferenceMatchesLiveRun: ComputeReference must reproduce a live
// server's /v1/run body, stream frames, and terminal frame byte for
// byte — the oracle the soak harness checks every proxied response
// against.
func TestReferenceMatchesLiveRun(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	status, hdr, body := postRun(t, ts, specStarVisitX)
	if status != http.StatusOK {
		t.Fatalf("run status %d: %s", status, body)
	}

	spec := experiment.DefaultRunSpec()
	if err := json.NewDecoder(strings.NewReader(specStarVisitX)).Decode(&spec); err != nil {
		t.Fatal(err)
	}
	ref, err := ComputeReference(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := hdr.Get("X-Rumord-Job"); got != ref.ID {
		t.Fatalf("job ID %s, reference %s", got, ref.ID)
	}
	if !bytes.Equal(body, ref.Body) {
		t.Fatalf("live body differs from reference:\nlive: %s\nref:  %s", body, ref.Body)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + ref.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	streamed, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Join(append(append([][]byte{}, ref.Lines...), ref.Final), nil)
	if !bytes.Equal(streamed, want) {
		t.Fatalf("live stream differs from reference:\nlive: %s\nref:  %s", streamed, want)
	}
}

// TestSweepReferenceMatchesLiveSweep: same oracle property for sweeps —
// the assembled body and the header/trial/terminal frame stream.
func TestSweepReferenceMatchesLiveSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := `{"defaults":{"trials":3,"seed":5},"graphs":["star:32","cycle:24"],"protocols":["push","visitx"]}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}

	sw := experiment.Sweep{Defaults: experiment.DefaultRunSpec()}
	if err := json.NewDecoder(strings.NewReader(req)).Decode(&sw); err != nil {
		t.Fatal(err)
	}
	points, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ComputeSweepReference(points)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Rumord-Job"); got != ref.ID {
		t.Fatalf("sweep job ID %s, reference %s", got, ref.ID)
	}
	if !bytes.Equal(body, ref.Body) {
		t.Fatal("live sweep body differs from reference")
	}

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + ref.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	streamed, err := io.ReadAll(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Join(append(append([][]byte{}, ref.Lines...), ref.Final), nil)
	if !bytes.Equal(streamed, want) {
		t.Fatal("live sweep stream differs from reference")
	}
}

// TestReferenceRejectsBadSpec: a spec that cannot normalize or simulate
// is an error, not a Reference.
func TestReferenceRejectsBadSpec(t *testing.T) {
	if _, err := ComputeReference(experiment.RunSpec{Graph: "nonsense:1"}); err == nil {
		t.Fatal("bad graph accepted")
	}
	if _, err := ComputeSweepReference(nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

// TestReadyzSplit: /v1/readyz reports ready (with queue headroom) on a
// live server and flips to 503/draining once shutdown begins, while
// /v1/healthz keeps answering 200 — the split that lets a gateway eject
// a draining backend before its submissions 503.
func TestReadyzSplit(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	get := func(path string) (int, readyStatus) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", path, nil)
		h.ServeHTTP(rec, req)
		var body readyStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("decode %s: %v: %s", path, err, rec.Body.Bytes())
		}
		return rec.Code, body
	}
	status, body := get("/v1/readyz")
	if status != http.StatusOK || body.Status != "ready" || body.Draining {
		t.Fatalf("fresh readyz: %d %+v", status, body)
	}
	if body.QueueCapacity != 7 || body.QueueHeadroom != 7-body.QueueDepth {
		t.Fatalf("queue headroom accounting: %+v", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	status, body = get("/v1/readyz")
	if status != http.StatusServiceUnavailable || body.Status != "draining" || !body.Draining {
		t.Fatalf("draining readyz: %d %+v", status, body)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d (liveness must stay 200)", rec.Code)
	}
}
