package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// spill is the persistent result tier under the completed-result LRU:
// when the memory cache evicts a successful payload, its canonical bytes
// are written to a content-addressed file (the job ID — already a
// SHA-256 of the canonical request — is the file name), and lookups fall
// through memory → disk before recomputing. Because the stored bytes are
// the exact response and stream frames a fresh run produced, a disk
// replay is byte-identical to the original — across LRU churn and across
// server restarts on the same directory.
//
// The tier is best-effort durable: a write failure loses nothing but the
// shortcut (the engines recompute bit-identical bytes), so errors are
// counted, not fatal.
type spill struct {
	dir        string
	mu         sync.Mutex   // serializes the stat+rename publish step (accounting only)
	writes     atomic.Int64 // files persisted (including overwrites)
	writeBytes atomic.Int64 // payload bytes persisted
	hits       atomic.Int64 // lookups served from disk
	readBytes  atomic.Int64 // payload bytes replayed from disk
	errors     atomic.Int64 // failed writes/reads (corrupt files count here)
	resident   atomic.Int64 // valid entries on disk (scanned at open, then tracked)
}

// spillEntry is the on-disk form of a completedJob. []byte fields
// round-trip through base64 exactly, so a loaded entry replays the
// original bytes verbatim.
type spillEntry struct {
	Trials int      `json:"trials"`
	Points int      `json:"points,omitempty"`
	Resp   []byte   `json:"resp"`
	Lines  [][]byte `json:"lines"`
	Final  []byte   `json:"final"`
}

// tmpDebrisAge is how old a leftover .tmp file must be before the
// startup scan deletes it. Genuine debris (an interrupted write from a
// crashed process) ages indefinitely and is collected on a later boot;
// a young .tmp might be an in-flight write of another process sharing
// the directory, which the scan must not destroy.
const tmpDebrisAge = 15 * time.Minute

// openSpill prepares the tier rooted at dir: creates the directory,
// sweeps aged-out temp files from interrupted writes, and counts the
// resident entries (the startup scan cmd/rumord logs).
//
// A data dir belongs to one server process at a time: the resident
// count (and so SpillLen) tracks only this process's writes, and
// concurrent replicas should each get their own directory — a shared
// result tier behind a router is a follow-on (ROADMAP).
func openSpill(dir string) (*spill, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: spill dir: %w", err)
	}
	sp := &spill{dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: spill scan: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An interrupted write; the rename never happened, so the entry
			// was never visible. Remove it once it is unambiguously debris.
			if info, err := e.Info(); err == nil && time.Since(info.ModTime()) > tmpDebrisAge {
				os.Remove(filepath.Join(dir, name))
			}
		case strings.HasSuffix(name, ".json") && isJobID(strings.TrimSuffix(name, ".json")):
			sp.resident.Add(1)
		}
	}
	return sp, nil
}

// isJobID reports whether s is a well-formed job ID (lowercase hex
// SHA-256; the character rule is hexVal, shared with the store's shard
// selector). Spill file names are derived from IDs, so anything else —
// including path metacharacters from a hostile GET /v1/jobs/{id} — is
// rejected before touching the filesystem.
func isJobID(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if _, ok := hexVal(s[i]); !ok {
			return false
		}
	}
	return true
}

func (sp *spill) path(id string) string { return filepath.Join(sp.dir, id+".json") }

// write persists a completed payload under its content address. The
// write is atomic (temp file + rename), so readers — concurrent or after
// a crash — see either the full entry or none. Identical IDs hold
// identical bytes by construction, so concurrent writers for one ID are
// idempotent, not conflicting.
func (sp *spill) write(id string, c *completedJob) {
	if !isJobID(id) || c.failed() {
		// Failures are deterministic to recompute; only successful payloads
		// earn a disk slot.
		return
	}
	b, err := json.Marshal(spillEntry{
		Trials: c.trials, Points: c.points, Resp: c.resp, Lines: c.lines, Final: c.final,
	})
	if err != nil {
		// completedJob has no unmarshalable fields; this cannot happen.
		panic(fmt.Sprintf("serve: marshal spill entry: %v", err))
	}
	f, err := os.CreateTemp(sp.dir, id+".*.tmp")
	if err != nil {
		sp.errors.Add(1)
		return
	}
	tmp := f.Name()
	_, werr := f.Write(b)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp)
		sp.errors.Add(1)
		return
	}
	// Publish: the stat+rename pair runs under sp.mu so two concurrent
	// writers of one ID cannot both count it as fresh. The payload write
	// above stays unlocked; this critical section is metadata-only.
	dst := sp.path(id)
	sp.mu.Lock()
	_, statErr := os.Stat(dst)
	err = os.Rename(tmp, dst)
	if err == nil && statErr != nil {
		sp.resident.Add(1) // fresh entry, not an overwrite
	}
	sp.mu.Unlock()
	if err != nil {
		os.Remove(tmp)
		sp.errors.Add(1)
		return
	}
	sp.writes.Add(1)
	sp.writeBytes.Add(int64(len(b)))
}

// read loads the payload spilled for id, if any. Corrupt entries (a torn
// disk, a foreign file) are removed and reported as misses — the job
// recomputes bit-identically.
func (sp *spill) read(id string) (*completedJob, bool) {
	if !isJobID(id) {
		return nil, false
	}
	b, err := os.ReadFile(sp.path(id))
	if err != nil {
		return nil, false
	}
	var e spillEntry
	if err := json.Unmarshal(b, &e); err != nil || len(e.Final) == 0 {
		sp.removeCorrupt(id)
		sp.errors.Add(1)
		return nil, false
	}
	sp.hits.Add(1)
	sp.readBytes.Add(int64(len(b)))
	return &completedJob{
		resp: e.Resp, lines: e.Lines, final: e.Final, trials: e.Trials, points: e.Points,
	}, true
}

// removeCorrupt deletes id's entry after re-verifying, under sp.mu, that
// it is still corrupt: a concurrent write may have renamed a fresh valid
// entry into place after the reader loaded the torn bytes, and writes
// publish under the same lock, so the re-read is coherent. Corruption is
// a rare crash-recovery path; paying a second read here is fine.
func (sp *spill) removeCorrupt(id string) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	b, err := os.ReadFile(sp.path(id))
	if err != nil {
		return // already gone
	}
	var e spillEntry
	if err := json.Unmarshal(b, &e); err == nil && len(e.Final) > 0 {
		return // rewritten and valid; keep it
	}
	if os.Remove(sp.path(id)) == nil {
		sp.resident.Add(-1)
	}
}
