package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// postAsync submits to path with ?wait=0 semantics so held jobs do not
// pin client goroutines.
func postAsync(t *testing.T, ts *httptest.Server, path, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func checkRetryAfter(t *testing.T, hdr http.Header, what string) {
	t.Helper()
	ra := hdr.Get("Retry-After")
	if ra == "" {
		t.Fatalf("%s carries no Retry-After header", what)
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("%s Retry-After = %q, want an integer >= 1", what, ra)
	}
}

// TestQueueFull429CarriesRetryAfter pins the regression: a queue-full
// rejection must tell the client when to come back. With one worker held
// at the gate and a one-slot queue occupied, the third submission 429s —
// and the header must be present, parseable, and >= 1 on both the run
// and sweep endpoints.
func TestQueueFull429CarriesRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueSize: 1})
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s.lifecycle.Lock()
	s.testRunGate = func(*Job) { entered <- struct{}{}; <-release }
	s.lifecycle.Unlock()
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()

	// First job: picked up by the worker, held at the gate.
	code, _, body := postAsync(t, ts, "/v1/run?wait=0", `{"graph":"star:16","protocol":"push","trials":2,"seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submission: %d %s", code, body)
	}
	<-entered // the worker owns it; the queue slot is free again

	// Second job: sits in the one-slot queue.
	code, _, body = postAsync(t, ts, "/v1/run?wait=0", `{"graph":"star:16","protocol":"push","trials":2,"seed":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submission: %d %s", code, body)
	}

	// Third job: the queue is full — 429 with a wait hint.
	code, hdr, body := postAsync(t, ts, "/v1/run?wait=0", `{"graph":"star:16","protocol":"push","trials":2,"seed":3}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submission: %d %s, want 429", code, body)
	}
	checkRetryAfter(t, hdr, "run 429")

	// The sweep endpoint shares the queue and must carry the hint too.
	code, hdr, body = postAsync(t, ts, "/v1/sweep?wait=0",
		`{"defaults":{"trials":2,"seed":4},"graphs":["star:16"],"protocols":["push"]}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("sweep while full: %d %s, want 429", code, body)
	}
	checkRetryAfter(t, hdr, "sweep 429")

	// With completions observed, the hint derives from the drain rate:
	// 5 completions over the trailing 10s window is 0.5/s; one job queued
	// ahead of a retry (the gated one has not reached running yet) means
	// ceil((1+1)/0.5) = 4 seconds.
	now := time.Now()
	s.drainMu.Lock()
	s.drain = completionRing{}
	for i := 0; i < 5; i++ {
		s.drain.note(now.Add(-time.Duration(i) * time.Second))
	}
	s.drainMu.Unlock()
	if got := s.retryAfterSeconds(); got != 4 {
		t.Fatalf("drain-derived retryAfterSeconds = %d, want 4 (0.5/s rate, 1 queued)", got)
	}

	released = true
	close(release)
	waitUntil(t, "held jobs to finish", func() bool { return s.Stats().JobsLive == 0 })
	// Idle server draining fast: the clamp floor keeps the hint at 1.
	s.drainMu.Lock()
	s.drain = completionRing{}
	for i := 0; i < 40; i++ {
		s.drain.note(time.Now())
	}
	s.drainMu.Unlock()
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("idle retryAfterSeconds = %d, want clamp floor 1", got)
	}
}
