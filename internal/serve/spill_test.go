package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// spillSpec renders the i-th distinct spec of the eviction ladder.
func spillSpec(i int) string {
	return fmt.Sprintf(`{"graph":"star:%d","protocol":"visitx","trials":3,"seed":11}`, 16+8*i)
}

// TestSpillReplayAcrossRestart is the end-to-end disk-tier guarantee:
// fill the LRU past capacity so early entries spill, restart the server
// on the same data dir, and every evicted job replays byte-identical
// from disk with zero recomputation — while never-evicted (memory-only)
// jobs recompute to the same bytes. Runs under -race in CI.
func TestSpillReplayAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const total, cap = 5, 2
	// One shard so cap is a strict global LRU bound: inserting specs
	// 0..4 leaves {3,4} resident and spills {0,1,2} in order.
	opts := Options{Workers: 2, CacheSize: cap, Shards: 1, DataDir: dir}

	first, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(first.Handler())
	bodies := make([][]byte, total)
	streams := make([]string, total)
	jobs := make([]string, total)
	for i := 0; i < total; i++ {
		code, hdr, b := postRun(t, ts, spillSpec(i))
		if code != 200 {
			t.Fatalf("spec %d: status %d body %s", i, code, b)
		}
		bodies[i] = b
		jobs[i] = hdr.Get("X-Rumord-Job")
		streams[i] = strings.Join(streamLines(t, ts, jobs[i]), "\n")
	}
	if st := first.Stats(); st.SpillWrites != total-cap || st.SpillLen != total-cap {
		t.Fatalf("after filling past capacity: spillWrites=%d spillLen=%d, want %d evictions on disk",
			st.SpillWrites, st.SpillLen, total-cap)
	}
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := first.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Restart on the same data dir: memory is cold, disk is not.
	second, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(second.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := second.Shutdown(ctx); err != nil {
			t.Errorf("second shutdown: %v", err)
		}
	}()
	if n := second.SpillLen(); n != total-cap {
		t.Fatalf("startup scan found %d spilled results, want %d", n, total-cap)
	}
	for i := 0; i < total-cap; i++ {
		code, hdr, b := postRun(t, ts2, spillSpec(i))
		if code != 200 {
			t.Fatalf("restart spec %d: status %d body %s", i, code, b)
		}
		if src := hdr.Get("X-Rumord-Source"); src != "disk" {
			t.Fatalf("restart spec %d served from %q, want disk", i, src)
		}
		if !bytes.Equal(b, bodies[i]) {
			t.Fatalf("restart spec %d body differs from the original run", i)
		}
		if got := strings.Join(streamLines(t, ts2, jobs[i]), "\n"); got != streams[i] {
			t.Fatalf("restart spec %d stream replay differs from the original", i)
		}
	}
	// Replaying the evicted entries must not have simulated anything.
	if st := second.Stats(); st.Simulations != 0 || st.SpillHits < total-cap {
		t.Fatalf("disk replays ran %d simulations (spillHits=%d), want 0", st.Simulations, st.SpillHits)
	}
	// The never-evicted entries were memory-only: they recompute — to the
	// same bytes — and the simulation count is pinned to exactly those.
	for i := total - cap; i < total; i++ {
		code, hdr, b := postRun(t, ts2, spillSpec(i))
		if code != 200 || hdr.Get("X-Rumord-Source") != "run" {
			t.Fatalf("restart spec %d: status %d source %q, want a fresh run", i, code, hdr.Get("X-Rumord-Source"))
		}
		if !bytes.Equal(b, bodies[i]) {
			t.Fatalf("restart spec %d recompute differs from the original", i)
		}
	}
	if st := second.Stats(); st.Simulations != cap {
		t.Fatalf("restart ran %d simulations, want exactly the %d never-spilled specs", st.Simulations, cap)
	}
}

// TestSpillPromotionAndIdempotence: a disk hit is promoted back into the
// memory LRU (second read is a cache hit), and the promotion's own
// eviction re-spills identical bytes.
func TestSpillPromotionAndIdempotence(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{Workers: 1, CacheSize: 1, Shards: 1, DataDir: dir})
	code, _, fresh := postRun(t, ts, spillSpec(0))
	if code != 200 {
		t.Fatalf("fresh: %d %s", code, fresh)
	}
	if code, _, _ := postRun(t, ts, spillSpec(1)); code != 200 { // evicts 0 to disk
		t.Fatal("evictor failed")
	}
	code, hdr, b := postRun(t, ts, spillSpec(0)) // disk hit, promotes (evicts 1)
	if code != 200 || hdr.Get("X-Rumord-Source") != "disk" {
		t.Fatalf("status %d source %q, want disk", code, hdr.Get("X-Rumord-Source"))
	}
	if !bytes.Equal(b, fresh) {
		t.Fatal("disk replay differs from fresh bytes")
	}
	code, hdr, b = postRun(t, ts, spillSpec(0)) // now resident again
	if code != 200 || hdr.Get("X-Rumord-Source") != "cache" {
		t.Fatalf("promoted entry: status %d source %q, want cache", code, hdr.Get("X-Rumord-Source"))
	}
	if !bytes.Equal(b, fresh) {
		t.Fatal("promoted replay differs from fresh bytes")
	}
	if st := s.Stats(); st.Simulations != 2 || st.SpillHits != 1 {
		t.Fatalf("stats %+v: want 2 simulations, 1 spill hit", st)
	}
}

// TestSpillRejectsHostileIDs: lookup with path metacharacters must not
// touch the filesystem outside the data dir (and must simply miss).
func TestSpillRejectsHostileIDs(t *testing.T) {
	sp, err := openSpill(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"../../etc/passwd", "..", "", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64)} {
		if _, ok := sp.read(id); ok {
			t.Fatalf("hostile id %q produced a hit", id)
		}
		sp.write(id, &completedJob{resp: []byte("{}\n"), final: []byte("{}\n")})
	}
	if n := sp.resident.Load(); n != 0 {
		t.Fatalf("hostile writes left %d files", n)
	}
}

// TestSpillCorruptEntryRecovery: a torn/corrupt spill file is counted by
// the startup scan, then detected on read, removed exactly once, and
// reported as a miss so the job recomputes.
func TestSpillCorruptEntryRecovery(t *testing.T) {
	dir := t.TempDir()
	id := strings.Repeat("ab", 32)
	if err := os.WriteFile(filepath.Join(dir, id+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := openSpill(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := sp.resident.Load(); n != 1 {
		t.Fatalf("scan counted %d residents, want 1 (corruption detected lazily)", n)
	}
	if _, ok := sp.read(id); ok {
		t.Fatal("corrupt entry produced a hit")
	}
	if n := sp.resident.Load(); n != 0 {
		t.Fatalf("resident = %d after corrupt read, want 0", n)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".json")); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not removed: %v", err)
	}
	// A second read is a plain miss with no double-decrement.
	if _, ok := sp.read(id); ok {
		t.Fatal("removed entry produced a hit")
	}
	if n := sp.resident.Load(); n != 0 {
		t.Fatalf("resident = %d after second read, want 0", n)
	}
	// A rewrite makes the id readable again.
	sp.write(id, &completedJob{resp: []byte("{}\n"), final: []byte("{\"done\":true}\n"), trials: 1})
	if c, ok := sp.read(id); !ok || string(c.final) != "{\"done\":true}\n" {
		t.Fatal("rewritten entry not readable")
	}
	if n := sp.resident.Load(); n != 1 {
		t.Fatalf("resident = %d after rewrite, want 1", n)
	}
}
