package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer starts a Server plus its HTTP front; the cleanup drains
// it so no test leaks workers.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return s, ts
}

// setGate installs a test gate that blocks every simulation until release
// is closed.
func setGate(s *Server) (release chan struct{}) {
	release = make(chan struct{})
	s.lifecycle.Lock()
	s.testRunGate = func(*Job) { <-release }
	s.lifecycle.Unlock()
	return release
}

func postRun(t *testing.T, ts *httptest.Server, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const specStarVisitX = `{"graph":"star:64","protocol":"visitx","trials":6,"seed":3}`

// TestRunDedup: N identical concurrent requests must share one
// simulation and receive byte-identical bodies.
func TestRunDedup(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	release := setGate(s)
	const clients = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, bodies[i] = postRun(t, ts, specStarVisitX)
		}(i)
	}
	// Every request must be submitted (1 run + 7 dedup) before the gate
	// opens, so the dedup window is guaranteed, not raced.
	waitUntil(t, "all submissions", func() bool { return s.Stats().Requests >= clients })
	close(release)
	wg.Wait()
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d body %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs from client 0", i)
		}
	}
	st := s.Stats()
	if st.Simulations != 1 {
		t.Fatalf("ran %d simulations for %d identical requests, want 1", st.Simulations, clients)
	}
	if st.DedupHits != clients-1 {
		t.Fatalf("dedupHits = %d, want %d", st.DedupHits, clients-1)
	}
}

// TestRunCacheByteIdentical: cached responses replay the fresh bytes; a
// recompute after eviction reproduces them bit-for-bit (engine
// determinism end to end).
func TestRunCacheByteIdentical(t *testing.T) {
	// One shard so CacheSize 1 is a true global bound and the evictor
	// below reliably displaces the first entry.
	_, ts := newTestServer(t, Options{Workers: 1, CacheSize: 1, Shards: 1})
	code, hdr, fresh := postRun(t, ts, specStarVisitX)
	if code != http.StatusOK {
		t.Fatalf("fresh: status %d body %s", code, fresh)
	}
	if got := hdr.Get("X-Rumord-Source"); got != "run" {
		t.Fatalf("fresh source = %q, want run", got)
	}
	code, hdr, cached := postRun(t, ts, specStarVisitX)
	if code != http.StatusOK || hdr.Get("X-Rumord-Source") != "cache" {
		t.Fatalf("second request: status %d source %q", code, hdr.Get("X-Rumord-Source"))
	}
	if !bytes.Equal(cached, fresh) {
		t.Fatal("cached body differs from fresh body")
	}
	// Evict (cache capacity 1) with a different spec, then recompute.
	if code, _, b := postRun(t, ts, `{"graph":"cycle:32","protocol":"push","trials":2,"seed":1}`); code != http.StatusOK {
		t.Fatalf("evictor: status %d body %s", code, b)
	}
	code, hdr, recomputed := postRun(t, ts, specStarVisitX)
	if code != http.StatusOK || hdr.Get("X-Rumord-Source") != "run" {
		t.Fatalf("third request: status %d source %q (want a fresh run after eviction)", code, hdr.Get("X-Rumord-Source"))
	}
	if !bytes.Equal(recomputed, fresh) {
		t.Fatal("recomputed body differs from original fresh body: determinism broken")
	}
	// Spellings that normalize identically must hit the same cache entry.
	code, hdr, alias := postRun(t, ts, `{"graph":"  STAR : 64 ","protocol":"visitx","trials":6,"seed":3,"lazy":"auto"}`)
	if code != http.StatusOK || hdr.Get("X-Rumord-Source") != "cache" {
		t.Fatalf("alias spelling: status %d source %q, want cache hit", code, hdr.Get("X-Rumord-Source"))
	}
	if !bytes.Equal(alias, fresh) {
		t.Fatal("alias body differs")
	}
}

// streamLines fetches a job stream and returns its NDJSON lines.
func streamLines(t *testing.T, ts *httptest.Server, id string) []string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(b), "\n"), "\n")
	return lines
}

// checkStream asserts lines are trials frames in strict trial order plus
// a terminal done frame, and returns the joined bytes.
func checkStream(t *testing.T, lines []string, trials int) string {
	t.Helper()
	if len(lines) != trials+1 {
		t.Fatalf("stream has %d lines, want %d trials + 1 terminal", len(lines), trials)
	}
	for i := 0; i < trials; i++ {
		var frame struct {
			Trial  *int `json:"trial"`
			Rounds int  `json:"rounds"`
		}
		if err := json.Unmarshal([]byte(lines[i]), &frame); err != nil {
			t.Fatalf("line %d: %v (%s)", i, err, lines[i])
		}
		if frame.Trial == nil || *frame.Trial != i {
			t.Fatalf("line %d carries trial %v, want %d (strict order)", i, frame.Trial, i)
		}
	}
	var fin struct {
		Done   bool   `json:"done"`
		Trials int    `json:"trials"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[trials]), &fin); err != nil {
		t.Fatal(err)
	}
	if !fin.Done || fin.Trials != trials || fin.Error != "" {
		t.Fatalf("terminal frame %+v, want done with %d trials", fin, trials)
	}
	return strings.Join(lines, "\n")
}

// TestStreamOrdering: the NDJSON stream yields one frame per trial in
// strict trial order, closed by a terminal frame — both followed live and
// replayed from cache, with identical bytes.
func TestStreamOrdering(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	release := setGate(s)
	const trials = 16
	body := fmt.Sprintf(`{"graph":"star:48","protocol":"meetx","trials":%d,"seed":9}`, trials)
	// Submit async while gated, so the follower attaches before any frame
	// exists and genuinely follows the live run.
	resp, err := http.Post(ts.URL+"/v1/run?wait=0", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Rumord-Job")
	if id == "" {
		t.Fatal("no job id header")
	}
	liveCh := make(chan []string, 1)
	go func() { liveCh <- streamLines(t, ts, id) }()
	// The follower must be waiting on the empty job before trials start.
	time.Sleep(20 * time.Millisecond)
	close(release)
	live := checkStream(t, <-liveCh, trials)
	// Replay from the completed-result cache must be byte-identical.
	replay := checkStream(t, streamLines(t, ts, id), trials)
	if live != replay {
		t.Fatal("live-followed stream differs from cached replay")
	}
}

// TestGracefulShutdown: Shutdown must reject new work with 503 while
// draining, wait for in-flight jobs, and deliver their full results to
// waiting clients.
func TestGracefulShutdown(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	release := setGate(s)

	var wg sync.WaitGroup
	var code int
	var body []byte
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, body = postRun(t, ts, specStarVisitX)
	}()
	waitUntil(t, "job submitted", func() bool { return s.Stats().JobsLive == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitUntil(t, "draining", func() bool { return s.Stats().Draining })

	// New work is rejected while the in-flight job drains.
	rcode, _, rbody := postRun(t, ts, `{"graph":"cycle:16","protocol":"push","trials":1,"seed":1}`)
	if rcode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: status %d body %s, want 503", rcode, rbody)
	}

	// Shutdown must be blocked on the gated job, not returning early.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a job was still running", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if code != http.StatusOK {
		t.Fatalf("drained job client: status %d body %s", code, body)
	}
	var full struct {
		Completed int `json:"completed"`
		Trials    []struct {
			Trial int `json:"trial"`
		} `json:"trials"`
	}
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Trials) != 6 || full.Completed != 6 {
		t.Fatalf("drained result incomplete: %d trials, %d completed", len(full.Trials), full.Completed)
	}
}

// TestSweepAndJobEndpoint: an async sweep plans the cross-product (202
// with per-point provenance), the sweep and its point jobs report status,
// and a resubmitted sweep is served from the store without simulating.
func TestSweepAndJobEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	body := `{"defaults":{"graph":"star:8","trials":2,"seed":5},
	          "graphs":["star:24","cycle:24"],"protocols":["push","push-pull"]}`
	resp, err := http.Post(ts.URL+"/v1/sweep?wait=0", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep status %d body %s", resp.StatusCode, b)
	}
	sweepID := resp.Header.Get("X-Rumord-Job")
	if sweepID == "" {
		t.Fatal("no sweep job id header")
	}
	var sw sweepStatus
	if err := json.Unmarshal(b, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Plan) != 4 {
		t.Fatalf("sweep planned %d points, want 4", len(sw.Plan))
	}
	if sw.Points != 4 {
		t.Fatalf("sweep status points = %d, want 4", sw.Points)
	}
	// Every point job and the sweep itself complete and embed results.
	ids := []string{sweepID}
	for _, p := range sw.Plan {
		if p.Source != "run" {
			t.Fatalf("cold sweep point %s resolved from %q, want run", p.Job, p.Source)
		}
		ids = append(ids, p.Job)
	}
	for _, id := range ids {
		waitUntil(t, "job "+id, func() bool {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			jb, _ := io.ReadAll(resp.Body)
			var st struct {
				Status string          `json:"status"`
				Result json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(jb, &st); err != nil {
				t.Fatal(err)
			}
			return st.Status == "done" && len(st.Result) > 0
		})
	}
	// Resubmitting the same sweep (waited this time) must be served from
	// the store: no new simulations, no new plan.
	sims := s.Stats().Simulations
	resp, err = http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmitted sweep status %d body %s", resp.StatusCode, rb)
	}
	if src := resp.Header.Get("X-Rumord-Source"); src != "cache" {
		t.Fatalf("resubmitted sweep source %q, want cache", src)
	}
	if got := s.Stats().Simulations; got != sims {
		t.Fatalf("resubmitted sweep started %d new simulations", got-sims)
	}
	var full struct {
		Sweep  string `json:"sweep"`
		Points []struct {
			Job    string          `json:"job"`
			Result json.RawMessage `json:"result"`
		} `json:"points"`
	}
	if err := json.Unmarshal(rb, &full); err != nil {
		t.Fatal(err)
	}
	if full.Sweep != sweepID || len(full.Points) != 4 {
		t.Fatalf("assembled sweep = %s with %d points, want %s with 4", full.Sweep, len(full.Points), sweepID)
	}
	for i, p := range full.Points {
		if len(p.Result) == 0 {
			t.Fatalf("point %d has no embedded result", i)
		}
	}
}

// TestRequestValidation: malformed requests fail fast with 4xx.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		body string
		want int
	}{
		{`{"graph":"star:16","protocol":"gossip"}`, http.StatusBadRequest},
		{`{"graph":"nope:1"}`, http.StatusBadRequest},
		{`{"graph":"star:16","bogusKnob":3}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"graph":"star:8"}{"graph":"star:16"}`, http.StatusBadRequest},  // trailing content
		{`{"graph":"star:0","trials":1}`, http.StatusUnprocessableEntity}, // parses, fails to build
	}
	for _, c := range cases {
		code, _, body := postRun(t, ts, c.body)
		if code != c.want {
			t.Errorf("POST %s: status %d body %s, want %d", c.body, code, body, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}
}

// TestHealthz: liveness endpoint reports counters.
func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	if code, _, b := postRun(t, ts, specStarVisitX); code != http.StatusOK {
		t.Fatalf("run: %d %s", code, b)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Stats.Simulations != 1 || h.Stats.CacheLen != 1 {
		t.Fatalf("healthz %+v", h)
	}
	_ = s
}
