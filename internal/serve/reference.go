package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"rumor/internal/core"
	"rumor/internal/experiment"
)

// Reference is the byte-exact output a server must produce for a job:
// the full response body, the NDJSON stream frames in emission order,
// and the terminal frame. It is computed locally by the same code paths
// a live server runs, so an external checker (cmd/soak) can assert that
// bytes received through any number of gateways, retries, failovers, and
// backend restarts are identical to a single-process run — the property
// that makes retrying a deterministic job safe in the first place.
type Reference struct {
	ID    string   // canonical job ID
	Body  []byte   // full response body (POST /v1/run or /v1/sweep)
	Lines [][]byte // stream frames, emission order, terminal frame excluded
	Final []byte   // terminal stream frame
}

// computeCompleted simulates one normalized spec through the exact
// assembly runJob performs and returns its completed payload. Failures
// are deterministic too, so they are captured in the payload rather than
// returned: a spec that cannot build fails identically on every backend.
func computeCompleted(norm experiment.RunSpec) (string, *completedJob) {
	id := jobID(norm)
	j := newJob(id, norm)
	var resp []byte
	var runErr error
	g, src, err := norm.Build()
	if err != nil {
		runErr = err
	} else {
		results, err := norm.RunOn(g, src, func(t int, r core.Result) {
			j.appendLine(mustMarshalLine(toTrialJSON(norm, t, r)))
		})
		if err != nil {
			runErr = err
		} else {
			resp = mustMarshalLine(buildRunResponse(norm, g, src, results))
		}
	}
	final := j.complete(resp, runErr)
	c := &completedJob{resp: resp, lines: j.snapshotLines(), final: final, trials: j.trials}
	if runErr != nil {
		c.errMsg = runErr.Error()
	}
	return id, c
}

// ComputeReference runs spec locally and returns the exact bytes a
// server serves for it. The spec is normalized first, so callers can
// pass the same request they POST. A spec that fails to normalize or to
// simulate returns an error rather than a Reference.
func ComputeReference(spec experiment.RunSpec) (Reference, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return Reference{}, err
	}
	id, c := computeCompleted(norm)
	if c.failed() {
		return Reference{}, fmt.Errorf("serve: reference run failed: %s", c.errMsg)
	}
	return Reference{ID: id, Body: c.resp, Lines: c.lines, Final: c.final}, nil
}

// ComputeSweepReference assembles the exact response and stream of a
// sweep over the given expanded points, mirroring runSweep frame for
// frame: one header frame per point ahead of that point's trial frames,
// entries in plan order, and the sweep terminal frame.
func ComputeSweepReference(points []experiment.SweepPoint) (Reference, error) {
	if len(points) == 0 {
		return Reference{}, fmt.Errorf("serve: sweep reference needs at least one point")
	}
	sid := SweepJobID(points)
	j := &Job{
		ID:      sid,
		points:  len(points),
		state:   stateQueued,
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
	resp := sweepResponse{Sweep: sid, Points: make([]sweepPointJSON, 0, len(points))}
	for i, pt := range points {
		id, c := computeCompleted(pt.Spec)
		j.appendLine(mustMarshalLine(sweepHeaderJSON{
			Point: i, Graph: pt.Spec.Graph, Protocol: pt.Spec.Protocol, Seed: pt.Spec.Seed,
			Job: id, Frames: len(c.lines), Error: c.errMsg,
		}))
		for _, line := range c.lines {
			j.appendLine(line)
		}
		entry := sweepPointJSON{
			Graph: pt.Spec.Graph, Protocol: pt.Spec.Protocol, Seed: pt.Spec.Seed, Job: id,
		}
		if c.failed() {
			entry.Error = c.errMsg
		} else {
			entry.Result = json.RawMessage(bytes.TrimSuffix(c.resp, []byte("\n")))
		}
		resp.Points = append(resp.Points, entry)
	}
	final := j.complete(mustMarshalLine(resp), nil)
	body, _ := j.result()
	return Reference{ID: sid, Body: body, Lines: j.snapshotLines(), Final: final}, nil
}
