package serve

import (
	"encoding/json"
	"fmt"
	"sync"

	"rumor/internal/core"
	"rumor/internal/experiment"
	"rumor/internal/graph"
	"rumor/internal/stats"
)

// jobState is the lifecycle of an in-flight job.
type jobState string

const (
	stateQueued  jobState = "queued"
	stateRunning jobState = "running"
	stateDone    jobState = "done"
	stateFailed  jobState = "failed"
)

// Job is one in-flight unit of work — a simulation, or a sweep assembly
// — plus the NDJSON frames appended as results arrive. Streamers read
// lines under mu and wait on changed, which is closed and replaced on
// every append — a broadcast that composes with context cancellation.
//
// Simulation jobs carry a Spec and run on the worker pool. Sweep jobs
// (plan != nil) never enter the queue: an orchestrator goroutine waits on
// their point jobs and assembles frames in plan order (see planner.go).
type Job struct {
	ID     string
	Spec   experiment.RunSpec
	plan   *sweepPlan // non-nil for sweep jobs
	trials int        // expected trial frames (summed over points for sweeps)
	points int        // sweep points (0 for simulation jobs)

	mu      sync.Mutex
	state   jobState
	lines   [][]byte // one marshaled frame per emitted trial, trial order
	final   []byte   // terminal frame, set at completion
	resp    []byte   // full response body, set on success
	err     error    // set on failure
	changed chan struct{}
	done    chan struct{}
}

func newJob(id string, spec experiment.RunSpec) *Job {
	return &Job{
		ID:      id,
		Spec:    spec,
		trials:  spec.Trials,
		state:   stateQueued,
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

func newSweepJob(id string, plan *sweepPlan) *Job {
	j := &Job{
		ID:      id,
		plan:    plan,
		points:  len(plan.points),
		state:   stateQueued,
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, pp := range plan.points {
		j.trials += pp.spec.Trials
	}
	return j
}

// setRunning transitions queued → running.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = stateRunning
	j.bump()
	j.mu.Unlock()
}

// appendLine publishes one trial frame to streamers.
func (j *Job) appendLine(line []byte) {
	j.mu.Lock()
	j.lines = append(j.lines, line)
	j.bump()
	j.mu.Unlock()
}

// complete finalizes the job and returns the terminal frame. Sweep
// streams interleave one header frame per point with the trial frames,
// so their terminal frame reports both counts.
func (j *Job) complete(resp []byte, err error) []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.state = stateFailed
		j.err = err
		j.final = mustMarshalLine(streamFinal{Done: true, Job: j.ID, Error: err.Error()})
	} else {
		j.state = stateDone
		j.resp = resp
		j.final = mustMarshalLine(streamFinal{Done: true, Job: j.ID, Points: j.points, Trials: len(j.lines) - j.points})
	}
	j.bump()
	close(j.done)
	return j.final
}

// bump wakes every waiter. Caller holds mu.
func (j *Job) bump() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// snapshot returns the frames at or past from, the current state, the
// terminal frame (nil until completion), and the channel that signals the
// next change.
func (j *Job) snapshot(from int) (lines [][]byte, state jobState, final []byte, changed chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.lines) {
		lines = j.lines[from:len(j.lines):len(j.lines)]
	}
	return lines, j.state, j.final, j.changed
}

// snapshotLines returns all frames; used once at completion.
func (j *Job) snapshotLines() [][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lines
}

// result returns the outcome after done is closed.
func (j *Job) result() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resp, j.err
}

// completedJob is the payload the result LRU retains (and the disk tier
// persists) for a finished job: the exact bytes a fresh run produced, so
// cache and disk hits replay them verbatim.
type completedJob struct {
	resp   []byte   // nil for failures
	lines  [][]byte // stream frames, emission order
	final  []byte   // terminal stream frame
	trials int      // requested trial count, for status reporting
	points int      // sweep points (0 for simulation jobs)
	errMsg string   // non-empty for failures
}

func (c *completedJob) failed() bool { return c.errMsg != "" }

// summaryJSON is stats.Summary with wire-format field names.
type summaryJSON struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
	P10    float64 `json:"p10"`
	P90    float64 `json:"p90"`
	CI95   float64 `json:"ci95"`
}

func toSummaryJSON(s stats.Summary) *summaryJSON {
	return &summaryJSON{
		N: s.N, Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max,
		Median: s.Median, P10: s.P10, P90: s.P90, CI95: s.CI95,
	}
}

// trialJSON is one trial's result on the wire: a stream frame and an
// entry of RunResponse.Trials.
type trialJSON struct {
	Trial          int   `json:"trial"`
	Rounds         int   `json:"rounds"`
	Completed      bool  `json:"completed"`
	Messages       int64 `json:"messages"`
	AllAgentsRound int   `json:"allAgentsRound"`
	History        []int `json:"history,omitempty"`
}

func toTrialJSON(spec experiment.RunSpec, t int, r core.Result) trialJSON {
	tj := trialJSON{
		Trial:          t,
		Rounds:         r.Rounds,
		Completed:      r.Completed,
		Messages:       r.Messages,
		AllAgentsRound: r.AllAgentsRound,
	}
	if spec.History {
		tj.History = r.History
	}
	return tj
}

// graphJSON describes the materialized graph of a run.
type graphJSON struct {
	Name      string `json:"name"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Bipartite bool   `json:"bipartite"`
	Source    int    `json:"source"`
}

// runResponse is the full result body of POST /v1/run (and the "result"
// of a done GET /v1/jobs/{id}). It is marshaled exactly once per
// simulation; cached and deduplicated responses replay the same bytes.
type runResponse struct {
	Spec      experiment.RunSpec `json:"spec"`
	Graph     graphJSON          `json:"graph"`
	Completed int                `json:"completed"`
	Rounds    *summaryJSON       `json:"rounds,omitempty"`
	Messages  *summaryJSON       `json:"messages,omitempty"`
	Trials    []trialJSON        `json:"trials"`
}

// buildRunResponse assembles the deterministic response body: summaries
// over completed trials (matching cmd/rumor's reporting convention) plus
// the per-trial results.
func buildRunResponse(spec experiment.RunSpec, g *graph.Graph, src graph.Vertex, results []core.Result) runResponse {
	resp := runResponse{
		Spec: spec,
		Graph: graphJSON{
			Name:      g.Name(),
			N:         g.N(),
			M:         g.M(),
			Bipartite: graph.IsBipartite(g),
			Source:    int(src),
		},
		Trials: make([]trialJSON, 0, len(results)),
	}
	var rounds, msgs stats.Running
	for t, r := range results {
		resp.Trials = append(resp.Trials, toTrialJSON(spec, t, r))
		if r.Completed {
			resp.Completed++
			rounds.Add(float64(r.Rounds))
			msgs.Add(float64(r.Messages))
		}
	}
	if rounds.N() > 0 {
		resp.Rounds = toSummaryJSON(rounds.Summary())
		resp.Messages = toSummaryJSON(msgs.Summary())
	}
	return resp
}

// streamFinal is the terminal NDJSON frame of a job stream. Points is
// set only for sweeps, whose streams carry one header frame per point
// ahead of that point's trial frames.
type streamFinal struct {
	Done   bool   `json:"done"`
	Job    string `json:"job"`
	Points int    `json:"points,omitempty"`
	Trials int    `json:"trials,omitempty"`
	Error  string `json:"error,omitempty"`
}

// mustMarshalLine marshals a frame and appends the NDJSON newline.
// Marshaling the wire structs cannot fail; a failure is a programming
// error worth crashing on.
func mustMarshalLine(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: marshal frame: %v", err))
	}
	return append(b, '\n')
}
