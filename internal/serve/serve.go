// Package serve turns the simulator into a long-running service: an
// HTTP/JSON API over canonicalized experiment.RunSpec requests, with
// request deduplication, result caching, bounded concurrency, and
// streaming per-trial results.
//
// # Request identity
//
// Every request is normalized (experiment.RunSpec.Normalize) and reduced
// to a canonical JSON encoding whose SHA-256 is the job ID. Two requests
// that mean the same simulation — differing only in field order, spec
// whitespace, numeric rendering, or knobs the protocol ignores — get the
// same ID. That identity drives everything downstream:
//
//   - singleflight dedup: N identical in-flight requests share one
//     simulation (the job table holds one Job per ID);
//   - result caching: completed payloads land in a size-bounded LRU keyed
//     by the same ID, so repeats are served without simulating;
//   - determinism: the engines are bit-deterministic for a given spec, so
//     a fresh, deduplicated, or cached response for the same ID is
//     byte-identical — pinned by the end-to-end tests.
//
// # Store tiers
//
// The job table and the completed-result LRU are sharded by job-hash
// prefix (see store.go), so intake and lookup from concurrent clients
// take per-shard locks instead of serializing server-wide. Below memory
// sits an optional disk tier (Options.DataDir, see spill.go): payloads
// the LRU evicts are written to content-addressed files, and lookups
// fall through memory → disk → recompute. Disk replays are the original
// bytes, so the byte-identity guarantee extends across evictions and
// server restarts.
//
// # Execution model
//
// Accepted jobs enter a bounded queue consumed by a fixed worker pool
// sized to the machine (each simulation itself parallelizes across
// internal/par, so a small number of workers saturates the cores). Every
// simulation — run and sweep points alike, all five protocols — executes
// on core's unified lane engine: fused multi-lane bundles at the adaptive
// bundle width, which is a pure throughput knob (results are bit-identical
// at any width, so the response bytes this layer caches and replays never
// depend on it). Trial results are emitted in strict trial order as the
// engines complete them (core's EmitFunc contract) and appended to the job
// as pre-marshaled NDJSON frames; GET /v1/jobs/{id}/stream replays the
// frames and follows live. Sweeps are planned cache-aware (see
// planner.go): only cross-product points missing from every store tier
// are scheduled, yet the assembled response and stream are byte-identical
// to a cold sweep. Shutdown stops intake (503) and drains queued and
// running jobs without dropping results.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"rumor/internal/core"
	"rumor/internal/experiment"
	"rumor/internal/par"
)

// keyPrefix versions the request-identity scheme: bump it when the
// canonical encoding or the response format changes so stale cache (and
// disk-spill) identities can never alias new ones.
const keyPrefix = "rumord/v1|"

// Options configures a Server. The zero value selects all defaults.
type Options struct {
	// Workers bounds concurrently running simulations. Default: half the
	// processors (min 1) — each simulation already shards across cores.
	Workers int
	// QueueSize bounds accepted-but-not-started jobs; submissions beyond
	// it are rejected with 429, and sweeps whose cross-product exceeds it
	// are rejected with 422 up front. Default 256.
	QueueSize int
	// CacheSize bounds the completed-result LRU (entries, summed across
	// shards). Default 512.
	CacheSize int
	// Shards is the number of job-table/cache shards. Default 16, max 256
	// (the shard selector keys on one byte of the job hash); larger values
	// are clamped so no shard is ever unaddressable.
	Shards int
	// DataDir, when non-empty, enables the disk spill tier: payloads the
	// LRU evicts persist as content-addressed files there and are replayed
	// byte-identically — including across restarts on the same directory.
	DataDir string
	// DisableMetrics skips the /metrics registry entirely: every
	// instrument becomes a nil no-op. Exists so the instrumentation's
	// hot-path cost is itself measurable (cmd/bench -serve-overhead).
	DisableMetrics bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	w := par.Procs() / 2
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) queueSize() int {
	if o.QueueSize > 0 {
		return o.QueueSize
	}
	return 256
}

func (o Options) cacheSize() int {
	if o.CacheSize > 0 {
		return o.CacheSize
	}
	return 512
}

func (o Options) shards() int {
	switch {
	case o.Shards <= 0:
		return 16
	case o.Shards > 256:
		return 256
	}
	return o.Shards
}

// Stats is a snapshot of the server's counters, exposed on /v1/healthz
// and asserted on by the end-to-end tests (dedup means Simulations stays
// at 1 no matter how many identical requests arrive; a fully warm sweep
// keeps it unchanged).
type Stats struct {
	Requests    int64 `json:"requests"`    // normalized submissions
	Simulations int64 `json:"simulations"` // jobs actually simulated
	DedupHits   int64 `json:"dedupHits"`   // joined an in-flight job
	CacheHits   int64 `json:"cacheHits"`   // served from the result LRU
	SpillHits   int64 `json:"spillHits"`   // served from the disk tier
	SpillWrites int64 `json:"spillWrites"` // payloads persisted on eviction
	SpillLen    int64 `json:"spillLen"`    // entries resident on disk
	Failures    int64 `json:"failures"`    // jobs that ended in error
	Sweeps      int64 `json:"sweeps"`      // sweep plans assembled fresh
	JobsLive    int   `json:"jobsLive"`    // queued + running now
	CacheLen    int   `json:"cacheLen"`    // completed payloads resident
	Shards      int   `json:"shards"`      // store shard count
	Draining    bool  `json:"draining"`
}

// ErrDraining rejects submissions during shutdown.
var ErrDraining = errors.New("serve: shutting down")

// ErrBusy rejects submissions when the job queue is full.
var ErrBusy = errors.New("serve: job queue full")

// Server is the simulation service. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	opts  Options
	store *store

	// lifecycle orders submissions against shutdown: every path that
	// checks draining and then registers with jobsWG holds the read side,
	// so once Shutdown publishes draining under the write side, no new
	// jobsWG.Add can race its Wait. Submitters never hold it across
	// simulation or I/O — only across the check-register window — so it is
	// not a throughput lock; shard locks (store.go) guard the tables.
	lifecycle   sync.RWMutex
	draining    bool
	queueClosed bool
	queue       chan *Job
	jobsWG      sync.WaitGroup // accepted jobs (and sweeps) not yet finished
	workerWG    sync.WaitGroup

	requests    atomic.Int64
	simulations atomic.Int64
	dedupHits   atomic.Int64
	cacheHits   atomic.Int64
	failures    atomic.Int64
	sweeps      atomic.Int64
	runningJobs atomic.Int64 // simulations executing right now (worker occupancy)

	// m holds the /metrics instruments; nil (every hook a no-op) with
	// Options.DisableMetrics.
	m *serveMetrics

	// drain tracks recent job completions so queue-full 429s can carry an
	// honest Retry-After derived from the observed drain rate.
	drainMu sync.Mutex
	drain   completionRing

	// testRunGate, when set (tests only), runs at the top of each
	// simulation; blocking it holds jobs in the running state so tests can
	// overlap requests deterministically. Guarded by lifecycle.
	testRunGate func(*Job)
}

// New starts a Server's worker pool and returns it. With a DataDir it
// opens (and scans) the disk spill tier first; a directory that cannot
// be prepared is a startup error.
func New(opts Options) (*Server, error) {
	var sp *spill
	if opts.DataDir != "" {
		var err error
		if sp, err = openSpill(opts.DataDir); err != nil {
			return nil, err
		}
	}
	s := &Server{
		opts:  opts,
		store: newStore(opts.shards(), opts.cacheSize(), sp),
		queue: make(chan *Job, opts.queueSize()),
	}
	if !opts.DisableMetrics {
		s.m = newServeMetrics(s)
	}
	for i := 0; i < opts.workers(); i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// SpillLen reports the number of entries resident in the disk tier (0
// without a DataDir) — what the startup scan found plus writes since.
func (s *Server) SpillLen() int64 {
	if s.store.spill == nil {
		return 0
	}
	return s.store.spill.resident.Load()
}

// Draining reports whether Shutdown has stopped intake: submissions are
// rejected while accepted jobs still finish and deliver their results.
func (s *Server) Draining() bool {
	s.lifecycle.RLock()
	defer s.lifecycle.RUnlock()
	return s.draining
}

// QueueDepth reports the accepted-but-not-started job count and the
// queue capacity — the headroom /v1/readyz exposes to routers.
func (s *Server) QueueDepth() (depth, capacity int) {
	return len(s.queue), cap(s.queue)
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.lifecycle.RLock()
	draining := s.draining
	s.lifecycle.RUnlock()
	st := Stats{
		Requests:    s.requests.Load(),
		Simulations: s.simulations.Load(),
		DedupHits:   s.dedupHits.Load(),
		CacheHits:   s.cacheHits.Load(),
		Failures:    s.failures.Load(),
		Sweeps:      s.sweeps.Load(),
		JobsLive:    s.store.jobsLive(),
		CacheLen:    s.store.cacheLen(),
		Shards:      len(s.store.shards),
		Draining:    draining,
	}
	if sp := s.store.spill; sp != nil {
		st.SpillHits = sp.hits.Load()
		st.SpillWrites = sp.writes.Load()
		st.SpillLen = sp.resident.Load()
	}
	return st
}

// jobID derives the canonical identity of a normalized spec: SHA-256 over
// the versioned canonical JSON encoding (experiment.RunSpec.CanonicalJSON).
func jobID(spec experiment.RunSpec) string {
	sum := sha256.Sum256(append([]byte(keyPrefix), spec.CanonicalJSON()...))
	return hex.EncodeToString(sum[:])
}

// source labels where a submission's result comes from.
type source string

const (
	sourceRun   source = "run"   // fresh simulation
	sourceDedup source = "dedup" // joined an identical in-flight job
	sourceCache source = "cache" // completed payload from the memory LRU
	sourceDisk  source = "disk"  // completed payload replayed from the spill tier
)

// submit resolves a normalized spec to its job: a cached payload (memory
// or disk), an identical in-flight job, or a freshly queued one. Exactly
// one of c and j is non-nil on success.
func (s *Server) submit(spec experiment.RunSpec) (string, *Job, *completedJob, source, error) {
	return s.submitWithID(jobID(spec), spec)
}

// submitWithID is submit for callers that already derived the spec's ID
// (the sweep planner hashes every point up front for the sweep identity).
func (s *Server) submitWithID(id string, spec experiment.RunSpec) (_ string, j *Job, c *completedJob, src source, err error) {
	s.requests.Add(1)
	// Fast path: any tier of the store already has it. Submissions
	// promote disk hits — a resubmitted spec is likely to repeat.
	if j, c, src, ok := s.store.find(id, true); ok {
		s.countHit(src)
		return id, j, c, src, nil
	}
	return s.schedule(id, newJob(id, spec))
}

// countHit attributes a store hit to its counter.
func (s *Server) countHit(src source) {
	switch src {
	case sourceDedup:
		s.dedupHits.Add(1)
	case sourceCache:
		s.cacheHits.Add(1)
	}
	// Disk hits are counted by the spill tier itself; the by-source
	// metric covers all three.
	s.m.countSource(src)
}

// schedule queues a fresh job under the lifecycle guard, re-checking the
// owning shard so racing identical submissions still collapse onto one
// job. Exactly one of the returned j/c is non-nil on success.
func (s *Server) schedule(id string, fresh *Job) (string, *Job, *completedJob, source, error) {
	s.lifecycle.RLock()
	defer s.lifecycle.RUnlock()
	if s.draining {
		s.m.countRejection(ErrDraining)
		return "", nil, nil, "", ErrDraining
	}
	sh := s.store.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// The window between the caller's probe and this lock: an identical
	// request may have registered, or even completed, meanwhile.
	if j, ok := sh.jobs[id]; ok {
		s.dedupHits.Add(1)
		s.m.countSource(sourceDedup)
		return id, j, nil, sourceDedup, nil
	}
	if c, ok := sh.cache.Get(id); ok {
		s.cacheHits.Add(1)
		s.m.countSource(sourceCache)
		return id, nil, c, sourceCache, nil
	}
	select {
	case s.queue <- fresh:
	default:
		s.m.countRejection(ErrBusy)
		return "", nil, nil, "", ErrBusy
	}
	sh.jobs[id] = fresh
	s.jobsWG.Add(1)
	s.m.countSource(sourceRun)
	return id, fresh, nil, sourceRun, nil
}

// lookup finds a job by ID in any store tier, in-flight or completed.
// Read-only (status/stream) resolution: disk hits are served without
// promotion so polling cold IDs cannot pollute the memory LRU.
func (s *Server) lookup(id string) (*Job, *completedJob, bool) {
	j, c, _, ok := s.store.find(id, false)
	return j, c, ok
}

// worker consumes the job queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob simulates one job and publishes its payload.
func (s *Server) runJob(j *Job) {
	defer s.jobsWG.Done()
	s.lifecycle.RLock()
	gate := s.testRunGate
	s.lifecycle.RUnlock()
	if gate != nil {
		gate(j)
	}
	j.setRunning()
	s.simulations.Add(1)
	s.runningJobs.Add(1)
	defer s.runningJobs.Add(-1)
	start := time.Now()
	g, src, err := j.Spec.Build()
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	results, err := j.Spec.RunOn(g, src, func(t int, r core.Result) {
		j.appendLine(mustMarshalLine(toTrialJSON(j.Spec, t, r)))
	})
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	// Only completed simulations are observed: failures abort at
	// arbitrary points and would pollute the latency distribution.
	s.m.observeSim(j.Spec.Protocol, time.Since(start).Seconds())
	s.finish(j, mustMarshalLine(buildRunResponse(j.Spec, g, src, results)), nil)
}

// finish completes j (success or failure) and publishes its payload to
// the store: out of the in-flight table, into the result cache — from
// which eviction spills to disk.
func (s *Server) finish(j *Job, resp []byte, err error) {
	if err != nil {
		s.failures.Add(1)
	}
	final := j.complete(resp, err)
	c := &completedJob{resp: resp, lines: j.snapshotLines(), final: final, trials: j.trials, points: j.points}
	if err != nil {
		c.errMsg = err.Error()
	}
	s.store.complete(j.ID, c)
	s.drainMu.Lock()
	s.drain.note(time.Now())
	s.drainMu.Unlock()
}

// completionRing holds recent completion timestamps; rate() reads the
// drain rate off them. Guarded by Server.drainMu.
type completionRing struct {
	times  [256]time.Time
	idx    int
	filled bool
}

func (r *completionRing) note(t time.Time) {
	r.times[r.idx] = t
	r.idx++
	if r.idx == len(r.times) {
		r.idx = 0
		r.filled = true
	}
}

// rate returns completions per second over the trailing window. When the
// ring wrapped inside the window the rate is computed over the span it
// actually covers, so a fast burst is not underestimated.
func (r *completionRing) rate(now time.Time, window time.Duration) float64 {
	cutoff := now.Add(-window)
	n := r.idx
	if r.filled {
		n = len(r.times)
	}
	count := 0
	oldest := now
	for i := 0; i < n; i++ {
		t := r.times[i]
		if t.After(cutoff) {
			count++
			if t.Before(oldest) {
				oldest = t
			}
		}
	}
	if count == 0 {
		return 0
	}
	span := window
	if r.filled || count == len(r.times) {
		if s := now.Sub(oldest); s > 0 && s < span {
			span = s
		}
	}
	if span <= 0 {
		return 0
	}
	return float64(count) / span.Seconds()
}

// retryAfterSeconds derives the Retry-After for a queue-full 429: the
// whole seconds the observed drain rate needs to clear the work already
// queued and running ahead of a retry, clamped to [1s, 60s]. Before any
// completion has been observed it answers 2 — long enough to matter,
// short enough to recover quickly from a cold start.
func (s *Server) retryAfterSeconds() int {
	depth, _ := s.QueueDepth()
	pending := depth + int(s.runningJobs.Load())
	s.drainMu.Lock()
	rate := s.drain.rate(time.Now(), 10*time.Second)
	s.drainMu.Unlock()
	if rate <= 0 {
		return 2
	}
	secs := int(float64(pending+1)/rate + 0.999)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// Shutdown stops intake (submissions return ErrDraining → 503) and waits
// for every accepted job — queued, running, or an assembling sweep — to
// finish, so no result is dropped. If ctx expires first it returns
// ctx.Err() with workers still draining; the process is expected to exit
// shortly after.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lifecycle.Lock()
	s.draining = true
	s.lifecycle.Unlock()
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// All submitters observe draining before reaching the queue send (both
	// run under the lifecycle read lock), so closing is race-free once
	// intake stopped and jobs drained. Guarded by its own flag — not
	// draining — so a retry after a timed-out first Shutdown still closes
	// the queue and releases the workers.
	s.lifecycle.Lock()
	if !s.queueClosed {
		s.queueClosed = true
		close(s.queue)
	}
	s.lifecycle.Unlock()
	s.workerWG.Wait()
	return nil
}
