// Package serve turns the simulator into a long-running service: an
// HTTP/JSON API over canonicalized experiment.RunSpec requests, with
// request deduplication, result caching, bounded concurrency, and
// streaming per-trial results.
//
// # Request identity
//
// Every request is normalized (experiment.RunSpec.Normalize) and reduced
// to a canonical JSON encoding whose SHA-256 is the job ID. Two requests
// that mean the same simulation — differing only in field order, spec
// whitespace, numeric rendering, or knobs the protocol ignores — get the
// same ID. That identity drives everything downstream:
//
//   - singleflight dedup: N identical in-flight requests share one
//     simulation (the jobs map holds one Job per ID);
//   - result caching: completed payloads land in a size-bounded LRU keyed
//     by the same ID, so repeats are served without simulating;
//   - determinism: the engines are bit-deterministic for a given spec, so
//     a fresh, deduplicated, or cached response for the same ID is
//     byte-identical — pinned by the end-to-end tests.
//
// # Execution model
//
// Accepted jobs enter a bounded queue consumed by a fixed worker pool
// sized to the machine (each simulation itself parallelizes across
// internal/par, so a small number of workers saturates the cores). Every
// simulation — run and sweep points alike, all five protocols — executes
// on core's unified lane engine: fused multi-lane bundles at the adaptive
// bundle width, which is a pure throughput knob (results are bit-identical
// at any width, so the response bytes this layer caches and replays never
// depend on it). Trial results are emitted in strict trial order as the
// engines complete them (core's EmitFunc contract) and appended to the job
// as pre-marshaled NDJSON frames; GET /v1/jobs/{id}/stream replays the
// frames and follows live. Shutdown stops intake (503) and drains queued
// and running jobs without dropping results.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rumor/internal/core"
	"rumor/internal/experiment"
	"rumor/internal/lru"
	"rumor/internal/par"
)

// keyPrefix versions the request-identity scheme: bump it when the
// canonical encoding or the response format changes so stale cache
// identities can never alias new ones.
const keyPrefix = "rumord/v1|"

// Options configures a Server. The zero value selects all defaults.
type Options struct {
	// Workers bounds concurrently running simulations. Default: half the
	// processors (min 1) — each simulation already shards across cores.
	Workers int
	// QueueSize bounds accepted-but-not-started jobs; submissions beyond
	// it are rejected with 429. Default 256.
	QueueSize int
	// CacheSize bounds the completed-result LRU (entries). Default 512.
	CacheSize int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	w := par.Procs() / 2
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) queueSize() int {
	if o.QueueSize > 0 {
		return o.QueueSize
	}
	return 256
}

func (o Options) cacheSize() int {
	if o.CacheSize > 0 {
		return o.CacheSize
	}
	return 512
}

// Stats is a snapshot of the server's counters, exposed on /v1/healthz
// and asserted on by the end-to-end tests (dedup means Simulations stays
// at 1 no matter how many identical requests arrive).
type Stats struct {
	Requests    int64 `json:"requests"`    // normalized submissions
	Simulations int64 `json:"simulations"` // jobs actually simulated
	DedupHits   int64 `json:"dedupHits"`   // joined an in-flight job
	CacheHits   int64 `json:"cacheHits"`   // served from the result LRU
	Failures    int64 `json:"failures"`    // jobs that ended in error
	JobsLive    int   `json:"jobsLive"`    // queued + running now
	CacheLen    int   `json:"cacheLen"`    // completed payloads resident
	Draining    bool  `json:"draining"`
}

// ErrDraining rejects submissions during shutdown.
var ErrDraining = errors.New("serve: shutting down")

// ErrBusy rejects submissions when the job queue is full.
var ErrBusy = errors.New("serve: job queue full")

// Server is the simulation service. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	opts Options

	mu          sync.Mutex
	draining    bool
	queueClosed bool
	jobs        map[string]*Job // in-flight (queued or running), by ID
	cache       *lru.Cache[string, *completedJob]
	queue       chan *Job
	jobsWG      sync.WaitGroup // accepted jobs not yet finished
	workerWG    sync.WaitGroup

	requests    atomic.Int64
	simulations atomic.Int64
	dedupHits   atomic.Int64
	cacheHits   atomic.Int64
	failures    atomic.Int64

	// testRunGate, when set (tests only), runs at the top of each
	// simulation; blocking it holds jobs in the running state so tests can
	// overlap requests deterministically.
	testRunGate func(*Job)
}

// New starts a Server's worker pool and returns it.
func New(opts Options) *Server {
	s := &Server{
		opts:  opts,
		jobs:  make(map[string]*Job),
		cache: lru.New[string, *completedJob](opts.cacheSize()),
		queue: make(chan *Job, opts.queueSize()),
	}
	for i := 0; i < opts.workers(); i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	live, draining := len(s.jobs), s.draining
	s.mu.Unlock()
	return Stats{
		Requests:    s.requests.Load(),
		Simulations: s.simulations.Load(),
		DedupHits:   s.dedupHits.Load(),
		CacheHits:   s.cacheHits.Load(),
		Failures:    s.failures.Load(),
		JobsLive:    live,
		CacheLen:    s.cache.Len(),
		Draining:    draining,
	}
}

// jobID derives the canonical identity of a normalized spec: SHA-256 over
// the versioned canonical JSON encoding. Struct-field order makes the
// encoding deterministic; Normalize makes it canonical.
func jobID(spec experiment.RunSpec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// A RunSpec has no unmarshalable fields; this cannot happen.
		panic(fmt.Sprintf("serve: marshal spec: %v", err))
	}
	sum := sha256.Sum256(append([]byte(keyPrefix), b...))
	return hex.EncodeToString(sum[:])
}

// source labels where a submission's result comes from.
type source string

const (
	sourceRun   source = "run"   // fresh simulation
	sourceDedup source = "dedup" // joined an identical in-flight job
	sourceCache source = "cache" // completed payload from the LRU
)

// submit resolves a normalized spec to its job: a cached payload, an
// identical in-flight job, or a freshly queued one. Exactly one of c and
// j is non-nil on success.
func (s *Server) submit(spec experiment.RunSpec) (id string, j *Job, c *completedJob, src source, err error) {
	id = jobID(spec)
	s.requests.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.cache.Get(id); ok {
		s.cacheHits.Add(1)
		return id, nil, c, sourceCache, nil
	}
	if j, ok := s.jobs[id]; ok {
		s.dedupHits.Add(1)
		return id, j, nil, sourceDedup, nil
	}
	if s.draining {
		return "", nil, nil, "", ErrDraining
	}
	j = newJob(id, spec)
	select {
	case s.queue <- j:
	default:
		return "", nil, nil, "", ErrBusy
	}
	s.jobs[id] = j
	s.jobsWG.Add(1)
	return id, j, nil, sourceRun, nil
}

// lookup finds a job by ID, in-flight or completed.
func (s *Server) lookup(id string) (*Job, *completedJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, nil, true
	}
	if c, ok := s.cache.Get(id); ok {
		return nil, c, true
	}
	return nil, nil, false
}

// worker consumes the job queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob simulates one job and publishes its payload.
func (s *Server) runJob(j *Job) {
	defer s.jobsWG.Done()
	s.mu.Lock()
	gate := s.testRunGate
	s.mu.Unlock()
	if gate != nil {
		gate(j)
	}
	j.setRunning()
	s.simulations.Add(1)
	g, src, err := j.Spec.Build()
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	results, err := j.Spec.RunOn(g, src, func(t int, r core.Result) {
		j.appendLine(mustMarshalLine(toTrialJSON(j.Spec, t, r)))
	})
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	s.finish(j, mustMarshalLine(buildRunResponse(j.Spec, g, src, results)), nil)
}

// finish completes j (success or failure), moves its payload from the
// in-flight map to the completed-result LRU, and wakes streamers.
func (s *Server) finish(j *Job, resp []byte, err error) {
	if err != nil {
		s.failures.Add(1)
	}
	final := j.complete(resp, err)
	c := &completedJob{resp: resp, lines: j.snapshotLines(), final: final, trials: j.Spec.Trials}
	if err != nil {
		c.errMsg = err.Error()
	}
	s.mu.Lock()
	delete(s.jobs, j.ID)
	s.cache.Put(j.ID, c)
	s.mu.Unlock()
}

// Shutdown stops intake (submissions return ErrDraining → 503) and waits
// for every accepted job — queued or running — to finish, so no result is
// dropped. If ctx expires first it returns ctx.Err() with workers still
// draining; the process is expected to exit shortly after.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// All submitters observe draining before reaching the queue send, so
	// closing is race-free once intake stopped and jobs drained. Guarded
	// by its own flag — not draining — so a retry after a timed-out first
	// Shutdown still closes the queue and releases the workers.
	s.mu.Lock()
	if !s.queueClosed {
		s.queueClosed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.workerWG.Wait()
	return nil
}
