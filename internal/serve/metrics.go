// Metrics instrumentation for the serving layer: every counter the
// server already keeps (request sources, dedup, spill, sweep planning)
// plus per-protocol simulation-latency histograms, rendered in the
// Prometheus text format on GET /metrics.
//
// Design: state that already lives in an atomic (requests, simulations,
// spill writes, graph-memo counters) is exposed through func-backed
// series read at scrape time — one source of truth, zero new hot-path
// cost. Only facts no existing counter captures (submission source
// split, rejection reasons, sweep-plan resolution, stream followers,
// latency observations) get dedicated instruments, all pre-resolved at
// construction so the hot path never does a label lookup. Every
// instrument field is nil-safe, so Options.DisableMetrics turns the
// whole layer into no-ops — the property BENCH_PR8 measures.
package serve

import (
	"rumor/internal/experiment"
	"rumor/internal/graph"
	"rumor/internal/metrics"
)

// simBuckets spans the simulation-latency range: 100µs (a warm small
// graph) up to ~100s (paper-scale heavy trees), exponential ×2.
var simBuckets = metrics.ExpBuckets(0.0001, 2, 21)

// serveMetrics bundles the server's instruments. A nil *serveMetrics
// (Options.DisableMetrics) no-ops every method.
type serveMetrics struct {
	reg *metrics.Registry

	// Submission outcomes: every normalized submission increments
	// requests_total (func-backed) and exactly one of these, so
	// requests_total == Σ by_source + Σ rejections holds exactly —
	// the conservation law cmd/soak asserts.
	srcRun, srcDedup, srcCache, srcDisk *metrics.Counter
	rejBusy, rejDraining                *metrics.Counter

	// Sweep-plan resolution tallies (fresh plans only, matching the
	// X-Rumord-Sweep-* headers).
	sweepHits, sweepJoined, sweepScheduled *metrics.Counter

	streams        *metrics.Counter
	followers      *metrics.Gauge
	internalErrors *metrics.Counter

	simSeconds *metrics.HistogramVec
	simByProto map[experiment.Proto]*metrics.Histogram
}

// newServeMetrics builds the registry for s and pre-resolves every
// hot-path child series (so they exist from boot — scrapers and the CI
// smoke checks see the full inventory before traffic arrives).
func newServeMetrics(s *Server) *serveMetrics {
	reg := metrics.NewRegistry()
	m := &serveMetrics{reg: reg}

	reg.CounterFunc("rumord_requests_total", "Normalized submissions (runs, sweeps, and sweep points).",
		func() float64 { return float64(s.requests.Load()) })
	bySource := reg.CounterVec("rumord_requests_by_source_total",
		"Submissions by where the result came from (matches X-Rumord-Source).", "source")
	m.srcRun = bySource.With(string(sourceRun))
	m.srcDedup = bySource.With(string(sourceDedup))
	m.srcCache = bySource.With(string(sourceCache))
	m.srcDisk = bySource.With(string(sourceDisk))
	rej := reg.CounterVec("rumord_submit_rejections_total",
		"Submissions rejected at intake.", "reason")
	m.rejBusy = rej.With("busy")
	m.rejDraining = rej.With("draining")

	reg.CounterFunc("rumord_simulations_total", "Jobs actually simulated (dedup and cache hits excluded).",
		func() float64 { return float64(s.simulations.Load()) })
	reg.CounterFunc("rumord_failures_total", "Jobs that ended in error.",
		func() float64 { return float64(s.failures.Load()) })
	reg.CounterFunc("rumord_sweeps_total", "Sweep plans assembled fresh.",
		func() float64 { return float64(s.sweeps.Load()) })
	sweepPoints := reg.CounterVec("rumord_sweep_points_total",
		"Cross-product points by planner resolution (fresh sweep plans only).", "resolution")
	m.sweepHits = sweepPoints.With("hit")
	m.sweepJoined = sweepPoints.With("joined")
	m.sweepScheduled = sweepPoints.With("scheduled")

	reg.GaugeFunc("rumord_jobs_live", "In-flight jobs (queued + running, sweeps included).",
		func() float64 { return float64(s.store.jobsLive()) })
	reg.GaugeFunc("rumord_queue_depth", "Accepted-but-not-started jobs.",
		func() float64 { depth, _ := s.QueueDepth(); return float64(depth) })
	reg.GaugeFunc("rumord_queue_capacity", "Job queue capacity.",
		func() float64 { _, capacity := s.QueueDepth(); return float64(capacity) })
	reg.GaugeFunc("rumord_workers", "Simulation worker pool size.",
		func() float64 { return float64(s.opts.workers()) })
	reg.GaugeFunc("rumord_workers_busy", "Workers currently running a simulation.",
		func() float64 { return float64(s.runningJobs.Load()) })
	reg.GaugeFunc("rumord_cache_entries", "Completed payloads resident in the memory LRU.",
		func() float64 { return float64(s.store.cacheLen()) })
	reg.GaugeFunc("rumord_cache_capacity", "Memory LRU capacity (entries, summed across shards).",
		func() float64 { return float64(s.opts.cacheSize()) })
	reg.GaugeFunc("rumord_shards", "Store shard count.",
		func() float64 { return float64(len(s.store.shards)) })
	reg.GaugeFunc("rumord_draining", "1 once Shutdown has stopped intake.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})

	// Spill tier: zero-valued series without a DataDir, so the scrape
	// shape is identical either way.
	spillCounter := func(name, help string, load func(*spill) int64) {
		reg.CounterFunc(name, help, func() float64 {
			if sp := s.store.spill; sp != nil {
				return float64(load(sp))
			}
			return 0
		})
	}
	spillCounter("rumord_spill_writes_total", "Payloads persisted to the disk tier on eviction.",
		func(sp *spill) int64 { return sp.writes.Load() })
	spillCounter("rumord_spill_write_bytes_total", "Payload bytes persisted to the disk tier.",
		func(sp *spill) int64 { return sp.writeBytes.Load() })
	spillCounter("rumord_spill_reads_total", "Lookups served from the disk tier.",
		func(sp *spill) int64 { return sp.hits.Load() })
	spillCounter("rumord_spill_read_bytes_total", "Payload bytes replayed from the disk tier.",
		func(sp *spill) int64 { return sp.readBytes.Load() })
	spillCounter("rumord_spill_errors_total", "Failed spill writes/reads (corrupt files count here).",
		func(sp *spill) int64 { return sp.errors.Load() })
	reg.GaugeFunc("rumord_spill_resident", "Valid entries resident on disk.",
		func() float64 {
			if sp := s.store.spill; sp != nil {
				return float64(sp.resident.Load())
			}
			return 0
		})

	m.streams = reg.Counter("rumord_streams_total", "GET /v1/jobs/{id}/stream requests served.")
	m.followers = reg.Gauge("rumord_stream_followers", "NDJSON stream connections currently open.")
	m.internalErrors = reg.Counter("rumord_internal_errors_total",
		"Requests that failed with an unexpected internal error (500).")

	m.simSeconds = reg.HistogramVec("rumord_simulation_seconds",
		"Wall-clock duration of completed simulations by protocol.", simBuckets, "protocol")
	m.simByProto = make(map[experiment.Proto]*metrics.Histogram, 5)
	for _, p := range experiment.Protos() {
		m.simByProto[p] = m.simSeconds.With(string(p))
	}

	// Graph substrate: the memo and the CSR disk store keep their own
	// atomics (no import cycle); surface them here.
	reg.CounterFunc("rumor_graph_memo_hits_total", "Deterministic-graph memo lookups served without building.",
		func() float64 { calls, builds, _ := experiment.GraphMemoStats(); return float64(calls - builds) })
	reg.CounterFunc("rumor_graph_memo_misses_total", "Deterministic-graph memo lookups that invoked a build.",
		func() float64 { _, builds, _ := experiment.GraphMemoStats(); return float64(builds) })
	reg.CounterFunc("rumor_graph_memo_evictions_total", "Graphs evicted from the memo LRU.",
		func() float64 { _, _, ev := experiment.GraphMemoStats(); return float64(ev) })
	reg.CounterFunc("rumor_graph_csr_opens_total", "Spilled CSR files reopened mmap-backed.",
		func() float64 { opens, _, _ := graph.StoreStats(); return float64(opens) })
	reg.CounterFunc("rumor_graph_store_builds_total", "Graph builds invoked on CSR-store misses.",
		func() float64 { _, builds, _ := graph.StoreStats(); return float64(builds) })
	reg.CounterFunc("rumor_graph_store_spills_total", "Built graphs encoded to the CSR store.",
		func() float64 { _, _, spills := graph.StoreStats(); return float64(spills) })

	return m
}

// countSource attributes a successful submission to its source series.
func (m *serveMetrics) countSource(src source) {
	if m == nil {
		return
	}
	switch src {
	case sourceRun:
		m.srcRun.Inc()
	case sourceDedup:
		m.srcDedup.Inc()
	case sourceCache:
		m.srcCache.Inc()
	case sourceDisk:
		m.srcDisk.Inc()
	}
}

// countRejection attributes a rejected submission to its reason series.
// Unknown errors (none exist today) land on the internal-error counter
// so the conservation law still balances.
func (m *serveMetrics) countRejection(err error) {
	if m == nil {
		return
	}
	switch err {
	case ErrBusy:
		m.rejBusy.Inc()
	case ErrDraining:
		m.rejDraining.Inc()
	default:
		m.internalErrors.Inc()
	}
}

// countInternalError records an unexpected 500.
func (m *serveMetrics) countInternalError() {
	if m == nil {
		return
	}
	m.internalErrors.Inc()
}

// countPlan records a fresh sweep plan's resolution tallies.
func (m *serveMetrics) countPlan(plan *sweepPlan) {
	if m == nil || plan == nil {
		return
	}
	m.sweepHits.Add(int64(plan.hits))
	m.sweepJoined.Add(int64(plan.joined))
	m.sweepScheduled.Add(int64(plan.scheduled))
}

// observeSim records one completed simulation's wall-clock seconds under
// its protocol. The five paper protocols are pre-resolved; anything else
// (impossible after spec normalization) resolves lazily.
func (m *serveMetrics) observeSim(p experiment.Proto, seconds float64) {
	if m == nil {
		return
	}
	h, ok := m.simByProto[p]
	if !ok {
		h = m.simSeconds.With(string(p))
	}
	h.Observe(seconds)
}

// streamOpen counts a stream request and marks its follower present for
// the duration of the returned func.
func (m *serveMetrics) streamOpen() func() {
	if m == nil {
		return func() {}
	}
	m.streams.Inc()
	m.followers.Inc()
	return m.followers.Dec
}
