package serve

import "rumor/internal/experiment"

// JobID returns the canonical identity of a spec — the SHA-256 hex the
// service keys jobs, dedup, caching, and spill files by. The spec must
// already be normalized (experiment.RunSpec.Normalize); hashing an
// un-normalized spec yields a valid but non-canonical identity that will
// not collide with the service's.
//
// It is exported for the gateway tier: a router that derives the same ID
// from the same request bytes can consistent-hash identical specs onto
// the same backend, so cross-client dedup keeps working across processes.
func JobID(spec experiment.RunSpec) string { return jobID(spec) }

// SweepJobID returns the identity of a sweep over the given expanded
// points (experiment.Sweep.Expand's output, whose order is part of the
// identity) — the ID the service mints for the sweep job itself.
func SweepJobID(points []experiment.SweepPoint) string {
	ids := make([]string, len(points))
	for i := range points {
		ids[i] = jobID(points[i].Spec)
	}
	return sweepID(ids)
}
