// Cache-aware sweep planning: POST /v1/sweep expands its cross-product
// in canonical order, probes every point against the store (in-flight
// jobs, memory LRU, disk tier), schedules only the misses through the
// worker pool, and assembles hits + fresh results into one deterministic
// response and NDJSON stream. Because every point's payload is
// byte-identical however it is served, the assembled sweep is
// byte-identical whether the store was cold, partly warm, or fully warm
// — the property the planner's tests pin.
//
// A sweep is itself a job: identified by the hash of its ordered point
// IDs, deduplicated against identical in-flight sweeps, cached in the
// sharded store, and spilled to disk like any other result. Sweep jobs
// never occupy worker slots — an orchestrator goroutine waits on the
// point jobs (all enqueued before the sweep is registered, so draining
// can never strand one) and appends frames in plan order.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"rumor/internal/experiment"
)

// sweepKeyPrefix versions sweep identity separately from point identity:
// a sweep's ID hashes the ordered point IDs, so it changes whenever any
// point's identity (or the response format, via this prefix) does.
const sweepKeyPrefix = "rumord/sweep/v1|"

// sweepLimit is the absolute bound on one sweep's cross-product,
// independent of the queue bound.
const sweepLimit = 1024

// plannedPoint is one cross-product point after planning: its normalized
// spec and ID, plus exactly one of hit (a payload some store tier already
// had) or job (in-flight — joined or freshly scheduled).
type plannedPoint struct {
	spec experiment.RunSpec
	id   string
	hit  *completedJob
	job  *Job
	src  source
}

// sweepPlan is the planner's outcome for a fresh sweep: every point
// resolved, with the tallies the response headers report.
type sweepPlan struct {
	points    []plannedPoint
	hits      int // served from memory or disk, no work scheduled
	joined    int // deduplicated onto jobs already in flight
	scheduled int // genuinely new simulations queued
}

// sweepBoundsError rejects a sweep whose cross-product cannot be
// scheduled; it names the largest dimension so the caller knows what to
// shrink. Mapped to 422 by the handler.
type sweepBoundsError struct {
	graphs, protocols, seeds int
	bound                    int
	boundName                string
}

func (e *sweepBoundsError) Error() string {
	dim, n := "graphs", e.graphs
	if e.protocols > n {
		dim, n = "protocols", e.protocols
	}
	if e.seeds > n {
		dim, n = "seeds", e.seeds
	}
	return fmt.Sprintf(
		"sweep cross-product of %d points (%d graphs × %d protocols × %d seeds) exceeds the %s of %d; largest dimension: %s (%d)",
		e.graphs*e.protocols*e.seeds, e.graphs, e.protocols, e.seeds, e.boundName, e.bound, dim, n)
}

// checkSweepBounds rejects cross-products larger than the job queue (a
// sweep's misses must all be schedulable at once) or the absolute sweep
// limit.
func (s *Server) checkSweepBounds(req experiment.Sweep) error {
	g, p, sd := req.Dims()
	bound, name := s.opts.queueSize(), "job queue bound"
	if sweepLimit < bound {
		bound, name = sweepLimit, "sweep limit"
	}
	if g*p*sd > bound {
		return &sweepBoundsError{graphs: g, protocols: p, seeds: sd, bound: bound, boundName: name}
	}
	return nil
}

// sweepID hashes the ordered point IDs into the sweep's identity. Two
// requests that expand to the same points in the same order — however
// spelled — are the same sweep.
func sweepID(pointIDs []string) string {
	h := sha256.New()
	h.Write([]byte(sweepKeyPrefix))
	for _, id := range pointIDs {
		h.Write([]byte(id))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// submitSweep resolves an expanded sweep: a cached sweep payload, an
// identical in-flight sweep, or a fresh plan whose misses are now queued
// and whose orchestrator is running. Exactly one of j and c is non-nil
// on success; plan is non-nil only for a fresh plan. On error, plan
// reports the points resolved before the failure (their simulations keep
// running and warm the cache).
func (s *Server) submitSweep(points []experiment.SweepPoint) (id string, j *Job, c *completedJob, src source, plan *sweepPlan, err error) {
	ids := make([]string, len(points))
	for i := range points {
		ids[i] = jobID(points[i].Spec)
	}
	id = sweepID(ids)
	s.requests.Add(1)
	if j, c, src, ok := s.store.find(id, true); ok {
		s.countHit(src)
		return id, j, c, src, nil, nil
	}
	// Plan: resolve every point through the regular submission path, so
	// hits, joins, and scheduling share the single-job machinery (and its
	// counters) exactly.
	plan = &sweepPlan{points: make([]plannedPoint, 0, len(points))}
	for i, pt := range points {
		_, pj, pc, psrc, perr := s.submitWithID(ids[i], pt.Spec)
		if perr != nil {
			// The failing point counted its own rejection; this counts the
			// sweep request itself, keeping the conservation law exact.
			s.m.countRejection(perr)
			return "", nil, nil, "", plan, perr
		}
		plan.points = append(plan.points, plannedPoint{spec: pt.Spec, id: ids[i], hit: pc, job: pj, src: psrc})
		switch {
		case pc != nil:
			plan.hits++
		case psrc == sourceDedup:
			plan.joined++
		default:
			plan.scheduled++
		}
	}
	sj := newSweepJob(id, plan)
	s.lifecycle.RLock()
	if s.draining {
		s.lifecycle.RUnlock()
		s.m.countRejection(ErrDraining)
		return "", nil, nil, "", plan, ErrDraining
	}
	sh := s.store.shardFor(id)
	sh.mu.Lock()
	// An identical sweep may have raced past us; its plan resolved the
	// same points (our scheduled misses deduplicated onto the same jobs),
	// so joining it drops nothing.
	if ex, ok := sh.jobs[id]; ok {
		sh.mu.Unlock()
		s.lifecycle.RUnlock()
		s.dedupHits.Add(1)
		s.m.countSource(sourceDedup)
		return id, ex, nil, sourceDedup, nil, nil
	}
	if c, ok := sh.cache.Get(id); ok {
		sh.mu.Unlock()
		s.lifecycle.RUnlock()
		s.cacheHits.Add(1)
		s.m.countSource(sourceCache)
		return id, nil, c, sourceCache, nil, nil
	}
	sh.jobs[id] = sj
	s.jobsWG.Add(1)
	sh.mu.Unlock()
	s.lifecycle.RUnlock()
	s.sweeps.Add(1)
	s.m.countSource(sourceRun)
	s.m.countPlan(plan)
	go s.runSweep(sj)
	return id, sj, nil, sourceRun, plan, nil
}

// sweepHeaderJSON is the per-point header frame of a sweep stream: it
// precedes the point's trial frames and carries the point's identity.
type sweepHeaderJSON struct {
	Point    int              `json:"point"`
	Graph    string           `json:"graph"`
	Protocol experiment.Proto `json:"protocol"`
	Seed     uint64           `json:"seed"`
	Job      string           `json:"job"`
	Frames   int              `json:"frames"`
	Error    string           `json:"error,omitempty"`
}

// sweepPointJSON is one point's entry in the assembled sweep response.
type sweepPointJSON struct {
	Graph    string           `json:"graph"`
	Protocol experiment.Proto `json:"protocol"`
	Seed     uint64           `json:"seed"`
	Job      string           `json:"job"`
	Error    string           `json:"error,omitempty"`
	Result   json.RawMessage  `json:"result,omitempty"`
}

// sweepResponse is the full result body of a waited POST /v1/sweep (and
// the "result" of a done GET /v1/jobs/{sweep-id}). Every field derives
// from the normalized point specs and their deterministic payloads, so
// the body is byte-identical however the store resolved each point.
type sweepResponse struct {
	Sweep  string           `json:"sweep"`
	Points []sweepPointJSON `json:"points"`
}

// runSweep assembles a planned sweep: for each point in plan order, wait
// for its payload (immediate for hits), append the header frame and the
// point's trial frames, and collect its response entry. Point payloads
// are held by pointer — LRU eviction between planning and assembly
// cannot lose them.
func (s *Server) runSweep(j *Job) {
	defer s.jobsWG.Done()
	j.setRunning()
	resp := sweepResponse{Sweep: j.ID, Points: make([]sweepPointJSON, 0, len(j.plan.points))}
	for i, pp := range j.plan.points {
		c := pp.hit
		if c == nil {
			<-pp.job.done
			r, err := pp.job.result()
			c = &completedJob{resp: r, lines: pp.job.snapshotLines()}
			if err != nil {
				c.errMsg = err.Error()
			}
		}
		j.appendLine(mustMarshalLine(sweepHeaderJSON{
			Point: i, Graph: pp.spec.Graph, Protocol: pp.spec.Protocol, Seed: pp.spec.Seed,
			Job: pp.id, Frames: len(c.lines), Error: c.errMsg,
		}))
		for _, line := range c.lines {
			j.appendLine(line)
		}
		entry := sweepPointJSON{
			Graph: pp.spec.Graph, Protocol: pp.spec.Protocol, Seed: pp.spec.Seed, Job: pp.id,
		}
		if c.failed() {
			entry.Error = c.errMsg
		} else {
			entry.Result = json.RawMessage(bytes.TrimSuffix(c.resp, []byte("\n")))
		}
		resp.Points = append(resp.Points, entry)
	}
	// Point failures are deterministic (a spec that cannot build fails
	// identically every time), so the assembled body — failures included —
	// is cacheable; the sweep job itself always completes.
	s.finish(j, mustMarshalLine(resp), nil)
}
