package core

import (
	"sync/atomic"

	"rumor/internal/graph"
)

// epochMark is a per-vertex boolean reset in O(1) per round by bumping an
// epoch, used for "does this vertex currently host an informed agent"
// queries. Unlike agents.Occupancy it stores no counts and keeps no
// touched list: marking is a single unconditional store, which also makes
// it safe to mark from concurrent shards via markAtomic (all writers store
// the same epoch value through the atomic API, and readers run strictly
// after the parallel phase's barrier).
type epochMark struct {
	stamp []uint32
	epoch uint32
}

func newEpochMark(n int) *epochMark {
	return &epochMark{stamp: make([]uint32, n)}
}

// next invalidates all marks. The first usable epoch is 1; on the (never
// in practice) epoch wrap the stamps are cleared to keep queries exact.
func (m *epochMark) next() {
	m.epoch++
	if m.epoch == 0 {
		clear(m.stamp)
		m.epoch = 1
	}
}

// markAtomic marks v from a parallel shard.
func (m *epochMark) markAtomic(v graph.Vertex) {
	atomic.StoreUint32(&m.stamp[v], m.epoch)
}

// mark marks v from serial code.
func (m *epochMark) mark(v graph.Vertex) { m.stamp[v] = m.epoch }

// marked reports whether v was marked since the last next.
func (m *epochMark) marked(v graph.Vertex) bool { return m.stamp[v] == m.epoch }
