package core

import (
	"fmt"

	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// PushOptions configures the push protocol.
type PushOptions struct {
	// FailureProb is the probability that a transmission silently fails,
	// modeling the random link failures of Elsässer & Sauerwald [22] that
	// the paper's Lemma 4(a) relies on. Zero means reliable links.
	FailureProb float64
	// Observer, if non-nil, receives every neighbor call. Setting an
	// observer forces the serial all-senders path (callbacks arrive in
	// sender order, one per informed vertex) but does not change any
	// random draw or outcome.
	Observer MoveObserver
}

// Push is the classic randomized rumor-spreading protocol (Section 3): in
// every round, every vertex informed in a previous round samples a uniform
// random neighbor and informs it.
//
// The round is executed by the deterministic parallel engine: sender u's
// draws in round t come from the stream keyed (seed, u, t), shards draw
// concurrently, and newly informed vertices are committed in a serial
// merge — bit-identical results at any GOMAXPROCS.
//
// Because streams are counter-based, the engine may skip senders whose
// entire neighborhood is already informed: their sends provably cannot
// change state, and skipping their draws shifts nobody else's randomness.
// The protocol starts in a dense mode where every informed vertex draws —
// optimal while the rumor grows every round — and switches to boundary
// mode the first time a round informs nobody (the signature of the
// Ω(n log n) coupon-collector phases on stars), after which only informed
// vertices with an uninformed neighbor draw. On the star this turns
// Θ(n) work per waiting round into Θ(1). Messages always count one send
// per informed vertex, as the protocol defines.
type Push struct {
	g        *graph.Graph
	src      graph.Vertex
	opts     PushOptions
	seed     uint64
	failTh   uint64 // FailureProb as a raw-uint64 threshold
	sampler  neighborSampler
	informed *bitset.Set
	frontier []graph.Vertex // all informed vertices, in discovery order

	// Boundary bookkeeping (see boundary.go), built lazily after repeated
	// stagnant rounds (never in observer mode).
	boundary bool
	stagnant int
	bnd      pushBoundary

	procs    int
	senders  []graph.Vertex // the slice drawShard iterates (frontier or active)
	targets  []graph.Vertex // per-sender draw results; -1 marks a failed send
	pending  []graph.Vertex
	drawFn   func(shard, lo, hi int)
	round    int
	messages int64
}

var _ Process = (*Push)(nil)

// NewPush builds a push process with the rumor placed on s in round zero.
// It consumes exactly one value from rng (the protocol's stream seed).
func NewPush(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, opts PushOptions) (*Push, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	if opts.FailureProb < 0 || opts.FailureProb >= 1 {
		return nil, errFailureProb(opts.FailureProb)
	}
	p := &Push{
		g:        g,
		src:      s,
		opts:     opts,
		seed:     rng.Uint64(),
		failTh:   xrand.BernoulliThreshold(opts.FailureProb),
		sampler:  newNeighborSampler(g),
		informed: bitset.New(g.N()),
		frontier: make([]graph.Vertex, 0, g.N()),
	}
	p.procs = par.Procs()
	p.drawFn = p.drawShard
	p.informed.Set(int(s))
	p.frontier = append(p.frontier, s)
	return p, nil
}

// informVertex commits v as informed. In boundary mode it also maintains
// the boundary-sender set (see pushBoundary.onInformed).
func (p *Push) informVertex(v graph.Vertex) {
	p.informed.Set(int(v))
	p.frontier = append(p.frontier, v)
	if p.boundary {
		p.bnd.onInformed(p.g, v)
	}
}

// Name implements Process.
func (p *Push) Name() string { return "push" }

// Round implements Process.
func (p *Push) Round() int { return p.round }

// Done implements Process.
func (p *Push) Done() bool { return len(p.frontier) == p.g.N() }

// InformedCount implements Process.
func (p *Push) InformedCount() int { return len(p.frontier) }

// Messages implements Process.
func (p *Push) Messages() int64 { return p.messages }

// Source implements the sourced interface.
func (p *Push) Source() graph.Vertex { return p.src }

// Step implements Process. Only vertices informed in a previous round send;
// vertices informed during this round start sending next round.
func (p *Push) Step() {
	p.round++
	// Every informed vertex sends (and is counted), but only senders that
	// can change state need to draw.
	p.messages += int64(len(p.frontier))
	if p.opts.Observer != nil {
		p.stepSerial()
		return
	}
	if p.boundary {
		p.senders = p.bnd.active
	} else {
		p.senders = p.frontier
	}
	m := len(p.senders) // snapshot: commits below may mutate active
	if m == 0 {
		return
	}
	if p.targets == nil {
		p.targets = make([]graph.Vertex, p.g.N())
	}
	if shardsFor(m, senderGrain, p.procs) == 1 {
		p.drawShard(0, 0, m)
	} else {
		par.Do(m, senderGrain, p.drawFn)
	}
	// Serial merge: commit in draw order. informVertex sets the informed
	// bit, so duplicate targets commit once.
	before := len(p.frontier)
	for _, v := range p.targets[:m] {
		if v >= 0 && !p.informed.Test(int(v)) {
			p.informVertex(v)
		}
	}
	if !p.boundary {
		if len(p.frontier) != before {
			p.stagnant = 0
		} else if !p.Done() {
			// Consecutive stagnant rounds are the signature of a long
			// waiting phase. A single one also occurs in ordinary coupon
			// tails, so require two in a row before paying the O(M)
			// boundary construction.
			if p.stagnant++; p.stagnant >= boundaryStagnantRounds {
				p.bnd.build(p.g, p.frontier)
				p.boundary = true
			}
		}
	}
}

// drawShard draws the round's neighbor choice (and failure coin) for
// senders [lo, hi) into the targets scratch. Only per-slot writes; the
// serial merge in Step commits.
func (p *Push) drawShard(_, lo, hi int) {
	round := uint64(p.round)
	targets := p.targets
	idx, nbrs := p.sampler.idx, p.sampler.nbrs
	if idx == nil || p.failTh != 0 {
		for k := lo; k < hi; k++ {
			u := p.senders[k]
			s := xrand.NewStream(p.seed, uint64(u), round)
			v := p.sampler.sample(u, &s)
			if p.failTh != 0 && s.Uint64() < p.failTh {
				v = -1 // transmission lost
			}
			targets[k] = v
		}
		return
	}
	// Reliable-links fast path: one draw per sender, sampling inlined.
	for k := lo; k < hi; k++ {
		u := p.senders[k]
		word := idx[u]
		if graph.WalkDegreeOne(word) {
			targets[k] = graph.WalkOnlyNeighbor(word, nbrs)
		} else {
			targets[k] = graph.WalkTarget(word, xrand.Mix3(p.seed, uint64(u), round), nbrs)
		}
	}
}

// stepSerial is the observer path: every informed vertex draws (from the
// same per-sender streams) so the observer sees each neighbor call, in
// sender order.
func (p *Push) stepSerial() {
	round := uint64(p.round)
	senders := p.frontier // snapshot: appended to only after the loop
	p.pending = p.pending[:0]
	for _, u := range senders {
		s := xrand.NewStream(p.seed, uint64(u), round)
		v := p.sampler.sample(u, &s)
		p.opts.Observer(p.round, u, v)
		if p.failTh != 0 && s.Uint64() < p.failTh {
			continue
		}
		if !p.informed.Test(int(v)) {
			p.informed.Set(int(v))
			p.pending = append(p.pending, v)
		}
	}
	p.frontier = append(p.frontier, p.pending...)
}

func errFailureProb(p float64) error {
	return fmt.Errorf("core: FailureProb must be in [0,1), got %g", p)
}
