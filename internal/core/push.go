package core

import (
	"fmt"

	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// PushOptions configures the push protocol.
type PushOptions struct {
	// FailureProb is the probability that a transmission silently fails,
	// modeling the random link failures of Elsässer & Sauerwald [22] that
	// the paper's Lemma 4(a) relies on. Zero means reliable links.
	FailureProb float64
	// Observer, if non-nil, receives every neighbor call.
	Observer MoveObserver
}

// Push is the classic randomized rumor-spreading protocol (Section 3): in
// every round, every vertex informed in a previous round samples a uniform
// random neighbor and informs it.
type Push struct {
	g        *graph.Graph
	rng      *xrand.RNG
	src      graph.Vertex
	opts     PushOptions
	informed *bitset.Set
	frontier []graph.Vertex // all informed vertices; senders each round
	pending  []graph.Vertex
	round    int
	messages int64
}

var _ Process = (*Push)(nil)

// NewPush builds a push process with the rumor placed on s in round zero.
func NewPush(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, opts PushOptions) (*Push, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	if opts.FailureProb < 0 || opts.FailureProb >= 1 {
		return nil, errFailureProb(opts.FailureProb)
	}
	p := &Push{
		g:        g,
		rng:      rng,
		src:      s,
		opts:     opts,
		informed: bitset.New(g.N()),
	}
	p.informed.Set(int(s))
	p.frontier = append(p.frontier, s)
	return p, nil
}

// Name implements Process.
func (p *Push) Name() string { return "push" }

// Round implements Process.
func (p *Push) Round() int { return p.round }

// Done implements Process.
func (p *Push) Done() bool { return p.informed.Full() }

// InformedCount implements Process.
func (p *Push) InformedCount() int { return p.informed.Count() }

// Messages implements Process.
func (p *Push) Messages() int64 { return p.messages }

// Source implements the sourced interface.
func (p *Push) Source() graph.Vertex { return p.src }

// Step implements Process. Only vertices informed in a previous round send;
// vertices informed during this round start sending next round.
func (p *Push) Step() {
	p.round++
	p.pending = p.pending[:0]
	senders := p.frontier // snapshot: appended to only after the loop
	for _, u := range senders {
		nb := p.g.Neighbors(u)
		v := nb[p.rng.IntN(len(nb))]
		p.messages++
		if p.opts.Observer != nil {
			p.opts.Observer(p.round, u, v)
		}
		if p.opts.FailureProb > 0 && p.rng.Bernoulli(p.opts.FailureProb) {
			continue
		}
		if !p.informed.Test(int(v)) {
			p.informed.Set(int(v))
			p.pending = append(p.pending, v)
		}
	}
	p.frontier = append(p.frontier, p.pending...)
}

func errFailureProb(p float64) error {
	return fmt.Errorf("core: FailureProb must be in [0,1), got %g", p)
}
