package core

import (
	"reflect"
	"testing"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// The batched fused-stamp contract: lanes whose agents are all informed
// have their pass-1 occupancy stamping folded into the fused walk step
// (agents.BatchedWalks.StepStamped). Draws are keyed (seed, agent, round)
// either way, so the full per-trial Result — Rounds, Messages,
// AllAgentsRound, History — must be bit-identical to the separate-stage
// path, at any GOMAXPROCS, for any mix of fused and unfused lanes.
func TestBatchedVisitExchangeFusedStampEquivalence(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Star(96),       // all-informed regime dominates the Ω(n) tail
		graph.DoubleStar(48), // bridge wait with mixed lane progress
		graph.Hypercube(6),
	}
	opts := []AgentOptions{
		{},             // simple walks, alpha 1
		{Lazy: LazyOn}, // exercises the lazy stamped walk loop
		{Count: 5},     // sparse agents: fused regime hits late per lane
	}
	const seed, k = 99, 7
	for _, procs := range []int{1, 8} {
		for _, g := range graphs {
			for oi, o := range opts {
				run := func(fuse bool) []Result {
					return atGOMAXPROCS(t, procs, func() []Result {
						rngs := make([]*xrand.RNG, k)
						for i := range rngs {
							rngs[i] = xrand.New(xrand.TrialSeed(seed, i))
						}
						bp, err := NewBatchedVisitExchange(g, 0, rngs, o)
						if err != nil {
							t.Fatal(err)
						}
						bp.fuseMark = fuse
						out := make([]Result, k)
						driveBatch(g, bp, DefaultMaxRounds(g), out, nil, 0)
						return out
					})
				}
				fused, unfused := run(true), run(false)
				for tr := range fused {
					if !reflect.DeepEqual(fused[tr], unfused[tr]) {
						t.Errorf("procs=%d %s opts[%d] trial %d: fused and unfused batched results differ:\nfused   %+v\nunfused %+v",
							procs, g.Name(), oi, tr, fused[tr], unfused[tr])
					}
					if !fused[tr].Completed {
						t.Errorf("procs=%d %s opts[%d] trial %d: run did not complete", procs, g.Name(), oi, tr)
					}
				}
			}
		}
	}
}
