package core

import (
	"fmt"

	"rumor/internal/agents"
	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// LazyMode selects the walk laziness policy for agent protocols.
type LazyMode int

const (
	// LazyAuto uses lazy walks exactly when the graph is bipartite — the
	// paper's convention, which guarantees meet-exchange terminates.
	LazyAuto LazyMode = iota
	// LazyOff always uses simple (non-lazy) walks.
	LazyOff
	// LazyOn always uses lazy walks (stay put with probability 1/2).
	LazyOn
)

// AgentOptions configures the agent system shared by visit-exchange and
// meet-exchange.
type AgentOptions struct {
	// Alpha is the agent density: |A| = max(1, round(Alpha·n)). Ignored if
	// Count > 0. The paper's default regime is Alpha = Θ(1); this
	// repository uses Alpha = 1 unless stated otherwise.
	Alpha float64
	// Count overrides Alpha with an explicit number of agents.
	Count int
	// Lazy selects the laziness policy. Visit-exchange defaults to simple
	// walks; meet-exchange resolves LazyAuto to lazy on bipartite graphs.
	Lazy LazyMode
	// Placement selects the initial agent distribution (stationary by
	// default, or one agent per vertex, per the remark after Lemma 11).
	Placement agents.Placement
	// Fixed holds start vertices for agents.PlaceFixed.
	Fixed []graph.Vertex
	// ChurnRate enables the dynamic-agents extension (Section 9): each
	// round, each agent is replaced by a fresh uninformed agent with this
	// probability.
	ChurnRate float64
	// Observer, if non-nil, receives every agent traversal.
	Observer MoveObserver
}

func (o AgentOptions) agentCount(n int) int {
	if o.Count > 0 {
		return o.Count
	}
	alpha := o.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	return AgentCount(n, alpha)
}

func (o AgentOptions) walkConfig(g *graph.Graph, forceLazyAuto bool) agents.Config {
	lazy := false
	switch o.Lazy {
	case LazyOn:
		lazy = true
	case LazyAuto:
		if forceLazyAuto {
			lazy = graph.IsBipartite(g)
		}
	}
	return agents.Config{
		Count:     o.agentCount(g.N()),
		Lazy:      lazy,
		Placement: o.Placement,
		Fixed:     o.Fixed,
		ChurnRate: o.ChurnRate,
	}
}

// VisitExchange is the agent-based protocol where both vertices and agents
// store the rumor (Section 3): in round zero the source vertex and all
// agents on it become informed; in each subsequent round all agents take
// one random-walk step, every agent informed in a previous round informs
// the vertex it visits, and every agent standing on a vertex informed in a
// previous or the current round becomes informed.
type VisitExchange struct {
	g     *graph.Graph
	src   graph.Vertex
	walks *agents.Walks
	opts  AgentOptions

	informedV  *bitset.Set // vertices
	informedA  *bitset.Set // agents
	countV     int
	newlyA     []int
	round      int
	messages   int64
	allAgentsA bool
}

var _ Process = (*VisitExchange)(nil)

// NewVisitExchange builds a visit-exchange process. Visit-exchange does not
// require lazy walks (vertices hold the rumor across parity classes), so
// LazyAuto resolves to simple walks.
func NewVisitExchange(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, opts AgentOptions) (*VisitExchange, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	w, err := agents.New(g, opts.walkConfig(g, false), rng)
	if err != nil {
		return nil, fmt.Errorf("visit-exchange: %w", err)
	}
	v := &VisitExchange{
		g:         g,
		src:       s,
		walks:     w,
		opts:      opts,
		informedV: bitset.New(g.N()),
		informedA: bitset.New(w.N()),
		countV:    1,
	}
	// Round zero: the source vertex and every agent standing on it.
	v.informedV.Set(int(s))
	for i := 0; i < w.N(); i++ {
		if w.Pos(i) == s {
			v.informedA.Set(i)
		}
	}
	v.allAgentsA = v.informedA.Full()
	return v, nil
}

// Name implements Process.
func (v *VisitExchange) Name() string { return "visit-exchange" }

// Round implements Process.
func (v *VisitExchange) Round() int { return v.round }

// Done implements Process. Broadcast time is the round when every vertex is
// informed (the paper notes all agents are informed by then as well).
func (v *VisitExchange) Done() bool { return v.countV == v.g.N() }

// InformedCount implements Process (vertices).
func (v *VisitExchange) InformedCount() int { return v.countV }

// InformedAgents returns the number of informed agents.
func (v *VisitExchange) InformedAgents() int { return v.informedA.Count() }

// AllAgentsInformed implements the agentTracker interface.
func (v *VisitExchange) AllAgentsInformed() bool { return v.allAgentsA }

// Messages implements Process: one token message per agent step.
func (v *VisitExchange) Messages() int64 { return v.messages }

// Source implements the sourced interface.
func (v *VisitExchange) Source() graph.Vertex { return v.src }

// AgentCount returns |A|.
func (v *VisitExchange) AgentCount() int { return v.walks.N() }

// Step implements Process.
func (v *VisitExchange) Step() {
	v.round++
	v.walks.Step(nil)
	v.messages += int64(v.walks.N())
	// Churned agents are fresh and uninformed.
	for _, id := range v.walks.Respawned() {
		v.informedA.Clear(id)
	}
	if v.opts.Observer != nil {
		for i := 0; i < v.walks.N(); i++ {
			v.opts.Observer(v.round, v.walks.Prev(i), v.walks.Pos(i))
		}
	}
	// Pass 1: agents informed in a previous round inform their vertex.
	na := v.walks.N()
	for i := 0; i < na; i++ {
		if v.informedA.Test(i) {
			pos := v.walks.Pos(i)
			if !v.informedV.Test(int(pos)) {
				v.informedV.Set(int(pos))
				v.countV++
			}
		}
	}
	// Pass 2: agents on a vertex informed in a previous or this round
	// become informed (effective from the next round).
	v.newlyA = v.newlyA[:0]
	for i := 0; i < na; i++ {
		if !v.informedA.Test(i) && v.informedV.Test(int(v.walks.Pos(i))) {
			v.newlyA = append(v.newlyA, i)
		}
	}
	for _, i := range v.newlyA {
		v.informedA.Set(i)
	}
	v.allAgentsA = v.informedA.Full()
}
