package core

import (
	"fmt"
	"math/bits"

	"rumor/internal/agents"
	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// LazyMode selects the walk laziness policy for agent protocols.
type LazyMode int

const (
	// LazyAuto uses lazy walks exactly when the graph is bipartite — the
	// paper's convention, which guarantees meet-exchange terminates.
	LazyAuto LazyMode = iota
	// LazyOff always uses simple (non-lazy) walks.
	LazyOff
	// LazyOn always uses lazy walks (stay put with probability 1/2).
	LazyOn
)

// AgentOptions configures the agent system shared by visit-exchange and
// meet-exchange.
type AgentOptions struct {
	// Alpha is the agent density: |A| = max(1, round(Alpha·n)). Ignored if
	// Count > 0. The paper's default regime is Alpha = Θ(1); this
	// repository uses Alpha = 1 unless stated otherwise.
	Alpha float64
	// Count overrides Alpha with an explicit number of agents.
	Count int
	// Lazy selects the laziness policy. Visit-exchange defaults to simple
	// walks; meet-exchange resolves LazyAuto to lazy on bipartite graphs.
	Lazy LazyMode
	// Placement selects the initial agent distribution (stationary by
	// default, or one agent per vertex, per the remark after Lemma 11).
	Placement agents.Placement
	// Fixed holds start vertices for agents.PlaceFixed.
	Fixed []graph.Vertex
	// ChurnRate enables the dynamic-agents extension (Section 9): each
	// round, each agent is replaced by a fresh uninformed agent with this
	// probability.
	ChurnRate float64
	// Observer, if non-nil, receives every agent traversal.
	Observer MoveObserver
}

func (o AgentOptions) agentCount(n int) int {
	if o.Count > 0 {
		return o.Count
	}
	alpha := o.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	return AgentCount(n, alpha)
}

func (o AgentOptions) walkConfig(g *graph.Graph, forceLazyAuto bool) agents.Config {
	lazy := false
	switch o.Lazy {
	case LazyOn:
		lazy = true
	case LazyAuto:
		if forceLazyAuto {
			lazy = graph.IsBipartite(g)
		}
	}
	return agents.Config{
		Count:     o.agentCount(g.N()),
		Lazy:      lazy,
		Placement: o.Placement,
		Fixed:     o.Fixed,
		ChurnRate: o.ChurnRate,
	}
}

// VisitExchange is the agent-based protocol where both vertices and agents
// store the rumor (Section 3): in round zero the source vertex and all
// agents on it become informed; in each subsequent round all agents take
// one random-walk step, every agent informed in a previous round informs
// the vertex it visits, and every agent standing on a vertex informed in a
// previous or the current round becomes informed.
//
// Rounds run on the deterministic parallel engine: the walk step draws
// per-(agent, round) streams (see package agents), and the two informing
// passes scan shards of the agent bitset concurrently, committing their
// finds in ascending shard — hence agent-id — order. Both informing passes
// have pure set semantics, so the committed state is independent of scan
// order; results are bit-identical for a given seed at any GOMAXPROCS.
type VisitExchange struct {
	g     *graph.Graph
	src   graph.Vertex
	walks *agents.Walks
	opts  AgentOptions

	informedV *bitset.Set // vertices
	informedA *bitset.Set // agents
	countV    int
	countA    int

	// occInf stamps the vertices informed agents stand on this round;
	// uninfV lists the still-uninformed vertices (swap-removed as they
	// inform), so pass 1 costs one store per informed agent plus one load
	// per uninformed vertex instead of a bitset probe per agent.
	occInf *epochMark
	uninfV []graph.Vertex

	// Reusable shard machinery: bound once so steady-state stepping
	// allocates nothing.
	shardA   shardBufs[int32]
	bufsA    [][]int32
	procs    int
	markFn   func(shard, lo, hi int)
	pass2Fn  func(shard, lo, hi int)
	round    int
	messages int64

	// fuseMark enables folding pass 1's occupancy marking into the walk
	// step once every agent is informed (see Step). On by default; the
	// equivalence test clears it to pin the fused path against the
	// separate-pass path.
	fuseMark bool
}

var _ Process = (*VisitExchange)(nil)

// NewVisitExchange builds a visit-exchange process. Visit-exchange does not
// require lazy walks (vertices hold the rumor across parity classes), so
// LazyAuto resolves to simple walks.
func NewVisitExchange(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, opts AgentOptions) (*VisitExchange, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	w, err := agents.New(g, opts.walkConfig(g, false), rng)
	if err != nil {
		return nil, fmt.Errorf("visit-exchange: %w", err)
	}
	v := &VisitExchange{
		g:         g,
		src:       s,
		walks:     w,
		opts:      opts,
		informedV: bitset.New(g.N()),
		informedA: bitset.New(w.N()),
		countV:    1,
		occInf:    newEpochMark(g.N()),
		uninfV:    make([]graph.Vertex, 0, g.N()-1),
		fuseMark:  true,
	}
	v.procs = par.Procs()
	v.markFn = v.markShard
	v.pass2Fn = v.pass2Shard
	// Round zero: the source vertex and every agent standing on it.
	v.informedV.Set(int(s))
	for u := 0; u < g.N(); u++ {
		if graph.Vertex(u) != s {
			v.uninfV = append(v.uninfV, graph.Vertex(u))
		}
	}
	for i := 0; i < w.N(); i++ {
		if w.Pos(i) == s {
			v.informedA.Set(i)
			v.countA++
		}
	}
	return v, nil
}

// Name implements Process.
func (v *VisitExchange) Name() string { return "visit-exchange" }

// Round implements Process.
func (v *VisitExchange) Round() int { return v.round }

// Done implements Process. Broadcast time is the round when every vertex is
// informed (the paper notes all agents are informed by then as well).
func (v *VisitExchange) Done() bool { return v.countV == v.g.N() }

// InformedCount implements Process (vertices).
func (v *VisitExchange) InformedCount() int { return v.countV }

// InformedAgents returns the number of informed agents.
func (v *VisitExchange) InformedAgents() int { return v.countA }

// AllAgentsInformed implements the agentTracker interface.
func (v *VisitExchange) AllAgentsInformed() bool { return v.countA == v.walks.N() }

// Messages implements Process: one token message per agent step.
func (v *VisitExchange) Messages() int64 { return v.messages }

// Source implements the sourced interface.
func (v *VisitExchange) Source() graph.Vertex { return v.src }

// AgentCount returns |A|.
func (v *VisitExchange) AgentCount() int { return v.walks.N() }

// Step implements Process.
func (v *VisitExchange) Step() {
	v.round++
	na := v.walks.N()
	// Once every agent is informed — a permanent state without churn, and
	// the common regime through the Ω(n) broadcast tails of Fig. 1c/1d —
	// pass 1's "stamp every informed agent's position" is exactly "stamp
	// every agent's destination", which the walk step can do in the same
	// pass that writes positions. This saves the extra sweep over all
	// agent positions every remaining round; draws are untouched, so
	// results are bit-identical to the unfused path (pinned by
	// TestVisitExchangeFusedMarkEquivalence).
	fused := v.fuseMark && v.opts.ChurnRate == 0 && v.countA == na && v.countV < v.g.N()
	if fused {
		v.occInf.next()
		v.walks.StepStamped(v.occInf.stamp, v.occInf.epoch)
	} else {
		v.walks.Step(nil)
	}
	v.messages += int64(na)
	// Churned agents are fresh and uninformed.
	for _, id := range v.walks.Respawned() {
		if v.informedA.Test(id) {
			v.informedA.Clear(id)
			v.countA--
		}
	}
	if v.opts.Observer != nil {
		for i := 0; i < na; i++ {
			v.opts.Observer(v.round, v.walks.Prev(i), v.walks.Pos(i))
		}
	}
	words := len(v.informedA.Words())
	shards := shardsFor(words, wordGrain, v.procs)

	// Pass 1: agents informed in a previous round inform their vertex —
	// stamp every informed agent's position, then sweep the uninformed
	// vertex list for stamped entries. Skipped when it cannot change
	// anything (no informed agents, or every vertex already informed).
	// On the fused path the stamping already happened inside the walk
	// step; only the sweep remains.
	if v.countA > 0 && v.countV < v.g.N() {
		if !fused {
			v.occInf.next()
			if v.countA == na {
				// Every agent is informed (the common state through the
				// Ω(n) tails of Fig. 1c/1d): stamp positions directly,
				// skipping the informedA word decode.
				v.markAllShard(0, 0, na)
			} else if shards == 1 {
				v.markShardSerial(0, words)
			} else {
				par.DoN(shards, words, v.markFn)
			}
		}
		list := v.uninfV
		for k := 0; k < len(list); {
			p := list[k]
			if v.occInf.marked(p) {
				v.informedV.Set(int(p))
				v.countV++
				list[k] = list[len(list)-1]
				list = list[:len(list)-1]
				continue // re-examine the swapped-in entry
			}
			k++
		}
		v.uninfV = list
	}

	// Pass 2: agents on a vertex informed in a previous or this round
	// become informed (effective from the next round). Skipped once every
	// agent is informed.
	if v.countA < na {
		v.bufsA = v.shardA.acquire(shards)
		if shards == 1 {
			v.pass2Shard(0, 0, words)
		} else {
			par.DoN(shards, words, v.pass2Fn)
		}
		for _, buf := range v.bufsA {
			for _, i := range buf {
				v.informedA.Set(int(i))
				v.countA++
			}
		}
	}
}

// markAllShard stamps the current vertex of every agent in [lo, hi),
// valid exactly when all agents are informed.
func (v *VisitExchange) markAllShard(_, lo, hi int) {
	pos := v.walks.Positions()
	stamp, epoch := v.occInf.stamp, v.occInf.epoch
	for _, p := range pos[lo:hi] {
		stamp[p] = epoch
	}
}

// markShard stamps the current vertex of every informed agent in bitset
// words [lo, hi). Stores are atomic — a full fence on amd64 — so it is
// bound only to the sharded path, where concurrent shards may stamp the
// same vertex; the sweep in Step runs after the barrier.
func (v *VisitExchange) markShard(_, lo, hi int) {
	aw := v.informedA.Words()
	pos := v.walks.Positions()
	for wi := lo; wi < hi; wi++ {
		for wd := aw[wi]; wd != 0; wd &= wd - 1 {
			v.occInf.markAtomic(pos[wi<<6+bits.TrailingZeros64(wd)])
		}
	}
}

// markShardSerial is markShard with plain stores, for the single-shard
// path where no other goroutine touches the stamps.
func (v *VisitExchange) markShardSerial(lo, hi int) {
	aw := v.informedA.Words()
	pos := v.walks.Positions()
	for wi := lo; wi < hi; wi++ {
		for wd := aw[wi]; wd != 0; wd &= wd - 1 {
			v.occInf.mark(pos[wi<<6+bits.TrailingZeros64(wd)])
		}
	}
}

// pass2Shard scans uninformed agents in bitset words [lo, hi) and collects
// those standing on an informed vertex.
func (v *VisitExchange) pass2Shard(shard, lo, hi int) {
	aw := v.informedA.Words()
	pos := v.walks.Positions()
	na := v.walks.N()
	buf := v.bufsA[shard]
	for wi := lo; wi < hi; wi++ {
		inv := ^aw[wi]
		if rem := na - wi<<6; rem < 64 {
			inv &= 1<<uint(rem) - 1 // mask ghost bits past the last agent
		}
		for ; inv != 0; inv &= inv - 1 {
			i := wi<<6 + bits.TrailingZeros64(inv)
			if v.informedV.Test(int(pos[i])) {
				buf = append(buf, int32(i))
			}
		}
	}
	v.bufsA[shard] = buf
}
