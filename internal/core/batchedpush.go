package core

import (
	"fmt"

	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// pushLane is one trial's push state: the per-trial half of the serial
// Push process (informed set, frontier, boundary bookkeeping, messages),
// with the graph, sampler, and draw machinery shared across the bundle.
type pushLane struct {
	informed *bitset.Set
	frontier []graph.Vertex // all informed vertices, in discovery order
	boundary bool
	stagnant int
	bnd      pushBoundary
	targets  []graph.Vertex // per-sender draw scratch; -1 marks a failed send
	drawn    *bitset.Set    // word-commit scratch: this round's draw targets
	messages int64
}

// BatchedPush runs K push trials in fused lockstep. Lanes step
// back-to-back within each round — sharded across lanes on multi-core,
// since each lane writes only its own state — so the packed walk index and
// CSR neighbor array are touched by all K frontier scans while cache-hot.
// Every lane carries the full serial boundary-sender optimization (see
// boundary.go): dense frontier sends until two stagnant rounds, then only
// informed vertices with an uninformed neighbor draw.
type BatchedPush struct {
	g       *graph.Graph
	src     graph.Vertex
	opts    PushOptions
	seeds   []uint64 // per-lane exchange stream seeds, drawn like Push.seed
	failTh  uint64
	sampler neighborSampler
	lanes   []pushLane

	activeIDs []int
	procs     int
	laneFn    func(shard, lo, hi int)
	round     int
}

var _ LaneProcess = (*BatchedPush)(nil)

// NewBatchedPush builds a K = len(rngs) lane push bundle. Lane t consumes
// rngs[t] exactly as NewPush would (one stream seed), so lane t replays
// serial trial t bit for bit. Observer configurations are rejected;
// callers fall back to serial processes on the K = 1 lane path.
func NewBatchedPush(g *graph.Graph, s graph.Vertex, rngs []*xrand.RNG, opts PushOptions) (*BatchedPush, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	if opts.FailureProb < 0 || opts.FailureProb >= 1 {
		return nil, errFailureProb(opts.FailureProb)
	}
	if opts.Observer != nil {
		return nil, fmt.Errorf("push: batched runs do not support observers")
	}
	p := &BatchedPush{
		g:       g,
		src:     s,
		opts:    opts,
		seeds:   make([]uint64, len(rngs)),
		failTh:  xrand.BernoulliThreshold(opts.FailureProb),
		sampler: newNeighborSampler(g),
		lanes:   make([]pushLane, len(rngs)),
	}
	p.procs = par.Procs()
	p.laneFn = p.laneShard
	for t, rng := range rngs {
		p.seeds[t] = rng.Uint64()
		L := &p.lanes[t]
		L.informed = bitset.New(g.N())
		L.informed.Set(int(s))
		// Pre-size the frontier for small graphs; beyond the cap, append's
		// geometric growth amortizes without pinning N slots per lane up
		// front on graphs where the run may never inform everyone.
		pre := g.N()
		if pre > 1<<20 {
			pre = 1 << 20
		}
		L.frontier = append(make([]graph.Vertex, 0, pre), s)
	}
	return p, nil
}

// Name implements LaneProcess.
func (p *BatchedPush) Name() string { return "push" }

// K implements LaneProcess.
func (p *BatchedPush) K() int { return len(p.lanes) }

// Source implements LaneProcess.
func (p *BatchedPush) Source() graph.Vertex { return p.src }

// LaneDone implements LaneProcess.
func (p *BatchedPush) LaneDone(t int) bool { return len(p.lanes[t].frontier) == p.g.N() }

// LaneInformedCount implements LaneProcess (vertices).
func (p *BatchedPush) LaneInformedCount(t int) int { return len(p.lanes[t].frontier) }

// LaneMessages implements LaneProcess.
func (p *BatchedPush) LaneMessages(t int) int64 { return p.lanes[t].messages }

// LaneAllAgentsInformed implements LaneProcess: push has no agents.
func (p *BatchedPush) LaneAllAgentsInformed(int) bool { return false }

// Step implements LaneProcess.
func (p *BatchedPush) Step(active []bool) {
	p.round++
	p.activeIDs = activeLanes(p.activeIDs[:0], active, len(p.lanes))
	runLanes(p.laneFn, len(p.activeIDs), p.procs)
}

// laneShard runs the push round for active lanes [lo, hi).
func (p *BatchedPush) laneShard(_, lo, hi int) {
	for _, t := range p.activeIDs[lo:hi] {
		p.stepLane(t)
	}
}

// stepLane applies one push round to lane t, mirroring the serial
// Push.Step structure: snapshot the sender set, draw every sender's
// neighbor choice from its (seed, vertex, round) stream, then commit in
// draw order.
func (p *BatchedPush) stepLane(t int) {
	L := &p.lanes[t]
	// Every informed vertex sends (and is counted), but only senders that
	// can change state need to draw.
	L.messages += int64(len(L.frontier))
	senders := L.frontier
	if L.boundary {
		senders = L.bnd.active
	}
	m := len(senders) // snapshot: commits below may mutate the active set
	if m == 0 {
		return
	}
	if cap(L.targets) < m {
		// Grow geometrically: sized to the sender count, not N. On giant
		// graphs a per-lane N-sized scratch (400 MB at 100M vertices)
		// would rival the CSR itself; sender counts reach N only when the
		// run is nearly done.
		c := 2 * m
		if c < 64 {
			c = 64
		}
		L.targets = make([]graph.Vertex, c)
	}
	p.drawLane(t, senders, L.targets[:m])
	before := len(L.frontier)
	n := p.g.N()
	if !L.boundary && m >= (n+63)/64 {
		// Word-parallel commit: scatter the draws into a bitset, then
		// merge 64 vertices per AND-NOT (bitset.CommitNew). With at least
		// one sender per word the scatter+reset overhead is covered, and
		// dense rounds — everyone informed, almost every draw redundant —
		// collapse to one load-compare per word instead of 64 tests.
		// Newly informed vertices join the frontier in vertex order rather
		// than draw order; draws are keyed by vertex id, never by frontier
		// position, so results are unchanged (the serial engine keeps the
		// draw-order commit, and the equivalence suite pins the two).
		if L.drawn == nil {
			L.drawn = bitset.New(n)
		}
		for _, v := range L.targets[:m] {
			if v >= 0 {
				L.drawn.Set(int(v))
			}
		}
		L.informed.CommitNew(L.drawn, func(i int) {
			L.frontier = append(L.frontier, graph.Vertex(i))
		})
		L.drawn.Reset()
	} else {
		// Commit in draw order; the informed test makes duplicates commit
		// once. Boundary mode stays here: onInformed mutates the active
		// list the next round snapshots, and boundary sender sets are
		// small by construction.
		for _, v := range L.targets[:m] {
			if v >= 0 && !L.informed.Test(int(v)) {
				L.informed.Set(int(v))
				L.frontier = append(L.frontier, v)
				if L.boundary {
					L.bnd.onInformed(p.g, v)
				}
			}
		}
	}
	if !L.boundary {
		if len(L.frontier) != before {
			L.stagnant = 0
		} else if len(L.frontier) != p.g.N() {
			if L.stagnant++; L.stagnant >= boundaryStagnantRounds {
				L.bnd.build(p.g, L.frontier)
				L.boundary = true
			}
		}
	}
}

// drawLane draws lane t's neighbor choice (and failure coin) for each
// sender into targets, with exactly the serial Push.drawShard draw
// discipline.
func (p *BatchedPush) drawLane(t int, senders, targets []graph.Vertex) {
	round := uint64(p.round)
	seed := p.seeds[t]
	idx, nbrs := p.sampler.idx, p.sampler.nbrs
	if idx == nil || p.failTh != 0 {
		for k, u := range senders {
			s := xrand.NewStream(seed, uint64(u), round)
			v := p.sampler.sample(u, &s)
			if p.failTh != 0 && s.Uint64() < p.failTh {
				v = -1 // transmission lost
			}
			targets[k] = v
		}
		return
	}
	// Reliable-links fast path: one draw per sender, sampling inlined.
	for k, u := range senders {
		word := idx[u]
		if graph.WalkDegreeOne(word) {
			targets[k] = graph.WalkOnlyNeighbor(word, nbrs)
		} else {
			targets[k] = graph.WalkTarget(word, xrand.Mix3(seed, uint64(u), round), nbrs)
		}
	}
}
