package core

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// The batched/serial equivalence contract: for every agent protocol, seed,
// and batch width K, RunManyBatched must return []Result bit-identical to
// RunMany — Rounds, Completed, Messages, AllAgentsRound, and the full
// History per trial — at any GOMAXPROCS. These tests pin K in {1, 2, 7}
// (one lane, partial bundle, prime width straddling nothing) at GOMAXPROCS
// 1 and 8.

type batchedProto struct {
	name    string
	serial  Factory
	batched BatchedFactory
}

func batchedProtos(g *graph.Graph, s graph.Vertex) []batchedProto {
	return []batchedProto{
		{
			name: "visit-exchange",
			serial: func(rng *xrand.RNG) (Process, error) {
				return NewVisitExchange(g, s, rng, AgentOptions{})
			},
			batched: func(rngs []*xrand.RNG) (BatchedProcess, error) {
				return NewBatchedVisitExchange(g, s, rngs, AgentOptions{})
			},
		},
		{
			name: "meet-exchange",
			serial: func(rng *xrand.RNG) (Process, error) {
				return NewMeetExchange(g, s, rng, AgentOptions{})
			},
			batched: func(rngs []*xrand.RNG) (BatchedProcess, error) {
				return NewBatchedMeetExchange(g, s, rngs, AgentOptions{})
			},
		},
		{
			name: "meet-exchange-lazy",
			serial: func(rng *xrand.RNG) (Process, error) {
				return NewMeetExchange(g, s, rng, AgentOptions{Lazy: LazyOn})
			},
			batched: func(rngs []*xrand.RNG) (BatchedProcess, error) {
				return NewBatchedMeetExchange(g, s, rngs, AgentOptions{Lazy: LazyOn})
			},
		},
	}
}

func atGOMAXPROCS[T any](t *testing.T, procs int, f func() T) T {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	par.Refresh()
	defer func() {
		runtime.GOMAXPROCS(prev)
		par.Refresh()
	}()
	return f()
}

// TestBatchedEquivalence: batched results equal serial RunMany results for
// K trials, per trial, on mixed-degree (star: branchless select loops,
// also bipartite so plain meetx goes lazy) and uniform-degree (hypercube)
// graphs, at GOMAXPROCS 1 and 8.
func TestBatchedEquivalence(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Hypercube(9), // n = 512, uniform degree 9 (multiply-shift class)
		graph.Star(601),    // extreme degree mix, bipartite
	}
	const seed = 1313
	for _, g := range graphs {
		for _, pc := range batchedProtos(g, 0) {
			for _, k := range []int{1, 2, 7} {
				serial, err := RunMany(g, pc.serial, k, 0, seed)
				if err != nil {
					t.Fatal(err)
				}
				for _, procs := range []int{1, 8} {
					batched := atGOMAXPROCS(t, procs, func() []Result {
						res, err := RunManyBatched(g, pc.batched, k, 0, seed)
						if err != nil {
							t.Fatal(err)
						}
						return res
					})
					for tr := range serial {
						if !reflect.DeepEqual(serial[tr], batched[tr]) {
							t.Errorf("%s on %s K=%d GOMAXPROCS=%d trial %d: batched diverges\nserial:  rounds %d messages %d allAgents %d hist %d\nbatched: rounds %d messages %d allAgents %d hist %d",
								pc.name, g.Name(), k, procs, tr,
								serial[tr].Rounds, serial[tr].Messages, serial[tr].AllAgentsRound, len(serial[tr].History),
								batched[tr].Rounds, batched[tr].Messages, batched[tr].AllAgentsRound, len(batched[tr].History))
						}
					}
				}
			}
		}
	}
}

// TestBatchedEquivalenceMaxRounds: a lane cut off at maxRounds must report
// the same truncated Result (Completed false, Rounds == maxRounds, partial
// History) as the serial path.
func TestBatchedEquivalenceMaxRounds(t *testing.T) {
	g := graph.Star(301)
	const seed, k, maxRounds = 99, 4, 3
	serial, err := RunMany(g, func(rng *xrand.RNG) (Process, error) {
		return NewVisitExchange(g, 0, rng, AgentOptions{})
	}, k, maxRounds, seed)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := RunManyBatched(g, func(rngs []*xrand.RNG) (BatchedProcess, error) {
		return NewBatchedVisitExchange(g, 0, rngs, AgentOptions{})
	}, k, maxRounds, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, batched) {
		t.Errorf("truncated batched results diverge from serial:\nserial:  %+v\nbatched: %+v", serial, batched)
	}
}

// TestRunManyBatchedManyBundles: trials spanning several bundles (batchK=8,
// so 19 trials is 3 bundles with a partial tail) still match serial.
func TestRunManyBatchedManyBundles(t *testing.T) {
	g := graph.Hypercube(7)
	const seed, trials = 7, 19
	serial, err := RunMany(g, func(rng *xrand.RNG) (Process, error) {
		return NewVisitExchange(g, 0, rng, AgentOptions{})
	}, trials, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := RunManyBatched(g, func(rngs []*xrand.RNG) (BatchedProcess, error) {
		return NewBatchedVisitExchange(g, 0, rngs, AgentOptions{})
	}, trials, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, batched) {
		t.Error("multi-bundle batched results diverge from serial")
	}
}

// TestRunManyErrorConsistency: the single-worker and parallel paths of
// RunMany must return the same error for the same seed — the lowest-
// numbered failing trial's — and parallel workers must stop claiming
// trials once a failure is recorded.
func TestRunManyErrorConsistency(t *testing.T) {
	g := graph.Hypercube(6)
	// Deterministic, seed-dependent failure: a trial fails iff its first
	// RNG draw has its low bit set, with the draw embedded in the message
	// so matching errors imply matching trials.
	factory := func(rng *xrand.RNG) (Process, error) {
		u := rng.Uint64()
		if u&1 == 1 {
			return nil, fmt.Errorf("synthetic failure %d", u)
		}
		return NewVisitExchange(g, 0, rng, AgentOptions{})
	}
	const seed, trials = 42, 16
	run := func(procs int) error {
		return atGOMAXPROCS(t, procs, func() error {
			_, err := RunMany(g, factory, trials, 0, seed)
			return err
		})
	}
	errSerial := run(1)
	if errSerial == nil {
		t.Fatal("expected a synthetic failure; adjust the seed")
	}
	for _, procs := range []int{2, 8} {
		errPar := run(procs)
		if errPar == nil || errPar.Error() != errSerial.Error() {
			t.Errorf("GOMAXPROCS=%d error %v != single-worker error %v", procs, errPar, errSerial)
		}
	}
	if !strings.Contains(errSerial.Error(), "synthetic failure") {
		t.Errorf("unexpected error: %v", errSerial)
	}
}

// TestRunManyBatchedFactoryError: batched bundles propagate factory errors
// like RunMany does.
func TestRunManyBatchedFactoryError(t *testing.T) {
	g := graph.Hypercube(5)
	boom := fmt.Errorf("boom")
	_, err := RunManyBatched(g, func(rngs []*xrand.RNG) (BatchedProcess, error) {
		return nil, boom
	}, 20, 0, 1)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("expected factory error, got %v", err)
	}
}

// TestRunManyBatchedErrorConsistency: like RunMany, the bundle pool must
// return the same error at any worker count — the lowest-numbered failing
// bundle's — and stop claiming bundles once a failure is recorded. 40
// trials span 5 bundles so the parallel path genuinely races.
func TestRunManyBatchedErrorConsistency(t *testing.T) {
	g := graph.Hypercube(6)
	// Deterministic, seed-dependent failure keyed off the bundle's first
	// trial RNG, with the draw embedded so matching errors imply matching
	// bundles.
	factory := func(rngs []*xrand.RNG) (BatchedProcess, error) {
		u := rngs[0].Uint64()
		if u&1 == 1 {
			return nil, fmt.Errorf("synthetic bundle failure %d", u)
		}
		return NewBatchedVisitExchange(g, 0, rngs, AgentOptions{})
	}
	const seed, trials = 42, 40
	run := func(procs int) error {
		return atGOMAXPROCS(t, procs, func() error {
			_, err := RunManyBatched(g, factory, trials, 0, seed)
			return err
		})
	}
	errSerial := run(1)
	if errSerial == nil || !strings.Contains(errSerial.Error(), "synthetic bundle failure") {
		t.Fatalf("expected a synthetic failure, got %v; adjust the seed", errSerial)
	}
	for _, procs := range []int{2, 8} {
		if errPar := run(procs); errPar == nil || errPar.Error() != errSerial.Error() {
			t.Errorf("GOMAXPROCS=%d error %v != single-worker error %v", procs, errPar, errSerial)
		}
	}
}
