package core

import (
	"fmt"
	"math/bits"

	"rumor/internal/agents"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// Rumor describes one rumor in a multi-rumor visit-exchange run: where and
// when it is injected.
type Rumor struct {
	Source graph.Vertex
	// Round is the injection round (0 = present from the start).
	Round int
}

// MultiRumorResult reports a multi-rumor run.
type MultiRumorResult struct {
	// BroadcastRounds[r] is the number of rounds from rumor r's injection
	// until every vertex holds it (-1 if the run was cut off first).
	BroadcastRounds []int
	// Rounds is the total rounds simulated.
	Rounds int
	// Completed reports whether every rumor reached every vertex.
	Completed bool
	// Messages counts agent steps (the token traffic is shared by all
	// rumors — the point of the paper's multi-rumor motivation).
	Messages int64
}

// MultiRumorVisitExchange runs visit-exchange with up to 64 rumors sharing
// one agent system, realizing the setting that motivates the paper's
// stationary-start assumption (Section 3): "several pieces of information
// are generated frequently and distributed in parallel over time by the
// same set of agents, which execute perpetual independent random walks."
//
// Per-rumor semantics are exactly those of visit-exchange; rumors ride the
// same walks, so the token traffic stays |A| messages per round no matter
// how many rumors are in flight.
type MultiRumorVisitExchange struct {
	g      *graph.Graph
	walks  *agents.Walks
	rumors []Rumor

	vMask []uint64 // rumor bits held by each vertex
	aMask []uint64 // rumor bits held by each agent (as of previous rounds)
	vCnt  []int    // vertices holding rumor r
	done  []int    // broadcast round per rumor, -1 until complete
	round int
	msgs  int64
}

// NewMultiRumorVisitExchange builds a multi-rumor run. At most 64 rumors;
// injection rounds must be non-negative.
func NewMultiRumorVisitExchange(g *graph.Graph, rumors []Rumor, rng *xrand.RNG, opts AgentOptions) (*MultiRumorVisitExchange, error) {
	if len(rumors) == 0 || len(rumors) > 64 {
		return nil, fmt.Errorf("core: need 1..64 rumors, got %d", len(rumors))
	}
	if g.N() < 2 || g.M() == 0 {
		return nil, fmt.Errorf("core: graph too small")
	}
	for i, r := range rumors {
		if r.Source < 0 || int(r.Source) >= g.N() {
			return nil, fmt.Errorf("core: rumor %d source %d out of range", i, r.Source)
		}
		if r.Round < 0 {
			return nil, fmt.Errorf("core: rumor %d has negative injection round", i)
		}
	}
	w, err := agents.New(g, opts.walkConfig(g, false), rng)
	if err != nil {
		return nil, fmt.Errorf("multi-rumor: %w", err)
	}
	m := &MultiRumorVisitExchange{
		g:      g,
		walks:  w,
		rumors: append([]Rumor(nil), rumors...),
		vMask:  make([]uint64, g.N()),
		aMask:  make([]uint64, w.N()),
		vCnt:   make([]int, len(rumors)),
		done:   make([]int, len(rumors)),
	}
	for i := range m.done {
		m.done[i] = -1
	}
	m.inject(0)
	return m, nil
}

// inject places all rumors scheduled for the given round: the source vertex
// gets the rumor, and so do agents standing on it (round-zero semantics of
// Section 3, applied at the injection round).
func (m *MultiRumorVisitExchange) inject(round int) {
	for r, ru := range m.rumors {
		if ru.Round != round {
			continue
		}
		bit := uint64(1) << uint(r)
		if m.vMask[ru.Source]&bit == 0 {
			m.vMask[ru.Source] |= bit
			m.vCnt[r]++
		}
		for i := 0; i < m.walks.N(); i++ {
			if m.walks.Pos(i) == ru.Source {
				m.aMask[i] |= bit
			}
		}
		m.checkDone(r, round)
	}
}

func (m *MultiRumorVisitExchange) checkDone(r, round int) {
	if m.done[r] < 0 && m.vCnt[r] == m.g.N() {
		m.done[r] = round - m.rumors[r].Round
	}
}

// Round returns the rounds simulated so far.
func (m *MultiRumorVisitExchange) Round() int { return m.round }

// Done reports whether every rumor has reached every vertex.
func (m *MultiRumorVisitExchange) Done() bool {
	for _, d := range m.done {
		if d < 0 {
			return false
		}
	}
	return true
}

// VertexCount returns how many vertices hold rumor r.
func (m *MultiRumorVisitExchange) VertexCount(r int) int { return m.vCnt[r] }

// Step advances one synchronous round with per-rumor visit-exchange
// semantics: a vertex learns the rumors its visitors held before this
// round; an agent then learns everything its current vertex holds
// (including rumors delivered this round by other agents).
func (m *MultiRumorVisitExchange) Step() {
	m.round++
	m.walks.Step(nil)
	m.msgs += int64(m.walks.N())
	for _, id := range m.walks.Respawned() {
		m.aMask[id] = 0
	}
	na := m.walks.N()
	// Pass 1: agents deposit previously held rumors.
	for i := 0; i < na; i++ {
		if carry := m.aMask[i]; carry != 0 {
			v := m.walks.Pos(i)
			if newBits := carry &^ m.vMask[v]; newBits != 0 {
				m.vMask[v] |= newBits
				for b := newBits; b != 0; b &= b - 1 {
					r := bits.TrailingZeros64(b)
					m.vCnt[r]++
					m.checkDone(r, m.round)
				}
			}
		}
	}
	// Injections scheduled for this round happen after deposits, matching
	// the single-rumor round-zero semantics.
	m.inject(m.round)
	// Pass 2: agents pick up everything their vertex now holds.
	for i := 0; i < na; i++ {
		m.aMask[i] |= m.vMask[m.walks.Pos(i)]
	}
}

// RunMultiRumor drives the process until every rumor is fully broadcast or
// maxRounds (<= 0 means the DefaultMaxRounds bound).
func RunMultiRumor(g *graph.Graph, rumors []Rumor, rng *xrand.RNG, opts AgentOptions, maxRounds int) (MultiRumorResult, error) {
	m, err := NewMultiRumorVisitExchange(g, rumors, rng, opts)
	if err != nil {
		return MultiRumorResult{}, err
	}
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(g)
		// Late injections need extra budget.
		last := 0
		for _, r := range rumors {
			if r.Round > last {
				last = r.Round
			}
		}
		maxRounds += last
	}
	for !m.Done() && m.round < maxRounds {
		m.Step()
	}
	return MultiRumorResult{
		BroadcastRounds: append([]int(nil), m.done...),
		Rounds:          m.round,
		Completed:       m.Done(),
		Messages:        m.msgs,
	}, nil
}
