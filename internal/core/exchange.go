package core

import (
	"math/bits"

	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// Exchange-phase helpers shared by push-pull and the hybrid, serial and
// batched. Each is a plain function over concrete state (no per-unit
// indirection lands in a hot loop), so the four engines that perform an
// exchange round share one copy of the collect, commit, and active-draw
// semantics — a fix to any of them lands everywhere at once. The batched
// agent-pickup pass shared by the visit-exchange and hybrid bundles lives
// here too.

// collectExchangeDense appends to pending the transfers of a dense
// exchange round: for each vertex u with a drawn partner targets[u] >= 0,
// if exactly one endpoint is informed, the other becomes pending.
// Evaluated against the pre-commit informed set; targets must hold one
// slot per vertex.
func collectExchangeDense(informed *bitset.Set, targets []graph.Vertex, pending []graph.Vertex) []graph.Vertex {
	for u, v := range targets {
		if v < 0 {
			continue
		}
		iu, iv := informed.Test(u), informed.Test(int(v))
		switch {
		case iu && !iv:
			pending = append(pending, v)
		case !iu && iv:
			pending = append(pending, graph.Vertex(u))
		}
	}
	return pending
}

// collectExchangeDenseWords is collectExchangeDense with the sender-side
// informed test read word-at-a-time: one 64-bit load answers "is u
// informed" for a whole vertex block, and the two uniform blocks — all 64
// senders informed (the common case late in a run) or none (early) —
// drop to a single-branch inner loop. The pending sequence it produces is
// exactly collectExchangeDense's (same iteration order, same pre-commit
// informed reads), so the serial engines that stay on the scalar collect
// cross-validate this path through the serial-vs-batched equivalence
// suites. The batched dense engines (push-pull, hybrid) call this.
func collectExchangeDenseWords(informed *bitset.Set, targets []graph.Vertex, pending []graph.Vertex) []graph.Vertex {
	words := informed.Words()
	n := len(targets)
	for base := 0; base < n; base += 64 {
		w := words[base>>6]
		hi := base + 64
		if hi > n {
			hi = n
		}
		switch w {
		case ^uint64(0):
			// Every sender in the block is informed: only the push
			// direction can transfer. (Ghost bits past Len() are kept
			// clear, so a tail block never takes this arm spuriously.)
			for u := base; u < hi; u++ {
				if v := targets[u]; v >= 0 && !informed.Test(int(v)) {
					pending = append(pending, v)
				}
			}
		case 0:
			// No sender in the block is informed: only the pull direction.
			for u := base; u < hi; u++ {
				if v := targets[u]; v >= 0 && informed.Test(int(v)) {
					pending = append(pending, graph.Vertex(u))
				}
			}
		default:
			for u := base; u < hi; u++ {
				v := targets[u]
				if v < 0 {
					continue
				}
				iu := w>>(uint(u)&63)&1 != 0
				iv := informed.Test(int(v))
				switch {
				case iu && !iv:
					pending = append(pending, v)
				case !iu && iv:
					pending = append(pending, graph.Vertex(u))
				}
			}
		}
	}
	return pending
}

// collectExchangeActive is collectExchangeDense for boundary mode, where
// slot k's sender is srcs[k] (the active list mutates during the commit,
// so the draw phase recorded it).
func collectExchangeActive(informed *bitset.Set, srcs, targets []graph.Vertex, pending []graph.Vertex) []graph.Vertex {
	for k, v := range targets {
		if v < 0 {
			continue
		}
		u := srcs[k]
		iu, iv := informed.Test(int(u)), informed.Test(int(v))
		switch {
		case iu && !iv:
			pending = append(pending, v)
		case !iu && iv:
			pending = append(pending, u)
		}
	}
	return pending
}

// commitExchange commits pending newly informed vertices (duplicates
// commit once), maintaining bnd when boundary is set, and returns the
// updated informed count.
func commitExchange(g *graph.Graph, informed *bitset.Set, bnd *exchangeBoundary, boundary bool, pending []graph.Vertex, count int) int {
	for _, v := range pending {
		if !informed.Test(int(v)) {
			informed.Set(int(v))
			count++
			if boundary {
				bnd.onInformed(g, informed, v)
			}
		}
	}
	return count
}

// drawExchangeActive draws the exchange choice (and failure coin, when
// failTh is nonzero) for each active-list sender in active, recording the
// sender in srcs alongside the target. active, srcs, and targets must be
// equal-length slices; sharded callers pass aligned subranges.
func drawExchangeActive(sampler neighborSampler, seed uint64, active, srcs, targets []graph.Vertex, round, failTh uint64) {
	for k, u := range active {
		s := xrand.NewStream(seed, uint64(u), round)
		v := sampler.sample(u, &s)
		if failTh != 0 && s.Uint64() < failTh {
			v = -1
		}
		srcs[k] = u
		targets[k] = v
	}
}

// pickupAgents informs every uninformed agent standing on an informed
// vertex, committing inline in agent-id order (the predicate reads only
// informedV and pos, so inline commits equal a collect-then-commit), and
// returns the updated informed-agent count.
func pickupAgents(informedA *bitset.Set, countA int, informedV *bitset.Set, pos []graph.Vertex) int {
	na := len(pos)
	aw := informedA.Words()
	for wi := range aw {
		inv := ^aw[wi]
		if rem := na - wi<<6; rem < 64 {
			inv &= 1<<uint(rem) - 1 // mask ghost bits past the last agent
		}
		for ; inv != 0; inv &= inv - 1 {
			i := wi<<6 + bits.TrailingZeros64(inv)
			if informedV.Test(int(pos[i])) {
				informedA.Set(i)
				countA++
			}
		}
	}
	return countA
}
