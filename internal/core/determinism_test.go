package core

import (
	"reflect"
	"runtime"
	"testing"

	"rumor/internal/agents"
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// The deterministic-parallelism contract: for a given seed, every protocol
// produces a bit-identical Result — rounds, messages, and the full History
// — no matter how many processors execute the round shards. These tests
// pin that at GOMAXPROCS 1, 2, and 8.

func detProtocols() []struct {
	name    string
	factory func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error)
} {
	return []struct {
		name    string
		factory func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error)
	}{
		{"push", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewPush(g, s, rng, PushOptions{})
		}},
		{"push-failures", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewPush(g, s, rng, PushOptions{FailureProb: 0.2})
		}},
		{"push-pull", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewPushPull(g, s, rng, PushPullOptions{})
		}},
		{"visit-exchange", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewVisitExchange(g, s, rng, AgentOptions{})
		}},
		{"visit-exchange-churn", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewVisitExchange(g, s, rng, AgentOptions{ChurnRate: 0.05})
		}},
		{"meet-exchange", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewMeetExchange(g, s, rng, AgentOptions{})
		}},
		{"meet-exchange-lazy", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewMeetExchange(g, s, rng, AgentOptions{Lazy: LazyOn})
		}},
		{"hybrid", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewHybrid(g, s, rng, AgentOptions{})
		}},
	}
}

// runAt executes one full run at the given GOMAXPROCS setting.
func runAt(t *testing.T, procs int, factory func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error), g *graph.Graph, s graph.Vertex, seed uint64) Result {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	par.Refresh()
	defer func() {
		runtime.GOMAXPROCS(prev)
		par.Refresh()
	}()
	p, err := factory(g, s, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return Run(g, p, 0)
}

// TestDeterminismAcrossGOMAXPROCS: identical seed ⇒ identical Result
// (rounds, messages, full History) at GOMAXPROCS 1, 2, and 8, for every
// protocol on graphs large enough that rounds actually shard (the walk
// grain is 2048 agents, so the hypercube exercises multi-shard stepping at
// 8 processors while the star exercises mixed degree-1/huge-degree paths).
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Hypercube(12), // n = 4096: multi-shard walks at 8 procs
		graph.Star(4097),    // extreme degrees; bipartite (lazy meetx)
	}
	for _, g := range graphs {
		for _, pc := range detProtocols() {
			for seed := uint64(1); seed <= 2; seed++ {
				base := runAt(t, 1, pc.factory, g, 0, seed)
				for _, procs := range []int{2, 8} {
					got := runAt(t, procs, pc.factory, g, 0, seed)
					if !reflect.DeepEqual(base, got) {
						t.Errorf("%s on %s seed %d: GOMAXPROCS=%d diverges from 1: rounds %d vs %d, messages %d vs %d, history equal: %v",
							pc.name, g.Name(), seed, procs,
							base.Rounds, got.Rounds, base.Messages, got.Messages,
							reflect.DeepEqual(base.History, got.History))
					}
				}
			}
		}
	}
}

// TestRunManyDeterministicAcrossGOMAXPROCS: the trial pool must hand each
// trial the same derived stream no matter how many workers execute it.
func TestRunManyDeterministicAcrossGOMAXPROCS(t *testing.T) {
	g := graph.Hypercube(8)
	run := func(procs int) []Result {
		prev := runtime.GOMAXPROCS(procs)
		par.Refresh()
		defer func() {
			runtime.GOMAXPROCS(prev)
			par.Refresh()
		}()
		res, err := RunMany(g, func(rng *xrand.RNG) (Process, error) {
			return NewVisitExchange(g, 0, rng, AgentOptions{})
		}, 6, 0, 77)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, procs := range []int{2, 8} {
		if got := run(procs); !reflect.DeepEqual(base, got) {
			t.Errorf("RunMany at GOMAXPROCS=%d diverges from 1", procs)
		}
	}
}

// TestWalksDeterministicAcrossGOMAXPROCS pins the agent layer directly:
// positions and respawn lists after many sharded steps are identical at
// any processor count, including with churn (whose respawn merge is the
// one order-sensitive output).
func TestWalksDeterministicAcrossGOMAXPROCS(t *testing.T) {
	g := graph.Hypercube(12)
	type snap struct {
		pos  []graph.Vertex
		resp []int
	}
	run := func(procs int, churn float64, lazy bool) snap {
		prev := runtime.GOMAXPROCS(procs)
		par.Refresh()
		defer func() {
			runtime.GOMAXPROCS(prev)
			par.Refresh()
		}()
		w, err := newWalksForTest(g, 5000, churn, lazy)
		if err != nil {
			t.Fatal(err)
		}
		var resp []int
		for r := 0; r < 30; r++ {
			w.Step(nil)
			resp = append(resp, w.Respawned()...)
		}
		pos := make([]graph.Vertex, w.N())
		for i := range pos {
			pos[i] = w.Pos(i)
		}
		return snap{pos: pos, resp: resp}
	}
	for _, cfg := range []struct {
		churn float64
		lazy  bool
	}{{0, false}, {0, true}, {0.1, false}} {
		base := run(1, cfg.churn, cfg.lazy)
		for _, procs := range []int{2, 8} {
			got := run(procs, cfg.churn, cfg.lazy)
			if !reflect.DeepEqual(base, got) {
				t.Errorf("walks (churn=%g lazy=%v) diverge at GOMAXPROCS=%d", cfg.churn, cfg.lazy, procs)
			}
		}
	}
}

// newWalksForTest builds a walk system with a fixed-seed RNG.
func newWalksForTest(g *graph.Graph, count int, churn float64, lazy bool) (*agents.Walks, error) {
	return agents.New(g, agents.Config{Count: count, ChurnRate: churn, Lazy: lazy}, xrand.New(1234))
}
