package core

import (
	"fmt"
	"math/bits"

	"rumor/internal/agents"
	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// hybridLane is one trial's hybrid (push-pull + visit-exchange) state.
type hybridLane struct {
	informedV *bitset.Set
	informedA *bitset.Set
	countV    int
	countA    int
	boundary  bool
	stagnant  int
	bnd       exchangeBoundary
	srcs      []graph.Vertex
	targets   []graph.Vertex
	pendingV  []graph.Vertex
	messages  int64
}

// BatchedHybrid runs K hybrid trials in fused lockstep: the exchange
// phase's dense draw is the cross-lane blocked sweep shared with
// BatchedPushPull (drawExchangeLanes), the agent phase is one fused
// BatchedWalks round for all lanes, and the informing passes (exchange
// collect, agent deposit, commit, agent pickup) are sharded across lanes
// like BatchedVisitExchange.laneShard — each lane writes only its own
// state, so the shard split is deterministic. Each lane carries the
// exchange-phase boundary optimization of the serial Hybrid (see
// boundary.go), maintained against the lane's shared informed set so
// agent deposits retire exchange senders exactly as exchange finds do.
type BatchedHybrid struct {
	g       *graph.Graph
	src     graph.Vertex
	walks   *agents.BatchedWalks
	opts    AgentOptions
	seeds   []uint64 // per-lane exchange stream seeds, drawn like Hybrid.seed
	sampler neighborSampler
	callers int64
	lanes   []hybridLane

	activeIDs    []int
	denseIDs     []int
	denseTargets [][]graph.Vertex // parallel to denseIDs
	procs        int
	denseFn      func(shard, lo, hi int)
	laneFn       func(shard, lo, hi int)
	round        int
}

var _ LaneProcess = (*BatchedHybrid)(nil)

// NewBatchedHybrid builds a K = len(rngs) lane hybrid bundle. Lane t
// consumes rngs[t] exactly as NewHybrid would — the walk-system seed, then
// the exchange stream seed — so lane t replays serial trial t bit for bit.
// Options requiring the serial path (churn, observers) are rejected;
// callers fall back to serial processes on the K = 1 lane path.
func NewBatchedHybrid(g *graph.Graph, s graph.Vertex, rngs []*xrand.RNG, opts AgentOptions) (*BatchedHybrid, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		return nil, fmt.Errorf("hybrid: batched runs do not support observers")
	}
	w, err := agents.NewBatched(g, opts.walkConfig(g, false), rngs)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	h := &BatchedHybrid{
		g:       g,
		src:     s,
		walks:   w,
		opts:    opts,
		seeds:   make([]uint64, len(rngs)),
		sampler: newNeighborSampler(g),
		callers: callerCount(g),
		lanes:   make([]hybridLane, len(rngs)),
	}
	h.procs = par.Procs()
	h.denseFn = h.drawDenseShard
	h.laneFn = h.laneShard
	for t, rng := range rngs {
		// NewBatched drew lane t's walk seed from rngs[t]; the exchange
		// seed is the next value, exactly as NewHybrid consumes them.
		h.seeds[t] = rng.Uint64()
		L := &h.lanes[t]
		L.informedV = bitset.New(g.N())
		L.informedA = bitset.New(w.N())
		L.countV = 1
		L.informedV.Set(int(s))
		for i, p := range w.Lane(t) {
			if p == s {
				L.informedA.Set(i)
				L.countA++
			}
		}
	}
	return h, nil
}

// Name implements LaneProcess.
func (h *BatchedHybrid) Name() string { return "ppull+visitx" }

// K implements LaneProcess.
func (h *BatchedHybrid) K() int { return len(h.lanes) }

// Source implements LaneProcess.
func (h *BatchedHybrid) Source() graph.Vertex { return h.src }

// LaneDone implements LaneProcess.
func (h *BatchedHybrid) LaneDone(t int) bool { return h.lanes[t].countV == h.g.N() }

// LaneInformedCount implements LaneProcess (vertices).
func (h *BatchedHybrid) LaneInformedCount(t int) int { return h.lanes[t].countV }

// LaneMessages implements LaneProcess.
func (h *BatchedHybrid) LaneMessages(t int) int64 { return h.lanes[t].messages }

// LaneAllAgentsInformed implements LaneProcess.
func (h *BatchedHybrid) LaneAllAgentsInformed(t int) bool {
	return h.lanes[t].countA == h.walks.N()
}

// Step implements LaneProcess: the fused dense exchange draw for
// non-boundary lanes, one fused walk round, then the per-lane informing
// passes. Exchange draws are counter-based pure functions of
// (seed, vertex, round), so drawing before the walk step and collecting
// after it consumes exactly the serial Hybrid's randomness.
func (h *BatchedHybrid) Step(active []bool) {
	h.round++
	h.activeIDs = activeLanes(h.activeIDs[:0], active, len(h.lanes))
	h.denseIDs = h.denseIDs[:0]
	h.denseTargets = h.denseTargets[:0]
	n := h.g.N()
	for _, t := range h.activeIDs {
		L := &h.lanes[t]
		if L.boundary {
			continue
		}
		if L.targets == nil {
			L.targets = make([]graph.Vertex, n)
		}
		h.denseIDs = append(h.denseIDs, t)
		h.denseTargets = append(h.denseTargets, L.targets)
	}
	if len(h.denseIDs) > 0 {
		if shardsFor(n, senderGrain, h.procs) == 1 {
			h.drawDenseShard(0, 0, n)
		} else {
			par.Do(n, senderGrain, h.denseFn)
		}
	}
	h.walks.Step(active)
	runLanes(h.laneFn, len(h.activeIDs), h.procs)
}

// drawDenseShard draws vertices [lo, hi) for every dense lane through the
// shared cross-lane blocked sweep.
func (h *BatchedHybrid) drawDenseShard(_, lo, hi int) {
	drawExchangeLanes(h.sampler, h.seeds, h.denseIDs, h.denseTargets, lo, hi, uint64(h.round), 0)
}

// laneShard runs the informing passes for active lanes [lo, hi).
func (h *BatchedHybrid) laneShard(_, lo, hi int) {
	for _, t := range h.activeIDs[lo:hi] {
		h.stepLane(t)
	}
}

// stepLane applies one hybrid round to lane t, mirroring the serial
// Hybrid.Step pass structure: exchange collect against the pre-round
// informed set, agent deposit, commit of both mechanisms' finds, then
// agent pickup.
func (h *BatchedHybrid) stepLane(t int) {
	L := &h.lanes[t]
	n := h.g.N()
	na := h.walks.N()
	L.messages += h.callers + int64(na)
	L.pendingV = L.pendingV[:0]

	// Exchange collect. Boundary lanes draw their small active list here
	// (the dense sweep skipped them); either way informedness is evaluated
	// against the pre-round state.
	if L.boundary {
		m := len(L.bnd.active)
		if m > 0 {
			h.drawActiveLane(t)
			L.pendingV = collectExchangeActive(L.informedV, L.srcs[:m], L.targets[:m], L.pendingV)
		}
	} else {
		L.pendingV = collectExchangeDenseWords(L.informedV, L.targets[:n], L.pendingV)
	}

	// Deposit: agents informed in a previous round inform the vertex they
	// landed on, collected in agent-id order against the pre-commit
	// informed set, exactly like the serial depositShard.
	pos := h.walks.Lane(t)
	if L.countA > 0 && L.countV < n {
		for wi, wd := range L.informedA.Words() {
			for ; wd != 0; wd &= wd - 1 {
				p := pos[wi<<6+bits.TrailingZeros64(wd)]
				if !L.informedV.Test(int(p)) {
					L.pendingV = append(L.pendingV, p)
				}
			}
		}
	}

	// Commit newly informed vertices from both mechanisms.
	countBefore := L.countV
	L.countV = commitExchange(h.g, L.informedV, &L.bnd, L.boundary, L.pendingV, L.countV)
	if !L.boundary {
		if L.countV != countBefore {
			L.stagnant = 0
		} else if L.countV != n {
			if L.stagnant++; L.stagnant >= boundaryStagnantRounds {
				L.bnd.build(h.g, L.informedV)
				if L.srcs == nil {
					L.srcs = make([]graph.Vertex, n)
				}
				L.boundary = true
			}
		}
	}

	// Pickup: agents standing on an informed vertex (old or new) become
	// informed.
	if L.countA < na {
		L.countA = pickupAgents(L.informedA, L.countA, L.informedV, pos)
	}
}

// drawActiveLane draws lane t's active-list exchange slots, recording the
// sender alongside, with the serial exchangeActiveShard draw discipline.
func (h *BatchedHybrid) drawActiveLane(t int) {
	L := &h.lanes[t]
	m := len(L.bnd.active)
	drawExchangeActive(h.sampler, h.seeds[t], L.bnd.active, L.srcs[:m], L.targets[:m], uint64(h.round), 0)
}
