package core

import (
	"fmt"
	"math/bits"

	"rumor/internal/agents"
	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// Hybrid runs push-pull and visit-exchange simultaneously over a shared
// informed-vertex set, realizing the paper's suggestion (Section 1) that
// "agent-based information dissemination, separately or in combination with
// push-pull, can significantly improve the broadcast time". Each round
// first performs a push-pull exchange step, then an agent step with
// visit-exchange semantics; a vertex informed by either mechanism counts.
//
// On every Fig. 1 family the hybrid inherits the faster mechanism:
// logarithmic on the star and double star (agents), and logarithmic on the
// heavy and Siamese trees (push-pull).
//
// Both mechanisms run on the deterministic parallel engine: exchange draws
// come from per-(vertex, round) streams, walk draws from per-(agent,
// round) streams, and all commits happen in serial merges ordered by
// vertex/agent id — bit-identical results for a given seed at any
// GOMAXPROCS.
type Hybrid struct {
	g     *graph.Graph
	src   graph.Vertex
	walks *agents.Walks
	opts  AgentOptions

	seed    uint64 // keys the push-pull exchange streams
	sampler neighborSampler
	callers int64 // non-isolated vertices: one exchange message each per round

	informedV *bitset.Set
	informedA *bitset.Set
	countV    int
	countA    int
	pendingV  []graph.Vertex
	targets   []graph.Vertex

	shardV     shardBufs[graph.Vertex]
	shardA     shardBufs[int32]
	bufsV      [][]graph.Vertex
	bufsA      [][]int32
	procs      int
	exchangeFn func(shard, lo, hi int)
	depositFn  func(shard, lo, hi int)
	pickupFn   func(shard, lo, hi int)
	round      int
	messages   int64
}

var _ Process = (*Hybrid)(nil)

// NewHybrid builds a combined push-pull + visit-exchange process.
func NewHybrid(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, opts AgentOptions) (*Hybrid, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	w, err := agents.New(g, opts.walkConfig(g, false), rng)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	h := &Hybrid{
		g:         g,
		src:       s,
		walks:     w,
		opts:      opts,
		seed:      rng.Uint64(),
		sampler:   newNeighborSampler(g),
		callers:   callerCount(g),
		informedV: bitset.New(g.N()),
		informedA: bitset.New(w.N()),
		countV:    1,
	}
	h.procs = par.Procs()
	h.exchangeFn = h.exchangeShard
	h.depositFn = h.depositShard
	h.pickupFn = h.pickupShard
	h.informedV.Set(int(s))
	for i := 0; i < w.N(); i++ {
		if w.Pos(i) == s {
			h.informedA.Set(i)
			h.countA++
		}
	}
	return h, nil
}

// Name implements Process.
func (h *Hybrid) Name() string { return "ppull+visitx" }

// Round implements Process.
func (h *Hybrid) Round() int { return h.round }

// Done implements Process.
func (h *Hybrid) Done() bool { return h.countV == h.g.N() }

// InformedCount implements Process (vertices).
func (h *Hybrid) InformedCount() int { return h.countV }

// AllAgentsInformed implements the agentTracker interface.
func (h *Hybrid) AllAgentsInformed() bool { return h.countA == h.walks.N() }

// Messages implements Process: one neighbor call per non-isolated vertex
// (isolated vertices have nobody to call; their exchange draw is the
// no-call marker -1) plus |A| agent steps per round.
func (h *Hybrid) Messages() int64 { return h.messages }

// Source implements the sourced interface.
func (h *Hybrid) Source() graph.Vertex { return h.src }

// Step implements Process.
func (h *Hybrid) Step() {
	h.round++

	// Phase 1: push-pull exchanges against the pre-round informed set,
	// drawn in parallel from per-vertex streams, merged in vertex order.
	h.pendingV = h.pendingV[:0]
	n := h.g.N()
	h.messages += h.callers
	if h.targets == nil {
		h.targets = make([]graph.Vertex, n)
	}
	if shardsFor(n, senderGrain, h.procs) == 1 {
		h.exchangeShard(0, 0, n)
	} else {
		par.Do(n, senderGrain, h.exchangeFn)
	}
	for u := 0; u < n; u++ {
		v := h.targets[u]
		if v < 0 {
			continue
		}
		iu, iv := h.informedV.Test(u), h.informedV.Test(int(v))
		switch {
		case iu && !iv:
			h.pendingV = append(h.pendingV, v)
		case !iu && iv:
			h.pendingV = append(h.pendingV, graph.Vertex(u))
		}
	}

	// Phase 2: agent moves with visit-exchange semantics. Agents informed
	// in a previous round inform the vertex they land on this round.
	h.walks.Step(nil)
	na := h.walks.N()
	h.messages += int64(na)
	for _, id := range h.walks.Respawned() {
		if h.informedA.Test(id) {
			h.informedA.Clear(id)
			h.countA--
		}
	}
	if h.opts.Observer != nil {
		for i := 0; i < na; i++ {
			h.opts.Observer(h.round, h.walks.Prev(i), h.walks.Pos(i))
		}
	}
	words := len(h.informedA.Words())
	if h.countA > 0 && h.countV < n {
		shards := shardsFor(words, wordGrain, h.procs)
		h.bufsV = h.shardV.acquire(shards)
		if shards == 1 {
			h.depositShard(0, 0, words)
		} else {
			par.DoN(shards, words, h.depositFn)
		}
		for _, buf := range h.bufsV {
			h.pendingV = append(h.pendingV, buf...)
		}
	}

	// Commit newly informed vertices from both mechanisms.
	for _, v := range h.pendingV {
		if !h.informedV.Test(int(v)) {
			h.informedV.Set(int(v))
			h.countV++
		}
	}

	// Agents standing on an informed vertex (old or new) become informed.
	if h.countA < na {
		shards := shardsFor(words, wordGrain, h.procs)
		h.bufsA = h.shardA.acquire(shards)
		if shards == 1 {
			h.pickupShard(0, 0, words)
		} else {
			par.DoN(shards, words, h.pickupFn)
		}
		for _, buf := range h.bufsA {
			for _, i := range buf {
				h.informedA.Set(int(i))
				h.countA++
			}
		}
	}
}

// exchangeShard draws the round's push-pull neighbor choice for vertices
// [lo, hi) into the targets scratch, with the incremental stream base and
// inlined sampling of the walk inner loop.
func (h *Hybrid) exchangeShard(_, lo, hi int) {
	round := uint64(h.round)
	idx, nbrs := h.sampler.idx, h.sampler.nbrs
	if idx == nil {
		for u := lo; u < hi; u++ {
			s := xrand.NewStream(h.seed, uint64(u), round)
			h.targets[u] = h.sampler.sample(graph.Vertex(u), &s)
		}
		return
	}
	targets := h.targets[:hi]
	base := xrand.MixBase(h.seed, uint64(lo), round)
	for u := lo; u < hi; u++ {
		word := idx[u]
		if graph.WalkDegreeOne(word) {
			targets[u] = graph.WalkOnlyNeighbor(word, nbrs)
		} else if graph.WalkDegreeZero(word) {
			targets[u] = -1 // isolated vertex: no call
		} else {
			targets[u] = graph.WalkTarget(word, xrand.Mix(base), nbrs)
		}
		base += xrand.UnitStride
	}
}

// depositShard collects the positions of previously informed agents in
// bitset words [lo, hi) whose vertex is not yet informed.
func (h *Hybrid) depositShard(shard, lo, hi int) {
	aw := h.informedA.Words()
	pos := h.walks.Positions()
	buf := h.bufsV[shard]
	for wi := lo; wi < hi; wi++ {
		for wd := aw[wi]; wd != 0; wd &= wd - 1 {
			i := wi<<6 + bits.TrailingZeros64(wd)
			p := pos[i]
			if !h.informedV.Test(int(p)) {
				buf = append(buf, p)
			}
		}
	}
	h.bufsV[shard] = buf
}

// pickupShard collects uninformed agents in bitset words [lo, hi) standing
// on an informed vertex.
func (h *Hybrid) pickupShard(shard, lo, hi int) {
	aw := h.informedA.Words()
	pos := h.walks.Positions()
	na := h.walks.N()
	buf := h.bufsA[shard]
	for wi := lo; wi < hi; wi++ {
		inv := ^aw[wi]
		if rem := na - wi<<6; rem < 64 {
			inv &= 1<<uint(rem) - 1
		}
		for ; inv != 0; inv &= inv - 1 {
			i := wi<<6 + bits.TrailingZeros64(inv)
			if h.informedV.Test(int(pos[i])) {
				buf = append(buf, int32(i))
			}
		}
	}
	h.bufsA[shard] = buf
}
