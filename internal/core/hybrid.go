package core

import (
	"fmt"

	"rumor/internal/agents"
	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// Hybrid runs push-pull and visit-exchange simultaneously over a shared
// informed-vertex set, realizing the paper's suggestion (Section 1) that
// "agent-based information dissemination, separately or in combination with
// push-pull, can significantly improve the broadcast time". Each round
// first performs a push-pull exchange step, then an agent step with
// visit-exchange semantics; a vertex informed by either mechanism counts.
//
// On every Fig. 1 family the hybrid inherits the faster mechanism:
// logarithmic on the star and double star (agents), and logarithmic on the
// heavy and Siamese trees (push-pull).
type Hybrid struct {
	g     *graph.Graph
	rng   *xrand.RNG
	src   graph.Vertex
	walks *agents.Walks
	opts  AgentOptions

	informedV *bitset.Set
	informedA *bitset.Set
	countV    int
	pendingV  []graph.Vertex
	newlyA    []int
	round     int
	messages  int64
}

var _ Process = (*Hybrid)(nil)

// NewHybrid builds a combined push-pull + visit-exchange process.
func NewHybrid(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, opts AgentOptions) (*Hybrid, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	w, err := agents.New(g, opts.walkConfig(g, false), rng)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	h := &Hybrid{
		g:         g,
		rng:       rng,
		src:       s,
		walks:     w,
		opts:      opts,
		informedV: bitset.New(g.N()),
		informedA: bitset.New(w.N()),
		countV:    1,
	}
	h.informedV.Set(int(s))
	for i := 0; i < w.N(); i++ {
		if w.Pos(i) == s {
			h.informedA.Set(i)
		}
	}
	return h, nil
}

// Name implements Process.
func (h *Hybrid) Name() string { return "ppull+visitx" }

// Round implements Process.
func (h *Hybrid) Round() int { return h.round }

// Done implements Process.
func (h *Hybrid) Done() bool { return h.countV == h.g.N() }

// InformedCount implements Process (vertices).
func (h *Hybrid) InformedCount() int { return h.countV }

// AllAgentsInformed implements the agentTracker interface.
func (h *Hybrid) AllAgentsInformed() bool { return h.informedA.Full() }

// Messages implements Process: n neighbor calls + |A| agent steps per round.
func (h *Hybrid) Messages() int64 { return h.messages }

// Source implements the sourced interface.
func (h *Hybrid) Source() graph.Vertex { return h.src }

// Step implements Process.
func (h *Hybrid) Step() {
	h.round++

	// Phase 1: push-pull exchanges against the pre-round informed set.
	h.pendingV = h.pendingV[:0]
	n := h.g.N()
	for u := 0; u < n; u++ {
		nb := h.g.Neighbors(graph.Vertex(u))
		v := nb[h.rng.IntN(len(nb))]
		h.messages++
		iu, iv := h.informedV.Test(u), h.informedV.Test(int(v))
		switch {
		case iu && !iv:
			h.pendingV = append(h.pendingV, v)
		case !iu && iv:
			h.pendingV = append(h.pendingV, graph.Vertex(u))
		}
	}

	// Phase 2: agent moves with visit-exchange semantics. Agents informed
	// in a previous round inform the vertex they land on this round.
	h.walks.Step(nil)
	h.messages += int64(h.walks.N())
	for _, id := range h.walks.Respawned() {
		h.informedA.Clear(id)
	}
	if h.opts.Observer != nil {
		for i := 0; i < h.walks.N(); i++ {
			h.opts.Observer(h.round, h.walks.Prev(i), h.walks.Pos(i))
		}
	}
	na := h.walks.N()
	for i := 0; i < na; i++ {
		if h.informedA.Test(i) {
			h.pendingV = append(h.pendingV, h.walks.Pos(i))
		}
	}

	// Commit newly informed vertices from both mechanisms.
	for _, v := range h.pendingV {
		if !h.informedV.Test(int(v)) {
			h.informedV.Set(int(v))
			h.countV++
		}
	}

	// Agents standing on an informed vertex (old or new) become informed.
	h.newlyA = h.newlyA[:0]
	for i := 0; i < na; i++ {
		if !h.informedA.Test(i) && h.informedV.Test(int(h.walks.Pos(i))) {
			h.newlyA = append(h.newlyA, i)
		}
	}
	for _, i := range h.newlyA {
		h.informedA.Set(i)
	}
}
