package core

import (
	"fmt"
	"math/bits"

	"rumor/internal/agents"
	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// Hybrid runs push-pull and visit-exchange simultaneously over a shared
// informed-vertex set, realizing the paper's suggestion (Section 1) that
// "agent-based information dissemination, separately or in combination with
// push-pull, can significantly improve the broadcast time". Each round
// first performs a push-pull exchange step, then an agent step with
// visit-exchange semantics; a vertex informed by either mechanism counts.
//
// On every Fig. 1 family the hybrid inherits the faster mechanism:
// logarithmic on the star and double star (agents), and logarithmic on the
// heavy and Siamese trees (push-pull).
//
// Both mechanisms run on the deterministic parallel engine: exchange draws
// come from per-(vertex, round) streams, walk draws from per-(agent,
// round) streams, and all commits happen in serial merges ordered by
// vertex/agent id — bit-identical results for a given seed at any
// GOMAXPROCS.
//
// The exchange phase carries the same boundary-active sender optimization
// as push-pull: after two consecutive rounds in which neither mechanism
// informed a vertex, only vertices with a neighbor in the opposite
// informed state draw exchange choices (see boundary.go). Because
// boundary membership is maintained against the shared informed set, a
// vertex informed by an agent deposit retires exchange senders exactly as
// an exchange-informed one does; results are bit-identical to the dense
// path (pinned by TestHybridBoundaryEquivalence).
type Hybrid struct {
	g     *graph.Graph
	src   graph.Vertex
	walks *agents.Walks
	opts  AgentOptions

	seed    uint64 // keys the push-pull exchange streams
	sampler neighborSampler
	callers int64 // non-isolated vertices: one exchange message each per round

	informedV *bitset.Set
	informedA *bitset.Set
	countV    int
	countA    int
	pendingV  []graph.Vertex
	targets   []graph.Vertex
	srcs      []graph.Vertex // per-slot sender (boundary mode)

	// Exchange-phase boundary bookkeeping (see boundary.go), built lazily
	// after repeated rounds that inform no vertex through either mechanism.
	// useBoundary is on by default; the equivalence test clears it to pin
	// the boundary path against the dense path.
	useBoundary bool
	boundary    bool
	stagnant    int
	bnd         exchangeBoundary

	shardV     shardBufs[graph.Vertex]
	shardA     shardBufs[int32]
	bufsV      [][]graph.Vertex
	bufsA      [][]int32
	procs      int
	exchangeFn func(shard, lo, hi int)
	activeFn   func(shard, lo, hi int)
	depositFn  func(shard, lo, hi int)
	pickupFn   func(shard, lo, hi int)
	round      int
	messages   int64
}

var _ Process = (*Hybrid)(nil)

// NewHybrid builds a combined push-pull + visit-exchange process.
func NewHybrid(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, opts AgentOptions) (*Hybrid, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	w, err := agents.New(g, opts.walkConfig(g, false), rng)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	h := &Hybrid{
		g:         g,
		src:       s,
		walks:     w,
		opts:      opts,
		seed:      rng.Uint64(),
		sampler:   newNeighborSampler(g),
		callers:   callerCount(g),
		informedV: bitset.New(g.N()),
		informedA: bitset.New(w.N()),
		countV:    1,
	}
	h.procs = par.Procs()
	h.useBoundary = true
	h.exchangeFn = h.exchangeShard
	h.activeFn = h.exchangeActiveShard
	h.depositFn = h.depositShard
	h.pickupFn = h.pickupShard
	h.informedV.Set(int(s))
	for i := 0; i < w.N(); i++ {
		if w.Pos(i) == s {
			h.informedA.Set(i)
			h.countA++
		}
	}
	return h, nil
}

// Name implements Process.
func (h *Hybrid) Name() string { return "ppull+visitx" }

// Round implements Process.
func (h *Hybrid) Round() int { return h.round }

// Done implements Process.
func (h *Hybrid) Done() bool { return h.countV == h.g.N() }

// InformedCount implements Process (vertices).
func (h *Hybrid) InformedCount() int { return h.countV }

// AllAgentsInformed implements the agentTracker interface.
func (h *Hybrid) AllAgentsInformed() bool { return h.countA == h.walks.N() }

// Messages implements Process: one neighbor call per non-isolated vertex
// (isolated vertices have nobody to call; their exchange draw is the
// no-call marker -1) plus |A| agent steps per round.
func (h *Hybrid) Messages() int64 { return h.messages }

// Source implements the sourced interface.
func (h *Hybrid) Source() graph.Vertex { return h.src }

// Step implements Process.
func (h *Hybrid) Step() {
	h.round++

	// Phase 1: push-pull exchanges against the pre-round informed set,
	// drawn in parallel from per-vertex streams, merged in vertex order.
	// In boundary mode only vertices with a neighbor in the opposite
	// informed state draw — any other vertex's exchange provably transfers
	// nothing, and skipping its draw shifts nobody else's randomness (see
	// boundary.go).
	h.pendingV = h.pendingV[:0]
	n := h.g.N()
	h.messages += h.callers
	if h.targets == nil {
		h.targets = make([]graph.Vertex, n)
	}
	if h.boundary {
		m := len(h.bnd.active)
		if m > 0 {
			if shardsFor(m, senderGrain, h.procs) == 1 {
				h.exchangeActiveShard(0, 0, m)
			} else {
				par.Do(m, senderGrain, h.activeFn)
			}
			// Collect against the pre-round informed state (the active
			// list itself mutates only in the commit below, hence srcs).
			h.pendingV = collectExchangeActive(h.informedV, h.srcs[:m], h.targets[:m], h.pendingV)
		}
	} else {
		if shardsFor(n, senderGrain, h.procs) == 1 {
			h.exchangeShard(0, 0, n)
		} else {
			par.Do(n, senderGrain, h.exchangeFn)
		}
		h.pendingV = collectExchangeDense(h.informedV, h.targets[:n], h.pendingV)
	}

	// Phase 2: agent moves with visit-exchange semantics. Agents informed
	// in a previous round inform the vertex they land on this round.
	h.walks.Step(nil)
	na := h.walks.N()
	h.messages += int64(na)
	for _, id := range h.walks.Respawned() {
		if h.informedA.Test(id) {
			h.informedA.Clear(id)
			h.countA--
		}
	}
	if h.opts.Observer != nil {
		for i := 0; i < na; i++ {
			h.opts.Observer(h.round, h.walks.Prev(i), h.walks.Pos(i))
		}
	}
	words := len(h.informedA.Words())
	if h.countA > 0 && h.countV < n {
		shards := shardsFor(words, wordGrain, h.procs)
		h.bufsV = h.shardV.acquire(shards)
		if shards == 1 {
			h.depositShard(0, 0, words)
		} else {
			par.DoN(shards, words, h.depositFn)
		}
		for _, buf := range h.bufsV {
			h.pendingV = append(h.pendingV, buf...)
		}
	}

	// Commit newly informed vertices from both mechanisms.
	countBefore := h.countV
	h.countV = commitExchange(h.g, h.informedV, &h.bnd, h.boundary, h.pendingV, h.countV)
	if h.useBoundary && !h.boundary {
		if h.countV != countBefore {
			h.stagnant = 0
		} else if !h.Done() {
			// A round in which neither the exchange nor the agents informed
			// a vertex signals a waiting phase; require two in a row before
			// paying the O(M) boundary build (see boundary.go).
			if h.stagnant++; h.stagnant >= boundaryStagnantRounds {
				h.bnd.build(h.g, h.informedV)
				if h.srcs == nil {
					h.srcs = make([]graph.Vertex, n)
				}
				h.boundary = true
			}
		}
	}

	// Agents standing on an informed vertex (old or new) become informed.
	if h.countA < na {
		shards := shardsFor(words, wordGrain, h.procs)
		h.bufsA = h.shardA.acquire(shards)
		if shards == 1 {
			h.pickupShard(0, 0, words)
		} else {
			par.DoN(shards, words, h.pickupFn)
		}
		for _, buf := range h.bufsA {
			for _, i := range buf {
				h.informedA.Set(int(i))
				h.countA++
			}
		}
	}
}

// exchangeShard draws the round's push-pull neighbor choice for vertices
// [lo, hi) into the targets scratch, with the incremental stream base and
// inlined sampling of the walk inner loop.
func (h *Hybrid) exchangeShard(_, lo, hi int) {
	round := uint64(h.round)
	idx, nbrs := h.sampler.idx, h.sampler.nbrs
	if idx == nil {
		for u := lo; u < hi; u++ {
			s := xrand.NewStream(h.seed, uint64(u), round)
			h.targets[u] = h.sampler.sample(graph.Vertex(u), &s)
		}
		return
	}
	targets := h.targets[:hi]
	base := xrand.MixBase(h.seed, uint64(lo), round)
	for u := lo; u < hi; u++ {
		word := idx[u]
		if graph.WalkDegreeOne(word) {
			targets[u] = graph.WalkOnlyNeighbor(word, nbrs)
		} else if graph.WalkDegreeZero(word) {
			targets[u] = -1 // isolated vertex: no call
		} else {
			targets[u] = graph.WalkTarget(word, xrand.Mix(base), nbrs)
		}
		base += xrand.UnitStride
	}
}

// exchangeActiveShard draws the round's push-pull neighbor choice for
// active-list slots [lo, hi), recording the sender alongside because the
// active list mutates during the commit phase.
func (h *Hybrid) exchangeActiveShard(_, lo, hi int) {
	drawExchangeActive(h.sampler, h.seed, h.bnd.active[lo:hi], h.srcs[lo:hi], h.targets[lo:hi], uint64(h.round), 0)
}

// depositShard collects the positions of previously informed agents in
// bitset words [lo, hi) whose vertex is not yet informed.
func (h *Hybrid) depositShard(shard, lo, hi int) {
	aw := h.informedA.Words()
	pos := h.walks.Positions()
	buf := h.bufsV[shard]
	for wi := lo; wi < hi; wi++ {
		for wd := aw[wi]; wd != 0; wd &= wd - 1 {
			i := wi<<6 + bits.TrailingZeros64(wd)
			p := pos[i]
			if !h.informedV.Test(int(p)) {
				buf = append(buf, p)
			}
		}
	}
	h.bufsV[shard] = buf
}

// pickupShard collects uninformed agents in bitset words [lo, hi) standing
// on an informed vertex.
func (h *Hybrid) pickupShard(shard, lo, hi int) {
	aw := h.informedA.Words()
	pos := h.walks.Positions()
	na := h.walks.N()
	buf := h.bufsA[shard]
	for wi := lo; wi < hi; wi++ {
		inv := ^aw[wi]
		if rem := na - wi<<6; rem < 64 {
			inv &= 1<<uint(rem) - 1
		}
		for ; inv != 0; inv &= inv - 1 {
			i := wi<<6 + bits.TrailingZeros64(inv)
			if h.informedV.Test(int(pos[i])) {
				buf = append(buf, int32(i))
			}
		}
	}
	h.bufsA[shard] = buf
}
