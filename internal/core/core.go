// Package core implements the paper's four rumor-spreading protocols —
// push, push-pull, visit-exchange, and meet-exchange — plus the hybrid
// push-pull+visit-exchange combination suggested in the paper's
// introduction, all with the exact synchronous-round semantics of Section 3.
//
// Each protocol is a Process: Init places the rumor at the source in round
// zero, Step executes one synchronous round, and Done reports whether the
// protocol-specific broadcast condition holds (all vertices informed for
// push, push-pull, visit-exchange, and the hybrid; all agents informed for
// meet-exchange). Run drives a Process to completion and records the
// broadcast time.
package core

import (
	"fmt"
	"math"
	"sync"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// Process is one protocol instance bound to a graph, source, and RNG.
// Implementations are single-goroutine; RunMany gives each trial its own
// Process.
type Process interface {
	// Name returns the protocol name ("push", "push-pull", ...).
	Name() string
	// Round returns the number of Step calls so far.
	Round() int
	// Step executes one synchronous round.
	Step()
	// Done reports whether the broadcast condition of this protocol holds.
	Done() bool
	// InformedCount returns the number of informed units: vertices for
	// push/push-pull/visit-exchange/hybrid, agents for meet-exchange.
	InformedCount() int
	// Messages returns the cumulative message count: one per neighbor call
	// for push/push-pull, one per agent step for the agent protocols.
	Messages() int64
}

// MoveObserver receives every information-bearing channel use: a neighbor
// call (push/push-pull) or an agent traversal (agent protocols). The trace
// package uses it for the bandwidth-fairness accounting of Section 1.
// Observers add overhead; leave nil in benchmarks.
type MoveObserver func(round int, from, to graph.Vertex)

// Result records one completed (or cut off) run.
type Result struct {
	Protocol  string
	Graph     string
	Source    graph.Vertex
	Rounds    int   // rounds until Done; equals MaxRounds if not Completed
	Completed bool  // false if the run hit MaxRounds before Done
	Messages  int64 // cumulative message count
	// AllAgentsRound is the round when every agent became informed, for
	// protocols with agents; -1 otherwise or if never reached.
	AllAgentsRound int
	// History[t] is InformedCount after round t (History[0] is the count
	// after round zero initialization).
	History []int
}

// DefaultMaxRounds bounds a run when the caller passes maxRounds <= 0. It
// is generous: n² rounds exceeds every broadcast time in the paper's
// families by a wide margin at the sizes this repository simulates.
func DefaultMaxRounds(g *graph.Graph) int {
	n := g.N()
	if n < 64 {
		n = 64
	}
	if n > 1<<15 {
		// Cap the quadratic at a ceiling to keep pathological runs bounded.
		return 1 << 30
	}
	return n * n
}

// Run drives p until Done or maxRounds (DefaultMaxRounds-bounded when
// maxRounds <= 0) and returns the outcome.
func Run(g *graph.Graph, p Process, maxRounds int) Result {
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(g)
	}
	res := Result{
		Protocol:       p.Name(),
		Graph:          g.Name(),
		AllAgentsRound: -1,
	}
	if ap, ok := p.(agentTracker); ok {
		if ap.AllAgentsInformed() {
			res.AllAgentsRound = 0
		}
	}
	res.History = append(res.History, p.InformedCount())
	for !p.Done() && p.Round() < maxRounds {
		p.Step()
		res.History = append(res.History, p.InformedCount())
		if res.AllAgentsRound < 0 {
			if ap, ok := p.(agentTracker); ok && ap.AllAgentsInformed() {
				res.AllAgentsRound = p.Round()
			}
		}
	}
	res.Rounds = p.Round()
	res.Completed = p.Done()
	res.Messages = p.Messages()
	if sp, ok := p.(sourced); ok {
		res.Source = sp.Source()
	}
	return res
}

// agentTracker is implemented by agent-based processes.
type agentTracker interface {
	AllAgentsInformed() bool
}

// sourced exposes the source vertex for result reporting.
type sourced interface {
	Source() graph.Vertex
}

// Factory builds one Process for a trial; RunMany derives a distinct seed
// per trial.
type Factory func(rng *xrand.RNG) (Process, error)

// RunMany executes `trials` independent runs in parallel, deriving trial
// seeds from seed, and returns results in trial order.
func RunMany(g *graph.Graph, factory Factory, trials, maxRounds int, seed uint64) ([]Result, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("core: trials must be positive, got %d", trials)
	}
	results := make([]Result, trials)
	errs := make([]error, trials)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for t := 0; t < trials; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rng := xrand.New(xrand.Derive(seed, t))
			p, err := factory(rng)
			if err != nil {
				errs[t] = err
				return
			}
			results[t] = Run(g, p, maxRounds)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func maxParallel() int {
	// Bounded parallelism; GOMAXPROCS-sized pools are handled by the
	// runtime scheduler, so a fixed generous bound is fine here.
	return 8
}

// AgentCount converts the paper's agent density α into a concrete |A| =
// max(1, round(α·n)).
func AgentCount(n int, alpha float64) int {
	c := int(math.Round(alpha * float64(n)))
	if c < 1 {
		c = 1
	}
	return c
}

func checkSource(g *graph.Graph, s graph.Vertex) error {
	if s < 0 || int(s) >= g.N() {
		return fmt.Errorf("core: source %d out of range [0,%d)", s, g.N())
	}
	if g.N() < 2 {
		return fmt.Errorf("core: graph too small (n=%d)", g.N())
	}
	if g.M() == 0 {
		return fmt.Errorf("core: graph has no edges")
	}
	return nil
}
