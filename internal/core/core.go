// Package core implements the paper's four rumor-spreading protocols —
// push, push-pull, visit-exchange, and meet-exchange — plus the hybrid
// push-pull+visit-exchange combination suggested in the paper's
// introduction, all with the exact synchronous-round semantics of Section 3.
//
// Each protocol is a Process: Init places the rumor at the source in round
// zero, Step executes one synchronous round, and Done reports whether the
// protocol-specific broadcast condition holds (all vertices informed for
// push, push-pull, visit-exchange, and the hybrid; all agents informed for
// meet-exchange). Run drives a Process to completion and records the
// broadcast time.
//
// # Deterministic parallelism
//
// Rounds execute on a deterministic parallel engine with a counter-based
// randomness contract: every draw a unit (vertex or agent) makes in round
// t comes from the stream keyed (protocol seed, unit id, t) — see
// xrand.NewStream — so no draw depends on execution order or on how much
// randomness other units consumed. Each round is a parallel phase over
// contiguous, ascending-id shards (internal/par) whose outputs land in
// per-unit slots or per-shard buffers, followed by a serial merge that
// commits shard outputs in ascending shard order, realizing the paper's
// "ties broken by agent id" convention. Together these make every Result
// — rounds, messages, and the full History — bit-identical for a given
// seed regardless of GOMAXPROCS; the determinism tests pin this for every
// protocol at GOMAXPROCS 1, 2, and 8. Protocol constructors consume
// exactly one seed value per independent mechanism from the trial RNG, so
// RunMany's Derive(seed, trial) streams fully determine each trial.
//
// # Lane-based multi-trial execution
//
// Because every empirical figure is a distribution over many independent
// trials, every protocol also has a fused multi-lane bundle (BatchedPush,
// BatchedPushPull, BatchedVisitExchange, BatchedMeetExchange,
// BatchedHybrid): K trials step in lockstep through one blocked loop over
// units per round, with per-lane state and per-trial done-masking. Serial
// and fused execution share one engine — a serial Process runs as the
// K = 1 lane of the same driver (see lane.go) — so RunMany, RunManyBatched,
// and RunManyLanes differ only in bundle width. The trial lane of the
// stream keying (xrand.TrialSeed) guarantees lane t draws exactly what
// serial trial t would, so the []Result is bit-identical for every seed
// and K — pinned by the lane-equivalence tests at GOMAXPROCS 1 and 8.
// Configurations the fused bundles cannot express (churn, observers) run
// serial processes on the K = 1 path.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// Process is one protocol instance bound to a graph, source, and RNG.
// Implementations are single-goroutine; RunMany gives each trial its own
// Process.
type Process interface {
	// Name returns the protocol name ("push", "push-pull", ...).
	Name() string
	// Round returns the number of Step calls so far.
	Round() int
	// Step executes one synchronous round.
	Step()
	// Done reports whether the broadcast condition of this protocol holds.
	Done() bool
	// InformedCount returns the number of informed units: vertices for
	// push/push-pull/visit-exchange/hybrid, agents for meet-exchange.
	InformedCount() int
	// Messages returns the cumulative message count: one per neighbor call
	// for push/push-pull, one per agent step for the agent protocols.
	Messages() int64
}

// MoveObserver receives every information-bearing channel use: a neighbor
// call (push/push-pull) or an agent traversal (agent protocols). The trace
// package uses it for the bandwidth-fairness accounting of Section 1.
// Observers add overhead; leave nil in benchmarks.
type MoveObserver func(round int, from, to graph.Vertex)

// Result records one completed (or cut off) run.
type Result struct {
	Protocol  string
	Graph     string
	Source    graph.Vertex
	Rounds    int   // rounds until Done; equals MaxRounds if not Completed
	Completed bool  // false if the run hit MaxRounds before Done
	Messages  int64 // cumulative message count
	// AllAgentsRound is the round when every agent became informed, for
	// protocols with agents; -1 otherwise or if never reached.
	AllAgentsRound int
	// History[t] is InformedCount after round t (History[0] is the count
	// after round zero initialization).
	History []int
}

// DefaultMaxRounds bounds a run when the caller passes maxRounds <= 0. It
// is generous: n² rounds exceeds every broadcast time in the paper's
// families by a wide margin at the sizes this repository simulates.
func DefaultMaxRounds(g *graph.Graph) int {
	n := g.N()
	if n < 64 {
		n = 64
	}
	if n > 1<<15 {
		// Cap the quadratic at a ceiling to keep pathological runs bounded.
		return 1 << 30
	}
	return n * n
}

// histPool holds reusable History scratch buffers. Run appends rounds into
// pooled scratch — zero allocations per round once a buffer has grown to a
// workload's typical length — and copies the exact-size result out at the
// end, so Result.History is owned by the caller while the capacity stays
// pooled. DefaultMaxRounds is a quadratic safety bound, not an estimate,
// which is why Run does not reserve maxRounds entries directly.
var histPool = sync.Pool{
	New: func() any {
		b := make([]int, 0, 1024)
		return &b
	},
}

// Run drives p until Done or maxRounds (DefaultMaxRounds-bounded when
// maxRounds <= 0) and returns the outcome. It runs p as the single lane of
// the unified lane driver (see lane.go): the per-round loop performs no
// allocations — History accumulates in pooled scratch and is copied out
// exact-size once at the end — and the round/History/finalization
// semantics are, by construction, those of every K-lane bundle.
func Run(g *graph.Graph, p Process, maxRounds int) Result {
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(g)
	}
	// Processes may arrive pre-stepped (tests drive a few rounds by hand
	// before handing over): the lane driver counts rounds relative to
	// entry, while Run's Rounds, AllAgentsRound, and maxRounds bound are
	// absolute p.Round() values.
	base := p.Round()
	budget := maxRounds - base
	if budget < 0 {
		budget = 0
	}
	var out [1]Result
	driveBatch(g, newProcessLane(p), budget, out[:], nil, 0)
	res := out[0]
	if base > 0 {
		res.Rounds += base
		if res.AllAgentsRound > 0 {
			res.AllAgentsRound += base
		}
	}
	return res
}

// agentTracker is implemented by agent-based processes.
type agentTracker interface {
	AllAgentsInformed() bool
}

// sourced exposes the source vertex for result reporting.
type sourced interface {
	Source() graph.Vertex
}

// Factory builds one Process for a trial; RunMany derives a distinct seed
// per trial.
type Factory func(rng *xrand.RNG) (Process, error)

// EmitFunc receives completed trial results. The engines call it in
// strict trial order (0, 1, 2, ...) with each trial's final Result,
// serialized under an internal lock — trial t is emitted only after every
// trial below t, regardless of completion order on the pool. Streaming
// consumers (the serving layer's NDJSON endpoint) build on this ordering
// to produce deterministic byte streams. Emit functions must not call
// back into the engine and should return quickly; heavy work belongs on
// the consumer's side of a channel or buffer.
type EmitFunc func(trial int, r Result)

// orderedEmitter serializes out-of-order trial completions into in-order
// EmitFunc calls. A nil *orderedEmitter is valid and inert, so engines
// can call complete unconditionally.
type orderedEmitter struct {
	mu      sync.Mutex
	emit    EmitFunc
	results []Result
	done    []bool
	next    int
}

// newOrderedEmitter returns an emitter flushing from results, or nil when
// emit is nil. results must be the engine's result slice: entry t is read
// inside complete(t), after the worker fully wrote it.
func newOrderedEmitter(emit EmitFunc, results []Result) *orderedEmitter {
	if emit == nil {
		return nil
	}
	return &orderedEmitter{emit: emit, results: results, done: make([]bool, len(results))}
}

// complete marks trial t finished and flushes every consecutive finished
// trial from the front of the order.
func (e *orderedEmitter) complete(t int) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.done[t] = true
	for e.next < len(e.done) && e.done[e.next] {
		e.emit(e.next, e.results[e.next])
		e.next++
	}
	e.mu.Unlock()
}

// RunMany executes `trials` independent runs of serial processes on the
// unified lane engine at K = 1: each trial is its own bundle, claimed in
// increasing order by a GOMAXPROCS-sized worker pool. Trial t's stream is
// xrand.New(xrand.TrialSeed(seed, t)) regardless of scheduling, so results
// are identical at any parallelism; within each trial the protocols
// additionally shard rounds across internal/par (see the package comment),
// and the two levels self-balance because shard dispatch never blocks on a
// busy pool.
//
// A factory error aborts the sweep: workers stop claiming trials once any
// error is recorded (already-claimed trials run to completion), and the
// error of the lowest-numbered failing trial is returned — the same error
// the single-worker path returns for the same seed, since trials are
// claimed in increasing order.
func RunMany(g *graph.Graph, factory Factory, trials, maxRounds int, seed uint64) ([]Result, error) {
	return RunManyEmit(g, factory, trials, maxRounds, seed, nil)
}

// RunManyEmit is RunMany with streaming: emit (when non-nil) receives each
// trial's Result in strict trial order as trials complete, before
// RunManyEmit returns. On a factory error, trials past the failure are
// never emitted; everything emitted is final.
func RunManyEmit(g *graph.Graph, factory Factory, trials, maxRounds int, seed uint64, emit EmitFunc) ([]Result, error) {
	return RunManyLanes(g, serialLanes(factory), trials, maxRounds, seed, 1, emit)
}

// maxParallel sizes the trial pool to the machine: one worker per
// available processor.
func maxParallel() int {
	return runtime.GOMAXPROCS(0)
}

// AgentCount converts the paper's agent density α into a concrete |A| =
// max(1, round(α·n)).
func AgentCount(n int, alpha float64) int {
	c := int(math.Round(alpha * float64(n)))
	if c < 1 {
		c = 1
	}
	return c
}

// callerCount returns the number of vertices that place a neighbor call
// each round in the exchange protocols: every non-isolated vertex. An
// isolated vertex has nobody to call (exchange draws mark it with target
// -1), so it must not be charged a message — push-pull and the hybrid use
// this instead of n for their per-round accounting. The scan is cached on
// the (immutable, trial-shared) graph.
func callerCount(g *graph.Graph) int64 {
	return int64(g.PositiveDegreeCount())
}

func checkSource(g *graph.Graph, s graph.Vertex) error {
	if s < 0 || int(s) >= g.N() {
		return fmt.Errorf("core: source %d out of range [0,%d)", s, g.N())
	}
	if g.Degree(s) == 0 {
		return fmt.Errorf("core: source %d is isolated (degree 0)", s)
	}
	if g.N() < 2 {
		return fmt.Errorf("core: graph too small (n=%d)", g.N())
	}
	if g.M() == 0 {
		return fmt.Errorf("core: graph has no edges")
	}
	return nil
}
