package core

import (
	"reflect"
	"testing"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// The lane-equivalence contract: for every protocol, seed, and bundle
// width K, RunManyLanes must return []Result bit-identical to RunMany's
// serial processes — Rounds, Completed, Messages, AllAgentsRound, and the
// full History per trial — at any GOMAXPROCS. These tests pin the fused
// bundles of the call protocols (push, push-pull) and the hybrid, added by
// the lane refactor, for K in {1, 2, 7} (one lane, partial bundle, prime
// width) at GOMAXPROCS 1 and 8; batched_test.go pins visit-exchange and
// meet-exchange the same way.

// laneProto pairs a serial factory with its fused bundle factory.
type laneProto struct {
	name    string
	serial  Factory
	batched LaneFactory
}

func laneProtos(g *graph.Graph, s graph.Vertex) []laneProto {
	return []laneProto{
		{
			name: "push",
			serial: func(rng *xrand.RNG) (Process, error) {
				return NewPush(g, s, rng, PushOptions{})
			},
			batched: func(rngs []*xrand.RNG) (LaneProcess, error) {
				return NewBatchedPush(g, s, rngs, PushOptions{})
			},
		},
		{
			name: "push-failures",
			serial: func(rng *xrand.RNG) (Process, error) {
				return NewPush(g, s, rng, PushOptions{FailureProb: 0.25})
			},
			batched: func(rngs []*xrand.RNG) (LaneProcess, error) {
				return NewBatchedPush(g, s, rngs, PushOptions{FailureProb: 0.25})
			},
		},
		{
			name: "push-pull",
			serial: func(rng *xrand.RNG) (Process, error) {
				return NewPushPull(g, s, rng, PushPullOptions{})
			},
			batched: func(rngs []*xrand.RNG) (LaneProcess, error) {
				return NewBatchedPushPull(g, s, rngs, PushPullOptions{})
			},
		},
		{
			name: "push-pull-failures",
			serial: func(rng *xrand.RNG) (Process, error) {
				return NewPushPull(g, s, rng, PushPullOptions{FailureProb: 0.25})
			},
			batched: func(rngs []*xrand.RNG) (LaneProcess, error) {
				return NewBatchedPushPull(g, s, rngs, PushPullOptions{FailureProb: 0.25})
			},
		},
		{
			name: "hybrid",
			serial: func(rng *xrand.RNG) (Process, error) {
				return NewHybrid(g, s, rng, AgentOptions{})
			},
			batched: func(rngs []*xrand.RNG) (LaneProcess, error) {
				return NewBatchedHybrid(g, s, rngs, AgentOptions{})
			},
		},
		{
			name: "hybrid-sparse-agents",
			serial: func(rng *xrand.RNG) (Process, error) {
				return NewHybrid(g, s, rng, AgentOptions{Count: 5})
			},
			batched: func(rngs []*xrand.RNG) (LaneProcess, error) {
				return NewBatchedHybrid(g, s, rngs, AgentOptions{Count: 5})
			},
		},
	}
}

// compareLanes runs k trials through both engines at the given GOMAXPROCS
// values and reports any per-trial divergence.
func compareLanes(t *testing.T, g *graph.Graph, pc laneProto, k, maxRounds int, seed uint64) {
	t.Helper()
	serial, err := RunMany(g, pc.serial, k, maxRounds, seed)
	if err != nil {
		t.Fatalf("%s on %s: serial: %v", pc.name, g.Name(), err)
	}
	for _, procs := range []int{1, 8} {
		batched := atGOMAXPROCS(t, procs, func() []Result {
			res, err := RunManyLanes(g, pc.batched, k, maxRounds, seed, k, nil)
			if err != nil {
				t.Fatalf("%s on %s: batched: %v", pc.name, g.Name(), err)
			}
			return res
		})
		for tr := range serial {
			if !reflect.DeepEqual(serial[tr], batched[tr]) {
				t.Errorf("%s on %s K=%d GOMAXPROCS=%d trial %d: batched diverges\nserial:  rounds %d completed %v messages %d allAgents %d hist %d\nbatched: rounds %d completed %v messages %d allAgents %d hist %d",
					pc.name, g.Name(), k, procs, tr,
					serial[tr].Rounds, serial[tr].Completed, serial[tr].Messages, serial[tr].AllAgentsRound, len(serial[tr].History),
					batched[tr].Rounds, batched[tr].Completed, batched[tr].Messages, batched[tr].AllAgentsRound, len(batched[tr].History))
			}
		}
	}
}

// TestLaneEquivalenceBatchedCallProtocols: fused push/push-pull/hybrid
// bundles equal serial RunMany results per trial on mixed-degree (star:
// push's coupon tail enters boundary mode), bridge-wait (double star:
// push-pull's boundary mode), and uniform-degree (hypercube) graphs.
func TestLaneEquivalenceBatchedCallProtocols(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Star(301),      // extreme degree mix; push waits Ω(n log n)
		graph.DoubleStar(96), // the Ω(n) bridge wait drives boundary mode
		graph.Hypercube(7),   // n = 128, uniform degree 7
	}
	const seed = 2024
	for _, g := range graphs {
		for _, pc := range laneProtos(g, 0) {
			for _, k := range []int{1, 2, 7} {
				compareLanes(t, g, pc, k, 0, seed)
			}
		}
	}
}

// TestLaneEquivalenceWordPaths: the word-parallel dense passes — the
// 64-vertex-block exchange collect (collectExchangeDenseWords, with its
// all-informed and none-informed block arms) and BatchedPush's
// scatter-then-CommitNew frontier commit (taken once a round's sender
// count reaches one per word) — must reproduce the serial scalar engines
// bit for bit. The complete graph saturates in a few rounds, so most
// blocks take the all-informed arm and push rounds exceed the word-commit
// sender threshold almost immediately; the cycle spreads one vertex per
// direction per round, keeping the boundary word mixed for the whole run;
// the 193-vertex sizes exercise the partial tail block (ghost bits past
// Len() must keep the tail word off the all-informed arm).
func TestLaneEquivalenceWordPaths(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Complete(193), // dense: all-informed blocks, instant word commits
		graph.Cycle(193),    // sparse: mixed boundary words every round
		graph.Complete(64),  // exactly one word, no tail
	}
	const seed = 99
	for _, g := range graphs {
		for _, pc := range laneProtos(g, 0) {
			for _, k := range []int{1, 3} {
				compareLanes(t, g, pc, k, 0, seed)
			}
		}
	}
}

// TestLaneEquivalenceMaxRounds: a lane cut off at maxRounds must report
// the same truncated Result (Completed false, Rounds == maxRounds, partial
// History) as the serial path, for every fused protocol.
func TestLaneEquivalenceMaxRounds(t *testing.T) {
	g := graph.Star(301)
	const seed, k, maxRounds = 7, 7, 3
	for _, pc := range laneProtos(g, 0) {
		compareLanes(t, g, pc, k, maxRounds, seed)
	}
}

// TestLaneEquivalenceIsolatedVertices: on a graph with isolated vertices —
// the PR-2 callerCount regression shape — the fused bundles must charge
// exactly the serial per-round messages (isolated vertices place no call)
// and diverge nowhere else. Isolated vertices can never be informed, so
// every run is driven into the maxRounds cutoff, with enough rounds that
// push and push-pull lanes enter boundary mode on the way.
func TestLaneEquivalenceIsolatedVertices(t *testing.T) {
	g := ringWithIsolated(t)
	const seed, maxRounds = 11, 12
	for _, pc := range laneProtos(g, 0) {
		for _, k := range []int{1, 2, 7} {
			compareLanes(t, g, pc, k, maxRounds, seed)
		}
	}
}

// TestRunManyLanesAdaptiveK: the adaptive width never changes results —
// RunManyLanes with k <= 0 (AdaptiveBatchK) equals explicit K = 1.
func TestRunManyLanesAdaptiveK(t *testing.T) {
	g := graph.Hypercube(6)
	const seed, trials = 5, 11
	pc := laneProtos(g, 0)[0]
	want, err := RunMany(g, pc.serial, trials, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunManyLanes(g, pc.batched, trials, 0, seed, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("adaptive-K lane results diverge from serial")
	}
	if k := AdaptiveBatchK(g, trials); k < 1 || k > batchK {
		t.Errorf("AdaptiveBatchK = %d, want in [1, %d]", k, batchK)
	}
	if k := AdaptiveBatchK(g, 1); k != 1 {
		t.Errorf("AdaptiveBatchK(1 trial) = %d, want 1", k)
	}
}

// TestHybridBoundaryEquivalence: the hybrid's boundary-active exchange
// phase must be bit-identical to the dense path — a non-boundary vertex's
// exchange provably transfers nothing, and counter-based streams make
// skipping its draw invisible to every other vertex. The double star's
// bridge wait and the isolated-vertex ring both force boundary entry.
func TestHybridBoundaryEquivalence(t *testing.T) {
	type hcase struct {
		g         *graph.Graph
		maxRounds int
	}
	cases := []hcase{
		{graph.DoubleStar(96), 0},
		{graph.Star(128), 0},
		{ringWithIsolated(t), 12},
	}
	for _, procs := range []int{1, 8} {
		for _, c := range cases {
			run := func(useBoundary bool) Result {
				return atGOMAXPROCS(t, procs, func() Result {
					h, err := NewHybrid(c.g, 0, xrand.New(77), AgentOptions{})
					if err != nil {
						t.Fatal(err)
					}
					h.useBoundary = useBoundary
					return Run(c.g, h, c.maxRounds)
				})
			}
			bounded, dense := run(true), run(false)
			if !reflect.DeepEqual(bounded, dense) {
				t.Errorf("procs=%d %s: boundary and dense hybrid results differ:\nboundary %+v\ndense    %+v",
					procs, c.g.Name(), bounded, dense)
			}
		}
	}
}
