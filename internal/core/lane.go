package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// The lane-based protocol core.
//
// Every multi-trial run in this package — serial or fused — executes on one
// engine: trials are grouped into bundles of K >= 1 lanes, each bundle is a
// LaneProcess stepping its lanes in lockstep, and driveBatch drives every
// bundle with identical round/History/finalization semantics. The fused
// protocol implementations (BatchedPush, BatchedPushPull,
// BatchedVisitExchange, BatchedMeetExchange, BatchedHybrid) are
// LaneProcesses with K > 1; a serial Process becomes the K = 1 special case
// through processLane. RunMany is RunManyLanes at K = 1, RunManyBatched is
// RunManyLanes at K = batchK, and both therefore share one worker pool, one
// error discipline, and one emitter.
//
// The contract is strict bit-equivalence across K: lane t draws from
// streams keyed by the trial lane (xrand.TrialSeed(seed, t)) exactly as a
// serial trial t would, and finished lanes are masked out without shifting
// any sibling's draws (streams are keyed by round, not by draw count). For
// every protocol, seed, and K, RunManyLanes returns the same []Result —
// Rounds, Messages, AllAgentsRound, and the full History per trial — and
// the lane-equivalence tests pin this at GOMAXPROCS 1 and 8 for K in
// {1, 2, 7}.

// LaneProcess is a bundle of K independent trials of one protocol stepping
// in lockstep. Lanes are completely independent simulations; the bundle
// exists so their hot loops can fuse. K = 1 recovers the serial engine
// (see processLane).
type LaneProcess interface {
	// Name returns the protocol name, identical to the serial Process.
	Name() string
	// K returns the number of lanes (trials) in the bundle.
	K() int
	// Step executes one synchronous round for every lane with active[t]
	// true. Inactive lanes freeze: no draws, no messages, no state change.
	Step(active []bool)
	// LaneDone reports lane t's broadcast condition.
	LaneDone(t int) bool
	// LaneInformedCount returns lane t's informed units (vertices or
	// agents, matching the serial protocol's InformedCount).
	LaneInformedCount(t int) int
	// LaneMessages returns lane t's cumulative message count.
	LaneMessages(t int) int64
	// LaneAllAgentsInformed reports whether all of lane t's agents are
	// informed (false for protocols without agents).
	LaneAllAgentsInformed(t int) bool
	// Source returns the source vertex (shared by all lanes).
	Source() graph.Vertex
}

// LaneFactory builds one bundle; rngs[t] is trial t's RNG, derived exactly
// as RunMany derives it, and len(rngs) sets K.
type LaneFactory func(rngs []*xrand.RNG) (LaneProcess, error)

// processLane adapts one serial Process to the K = 1 LaneProcess the
// unified driver runs. It is how observer and churn configurations — which
// the fused bundles reject — still execute on the lane engine.
type processLane struct {
	p       Process
	tracker agentTracker // nil when p has no agents
	src     graph.Vertex
}

func newProcessLane(p Process) *processLane {
	l := &processLane{p: p}
	l.tracker, _ = p.(agentTracker)
	if sp, ok := p.(sourced); ok {
		l.src = sp.Source()
	}
	return l
}

func (l *processLane) Name() string              { return l.p.Name() }
func (l *processLane) K() int                    { return 1 }
func (l *processLane) LaneDone(int) bool         { return l.p.Done() }
func (l *processLane) LaneInformedCount(int) int { return l.p.InformedCount() }
func (l *processLane) LaneMessages(int) int64    { return l.p.Messages() }
func (l *processLane) Source() graph.Vertex      { return l.src }

func (l *processLane) Step(active []bool) {
	if active[0] {
		l.p.Step()
	}
}

func (l *processLane) LaneAllAgentsInformed(int) bool {
	return l.tracker != nil && l.tracker.AllAgentsInformed()
}

// serialLanes wraps a per-trial Factory as a LaneFactory so serial
// processes run on the unified driver. RunManyLanes only ever calls it
// with one RNG per bundle (batchK 1).
func serialLanes(factory Factory) LaneFactory {
	return func(rngs []*xrand.RNG) (LaneProcess, error) {
		p, err := factory(rngs[0])
		if err != nil {
			return nil, err
		}
		return newProcessLane(p), nil
	}
}

// batchK is the default (and maximum) number of trials fused per bundle.
// Eight lanes amortize the per-unit loop overhead and keep every lane's
// state within a few cache lines per unit block; past ~8 the extra lanes
// mostly grow the working set.
const batchK = 8

// AdaptiveBatchK picks the bundle width for a trials-sized sweep on g: the
// widest K (up to batchK) that still yields at least one bundle per
// processor — on multi-core boxes, small sweeps otherwise fuse into too few
// bundles to occupy the trial pool — halved while the bundle's per-lane
// state (positions, informed bitsets, occupancy stamps, all Θ(n)) would
// overflow a few MB of cache, since wide bundles on huge graphs evict the
// shared CSR and walk index they exist to keep hot. K never affects
// results (lane t's draws are keyed by trial, not by bundle shape), only
// throughput, so the heuristic is free to use GOMAXPROCS.
func AdaptiveBatchK(g *graph.Graph, trials int) int {
	if trials <= 1 {
		return 1
	}
	k := batchK
	if k > trials {
		k = trials
	}
	if procs := maxParallel(); procs > 1 {
		if perWorker := (trials + procs - 1) / procs; perWorker < k {
			k = perWorker
		}
	}
	// ~16 bytes of lane state per vertex/agent (two position buffers, two
	// bitsets, stamps) against an 8 MB budget.
	const laneStateBudget = 8 << 20
	for k > 1 && k*g.N()*16 > laneStateBudget {
		k /= 2
	}
	if k < 1 {
		k = 1
	}
	return k
}

// RunManyLanes executes `trials` independent runs on the unified lane
// engine: trials are grouped into bundles of up to k lanes (k <= 0 picks
// AdaptiveBatchK), each bundle built by factory and driven by driveBatch,
// with bundles claimed in increasing order by a GOMAXPROCS-sized worker
// pool. Trial t's randomness is keyed xrand.TrialSeed(seed, t) regardless
// of bundling, so the returned []Result (in trial order) is identical for
// every k and worker count. emit, when non-nil, receives each trial's
// Result in strict trial order the moment its lane completes — not when
// the whole bundle finishes — before RunManyLanes returns.
//
// A factory error aborts the sweep: workers stop claiming bundles once any
// error is recorded (already-claimed bundles run to completion), and the
// error of the lowest-numbered failing bundle is returned — the same error
// the single-worker path returns for the same seed and k, since bundles
// are claimed in increasing order. Trials past the failure are never
// emitted; everything emitted is final.
func RunManyLanes(g *graph.Graph, factory LaneFactory, trials, maxRounds int, seed uint64, k int, emit EmitFunc) ([]Result, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("core: trials must be positive, got %d", trials)
	}
	if k <= 0 {
		k = AdaptiveBatchK(g, trials)
	}
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(g)
	}
	// Warm the graph's shared sampling caches once, outside the race, and
	// let round sharding track any GOMAXPROCS change since the last sweep.
	g.WalkIndex()
	g.StationaryAlias()
	par.Refresh()
	results := make([]Result, trials)
	em := newOrderedEmitter(emit, results)
	bundles := (trials + k - 1) / k
	errs := make([]error, bundles)
	runBundle := func(b int) {
		t0 := b * k
		t1 := t0 + k
		if t1 > trials {
			t1 = trials
		}
		rngs := make([]*xrand.RNG, t1-t0)
		for i := range rngs {
			rngs[i] = xrand.New(xrand.TrialSeed(seed, t0+i))
		}
		bp, err := factory(rngs)
		if err != nil {
			errs[b] = err
			return
		}
		driveBatch(g, bp, maxRounds, results[t0:t1], em, t0)
	}
	workers := maxParallel()
	if workers > bundles {
		workers = bundles
	}
	if workers == 1 {
		// Single worker: run bundles inline, skipping goroutine dispatch.
		for b := 0; b < bundles; b++ {
			runBundle(b)
			if errs[b] != nil {
				return nil, errs[b]
			}
		}
		return results, nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				b := int(next.Add(1)) - 1
				if b >= bundles {
					return
				}
				runBundle(b)
				if errs[b] != nil {
					// Record and stop claiming: bundles are claimed in
					// increasing order, so every index below a failing one
					// was claimed and the first non-nil entry of errs is
					// the lowest-numbered failure — exactly what the
					// single-worker path aborts with.
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// driveBatch steps a bundle until every lane is done or hits maxRounds,
// filling out (one Result per lane): History[0] is the count after
// round-zero initialization, each stepped round appends one entry,
// AllAgentsRound is the first round with every agent informed, and a lane
// cut off at maxRounds reports Completed false. Each lane's Result is
// finalized — and reported to em as trial t0+lane — the moment the lane
// completes; lanes still running at maxRounds are finalized at the cutoff.
// This is the single round driver of the package: Run and RunManyLanes
// both land here, whatever K.
func driveBatch(g *graph.Graph, bp LaneProcess, maxRounds int, out []Result, em *orderedEmitter, t0 int) {
	k := bp.K()
	active := make([]bool, k)
	hists := make([]*[]int, k)
	// finalize freezes lane t's Result with the given round count. A lane
	// is never stepped after finalize (Step masks it out), so Messages and
	// Done are stable from here on.
	finalize := func(t, rounds int) {
		res := &out[t]
		res.Rounds = rounds
		res.Completed = bp.LaneDone(t)
		res.Messages = bp.LaneMessages(t)
		hist := *hists[t]
		res.History = append(make([]int, 0, len(hist)), hist...)
		*hists[t] = hist[:0]
		histPool.Put(hists[t])
		em.complete(t0 + t)
	}
	running := 0
	for t := 0; t < k; t++ {
		res := &out[t]
		res.Protocol = bp.Name()
		res.Graph = g.Name()
		res.Source = bp.Source()
		res.AllAgentsRound = -1
		if bp.LaneAllAgentsInformed(t) {
			res.AllAgentsRound = 0
		}
		hb := histPool.Get().(*[]int)
		*hb = append((*hb)[:0], bp.LaneInformedCount(t))
		hists[t] = hb
		if !bp.LaneDone(t) {
			active[t] = true
			running++
		} else {
			finalize(t, 0)
		}
	}
	round := 0
	for running > 0 && round < maxRounds {
		bp.Step(active)
		round++
		for t := 0; t < k; t++ {
			if !active[t] {
				continue
			}
			res := &out[t]
			*hists[t] = append(*hists[t], bp.LaneInformedCount(t))
			if res.AllAgentsRound < 0 && bp.LaneAllAgentsInformed(t) {
				res.AllAgentsRound = round
			}
			if bp.LaneDone(t) {
				active[t] = false
				running--
				finalize(t, round)
			}
		}
	}
	for t := 0; t < k; t++ {
		if active[t] {
			finalize(t, maxRounds)
		}
	}
}
