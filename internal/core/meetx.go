package core

import (
	"fmt"
	"math/bits"

	"rumor/internal/agents"
	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// MeetExchange is the agent-only protocol (Section 3): agents perform
// independent random walks; in round zero every agent standing on the
// source becomes informed; if none stands there, the first agent(s) to
// visit the source in a later round become informed, after which the source
// goes silent; thereafter the rumor passes only between agents that meet at
// a vertex, and only from agents informed in a previous round.
//
// On bipartite graphs two walks can have permanently disjoint parities, so
// the paper (and this implementation, with LazyAuto) uses lazy walks there;
// T_meetx would otherwise be infinite with positive probability.
//
// Rounds run on the deterministic parallel engine: the walk step draws
// per-(agent, round) streams, informed-agent occupancy is marked serially,
// and the meeting scan shards over the uninformed agents (reading the
// occupancy stamps only), merging finds in ascending agent-id order —
// bit-identical results for a given seed at any GOMAXPROCS.
type MeetExchange struct {
	g     *graph.Graph
	src   graph.Vertex
	walks *agents.Walks
	opts  AgentOptions

	informedA    *bitset.Set
	occInf       *epochMark // vertices holding >=1 previously-informed agent
	countA       int
	newlyA       []int
	shardA       shardBufs[int32]
	bufsA        [][]int32
	procs        int
	markFn       func(shard, lo, hi int)
	meetFn       func(shard, lo, hi int)
	sourceActive bool
	round        int
	messages     int64
}

var _ Process = (*MeetExchange)(nil)

// NewMeetExchange builds a meet-exchange process.
func NewMeetExchange(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, opts AgentOptions) (*MeetExchange, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	w, err := agents.New(g, opts.walkConfig(g, true), rng)
	if err != nil {
		return nil, fmt.Errorf("meet-exchange: %w", err)
	}
	m := &MeetExchange{
		g:         g,
		src:       s,
		walks:     w,
		opts:      opts,
		informedA: bitset.New(w.N()),
		occInf:    newEpochMark(g.N()),
	}
	m.procs = par.Procs()
	m.markFn = m.markShard
	m.meetFn = m.meetShard
	// Round zero: agents standing on the source are informed; if none, the
	// source stays active until its first visitor.
	for i := 0; i < w.N(); i++ {
		if w.Pos(i) == s {
			m.informedA.Set(i)
			m.countA++
		}
	}
	m.sourceActive = m.countA == 0
	return m, nil
}

// Name implements Process.
func (m *MeetExchange) Name() string { return "meet-exchange" }

// Round implements Process.
func (m *MeetExchange) Round() int { return m.round }

// Done implements Process: broadcast time is when every agent is informed.
func (m *MeetExchange) Done() bool { return m.countA == m.walks.N() }

// InformedCount implements Process (agents).
func (m *MeetExchange) InformedCount() int { return m.countA }

// AllAgentsInformed implements the agentTracker interface.
func (m *MeetExchange) AllAgentsInformed() bool { return m.Done() }

// Messages implements Process: one token message per agent step.
func (m *MeetExchange) Messages() int64 { return m.messages }

// Source implements the sourced interface.
func (m *MeetExchange) Source() graph.Vertex { return m.src }

// AgentCount returns |A|.
func (m *MeetExchange) AgentCount() int { return m.walks.N() }

// SourceActive reports whether the source vertex is still waiting for its
// first visitor.
func (m *MeetExchange) SourceActive() bool { return m.sourceActive }

// Step implements Process.
func (m *MeetExchange) Step() {
	m.round++
	m.walks.Step(nil)
	na := m.walks.N()
	m.messages += int64(na)
	for _, id := range m.walks.Respawned() {
		if m.informedA.Test(id) {
			m.informedA.Clear(id)
			m.countA--
		}
	}
	if m.opts.Observer != nil {
		for i := 0; i < na; i++ {
			m.opts.Observer(m.round, m.walks.Prev(i), m.walks.Pos(i))
		}
	}
	pos := m.walks.Positions()

	// Mark vertices occupied by agents informed in a previous round.
	// Marking stores one epoch value per agent, so concurrent shards may
	// write the same slot through markAtomic; queries run after the
	// barrier.
	m.occInf.next()
	aw := m.informedA.Words()
	words := len(aw)
	if m.countA > 0 && m.countA < na {
		if shards := shardsFor(words, wordGrain, m.procs); shards == 1 {
			m.markShardSerial(0, words)
		} else {
			par.DoN(shards, words, m.markFn)
		}
	}

	// Meetings: uninformed agents co-located with previously informed
	// ones, collected shard-by-shard in agent-id order.
	m.newlyA = m.newlyA[:0]
	if m.countA > 0 && m.countA < na {
		shards := shardsFor(words, wordGrain, m.procs)
		m.bufsA = m.shardA.acquire(shards)
		if shards == 1 {
			m.meetShard(0, 0, words)
		} else {
			par.DoN(shards, words, m.meetFn)
		}
		for _, buf := range m.bufsA {
			for _, i := range buf {
				m.newlyA = append(m.newlyA, int(i))
			}
		}
	}

	// Source rule: while active, every agent visiting s this round becomes
	// informed (all simultaneous visitors), then the source goes silent.
	if m.sourceActive {
		visited := false
		for i := 0; i < na; i++ {
			if pos[i] == m.src {
				visited = true
				m.newlyA = append(m.newlyA, i)
			}
		}
		if visited {
			m.sourceActive = false
		}
	}
	// Apply; newlyA may contain duplicates (meeting + source rule), so the
	// informed check guards the count.
	for _, i := range m.newlyA {
		if !m.informedA.Test(i) {
			m.informedA.Set(i)
			m.countA++
		}
	}
}

// markShard stamps the current vertex of every informed agent in bitset
// words [lo, hi), atomically (it is bound only to the sharded path).
func (m *MeetExchange) markShard(_, lo, hi int) {
	aw := m.informedA.Words()
	pos := m.walks.Positions()
	for wi := lo; wi < hi; wi++ {
		for wd := aw[wi]; wd != 0; wd &= wd - 1 {
			m.occInf.markAtomic(pos[wi<<6+bits.TrailingZeros64(wd)])
		}
	}
}

// markShardSerial is markShard with plain stores, for the single-shard
// path.
func (m *MeetExchange) markShardSerial(lo, hi int) {
	aw := m.informedA.Words()
	pos := m.walks.Positions()
	for wi := lo; wi < hi; wi++ {
		for wd := aw[wi]; wd != 0; wd &= wd - 1 {
			m.occInf.mark(pos[wi<<6+bits.TrailingZeros64(wd)])
		}
	}
}

// meetShard scans uninformed agents in bitset words [lo, hi) and collects
// those standing on a vertex visited by a previously informed agent. It
// only reads shared state; Step's serial merge commits.
func (m *MeetExchange) meetShard(shard, lo, hi int) {
	aw := m.informedA.Words()
	pos := m.walks.Positions()
	na := m.walks.N()
	buf := m.bufsA[shard]
	for wi := lo; wi < hi; wi++ {
		inv := ^aw[wi]
		if rem := na - wi<<6; rem < 64 {
			inv &= 1<<uint(rem) - 1
		}
		for ; inv != 0; inv &= inv - 1 {
			i := wi<<6 + bits.TrailingZeros64(inv)
			if m.occInf.marked(pos[i]) {
				buf = append(buf, int32(i))
			}
		}
	}
	m.bufsA[shard] = buf
}
