package core

import (
	"fmt"

	"rumor/internal/agents"
	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// MeetExchange is the agent-only protocol (Section 3): agents perform
// independent random walks; in round zero every agent standing on the
// source becomes informed; if none stands there, the first agent(s) to
// visit the source in a later round become informed, after which the source
// goes silent; thereafter the rumor passes only between agents that meet at
// a vertex, and only from agents informed in a previous round.
//
// On bipartite graphs two walks can have permanently disjoint parities, so
// the paper (and this implementation, with LazyAuto) uses lazy walks there;
// T_meetx would otherwise be infinite with positive probability.
type MeetExchange struct {
	g     *graph.Graph
	src   graph.Vertex
	walks *agents.Walks
	opts  AgentOptions

	informedA    *bitset.Set
	occInf       *agents.Occupancy // vertices holding >=1 previously-informed agent
	countA       int
	newlyA       []int
	sourceActive bool
	round        int
	messages     int64
}

var _ Process = (*MeetExchange)(nil)

// NewMeetExchange builds a meet-exchange process.
func NewMeetExchange(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, opts AgentOptions) (*MeetExchange, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	w, err := agents.New(g, opts.walkConfig(g, true), rng)
	if err != nil {
		return nil, fmt.Errorf("meet-exchange: %w", err)
	}
	m := &MeetExchange{
		g:         g,
		src:       s,
		walks:     w,
		opts:      opts,
		informedA: bitset.New(w.N()),
		occInf:    agents.NewOccupancy(g.N()),
	}
	// Round zero: agents standing on the source are informed; if none, the
	// source stays active until its first visitor.
	for i := 0; i < w.N(); i++ {
		if w.Pos(i) == s {
			m.informedA.Set(i)
			m.countA++
		}
	}
	m.sourceActive = m.countA == 0
	return m, nil
}

// Name implements Process.
func (m *MeetExchange) Name() string { return "meet-exchange" }

// Round implements Process.
func (m *MeetExchange) Round() int { return m.round }

// Done implements Process: broadcast time is when every agent is informed.
func (m *MeetExchange) Done() bool { return m.countA == m.walks.N() }

// InformedCount implements Process (agents).
func (m *MeetExchange) InformedCount() int { return m.countA }

// AllAgentsInformed implements the agentTracker interface.
func (m *MeetExchange) AllAgentsInformed() bool { return m.Done() }

// Messages implements Process: one token message per agent step.
func (m *MeetExchange) Messages() int64 { return m.messages }

// Source implements the sourced interface.
func (m *MeetExchange) Source() graph.Vertex { return m.src }

// AgentCount returns |A|.
func (m *MeetExchange) AgentCount() int { return m.walks.N() }

// SourceActive reports whether the source vertex is still waiting for its
// first visitor.
func (m *MeetExchange) SourceActive() bool { return m.sourceActive }

// Step implements Process.
func (m *MeetExchange) Step() {
	m.round++
	m.walks.Step(nil)
	m.messages += int64(m.walks.N())
	for _, id := range m.walks.Respawned() {
		if m.informedA.Test(id) {
			m.informedA.Clear(id)
			m.countA--
		}
	}
	if m.opts.Observer != nil {
		for i := 0; i < m.walks.N(); i++ {
			m.opts.Observer(m.round, m.walks.Prev(i), m.walks.Pos(i))
		}
	}
	na := m.walks.N()
	// Mark vertices occupied by agents informed in a previous round.
	m.occInf.NextRound()
	for i := 0; i < na; i++ {
		if m.informedA.Test(i) {
			m.occInf.Add(m.walks.Pos(i))
		}
	}
	// Meetings: uninformed agents co-located with previously informed ones.
	m.newlyA = m.newlyA[:0]
	for i := 0; i < na; i++ {
		if !m.informedA.Test(i) && m.occInf.Count(m.walks.Pos(i)) > 0 {
			m.newlyA = append(m.newlyA, i)
		}
	}
	// Source rule: while active, every agent visiting s this round becomes
	// informed (all simultaneous visitors), then the source goes silent.
	if m.sourceActive {
		visited := false
		for i := 0; i < na; i++ {
			if m.walks.Pos(i) == m.src {
				visited = true
				m.newlyA = append(m.newlyA, i)
			}
		}
		if visited {
			m.sourceActive = false
		}
	}
	// Apply; newlyA may contain duplicates (meeting + source rule), so the
	// informed check guards the count.
	for _, i := range m.newlyA {
		if !m.informedA.Test(i) {
			m.informedA.Set(i)
			m.countA++
		}
	}
}
