package core

import (
	"reflect"
	"sync"
	"testing"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// collectEmitter records (trial, Result) pairs and checks strict trial
// ordering at record time.
type collectEmitter struct {
	mu     sync.Mutex
	t      *testing.T
	trials []int
	res    []Result
}

func (c *collectEmitter) emit(trial int, r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if want := len(c.trials); trial != want {
		c.t.Errorf("emitted trial %d, want %d (strict order)", trial, want)
	}
	c.trials = append(c.trials, trial)
	c.res = append(c.res, r)
}

func TestRunManyEmitOrderAndEquality(t *testing.T) {
	g := graph.DoubleStar(24)
	const trials = 13
	em := &collectEmitter{t: t}
	factory := func(rng *xrand.RNG) (Process, error) {
		return NewPush(g, 1, rng, PushOptions{})
	}
	results, err := RunManyEmit(g, factory, trials, 0, 42, em.emit)
	if err != nil {
		t.Fatal(err)
	}
	if len(em.res) != trials {
		t.Fatalf("emitted %d results, want %d", len(em.res), trials)
	}
	if !reflect.DeepEqual(em.res, results) {
		t.Fatal("emitted results differ from returned results")
	}
	// Emission is a pure tap: the emit-less run returns identical results.
	plain, err := RunMany(g, factory, trials, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, results) {
		t.Fatal("RunManyEmit results differ from RunMany")
	}
}

func TestRunManyBatchedEmitOrderAndEquality(t *testing.T) {
	g := graph.Star(64)
	const trials = 19                       // 2 full bundles + partial
	for _, maxRounds := range []int{0, 3} { // completion and cutoff paths
		em := &collectEmitter{t: t}
		factory := func(rngs []*xrand.RNG) (BatchedProcess, error) {
			return NewBatchedVisitExchange(g, 0, rngs, AgentOptions{})
		}
		results, err := RunManyBatchedEmit(g, factory, trials, maxRounds, 7, em.emit)
		if err != nil {
			t.Fatal(err)
		}
		if len(em.res) != trials {
			t.Fatalf("maxRounds=%d: emitted %d results, want %d", maxRounds, len(em.res), trials)
		}
		if !reflect.DeepEqual(em.res, results) {
			t.Fatalf("maxRounds=%d: emitted results differ from returned results", maxRounds)
		}
		plain, err := RunManyBatched(g, factory, trials, maxRounds, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, results) {
			t.Fatalf("maxRounds=%d: RunManyBatchedEmit results differ from RunManyBatched", maxRounds)
		}
	}
}
