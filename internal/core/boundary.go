package core

import (
	"rumor/internal/bitset"
	"rumor/internal/graph"
)

// Boundary-active sender sets.
//
// Counter-based streams (every draw is keyed (seed, unit, round)) let the
// call protocols skip draws that provably cannot change state without
// shifting anybody else's randomness. Push skips informed senders whose
// entire neighborhood is informed; push-pull and the hybrid's exchange
// phase skip vertices with no neighbor in the opposite informed state. On
// the paper's waiting-phase families (the star's coupon-collector tail,
// the double star's bridge wait) this turns Θ(n) work per stagnant round
// into Θ(1).
//
// The structures here are shared by the serial processes and by each lane
// of the fused bundles: construction is one O(n + Σ deg(informed)) pass
// paid on boundary entry, and maintenance is O(deg(v)) per newly informed
// vertex v. Entry is triggered by the owning protocol after two
// consecutive stagnant rounds (boundaryStagnantRounds) — a single
// informing-free round also occurs in ordinary finishing tails, so the
// build is deferred until stagnation repeats.

// boundaryStagnantRounds is the number of consecutive rounds that inform
// nobody before a protocol pays the O(M) boundary construction.
const boundaryStagnantRounds = 2

// pushBoundary tracks the push protocol's boundary senders: informed
// vertices with at least one uninformed neighbor. Only they need to draw —
// any other informed vertex's send provably lands on an informed neighbor.
type pushBoundary struct {
	active    []graph.Vertex // informed senders with >= 1 uninformed neighbor
	activeIdx []int32        // position of v in active, -1 if absent
	remUninf  []int32        // per-vertex count of uninformed neighbors
}

// build constructs the boundary structures from the current informed set
// (frontier lists every informed vertex): one O(n + Σ deg(informed)) pass,
// paid once on boundary entry.
func (b *pushBoundary) build(g *graph.Graph, frontier []graph.Vertex) {
	n := g.N()
	b.active = b.active[:0]
	b.activeIdx = make([]int32, n)
	b.remUninf = make([]int32, n)
	for v := 0; v < n; v++ {
		b.activeIdx[v] = -1
		b.remUninf[v] = int32(g.Degree(graph.Vertex(v)))
	}
	for _, w := range frontier {
		for _, x := range g.Neighbors(w) {
			b.remUninf[x]--
		}
	}
	for _, w := range frontier {
		if b.remUninf[w] > 0 {
			b.activeIdx[w] = int32(len(b.active))
			b.active = append(b.active, w)
		}
	}
}

// onInformed maintains the active set after v became informed: v's
// neighbors each lose an uninformed neighbor (possibly retiring them), and
// v itself starts sending if any neighbor is still uninformed.
func (b *pushBoundary) onInformed(g *graph.Graph, v graph.Vertex) {
	for _, x := range g.Neighbors(v) {
		b.remUninf[x]--
		if b.remUninf[x] == 0 {
			if i := b.activeIdx[x]; i >= 0 {
				// Swap-remove x from active.
				last := b.active[len(b.active)-1]
				b.active[i] = last
				b.activeIdx[last] = i
				b.active = b.active[:len(b.active)-1]
				b.activeIdx[x] = -1
			}
		}
	}
	if b.remUninf[v] > 0 {
		b.activeIdx[v] = int32(len(b.active))
		b.active = append(b.active, v)
	}
}

// exchangeBoundary tracks the exchange boundary of push-pull and the
// hybrid's exchange phase: vertices with a neighbor in the opposite
// informed state, i.e. whose exchange can transfer the rumor.
type exchangeBoundary struct {
	active    []graph.Vertex // vertices with a neighbor of opposite state
	activeIdx []int32
	remUninf  []int32 // per-vertex count of uninformed neighbors
	infNbrs   []int32 // per-vertex count of informed neighbors
}

// build constructs the boundary structures from the current informed set:
// one O(n + Σ deg(informed)) pass, paid once on boundary entry.
func (b *exchangeBoundary) build(g *graph.Graph, informed *bitset.Set) {
	n := g.N()
	b.active = b.active[:0]
	b.activeIdx = make([]int32, n)
	b.remUninf = make([]int32, n)
	b.infNbrs = make([]int32, n)
	for v := 0; v < n; v++ {
		b.activeIdx[v] = -1
		b.remUninf[v] = int32(g.Degree(graph.Vertex(v)))
	}
	for v := 0; v < n; v++ {
		if informed.Test(v) {
			for _, x := range g.Neighbors(graph.Vertex(v)) {
				b.remUninf[x]--
				b.infNbrs[x]++
			}
		}
	}
	for v := 0; v < n; v++ {
		if b.isBoundary(informed, graph.Vertex(v)) {
			b.activeIdx[v] = int32(len(b.active))
			b.active = append(b.active, graph.Vertex(v))
		}
	}
}

// isBoundary reports whether v has a neighbor in the opposite informed
// state.
func (b *exchangeBoundary) isBoundary(informed *bitset.Set, v graph.Vertex) bool {
	if informed.Test(int(v)) {
		return b.remUninf[v] > 0
	}
	return b.infNbrs[v] > 0
}

// onInformed updates the active set after v became informed (informed must
// already have v set): v's neighbors each trade an uninformed neighbor for
// an informed one (activating uninformed ones that just gained their first
// informed neighbor, retiring informed ones that lost their last
// uninformed one), and v itself joins or leaves.
func (b *exchangeBoundary) onInformed(g *graph.Graph, informed *bitset.Set, v graph.Vertex) {
	for _, x := range g.Neighbors(v) {
		b.remUninf[x]--
		b.infNbrs[x]++
		b.setActive(x, b.isBoundary(informed, x))
	}
	b.setActive(v, b.isBoundary(informed, v))
}

func (b *exchangeBoundary) setActive(v graph.Vertex, want bool) {
	i := b.activeIdx[v]
	if want == (i >= 0) {
		return
	}
	if want {
		b.activeIdx[v] = int32(len(b.active))
		b.active = append(b.active, v)
		return
	}
	last := b.active[len(b.active)-1]
	b.active[i] = last
	b.activeIdx[last] = i
	b.active = b.active[:len(b.active)-1]
	b.activeIdx[v] = -1
}
