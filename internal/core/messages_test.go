package core

import (
	"testing"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// ringWithIsolated builds a 4-cycle {0,1,2,3} plus isolated vertices 4 and
// 5. Isolated vertices can never be informed, so these tests drive Step
// directly instead of running to completion.
func ringWithIsolated(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6, "ring+isolated")
	for _, e := range [][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPushPullMessagesSkipIsolated: push-pull charges one call per
// non-isolated vertex per round. Isolated vertices draw no neighbor
// (exchangeShard marks them -1), so charging all n would overcount.
func TestPushPullMessagesSkipIsolated(t *testing.T) {
	g := ringWithIsolated(t)
	p, err := NewPushPull(g, 0, xrand.New(5), PushPullOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	for r := 0; r < rounds; r++ {
		p.Step()
	}
	want := int64(rounds * 4) // 4 non-isolated vertices
	if p.Messages() != want {
		t.Errorf("push-pull messages = %d, want %d (n=%d with 2 isolated)", p.Messages(), want, g.N())
	}
}

// TestHybridMessagesSkipIsolated: the hybrid charges one exchange call per
// non-isolated vertex plus one token message per agent step per round.
func TestHybridMessagesSkipIsolated(t *testing.T) {
	g := ringWithIsolated(t)
	h, err := NewHybrid(g, 0, xrand.New(5), AgentOptions{Count: 7})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	for r := 0; r < rounds; r++ {
		h.Step()
	}
	want := int64(rounds * (4 + 7)) // 4 exchange callers + 7 agents
	if h.Messages() != want {
		t.Errorf("hybrid messages = %d, want %d", h.Messages(), want)
	}
}

// TestPushPullMessagesFullGraph: on a graph without isolated vertices the
// accounting is unchanged — one call per vertex per round.
func TestPushPullMessagesFullGraph(t *testing.T) {
	g := graph.Hypercube(5)
	p, err := NewPushPull(g, 0, xrand.New(5), PushPullOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for !p.Done() && rounds < 1000 {
		p.Step()
		rounds++
	}
	want := int64(rounds * g.N())
	if p.Messages() != want {
		t.Errorf("push-pull messages = %d, want %d", p.Messages(), want)
	}
}
