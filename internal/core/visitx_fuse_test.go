package core

import (
	"reflect"
	"testing"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// The fused-mark contract: once every agent is informed, VisitExchange
// folds the pass-1 occupancy stamping into the walk step
// (agents.StepStamped). Draws are keyed (seed, agent, round) either way,
// so the full Result — Rounds, Messages, AllAgentsRound, History — must be
// bit-identical to the separate-pass path, at any GOMAXPROCS.
func TestVisitExchangeFusedMarkEquivalence(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Star(96),
		graph.DoubleStar(48),
		graph.Hypercube(6),
	}
	opts := []AgentOptions{
		{},             // simple walks, alpha 1
		{Lazy: LazyOn}, // exercises the lazy stamp loop
		{Alpha: 2.0},   // more agents than vertices
		{Count: 5},     // sparse agents: fused regime hits late
	}
	for _, procs := range []int{1, 8} {
		for _, g := range graphs {
			for oi, o := range opts {
				run := func(fuse bool) Result {
					return atGOMAXPROCS(t, procs, func() Result {
						v, err := NewVisitExchange(g, 0, xrand.New(99), o)
						if err != nil {
							t.Fatal(err)
						}
						v.fuseMark = fuse
						return Run(g, v, 0)
					})
				}
				fused, unfused := run(true), run(false)
				if !reflect.DeepEqual(fused, unfused) {
					t.Errorf("procs=%d %s opts[%d]: fused and unfused results differ:\nfused   %+v\nunfused %+v",
						procs, g.Name(), oi, fused, unfused)
				}
				if !fused.Completed {
					t.Errorf("procs=%d %s opts[%d]: run did not complete", procs, g.Name(), oi)
				}
			}
		}
	}
}
