package core

import (
	"testing"

	"rumor/internal/agents"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func TestMultiRumorValidation(t *testing.T) {
	g := graph.Complete(8)
	rng := xrand.New(1)
	if _, err := NewMultiRumorVisitExchange(g, nil, rng, AgentOptions{}); err == nil {
		t.Error("zero rumors accepted")
	}
	if _, err := NewMultiRumorVisitExchange(g, make([]Rumor, 65), rng, AgentOptions{}); err == nil {
		t.Error("65 rumors accepted")
	}
	if _, err := NewMultiRumorVisitExchange(g, []Rumor{{Source: 99}}, rng, AgentOptions{}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := NewMultiRumorVisitExchange(g, []Rumor{{Source: 0, Round: -1}}, rng, AgentOptions{}); err == nil {
		t.Error("negative injection round accepted")
	}
}

func TestMultiRumorSingleMatchesVisitExchangeSemantics(t *testing.T) {
	// One rumor injected at round 0 behaves like plain visit-exchange: same
	// deterministic setup as TestVisitExchangeAgentInformedByVertex.
	g := graph.Star(6)
	m, err := NewMultiRumorVisitExchange(g, []Rumor{{Source: 0}}, xrand.New(5), AgentOptions{
		Placement: agents.PlaceFixed,
		Count:     1,
		Fixed:     []graph.Vertex{3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.VertexCount(0) != 1 {
		t.Fatalf("round 0 vertex count = %d", m.VertexCount(0))
	}
	m.Step() // agent moves onto informed center, picks the rumor up
	if m.VertexCount(0) != 1 {
		t.Fatalf("agent informed its own vertex in the same round: count = %d", m.VertexCount(0))
	}
	m.Step() // agent deposits the rumor on some leaf
	if m.VertexCount(0) != 2 {
		t.Fatalf("after round 2 vertex count = %d, want 2", m.VertexCount(0))
	}
}

func TestMultiRumorAllComplete(t *testing.T) {
	g := graph.Hypercube(6)
	rumors := []Rumor{
		{Source: 0, Round: 0},
		{Source: 5, Round: 0},
		{Source: 9, Round: 10},
		{Source: 33, Round: 20},
	}
	res, err := RunMultiRumor(g, rumors, xrand.New(7), AgentOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("multi-rumor run incomplete after %d rounds", res.Rounds)
	}
	for r, br := range res.BroadcastRounds {
		if br <= 0 {
			t.Errorf("rumor %d broadcast rounds = %d", r, br)
		}
	}
}

// TestMultiRumorSharedBandwidth: messages are |A| per round regardless of
// the number of rumors in flight — the paper's amortization argument.
func TestMultiRumorSharedBandwidth(t *testing.T) {
	g := graph.Hypercube(6)
	one, err := RunMultiRumor(g, []Rumor{{Source: 0}}, xrand.New(3), AgentOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	many := make([]Rumor, 16)
	for i := range many {
		many[i] = Rumor{Source: graph.Vertex(i * 4)}
	}
	multi, err := RunMultiRumor(g, many, xrand.New(3), AgentOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	perRoundOne := float64(one.Messages) / float64(one.Rounds)
	perRoundMulti := float64(multi.Messages) / float64(multi.Rounds)
	if perRoundOne != perRoundMulti {
		t.Errorf("per-round messages differ: %f vs %f (should be |A| regardless of rumors)",
			perRoundOne, perRoundMulti)
	}
}

// TestMultiRumorNoInterference: per-rumor broadcast times with 16 parallel
// rumors stay close to the single-rumor time (rumors do not slow each other
// down — they ride the same walks).
func TestMultiRumorNoInterference(t *testing.T) {
	g := graph.Hypercube(7)
	const trials = 5
	singleSum, multiSum, multiCnt := 0.0, 0.0, 0
	for seed := uint64(0); seed < trials; seed++ {
		one, err := RunMultiRumor(g, []Rumor{{Source: 0}}, xrand.New(seed), AgentOptions{}, 0)
		if err != nil || !one.Completed {
			t.Fatal("single incomplete")
		}
		singleSum += float64(one.BroadcastRounds[0])

		many := make([]Rumor, 16)
		for i := range many {
			many[i] = Rumor{Source: graph.Vertex(i * 8), Round: i}
		}
		multi, err := RunMultiRumor(g, many, xrand.New(seed), AgentOptions{}, 0)
		if err != nil || !multi.Completed {
			t.Fatal("multi incomplete")
		}
		for _, br := range multi.BroadcastRounds {
			multiSum += float64(br)
			multiCnt++
		}
	}
	singleMean := singleSum / trials
	multiMean := multiSum / float64(multiCnt)
	if multiMean > 1.5*singleMean {
		t.Errorf("parallel rumors slowed down: single %.1f vs multi %.1f rounds", singleMean, multiMean)
	}
}

func TestMultiRumorDeterministic(t *testing.T) {
	g := graph.Complete(32)
	rumors := []Rumor{{Source: 0}, {Source: 7, Round: 3}}
	a, err := RunMultiRumor(g, rumors, xrand.New(11), AgentOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiRumor(g, rumors, xrand.New(11), AgentOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.BroadcastRounds {
		if a.BroadcastRounds[r] != b.BroadcastRounds[r] {
			t.Fatal("nondeterministic multi-rumor run")
		}
	}
}

func TestMultiRumorLateInjectionTiming(t *testing.T) {
	// A rumor injected at round 50 on K_n cannot have a broadcast time
	// counted from round 0: BroadcastRounds is measured from injection.
	g := graph.Complete(64)
	res, err := RunMultiRumor(g, []Rumor{{Source: 0, Round: 50}}, xrand.New(5), AgentOptions{}, 0)
	if err != nil || !res.Completed {
		t.Fatal("incomplete")
	}
	if res.Rounds <= 50 {
		t.Errorf("total rounds %d should exceed the injection round", res.Rounds)
	}
	br := res.BroadcastRounds[0]
	if br <= 0 || br > res.Rounds-50+1 {
		t.Errorf("broadcast rounds %d not measured from injection (total %d)", br, res.Rounds)
	}
}

// TestMultiRumorSingleEquivalentToVisitExchange: with one rumor, the
// multi-rumor engine must reproduce VisitExchange *exactly* — same seed,
// same walks, same per-round counts, same broadcast time. This pins the
// two implementations to the same Section 3 semantics.
func TestMultiRumorSingleEquivalentToVisitExchange(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := graph.Hypercube(6)
		src := graph.Vertex(17)

		vx, err := NewVisitExchange(g, src, xrand.New(seed), AgentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mr, err := NewMultiRumorVisitExchange(g, []Rumor{{Source: src}}, xrand.New(seed), AgentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; ; round++ {
			if vx.InformedCount() != mr.VertexCount(0) {
				t.Fatalf("seed %d round %d: visitx %d vertices, multirumor %d",
					seed, round, vx.InformedCount(), mr.VertexCount(0))
			}
			if vx.Done() != mr.Done() {
				t.Fatalf("seed %d round %d: done flags disagree", seed, round)
			}
			if vx.Done() {
				break
			}
			vx.Step()
			mr.Step()
		}
	}
}
