package core

import (
	"testing"

	"rumor/internal/agents"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func TestConstructorValidation(t *testing.T) {
	g := graph.Cycle(5)
	rng := xrand.New(1)
	if _, err := NewPush(g, -1, rng, PushOptions{}); err == nil {
		t.Error("push: negative source accepted")
	}
	if _, err := NewPush(g, 5, rng, PushOptions{}); err == nil {
		t.Error("push: out-of-range source accepted")
	}
	if _, err := NewPush(g, 0, rng, PushOptions{FailureProb: 1}); err == nil {
		t.Error("push: FailureProb=1 accepted")
	}
	if _, err := NewPushPull(g, 0, rng, PushPullOptions{FailureProb: -0.1}); err == nil {
		t.Error("push-pull: negative FailureProb accepted")
	}
	if _, err := NewVisitExchange(g, 9, rng, AgentOptions{}); err == nil {
		t.Error("visitx: bad source accepted")
	}
	if _, err := NewMeetExchange(g, 0, rng, AgentOptions{ChurnRate: 2}); err == nil {
		t.Error("meetx: bad churn accepted")
	}
	if _, err := NewHybrid(g, 77, rng, AgentOptions{}); err == nil {
		t.Error("hybrid: bad source accepted")
	}
}

func TestAgentCountHelper(t *testing.T) {
	cases := []struct {
		n     int
		alpha float64
		want  int
	}{
		{100, 1, 100},
		{100, 0.5, 50},
		{100, 2, 200},
		{3, 0.1, 1}, // floors at 1
		{7, 1.5, 11},
	}
	for _, c := range cases {
		if got := AgentCount(c.n, c.alpha); got != c.want {
			t.Errorf("AgentCount(%d, %g) = %d, want %d", c.n, c.alpha, got, c.want)
		}
	}
}

// --- exact round-semantics tests -----------------------------------------

// TestPushSnapshotSemantics: on the path 0-1-2 with source 0, vertex 1 is
// informed in round 1 but must not push in that same round, so vertex 2
// cannot be informed before round 2.
func TestPushSnapshotSemantics(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g := graph.Path(3)
		p, err := NewPush(g, 0, xrand.New(seed), PushOptions{})
		if err != nil {
			t.Fatal(err)
		}
		p.Step()
		if got := p.InformedCount(); got != 2 {
			t.Fatalf("seed %d: after round 1, informed = %d, want exactly 2", seed, got)
		}
		if p.Done() {
			t.Fatalf("seed %d: done after one round on P3", seed)
		}
		res := Run(g, p, 0)
		if !res.Completed || res.Rounds < 2 {
			t.Fatalf("seed %d: P3 push rounds = %d (completed=%v), want >= 2", seed, res.Rounds, res.Completed)
		}
	}
}

// TestPushPullSnapshotSemantics: same structure for push-pull. On the path
// 0-1-2 with source 0, vertex 2 can learn the rumor no earlier than round 2
// because vertex 1 is informed only during round 1.
func TestPushPullSnapshotSemantics(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g := graph.Path(3)
		p, err := NewPushPull(g, 0, xrand.New(seed), PushPullOptions{})
		if err != nil {
			t.Fatal(err)
		}
		p.Step()
		if got := p.InformedCount(); got != 2 {
			t.Fatalf("seed %d: after round 1, informed = %d, want exactly 2", seed, got)
		}
	}
}

// TestPushPullStarAtMostTwoRounds is Lemma 2(b): push-pull completes the
// star in at most 2 rounds from any source, deterministically (every leaf
// has only the center to call).
func TestPushPullStarAtMostTwoRounds(t *testing.T) {
	g := graph.Star(64)
	for _, src := range []graph.Vertex{0, 1, 33} {
		for seed := uint64(0); seed < 10; seed++ {
			p, err := NewPushPull(g, src, xrand.New(seed), PushPullOptions{})
			if err != nil {
				t.Fatal(err)
			}
			res := Run(g, p, 10)
			if !res.Completed || res.Rounds > 2 {
				t.Fatalf("src %d seed %d: push-pull star rounds = %d (completed=%v), want <= 2",
					src, seed, res.Rounds, res.Completed)
			}
		}
	}
}

// TestPushStarFromCenterInformsAtMostOnePerRound: the star center can
// inform at most one new leaf per round, so push needs >= leaves rounds.
func TestPushStarFromCenterInformsAtMostOnePerRound(t *testing.T) {
	g := graph.Star(32)
	p, err := NewPush(g, 0, xrand.New(7), PushOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, p, 0)
	if !res.Completed {
		t.Fatal("push did not complete on star")
	}
	if res.Rounds < 32 {
		t.Errorf("push star rounds = %d, must be >= 32 (one leaf per round)", res.Rounds)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i]-res.History[i-1] > 1 {
			t.Fatalf("round %d informed %d new vertices on a star from center", i, res.History[i]-res.History[i-1])
		}
	}
}

// TestVisitExchangeRoundZero: agents standing on the source are informed at
// round zero; others are not.
func TestVisitExchangeRoundZero(t *testing.T) {
	g := graph.Star(8)
	v, err := NewVisitExchange(g, 0, xrand.New(3), AgentOptions{
		Placement: agents.PlaceFixed,
		Count:     3,
		Fixed:     []graph.Vertex{0, 0, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.InformedAgents(); got != 2 {
		t.Errorf("round-zero informed agents = %d, want 2", got)
	}
	if v.InformedCount() != 1 {
		t.Errorf("round-zero informed vertices = %d, want 1", v.InformedCount())
	}
}

// TestVisitExchangeAgentInformedByVertex: an uninformed agent landing on a
// vertex informed in a previous round becomes informed; next round it can
// inform a new vertex.
func TestVisitExchangeAgentInformedByVertex(t *testing.T) {
	g := graph.Star(6)
	// Source is the center; the single agent starts on a leaf. Round 1: the
	// agent (only neighbor: center) moves onto the informed center and
	// becomes informed. Round 2: it moves to some leaf and informs it.
	v, err := NewVisitExchange(g, 0, xrand.New(5), AgentOptions{
		Placement: agents.PlaceFixed,
		Count:     1,
		Fixed:     []graph.Vertex{3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.InformedAgents() != 0 {
		t.Fatal("agent informed at round zero while off-source")
	}
	v.Step()
	if v.InformedAgents() != 1 {
		t.Fatal("agent not informed after stepping onto informed center")
	}
	if v.InformedCount() != 1 {
		t.Fatalf("vertex count changed: %d (agent was informed only this round)", v.InformedCount())
	}
	v.Step()
	if v.InformedCount() != 2 {
		t.Fatalf("after round 2, informed vertices = %d, want 2", v.InformedCount())
	}
}

// TestVisitExchangeCurrentRoundVertexInformsAgent: an agent arriving at a
// vertex informed *this* round (by another informed agent) becomes informed
// too — the "previous round or the current round" clause of Section 3.
func TestVisitExchangeCurrentRoundVertexInformsAgent(t *testing.T) {
	g := graph.Star(6)
	// Source is leaf 1. Agent 0 starts on leaf 1 (informed at round zero);
	// agent 1 starts on leaf 2 (uninformed). In round 1 both move to the
	// center (their only neighbor): agent 0 informs the center, and agent 1,
	// standing on the center informed in the current round, is informed.
	v, err := NewVisitExchange(g, 1, xrand.New(5), AgentOptions{
		Placement: agents.PlaceFixed,
		Count:     2,
		Fixed:     []graph.Vertex{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	v.Step()
	if got := v.InformedAgents(); got != 2 {
		t.Fatalf("after round 1, informed agents = %d, want 2 (current-round rule)", got)
	}
	if v.InformedCount() != 2 { // leaf 1 + center
		t.Fatalf("after round 1, informed vertices = %d, want 2", v.InformedCount())
	}
}

// TestVisitExchangeVertexNeedsPreviouslyInformedAgent: an agent informed in
// the current round does not inform the vertex it sits on this round.
func TestVisitExchangeVertexNeedsPreviouslyInformedAgent(t *testing.T) {
	g := graph.Path(3) // 0 - 1 - 2
	// Source 0; the agent starts on vertex 1 uninformed and is forced (by
	// graph structure? no — vertex 1 has two neighbors) — use the star
	// again: source center, agent on a leaf. After round 1 the agent stands
	// on the center (informed round 0) and is informed, but the leaf count
	// must still be 1: its current vertex was already informed, and it
	// cannot have informed anything en route.
	_ = g
	star := graph.Star(4)
	v, err := NewVisitExchange(star, 0, xrand.New(11), AgentOptions{
		Placement: agents.PlaceFixed,
		Count:     1,
		Fixed:     []graph.Vertex{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	v.Step()
	if v.InformedCount() != 1 {
		t.Fatalf("informed vertices = %d after round 1, want 1", v.InformedCount())
	}
}

// TestMeetExchangeRoundZeroAndSourceRule: agents on the source are informed
// at round zero and the source then deactivates.
func TestMeetExchangeRoundZeroAndSourceRule(t *testing.T) {
	g := graph.Star(8)
	m, err := NewMeetExchange(g, 0, xrand.New(3), AgentOptions{
		Placement: agents.PlaceFixed,
		Count:     2,
		Fixed:     []graph.Vertex{0, 4},
		Lazy:      LazyOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.InformedCount() != 1 {
		t.Fatalf("round-zero informed agents = %d, want 1", m.InformedCount())
	}
	if m.SourceActive() {
		t.Fatal("source still active though an agent started on it")
	}
}

// TestMeetExchangeFirstVisitInforms: with no agent on the source, the first
// visitor picks up the rumor and the source then deactivates.
func TestMeetExchangeFirstVisitInforms(t *testing.T) {
	g := graph.Path(2)
	m, err := NewMeetExchange(g, 0, xrand.New(9), AgentOptions{
		Placement: agents.PlaceFixed,
		Count:     1,
		Fixed:     []graph.Vertex{1},
		Lazy:      LazyOff, // deterministic: the agent must hop to 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.SourceActive() || m.InformedCount() != 0 {
		t.Fatal("bad round-zero state")
	}
	m.Step()
	if m.InformedCount() != 1 || m.SourceActive() {
		t.Fatalf("first visit did not inform: count=%d active=%v", m.InformedCount(), m.SourceActive())
	}
	if !m.Done() {
		t.Fatal("single-agent meetx not done once the agent is informed")
	}
}

// TestMeetExchangeParityTrap: on the (bipartite) star with non-lazy walks,
// agents in opposite parity classes never meet, so the run hits MaxRounds.
// This is exactly why the paper prescribes lazy walks on bipartite graphs.
func TestMeetExchangeParityTrap(t *testing.T) {
	g := graph.Star(6)
	m, err := NewMeetExchange(g, 0, xrand.New(13), AgentOptions{
		Placement: agents.PlaceFixed,
		Count:     2,
		Fixed:     []graph.Vertex{0, 3}, // opposite parity classes
		Lazy:      LazyOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, m, 400)
	if res.Completed {
		t.Fatal("opposite-parity agents met on a bipartite graph with simple walks")
	}
	if res.Rounds != 400 {
		t.Fatalf("Rounds = %d, want the MaxRounds cutoff 400", res.Rounds)
	}
}

// TestMeetExchangeLazyAutoResolvesParity: same setup with LazyAuto picks
// lazy walks (star is bipartite) and completes.
func TestMeetExchangeLazyAutoResolvesParity(t *testing.T) {
	g := graph.Star(6)
	m, err := NewMeetExchange(g, 0, xrand.New(13), AgentOptions{
		Placement: agents.PlaceFixed,
		Count:     2,
		Fixed:     []graph.Vertex{0, 3},
		Lazy:      LazyAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, m, 0)
	if !res.Completed {
		t.Fatal("LazyAuto meet-exchange failed to complete on the star")
	}
}

// --- completion across families × protocols ------------------------------

type protoCase struct {
	name    string
	factory func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error)
}

func allProtocols() []protoCase {
	return []protoCase{
		{"push", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewPush(g, s, rng, PushOptions{})
		}},
		{"push-pull", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewPushPull(g, s, rng, PushPullOptions{})
		}},
		{"visitx", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewVisitExchange(g, s, rng, AgentOptions{})
		}},
		{"meetx", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewMeetExchange(g, s, rng, AgentOptions{})
		}},
		{"hybrid", func(g *graph.Graph, s graph.Vertex, rng *xrand.RNG) (Process, error) {
			return NewHybrid(g, s, rng, AgentOptions{})
		}},
	}
}

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := xrand.New(4242)
	rr, err := graph.RandomRegularConnected(48, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"star":        graph.Star(20),
		"doublestar":  graph.DoubleStar(10),
		"heavytree":   graph.HeavyBinaryTree(4),
		"siamesetree": graph.SiameseHeavyTree(4),
		"cyclestars":  graph.CycleStarsCliques(3),
		"complete":    graph.Complete(16),
		"cycle":       graph.Cycle(15),
		"hypercube":   graph.Hypercube(5),
		"torus":       graph.Torus2D(4, 4),
		"ringcliques": graph.RingOfCliques(3, 5),
		"cliquepath":  graph.CliquePath(3, 5),
		"randreg":     rr,
		"path":        graph.Path(12),
		"bintree":     graph.BinaryTree(4),
	}
}

// TestAllProtocolsCompleteOnAllFamilies is the workhorse integration test:
// every protocol must disseminate fully on every connected family, the
// informed history must be monotone, and agent invariants must hold.
func TestAllProtocolsCompleteOnAllFamilies(t *testing.T) {
	graphs := testGraphs(t)
	for gname, g := range graphs {
		for _, pc := range allProtocols() {
			t.Run(gname+"/"+pc.name, func(t *testing.T) {
				rng := xrand.New(xrand.Derive(777, len(gname)))
				p, err := pc.factory(g, 0, rng)
				if err != nil {
					t.Fatal(err)
				}
				res := Run(g, p, 0)
				if !res.Completed {
					t.Fatalf("did not complete in %d rounds", res.Rounds)
				}
				if res.Rounds <= 0 {
					t.Fatalf("Rounds = %d", res.Rounds)
				}
				want := g.N()
				if pc.name == "meetx" {
					want = p.(*MeetExchange).AgentCount()
				}
				if got := p.InformedCount(); got != want {
					t.Fatalf("final informed = %d, want %d", got, want)
				}
				for i := 1; i < len(res.History); i++ {
					if res.History[i] < res.History[i-1] {
						t.Fatalf("history not monotone at %d: %d -> %d", i, res.History[i-1], res.History[i])
					}
				}
				if res.Messages <= 0 {
					t.Fatal("no messages recorded")
				}
				if res.Protocol == "" || res.Graph == "" {
					t.Fatal("result missing labels")
				}
			})
		}
	}
}

// TestVisitExchangeAllAgentsAtVertexCompletion: when the last vertex is
// informed, every agent is standing on an informed vertex, so all agents
// are informed in the same round (the parenthetical of Section 3's T_visitx
// definition). AllAgentsRound can never exceed Rounds.
func TestVisitExchangeAllAgentsAtVertexCompletion(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := graph.Hypercube(5)
		v, err := NewVisitExchange(g, 0, xrand.New(seed), AgentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res := Run(g, v, 0)
		if !res.Completed {
			t.Fatal("incomplete")
		}
		if res.AllAgentsRound < 0 || res.AllAgentsRound > res.Rounds {
			t.Fatalf("seed %d: AllAgentsRound = %d, Rounds = %d", seed, res.AllAgentsRound, res.Rounds)
		}
		if !v.AllAgentsInformed() {
			t.Fatalf("seed %d: agents uninformed at vertex completion", seed)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := graph.Hypercube(6)
	for _, pc := range allProtocols() {
		run := func() Result {
			p, err := pc.factory(g, 0, xrand.New(99))
			if err != nil {
				t.Fatal(err)
			}
			return Run(g, p, 0)
		}
		a, b := run(), run()
		if a.Rounds != b.Rounds || a.Messages != b.Messages {
			t.Errorf("%s: same seed, different outcome: %d/%d vs %d/%d",
				pc.name, a.Rounds, a.Messages, b.Rounds, b.Messages)
		}
	}
}

func TestRunManyBasics(t *testing.T) {
	g := graph.Complete(32)
	results, err := RunMany(g, func(rng *xrand.RNG) (Process, error) {
		return NewPush(g, 0, rng, PushOptions{})
	}, 8, 0, 123)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if !r.Completed {
			t.Errorf("trial %d incomplete", i)
		}
	}
	// Deterministic per (seed, trial index).
	again, err := RunMany(g, func(rng *xrand.RNG) (Process, error) {
		return NewPush(g, 0, rng, PushOptions{})
	}, 8, 0, 123)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].Rounds != again[i].Rounds {
			t.Fatalf("trial %d not deterministic: %d vs %d", i, results[i].Rounds, again[i].Rounds)
		}
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	g := graph.Complete(8)
	_, err := RunMany(g, func(rng *xrand.RNG) (Process, error) {
		return NewPush(g, 99, rng, PushOptions{})
	}, 4, 0, 1)
	if err == nil {
		t.Fatal("factory error swallowed")
	}
	if _, err := RunMany(g, nil, 0, 0, 1); err == nil {
		t.Fatal("trials=0 accepted")
	}
}

func TestPushFailureProbStillCompletes(t *testing.T) {
	g := graph.Complete(16)
	p, err := NewPush(g, 0, xrand.New(21), PushOptions{FailureProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, p, 0)
	if !res.Completed {
		t.Fatal("push with failures did not complete on K16")
	}
}

// TestPushFailureSlowsDown: with 80% losses, broadcast should take longer
// on average than with reliable links (coarse check over a few seeds).
func TestPushFailureSlowsDown(t *testing.T) {
	g := graph.Complete(64)
	total := func(fp float64) int {
		sum := 0
		for seed := uint64(0); seed < 5; seed++ {
			p, err := NewPush(g, 0, xrand.New(seed), PushOptions{FailureProb: fp})
			if err != nil {
				t.Fatal(err)
			}
			sum += Run(g, p, 0).Rounds
		}
		return sum
	}
	if reliable, lossy := total(0), total(0.8); lossy <= reliable {
		t.Errorf("lossy push (%d rounds) not slower than reliable (%d)", lossy, reliable)
	}
}

func TestVisitExchangeChurnCompletes(t *testing.T) {
	g := graph.Complete(24)
	v, err := NewVisitExchange(g, 0, xrand.New(31), AgentOptions{ChurnRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, v, 0)
	if !res.Completed {
		t.Fatal("visit-exchange with churn did not complete (vertices retain the rumor)")
	}
}

// TestMeetExchangeChurnCanLoseRumor: with agent-only storage and heavy
// churn, the rumor can die out; the run must terminate at MaxRounds without
// panicking, demonstrating the robustness concern of Section 9.
func TestMeetExchangeChurnRuns(t *testing.T) {
	g := graph.Complete(24)
	m, err := NewMeetExchange(g, 0, xrand.New(31), AgentOptions{ChurnRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, m, 300)
	if res.Rounds <= 0 || res.Rounds > 300 {
		t.Fatalf("bad rounds %d", res.Rounds)
	}
}

func TestObserverSeesEveryPushMessage(t *testing.T) {
	g := graph.Complete(12)
	var calls int64
	p, err := NewPush(g, 0, xrand.New(41), PushOptions{
		Observer: func(round int, from, to graph.Vertex) {
			calls++
			if !g.HasEdge(from, to) {
				t.Fatalf("observer saw non-edge %d-%d", from, to)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, p, 0)
	if calls != res.Messages {
		t.Errorf("observer calls %d != messages %d", calls, res.Messages)
	}
}

func TestVisitExchangeObserverSeesAgentSteps(t *testing.T) {
	g := graph.Hypercube(4)
	var calls int64
	v, err := NewVisitExchange(g, 0, xrand.New(43), AgentOptions{
		Count: 10,
		Observer: func(round int, from, to graph.Vertex) {
			calls++
			if from != to && !g.HasEdge(from, to) {
				t.Fatalf("agent teleported %d -> %d", from, to)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, v, 0)
	if calls != res.Messages {
		t.Errorf("observer calls %d != messages %d", calls, res.Messages)
	}
	if res.Messages != int64(res.Rounds)*10 {
		t.Errorf("messages %d != rounds %d * 10 agents", res.Messages, res.Rounds)
	}
}

func TestHistoryStartsAtRoundZero(t *testing.T) {
	g := graph.Complete(8)
	p, err := NewPush(g, 0, xrand.New(1), PushOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, p, 0)
	if len(res.History) != res.Rounds+1 {
		t.Fatalf("history length %d, want rounds+1 = %d", len(res.History), res.Rounds+1)
	}
	if res.History[0] != 1 {
		t.Errorf("history[0] = %d, want 1 (source only)", res.History[0])
	}
	if res.History[len(res.History)-1] != g.N() {
		t.Errorf("final history = %d, want %d", res.History[len(res.History)-1], g.N())
	}
}

// TestPushInformedAtMostDoubles: |informed| can at most double each round
// under push — each informed vertex informs at most one other.
func TestPushInformedAtMostDoubles(t *testing.T) {
	g := graph.Complete(128)
	p, err := NewPush(g, 0, xrand.New(51), PushOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, p, 0)
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > 2*res.History[i-1] {
			t.Fatalf("informed more than doubled at round %d: %d -> %d", i, res.History[i-1], res.History[i])
		}
	}
}

// TestOnePerVertexPlacement exercises the "exactly one agent per vertex"
// variant the paper notes after Lemma 11.
func TestOnePerVertexPlacement(t *testing.T) {
	g := graph.Hypercube(5)
	v, err := NewVisitExchange(g, 0, xrand.New(61), AgentOptions{
		Placement: agents.PlaceOnePerVertex,
		Count:     g.N(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.AgentCount() != g.N() {
		t.Fatalf("agent count %d != n %d", v.AgentCount(), g.N())
	}
	res := Run(g, v, 0)
	if !res.Completed {
		t.Fatal("one-per-vertex visit-exchange incomplete")
	}
}

func TestDefaultMaxRounds(t *testing.T) {
	if got := DefaultMaxRounds(graph.Complete(10)); got != 64*64 {
		t.Errorf("small graph default = %d, want %d", got, 64*64)
	}
	if got := DefaultMaxRounds(graph.Complete(100)); got != 100*100 {
		t.Errorf("default = %d, want 10000", got)
	}
}

// --- coarse lemma-level checks (full sweeps live in internal/experiment) --

func meanRounds(t *testing.T, g *graph.Graph, f Factory, trials int) float64 {
	t.Helper()
	results, err := RunMany(g, f, trials, 0, 2468)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range results {
		if !r.Completed {
			t.Fatalf("trial incomplete on %s", g.Name())
		}
		sum += float64(r.Rounds)
	}
	return sum / float64(trials)
}

// TestLemma2StarOrdering: on the star, push is far slower than
// visit-exchange and meet-exchange.
func TestLemma2StarOrdering(t *testing.T) {
	g := graph.Star(256)
	src := graph.Vertex(0)
	push := meanRounds(t, g, func(rng *xrand.RNG) (Process, error) {
		return NewPush(g, src, rng, PushOptions{})
	}, 3)
	visitx := meanRounds(t, g, func(rng *xrand.RNG) (Process, error) {
		return NewVisitExchange(g, src, rng, AgentOptions{})
	}, 3)
	meetx := meanRounds(t, g, func(rng *xrand.RNG) (Process, error) {
		return NewMeetExchange(g, src, rng, AgentOptions{})
	}, 3)
	if push < 5*visitx {
		t.Errorf("push (%.1f) not much slower than visitx (%.1f) on star", push, visitx)
	}
	if push < 5*meetx {
		t.Errorf("push (%.1f) not much slower than meetx (%.1f) on star", push, meetx)
	}
}

// TestLemma3DoubleStarOrdering: on the double star, push-pull is far slower
// than the agent protocols (the bandwidth-fairness separation). The
// bridge-crossing time of push-pull is geometric with mean Θ(n), so use
// enough leaves and trials to keep the margin robust.
func TestLemma3DoubleStarOrdering(t *testing.T) {
	g := graph.DoubleStar(512)
	src, _ := g.Landmark("centerA")
	ppull := meanRounds(t, g, func(rng *xrand.RNG) (Process, error) {
		return NewPushPull(g, src, rng, PushPullOptions{})
	}, 6)
	visitx := meanRounds(t, g, func(rng *xrand.RNG) (Process, error) {
		return NewVisitExchange(g, src, rng, AgentOptions{})
	}, 6)
	if ppull < 3*visitx {
		t.Errorf("push-pull (%.1f) not much slower than visitx (%.1f) on double star", ppull, visitx)
	}
}

// TestLemma4HeavyTreeOrdering: on the heavy binary tree, visit-exchange is
// far slower than push, while meet-exchange from a leaf source stays fast.
func TestLemma4HeavyTreeOrdering(t *testing.T) {
	g := graph.HeavyBinaryTree(8) // n = 255
	leaf, _ := g.Landmark("leaf")
	push := meanRounds(t, g, func(rng *xrand.RNG) (Process, error) {
		return NewPush(g, leaf, rng, PushOptions{})
	}, 3)
	visitx := meanRounds(t, g, func(rng *xrand.RNG) (Process, error) {
		return NewVisitExchange(g, leaf, rng, AgentOptions{})
	}, 3)
	meetx := meanRounds(t, g, func(rng *xrand.RNG) (Process, error) {
		return NewMeetExchange(g, leaf, rng, AgentOptions{})
	}, 3)
	if visitx < 3*push {
		t.Errorf("visitx (%.1f) not much slower than push (%.1f) on heavy tree", visitx, push)
	}
	if visitx < 2*meetx {
		t.Errorf("visitx (%.1f) not much slower than meetx (%.1f) on heavy tree", visitx, meetx)
	}
}

// TestHybridFastEverywhere: the combined protocol should stay near the
// faster mechanism on both separation families.
func TestHybridFastEverywhere(t *testing.T) {
	star := graph.DoubleStar(128) // push-pull is slow here
	tree := graph.HeavyBinaryTree(8)
	leaf, _ := tree.Landmark("leaf")

	hybridStar := meanRounds(t, star, func(rng *xrand.RNG) (Process, error) {
		return NewHybrid(star, 0, rng, AgentOptions{})
	}, 3)
	hybridTree := meanRounds(t, tree, func(rng *xrand.RNG) (Process, error) {
		return NewHybrid(tree, leaf, rng, AgentOptions{})
	}, 3)
	if hybridStar > 60 {
		t.Errorf("hybrid on double star took %.1f rounds, expected logarithmic", hybridStar)
	}
	if hybridTree > 60 {
		t.Errorf("hybrid on heavy tree took %.1f rounds, expected logarithmic", hybridTree)
	}
}

// TestProcessConformance checks the Process contract for every protocol:
// Round advances by exactly one per Step, InformedCount never decreases,
// Messages strictly increase, and Done eventually holds.
func TestProcessConformance(t *testing.T) {
	g := graph.Hypercube(5)
	for _, pc := range allProtocols() {
		t.Run(pc.name, func(t *testing.T) {
			p, err := pc.factory(g, 0, xrand.New(3))
			if err != nil {
				t.Fatal(err)
			}
			if p.Name() == "" {
				t.Fatal("empty Name")
			}
			if p.Round() != 0 {
				t.Fatalf("fresh process at round %d", p.Round())
			}
			prevCount := p.InformedCount()
			prevMsgs := p.Messages()
			for i := 1; i <= 2000 && !p.Done(); i++ {
				p.Step()
				if p.Round() != i {
					t.Fatalf("Round = %d after %d steps", p.Round(), i)
				}
				if c := p.InformedCount(); c < prevCount {
					t.Fatalf("InformedCount decreased %d -> %d", prevCount, c)
				} else {
					prevCount = c
				}
				if m := p.Messages(); m <= prevMsgs {
					t.Fatalf("Messages did not increase at round %d", i)
				} else {
					prevMsgs = m
				}
			}
			if !p.Done() {
				t.Fatal("not done after 2000 rounds on hypercube(5)")
			}
		})
	}
}

// TestMeetExchangePairwiseRule pins the "exactly one informed in a previous
// round" meeting semantics: two uninformed agents meeting do not create
// information, and two agents informed the same round don't double count.
func TestMeetExchangePairwiseRule(t *testing.T) {
	// Complete graph K3, source 0, agents pinned at 1 and 2 (neither on the
	// source). Round 0: nobody informed, source active. Whatever moves
	// happen, InformedCount can only become positive via a source visit.
	g := graph.Complete(3)
	m, err := NewMeetExchange(g, 0, xrand.New(5), AgentOptions{
		Placement: agents.PlaceFixed,
		Count:     2,
		Fixed:     []graph.Vertex{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.InformedCount() != 0 || !m.SourceActive() {
		t.Fatal("bad initial state")
	}
	for i := 0; i < 50 && m.InformedCount() == 0; i++ {
		m.Step()
		if m.InformedCount() > 0 && m.SourceActive() {
			t.Fatal("agents informed while source still active — meeting of uninformed agents created information")
		}
	}
	if m.InformedCount() == 0 {
		t.Fatal("no agent ever visited the source on K3 in 50 rounds")
	}
}

func TestHybridObserverSeesAllChannels(t *testing.T) {
	g := graph.Complete(12)
	var calls int64
	h, err := NewHybrid(g, 0, xrand.New(9), AgentOptions{
		Count: 8,
		Observer: func(round int, from, to graph.Vertex) {
			calls++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, h, 0)
	// The observer sees agent traversals only (push-pull calls are counted
	// in Messages but the fairness accounting targets the agent channel);
	// 8 agent moves per round.
	if calls != int64(res.Rounds)*8 {
		t.Errorf("observer calls %d != rounds %d × 8 agents", calls, res.Rounds)
	}
}
