package core

import (
	"rumor/internal/graph"
)

// Batched multi-trial execution.
//
// Every figure in the paper is a distribution over many independent trials
// of one (graph, protocol, n) point, and the dominant per-trial cost is a
// hot per-unit loop (the walk step for the agent protocols, the dense
// exchange draw for push-pull and the hybrid). The fused bundles run K
// trials per round through one blocked loop over units, so the packed walk
// index and CSR neighbor array are touched by all K lanes while cache-hot
// and the per-unit loop overhead is paid once per bundle instead of once
// per trial. All five protocols have fused bundles: BatchedPush,
// BatchedPushPull, BatchedVisitExchange, BatchedMeetExchange, and
// BatchedHybrid.
//
// Since the lane refactor the batched engine is not a separate hierarchy:
// BatchedProcess is the LaneProcess interface, and RunManyBatched is
// RunManyLanes at the default bundle width — see lane.go for the engine
// and the bit-equivalence contract it enforces against the serial path.

// BatchedProcess is a bundle of K independent trials of one protocol
// stepping in lockstep. It is the LaneProcess interface under its
// historical name.
type BatchedProcess = LaneProcess

// BatchedFactory builds one batched bundle; rngs[t] is trial t's RNG,
// derived exactly as RunMany derives it.
type BatchedFactory = LaneFactory

// RunManyBatched executes `trials` independent runs through the fused
// batched engine, in bundles of up to batchK lanes, and returns results in
// trial order. Trial t's randomness is keyed xrand.TrialSeed(seed, t)
// regardless of bundling, so the results equal RunMany's for the same
// arguments. The bundle width is fixed at batchK (not adaptive) so the
// error a failing factory reports is independent of GOMAXPROCS; sweeps
// wanting the adaptive width call RunManyLanes directly, as
// internal/experiment does.
func RunManyBatched(g *graph.Graph, factory BatchedFactory, trials, maxRounds int, seed uint64) ([]Result, error) {
	return RunManyLanes(g, factory, trials, maxRounds, seed, batchK, nil)
}

// RunManyBatchedEmit is RunManyBatched with streaming: emit (when non-nil)
// receives each trial's Result in strict trial order. A lane's Result is
// finalized the moment the lane completes inside its bundle — not when the
// whole bundle finishes — so long-tail lanes don't delay the emission of
// their siblings beyond the trial-order constraint.
func RunManyBatchedEmit(g *graph.Graph, factory BatchedFactory, trials, maxRounds int, seed uint64, emit EmitFunc) ([]Result, error) {
	return RunManyLanes(g, factory, trials, maxRounds, seed, batchK, emit)
}
