package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// Batched multi-trial execution.
//
// Every figure in the paper is a distribution over many independent trials
// of one (graph, protocol, n) point, and for the agent protocols the
// dominant per-trial cost is the walk step. RunManyBatched runs trials in
// lanes of a fused engine (agents.BatchedWalks): one loop over agents
// steps K trials per round, so the packed walk index and CSR neighbor
// array are touched by all K lanes while cache-hot and the per-agent loop
// overhead is paid once per batch instead of once per trial.
//
// The contract is strict bit-equivalence: lane t draws from streams keyed
// by the trial lane (xrand.TrialSeed(seed, t)) exactly as RunMany's
// per-trial RNGs would, every lane steps through the same round structure
// Run drives, and finished lanes are masked out without shifting any
// sibling's draws (streams are keyed by round, not by draw count). For
// every protocol, seed, and K, the returned []Result is identical —
// Rounds, Messages, AllAgentsRound, and the full History per trial — to
// RunMany's output; the batched determinism tests pin this at GOMAXPROCS
// 1 and 8 for K in {1, 2, 7}.

// BatchedProcess is a bundle of K independent trials of one protocol
// stepping in lockstep. Lanes are completely independent simulations; the
// bundle exists so their hot loops can fuse.
type BatchedProcess interface {
	// Name returns the protocol name, identical to the serial Process.
	Name() string
	// K returns the number of lanes (trials) in the bundle.
	K() int
	// Step executes one synchronous round for every lane with active[t]
	// true. Inactive lanes freeze: no draws, no messages, no state change.
	Step(active []bool)
	// LaneDone reports lane t's broadcast condition.
	LaneDone(t int) bool
	// LaneInformedCount returns lane t's informed units (vertices or
	// agents, matching the serial protocol's InformedCount).
	LaneInformedCount(t int) int
	// LaneMessages returns lane t's cumulative message count.
	LaneMessages(t int) int64
	// LaneAllAgentsInformed reports whether all of lane t's agents are
	// informed.
	LaneAllAgentsInformed(t int) bool
	// Source returns the source vertex (shared by all lanes).
	Source() graph.Vertex
}

// BatchedFactory builds one batched bundle; rngs[t] is trial t's RNG,
// derived exactly as RunMany derives it.
type BatchedFactory func(rngs []*xrand.RNG) (BatchedProcess, error)

// batchK is the number of trials fused per bundle. Eight lanes amortize
// the agent-loop overhead and keep every lane's positions within a few
// cache lines per agent block; past ~8 the extra lanes mostly grow the
// working set.
const batchK = 8

// RunManyBatched executes `trials` independent runs through the fused
// batched engine, in bundles of up to batchK lanes, and returns results in
// trial order. Trial t's randomness is keyed xrand.TrialSeed(seed, t)
// regardless of bundling, so the results equal RunMany's for the same
// arguments. Bundles run on a GOMAXPROCS-sized pool (the fused rounds
// additionally shard across internal/par for large agent counts); a
// factory error stops the pool from claiming further bundles, and the
// error of the lowest-numbered failing trial is returned, matching
// RunMany's error discipline.
func RunManyBatched(g *graph.Graph, factory BatchedFactory, trials, maxRounds int, seed uint64) ([]Result, error) {
	return RunManyBatchedEmit(g, factory, trials, maxRounds, seed, nil)
}

// RunManyBatchedEmit is RunManyBatched with streaming: emit (when non-nil)
// receives each trial's Result in strict trial order. A lane's Result is
// finalized the moment the lane completes inside its bundle — not when the
// whole bundle finishes — so long-tail lanes don't delay the emission of
// their siblings beyond the trial-order constraint.
func RunManyBatchedEmit(g *graph.Graph, factory BatchedFactory, trials, maxRounds int, seed uint64, emit EmitFunc) ([]Result, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("core: trials must be positive, got %d", trials)
	}
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds(g)
	}
	g.WalkIndex()
	g.StationaryAlias()
	par.Refresh()
	results := make([]Result, trials)
	em := newOrderedEmitter(emit, results)
	bundles := (trials + batchK - 1) / batchK
	errs := make([]error, bundles)
	runBundle := func(b int) {
		t0 := b * batchK
		t1 := t0 + batchK
		if t1 > trials {
			t1 = trials
		}
		rngs := make([]*xrand.RNG, t1-t0)
		for i := range rngs {
			rngs[i] = xrand.New(xrand.TrialSeed(seed, t0+i))
		}
		bp, err := factory(rngs)
		if err != nil {
			errs[b] = err
			return
		}
		driveBatch(g, bp, maxRounds, results[t0:t1], em, t0)
	}
	workers := maxParallel()
	if workers > bundles {
		workers = bundles
	}
	if workers == 1 {
		for b := 0; b < bundles; b++ {
			runBundle(b)
			if errs[b] != nil {
				return nil, errs[b]
			}
		}
		return results, nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				b := int(next.Add(1)) - 1
				if b >= bundles {
					return
				}
				runBundle(b)
				if errs[b] != nil {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// driveBatch steps a bundle until every lane is done or hits maxRounds,
// filling out (one Result per lane) exactly as Run fills a serial Result:
// History[0] is the count after round-zero initialization, each stepped
// round appends one entry, AllAgentsRound is the first round with every
// agent informed, and a lane cut off at maxRounds reports Completed false.
// Each lane's Result is finalized — and reported to em as trial t0+lane —
// the moment the lane completes; lanes still running at maxRounds are
// finalized at the cutoff.
func driveBatch(g *graph.Graph, bp BatchedProcess, maxRounds int, out []Result, em *orderedEmitter, t0 int) {
	k := bp.K()
	active := make([]bool, k)
	hists := make([]*[]int, k)
	// finalize freezes lane t's Result with the given round count. A lane
	// is never stepped after finalize (Step masks it out), so Messages and
	// Done are stable from here on.
	finalize := func(t, rounds int) {
		res := &out[t]
		res.Rounds = rounds
		res.Completed = bp.LaneDone(t)
		res.Messages = bp.LaneMessages(t)
		hist := *hists[t]
		res.History = append(make([]int, 0, len(hist)), hist...)
		*hists[t] = hist[:0]
		histPool.Put(hists[t])
		em.complete(t0 + t)
	}
	running := 0
	for t := 0; t < k; t++ {
		res := &out[t]
		res.Protocol = bp.Name()
		res.Graph = g.Name()
		res.Source = bp.Source()
		res.AllAgentsRound = -1
		if bp.LaneAllAgentsInformed(t) {
			res.AllAgentsRound = 0
		}
		hb := histPool.Get().(*[]int)
		*hb = append((*hb)[:0], bp.LaneInformedCount(t))
		hists[t] = hb
		if !bp.LaneDone(t) {
			active[t] = true
			running++
		} else {
			finalize(t, 0)
		}
	}
	round := 0
	for running > 0 && round < maxRounds {
		bp.Step(active)
		round++
		for t := 0; t < k; t++ {
			if !active[t] {
				continue
			}
			res := &out[t]
			*hists[t] = append(*hists[t], bp.LaneInformedCount(t))
			if res.AllAgentsRound < 0 && bp.LaneAllAgentsInformed(t) {
				res.AllAgentsRound = round
			}
			if bp.LaneDone(t) {
				active[t] = false
				running--
				finalize(t, round)
			}
		}
	}
	for t := 0; t < k; t++ {
		if active[t] {
			finalize(t, maxRounds)
		}
	}
}
