package core

import (
	"fmt"
	"math/bits"

	"rumor/internal/agents"
	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// Batched visit-exchange and meet-exchange bundles. Each lane carries the
// full per-trial protocol state (informed sets, counts, occupancy marks);
// the walk step is fused across lanes by agents.BatchedWalks, and the
// visit-exchange informing passes are fused into cross-lane sweeps: one
// pass-major sweep per stage (occupancy stamping, uninformed-vertex sweep,
// agent pickup) over all active lanes, instead of each lane running its
// full pass sequence in isolation. Lanes in the all-agents-informed regime
// — the Ω(n) broadcast tails of the paper's star-like families, where the
// stamping pass used to dominate batched rounds — skip the stamping stage
// entirely: their marks are written by the fused walk step itself
// (agents.BatchedWalks.StepStamped), one store per agent in the same pass
// that writes the position. On multi-core the sweeps shard across lanes,
// since lanes touch only their own state; every stage keeps exactly the
// serial pass semantics, so every lane's informed sets evolve
// bit-identically to a serial trial with the same trial RNG.

// visitLane is one trial's visit-exchange state.
type visitLane struct {
	informedV *bitset.Set
	informedA *bitset.Set
	countV    int
	countA    int
	uninfV    []graph.Vertex
	occInf    *epochMark
	messages  int64
}

// BatchedVisitExchange runs K visit-exchange trials in fused lockstep.
type BatchedVisitExchange struct {
	g     *graph.Graph
	src   graph.Vertex
	walks *agents.BatchedWalks
	lanes []visitLane

	activeIDs []int
	// stamps/epochs/fused carry the per-round StepStamped wiring: lane t
	// is fused when every one of its agents is informed, in which case the
	// walk step stamps its occupancy and the stamping stage skips it.
	stamps [][]uint32
	epochs []uint32
	fused  []bool
	procs  int
	laneFn func(shard, lo, hi int)

	// fuseMark enables folding fused lanes' occupancy stamping into the
	// walk step. On by default; the equivalence test clears it to pin the
	// fused path against the separate-stage path.
	fuseMark bool
}

var _ BatchedProcess = (*BatchedVisitExchange)(nil)

// NewBatchedVisitExchange builds a K = len(rngs) lane visit-exchange
// bundle. Lane t consumes rngs[t] exactly as NewVisitExchange would, so
// lane t replays serial trial t. Options requiring the serial path (churn,
// observers) are rejected; callers fall back to RunMany.
func NewBatchedVisitExchange(g *graph.Graph, s graph.Vertex, rngs []*xrand.RNG, opts AgentOptions) (*BatchedVisitExchange, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		return nil, fmt.Errorf("visit-exchange: batched runs do not support observers")
	}
	w, err := agents.NewBatched(g, opts.walkConfig(g, false), rngs)
	if err != nil {
		return nil, fmt.Errorf("visit-exchange: %w", err)
	}
	v := &BatchedVisitExchange{g: g, src: s, walks: w, lanes: make([]visitLane, len(rngs))}
	v.procs = par.Procs()
	v.laneFn = v.laneShard
	v.fuseMark = true
	v.stamps = make([][]uint32, len(rngs))
	v.epochs = make([]uint32, len(rngs))
	v.fused = make([]bool, len(rngs))
	// The initial uninformed-vertex list is the same for every lane; build
	// it once and copy.
	uninf := make([]graph.Vertex, 0, g.N()-1)
	for u := 0; u < g.N(); u++ {
		if graph.Vertex(u) != s {
			uninf = append(uninf, graph.Vertex(u))
		}
	}
	for t := range v.lanes {
		L := &v.lanes[t]
		L.informedV = bitset.New(g.N())
		L.informedA = bitset.New(w.N())
		L.countV = 1
		L.occInf = newEpochMark(g.N())
		L.uninfV = append(make([]graph.Vertex, 0, g.N()-1), uninf...)
		L.informedV.Set(int(s))
		for i, p := range w.Lane(t) {
			if p == s {
				L.informedA.Set(i)
				L.countA++
			}
		}
	}
	return v, nil
}

// Name implements BatchedProcess.
func (v *BatchedVisitExchange) Name() string { return "visit-exchange" }

// K implements BatchedProcess.
func (v *BatchedVisitExchange) K() int { return len(v.lanes) }

// Source implements BatchedProcess.
func (v *BatchedVisitExchange) Source() graph.Vertex { return v.src }

// LaneDone implements BatchedProcess.
func (v *BatchedVisitExchange) LaneDone(t int) bool { return v.lanes[t].countV == v.g.N() }

// LaneInformedCount implements BatchedProcess (vertices).
func (v *BatchedVisitExchange) LaneInformedCount(t int) int { return v.lanes[t].countV }

// LaneMessages implements BatchedProcess.
func (v *BatchedVisitExchange) LaneMessages(t int) int64 { return v.lanes[t].messages }

// LaneAllAgentsInformed implements BatchedProcess.
func (v *BatchedVisitExchange) LaneAllAgentsInformed(t int) bool {
	return v.lanes[t].countA == v.walks.N()
}

// Step implements BatchedProcess: one fused walk round — stamping the
// occupancy of lanes whose agents are all informed in the same pass — then
// the informing stages as cross-lane sweeps over the active lanes.
func (v *BatchedVisitExchange) Step(active []bool) {
	n := v.g.N()
	na := v.walks.N()
	anyFused := false
	for t := range v.lanes {
		v.stamps[t] = nil
		v.fused[t] = false
		if active != nil && !active[t] {
			continue
		}
		L := &v.lanes[t]
		if v.fuseMark && L.countA == na && L.countV < n {
			// Every agent is informed (a permanent state: batched lanes
			// have no churn), so "stamp every informed agent's position"
			// is exactly "stamp every agent's destination" — the walk step
			// does it in the pass that writes positions.
			L.occInf.next()
			v.stamps[t] = L.occInf.stamp
			v.epochs[t] = L.occInf.epoch
			v.fused[t] = true
			anyFused = true
		}
	}
	if anyFused {
		v.walks.StepStamped(active, v.stamps, v.epochs)
	} else {
		v.walks.Step(active)
	}
	v.activeIDs = activeLanes(v.activeIDs[:0], active, len(v.lanes))
	runLanes(v.laneFn, len(v.activeIDs), v.procs)
}

// laneShard runs the informing passes for active lanes [lo, hi) as one
// cross-lane sweep per stage — all lanes' occupancy stamping, then all
// lanes' uninformed-vertex sweeps, then all lanes' agent pickups — rather
// than each lane running its full pass sequence in isolation. Stages keep
// the serial per-lane pass order (a lane's sweep always sees its own
// completed stamping) while each sweep runs one uniform access pattern
// across the shard's lanes; with StepStamped fusion the first stage is
// empty for lanes in the all-informed regime.
func (v *BatchedVisitExchange) laneShard(_, lo, hi int) {
	ids := v.activeIDs[lo:hi]
	for _, t := range ids {
		v.markLane(t)
	}
	for _, t := range ids {
		v.sweepLane(t)
	}
	for _, t := range ids {
		v.pickupLane(t)
	}
}

// markLane is pass 1's stamping for lane t: mark the position of every
// agent informed in a previous round (one store per agent beats a probe
// per agent: the stamp retires without a dependent branch). Fused lanes
// were stamped inside the walk step and are skipped. It also charges the
// round's token messages, being the first stage of the round.
func (v *BatchedVisitExchange) markLane(t int) {
	L := &v.lanes[t]
	pos := v.walks.Lane(t)
	na := len(pos)
	L.messages += int64(na)
	if v.fused[t] || L.countA == 0 || L.countV == v.g.N() {
		return
	}
	L.occInf.next()
	if L.countA == na {
		stamp, epoch := L.occInf.stamp, L.occInf.epoch
		for _, p := range pos {
			stamp[p] = epoch
		}
		return
	}
	for wi, wd := range L.informedA.Words() {
		for ; wd != 0; wd &= wd - 1 {
			L.occInf.mark(pos[wi<<6+bits.TrailingZeros64(wd)])
		}
	}
}

// sweepLane is pass 1's commit for lane t: sweep the uninformed vertex
// list for stamped entries, swap-removing each one it informs.
func (v *BatchedVisitExchange) sweepLane(t int) {
	L := &v.lanes[t]
	if L.countA == 0 || L.countV == v.g.N() {
		return
	}
	list := L.uninfV
	for k := 0; k < len(list); {
		p := list[k]
		if L.occInf.marked(p) {
			L.informedV.Set(int(p))
			L.countV++
			list[k] = list[len(list)-1]
			list = list[:len(list)-1]
			continue // re-examine the swapped-in entry
		}
		k++
	}
	L.uninfV = list
}

// pickupLane is pass 2 for lane t: agents on a vertex informed in a
// previous or this round become informed (see pickupAgents).
func (v *BatchedVisitExchange) pickupLane(t int) {
	L := &v.lanes[t]
	pos := v.walks.Lane(t)
	if L.countA == len(pos) {
		return
	}
	L.countA = pickupAgents(L.informedA, L.countA, L.informedV, pos)
}

// meetLane is one trial's meet-exchange state.
type meetLane struct {
	informedA    *bitset.Set
	countA       int
	occInf       *epochMark
	sourceActive bool
	newly        []int
	messages     int64
}

// BatchedMeetExchange runs K meet-exchange trials in fused lockstep.
type BatchedMeetExchange struct {
	g     *graph.Graph
	src   graph.Vertex
	walks *agents.BatchedWalks
	lanes []meetLane

	activeIDs []int
	procs     int
	laneFn    func(shard, lo, hi int)
}

var _ BatchedProcess = (*BatchedMeetExchange)(nil)

// NewBatchedMeetExchange builds a K = len(rngs) lane meet-exchange bundle;
// lane t replays serial trial t (see NewBatchedVisitExchange).
func NewBatchedMeetExchange(g *graph.Graph, s graph.Vertex, rngs []*xrand.RNG, opts AgentOptions) (*BatchedMeetExchange, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		return nil, fmt.Errorf("meet-exchange: batched runs do not support observers")
	}
	w, err := agents.NewBatched(g, opts.walkConfig(g, true), rngs)
	if err != nil {
		return nil, fmt.Errorf("meet-exchange: %w", err)
	}
	m := &BatchedMeetExchange{g: g, src: s, walks: w, lanes: make([]meetLane, len(rngs))}
	m.procs = par.Procs()
	m.laneFn = m.laneShard
	for t := range m.lanes {
		L := &m.lanes[t]
		L.informedA = bitset.New(w.N())
		L.occInf = newEpochMark(g.N())
		for i, p := range w.Lane(t) {
			if p == s {
				L.informedA.Set(i)
				L.countA++
			}
		}
		L.sourceActive = L.countA == 0
	}
	return m, nil
}

// Name implements BatchedProcess.
func (m *BatchedMeetExchange) Name() string { return "meet-exchange" }

// K implements BatchedProcess.
func (m *BatchedMeetExchange) K() int { return len(m.lanes) }

// Source implements BatchedProcess.
func (m *BatchedMeetExchange) Source() graph.Vertex { return m.src }

// LaneDone implements BatchedProcess: every agent informed.
func (m *BatchedMeetExchange) LaneDone(t int) bool { return m.lanes[t].countA == m.walks.N() }

// LaneInformedCount implements BatchedProcess (agents).
func (m *BatchedMeetExchange) LaneInformedCount(t int) int { return m.lanes[t].countA }

// LaneMessages implements BatchedProcess.
func (m *BatchedMeetExchange) LaneMessages(t int) int64 { return m.lanes[t].messages }

// LaneAllAgentsInformed implements BatchedProcess.
func (m *BatchedMeetExchange) LaneAllAgentsInformed(t int) bool { return m.LaneDone(t) }

// Step implements BatchedProcess.
func (m *BatchedMeetExchange) Step(active []bool) {
	m.walks.Step(active)
	m.activeIDs = activeLanes(m.activeIDs[:0], active, len(m.lanes))
	runLanes(m.laneFn, len(m.activeIDs), m.procs)
}

// laneShard runs the meeting pass for active lanes [lo, hi).
func (m *BatchedMeetExchange) laneShard(_, lo, hi int) {
	for _, t := range m.activeIDs[lo:hi] {
		m.stepLane(t)
	}
}

// stepLane applies one round of meet-exchange informing to lane t,
// mirroring the serial MeetExchange.Step.
func (m *BatchedMeetExchange) stepLane(t int) {
	L := &m.lanes[t]
	pos := m.walks.Lane(t)
	na := len(pos)
	L.messages += int64(na)

	// Mark vertices occupied by agents informed in a previous round, then
	// collect uninformed agents meeting them.
	L.occInf.next()
	L.newly = L.newly[:0]
	if L.countA > 0 && L.countA < na {
		aw := L.informedA.Words()
		for wi, wd := range aw {
			for ; wd != 0; wd &= wd - 1 {
				L.occInf.mark(pos[wi<<6+bits.TrailingZeros64(wd)])
			}
		}
		for wi := range aw {
			inv := ^aw[wi]
			if rem := na - wi<<6; rem < 64 {
				inv &= 1<<uint(rem) - 1
			}
			for ; inv != 0; inv &= inv - 1 {
				i := wi<<6 + bits.TrailingZeros64(inv)
				if L.occInf.marked(pos[i]) {
					L.newly = append(L.newly, i)
				}
			}
		}
	}

	// Source rule: while active, every agent visiting s this round becomes
	// informed, then the source goes silent.
	if L.sourceActive {
		visited := false
		for i := 0; i < na; i++ {
			if pos[i] == m.src {
				visited = true
				L.newly = append(L.newly, i)
			}
		}
		if visited {
			L.sourceActive = false
		}
	}
	for _, i := range L.newly {
		if !L.informedA.Test(i) {
			L.informedA.Set(i)
			L.countA++
		}
	}
}

// activeLanes appends the indices of active lanes (all k when active is
// nil) to dst and returns it.
func activeLanes(dst []int, active []bool, k int) []int {
	for t := 0; t < k; t++ {
		if active == nil || active[t] {
			dst = append(dst, t)
		}
	}
	return dst
}

// runLanes dispatches n lane-informing tasks: inline when single-lane or
// single-processor, sharded over internal/par otherwise. Lanes write only
// their own state, so any shard split is deterministic.
func runLanes(fn func(shard, lo, hi int), n, procs int) {
	if n == 0 {
		return
	}
	if procs == 1 || n == 1 {
		fn(0, 0, n)
		return
	}
	par.Do(n, 1, fn)
}
