package core

import (
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// Sharding support for the deterministic parallel round engine.
//
// Every protocol round is split into a parallel phase and a serial merge:
// the parallel phase draws randomness from counter-based streams keyed
// (protocol seed, unit id, round) — so no draw depends on execution order —
// and writes only to per-unit slots or per-shard append buffers; the merge
// then applies shard outputs in ascending shard order, which, shards being
// contiguous ascending unit ranges, realizes the paper's "ties broken by
// agent id" convention. Results are therefore bit-identical for a given
// seed at any GOMAXPROCS.

// Shard grains: minimum units per shard so dispatch never dominates.
const (
	// senderGrain is for per-vertex draw loops (push, push-pull, hybrid).
	senderGrain = 1024
	// agentGrain is for per-agent scan loops (visit/meet-exchange passes).
	agentGrain = 2048
	// wordGrain is agentGrain in 64-bit bitset words.
	wordGrain = agentGrain / 64
)

// shardsFor computes the shard count for a round phase, with the
// single-processor case short-circuited so per-round calls cost one
// compare (par.Shards performs an integer division). procs is the
// processor count cached at process construction; a mid-run GOMAXPROCS
// change only affects processes built afterwards, never results.
func shardsFor(n, grain, procs int) int {
	if procs == 1 || n <= grain {
		return 1
	}
	return par.Shards(n, grain)
}

// NOTE: the informed/uninformed bitset-word scans (visitx markShard +
// pass2Shard, meetx markShard + meetShard, hybrid depositShard +
// pickupShard) deliberately repeat the same loop shape — including the
// ghost-bit mask `inv &= 1<<rem - 1` for the final partial word — rather
// than share a predicate-closure helper: an indirect call per agent would
// land in the engine's hottest loops. A fix to the masking or the
// atomic-store discipline must be applied at every site.

// shardBufs is a set of per-shard append buffers reused across rounds, so
// steady-state stepping allocates nothing.
type shardBufs[T any] struct {
	bufs [][]T
}

// acquire returns `shards` empty buffers, retaining backing arrays.
func (s *shardBufs[T]) acquire(shards int) [][]T {
	for len(s.bufs) < shards {
		s.bufs = append(s.bufs, nil)
	}
	bs := s.bufs[:shards]
	for i := range bs {
		bs[i] = bs[i][:0]
	}
	return bs
}

// neighborSampler resolves uniform neighbor draws against the graph's
// packed walk index when available (single load + AND or multiply-shift),
// falling back to the CSR slices — with identical draw consumption — for
// graphs too large to pack.
type neighborSampler struct {
	g    *graph.Graph
	idx  []uint64
	nbrs []graph.Vertex
}

func newNeighborSampler(g *graph.Graph) neighborSampler {
	return neighborSampler{g: g, idx: g.WalkIndex(), nbrs: g.NeighborsRaw()}
}

// sample returns a uniform neighbor of u, consuming exactly one draw from
// s — except for degree-1 vertices (no draw) and isolated vertices, which
// return -1 (no call can be made).
func (ns *neighborSampler) sample(u graph.Vertex, s *xrand.Stream) graph.Vertex {
	if ns.idx != nil {
		word := ns.idx[u]
		if graph.WalkDegreeOne(word) {
			return graph.WalkOnlyNeighbor(word, ns.nbrs)
		}
		if graph.WalkDegreeZero(word) {
			return -1
		}
		return graph.WalkTarget(word, s.Uint64(), ns.nbrs)
	}
	nb := ns.g.Neighbors(u)
	if len(nb) == 1 {
		return nb[0]
	}
	if len(nb) == 0 {
		return -1
	}
	return nb[xrand.ReduceDeg(s.Uint64(), len(nb))]
}
