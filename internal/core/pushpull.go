package core

import (
	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// PushPullOptions configures the push-pull protocol.
type PushPullOptions struct {
	// FailureProb is the probability that an exchange silently fails.
	FailureProb float64
	// Observer, if non-nil, receives every neighbor call; it forces the
	// serial all-vertices path but changes no random draw or outcome.
	Observer MoveObserver
}

// PushPull is the bidirectional rumor-spreading protocol of Karp et al.
// (Section 3): in every round, every vertex (informed or not) samples a
// uniform random neighbor, and if exactly one endpoint of the call was
// informed before the round, the other becomes informed.
//
// Vertex u's round-t draws come from the stream keyed (seed, u, t); shards
// draw concurrently and the newly informed set is committed in a serial
// merge, so results are bit-identical for a given seed at any GOMAXPROCS.
//
// Counter-based streams let the engine restrict draws to "boundary"
// vertices — those with a neighbor in the opposite informed state — since
// any other vertex's exchange provably transfers nothing and skipping its
// draw shifts nobody else's randomness. The protocol starts dense (all n
// vertices draw) and switches to boundary mode on the first round that
// informs nobody: on the double star that turns the Ω(n) bridge-crossing
// wait from Θ(n) work per round into Θ(1). Messages count one call per
// non-isolated vertex per round — an isolated vertex has no neighbor to
// call (its exchange draw is the no-call marker -1), so it is not charged.
type PushPull struct {
	g        *graph.Graph
	src      graph.Vertex
	opts     PushPullOptions
	seed     uint64
	failTh   uint64
	sampler  neighborSampler
	informed *bitset.Set
	callers  int64 // non-isolated vertices: one message each per round

	// Boundary bookkeeping (see boundary.go), built lazily after repeated
	// stagnant rounds (never in observer mode).
	boundary bool
	stagnant int
	bnd      exchangeBoundary

	procs    int
	targets  []graph.Vertex // per-slot draw results; -1 marks a failure
	srcs     []graph.Vertex // per-slot sender (boundary mode)
	pending  []graph.Vertex
	denseFn  func(shard, lo, hi int)
	activeFn func(shard, lo, hi int)
	count    int
	round    int
	messages int64
}

var _ Process = (*PushPull)(nil)

// NewPushPull builds a push-pull process with the rumor on s in round zero.
// It consumes exactly one value from rng (the protocol's stream seed).
func NewPushPull(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, opts PushPullOptions) (*PushPull, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	if opts.FailureProb < 0 || opts.FailureProb >= 1 {
		return nil, errFailureProb(opts.FailureProb)
	}
	p := &PushPull{
		g:        g,
		src:      s,
		opts:     opts,
		seed:     rng.Uint64(),
		failTh:   xrand.BernoulliThreshold(opts.FailureProb),
		sampler:  newNeighborSampler(g),
		informed: bitset.New(g.N()),
		callers:  callerCount(g),
		count:    1,
	}
	p.procs = par.Procs()
	p.denseFn = p.drawDenseShard
	p.activeFn = p.drawActiveShard
	p.informed.Set(int(s))
	return p, nil
}

// enterBoundary builds the boundary structures from the current informed
// set (see exchangeBoundary.build): one O(n + Σ deg(informed)) pass, paid
// once.
func (p *PushPull) enterBoundary() {
	p.bnd.build(p.g, p.informed)
	if p.srcs == nil {
		p.srcs = make([]graph.Vertex, p.g.N())
	}
	p.boundary = true
}

// Name implements Process.
func (p *PushPull) Name() string { return "push-pull" }

// Round implements Process.
func (p *PushPull) Round() int { return p.round }

// Done implements Process.
func (p *PushPull) Done() bool { return p.count == p.g.N() }

// InformedCount implements Process.
func (p *PushPull) InformedCount() int { return p.count }

// Messages implements Process.
func (p *PushPull) Messages() int64 { return p.messages }

// Source implements the sourced interface.
func (p *PushPull) Source() graph.Vertex { return p.src }

// Step implements Process. Informedness is evaluated against the state
// before the round: a vertex informed during round t neither pushes nor can
// be pulled from until round t+1, exactly as Section 3 specifies.
func (p *PushPull) Step() {
	p.round++
	p.pending = p.pending[:0]
	n := p.g.N()
	p.messages += p.callers // every non-isolated vertex calls a neighbor
	switch {
	case p.opts.Observer != nil:
		p.stepSerial(n)
	case p.boundary:
		m := len(p.bnd.active)
		if m == 0 {
			return
		}
		if shardsFor(m, senderGrain, p.procs) == 1 {
			p.drawActiveShard(0, 0, m)
		} else {
			par.Do(m, senderGrain, p.activeFn)
		}
		// Collect against the pre-round informed state (the active list
		// itself mutates only in the commit below, hence srcs).
		p.pending = collectExchangeActive(p.informed, p.srcs[:m], p.targets[:m], p.pending)
	default:
		if p.targets == nil {
			p.targets = make([]graph.Vertex, n)
		}
		if shardsFor(n, senderGrain, p.procs) == 1 {
			p.drawDenseShard(0, 0, n)
		} else {
			par.Do(n, senderGrain, p.denseFn)
		}
		p.pending = collectExchangeDense(p.informed, p.targets[:n], p.pending)
	}
	// Commit.
	countBefore := p.count
	p.count = commitExchange(p.g, p.informed, &p.bnd, p.boundary, p.pending, p.count)
	if !p.boundary && p.opts.Observer == nil {
		if p.count != countBefore {
			p.stagnant = 0
		} else if !p.Done() {
			// Consecutive stagnant rounds signal a waiting phase (e.g.
			// the double-star bridge); require two in a row before paying
			// the O(M) boundary build so ordinary finishing tails skip it.
			if p.stagnant++; p.stagnant >= boundaryStagnantRounds {
				p.enterBoundary()
			}
		}
	}
}

// drawDenseShard draws the round's neighbor choice (and failure coin) for
// vertices [lo, hi) into per-vertex scratch slots. Vertex ids are
// consecutive here, so the stream base advances incrementally (one add per
// vertex) and the packed-index sampling is inlined, exactly as in the walk
// inner loop.
func (p *PushPull) drawDenseShard(_, lo, hi int) {
	round := uint64(p.round)
	idx, nbrs := p.sampler.idx, p.sampler.nbrs
	if idx == nil || p.failTh != 0 {
		for u := lo; u < hi; u++ {
			s := xrand.NewStream(p.seed, uint64(u), round)
			v := p.sampler.sample(graph.Vertex(u), &s)
			if p.failTh != 0 && s.Uint64() < p.failTh {
				v = -1
			}
			p.targets[u] = v
		}
		return
	}
	targets := p.targets[:hi]
	base := xrand.MixBase(p.seed, uint64(lo), round)
	for u := lo; u < hi; u++ {
		word := idx[u]
		if graph.WalkDegreeOne(word) {
			targets[u] = graph.WalkOnlyNeighbor(word, nbrs)
		} else if graph.WalkDegreeZero(word) {
			targets[u] = -1 // isolated vertex: no call
		} else {
			targets[u] = graph.WalkTarget(word, xrand.Mix(base), nbrs)
		}
		base += xrand.UnitStride
	}
}

// drawActiveShard draws for active-list slots [lo, hi), recording the
// sender alongside because the active list mutates during the commit
// phase.
func (p *PushPull) drawActiveShard(_, lo, hi int) {
	drawExchangeActive(p.sampler, p.seed, p.bnd.active[lo:hi], p.srcs[lo:hi], p.targets[lo:hi], uint64(p.round), p.failTh)
}

// stepSerial draws every vertex's stream one at a time so the observer
// sees all n neighbor calls, in vertex order.
func (p *PushPull) stepSerial(n int) {
	round := uint64(p.round)
	for u := 0; u < n; u++ {
		s := xrand.NewStream(p.seed, uint64(u), round)
		v := p.sampler.sample(graph.Vertex(u), &s)
		if v < 0 {
			continue // isolated vertex: no call to observe
		}
		p.opts.Observer(p.round, graph.Vertex(u), v)
		if p.failTh != 0 && s.Uint64() < p.failTh {
			continue
		}
		iu, iv := p.informed.Test(u), p.informed.Test(int(v))
		switch {
		case iu && !iv:
			p.pending = append(p.pending, v)
		case !iu && iv:
			p.pending = append(p.pending, graph.Vertex(u))
		}
	}
}
