package core

import (
	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// PushPullOptions configures the push-pull protocol.
type PushPullOptions struct {
	// FailureProb is the probability that an exchange silently fails.
	FailureProb float64
	// Observer, if non-nil, receives every neighbor call.
	Observer MoveObserver
}

// PushPull is the bidirectional rumor-spreading protocol of Karp et al.
// (Section 3): in every round, every vertex (informed or not) samples a
// uniform random neighbor, and if exactly one endpoint of the call was
// informed before the round, the other becomes informed.
type PushPull struct {
	g        *graph.Graph
	rng      *xrand.RNG
	src      graph.Vertex
	opts     PushPullOptions
	informed *bitset.Set
	pending  []graph.Vertex
	count    int
	round    int
	messages int64
}

var _ Process = (*PushPull)(nil)

// NewPushPull builds a push-pull process with the rumor on s in round zero.
func NewPushPull(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, opts PushPullOptions) (*PushPull, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	if opts.FailureProb < 0 || opts.FailureProb >= 1 {
		return nil, errFailureProb(opts.FailureProb)
	}
	p := &PushPull{
		g:        g,
		rng:      rng,
		src:      s,
		opts:     opts,
		informed: bitset.New(g.N()),
		count:    1,
	}
	p.informed.Set(int(s))
	return p, nil
}

// Name implements Process.
func (p *PushPull) Name() string { return "push-pull" }

// Round implements Process.
func (p *PushPull) Round() int { return p.round }

// Done implements Process.
func (p *PushPull) Done() bool { return p.count == p.g.N() }

// InformedCount implements Process.
func (p *PushPull) InformedCount() int { return p.count }

// Messages implements Process.
func (p *PushPull) Messages() int64 { return p.messages }

// Source implements the sourced interface.
func (p *PushPull) Source() graph.Vertex { return p.src }

// Step implements Process. Informedness is evaluated against the state
// before the round: a vertex informed during round t neither pushes nor can
// be pulled from until round t+1, exactly as Section 3 specifies.
func (p *PushPull) Step() {
	p.round++
	p.pending = p.pending[:0]
	n := p.g.N()
	for u := 0; u < n; u++ {
		nb := p.g.Neighbors(graph.Vertex(u))
		v := nb[p.rng.IntN(len(nb))]
		p.messages++
		if p.opts.Observer != nil {
			p.opts.Observer(p.round, graph.Vertex(u), v)
		}
		if p.opts.FailureProb > 0 && p.rng.Bernoulli(p.opts.FailureProb) {
			continue
		}
		iu, iv := p.informed.Test(u), p.informed.Test(int(v))
		switch {
		case iu && !iv:
			p.pending = append(p.pending, v)
		case !iu && iv:
			p.pending = append(p.pending, graph.Vertex(u))
		}
	}
	for _, v := range p.pending {
		if !p.informed.Test(int(v)) {
			p.informed.Set(int(v))
			p.count++
		}
	}
}
