package core

import (
	"fmt"

	"rumor/internal/bitset"
	"rumor/internal/graph"
	"rumor/internal/par"
	"rumor/internal/xrand"
)

// ppullLane is one trial's push-pull state.
type ppullLane struct {
	informed *bitset.Set
	count    int
	boundary bool
	stagnant int
	bnd      exchangeBoundary
	srcs     []graph.Vertex // per-slot sender (boundary mode)
	targets  []graph.Vertex // per-vertex (dense) or per-slot (boundary) draws
	pending  []graph.Vertex
	messages int64
}

// BatchedPushPull runs K push-pull trials in fused lockstep. The dense
// exchange draw — every vertex samples a neighbor, the dominant per-round
// cost until a lane enters boundary mode — is one cross-lane blocked sweep
// (drawExchangeLanes): vertex blocks are the outer loop and lanes the
// inner, so each block's packed walk-index and CSR lines are touched by
// all K lanes while cache-hot instead of streaming the whole graph once
// per trial. Collect and commit run per lane with exactly the serial
// semantics, sharded across lanes on multi-core; lanes in boundary mode
// (see boundary.go) draw their small active lists inside their lane pass.
type BatchedPushPull struct {
	g       *graph.Graph
	src     graph.Vertex
	opts    PushPullOptions
	seeds   []uint64
	failTh  uint64
	sampler neighborSampler
	callers int64
	lanes   []ppullLane

	activeIDs    []int
	denseIDs     []int
	denseTargets [][]graph.Vertex // parallel to denseIDs
	procs        int
	denseFn      func(shard, lo, hi int)
	laneFn       func(shard, lo, hi int)
	round        int
}

var _ LaneProcess = (*BatchedPushPull)(nil)

// NewBatchedPushPull builds a K = len(rngs) lane push-pull bundle. Lane t
// consumes rngs[t] exactly as NewPushPull would (one stream seed), so lane
// t replays serial trial t bit for bit. Observer configurations are
// rejected; callers fall back to serial processes on the K = 1 lane path.
func NewBatchedPushPull(g *graph.Graph, s graph.Vertex, rngs []*xrand.RNG, opts PushPullOptions) (*BatchedPushPull, error) {
	if err := checkSource(g, s); err != nil {
		return nil, err
	}
	if opts.FailureProb < 0 || opts.FailureProb >= 1 {
		return nil, errFailureProb(opts.FailureProb)
	}
	if opts.Observer != nil {
		return nil, fmt.Errorf("push-pull: batched runs do not support observers")
	}
	p := &BatchedPushPull{
		g:       g,
		src:     s,
		opts:    opts,
		seeds:   make([]uint64, len(rngs)),
		failTh:  xrand.BernoulliThreshold(opts.FailureProb),
		sampler: newNeighborSampler(g),
		callers: callerCount(g),
		lanes:   make([]ppullLane, len(rngs)),
	}
	p.procs = par.Procs()
	p.denseFn = p.drawDenseShard
	p.laneFn = p.laneShard
	for t, rng := range rngs {
		p.seeds[t] = rng.Uint64()
		L := &p.lanes[t]
		L.informed = bitset.New(g.N())
		L.informed.Set(int(s))
		L.count = 1
	}
	return p, nil
}

// Name implements LaneProcess.
func (p *BatchedPushPull) Name() string { return "push-pull" }

// K implements LaneProcess.
func (p *BatchedPushPull) K() int { return len(p.lanes) }

// Source implements LaneProcess.
func (p *BatchedPushPull) Source() graph.Vertex { return p.src }

// LaneDone implements LaneProcess.
func (p *BatchedPushPull) LaneDone(t int) bool { return p.lanes[t].count == p.g.N() }

// LaneInformedCount implements LaneProcess (vertices).
func (p *BatchedPushPull) LaneInformedCount(t int) int { return p.lanes[t].count }

// LaneMessages implements LaneProcess.
func (p *BatchedPushPull) LaneMessages(t int) int64 { return p.lanes[t].messages }

// LaneAllAgentsInformed implements LaneProcess: push-pull has no agents.
func (p *BatchedPushPull) LaneAllAgentsInformed(int) bool { return false }

// Step implements LaneProcess: one fused dense draw across the non-boundary
// active lanes, then the per-lane collect/commit passes.
func (p *BatchedPushPull) Step(active []bool) {
	p.round++
	p.activeIDs = activeLanes(p.activeIDs[:0], active, len(p.lanes))
	p.denseIDs = p.denseIDs[:0]
	p.denseTargets = p.denseTargets[:0]
	n := p.g.N()
	for _, t := range p.activeIDs {
		L := &p.lanes[t]
		if L.boundary {
			continue
		}
		if L.targets == nil {
			L.targets = make([]graph.Vertex, n)
		}
		p.denseIDs = append(p.denseIDs, t)
		p.denseTargets = append(p.denseTargets, L.targets)
	}
	if len(p.denseIDs) > 0 {
		if shardsFor(n, senderGrain, p.procs) == 1 {
			p.drawDenseShard(0, 0, n)
		} else {
			par.Do(n, senderGrain, p.denseFn)
		}
	}
	runLanes(p.laneFn, len(p.activeIDs), p.procs)
}

// drawDenseShard draws vertices [lo, hi) for every dense lane through the
// shared cross-lane blocked sweep.
func (p *BatchedPushPull) drawDenseShard(_, lo, hi int) {
	drawExchangeLanes(p.sampler, p.seeds, p.denseIDs, p.denseTargets, lo, hi, uint64(p.round), p.failTh)
}

// laneShard runs the collect/commit passes for active lanes [lo, hi).
func (p *BatchedPushPull) laneShard(_, lo, hi int) {
	for _, t := range p.activeIDs[lo:hi] {
		p.stepLane(t)
	}
}

// stepLane applies one push-pull round to lane t, mirroring the serial
// PushPull.Step pass structure: collect exchanges against the pre-round
// informed state, then commit.
func (p *BatchedPushPull) stepLane(t int) {
	L := &p.lanes[t]
	L.messages += p.callers // every non-isolated vertex calls a neighbor
	L.pending = L.pending[:0]
	n := p.g.N()
	if L.boundary {
		m := len(L.bnd.active)
		if m == 0 {
			return
		}
		p.drawActiveLane(t)
		// Collect against the pre-round informed state (the active list
		// itself mutates only in the commit below, hence srcs).
		L.pending = collectExchangeActive(L.informed, L.srcs[:m], L.targets[:m], L.pending)
	} else {
		L.pending = collectExchangeDenseWords(L.informed, L.targets[:n], L.pending)
	}
	// Commit.
	countBefore := L.count
	L.count = commitExchange(p.g, L.informed, &L.bnd, L.boundary, L.pending, L.count)
	if !L.boundary {
		if L.count != countBefore {
			L.stagnant = 0
		} else if L.count != n {
			if L.stagnant++; L.stagnant >= boundaryStagnantRounds {
				L.bnd.build(p.g, L.informed)
				if L.srcs == nil {
					L.srcs = make([]graph.Vertex, n)
				}
				L.boundary = true
			}
		}
	}
}

// drawActiveLane draws lane t's active-list slots, recording the sender
// alongside, with the serial drawActiveShard draw discipline.
func (p *BatchedPushPull) drawActiveLane(t int) {
	L := &p.lanes[t]
	m := len(L.bnd.active)
	drawExchangeActive(p.sampler, p.seeds[t], L.bnd.active, L.srcs[:m], L.targets[:m], uint64(p.round), p.failTh)
}

// exchangeBlock is the vertex-block width of the fused dense exchange
// draw: lanes take turns over one block before the sweep moves on, so the
// block's packed walk-index and CSR lines are touched by all K lanes while
// still hot, and each lane's inner loop stays as tight as the serial
// drawDenseShard (stream base and slices in registers).
const exchangeBlock = 512

// drawExchangeLanes draws the round's exchange neighbor choice for
// vertices [lo, hi) of every listed lane into that lane's per-vertex
// targets slot (-1 for isolated vertices and failed exchanges), as one
// cross-lane blocked sweep. Draws are identical to the serial
// drawDenseShard's: vertex u of lane laneIDs[j] consumes stream
// (seeds[laneIDs[j]], u, round) exactly as its serial trial would.
func drawExchangeLanes(sampler neighborSampler, seeds []uint64, laneIDs []int, targets [][]graph.Vertex, lo, hi int, round, failTh uint64) {
	idx, nbrs := sampler.idx, sampler.nbrs
	for blo := lo; blo < hi; blo += exchangeBlock {
		bhi := blo + exchangeBlock
		if bhi > hi {
			bhi = hi
		}
		for j, t := range laneIDs {
			seed := seeds[t]
			if idx == nil || failTh != 0 {
				ts := targets[j]
				for u := blo; u < bhi; u++ {
					s := xrand.NewStream(seed, uint64(u), round)
					v := sampler.sample(graph.Vertex(u), &s)
					if failTh != 0 && s.Uint64() < failTh {
						v = -1
					}
					ts[u] = v
				}
				continue
			}
			drawExchangeBlock(targets[j][blo:bhi], idx[blo:bhi], nbrs, xrand.MixBase(seed, uint64(blo), round))
		}
	}
}

// drawExchangeBlock is one lane's turn over one vertex block: the inlined
// packed-index sampling of the serial drawDenseShard, with the incremental
// stream base.
func drawExchangeBlock(targets []graph.Vertex, idx []uint64, nbrs []graph.Vertex, base uint64) {
	for i, word := range idx {
		if graph.WalkDegreeOne(word) {
			targets[i] = graph.WalkOnlyNeighbor(word, nbrs)
		} else if graph.WalkDegreeZero(word) {
			targets[i] = -1 // isolated vertex: no call
		} else {
			targets[i] = graph.WalkTarget(word, xrand.Mix(base), nbrs)
		}
		base += xrand.UnitStride
	}
}
