// Package bitset provides a dense, fixed-capacity bit set used to track
// informed vertices and informed agents in the simulation engine.
//
// The zero value is an empty set of capacity zero; use New to allocate a set
// with a given capacity. All indices must be in [0, Len()).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set backed by a []uint64.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set holding bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// Len returns the capacity of the set (number of addressable bits).
func (s *Set) Len() int { return s.n }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetAll sets every bit in [0, Len()).
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trimTail()
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Full reports whether every bit in [0, Len()) is set.
func (s *Set) Full() bool { return s.Count() == s.n }

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Union sets s to s ∪ o. Both sets must have the same capacity.
func (s *Set) Union(o *Set) {
	s.checkSameLen(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Intersect sets s to s ∩ o. Both sets must have the same capacity.
func (s *Set) Intersect(o *Set) {
	s.checkSameLen(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// CopyFrom overwrites s with the contents of o. Both sets must have the same
// capacity.
func (s *Set) CopyFrom(o *Set) {
	s.checkSameLen(o)
	copy(s.words, o.words)
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// NextClear returns the smallest index >= from whose bit is clear, or -1 if
// every bit in [from, Len()) is set.
func (s *Set) NextClear(from int) int {
	if from >= s.n {
		return -1
	}
	if from < 0 {
		from = 0
	}
	wi := from / wordBits
	// Mask off bits below `from` in the first word by pretending they are set.
	w := s.words[wi] | ((1 << (uint(from) % wordBits)) - 1)
	for {
		inv := ^w
		if inv != 0 {
			i := wi*wordBits + bits.TrailingZeros64(inv)
			if i >= s.n {
				return -1
			}
			return i
		}
		wi++
		if wi >= len(s.words) {
			return -1
		}
		w = s.words[wi]
	}
}

// Words exposes the backing words (bit i lives at words[i/64], bit i%64).
// The slice aliases internal storage: callers may read it — e.g. to iterate
// set bits shard-by-shard without per-bit calls — but must not modify it.
// Bits at positions >= Len() in the final word are not guaranteed clear
// unless only Set/Clear/Reset were used.
func (s *Set) Words() []uint64 { return s.words }

// CommitNew ORs src into s one word at a time and calls fn for each bit
// the merge newly set, in increasing order. It is the word-parallel form
// of "for each i in src: if !s.Test(i) { s.Set(i); fn(i) }": the
// new-bits word src &^ s computes 64 membership tests in one operation,
// and wholly-redundant words (everything in src already in s — the common
// case late in an epidemic) cost one load and one AND-NOT instead of 64
// test-and-set calls. Both sets must have the same capacity.
func (s *Set) CommitNew(src *Set, fn func(i int)) {
	s.checkSameLen(src)
	for wi, w := range src.words {
		nw := w &^ s.words[wi]
		if nw == 0 {
			continue
		}
		s.words[wi] |= nw
		for ; nw != 0; nw &= nw - 1 {
			fn(wi*wordBits + bits.TrailingZeros64(nw))
		}
	}
}

// ForEach calls fn for every set bit in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &^= 1 << uint(b)
		}
	}
}

// String renders the set as a compact list of set indices, for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) checkSameLen(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, o.n))
	}
}

// trimTail clears bits at positions >= n in the last word so Count stays
// correct after SetAll.
func (s *Set) trimTail() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % wordBits)) - 1
	}
}
