package bitset

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		s := New(n)
		if s.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, s.Len())
		}
		if s.Count() != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, s.Count())
		}
		if s.Any() {
			t.Errorf("New(%d).Any() = true, want false", n)
		}
		if n > 0 && s.Full() {
			t.Errorf("New(%d).Full() = true, want false", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		s.Set(i)
	}
	for _, i := range idx {
		if !s.Test(i) {
			t.Errorf("Test(%d) = false after Set", i)
		}
	}
	if got := s.Count(); got != len(idx) {
		t.Errorf("Count() = %d, want %d", got, len(idx))
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("Test(64) = true after Clear")
	}
	if got := s.Count(); got != len(idx)-1 {
		t.Errorf("Count() = %d, want %d", got, len(idx)-1)
	}
}

func TestSetAllFull(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 200} {
		s := New(n)
		s.SetAll()
		if got := s.Count(); got != n {
			t.Errorf("n=%d: Count after SetAll = %d", n, got)
		}
		if !s.Full() {
			t.Errorf("n=%d: Full() = false after SetAll", n)
		}
		s.Reset()
		if s.Any() {
			t.Errorf("n=%d: Any() = true after Reset", n)
		}
	}
}

func TestFullZeroCapacity(t *testing.T) {
	if !New(0).Full() {
		t.Error("empty set with capacity 0 should be trivially full")
	}
}

func TestNextClear(t *testing.T) {
	s := New(200)
	s.SetAll()
	if got := s.NextClear(0); got != -1 {
		t.Errorf("NextClear on full set = %d, want -1", got)
	}
	s.Clear(77)
	s.Clear(150)
	if got := s.NextClear(0); got != 77 {
		t.Errorf("NextClear(0) = %d, want 77", got)
	}
	if got := s.NextClear(78); got != 150 {
		t.Errorf("NextClear(78) = %d, want 150", got)
	}
	if got := s.NextClear(151); got != -1 {
		t.Errorf("NextClear(151) = %d, want -1", got)
	}
	if got := s.NextClear(400); got != -1 {
		t.Errorf("NextClear(400) = %d, want -1", got)
	}
	if got := s.NextClear(-5); got != 77 {
		t.Errorf("NextClear(-5) = %d, want 77", got)
	}
}

func TestNextClearEmpty(t *testing.T) {
	s := New(70)
	if got := s.NextClear(0); got != 0 {
		t.Errorf("NextClear(0) on empty = %d, want 0", got)
	}
	if got := s.NextClear(69); got != 69 {
		t.Errorf("NextClear(69) on empty = %d, want 69", got)
	}
}

func TestUnionIntersect(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(3)
	a.Set(64)
	b.Set(64)
	b.Set(99)

	u := a.Clone()
	u.Union(b)
	for _, i := range []int{3, 64, 99} {
		if !u.Test(i) {
			t.Errorf("union missing %d", i)
		}
	}
	if u.Count() != 3 {
		t.Errorf("union Count = %d, want 3", u.Count())
	}

	x := a.Clone()
	x.Intersect(b)
	if x.Count() != 1 || !x.Test(64) {
		t.Errorf("intersect = %v, want {64}", x)
	}
}

func TestCopyFromClone(t *testing.T) {
	a := New(77)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Test(6) {
		t.Error("Clone aliases the original")
	}
	d := New(77)
	d.CopyFrom(a)
	if !d.Test(5) || d.Count() != 1 {
		t.Errorf("CopyFrom result = %v", d)
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union with mismatched capacity did not panic")
		}
	}()
	New(10).Union(New(11))
}

func TestForEachOrder(t *testing.T) {
	s := New(300)
	want := []int{0, 1, 64, 128, 255, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ForEach[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Set(1)
	s.Set(9)
	if got := s.String(); got != "{1,9}" {
		t.Errorf("String() = %q, want {1,9}", got)
	}
	if got := New(3).String(); got != "{}" {
		t.Errorf("empty String() = %q, want {}", got)
	}
}

// TestQuickAgainstMap cross-checks the bitset against a map-based reference
// implementation under a random operation sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed uint64, opsRaw []byte) bool {
		const n = 257
		rng := rand.New(rand.NewPCG(seed, 17))
		s := New(n)
		ref := make(map[int]bool)
		for _, op := range opsRaw {
			i := rng.IntN(n)
			switch op % 3 {
			case 0:
				s.Set(i)
				ref[i] = true
			case 1:
				s.Clear(i)
				delete(ref, i)
			case 2:
				if s.Test(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		ok := true
		s.ForEach(func(i int) {
			if !ref[i] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNextClear verifies NextClear against a linear scan.
func TestQuickNextClear(t *testing.T) {
	f := func(seed uint64) bool {
		const n = 191
		rng := rand.New(rand.NewPCG(seed, 3))
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.IntN(2) == 0 {
				s.Set(i)
			}
		}
		for from := 0; from < n; from++ {
			want := -1
			for i := from; i < n; i++ {
				if !s.Test(i) {
					want = i
					break
				}
			}
			if got := s.NextClear(from); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCommitNew verifies CommitNew against the scalar test-and-set loop:
// identical resulting set, and the callback sees exactly the newly set
// bits in increasing order.
func TestCommitNew(t *testing.T) {
	const n = 200
	s := New(n)
	src := New(n)
	for _, i := range []int{0, 1, 63, 64, 65, 130, 199} {
		s.Set(i)
	}
	for _, i := range []int{1, 2, 63, 66, 130, 131, 198, 199} {
		src.Set(i)
	}
	want := []int{2, 66, 131, 198}
	var got []int
	s.CommitNew(src, func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("CommitNew reported %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("CommitNew reported %v, want %v", got, want)
		}
	}
	// The merged set is the union.
	for i := 0; i < n; i++ {
		wantBit := false
		for _, j := range []int{0, 1, 63, 64, 65, 130, 199, 2, 66, 131, 198} {
			if i == j {
				wantBit = true
			}
		}
		if s.Test(i) != wantBit {
			t.Fatalf("bit %d = %v after CommitNew, want %v", i, s.Test(i), wantBit)
		}
	}
}

// TestCommitNewRedundant: a src wholly contained in s must set nothing and
// never invoke the callback (the one-AND-NOT-per-word fast path).
func TestCommitNewRedundant(t *testing.T) {
	s := New(128)
	src := New(128)
	for i := 0; i < 128; i += 3 {
		s.Set(i)
		src.Set(i)
	}
	s.CommitNew(src, func(i int) {
		t.Fatalf("callback invoked for bit %d on redundant commit", i)
	})
	if got := s.Count(); got != 43 {
		t.Fatalf("Count = %d after redundant commit, want 43", got)
	}
}

// TestCommitNewCapacityMismatchPanics mirrors the Union/Intersect contract.
func TestCommitNewCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CommitNew with mismatched capacities did not panic")
		}
	}()
	New(64).CommitNew(New(65), func(int) {})
}

// TestQuickCommitNew cross-checks CommitNew against the scalar
// Test/Set/append loop on random sets.
func TestQuickCommitNew(t *testing.T) {
	f := func(seed uint64) bool {
		const n = 193
		rng := rand.New(rand.NewPCG(seed, 9))
		s := New(n)
		src := New(n)
		ref := New(n)
		for i := 0; i < n; i++ {
			if rng.IntN(2) == 0 {
				s.Set(i)
				ref.Set(i)
			}
			if rng.IntN(3) == 0 {
				src.Set(i)
			}
		}
		var wantNew []int
		for i := 0; i < n; i++ {
			if src.Test(i) && !ref.Test(i) {
				ref.Set(i)
				wantNew = append(wantNew, i)
			}
		}
		var gotNew []int
		s.CommitNew(src, func(i int) { gotNew = append(gotNew, i) })
		if len(gotNew) != len(wantNew) {
			return false
		}
		for k := range wantNew {
			if gotNew[k] != wantNew[k] {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if s.Test(i) != ref.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
