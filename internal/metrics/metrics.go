// Package metrics is a small, dependency-free metrics layer for the
// serving tier: counters, gauges, and fixed-bucket histograms, with
// label support via pre-registered child series, rendered in the
// Prometheus text exposition format.
//
// The design optimizes the write side: every instrument is a pointer
// whose hot-path operation is one or two atomic adds — no maps, no
// locks, no allocation. Labeled families (vecs) resolve their children
// once, at registration time, so instrumented code holds the child
// pointer and pays nothing per observation; With is still safe (and
// cheap — a read-locked map hit) for callers that resolve lazily.
// Series whose truth already lives elsewhere (an existing atomic, a
// queue length) register as func-backed children read at scrape time,
// so the metrics layer never duplicates state it can observe.
//
// Every instrument method is nil-receiver safe: a nil *Counter,
// *Gauge, or *Histogram no-ops, which lets an entire instrumentation
// layer be disabled (for overhead benchmarking) by leaving its struct
// fields nil.
//
// Rendering (WriteText, Handler) is deterministic: families sort by
// name, children by label values, so successive scrapes of identical
// state are byte-identical — the property the rendering tests pin.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a metric family.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry holds metric families and renders them. The zero value is
// not usable; create with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric with its children (one per label tuple;
// exactly one unlabeled child for scalar metrics).
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child
}

// child is one series: either live instrument state (value / histogram
// arrays) or a read-at-scrape func.
type child struct {
	labelValues []string
	fn          func() float64 // non-nil: func-backed, rest unused

	value   atomic.Uint64  // counter: int64 bits; gauge: float64 bits
	buckets []atomic.Int64 // histograms: per-bucket (non-cumulative), +Inf last
	sum     atomic.Uint64  // histograms: float64 bits, CAS-added
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates (or fails on a duplicate of) a family. Metric and
// label names are programmer-controlled, so invalid or duplicate
// registration panics rather than returning an error nobody checks.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("metrics: invalid label name %q for %s", l, name))
		}
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...), bounds: bounds,
		children: make(map[string]*child),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.families[name] = f
	return f
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// childFor resolves (registering if needed) the child for values.
// fn != nil makes the child func-backed.
func (f *family) childFor(values []string, fn func() float64) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...), fn: fn}
	if f.kind == KindHistogram {
		c.buckets = make([]atomic.Int64, len(f.bounds)+1)
	}
	f.children[key] = c
	return c
}

// ---- counters ----------------------------------------------------------

// Counter is a monotonically increasing integer.
type Counter struct{ c *child }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n < 0 panics: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.c.value.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return int64(c.c.value.Load())
}

// Counter registers a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return &Counter{c: f.childFor(nil, nil)}
}

// CounterFunc registers a scalar counter whose value is read from fn at
// scrape time — for counts whose truth already lives in another atomic.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindCounter, nil, nil)
	f.childFor(nil, fn)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// With returns (registering on first use) the child for values. Resolve
// once and keep the pointer on hot paths.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{c: v.f.childFor(values, nil)}
}

// Func registers a func-backed child for values, read at scrape time.
func (v *CounterVec) Func(fn func() float64, values ...string) {
	v.f.childFor(values, fn)
}

// ---- gauges ------------------------------------------------------------

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.c.value.Store(math.Float64bits(v))
}

// Add adds d (CAS loop; gauges are low-frequency instruments).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.c.value.Load()
		if g.c.value.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.c.value.Load())
}

// Gauge registers a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return &Gauge{c: f.childFor(nil, nil)}
}

// GaugeFunc registers a scalar gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.childFor(nil, fn)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// With returns (registering on first use) the child for values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{c: v.f.childFor(values, nil)}
}

// Func registers a func-backed child for values, read at scrape time.
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	v.f.childFor(values, fn)
}

// ---- histograms --------------------------------------------------------

// Histogram counts observations into fixed buckets and tracks their sum.
type Histogram struct {
	c      *child
	bounds []float64
}

// Observe records v: one atomic add on the owning bucket, one CAS add
// on the sum. Concurrent scrapes may see the bucket before the sum —
// the usual, accepted histogram skew.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, len(bounds) = +Inf
	h.c.buckets[i].Add(1)
	for {
		old := h.c.sum.Load()
		if h.c.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.c.buckets {
		n += h.c.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.c.sum.Load())
}

// checkBounds validates histogram bucket bounds once, at registration.
func checkBounds(name string, bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %s needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %s bounds not strictly increasing", name))
		}
	}
	return append([]float64(nil), bounds...)
}

// Histogram registers a scalar histogram over the given bucket upper
// bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	b := checkBounds(name, bounds)
	f := r.register(name, help, KindHistogram, nil, b)
	return &Histogram{c: f.childFor(nil, nil), bounds: f.bounds}
}

// HistogramVec is a labeled histogram family sharing one bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family with the given bounds and
// label names.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	b := checkBounds(name, bounds)
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, b)}
}

// With returns (registering on first use) the child for values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{c: v.f.childFor(values, nil), bounds: v.f.bounds}
}

// ExpBuckets returns n strictly increasing bounds starting at start and
// growing by factor — the fixed exponential layout latency histograms
// use (e.g. ExpBuckets(0.001, 2, 14) spans 1ms..8.2s).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// ---- rendering ---------------------------------------------------------

// WriteText renders every family in the Prometheus text exposition
// format, deterministically ordered: families by name, children by
// label values.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		f.renderTo(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving WriteText — mount as
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

func (f *family) renderTo(b *strings.Builder) {
	f.mu.RLock()
	kids := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		kids = append(kids, c)
	}
	f.mu.RUnlock()
	if len(kids) == 0 {
		return
	}
	sort.Slice(kids, func(i, j int) bool {
		return lessStrings(kids[i].labelValues, kids[j].labelValues)
	})
	if f.help != "" {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(string(f.kind))
	b.WriteByte('\n')
	for _, c := range kids {
		switch f.kind {
		case KindHistogram:
			f.renderHistogram(b, c)
		case KindCounter:
			if c.fn != nil {
				writeSample(b, f.name, f.labels, c.labelValues, "", "", formatFloat(c.fn()))
			} else {
				writeSample(b, f.name, f.labels, c.labelValues, "", "", strconv.FormatInt(int64(c.value.Load()), 10))
			}
		default: // gauge
			v := math.Float64frombits(c.value.Load())
			if c.fn != nil {
				v = c.fn()
			}
			writeSample(b, f.name, f.labels, c.labelValues, "", "", formatFloat(v))
		}
	}
}

// renderHistogram emits the cumulative _bucket series, _sum, and
// _count. All bucket loads happen before cumulation, so the rendered
// buckets are always monotone and _count equals the +Inf bucket.
func (f *family) renderHistogram(b *strings.Builder, c *child) {
	counts := make([]int64, len(c.buckets))
	for i := range c.buckets {
		counts[i] = c.buckets[i].Load()
	}
	var cum int64
	for i, bound := range f.bounds {
		cum += counts[i]
		writeSample(b, f.name+"_bucket", f.labels, c.labelValues, "le", formatFloat(bound), strconv.FormatInt(cum, 10))
	}
	cum += counts[len(counts)-1]
	writeSample(b, f.name+"_bucket", f.labels, c.labelValues, "le", "+Inf", strconv.FormatInt(cum, 10))
	writeSample(b, f.name+"_sum", f.labels, c.labelValues, "", "", formatFloat(math.Float64frombits(c.sum.Load())))
	writeSample(b, f.name+"_count", f.labels, c.labelValues, "", "", strconv.FormatInt(cum, 10))
}

// writeSample renders one line: name{labels...} value. extraName/Value
// append a trailing synthetic label (the histogram "le").
func writeSample(b *strings.Builder, name string, labels, values []string, extraName, extraValue, rendered string) {
	b.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(rendered)
	b.WriteByte('\n')
}

func lessStrings(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
