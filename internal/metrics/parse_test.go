package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestParseTextErrors(t *testing.T) {
	for name, in := range map[string]string{
		"no value":          "just_a_name",
		"bad name":          `9bad{a="b"} 1`,
		"unterminated set":  `m{a="b" 1`,
		"missing equals":    `m{ab} 1`,
		"bad label name":    `m{9x="b"} 1`,
		"unquoted value":    `m{a=b} 1`,
		"bad escape":        `m{a="\t"} 1`,
		"unterminated val":  `m{a="b} 1`,
		"empty after set":   `m{a="b"}`,
		"non-numeric value": `m{a="b"} zebra`,
	} {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ParseText(%q) succeeded, want error", name, in)
		}
	}
}

func TestParseTextLenient(t *testing.T) {
	in := "# HELP x h\n# TYPE x counter\n\nx 4 1690000000\ny{a=\"b\" , c=\"d\"} +Inf\n"
	sc, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("x", nil); !ok || v != 4 {
		t.Fatalf("x = %v ok=%v", v, ok)
	}
	s := sc.Select("y", map[string]string{"a": "b", "c": "d"})
	if len(s) != 1 || !math.IsInf(s[0].Value, 1) {
		t.Fatalf("y select = %+v", s)
	}
}

func TestCheckHistogramErrors(t *testing.T) {
	for name, in := range map[string]string{
		"no buckets":     "other 1\n",
		"non-monotone":   "h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"no inf":         "h_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
		"count mismatch": "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 9\n",
		"no count":       "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\n",
		"no sum":         "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
	} {
		sc, err := ParseText(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if _, err := sc.CheckHistogram("h", nil); err == nil {
			t.Errorf("%s: CheckHistogram succeeded, want error", name)
		}
	}
}

func TestScrapeHelpers(t *testing.T) {
	in := "a{k=\"1\"} 2\na{k=\"2\"} 3\nb 7\n"
	sc, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Sum("a"); got != 5 {
		t.Fatalf("Sum(a) = %v", got)
	}
	if sc.Has("missing", nil) {
		t.Fatal("Has(missing) = true")
	}
	if got := sc.Samples[0].Label("k"); got != "1" {
		t.Fatalf("Label = %q", got)
	}
	if got := sc.LabelValues("a", "k"); len(got) != 2 {
		t.Fatalf("LabelValues = %v", got)
	}
}
