package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestTextRenderingStable pins the exposition format end to end: family
// ordering by name, child ordering by label values, HELP/TYPE lines,
// integer counters, float gauges, and func-backed series — and that two
// renders of identical state are byte-identical.
func TestTextRenderingStable(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of name order.
	zq := r.Counter("zz_total", "last family")
	zq.Add(7)
	v := r.CounterVec("aa_total", "first family", "proto", "tier")
	v.With("push", "mem").Add(2)
	v.With("hybrid", "disk").Inc()
	g := r.Gauge("mm_gauge", "a gauge")
	g.Set(1.5)
	r.GaugeFunc("mm_func", "func gauge", func() float64 { return 42 })
	r.CounterFunc("mm_cfunc", "func counter", func() float64 { return 3 })

	var b1, b2 strings.Builder
	if err := r.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("two renders of identical state differ:\n%s\n----\n%s", b1.String(), b2.String())
	}
	want := `# HELP aa_total first family
# TYPE aa_total counter
aa_total{proto="hybrid",tier="disk"} 1
aa_total{proto="push",tier="mem"} 2
# HELP mm_cfunc func counter
# TYPE mm_cfunc counter
mm_cfunc 3
# HELP mm_func func gauge
# TYPE mm_func gauge
mm_func 42
# HELP mm_gauge a gauge
# TYPE mm_gauge gauge
mm_gauge 1.5
# HELP zz_total last family
# TYPE zz_total counter
zz_total 7
`
	if b1.String() != want {
		t.Fatalf("rendering mismatch:\ngot:\n%s\nwant:\n%s", b1.String(), want)
	}
}

// TestLabelEscaping pins backslash, quote, and newline escaping in
// label values (and that the parser round-trips them).
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "", "path")
	hostile := `C:\dir "quoted"` + "\nline2"
	v.With(hostile).Add(5)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="C:\\dir \"quoted\"\nline2"} 5` + "\n"
	if got := b.String(); !strings.Contains(got, want) {
		t.Fatalf("escaping mismatch:\ngot %q\nwant a line %q", got, want)
	}
	sc, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse rendered output: %v", err)
	}
	got, ok := sc.Value("esc_total", map[string]string{"path": hostile})
	if !ok || got != 5 {
		t.Fatalf("round-trip: got %v ok=%v, want 5", got, ok)
	}
}

// TestHistogramInvariants pins the bucket layout: cumulative counts,
// monotone in le, +Inf present, _count == +Inf bucket, _sum equals the
// observed sum — via both the rendered text and the parser's checker.
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="10"} 4
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 56.05
lat_seconds_count 5
`
	if b.String() != want {
		t.Fatalf("histogram rendering:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
	sc, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	n, err := sc.CheckHistogram("lat_seconds", nil)
	if err != nil || n != 5 {
		t.Fatalf("CheckHistogram = %d, %v; want 5, nil", n, err)
	}
}

// TestHistogramBucketEdges pins the le semantics: an observation equal
// to a bound lands in that bound's bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge", "", []float64{1, 2})
	h.Observe(1) // exactly on the first bound: le="1" counts it
	h.Observe(2)
	h.Observe(2.1)
	var b strings.Builder
	r.WriteText(&b)
	for _, line := range []string{
		`edge_bucket{le="1"} 1`, `edge_bucket{le="2"} 2`, `edge_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, b.String())
		}
	}
}

// TestHistogramVecChildren pins per-label histogram children and that
// the checker validates each child independently.
func TestHistogramVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("sim_seconds", "", ExpBuckets(0.001, 2, 4), "protocol")
	v.With("push").Observe(0.002)
	v.With("push").Observe(0.01)
	v.With("visitx").Observe(0.5)
	var b strings.Builder
	r.WriteText(&b)
	sc, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := sc.CheckHistogram("sim_seconds", map[string]string{"protocol": "push"}); err != nil || n != 2 {
		t.Fatalf("push child: %d, %v", n, err)
	}
	if n, err := sc.CheckHistogram("sim_seconds", map[string]string{"protocol": "visitx"}); err != nil || n != 1 {
		t.Fatalf("visitx child: %d, %v", n, err)
	}
	if got := sc.LabelValues("sim_seconds_bucket", "protocol"); len(got) != 2 || got[0] != "push" || got[1] != "visitx" {
		t.Fatalf("LabelValues = %v", got)
	}
}

// TestConcurrentIncrements hammers one counter, one gauge, and one
// histogram child from many goroutines (run under -race in CI) while a
// scraper renders concurrently, then checks the totals.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	v := r.CounterVec("v_total", "", "k")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", ExpBuckets(1, 2, 8))
	const workers, perWorker = 8, 2000
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() { // concurrent scraper racing the writers
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := r.WriteText(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			child := v.With("shared") // lazy resolution racing across workers
			for i := 0; i < perWorker; i++ {
				c.Inc()
				child.Add(2)
				g.Add(1)
				h.Observe(float64(i%100) + 0.5)
			}
		}()
	}
	writers.Wait()
	close(stop)
	scraper.Wait()

	if got, want := c.Value(), int64(workers*perWorker); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got, want := v.With("shared").Value(), int64(2*workers*perWorker); got != want {
		t.Fatalf("vec counter = %d, want %d", got, want)
	}
	if got, want := g.Value(), float64(workers*perWorker); got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
	if got, want := h.Count(), int64(workers*perWorker); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
}

// TestNilSafety pins the disable-by-nil contract every instrumented
// layer leans on for overhead benchmarking.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Inc()
	g.Dec()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

// TestRegistrationPanics pins the programmer-error contract.
func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	for name, fn := range map[string]func(){
		"duplicate":        func() { r.Counter("ok_total", "") },
		"bad metric name":  func() { r.Counter("1bad", "") },
		"bad label name":   func() { r.CounterVec("v1_total", "", "0bad") },
		"reserved le":      func() { r.HistogramVec("h1", "", []float64{1}, "le") },
		"empty buckets":    func() { r.Histogram("h2", "", nil) },
		"unsorted buckets": func() { r.Histogram("h3", "", []float64{2, 1}) },
		"label arity":      func() { r.CounterVec("v2_total", "", "a").With("x", "y") },
		"counter negative": func() { r.Counter("neg_total", "").Add(-1) },
		"bad expbuckets":   func() { ExpBuckets(0, 2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestHandler pins the HTTP surface: content type and body.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help").Add(9)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 9\n") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}
}

// TestFormatFloat pins the special float spellings shared by renderer
// and parser.
func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1.5:          "1.5",
		0:            "0",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if formatFloat(math.NaN()) != "NaN" {
		t.Error("NaN spelling")
	}
	for _, s := range []string{"+Inf", "Inf", "-Inf", "NaN", "2.5"} {
		if _, err := parseValue(s); err != nil {
			t.Errorf("parseValue(%q): %v", s, err)
		}
	}
}
