package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line. Histogram series surface under
// their synthetic names (name_bucket with an "le" label, name_sum,
// name_count) — the standard flattening scrapers consume.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for a label name ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// Scrape is a parsed /metrics payload with lookup helpers — what
// cmd/soak and the CI smoke assertions work against.
type Scrape struct {
	Samples []Sample
}

// ParseText parses the Prometheus text exposition format produced by
// Registry.WriteText (and by any standard exporter): comment lines are
// skipped, samples are name{label="value",...} value. Timestamps and
// exemplars are not supported — the in-house renderer never emits them.
func ParseText(r io.Reader) (*Scrape, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	out := &Scrape{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out.Samples = append(out.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Name runs to the first '{' or space.
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := -1
		// Scan for the closing brace outside quoted values.
		inQuote, esc := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case esc:
				esc = false
			case c == '\\' && inQuote:
				esc = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				close = i
			}
			if close >= 0 {
				break
			}
		}
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:close], s.Labels); err != nil {
			return s, err
		}
		rest = rest[close+1:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("no value in %q", line)
	}
	// Ignore a trailing timestamp if some foreign exporter added one.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return inf(1), nil
	case "-Inf":
		return inf(-1), nil
	case "NaN":
		return nan(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string, into map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair near %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value for %q", name)
		}
		var b strings.Builder
		i := 1
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(s[i])
				default:
					return fmt.Errorf("bad escape \\%c in label %q", s[i], name)
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value for %q", name)
		}
		into[name] = b.String()
		s = strings.TrimSpace(s[i+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// Value returns the sample matching name and every given label pair
// (extra labels on the sample are allowed). ok is false when no sample
// matches; multiple matches return their sum (e.g. Value("x") over a
// labeled family sums every child).
func (sc *Scrape) Value(name string, labels map[string]string) (v float64, ok bool) {
	for _, s := range sc.Samples {
		if s.Name != name || !matches(s, labels) {
			continue
		}
		v += s.Value
		ok = true
	}
	return v, ok
}

// Sum is Value with no label filter, defaulting to 0 when absent.
func (sc *Scrape) Sum(name string) float64 {
	v, _ := sc.Value(name, nil)
	return v
}

// Has reports whether any sample matches name and the label filter.
func (sc *Scrape) Has(name string, labels map[string]string) bool {
	_, ok := sc.Value(name, labels)
	return ok
}

// Select returns the samples matching name and the label filter.
func (sc *Scrape) Select(name string, labels map[string]string) []Sample {
	var out []Sample
	for _, s := range sc.Samples {
		if s.Name == name && matches(s, labels) {
			out = append(out, s)
		}
	}
	return out
}

// LabelValues returns the sorted distinct values of label across every
// sample of name.
func (sc *Scrape) LabelValues(name, label string) []string {
	seen := map[string]bool{}
	for _, s := range sc.Samples {
		if s.Name != name {
			continue
		}
		if v, ok := s.Labels[label]; ok {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// CheckHistogram validates the exposition invariants of the histogram
// family name filtered by labels: at least one bucket, cumulative
// bucket counts monotone in le order, an +Inf bucket present, and
// name_count equal to the +Inf bucket. It returns the total count.
func (sc *Scrape) CheckHistogram(name string, labels map[string]string) (count int64, err error) {
	buckets := sc.Select(name+"_bucket", labels)
	if len(buckets) == 0 {
		return 0, fmt.Errorf("histogram %s%v: no buckets", name, labels)
	}
	sort.Slice(buckets, func(i, j int) bool {
		bi, _ := parseValue(buckets[i].Label("le"))
		bj, _ := parseValue(buckets[j].Label("le"))
		return bi < bj
	})
	prev := int64(-1)
	var infCount int64
	sawInf := false
	for _, b := range buckets {
		le := b.Label("le")
		if le == "" {
			return 0, fmt.Errorf("histogram %s: bucket without le label", name)
		}
		c := int64(b.Value)
		if c < prev {
			return 0, fmt.Errorf("histogram %s: bucket le=%s count %d below previous %d", name, le, c, prev)
		}
		prev = c
		if le == "+Inf" {
			sawInf, infCount = true, c
		}
	}
	if !sawInf {
		return 0, fmt.Errorf("histogram %s: no +Inf bucket", name)
	}
	total, ok := sc.Value(name+"_count", labels)
	if !ok {
		return 0, fmt.Errorf("histogram %s: no _count", name)
	}
	if int64(total) != infCount {
		return 0, fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", name, int64(total), infCount)
	}
	if !sc.Has(name+"_sum", labels) {
		return 0, fmt.Errorf("histogram %s: no _sum", name)
	}
	return infCount, nil
}

func matches(s Sample, labels map[string]string) bool {
	for k, v := range labels {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

func inf(sign int) float64 {
	if sign >= 0 {
		return pinf
	}
	return ninf
}

var (
	pinf = func() float64 { f, _ := strconv.ParseFloat("+Inf", 64); return f }()
	ninf = -pinf
)

func nan() float64 { f, _ := strconv.ParseFloat("NaN", 64); return f }
