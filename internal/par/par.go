// Package par provides the reusable worker pool behind the simulator's
// deterministic parallel round engine.
//
// Work is expressed as a loop over [0, n) split into contiguous, ordered
// shards: Do(n, grain, fn) calls fn(shard, lo, hi) once per shard with
// shard boundaries that tile [0, n) in increasing order. The determinism
// contract is split between this package and its callers:
//
//   - par guarantees shards are contiguous, disjoint, ordered by index,
//     and that Do returns only after every shard completed;
//   - callers guarantee fn's writes for shard s touch only state owned by
//     indices [lo, hi) plus a per-shard output buffer, and that per-shard
//     outputs are merged in shard order afterwards.
//
// Under those rules results are bit-identical for any worker count, so the
// shard count may (and does) adapt to runtime.GOMAXPROCS(0): on a single
// processor Do degrades to a plain loop with zero dispatch overhead.
//
// The pool's goroutines are started once and reused for every Do call in
// the process. Submission never blocks: when every worker is busy (for
// example when RunMany already saturates the machine with trial-level
// parallelism) shards run inline on the caller, which also makes nested or
// concurrent Do calls deadlock-free by construction.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// pool is the process-wide reusable worker pool. Workers park on the work
// channel; tasks are closures that signal their WaitGroup when done.
type pool struct {
	work chan func()
}

var (
	poolOnce sync.Once
	shared   *pool

	// procs caches runtime.GOMAXPROCS(0): querying it takes a runtime
	// lock, far too expensive for once-per-round calls. The cache is
	// refreshed by Refresh; a stale value changes only how much physical
	// parallelism a round uses, never its result.
	procs atomic.Int32
)

// Procs returns the cached processor count, initializing it on first use.
func Procs() int {
	if p := procs.Load(); p > 0 {
		return int(p)
	}
	return Refresh()
}

// Refresh re-reads runtime.GOMAXPROCS(0) into the cache and returns it.
// Long-running drivers (core.RunMany, the determinism tests) call it so
// sharding tracks GOMAXPROCS changes; nothing correctness-critical depends
// on it.
func Refresh() int {
	p := runtime.GOMAXPROCS(0)
	procs.Store(int32(p))
	return p
}

// sharedPool starts the workers on first use, sized to the processor count
// at that moment. Worker count affects only physical parallelism, never
// results, so a later GOMAXPROCS change at worst under- or over-subscribes
// the machine.
func sharedPool() *pool {
	poolOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0)
		shared = &pool{work: make(chan func(), 4*workers)}
		for i := 0; i < workers; i++ {
			go func() {
				for f := range shared.work {
					f()
				}
			}()
		}
	})
	return shared
}

// Shards returns the number of contiguous shards Do will split n items
// into, given the per-shard minimum grain: enough to occupy every
// processor, but never so many that a shard drops below grain items.
func Shards(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	s := Procs()
	if m := n / grain; s > m {
		s = m
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Do splits [0, n) into Shards(n, grain) contiguous shards and runs
// fn(shard, lo, hi) for each, returning when all shards are done. With one
// shard it calls fn(0, 0, n) inline. fn must confine its writes to state
// owned by [lo, hi) and per-shard buffers (see the package comment).
func Do(n, grain int, fn func(shard, lo, hi int)) {
	DoN(Shards(n, grain), n, fn)
}

// DoN is Do with the shard count fixed by the caller. Callers that size
// per-shard output buffers must use DoN with the same count they sized
// for: Do recomputes Shards from the (refreshable) processor cache, so a
// concurrent Refresh could otherwise hand fn a shard index beyond the
// caller's buffers.
func DoN(shards, n int, fn func(shard, lo, hi int)) {
	if shards <= 0 || n <= 0 {
		return
	}
	if shards > n {
		shards = n
	}
	if shards == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards)
	p := sharedPool()
	for s := 0; s < shards; s++ {
		// Balanced split: shard s covers [s*n/shards, (s+1)*n/shards).
		// Unlike ceil-division chunking this never produces empty or
		// out-of-range shards, for any shards <= n.
		lo := s * n / shards
		hi := (s + 1) * n / shards
		task := func(s, lo, hi int) func() {
			return func() {
				defer wg.Done()
				fn(s, lo, hi)
			}
		}(s, lo, hi)
		// Never block on a busy pool: running the shard inline keeps Do
		// deadlock-free and self-balancing under trial-level parallelism.
		select {
		case p.work <- task:
		default:
			task()
		}
	}
	wg.Wait()
}
