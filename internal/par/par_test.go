package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000, 4097} {
		var mu sync.Mutex
		seen := make([]int, n)
		Do(n, 8, func(_, lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestDoShardsContiguousOrdered(t *testing.T) {
	n := 1000
	shards := Shards(n, 10)
	type span struct{ lo, hi int }
	got := make([]span, shards)
	Do(n, 10, func(s, lo, hi int) {
		got[s] = span{lo, hi}
	})
	prev := 0
	for s, sp := range got {
		if sp.lo != prev {
			t.Fatalf("shard %d starts at %d, want %d", s, sp.lo, prev)
		}
		if sp.hi <= sp.lo {
			t.Fatalf("shard %d empty: [%d,%d)", s, sp.lo, sp.hi)
		}
		prev = sp.hi
	}
	if prev != n {
		t.Fatalf("shards end at %d, want %d", prev, n)
	}
}

func TestShardsRespectsGrain(t *testing.T) {
	if s := Shards(100, 1000); s != 1 {
		t.Errorf("Shards(100, 1000) = %d, want 1 (below grain)", s)
	}
	if s := Shards(0, 10); s != 0 {
		t.Errorf("Shards(0, 10) = %d, want 0", s)
	}
	if s := Shards(10, 0); s < 1 {
		t.Errorf("Shards(10, 0) = %d, want >= 1", s)
	}
	defer func() { Refresh() }()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(8)
	Refresh()
	if s := Shards(1<<20, 1); s != 8 {
		t.Errorf("Shards(1M, 1) = %d at GOMAXPROCS=8, want 8", s)
	}
}

// TestDoResultsIndependentOfGOMAXPROCS: a sharded sum merged in shard
// order must not depend on the processor count.
func TestDoResultsIndependentOfGOMAXPROCS(t *testing.T) {
	defer func() { Refresh() }()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	n := 10000
	run := func() []int {
		shards := Shards(n, 100)
		bufs := make([][]int, shards)
		Do(n, 100, func(s, lo, hi int) {
			for i := lo; i < hi; i++ {
				if i%7 == 0 {
					bufs[s] = append(bufs[s], i)
				}
			}
		})
		var out []int
		for _, b := range bufs {
			out = append(out, b...)
		}
		return out
	}
	runtime.GOMAXPROCS(1)
	Refresh()
	a := run()
	runtime.GOMAXPROCS(4)
	Refresh()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("merged output differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestDoConcurrentCallers: concurrent Do calls (as RunMany issues) must not
// deadlock or cross shards between callers.
func TestDoConcurrentCallers(t *testing.T) {
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var total atomic.Int64
			Do(5000, 50, func(_, lo, hi int) {
				var sum int64
				for i := lo; i < hi; i++ {
					sum += int64(i)
				}
				total.Add(sum)
			})
			want := int64(5000) * 4999 / 2
			if total.Load() != want {
				t.Errorf("sum %d, want %d", total.Load(), want)
			}
		}()
	}
	wg.Wait()
}
