package coupling

import (
	"testing"
	"testing/quick"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func mustRun(t *testing.T, g *graph.Graph, s graph.Vertex, seed uint64, cfg Config) *Result {
	t.Helper()
	res, err := Run(g, s, xrand.New(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TVisitx < 0 || res.TPush < 0 {
		t.Fatalf("coupled run incomplete: visitx=%d push=%d", res.TVisitx, res.TPush)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	g := graph.Complete(8)
	if _, err := Run(g, 99, xrand.New(1), Config{}); err == nil {
		t.Error("bad source accepted")
	}
}

// TestLemma13HoldsOnRegularFamilies: the paper's Lemma 13 invariant
// τ_u ≤ C_u(t_u) is deterministic under the coupling; verify it exactly on
// several regular graphs and seeds.
func TestLemma13HoldsOnRegularFamilies(t *testing.T) {
	rng := xrand.New(31337)
	rr, err := graph.RandomRegularConnected(96, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs := map[string]*graph.Graph{
		"hypercube":   graph.Hypercube(6),
		"complete":    graph.Complete(32),
		"randreg":     rr,
		"ringcliques": graph.RingOfCliques(4, 8),
		"torus":       graph.Torus2D(6, 6),
	}
	for name, g := range gs {
		for seed := uint64(0); seed < 5; seed++ {
			res := mustRun(t, g, 0, seed, Config{})
			if err := res.VerifyLemma13(); err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// TestLemma13HoldsOnIrregularGraphs: the counter inequality in Lemma 13
// never uses regularity, so it must hold on the Fig. 1 families too.
func TestLemma13HoldsOnIrregularGraphs(t *testing.T) {
	gs := map[string]*graph.Graph{
		"star":       graph.Star(40),
		"doublestar": graph.DoubleStar(20),
		"heavytree":  graph.HeavyBinaryTree(5),
		"cyclestars": graph.CycleStarsCliques(3),
	}
	for name, g := range gs {
		for seed := uint64(0); seed < 3; seed++ {
			res := mustRun(t, g, 0, seed, Config{})
			if err := res.VerifyLemma13(); err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// TestQuickLemma13 property-checks the invariant over random regular graphs
// with random seeds, degrees, and agent counts.
func TestQuickLemma13(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 24 + 2*rng.IntN(40)
		d := 4 + rng.IntN(6)
		if n*d%2 == 1 {
			n++
		}
		g, err := graph.RandomRegularConnected(n, d, rng)
		if err != nil {
			return true // skip rare generation failure
		}
		res, err := Run(g, graph.Vertex(rng.IntN(n)), xrand.New(seed+1), Config{
			Agents: 1 + rng.IntN(2*n),
		})
		if err != nil || res.TVisitx < 0 || res.TPush < 0 {
			return false
		}
		return res.VerifyLemma13() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSourceCounters: the source has t_s = 0, τ_s = 0, C_s = 0, no parent.
func TestSourceCounters(t *testing.T) {
	g := graph.Hypercube(5)
	res := mustRun(t, g, 3, 7, Config{})
	if res.TV[3] != 0 || res.Tau[3] != 0 || res.C[3] != 0 || res.Parent[3] != -1 {
		t.Errorf("source counters wrong: tv=%d tau=%d c=%d parent=%d",
			res.TV[3], res.Tau[3], res.C[3], res.Parent[3])
	}
}

// TestParentsFormTreeToSource: following Parent pointers from any vertex
// must reach the source with strictly decreasing informing times.
func TestParentsFormTreeToSource(t *testing.T) {
	g := graph.Torus2D(5, 5)
	res := mustRun(t, g, 0, 11, Config{})
	for u := 0; u < g.N(); u++ {
		v := graph.Vertex(u)
		steps := 0
		for res.Parent[v] >= 0 {
			p := res.Parent[v]
			if res.TV[p] >= res.TV[v] {
				t.Fatalf("parent %d informed at %d, not before child %d at %d", p, res.TV[p], v, res.TV[v])
			}
			if !g.HasEdge(p, v) {
				t.Fatalf("parent edge %d-%d missing", p, v)
			}
			v = p
			if steps++; steps > g.N() {
				t.Fatal("parent chain does not terminate")
			}
		}
		if v != 0 {
			t.Fatalf("parent chain from %d ends at %d, not the source", u, v)
		}
	}
}

// TestCanonicalWalkCertifiesCounter is Lemma 14 made executable: the
// canonical walk reconstructed from the information path has congestion
// exactly C_u(t_u), and it is a legal walk (stay or move along an edge).
func TestCanonicalWalkCertifiesCounter(t *testing.T) {
	rng := xrand.New(171)
	rr, err := graph.RandomRegularConnected(48, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.Graph{graph.Hypercube(5), rr, graph.Complete(24)} {
		res := mustRun(t, g, 0, 23, Config{RecordZ: true})
		for u := 0; u < g.N(); u++ {
			walk := res.CanonicalWalk(graph.Vertex(u))
			if len(walk) != res.TV[u]+1 {
				t.Fatalf("%s: walk length %d, want TV+1 = %d", g.Name(), len(walk), res.TV[u]+1)
			}
			if walk[0] != 0 {
				t.Fatalf("%s: walk starts at %d, not the source", g.Name(), walk[0])
			}
			if walk[len(walk)-1] != graph.Vertex(u) {
				t.Fatalf("%s: walk ends at %d, not %d", g.Name(), walk[len(walk)-1], u)
			}
			for i := 1; i < len(walk); i++ {
				if walk[i] != walk[i-1] && !g.HasEdge(walk[i-1], walk[i]) {
					t.Fatalf("%s: illegal walk step %d->%d", g.Name(), walk[i-1], walk[i])
				}
			}
			q, err := res.WalkCongestion(walk)
			if err != nil {
				t.Fatal(err)
			}
			if q != res.C[u] {
				t.Fatalf("%s vertex %d: walk congestion %d != C %d", g.Name(), u, q, res.C[u])
			}
		}
	}
}

// TestWalkCongestionRequiresHistory: WalkCongestion without RecordZ fails
// cleanly.
func TestWalkCongestionRequiresHistory(t *testing.T) {
	g := graph.Complete(8)
	res := mustRun(t, g, 0, 5, Config{})
	if _, err := res.WalkCongestion([]graph.Vertex{0, 1}); err == nil {
		t.Error("missing history not reported")
	}
}

// TestCouplingDeterministic: identical seeds give identical coupled
// outcomes.
func TestCouplingDeterministic(t *testing.T) {
	g := graph.Hypercube(6)
	a := mustRun(t, g, 0, 99, Config{})
	b := mustRun(t, g, 0, 99, Config{})
	if a.TVisitx != b.TVisitx || a.TPush != b.TPush {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a.TVisitx, a.TPush, b.TVisitx, b.TPush)
	}
	for u := range a.C {
		if a.C[u] != b.C[u] || a.Tau[u] != b.Tau[u] || a.TV[u] != b.TV[u] {
			t.Fatalf("counters differ at %d", u)
		}
	}
}

// TestCoupledTimesAreComparable: Theorem 1 says T_push = Θ(T_visitx) on
// regular graphs of logarithmic degree; under the coupling with shared
// randomness the two completion times should be within a modest constant
// factor on the hypercube (a coarse empirical check; the sweep experiments
// quantify this properly).
func TestCoupledTimesAreComparable(t *testing.T) {
	g := graph.Hypercube(8) // n=256, d=8 = log2 n
	lo, hi := 1000.0, 0.0
	for seed := uint64(0); seed < 5; seed++ {
		res := mustRun(t, g, 0, seed, Config{})
		ratio := float64(res.TPush) / float64(res.TVisitx)
		if ratio < lo {
			lo = ratio
		}
		if ratio > hi {
			hi = ratio
		}
	}
	if lo < 0.05 || hi > 20 {
		t.Errorf("push/visitx ratio band [%.3f, %.3f] implausibly wide", lo, hi)
	}
}
