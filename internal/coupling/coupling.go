// Package coupling makes the paper's main technical argument (Sections 5
// and 6) executable: it runs push and visit-exchange under the coupling
// that identifies, for each vertex u, the list of neighbors u samples in
// push with the list of destinations of agents departing u (after u is
// informed) in visit-exchange.
//
// Under this coupling the paper's Lemma 13 — τ_u ≤ C_u(t_u), where τ_u is
// u's informing round in push and C_u the congestion counter built from
// visit-exchange's visit counts — holds deterministically in every
// realization, not just with high probability. The package exposes the
// counters and the canonical-walk construction of Lemma 14 so tests can
// verify both exactly.
package coupling

import (
	"fmt"

	"rumor/internal/agents"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// Config configures a coupled run.
type Config struct {
	// Agents is |A|; defaults to n when zero.
	Agents int
	// MaxRounds bounds both processes; defaults to a generous cap.
	MaxRounds int
	// RecordZ keeps the full per-round visit-count history so canonical
	// walks can be audited (Lemma 14). Costs O(rounds · n) memory.
	RecordZ bool
}

// Result holds the outcome of one coupled realization.
type Result struct {
	// TVisitx is the round when all vertices were informed in
	// visit-exchange (-1 if MaxRounds hit).
	TVisitx int
	// TPush is the round when all vertices were informed in the coupled
	// push process (-1 if MaxRounds hit).
	TPush int
	// TV[u] is the round u was informed in visit-exchange.
	TV []int
	// Tau[u] is the round u was informed in push.
	Tau []int
	// C[u] is the C-counter value C_u(t_u) defined in Eq. (4).
	C []int64
	// Parent[u] is the S_u-minimizing neighbor used when initializing
	// C_u (Lemma 13's information path); -1 for the source.
	Parent []graph.Vertex
	// ZHist[t][u] is |Z_u(t)|, the number of agents visiting u in round t
	// (only when Config.RecordZ).
	ZHist [][]int32
}

// Run executes one coupled realization on g from source s.
func Run(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, cfg Config) (*Result, error) {
	n := g.N()
	if s < 0 || int(s) >= n {
		return nil, fmt.Errorf("coupling: source %d out of range", s)
	}
	if g.M() == 0 {
		return nil, fmt.Errorf("coupling: graph has no edges")
	}
	na := cfg.Agents
	if na <= 0 {
		na = n
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100 * n * n
	}

	// Shared choice lists w_u(i). Both processes consume entries by index;
	// entries are generated lazily but exactly once, so the coupling
	// π_u(i) = p_u(i) = w_u(i) holds by construction.
	choices := make([][]graph.Vertex, n)
	choice := func(u graph.Vertex, i int) graph.Vertex { // i is 1-based
		for len(choices[u]) < i {
			nb := g.Neighbors(u)
			choices[u] = append(choices[u], nb[rng.IntN(len(nb))])
		}
		return choices[u][i-1]
	}

	res := &Result{
		TVisitx: -1,
		TPush:   -1,
		TV:      make([]int, n),
		Tau:     make([]int, n),
		C:       make([]int64, n),
		Parent:  make([]graph.Vertex, n),
	}
	for u := 0; u < n; u++ {
		res.TV[u] = -1
		res.Tau[u] = -1
		res.Parent[u] = -1
	}

	if err := runVisitxSide(g, s, rng, na, maxRounds, cfg.RecordZ, choice, res); err != nil {
		return nil, err
	}
	runPushSide(g, s, maxRounds, choice, res)
	return res, nil
}

// runVisitxSide runs visit-exchange, routing departures from informed
// vertices through the shared choice lists and maintaining the C-counters
// of Eq. (4).
func runVisitxSide(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, na, maxRounds int, recordZ bool, choice func(graph.Vertex, int) graph.Vertex, res *Result) error {
	n := g.N()
	walks, err := agents.New(g, agents.Config{Count: na}, rng)
	if err != nil {
		return fmt.Errorf("coupling: %w", err)
	}
	informedV := make([]bool, n)
	informedA := make([]bool, na)
	countV := 0

	// departs[u] counts coupled departures from u (consumed choice
	// entries); cumVisits[u] is Σ_{t_u <= t' < t} |Z_u(t')|.
	departs := make([]int, n)
	cumVisits := make([]int64, n)
	occ := agents.NewOccupancy(n)

	informVertex := func(u graph.Vertex, t int, parent graph.Vertex, base int64) {
		informedV[u] = true
		countV++
		res.TV[u] = t
		res.Parent[u] = parent
		res.C[u] = base
	}

	// Round zero: source informed, agents on it informed; Z(0) is the
	// initial placement.
	informVertex(s, 0, -1, 0)
	occ.NextRound()
	for i := 0; i < na; i++ {
		pos := walks.Pos(i)
		occ.Add(pos)
		if pos == s {
			informedA[i] = true
		}
	}
	recordRound := func(t int) {
		if !recordZ {
			return
		}
		row := make([]int32, n)
		for _, v := range occ.Touched() {
			row[v] = occ.Count(v)
		}
		res.ZHist = append(res.ZHist, row)
	}
	recordRound(0)
	// End of round 0: accumulate visits at informed vertices.
	for _, v := range occ.Touched() {
		if informedV[v] {
			cumVisits[v] += int64(occ.Count(v))
		}
	}

	newlyV := make([]graph.Vertex, 0, 64)
	minBase := make(map[graph.Vertex]int64, 16)
	minParent := make(map[graph.Vertex]graph.Vertex, 16)

	for t := 1; countV < n && t <= maxRounds; t++ {
		// Agents departing an informed vertex follow the shared choice
		// list, in agent-id order (the paper's tie-breaking).
		walks.Step(func(agent int, from graph.Vertex) (graph.Vertex, bool) {
			if informedV[from] {
				departs[from]++
				return choice(from, departs[from]), true
			}
			return 0, false
		})

		// Z_u(t): occupancy after the move.
		occ.NextRound()
		for i := 0; i < na; i++ {
			occ.Add(walks.Pos(i))
		}
		recordRound(t)

		// Pass 1: previously informed agents inform vertices; collect
		// S_u minimization data from their origin vertices.
		newlyV = newlyV[:0]
		clear(minBase)
		clear(minParent)
		for i := 0; i < na; i++ {
			if !informedA[i] {
				continue
			}
			to := walks.Pos(i)
			if informedV[to] {
				continue
			}
			from := walks.Prev(i)
			// from is informed with t_from < t (see Section 5.3): the
			// agent was informed in a previous round, so its round-(t-1)
			// vertex was informed by round t-1 at the latest.
			cand := res.C[from] + cumVisits[from]
			if b, ok := minBase[to]; !ok || cand < b {
				minBase[to] = cand
				minParent[to] = from
				if !ok {
					newlyV = append(newlyV, to)
				}
			}
		}
		for _, u := range newlyV {
			informVertex(u, t, minParent[u], minBase[u])
		}

		// Pass 2: agents on informed vertices (including this round's)
		// become informed.
		for i := 0; i < na; i++ {
			if !informedA[i] && informedV[walks.Pos(i)] {
				informedA[i] = true
			}
		}

		// End of round: C_u(t+1) accumulates |Z_u(t)| for informed u.
		for _, v := range occ.Touched() {
			if informedV[v] {
				cumVisits[v] += int64(occ.Count(v))
			}
		}

		if countV == n {
			res.TVisitx = t
		}
	}
	if countV == n && res.TVisitx < 0 {
		res.TVisitx = 0 // degenerate single-vertex case
	}
	return nil
}

// runPushSide simulates push using the shared choice lists: vertex u,
// informed at τ_u, samples choice(u, i) in round τ_u + i.
func runPushSide(g *graph.Graph, s graph.Vertex, maxRounds int, choice func(graph.Vertex, int) graph.Vertex, res *Result) {
	n := g.N()
	informed := make([]bool, n)
	informed[s] = true
	res.Tau[s] = 0
	frontier := []graph.Vertex{s}
	count := 1
	for t := 1; count < n && t <= maxRounds; t++ {
		senders := frontier
		for _, u := range senders {
			v := choice(u, t-res.Tau[u])
			if !informed[v] {
				informed[v] = true
				res.Tau[v] = t
				count++
				frontier = append(frontier, v)
			}
		}
		if count == n {
			res.TPush = t
		}
	}
}

// VerifyLemma13 checks the deterministic invariant τ_u ≤ C_u(t_u) for every
// vertex informed in both processes. It returns an error naming the first
// violating vertex, or nil.
func (r *Result) VerifyLemma13() error {
	for u := range r.Tau {
		if r.Tau[u] < 0 || r.TV[u] < 0 {
			return fmt.Errorf("coupling: vertex %d uninformed (tau=%d, tv=%d)", u, r.Tau[u], r.TV[u])
		}
		if int64(r.Tau[u]) > r.C[u] {
			return fmt.Errorf("coupling: Lemma 13 violated at vertex %d: tau=%d > C=%d", u, r.Tau[u], r.C[u])
		}
	}
	return nil
}

// CanonicalWalk reconstructs the canonical walk of Lemma 14 that certifies
// C_u(t_u): the information path s = v_0, v_1, ..., v_k = u (via Parent),
// padded with stays so step j of the walk happens at round t_{v_j}. It
// returns the walk θ as a vertex sequence of length TV[u]+1.
func (r *Result) CanonicalWalk(u graph.Vertex) []graph.Vertex {
	// Collect the parent path back to the source.
	path := []graph.Vertex{u}
	for r.Parent[path[len(path)-1]] >= 0 {
		path = append(path, r.Parent[path[len(path)-1]])
	}
	// Reverse to source-first.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	walk := make([]graph.Vertex, 0, r.TV[u]+1)
	walk = append(walk, path[0])
	for j := 1; j < len(path); j++ {
		// Stay at v_{j-1} for rounds t_{v_{j-1}}+1 .. t_{v_j}-1, then move.
		for t := r.TV[path[j-1]] + 1; t < r.TV[path[j]]; t++ {
			walk = append(walk, path[j-1])
		}
		walk = append(walk, path[j])
	}
	return walk
}

// WalkCongestion computes Q(θ) = Σ_{0 <= t < len(θ)-1} |Z_{θ_t}(t)| from the
// recorded visit-count history. Requires Config.RecordZ.
func (r *Result) WalkCongestion(walk []graph.Vertex) (int64, error) {
	if r.ZHist == nil {
		return 0, fmt.Errorf("coupling: no Z history recorded; set Config.RecordZ")
	}
	if len(walk) == 0 {
		return 0, fmt.Errorf("coupling: empty walk")
	}
	var q int64
	for t := 0; t < len(walk)-1; t++ {
		if t >= len(r.ZHist) {
			return 0, fmt.Errorf("coupling: walk longer than recorded history")
		}
		q += int64(r.ZHist[t][walk[t]])
	}
	return q, nil
}
