package coupling

import (
	"testing"
	"testing/quick"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func mustRunOddEven(t *testing.T, g *graph.Graph, s graph.Vertex, seed uint64, cfg Config) *OddEvenResult {
	t.Helper()
	res, err := RunOddEven(g, s, xrand.New(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TVisitx < 0 || res.TPush < 0 {
		t.Fatalf("odd-even coupled run incomplete: visitx=%d push=%d", res.TVisitx, res.TPush)
	}
	return res
}

func TestOddEvenValidation(t *testing.T) {
	g := graph.Complete(8)
	if _, err := RunOddEven(g, 99, xrand.New(1), Config{}); err == nil {
		t.Error("bad source accepted")
	}
}

// TestOddEvenBothComplete: both coupled processes finish on regular
// families, and all per-vertex times are consistent (source at 0, others
// positive).
func TestOddEvenBothComplete(t *testing.T) {
	rng := xrand.New(4242)
	rr, err := graph.RandomRegularConnected(64, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.Graph{graph.Hypercube(6), graph.Complete(32), rr} {
		res := mustRunOddEven(t, g, 0, 17, Config{})
		if res.Tau[0] != 0 || res.TV[0] != 0 {
			t.Errorf("%s: source times tau=%d tv=%d", g.Name(), res.Tau[0], res.TV[0])
		}
		for u := 1; u < g.N(); u++ {
			if res.Tau[u] <= 0 || res.TV[u] <= 0 {
				t.Fatalf("%s: vertex %d times tau=%d tv=%d", g.Name(), u, res.Tau[u], res.TV[u])
			}
		}
	}
}

// TestLemma22SlowdownBounded: the Section 6 coupling's statistic
// max_u t'_u/(τ_u + ln n) must stay below a modest constant on regular
// graphs of logarithmic degree (Lemma 22 proves a constant bound w.h.p.).
func TestLemma22SlowdownBounded(t *testing.T) {
	g := graph.Hypercube(8)
	worst := 0.0
	for seed := uint64(0); seed < 8; seed++ {
		res := mustRunOddEven(t, g, 0, seed, Config{})
		s, err := res.MaxSlowdown()
		if err != nil {
			t.Fatal(err)
		}
		if s > worst {
			worst = s
		}
	}
	// The proof's constant is c = O(1); empirically the statistic sits
	// around 1-2 on the hypercube. 6 is a loose but meaningful ceiling.
	if worst > 6 {
		t.Errorf("Lemma 22 statistic %.2f implausibly large", worst)
	}
	if worst <= 0 {
		t.Error("slowdown statistic not positive")
	}
}

// TestOddEvenDeterministic: same seed, same coupled outcome.
func TestOddEvenDeterministic(t *testing.T) {
	g := graph.Hypercube(6)
	a := mustRunOddEven(t, g, 0, 5, Config{})
	b := mustRunOddEven(t, g, 0, 5, Config{})
	if a.TPush != b.TPush || a.TVisitx != b.TVisitx {
		t.Fatal("nondeterministic odd-even coupling")
	}
	for u := range a.Tau {
		if a.Tau[u] != b.Tau[u] || a.TV[u] != b.TV[u] {
			t.Fatalf("times differ at %d", u)
		}
	}
}

// TestQuickOddEvenCompletes: both sides of the coupling finish on random
// regular graphs for random seeds and agent counts, and the slowdown
// statistic stays finite.
func TestQuickOddEvenCompletes(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 24 + 2*rng.IntN(30)
		d := 4 + rng.IntN(5)
		if n*d%2 == 1 {
			n++
		}
		g, err := graph.RandomRegularConnected(n, d, rng)
		if err != nil {
			return true
		}
		res, err := RunOddEven(g, graph.Vertex(rng.IntN(n)), xrand.New(seed+9), Config{
			Agents: n/2 + rng.IntN(n),
		})
		if err != nil || res.TVisitx < 0 || res.TPush < 0 {
			return false
		}
		s, err := res.MaxSlowdown()
		return err == nil && s > 0 && s < 25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
