package coupling

import (
	"fmt"
	"math"

	"rumor/internal/agents"
	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// OddEvenResult is the outcome of the Section 6 coupling, which proves the
// converse direction of Theorem 1 (visit-exchange is at most a constant
// factor slower than push).
type OddEvenResult struct {
	// TPush is push's broadcast time under the coupling.
	TPush int
	// TVisitx is visit-exchange's broadcast time under the coupling.
	TVisitx int
	// Tau[u] is u's informing round in push.
	Tau []int
	// TV[u] is u's informing round in visit-exchange.
	TV []int
}

// RunOddEven executes the odd-even coupling of Section 6.1: the list of
// neighbors a vertex u samples in push is identified with the destinations
// of the odd-round departures that follow each even-round visit to u in
// visit-exchange (p^odd_u(i) = π_u(i) = w_u(i)). Even-round moves remain
// independent, which is the paper's trick for breaking the dependence of
// the first-information path on future randomness.
//
// Lemma 22 states that under this coupling t'_u ≤ c·(τ_u + log n) w.h.p.;
// MaxSlowdown exposes the per-realization statistic so tests can check the
// bound empirically.
func RunOddEven(g *graph.Graph, s graph.Vertex, rng *xrand.RNG, cfg Config) (*OddEvenResult, error) {
	n := g.N()
	if s < 0 || int(s) >= n {
		return nil, fmt.Errorf("coupling: source %d out of range", s)
	}
	if g.M() == 0 {
		return nil, fmt.Errorf("coupling: graph has no edges")
	}
	na := cfg.Agents
	if na <= 0 {
		na = n
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100 * n * n
	}

	choices := make([][]graph.Vertex, n)
	choice := func(u graph.Vertex, i int) graph.Vertex { // 1-based
		for len(choices[u]) < i {
			nb := g.Neighbors(u)
			choices[u] = append(choices[u], nb[rng.IntN(len(nb))])
		}
		return choices[u][i-1]
	}

	res := &OddEvenResult{
		TPush:   -1,
		TVisitx: -1,
		Tau:     make([]int, n),
		TV:      make([]int, n),
	}
	for u := 0; u < n; u++ {
		res.Tau[u] = -1
		res.TV[u] = -1
	}

	// --- visit-exchange side ---------------------------------------------
	walks, err := agents.New(g, agents.Config{Count: na}, rng)
	if err != nil {
		return nil, fmt.Errorf("coupling: %w", err)
	}
	informedV := make([]bool, n)
	informedA := make([]bool, na)
	countV := 1
	informedV[s] = true
	res.TV[s] = 0

	// evenVisits[u] counts even-round visits to u since t_u; forcedIdx[g]
	// holds the 1-based choice index agent g must follow in the next (odd)
	// round, or 0.
	evenVisits := make([]int, n)
	forcedIdx := make([]int, na)
	for i := 0; i < na; i++ {
		if walks.Pos(i) == s {
			informedA[i] = true
		}
	}
	// Round 0 is even: visits to informed vertices assign forced moves for
	// round 1.
	for i := 0; i < na; i++ {
		if u := walks.Pos(i); informedV[u] {
			evenVisits[u]++
			forcedIdx[i] = evenVisits[u]
		}
	}

	for t := 1; countV < n && t <= maxRounds; t++ {
		odd := t%2 == 1
		walks.Step(func(agent int, from graph.Vertex) (graph.Vertex, bool) {
			if odd && forcedIdx[agent] > 0 {
				idx := forcedIdx[agent]
				forcedIdx[agent] = 0
				return choice(from, idx), true
			}
			return 0, false
		})
		// Pass 1: previously informed agents inform their vertices.
		for i := 0; i < na; i++ {
			if informedA[i] {
				to := walks.Pos(i)
				if !informedV[to] {
					informedV[to] = true
					res.TV[to] = t
					countV++
				}
			}
		}
		// Pass 2: agents on informed vertices become informed.
		for i := 0; i < na; i++ {
			if !informedA[i] && informedV[walks.Pos(i)] {
				informedA[i] = true
			}
		}
		// Even rounds tag visits for the next odd round's coupled moves.
		if !odd {
			for i := 0; i < na; i++ {
				if u := walks.Pos(i); informedV[u] {
					evenVisits[u]++
					forcedIdx[i] = evenVisits[u]
				} else {
					forcedIdx[i] = 0
				}
			}
		}
		if countV == n {
			res.TVisitx = t
		}
	}

	// --- push side ---------------------------------------------------------
	informedP := make([]bool, n)
	informedP[s] = true
	res.Tau[s] = 0
	frontier := []graph.Vertex{s}
	count := 1
	for t := 1; count < n && t <= maxRounds; t++ {
		senders := frontier
		for _, u := range senders {
			v := choice(u, t-res.Tau[u])
			if !informedP[v] {
				informedP[v] = true
				res.Tau[v] = t
				count++
				frontier = append(frontier, v)
			}
		}
		if count == n {
			res.TPush = t
		}
	}
	return res, nil
}

// MaxSlowdown returns max_u t'_u / (τ_u + ln n) — the per-realization
// statistic bounded by a constant in Lemma 22. Vertices uninformed in
// either process yield an error.
func (r *OddEvenResult) MaxSlowdown() (float64, error) {
	logn := math.Log(float64(len(r.Tau)))
	worst := 0.0
	for u := range r.Tau {
		if r.Tau[u] < 0 || r.TV[u] < 0 {
			return 0, fmt.Errorf("coupling: vertex %d uninformed (tau=%d, tv=%d)", u, r.Tau[u], r.TV[u])
		}
		s := float64(r.TV[u]) / (float64(r.Tau[u]) + logn)
		if s > worst {
			worst = s
		}
	}
	return worst, nil
}
